//===- workloads/DataGen.cpp - Synthetic dataset generators --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/DataGen.h"

#include "support/Random.h"

#include <cmath>

using namespace panthera;
using namespace panthera::workloads;
using rdd::SourceData;

GraphData panthera::workloads::genPowerLawGraph(uint32_t Partitions,
                                                int64_t NumVertices,
                                                int64_t NumEdges, double Skew,
                                                uint64_t Seed) {
  GraphData G;
  G.NumVertices = NumVertices;
  G.NumEdges = NumEdges;
  G.Edges.resize(Partitions);
  SplitMix64 Rng(Seed);
  ZipfSampler Sources(static_cast<uint64_t>(NumVertices), Skew);
  for (int64_t I = 0; I != NumEdges; ++I) {
    int64_t Src = static_cast<int64_t>(Sources.sample(Rng));
    int64_t Dst = static_cast<int64_t>(
        Rng.nextBelow(static_cast<uint64_t>(NumVertices)));
    if (Dst == Src)
      Dst = (Dst + 1) % NumVertices;
    G.Edges[static_cast<size_t>(I) % Partitions].push_back(
        {Src, static_cast<double>(Dst)});
  }
  return G;
}

/// Standard-normal sample via Box-Muller.
static double gaussian(SplitMix64 &Rng) {
  double U1 = Rng.nextDouble();
  double U2 = Rng.nextDouble();
  if (U1 < 1e-300)
    U1 = 1e-300;
  return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
}

SourceData panthera::workloads::genClusteredPoints(uint32_t Partitions,
                                                   int64_t NumPoints,
                                                   uint32_t NumClusters,
                                                   uint64_t Seed) {
  SourceData Data(Partitions);
  SplitMix64 Rng(Seed);
  for (int64_t I = 0; I != NumPoints; ++I) {
    uint32_t Cluster = static_cast<uint32_t>(Rng.nextBelow(NumClusters));
    double Center = 100.0 * (Cluster + 0.5) / NumClusters;
    double X = Center + 2.0 * gaussian(Rng);
    Data[static_cast<size_t>(I) % Partitions].push_back({I, X});
  }
  return Data;
}

double panthera::workloads::clusterCenterND(uint32_t C, uint32_t D,
                                            uint32_t NumClusters) {
  // A shifted diagonal: in every dimension the clusters take K distinct,
  // evenly spaced coordinates, so clusters are well separated and no
  // dimension is degenerate.
  return 100.0 * ((C + D) % NumClusters + 0.5) /
         static_cast<double>(NumClusters);
}

SourceData panthera::workloads::genClusteredPointsND(uint32_t Partitions,
                                                     int64_t NumPoints,
                                                     uint32_t Dims,
                                                     uint32_t NumClusters,
                                                     uint64_t Seed) {
  SourceData Data(Partitions);
  SplitMix64 Rng(Seed);
  for (int64_t I = 0; I != NumPoints; ++I) {
    uint32_t Cluster = static_cast<uint32_t>(Rng.nextBelow(NumClusters));
    size_t Part = static_cast<size_t>(I) % Partitions;
    for (uint32_t D = 0; D != Dims; ++D) {
      double X = clusterCenterND(Cluster, D, NumClusters) +
                 1.5 * gaussian(Rng);
      Data[Part].push_back({I, X});
    }
  }
  return Data;
}

SourceData panthera::workloads::genLabeledPoints(uint32_t Partitions,
                                                 int64_t NumPoints,
                                                 uint64_t Seed) {
  SourceData Data(Partitions);
  SplitMix64 Rng(Seed);
  for (int64_t I = 0; I != NumPoints; ++I) {
    int64_t Y = static_cast<int64_t>(Rng.nextBelow(2));
    double X = (2.0 * static_cast<double>(Y) - 1.0) + gaussian(Rng);
    Data[static_cast<size_t>(I) % Partitions].push_back(
        {(I << 1) | Y, X});
  }
  return Data;
}

SourceData panthera::workloads::genFeatureEvents(uint32_t Partitions,
                                                 int64_t NumEvents,
                                                 uint32_t NumFeatures,
                                                 uint32_t NumLabels,
                                                 uint64_t Seed) {
  SourceData Data(Partitions);
  SplitMix64 Rng(Seed);
  ZipfSampler Features(NumFeatures, 1.1);
  for (int64_t I = 0; I != NumEvents; ++I) {
    int64_t Label = static_cast<int64_t>(Rng.nextBelow(NumLabels));
    // Shift the Zipf head per label so class-conditionals differ.
    int64_t Feature =
        static_cast<int64_t>((Features.sample(Rng) +
                              Label * (NumFeatures / NumLabels)) %
                             NumFeatures);
    Data[static_cast<size_t>(I) % Partitions].push_back(
        {Label * NumFeatures + Feature, 1.0});
  }
  return Data;
}
