//===- workloads/DataGen.h - Synthetic dataset generators -------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic substitutes for the paper's datasets (Table 4):
/// power-law (Zipf-out-degree) graphs stand in for the Wikipedia link dumps
/// and the Notre Dame webgraph; Gaussian-mixture points for the K-Means /
/// Logistic Regression feature vectors; and Zipf-distributed (label,
/// feature) events for the KDD2012 classification input. Every generator
/// is seeded, so a given configuration reproduces bit-identical inputs.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_WORKLOADS_DATAGEN_H
#define PANTHERA_WORKLOADS_DATAGEN_H

#include "rdd/Rdd.h"

#include <cstdint>

namespace panthera {
namespace workloads {

/// An edge list partitioned for the engine: records are (src, dst).
struct GraphData {
  rdd::SourceData Edges;
  int64_t NumVertices = 0;
  int64_t NumEdges = 0;
};

/// Generates a directed graph whose out-edges follow a Zipf(\p Skew)
/// source distribution (hubs like a web graph) with uniform targets.
/// Self-loops are retargeted so every edge is meaningful.
GraphData genPowerLawGraph(uint32_t Partitions, int64_t NumVertices,
                           int64_t NumEdges, double Skew, uint64_t Seed);

/// 1-D points drawn from \p NumClusters Gaussian components spread over
/// [0, 100). Records are (point id, coordinate).
rdd::SourceData genClusteredPoints(uint32_t Partitions, int64_t NumPoints,
                                   uint32_t NumClusters, uint64_t Seed);

/// Multi-dimensional points: \p Dims records per point, (point id,
/// coordinate), emitted in dimension order so a groupByKey reassembles
/// each point's coordinate buffer in order. Cluster centers sit on a
/// simplex-like grid over [0, 100)^Dims.
rdd::SourceData genClusteredPointsND(uint32_t Partitions, int64_t NumPoints,
                                     uint32_t Dims, uint32_t NumClusters,
                                     uint64_t Seed);

/// The ground-truth center of cluster \p C in dimension \p D for the ND
/// generator (tests compare recovered centers against these).
double clusterCenterND(uint32_t C, uint32_t D, uint32_t NumClusters);

/// Binary-labeled 1-D points: label y in {0,1} encoded in the key's low
/// bit (key = id << 1 | y), feature x ~ N(2y - 1, 1). Linearly separable
/// in expectation, so logistic regression converges.
rdd::SourceData genLabeledPoints(uint32_t Partitions, int64_t NumPoints,
                                 uint64_t Seed);

/// (label, feature) occurrence events for Naive Bayes: records are
/// (label * NumFeatures + feature, 1.0) with a per-label Zipf feature
/// distribution (class-conditional skew differs so classes separate).
rdd::SourceData genFeatureEvents(uint32_t Partitions, int64_t NumEvents,
                                 uint32_t NumFeatures, uint32_t NumLabels,
                                 uint64_t Seed);

} // namespace workloads
} // namespace panthera

#endif // PANTHERA_WORKLOADS_DATAGEN_H
