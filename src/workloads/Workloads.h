//===- workloads/Workloads.h - The paper's seven programs -------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation workloads of Table 4, implemented against the engine:
///
///   PR    PageRank on Spark            (power-law graph)
///   KM    K-Means on Spark             (Gaussian-mixture points)
///   LR    Logistic Regression on Spark (labeled points)
///   TC    Transitive Closure on Spark  (small power-law graph)
///   CC    GraphX Connected Components  (symmetrized power-law graph)
///   SSSP  GraphX Shortest Paths        (symmetrized power-law graph)
///   BC    MLlib Naive Bayes            (Zipf feature events)
///
/// Each workload carries its driver program in the DSL (the §3 analysis
/// input) and a Run function that generates its dataset, executes the
/// pipeline inside a Runtime, and returns a policy-independent checksum.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_WORKLOADS_WORKLOADS_H
#define PANTHERA_WORKLOADS_WORKLOADS_H

#include "core/Runtime.h"

#include <functional>
#include <string>
#include <vector>

namespace panthera {
namespace workloads {

/// One benchmark program.
struct WorkloadSpec {
  std::string ShortName; ///< "PR", "KM", ...
  std::string FullName;
  std::string Dataset; ///< Synthetic dataset description.
  std::string Dsl;     ///< Driver program for the static analysis.
  /// Runs the workload; \p Scale multiplies dataset sizes (1.0 = the
  /// repository's default, sized for 64-120 paper-GB heaps). Returns a
  /// deterministic checksum that must not depend on the memory policy.
  std::function<double(core::Runtime &, double Scale)> Run;
};

/// All seven workloads, in the paper's Table 4 order.
const std::vector<WorkloadSpec> &allWorkloads();

/// Extension workloads beyond the paper's Table 4 (kept out of
/// allWorkloads so the figure sweeps stay the paper's program set):
///
///   SW    Shifting Working Set -- six persisted segments whose hot one
///         rotates at runtime, invisible to the §3 static analysis; the
///         showcase for --policy=dynamic (docs/memsim.md).
const std::vector<WorkloadSpec> &extensionWorkloads();

/// Finds a workload by short name in either list; null when unknown.
const WorkloadSpec *findWorkload(std::string_view ShortName);

} // namespace workloads
} // namespace panthera

#endif // PANTHERA_WORKLOADS_WORKLOADS_H
