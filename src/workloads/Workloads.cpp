//===- workloads/Workloads.cpp - The paper's seven programs --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "graphx/Pregel.h"
#include "mllib/MLlib.h"
#include "workloads/DataGen.h"

#include <cmath>

using namespace panthera;
using namespace panthera::workloads;
using heap::GcRoot;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::SourceData;
using rdd::StorageLevel;
using rdd::TupleSink;

//===----------------------------------------------------------------------===
// PageRank (the paper's Fig 2 running example)
//===----------------------------------------------------------------------===

static const char *PageRankDsl = R"(
program pagerank {
  lines = textFile("graph");
  links = lines.map().distinct().groupByKey().persist(MEMORY_ONLY);
  ranks = links.mapValues();
  for (i in 1..iters) {
    contribs = links.join(ranks).flatMap().persist(MEMORY_AND_DISK_SER);
    ranks = contribs.reduceByKey().mapValues();
  }
  ranks.count();
}
)";

static double runPageRank(core::Runtime &RT, double Scale) {
  RT.analyzeAndInstall(PageRankDsl);
  rdd::SparkContext &Ctx = RT.ctx();
  const int64_t V = static_cast<int64_t>(10000 * Scale);
  const int64_t E = static_cast<int64_t>(50000 * Scale);
  const unsigned Iters = 8;
  GraphData G = genPowerLawGraph(Ctx.config().NumPartitions, V, E,
                                 /*Skew=*/1.0, /*Seed=*/42);

  Rdd Lines = Ctx.source(&G.Edges);
  Rdd Links = Lines.distinct().groupByKey().persistAs(
      "links", StorageLevel::MemoryOnly);
  Rdd Ranks =
      Links.mapValuesWithKey([](int64_t, double) { return 1.0; });

  for (unsigned I = 0; I != Iters; ++I) {
    // contribs = links.join(ranks).values.flatMap { spread rank }.
    Rdd Joined = Links.join(
        Ranks, [](RddContext &C, ObjRef Left, double Rank) {
          return C.makeTupleWithRef(C.key(Left), Rank, C.payload(Left));
        });
    Rdd Contribs =
        Joined
            .flatMap([](RddContext &C, ObjRef T, const TupleSink &S) {
              double Rank = C.value(T);
              GcRoot Buf(C.heap(), C.payload(T));
              if (Buf.get().isNull())
                return;
              uint32_t Size = C.heap().arrayLength(Buf.get());
              double Share = Rank / Size;
              for (uint32_t J = 0; J != Size; ++J) {
                int64_t Url =
                    static_cast<int64_t>(C.bufferValue(Buf.get(), J));
                S(C.makeTuple(Url, Share));
              }
            })
            .persistAs("contribs", StorageLevel::MemoryAndDiskSer);
    Ranks = Contribs.reduceByKey([](double A, double B) { return A + B; })
                .mapValues([](double Sum) { return 0.15 + 0.85 * Sum; });
  }
  Ranks = Ranks.named("ranks");
  // The single action evaluates the whole 8-stage lineage (lazy Spark).
  return Ranks.reduce([](double A, double B) { return A + B; });
}

//===----------------------------------------------------------------------===
// K-Means
//===----------------------------------------------------------------------===

static const char *KMeansDsl = R"(
program kmeans {
  points = textFile("points").map().persist(MEMORY_ONLY);
  for (i in 1..iters) {
    closest = points.map();
    sums = closest.reduceByKey();
    counts = closest.mapValues().reduceByKey();
    sums.collect();
    counts.collect();
  }
}
)";

static double runKMeans(core::Runtime &RT, double Scale) {
  RT.analyzeAndInstall(KMeansDsl);
  rdd::SparkContext &Ctx = RT.ctx();
  const int64_t N = static_cast<int64_t>(100000 * Scale);
  SourceData Data = genClusteredPoints(Ctx.config().NumPartitions, N,
                                       /*NumClusters=*/8, /*Seed=*/17);
  Rdd Points = Ctx.source(&Data)
                   .map([](RddContext &C, ObjRef T) {
                     return C.makeTuple(C.key(T), C.value(T));
                   })
                   .persistAs("points", StorageLevel::MemoryOnly);
  mllib::KMeansModel Model =
      mllib::trainKMeans(Points, /*K=*/8, /*Iterations=*/10);
  return Model.Cost;
}

//===----------------------------------------------------------------------===
// Logistic Regression
//===----------------------------------------------------------------------===

static const char *LogisticDsl = R"(
program lr {
  points = textFile("points").map().persist(MEMORY_ONLY);
  for (i in 1..iters) {
    gradw = points.map();
    gradb = points.map();
    gradw.reduce();
    gradb.reduce();
  }
}
)";

static double runLogistic(core::Runtime &RT, double Scale) {
  RT.analyzeAndInstall(LogisticDsl);
  rdd::SparkContext &Ctx = RT.ctx();
  const int64_t N = static_cast<int64_t>(100000 * Scale);
  SourceData Data =
      genLabeledPoints(Ctx.config().NumPartitions, N, /*Seed=*/23);
  Rdd Points = Ctx.source(&Data)
                   .map([](RddContext &C, ObjRef T) {
                     return C.makeTuple(C.key(T), C.value(T));
                   })
                   .persistAs("points", StorageLevel::MemoryOnly);
  mllib::LogisticModel Model =
      mllib::trainLogistic(Points, /*Iterations=*/10, /*LearningRate=*/2.0);
  return Model.W + Model.Loss;
}

//===----------------------------------------------------------------------===
// Transitive Closure
//===----------------------------------------------------------------------===

static const char *TransitiveClosureDsl = R"(
program tc {
  raw = textFile("graph");
  edges = raw.map().distinct().persist(MEMORY_ONLY);
  paths = edges.map().distinct().persist(MEMORY_ONLY);
  for (i in 1..iters) {
    paths = paths.map().join(edges).map().union(paths).distinct()
                 .persist(MEMORY_ONLY);
    paths.count();
  }
}
)";

static double runTransitiveClosure(core::Runtime &RT, double Scale) {
  RT.analyzeAndInstall(TransitiveClosureDsl);
  rdd::SparkContext &Ctx = RT.ctx();
  const int64_t V = static_cast<int64_t>(350 * std::sqrt(Scale));
  const int64_t E = static_cast<int64_t>(1400 * Scale);
  const unsigned Iters = 5;
  GraphData G = genPowerLawGraph(Ctx.config().NumPartitions, V, E,
                                 /*Skew=*/0.8, /*Seed=*/7);

  Rdd Raw = Ctx.source(&G.Edges);
  Rdd Edges = Raw.distinct().persistAs("edges", StorageLevel::MemoryOnly);
  Rdd Paths = Edges;
  int64_t Count = Edges.count();
  for (unsigned I = 0; I != Iters; ++I) {
    // paths(a,b) x edges(b,c) -> (a,c), keyed through b on both sides.
    Rdd Reversed = Paths.map([](RddContext &C, ObjRef T) {
      return C.makeTuple(static_cast<int64_t>(C.value(T)),
                         static_cast<double>(C.key(T)));
    });
    Rdd NewPaths =
        Reversed.join(Edges, [](RddContext &C, ObjRef Left, double Dst) {
          return C.makeTuple(static_cast<int64_t>(C.value(Left)), Dst);
        });
    Paths = Paths.unionWith(NewPaths).distinct().persistAs(
        "paths", StorageLevel::MemoryOnly);
    int64_t Next = Paths.count();
    if (Next == Count)
      break; // closure reached
    Count = Next;
  }
  return static_cast<double>(Count);
}

//===----------------------------------------------------------------------===
// GraphX Connected Components / SSSP
//===----------------------------------------------------------------------===

// The driver shape GraphX produces: each outer iteration persists a fresh
// vertex RDD; the aggregate-messages step reads it (the inner loop from
// the analysis' point of view). §5.5: the analysis cannot see unpersists,
// so every generation is tagged DRAM and stale ones are later demoted by
// dynamic migration.
static const char *ConnectedComponentsDsl = R"(
program cc {
  raw = textFile("graph");
  edges = raw.flatMap().groupByKey().persist(MEMORY_ONLY);
  vertices = edges.mapValues().persist(MEMORY_ONLY);
  for (i in 1..iters) {
    msgs = edges.join(vertices).flatMap();
    vertices = msgs.union(vertices).reduceByKey().persist(MEMORY_ONLY);
    for (j in 1..supersteps) {
      probe = edges.join(vertices).map();
      probe.count();
    }
  }
  vertices.count();
}
)";

static double runConnectedComponents(core::Runtime &RT, double Scale) {
  RT.analyzeAndInstall(ConnectedComponentsDsl);
  rdd::SparkContext &Ctx = RT.ctx();
  const int64_t V = static_cast<int64_t>(12000 * Scale);
  const int64_t E = static_cast<int64_t>(44000 * Scale);
  GraphData G = genPowerLawGraph(Ctx.config().NumPartitions, V, E,
                                 /*Skew=*/1.0, /*Seed=*/11);
  Rdd EdgeList = Ctx.source(&G.Edges);
  Rdd Adjacency =
      graphx::buildAdjacency(Ctx, EdgeList, "edges", /*Symmetrize=*/true);
  graphx::PregelConfig Config;
  Config.MaxIterations = 10;
  Config.VertexVar = "vertices";
  Rdd Labels = graphx::connectedComponents(Ctx, Adjacency, Config);
  return Labels.reduce([](double A, double B) { return A + B; });
}

static const char *ShortestPathsDsl = R"(
program sssp {
  raw = textFile("graph");
  edges = raw.flatMap().groupByKey().persist(MEMORY_ONLY);
  vertices = edges.mapValues().persist(MEMORY_ONLY);
  for (i in 1..iters) {
    msgs = edges.join(vertices).flatMap();
    vertices = msgs.union(vertices).reduceByKey().persist(MEMORY_ONLY);
    for (j in 1..supersteps) {
      probe = edges.join(vertices).map();
      probe.count();
    }
  }
  vertices.count();
}
)";

static double runShortestPaths(core::Runtime &RT, double Scale) {
  RT.analyzeAndInstall(ShortestPathsDsl);
  rdd::SparkContext &Ctx = RT.ctx();
  const int64_t V = static_cast<int64_t>(12000 * Scale);
  const int64_t E = static_cast<int64_t>(44000 * Scale);
  GraphData G = genPowerLawGraph(Ctx.config().NumPartitions, V, E,
                                 /*Skew=*/1.0, /*Seed=*/11);
  Rdd EdgeList = Ctx.source(&G.Edges);
  Rdd Adjacency =
      graphx::buildAdjacency(Ctx, EdgeList, "edges", /*Symmetrize=*/true);
  graphx::PregelConfig Config;
  Config.MaxIterations = 10;
  Config.VertexVar = "vertices";
  Rdd Dists = graphx::shortestPaths(Ctx, Adjacency, /*SourceVertex=*/0,
                                    Config);
  // Cap unreachable distances so the checksum stays finite.
  return Dists
      .mapValues([V](double D) {
        return D < graphx::Unreachable ? D : static_cast<double>(V);
      })
      .reduce([](double A, double B) { return A + B; });
}

//===----------------------------------------------------------------------===
// MLlib Naive Bayes Classifiers
//===----------------------------------------------------------------------===

static const char *NaiveBayesDsl = R"(
program bayes {
  data = textFile("kdd").map().persist(MEMORY_ONLY);
  model = data.reduceByKey().persist(MEMORY_ONLY);
  model.count();
}
)";

static double runNaiveBayes(core::Runtime &RT, double Scale) {
  RT.analyzeAndInstall(NaiveBayesDsl);
  rdd::SparkContext &Ctx = RT.ctx();
  const int64_t N = static_cast<int64_t>(150000 * Scale);
  const uint32_t NumFeatures = 200;
  const uint32_t NumLabels = 4;
  SourceData Events = genFeatureEvents(Ctx.config().NumPartitions, N,
                                       NumFeatures, NumLabels, /*Seed=*/13);
  Rdd Data = Ctx.source(&Events)
                 .map([](RddContext &C, ObjRef T) {
                   return C.makeTuple(C.key(T), C.value(T));
                 })
                 .persistAs("data", StorageLevel::MemoryOnly);
  mllib::NaiveBayesModel Model =
      mllib::trainNaiveBayes(Data, NumFeatures, NumLabels);
  return mllib::naiveBayesAccuracy(Data, Model);
}

//===----------------------------------------------------------------------===
// Shifting Working Set (extension; not part of the paper's Table 4)
//===----------------------------------------------------------------------===

// The adversarial case for static placement: six equal segments are
// persisted up front, and the *runtime* access pattern rotates a hot
// segment through them phase by phase. The driver program's loop only ever
// names seg0, so the §3 analysis -- which sees the text, not the run --
// tags seg0 DRAM and strands the other five in NVM for the whole
// execution. The online hotness profiler (--policy=dynamic) sees the real
// rotation and migrates whichever segment is hot; bench/micro_hotness
// measures the crossover against static Panthera.
static const char *ShiftingDsl = R"(
program shifting {
  events = textFile("events");
  seg0 = events.map().persist(MEMORY_ONLY);
  seg1 = events.map().persist(MEMORY_ONLY);
  seg2 = events.map().persist(MEMORY_ONLY);
  seg3 = events.map().persist(MEMORY_ONLY);
  seg4 = events.map().persist(MEMORY_ONLY);
  seg5 = events.map().persist(MEMORY_ONLY);
  for (i in 1..phases) {
    view = seg0.map();
    view.reduce();
  }
}
)";

static double runShiftingWorkingSet(core::Runtime &RT, double Scale) {
  RT.analyzeAndInstall(ShiftingDsl);
  rdd::SparkContext &Ctx = RT.ctx();
  const unsigned NumSegments = 6;
  const unsigned Phases = 12; // two full rotations of the hot segment
  const unsigned PassesPerPhase = 16;
  const int64_t PerSegment = static_cast<int64_t>(40000 * Scale);

  std::vector<SourceData> Data;
  Data.reserve(NumSegments);
  for (unsigned S = 0; S != NumSegments; ++S)
    Data.push_back(genLabeledPoints(Ctx.config().NumPartitions, PerSegment,
                                    /*Seed=*/100 + S));

  std::vector<Rdd> Segments;
  for (unsigned S = 0; S != NumSegments; ++S) {
    std::string Name = "seg" + std::to_string(S);
    Segments.push_back(Ctx.source(&Data[S])
                           .map([](RddContext &C, ObjRef T) {
                             return C.makeTuple(C.key(T), C.value(T));
                           })
                           .persistAs(Name, StorageLevel::MemoryOnly));
    Segments.back().count(); // materialize in address order, up front
  }

  double Checksum = 0.0;
  for (unsigned P = 0; P != Phases; ++P) {
    const Rdd &HotSeg = Segments[P % NumSegments];
    double PhaseSum = 0.0;
    for (unsigned Pass = 0; Pass != PassesPerPhase; ++Pass) {
      // Each pass streams the hot segment through a fresh map (allocating
      // in eden, so minor GCs -- the migration safepoints -- fire inside
      // the phase) and folds it with a pass-dependent weight.
      double W = 1.0 + 0.001 * static_cast<double>(Pass);
      Rdd View = HotSeg.map([W](RddContext &C, ObjRef T) {
        return C.makeTuple(C.key(T), C.value(T) * W);
      });
      PhaseSum += View.reduce([](double A, double B) { return A + B; });
    }
    Checksum += PhaseSum / (1.0 + static_cast<double>(P));
  }
  return Checksum;
}

//===----------------------------------------------------------------------===
// Registry
//===----------------------------------------------------------------------===

const std::vector<WorkloadSpec> &panthera::workloads::allWorkloads() {
  static const std::vector<WorkloadSpec> Specs = {
      {"PR", "PageRank", "power-law graph (Wikipedia-de substitute)",
       PageRankDsl, runPageRank},
      {"KM", "K-Means", "Gaussian-mixture points (Wikipedia-en substitute)",
       KMeansDsl, runKMeans},
      {"LR", "Logistic Regression",
       "labeled Gaussian points (Wikipedia-en substitute)", LogisticDsl,
       runLogistic},
      {"TC", "Transitive Closure",
       "small power-law graph (Notre Dame substitute)", TransitiveClosureDsl,
       runTransitiveClosure},
      {"CC", "GraphX-Connected Components",
       "symmetrized power-law graph (Wikipedia-en substitute)",
       ConnectedComponentsDsl, runConnectedComponents},
      {"SSSP", "GraphX-Single Source Shortest Path",
       "symmetrized power-law graph (Wikipedia-en substitute)",
       ShortestPathsDsl, runShortestPaths},
      {"BC", "MLlib-Naive Bayes Classifiers",
       "Zipf feature events (KDD 2012 substitute)", NaiveBayesDsl,
       runNaiveBayes},
  };
  return Specs;
}

const std::vector<WorkloadSpec> &panthera::workloads::extensionWorkloads() {
  static const std::vector<WorkloadSpec> Specs = {
      {"SW", "Shifting Working Set",
       "six persisted segments, hot segment rotating per phase "
       "(adversarial for static placement)",
       ShiftingDsl, runShiftingWorkingSet},
  };
  return Specs;
}

const WorkloadSpec *
panthera::workloads::findWorkload(std::string_view ShortName) {
  for (const WorkloadSpec &Spec : allWorkloads())
    if (Spec.ShortName == ShortName)
      return &Spec;
  for (const WorkloadSpec &Spec : extensionWorkloads())
    if (Spec.ShortName == ShortName)
      return &Spec;
  return nullptr;
}
