//===- fuzz/FuzzSchedule.h - Seeded heap-torture schedules ------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gc_fuzz action DSL (docs/fuzzing.md) and its SplitMix64-seeded
/// generator. A schedule is a flat vector of actions whose operands are
/// either concrete values fixed at generation time (sizes, tags, GC burst
/// lengths) or raw 64-bit selectors that the differential runner resolves
/// against the *current* live-object set at replay time -- so truncating a
/// schedule for shrinking never changes the meaning of the surviving
/// prefix, and the same (seed, ops) pair always replays bit-identically.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_FUZZ_FUZZSCHEDULE_H
#define PANTHERA_FUZZ_FUZZSCHEDULE_H

#include "gc/GcPolicy.h"
#include "heap/HeapConfig.h"

#include <cstdint>
#include <string>
#include <vector>

namespace panthera {
namespace fuzz {

/// One heap action. Operand meaning depends on the opcode; "selector"
/// operands are raw 64-bit values resolved modulo the live-object (or
/// root) count at replay time.
enum class FuzzOp : uint8_t {
  AllocPlain,    ///< A = ref slots, B = payload bytes.
  AllocRefArray, ///< A = length (may be pretenure-sized).
  AllocPrimArray,///< A = length, B = element bytes (1/2/4/8).
  AllocHuge,     ///< A = kind (0/1/2), B = a length whose computed object
                 ///< size exceeds the uint32 header field: must throw.
  AllocNative,   ///< A = bytes (sometimes adversarially huge).
  StoreRef,      ///< A = source selector, B = slot selector, C = target
                 ///< selector (UINT64_MAX stores null).
  WritePayload,  ///< A = object selector, B = offset selector, C = value.
  AddRoot,       ///< A = object selector (adds a second root).
  DropRoot,      ///< A = root selector (unpersists; may create garbage).
  SetPendingTag, ///< A = tag selector (DRAM/NVM), B = RDD id selector.
  MinorGc,       ///< Forced minor collection.
  MajorGc,       ///< Forced major collection.
  MinorGcBurst,  ///< A = count: consecutive minor GCs, synced per GC.
  IncMarkStep,   ///< One bounded incremental mark step, if a cycle is
                 ///< active (docs/gc_pause.md); a no-op otherwise.
  OffHeapStub,   ///< Off-heap cache-tier churn (docs/offheap.md): A =
                 ///< record count, B/C raw selectors. Allocates a native
                 ///< region + GC-leaf stub, or spills a live stub back
                 ///< out (read-verify, null the handle, release). A no-op
                 ///< for configs without an off-heap claim.
};

const char *fuzzOpName(FuzzOp Op);

struct FuzzAction {
  FuzzOp Op;
  uint64_t A = 0;
  uint64_t B = 0;
  uint64_t C = 0;
};

/// Relative action weights plus the size knobs the generator draws from.
/// Each named config ships a profile tuned to its heap shape.
struct FuzzProfile {
  unsigned WAllocPlain = 20;
  unsigned WAllocRefArray = 10;
  unsigned WAllocPrimArray = 8;
  unsigned WAllocHuge = 2;
  unsigned WAllocNative = 3;
  unsigned WStoreRef = 20;
  unsigned WWritePayload = 10;
  unsigned WAddRoot = 3;
  unsigned WDropRoot = 8;
  unsigned WSetPendingTag = 5;
  unsigned WMinorGc = 6;
  unsigned WMajorGc = 2;
  unsigned WMinorGcBurst = 3;
  /// Default 0: only the incremental config draws mark steps, so every
  /// frozen (seed, ops, config) triple keeps its exact schedule.
  unsigned WIncMarkStep = 0;
  /// Default 0 for the same freezing reason: only the offheap config
  /// draws stub churn.
  unsigned WOffHeapStub = 0;
  uint32_t MaxStubRecords = 64; ///< OffHeapStub record-count cap.

  uint32_t MaxPlainRefs = 8;       ///< Plain objects: 0..MaxPlainRefs slots.
  uint32_t MaxSmallPayload = 256;  ///< Plain payload cap (bytes).
  uint32_t MaxArrayLen = 64;       ///< Non-pretenure array length cap.
  double LargeArrayChance = 0.25;  ///< Chance an array is pretenure-sized.
  uint32_t LargeArrayMin = 1024;   ///< Pretenure length range (>= the
  uint32_t LargeArrayMax = 3072;   ///< scaled LargeArrayElems threshold).
  uint32_t MaxBurst = 16;          ///< MinorGcBurst count range [1, MaxBurst].
  uint32_t MaxNativeBytes = 65536; ///< Regular native allocation cap.
};

/// The three heap shapes the harness tortures (ROADMAP robustness item).
enum class FuzzConfigKind : uint8_t {
  Dram,     ///< DRAM-only baseline: unified old gen, no tags.
  Split,    ///< Panthera split old gen: tags, eager promotion, padding.
  Pressure, ///< Tiny Panthera heap, TenureAge = 255, giant GC bursts,
            ///< allocation fault injection: survivor-age and OOM torture.
  Incremental, ///< Small Panthera heap with a pause budget and a low
               ///< occupancy trigger: SATB incremental marking torture,
               ///< steps interleaved with every mutator action kind.
  OffHeap,     ///< Split config plus a small off-heap region claim and
               ///< stub-churn actions: leaf stubs interleave with GCs so
               ///< evacuation must carry stub payloads verbatim and must
               ///< never trace them as references.
};

const char *fuzzConfigName(FuzzConfigKind K);
bool parseFuzzConfig(const std::string &Name, FuzzConfigKind &Out);

/// Everything needed to instantiate one differential run.
struct FuzzSetup {
  heap::HeapConfig Config;
  gc::PolicyKind Policy = gc::PolicyKind::Panthera;
  FuzzProfile Profile;
  /// Bernoulli probability of an injected mutator-allocation failure
  /// (FaultSite::Allocation); 0 disables the injector entirely.
  double FaultProbability = 0.0;
  /// Off-heap region claim carved from NativeBytes (0 = no claim; the
  /// OffHeapStub action is then a no-op).
  uint64_t OffHeapBytes = 0;
};

FuzzSetup makeFuzzSetup(FuzzConfigKind K);

/// Generates the first \p NumOps actions of seed \p Seed's schedule. A
/// prefix of a longer schedule from the same seed is always identical.
std::vector<FuzzAction> generateSchedule(uint64_t Seed, size_t NumOps,
                                         const FuzzProfile &Profile);

} // namespace fuzz
} // namespace panthera

#endif // PANTHERA_FUZZ_FUZZSCHEDULE_H
