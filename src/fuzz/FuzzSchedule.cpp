//===- fuzz/FuzzSchedule.cpp - Seeded heap-torture schedules --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzSchedule.h"

#include "heap/ObjectModel.h"
#include "support/Random.h"
#include "support/Units.h"

using namespace panthera;
using namespace panthera::fuzz;

const char *panthera::fuzz::fuzzOpName(FuzzOp Op) {
  switch (Op) {
  case FuzzOp::AllocPlain:
    return "alloc-plain";
  case FuzzOp::AllocRefArray:
    return "alloc-ref-array";
  case FuzzOp::AllocPrimArray:
    return "alloc-prim-array";
  case FuzzOp::AllocHuge:
    return "alloc-huge";
  case FuzzOp::AllocNative:
    return "alloc-native";
  case FuzzOp::StoreRef:
    return "store-ref";
  case FuzzOp::WritePayload:
    return "write-payload";
  case FuzzOp::AddRoot:
    return "add-root";
  case FuzzOp::DropRoot:
    return "drop-root";
  case FuzzOp::SetPendingTag:
    return "set-pending-tag";
  case FuzzOp::MinorGc:
    return "minor-gc";
  case FuzzOp::MajorGc:
    return "major-gc";
  case FuzzOp::MinorGcBurst:
    return "minor-gc-burst";
  case FuzzOp::IncMarkStep:
    return "inc-mark-step";
  case FuzzOp::OffHeapStub:
    return "offheap-stub";
  }
  return "?";
}

const char *panthera::fuzz::fuzzConfigName(FuzzConfigKind K) {
  switch (K) {
  case FuzzConfigKind::Dram:
    return "dram";
  case FuzzConfigKind::Split:
    return "split";
  case FuzzConfigKind::Pressure:
    return "pressure";
  case FuzzConfigKind::Incremental:
    return "incremental";
  case FuzzConfigKind::OffHeap:
    return "offheap";
  }
  return "?";
}

bool panthera::fuzz::parseFuzzConfig(const std::string &Name,
                                     FuzzConfigKind &Out) {
  if (Name == "dram") {
    Out = FuzzConfigKind::Dram;
    return true;
  }
  if (Name == "split") {
    Out = FuzzConfigKind::Split;
    return true;
  }
  if (Name == "pressure") {
    Out = FuzzConfigKind::Pressure;
    return true;
  }
  if (Name == "incremental") {
    Out = FuzzConfigKind::Incremental;
    return true;
  }
  if (Name == "offheap") {
    Out = FuzzConfigKind::OffHeap;
    return true;
  }
  return false;
}

FuzzSetup panthera::fuzz::makeFuzzSetup(FuzzConfigKind K) {
  FuzzSetup S;
  switch (K) {
  case FuzzConfigKind::Dram:
    S.Policy = gc::PolicyKind::DramOnly;
    S.Config = gc::makeHeapConfig(S.Policy, /*HeapPaperGB=*/4, 1.0);
    S.Config.NativeBytes = PaperGB;
    break;
  case FuzzConfigKind::Split:
    S.Policy = gc::PolicyKind::Panthera;
    S.Config = gc::makeHeapConfig(S.Policy, /*HeapPaperGB=*/8, 1.0 / 3.0);
    S.Config.NativeBytes = PaperGB;
    S.Profile.WSetPendingTag = 8;
    S.Profile.LargeArrayChance = 0.35;
    break;
  case FuzzConfigKind::Pressure:
    S.Policy = gc::PolicyKind::Panthera;
    S.Config = gc::makeHeapConfig(S.Policy, /*HeapPaperGB=*/2, 1.0 / 3.0);
    S.Config.NativeBytes = PaperGB / 4;
    // A large nursery squeezes the old generation down to ~1/4 of the
    // heap, so pretenured arrays and eager promotions genuinely fill it.
    S.Config.NurseryFraction = 0.75;
    // Saturation torture: untagged objects effectively never tenure by
    // age, so survivor ages climb toward 255 across long GC bursts, and
    // the occupancy trigger is disabled so no automatic major GC resets
    // the ladder (explicit MajorGc actions still run).
    S.Config.Tuning.TenureAge = 255;
    S.Config.Tuning.MajorGcOccupancy = 2.0;
    S.Profile.WSetPendingTag = 10;
    S.Profile.WAllocRefArray = 14;
    S.Profile.WMinorGcBurst = 10;
    S.Profile.WMajorGc = 1;
    S.Profile.WDropRoot = 6;
    S.Profile.LargeArrayChance = 0.5;
    S.Profile.LargeArrayMax = 2048;
    S.Profile.MaxBurst = 384;
    S.FaultProbability = 0.01;
    break;
  case FuzzConfigKind::Incremental:
    S.Policy = gc::PolicyKind::Panthera;
    S.Config = gc::makeHeapConfig(S.Policy, /*HeapPaperGB=*/2, 1.0 / 3.0);
    S.Config.NativeBytes = PaperGB / 4;
    // A pause budget plus a very low occupancy trigger: almost every
    // minor GC starts an incremental cycle, and the explicit
    // inc-mark-step actions advance it between mutator actions so SATB
    // capture, allocate-black, and the minor-GC drain all interleave
    // with stores, root churn, and evacuations.
    S.Config.Tuning.MaxPauseUs = 25;
    S.Config.Tuning.MajorGcOccupancy = 0.05;
    // Allocation pacing stays off (steps come only from explicit
    // actions): the shadow oracle's pending-tag model assumes an OOM
    // thrown from inside an array allocation claimed the tag first,
    // which a compaction overflow surfacing through the allocation
    // safepoint would violate.
    S.Config.Tuning.IncStepAllocs = UINT32_MAX;
    S.Profile.WSetPendingTag = 8;
    S.Profile.LargeArrayChance = 0.35;
    S.Profile.WIncMarkStep = 12;
    break;
  case FuzzConfigKind::OffHeap:
    // The split shape plus a half-native off-heap claim: small enough
    // that stub churn exhausts it and exercises spill + free-list
    // recycling, while the GC mix keeps evacuating the stubs themselves.
    S.Policy = gc::PolicyKind::Panthera;
    S.Config = gc::makeHeapConfig(S.Policy, /*HeapPaperGB=*/8, 1.0 / 3.0);
    S.Config.NativeBytes = PaperGB;
    S.OffHeapBytes = PaperGB / 2;
    S.Profile.WSetPendingTag = 8;
    S.Profile.LargeArrayChance = 0.35;
    S.Profile.WOffHeapStub = 14;
    break;
  }
  return S;
}

std::vector<FuzzAction>
panthera::fuzz::generateSchedule(uint64_t Seed, size_t NumOps,
                                 const FuzzProfile &P) {
  SplitMix64 Rng(Seed);
  const unsigned Weights[] = {
      P.WAllocPlain,   P.WAllocRefArray, P.WAllocPrimArray, P.WAllocHuge,
      P.WAllocNative,  P.WStoreRef,      P.WWritePayload,   P.WAddRoot,
      P.WDropRoot,     P.WSetPendingTag, P.WMinorGc,        P.WMajorGc,
      P.WMinorGcBurst, P.WIncMarkStep,   P.WOffHeapStub,
  };
  unsigned Total = 0;
  for (unsigned W : Weights)
    Total += W;

  std::vector<FuzzAction> Schedule;
  Schedule.reserve(NumOps);
  for (size_t I = 0; I != NumOps; ++I) {
    unsigned Pick = static_cast<unsigned>(Rng.nextBelow(Total));
    unsigned OpIdx = 0;
    while (Pick >= Weights[OpIdx]) {
      Pick -= Weights[OpIdx];
      ++OpIdx;
    }
    FuzzAction A;
    A.Op = static_cast<FuzzOp>(OpIdx);
    switch (A.Op) {
    case FuzzOp::AllocPlain:
      A.A = Rng.nextBelow(P.MaxPlainRefs + 1);
      A.B = Rng.nextBelow(P.MaxSmallPayload + 1);
      break;
    case FuzzOp::AllocRefArray:
      A.A = Rng.nextDouble() < P.LargeArrayChance
                ? P.LargeArrayMin +
                      Rng.nextBelow(P.LargeArrayMax - P.LargeArrayMin + 1)
                : Rng.nextBelow(P.MaxArrayLen + 1);
      break;
    case FuzzOp::AllocPrimArray: {
      static const uint32_t Elem[] = {1, 2, 4, 8};
      A.A = Rng.nextDouble() < P.LargeArrayChance
                ? P.LargeArrayMin +
                      Rng.nextBelow(P.LargeArrayMax - P.LargeArrayMin + 1)
                : Rng.nextBelow(P.MaxArrayLen + 1);
      A.B = Elem[Rng.nextBelow(4)];
      break;
    }
    case FuzzOp::AllocHuge:
      // Lengths chosen so the 64-bit object size always exceeds the
      // uint32 header field (heap::MaxObjectBytes): a correct heap must
      // reject these with a typed allocation error before touching any
      // space, and a wrapped 32-bit size computation visibly does not.
      A.A = Rng.nextBelow(3);
      switch (A.A) {
      case 0: // Plain: payload alone overflows once the header is added.
        A.B = UINT32_MAX - Rng.nextBelow(16);
        break;
      case 1: // RefArray: length * 8 overflows.
        A.B = (heap::MaxObjectBytes / heap::RefSlotBytes) + 1 +
              Rng.nextBelow(1u << 20);
        break;
      default: // PrimArray of 8-byte elements: length * 8 overflows.
        A.B = (heap::MaxObjectBytes / 8) + 1 + Rng.nextBelow(1u << 20);
        break;
      }
      break;
    case FuzzOp::AllocNative:
      switch (Rng.nextBelow(8)) {
      case 0: // Huge: exercises the bump-pointer wraparound guard.
        A.A = (UINT64_MAX / 2) + Rng.nextBelow(UINT64_MAX / 4);
        break;
      case 1: // Alignment wrap: rounding to 8 overflows uint64.
        A.A = UINT64_MAX - Rng.nextBelow(7);
        break;
      case 2: // Already 8-aligned near-max: survives the alignment guard,
              // so Top + Bytes wraps inside Space::allocate unless the
              // space bounds-checks by subtraction.
        A.A = (UINT64_MAX - 7) - 8 * Rng.nextBelow(1u << 19);
        break;
      default:
        A.A = Rng.nextBelow(P.MaxNativeBytes + 1);
        break;
      }
      break;
    case FuzzOp::StoreRef:
      A.A = Rng.next();
      A.B = Rng.next();
      A.C = Rng.next();
      if (Rng.nextBelow(8) == 0)
        A.C = UINT64_MAX; // clear the slot instead
      break;
    case FuzzOp::WritePayload:
      A.A = Rng.next();
      A.B = Rng.next();
      A.C = Rng.next();
      break;
    case FuzzOp::AddRoot:
    case FuzzOp::DropRoot:
      A.A = Rng.next();
      break;
    case FuzzOp::SetPendingTag:
      A.A = Rng.next();
      A.B = Rng.nextBelow(1u << 16); // adversarial RDD ids, 0 included
      break;
    case FuzzOp::MinorGc:
    case FuzzOp::MajorGc:
    case FuzzOp::IncMarkStep:
      break;
    case FuzzOp::MinorGcBurst:
      A.A = 1 + Rng.nextBelow(P.MaxBurst);
      break;
    case FuzzOp::OffHeapStub:
      A.A = 1 + Rng.nextBelow(P.MaxStubRecords);
      A.B = Rng.next();
      A.C = Rng.next();
      break;
    }
    Schedule.push_back(A);
  }
  return Schedule;
}
