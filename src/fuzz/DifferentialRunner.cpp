//===- fuzz/DifferentialRunner.cpp - Replay + oracle diff -----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Replay engine. The real heap and the shadow graph execute every action
// in lockstep; whenever a collection ran (detected through the collector's
// GC counters, so collections triggered from inside allocation paths are
// caught too) the runner re-establishes object identity with a pairing
// traversal: shadow roots and real persistent roots are walked in the same
// deterministic order, and every (shadow node, real object) pair must
// agree on kind, length, element width, RDD id, header size, and every
// payload byte. The traversal is a graph-isomorphism check, so it subsumes
// a reachable-multiset diff; MEMORY_BITS monotonicity and the survivor-age
// clock are checked relationally per sync window; card-table first-object
// coverage and old->young dirty-card coverage come from gc::verifyHeap.
//
//===----------------------------------------------------------------------===//

#include "fuzz/DifferentialRunner.h"

#include "fuzz/ShadowHeap.h"
#include "gc/Collector.h"
#include "gc/HeapVerifier.h"
#include "memsim/HybridMemory.h"
#include "offheap/RegionAllocator.h"
#include "support/Errors.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_map>

using namespace panthera;
using namespace panthera::fuzz;
using heap::Heap;
using heap::ObjectHeader;
using heap::ObjectKind;
using heap::ObjRef;

namespace {

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t FnvPrime = 0x100000001b3ull;

class Runner {
public:
  Runner(const FuzzOptions &Opts, const std::vector<FuzzAction> &Schedule)
      : Opts(Opts), Schedule(Schedule), Setup(makeFuzzSetup(Opts.Config)) {}

  FuzzResult run() {
    Mem = std::make_unique<memsim::HybridMemory>(
        heap::HeapConfig::alignPage(4096 + Setup.Config.HeapBytes +
                                    Setup.Config.NativeBytes),
        memsim::MemoryTechnology{}, memsim::CacheConfig{});
    H = std::make_unique<Heap>(Setup.Config, *Mem);
    C = std::make_unique<gc::Collector>(*H, Setup.Policy, nullptr);
    if (Opts.Threads >= 1) {
      Pool = std::make_unique<support::WorkStealingPool>(Opts.Threads);
      C->setThreadPool(Pool.get());
    }
    FaultPlan Plan;
    Plan.Seed = Opts.Seed;
    bool WantFaults = false;
    if (Setup.FaultProbability > 0.0) {
      Plan.site(FaultSite::Allocation).Probability = Setup.FaultProbability;
      WantFaults = true;
    }
    if (Opts.Executors > 1) {
      // Executors mode also interleaves the degraded-cluster sites
      // (docs/robustness.md): every action draws slow-executor and
      // transient-fetch. A slow-executor fire models the replica falling
      // behind and collecting more often (forced minor GC -- a real heap
      // effect the digests must agree on); a fetch fire is absorbed by
      // the retry layer and only counted. Both schedules are pure
      // functions of the seed, so all replicas see identical fires.
      Plan.site(FaultSite::SlowExecutor).Probability = 1.0 / 64.0;
      Plan.site(FaultSite::FetchTransient).Probability = 1.0 / 32.0;
      WantFaults = true;
    }
    if (WantFaults) {
      Faults = std::make_unique<FaultInjector>(Plan);
      H->setFaultInjector(Faults.get());
    }
    NativeFree = H->native().sizeBytes();
    if (Setup.OffHeapBytes > 0) {
      // The off-heap claim comes out of the same native bump pointer the
      // AllocNative oracle models, so it must be counted as consumed.
      OffHeapAlloc = std::make_unique<offheap::RegionAllocator>(
          *H, Setup.OffHeapBytes, /*MinClaimBytes=*/4096);
      NativeFree -= OffHeapAlloc->claimBytes();
    }
    Digest = FnvOffset;

    for (size_t I = 0; I != Schedule.size() && R.Ok; ++I) {
      Current = I;
      execute(Schedule[I]);
      ++R.ActionsRun;
      if (!R.Ok)
        break;
      if (Faults && Opts.Executors > 1) {
        Faults->shouldFail(FaultSite::FetchTransient); // counted only
        if (Faults->shouldFail(FaultSite::SlowExecutor))
          collect(/*Major=*/false);
      }
      if (!R.Ok)
        break;
      if (epoch() != SyncedEpoch)
        sync();
      if (R.Ok && H->pendingArrayTag() != ShadowPendingTag)
        fail("pending rdd_alloc tag mismatch: heap=%d shadow=%d",
             static_cast<int>(H->pendingArrayTag()),
             static_cast<int>(ShadowPendingTag));
    }
    if (R.Ok) {
      Current = Schedule.size() ? Schedule.size() - 1 : 0;
      sync(); // final diff even for schedules that never collected
    }
    // Fold the off-heap allocator's lifecycle counters into the digest: a
    // replica whose region carve/recycle/release history diverged fails
    // the cross-executor comparison even with matching heap images.
    if (OffHeapAlloc) {
      const offheap::RegionAllocatorStats &OS = OffHeapAlloc->stats();
      Digest = (Digest ^ OS.RegionsCarved) * FnvPrime;
      Digest = (Digest ^ OS.RegionsRecycled) * FnvPrime;
      Digest = (Digest ^ OS.RegionsReleased) * FnvPrime;
      Digest = (Digest ^ OS.BytesAllocated) * FnvPrime;
      Digest = (Digest ^ OS.AllocFailures) * FnvPrime;
    }
    // Fold the interleaved fault-fire counts into the digest: a replica
    // whose fire schedule diverged fails the cross-executor comparison
    // even if its heap image happens to match.
    if (Faults) {
      Digest = (Digest ^ Faults->fired(FaultSite::SlowExecutor)) * FnvPrime;
      Digest = (Digest ^ Faults->fired(FaultSite::FetchTransient)) * FnvPrime;
    }
    // Fold the remap generation: every device remap (migration or layout
    // change) must bump it, so a replica whose migration history diverged
    // -- or a remap path that forgot the bump and left victimDeviceOf's
    // cache stale -- breaks the digest.
    Digest = (Digest ^ Mem->map().generation()) * FnvPrime;
    R.Digest = Digest;
    R.MinorGcs = C->stats().MinorGcs;
    R.MajorGcs = C->stats().MajorGcs;
    R.OomErrorsThrown = H->stats().OomErrorsThrown;
    R.LiveObjectsAtEnd = Live.size();
    return R;
  }

private:
  struct RootEntry {
    size_t HeapId;
    uint32_t Node;
  };

  uint64_t epoch() const { return C->stats().MinorGcs + C->stats().MajorGcs; }

  void fail(const char *Fmt, ...) {
    char Buf[512];
    va_list Ap;
    va_start(Ap, Fmt);
    std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
    va_end(Ap);
    R.Ok = false;
    char Full[640];
    std::snprintf(Full, sizeof(Full), "action %zu (%s): %s", Current,
                  fuzzOpName(Schedule.empty() ? FuzzOp::MinorGc
                                              : Schedule[Current].Op),
                  Buf);
    R.Problem = Full;
    R.FailingAction = Current;
  }

  //===--- action execution -----------------------------------------------===

  void execute(const FuzzAction &A) {
    switch (A.Op) {
    case FuzzOp::AllocPlain:
      allocate(A.Op, static_cast<uint32_t>(A.A), static_cast<uint32_t>(A.B));
      break;
    case FuzzOp::AllocRefArray:
      allocate(A.Op, static_cast<uint32_t>(A.A), 0);
      break;
    case FuzzOp::AllocPrimArray:
      allocate(A.Op, static_cast<uint32_t>(A.A), static_cast<uint32_t>(A.B));
      break;
    case FuzzOp::AllocHuge:
      switch (A.A) {
      case 0:
        allocate(FuzzOp::AllocPlain, 0, static_cast<uint32_t>(A.B));
        break;
      case 1:
        allocate(FuzzOp::AllocRefArray, static_cast<uint32_t>(A.B), 0);
        break;
      default:
        allocate(FuzzOp::AllocPrimArray, static_cast<uint32_t>(A.B), 8);
        break;
      }
      break;
    case FuzzOp::AllocNative:
      allocNative(A.A);
      break;
    case FuzzOp::StoreRef:
      storeRef(A);
      break;
    case FuzzOp::WritePayload:
      writePayload(A);
      break;
    case FuzzOp::AddRoot:
      if (!Live.empty()) {
        uint32_t Id = Live[A.A % Live.size()];
        addRoot(H->addPersistentRoot(ObjRef(Shadow.node(Id).RealAddr)), Id);
      }
      break;
    case FuzzOp::DropRoot:
      if (!Roots.empty()) {
        size_t Idx = A.A % Roots.size();
        H->removePersistentRoot(Roots[Idx].HeapId);
        Roots.erase(Roots.begin() + static_cast<ptrdiff_t>(Idx));
        recomputeLive();
      }
      break;
    case FuzzOp::SetPendingTag: {
      MemTag T = (A.A % 2) == 0 ? MemTag::Dram : MemTag::Nvm;
      uint32_t Rdd = static_cast<uint32_t>(A.B);
      H->setPendingArrayTag(T, Rdd);
      ShadowPendingTag = T;
      ShadowPendingRdd = Rdd;
      break;
    }
    case FuzzOp::MinorGc:
      collect(/*Major=*/false);
      break;
    case FuzzOp::MajorGc:
      collect(/*Major=*/true);
      break;
    case FuzzOp::MinorGcBurst:
      for (uint64_t I = 0; I != A.A && R.Ok; ++I) {
        collect(/*Major=*/false);
        if (R.Ok && epoch() != SyncedEpoch)
          sync();
      }
      break;
    case FuzzOp::IncMarkStep:
      // A no-op unless a cycle is active. The step that empties the gray
      // stack triggers the finishing major GC, which can throw a
      // compaction overflow just like an explicit MajorGc action.
      try {
        C->incrementalStep();
      } catch (const OutOfMemoryError &) {
        GcThrewInWindow = true;
      }
      break;
    case FuzzOp::OffHeapStub:
      if (OffHeapAlloc)
        offHeapChurn(A);
      break;
    }
  }

  void collect(bool Major) {
    try {
      if (Major)
        C->collectMajor("fuzz");
      else
        C->collectMinor("fuzz");
    } catch (const OutOfMemoryError &) {
      // Compaction overflow: the live set does not fit. The plan was
      // unwound with the heap intact; the next sync verifies that.
      GcThrewInWindow = true;
    }
  }

  /// Unified managed-allocation handler. Computes the oracle's
  /// prediction, runs the real allocation, and mirrors the outcome.
  void allocate(FuzzOp Kind, uint32_t A, uint32_t B) {
    const heap::GcTuning &T = H->config().Tuning;
    uint64_t Size64 = 0;
    uint32_t Length = 0;
    switch (Kind) {
    case FuzzOp::AllocPlain:
      Size64 = heap::plainObjectSize(A, B);
      break;
    case FuzzOp::AllocRefArray:
      Size64 = heap::refArraySize(A);
      Length = A;
      break;
    case FuzzOp::AllocPrimArray:
      Size64 = heap::primArraySize(A, B);
      Length = A;
      break;
    default:
      return;
    }
    bool IsArray = Kind != FuzzOp::AllocPlain;
    bool MustThrow = Size64 > heap::MaxObjectBytes;
    bool ConsumesPending = IsArray && ShadowPendingTag != MemTag::None &&
                           Length >= T.LargeArrayElems;

    ObjRef Ref;
    bool Threw = false;
    try {
      switch (Kind) {
      case FuzzOp::AllocPlain:
        Ref = H->allocPlain(A, B);
        break;
      case FuzzOp::AllocRefArray:
        Ref = H->allocRefArray(A);
        break;
      default:
        Ref = H->allocPrimArray(A, B);
        break;
      }
    } catch (const OutOfMemoryError &) {
      Threw = true;
      GcThrewInWindow = true; // allocation may have burned failed GCs
    }

    if (MustThrow) {
      if (!Threw)
        fail("size %" PRIu64 " overflows the uint32 header field but the "
             "allocation succeeded",
             Size64);
      // The size check precedes pending-tag consumption: the tag stays
      // armed, and the shadow graph is untouched.
      return;
    }
    if (Threw) {
      // Legitimate (or injected) OOM. The pending tag is consumed exactly
      // when a pretenure-sized array got far enough to claim it.
      if (ConsumesPending) {
        ShadowPendingTag = MemTag::None;
        ShadowPendingRdd = 0;
      }
      return;
    }

    uint64_t Addr = Ref.addr();
    bool Young = H->isYoung(Addr);
    if (!Young && !H->isOld(Addr)) {
      fail("allocation returned 0x%" PRIx64 " outside every heap space",
           Addr);
      return;
    }

    ShadowNode N;
    N.ExpectedSize = static_cast<uint32_t>(Size64);
    MemTag WantTag = MemTag::None;
    uint32_t WantRdd = 0;
    switch (Kind) {
    case FuzzOp::AllocPlain:
      N.Kind = ObjectKind::Plain;
      N.NumRefs = A;
      N.PayloadBytes = B;
      N.Refs.assign(A, NoNode);
      N.Payload.assign(B, 0);
      break;
    case FuzzOp::AllocRefArray:
      N.Kind = ObjectKind::RefArray;
      N.Length = Length;
      N.Refs.assign(Length, NoNode);
      // A claimed tag survives even when the old generation was full and
      // the array fell back to a young allocation (the GC promotes it
      // eagerly later); the RDD id travels with it.
      if (ConsumesPending) {
        WantTag = ShadowPendingTag;
        WantRdd = ShadowPendingRdd;
      }
      break;
    default:
      N.Kind = ObjectKind::PrimArray;
      N.Length = Length;
      N.ElemBytes = B;
      N.Payload.assign(static_cast<size_t>(Length) * B, 0);
      // The serialized-cache path keeps the tag only when the array
      // actually landed in the old generation; the young fallback
      // allocates it untagged.
      if (ConsumesPending && !Young) {
        WantTag = ShadowPendingTag;
        WantRdd = ShadowPendingRdd;
      }
      break;
    }
    if (ConsumesPending) {
      ShadowPendingTag = MemTag::None;
      ShadowPendingRdd = 0;
    }
    N.RddId = WantRdd;
    N.LastTag = WantTag;
    N.LastAge = 0;
    N.LastWasYoung = Young;
    N.RealAddr = Addr;
    N.BirthEpoch = epoch();

    const ObjectHeader *Hdr = H->header(Addr);
    if (Hdr->SizeBytes != N.ExpectedSize || Hdr->kind() != N.Kind)
      fail("freshly allocated header disagrees: size %u kind %u, expected "
           "size %u kind %u",
           Hdr->SizeBytes, unsigned(Hdr->Kind), N.ExpectedSize,
           unsigned(N.Kind));
    else if (Hdr->memTag() != WantTag || Hdr->RddId != WantRdd)
      fail("freshly allocated tag/rdd disagree: tag %s rdd %u, expected "
           "%s/%u",
           memTagName(Hdr->memTag()), Hdr->RddId, memTagName(WantTag),
           WantRdd);
    else if (Hdr->Age != 0 || Hdr->isForwarded())
      fail("freshly allocated object has age %u / forward 0x%" PRIx64,
           unsigned(Hdr->Age), Hdr->Forward);
    if (!R.Ok)
      return;

    uint32_t Id = Shadow.create(std::move(N));
    addRoot(H->addPersistentRoot(Ref), Id);
  }

  void allocNative(uint64_t Bytes) {
    uint64_t Aligned = (Bytes + 7) & ~7ull;
    bool MustThrow = Aligned < Bytes || Aligned > NativeFree;
    bool Threw = false;
    uint64_t Addr = 0;
    try {
      Addr = H->allocNative(Bytes);
    } catch (const OutOfMemoryError &) {
      Threw = true;
    }
    // The native region is exactly modeled (bump pointer, no collection),
    // so the oracle predicts success and failure both ways.
    if (MustThrow && !Threw)
      fail("native allocation of %" PRIu64 " bytes must fail (%" PRIu64
           " free) but returned 0x%" PRIx64,
           Bytes, NativeFree, Addr);
    else if (!MustThrow && Threw)
      fail("native allocation of %" PRIu64 " bytes failed with %" PRIu64
           " bytes free",
           Bytes, NativeFree);
    else if (!Threw)
      NativeFree -= Aligned;
  }

  void storeRef(const FuzzAction &A) {
    std::vector<uint32_t> Sources;
    for (uint32_t Id : Live)
      if (Shadow.node(Id).refSlots() > 0)
        Sources.push_back(Id);
    if (Sources.empty() || Live.empty())
      return;
    uint32_t Src = Sources[A.A % Sources.size()];
    ShadowNode &S = Shadow.node(Src);
    uint32_t Slot = static_cast<uint32_t>(A.B % S.refSlots());
    uint32_t Dst = A.C == UINT64_MAX ? NoNode : Live[A.C % Live.size()];
    ObjRef Value =
        Dst == NoNode ? ObjRef() : ObjRef(Shadow.node(Dst).RealAddr);
    H->storeRef(ObjRef(S.RealAddr), Slot, Value);
    S.Refs[Slot] = Dst;
    recomputeLive(); // the overwritten edge may have orphaned a subgraph
  }

  void writePayload(const FuzzAction &A) {
    std::vector<uint32_t> Writable;
    for (uint32_t Id : Live) {
      const ShadowNode &N = Shadow.node(Id);
      if ((N.Kind == ObjectKind::Plain && N.PayloadBytes >= 8) ||
          (N.Kind == ObjectKind::PrimArray && N.ElemBytes == 8 &&
           N.Length > 0))
        Writable.push_back(Id);
    }
    if (Writable.empty())
      return;
    ShadowNode &N = Shadow.node(Writable[A.A % Writable.size()]);
    int64_t Value = static_cast<int64_t>(A.C);
    if (N.Kind == ObjectKind::Plain) {
      uint32_t Off = static_cast<uint32_t>(A.B % (N.PayloadBytes / 8)) * 8;
      H->storeI64(ObjRef(N.RealAddr), Off, Value);
      std::memcpy(&N.Payload[Off], &Value, 8);
    } else {
      uint32_t Idx = static_cast<uint32_t>(A.B % N.Length);
      H->storeElemI64(ObjRef(N.RealAddr), Idx, Value);
      std::memcpy(&N.Payload[static_cast<size_t>(Idx) * 8], &Value, 8);
    }
  }

  /// Off-heap tier churn (docs/offheap.md). Allocate: serialize a seeded
  /// record pattern into a fresh region and hang a GC-leaf stub off a new
  /// root. Spill: read a live stub's records back and verify them against
  /// the pattern -- region bytes live outside the collector's reach and
  /// must never change -- then null the handle and release the region so
  /// the free list recycles its storage.
  void offHeapChurn(const FuzzAction &A) {
    if ((A.B % 4) == 3) {
      if (!Stubs.empty())
        spillStub(A.C % Stubs.size());
      return;
    }
    uint32_t Count = static_cast<uint32_t>(A.A);
    uint64_t Bytes = static_cast<uint64_t>(Count) * 8;
    uint32_t Region = OffHeapAlloc->allocRegion(Bytes);
    if (Region == offheap::NoRegion && !Stubs.empty()) {
      // Budget exhausted: spill the lowest-region live stub (the cache
      // tier's untouched-first order degenerates to this here) and retry.
      size_t VictimIdx = 0;
      for (size_t I = 1; I != Stubs.size(); ++I)
        if (Stubs[I].Region < Stubs[VictimIdx].Region)
          VictimIdx = I;
      spillStub(VictimIdx);
      if (!R.Ok)
        return;
      Region = OffHeapAlloc->allocRegion(Bytes);
    }
    if (Region == offheap::NoRegion)
      return; // nothing spillable; the stats fold records the failure
    uint64_t Addr = OffHeapAlloc->regionAlloc(Region, Bytes);
    std::vector<uint64_t> Records(Count);
    for (uint32_t I = 0; I != Count; ++I)
      Records[I] = A.C + I * 0x9e3779b97f4a7c15ull;
    H->nativeWriteRecords(Addr, Records.data(), Count, 8);
    uint32_t Rdd = static_cast<uint32_t>(A.B % (1u << 16));
    ObjRef Stub;
    try {
      Stub = H->allocOffHeapStub(Addr, Region, Count, Rdd);
    } catch (const OutOfMemoryError &) {
      GcThrewInWindow = true; // the stub OOMed; the region rolls back
      OffHeapAlloc->release(Region);
      return;
    }
    const ObjectHeader *Hdr = H->header(Stub.addr());
    if (Hdr->kind() != ObjectKind::OffHeapStub ||
        Hdr->SizeBytes != heap::offHeapStubSize() || Hdr->Length != Count ||
        Hdr->RddId != Rdd || Hdr->Age != 0) {
      fail("freshly allocated stub header disagrees: kind %u size %u "
           "length %u rdd %u age %u",
           unsigned(Hdr->Kind), Hdr->SizeBytes, Hdr->Length, Hdr->RddId,
           unsigned(Hdr->Age));
      return;
    }
    ShadowNode N;
    N.Kind = ObjectKind::OffHeapStub;
    N.Length = Count;
    N.RddId = Rdd;
    N.ExpectedSize = static_cast<uint32_t>(heap::offHeapStubSize());
    N.Payload.assign(heap::OffHeapStubPayloadBytes, 0);
    std::memcpy(N.Payload.data(), &Addr, 8);
    std::memcpy(N.Payload.data() + 8, &Region, 4);
    N.RealAddr = Stub.addr();
    N.BirthEpoch = epoch();
    uint32_t Id = Shadow.create(std::move(N));
    addRoot(H->addPersistentRoot(Stub), Id);
    Stubs.push_back(StubEntry{Id, Region, Addr, Count, A.C});
  }

  /// Reads a stub's region back, verifies every record, nulls the stub's
  /// native handle (the engine's spilled-to-disk marker), and releases
  /// the region.
  void spillStub(size_t Idx) {
    StubEntry E = Stubs[Idx];
    Stubs.erase(Stubs.begin() + static_cast<ptrdiff_t>(Idx));
    std::vector<uint64_t> Back(E.Count);
    H->nativeReadRecords(E.Addr, Back.data(), E.Count, 8);
    for (uint32_t I = 0; I != E.Count; ++I)
      if (Back[I] != E.Pattern + I * 0x9e3779b97f4a7c15ull) {
        fail("off-heap region %u record %u corrupted: 0x%" PRIx64
             ", expected 0x%" PRIx64,
             E.Region, I, Back[I], E.Pattern + I * 0x9e3779b97f4a7c15ull);
        return;
      }
    ShadowNode &N = Shadow.node(E.Node);
    H->setStubNativeAddr(ObjRef(N.RealAddr), offheap::NoAddress);
    uint64_t None = offheap::NoAddress;
    std::memcpy(N.Payload.data(), &None, 8);
    OffHeapAlloc->release(E.Region);
  }

  //===--- roots and liveness ---------------------------------------------===

  void addRoot(size_t HeapId, uint32_t Node) {
    // Persistent-root slots are reused, so keep the list sorted by slot id
    // to mirror the order Heap::forEachRoot visits them in.
    auto It = std::lower_bound(Roots.begin(), Roots.end(), HeapId,
                               [](const RootEntry &E, size_t Id) {
                                 return E.HeapId < Id;
                               });
    Roots.insert(It, RootEntry{HeapId, Node});
    recomputeLive();
  }

  void recomputeLive() {
    std::vector<uint32_t> RootIds;
    RootIds.reserve(Roots.size());
    for (const RootEntry &E : Roots)
      RootIds.push_back(E.Node);
    Live = Shadow.mark(RootIds);
    Shadow.retainOnly(Live);
    // A stub that just died unpersisted its partition: release the region
    // so later churn recycles it through the free list.
    for (size_t I = Stubs.size(); I-- > 0;) {
      if (Shadow.alive(Stubs[I].Node))
        continue;
      OffHeapAlloc->release(Stubs[I].Region);
      Stubs.erase(Stubs.begin() + static_cast<ptrdiff_t>(I));
    }
  }

  //===--- the differential sync ------------------------------------------===

  void hash(uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      Digest ^= (V >> (I * 8)) & 0xff;
      Digest *= FnvPrime;
    }
  }
  void hashBytes(const uint8_t *P, size_t N) {
    for (size_t I = 0; I != N; ++I) {
      Digest ^= P[I];
      Digest *= FnvPrime;
    }
  }

  /// Re-establishes shadow<->real identity after collections moved
  /// objects, checking every oracle invariant along the way.
  void sync() {
    uint64_t DMinor = C->stats().MinorGcs - SyncedMinor;
    uint64_t DMajor = C->stats().MajorGcs - SyncedMajor;
    bool OneMinor = DMinor == 1 && DMajor == 0 && !GcThrewInWindow;
    bool MajorOnly = DMinor == 0 && DMajor >= 1;
    const heap::GcTuning &T = H->config().Tuning;

    gc::VerifyOptions VOpts;
    VOpts.CheckCardMarking = true;
    gc::VerifyResult V = gc::verifyHeap(*H, VOpts);
    if (!V.Ok) {
      fail("heap verifier: %s", V.FirstProblem.c_str());
      return;
    }

    hash(DMinor);
    hash(DMajor);

    std::unordered_map<uint32_t, uint64_t> Paired;
    std::unordered_map<uint64_t, uint32_t> RealOwner;
    std::vector<std::pair<uint32_t, uint64_t>> Stack;
    for (auto It = Roots.rbegin(); It != Roots.rend(); ++It) {
      ObjRef Root = H->persistentRoot(It->HeapId);
      if (!Root) {
        fail("persistent root %zu nulled while its object is live",
             It->HeapId);
        return;
      }
      Stack.emplace_back(It->Node, Root.addr());
    }

    while (!Stack.empty() && R.Ok) {
      auto [Id, Addr] = Stack.back();
      Stack.pop_back();
      auto It = Paired.find(Id);
      if (It != Paired.end()) {
        if (It->second != Addr)
          fail("shadow object %u reached at 0x%" PRIx64 " and 0x%" PRIx64
               ": one oracle object aliases two heap objects",
               Id, It->second, Addr);
        continue;
      }
      auto Ro = RealOwner.find(Addr);
      if (Ro != RealOwner.end()) {
        fail("heap object 0x%" PRIx64
             " paired with shadow %u and %u: two oracle objects collapsed",
             Addr, Ro->second, Id);
        return;
      }
      Paired.emplace(Id, Addr);
      RealOwner.emplace(Addr, Id);
      if (!checkPair(Id, Addr, OneMinor, MajorOnly, T))
        return;
      ShadowNode &N = Shadow.node(Id);
      for (size_t S = N.Refs.size(); S-- > 0;) {
        ObjRef Child = H->rawLoadRef(Addr, static_cast<uint32_t>(S));
        if (N.Refs[S] == NoNode) {
          if (Child) {
            fail("slot %zu of shadow %u must be null but heap holds "
                 "0x%" PRIx64,
                 S, Id, Child.addr());
            return;
          }
          continue;
        }
        if (!Child) {
          fail("slot %zu of shadow %u lost its referent (heap slot null)",
               S, Id);
          return;
        }
        Stack.emplace_back(N.Refs[S], Child.addr());
      }
    }
    if (!R.Ok)
      return;

    // Reachable-set equality: the traversal visited every live shadow
    // node exactly when the real heap kept it; a shadow node it never
    // reached would mean the real collector freed (or unlinked) a live
    // object.
    if (Paired.size() != Live.size()) {
      fail("reachable sets differ: oracle %zu live objects, pairing found "
           "%zu",
           Live.size(), Paired.size());
      return;
    }

    SyncedMinor = C->stats().MinorGcs;
    SyncedMajor = C->stats().MajorGcs;
    SyncedEpoch = epoch();
    GcThrewInWindow = false;
  }

  bool checkPair(uint32_t Id, uint64_t Addr, bool OneMinor, bool MajorOnly,
                 const heap::GcTuning &T) {
    ShadowNode &N = Shadow.node(Id);
    const ObjectHeader *Hdr = H->header(Addr);
    bool Young = H->isYoung(Addr);
    if (!Young && !H->isOld(Addr)) {
      fail("shadow %u maps to 0x%" PRIx64 " outside every heap space", Id,
           Addr);
      return false;
    }
    if (Hdr->kind() != N.Kind || Hdr->SizeBytes != N.ExpectedSize ||
        Hdr->Length != (N.Kind == ObjectKind::Plain
                            ? N.NumRefs * heap::RefSlotBytes + N.PayloadBytes
                            : N.Length) ||
        Hdr->Aux != (N.Kind == ObjectKind::Plain
                         ? N.NumRefs
                         : N.Kind == ObjectKind::PrimArray ? N.ElemBytes
                                                           : 0u)) {
      fail("shadow %u header mismatch at 0x%" PRIx64
           ": kind %u size %u length %u aux %u",
           Id, Addr, unsigned(Hdr->Kind), Hdr->SizeBytes, Hdr->Length,
           unsigned(Hdr->Aux));
      return false;
    }
    if (Hdr->RddId != N.RddId) {
      fail("shadow %u rdd id changed: heap %u, oracle %u", Id, Hdr->RddId,
           N.RddId);
      return false;
    }

    // Payload checksum (exact bytes, not just a digest, so the report can
    // name the first bad byte).
    const uint8_t *Real = nullptr;
    if (N.Kind == ObjectKind::Plain && N.PayloadBytes)
      Real = H->rawBytes(Addr + sizeof(ObjectHeader) +
                         static_cast<uint64_t>(N.NumRefs) *
                             heap::RefSlotBytes);
    else if (N.Kind == ObjectKind::PrimArray && !N.Payload.empty())
      Real = H->rawBytes(Addr + sizeof(ObjectHeader));
    else if (N.Kind == ObjectKind::OffHeapStub)
      // The stub's region handle must ride every evacuation verbatim.
      Real = H->rawBytes(Addr + sizeof(ObjectHeader));
    if (Real && !N.Payload.empty() &&
        std::memcmp(Real, N.Payload.data(), N.Payload.size()) != 0) {
      size_t Bad = 0;
      while (Real[Bad] == N.Payload[Bad])
        ++Bad;
      fail("shadow %u payload corrupted at byte %zu: heap %02x, oracle "
           "%02x",
           Id, Bad, Real[Bad], N.Payload[Bad]);
      return false;
    }

    // MEMORY_BITS only ever strengthen (None -> NVM -> DRAM): minor GCs
    // merge tags monotonically and nothing in these configs retags
    // downward (dynamic migration is inert without an access monitor).
    if (mergeTags(Hdr->memTag(), N.LastTag) != Hdr->memTag()) {
      fail("shadow %u MEMORY_BITS weakened: %s -> %s", Id,
           memTagName(N.LastTag), memTagName(Hdr->memTag()));
      return false;
    }

    // Survivor-age clock, exact over unambiguous windows. Objects born
    // after this window's collections have nothing to age-check yet.
    if (N.BirthEpoch != epoch()) {
      if (OneMinor) {
        if (N.LastWasYoung && Young) {
          uint8_t Want = N.LastAge == 255 ? 255 : N.LastAge + 1;
          if (Hdr->Age != Want) {
            fail("shadow %u survivor age clock broken: age %u after a "
                 "minor gc, expected %u (was %u)",
                 Id, unsigned(Hdr->Age), unsigned(Want),
                 unsigned(N.LastAge));
            return false;
          }
        } else if (N.LastWasYoung && !Young) {
          if (Hdr->Age != N.LastAge) {
            fail("shadow %u promotion changed its age: %u -> %u", Id,
                 unsigned(N.LastAge), unsigned(Hdr->Age));
            return false;
          }
        } else if (!N.LastWasYoung &&
                   (Young || Addr != N.RealAddr || Hdr->Age != N.LastAge)) {
          fail("shadow %u old-generation object moved or re-aged during a "
               "minor gc",
               Id);
          return false;
        }
      } else if (MajorOnly) {
        // A completed major compaction tenures everything at TenureAge; a
        // failed one (compaction overflow) leaves the object untouched.
        bool Compacted = !Young && Hdr->Age == T.TenureAge;
        bool Untouched = Addr == N.RealAddr && Hdr->Age == N.LastAge &&
                         Young == N.LastWasYoung;
        if (!Compacted && !Untouched) {
          fail("shadow %u after major gc: age %u young=%d, expected "
               "tenured at %u or untouched",
               Id, unsigned(Hdr->Age), int(Young), unsigned(T.TenureAge));
          return false;
        }
      }
    }

    N.LastTag = Hdr->memTag();
    N.LastAge = Hdr->Age;
    N.LastWasYoung = Young;
    N.RealAddr = Addr;

    hash(Addr);
    hash(static_cast<uint64_t>(Hdr->Kind) | (uint64_t(Hdr->Flags) << 8) |
         (uint64_t(Hdr->Age) << 16) | (uint64_t(Hdr->Aux) << 24) |
         (uint64_t(Hdr->Length) << 32));
    hash(Hdr->RddId);
    if (!N.Payload.empty() && Real)
      hashBytes(Real, N.Payload.size());
    return true;
  }

  FuzzOptions Opts;
  const std::vector<FuzzAction> &Schedule;
  FuzzSetup Setup;
  std::unique_ptr<memsim::HybridMemory> Mem;
  std::unique_ptr<Heap> H;
  std::unique_ptr<gc::Collector> C;
  std::unique_ptr<support::WorkStealingPool> Pool;
  std::unique_ptr<FaultInjector> Faults;

  ShadowHeap Shadow;
  std::vector<RootEntry> Roots;
  std::vector<uint32_t> Live;
  /// Off-heap tier state (only for configs with an OffHeapBytes claim).
  std::unique_ptr<offheap::RegionAllocator> OffHeapAlloc;
  struct StubEntry {
    uint32_t Node;    ///< Shadow node id of the on-heap stub.
    uint32_t Region;  ///< Region backing the cached records.
    uint64_t Addr;    ///< Native address of the first record.
    uint32_t Count;   ///< Records in the region.
    uint64_t Pattern; ///< Seed of the record pattern (read-back check).
  };
  std::vector<StubEntry> Stubs; ///< Live (unspilled) stubs only.
  MemTag ShadowPendingTag = MemTag::None;
  uint32_t ShadowPendingRdd = 0;
  uint64_t NativeFree = 0;

  uint64_t SyncedMinor = 0, SyncedMajor = 0, SyncedEpoch = 0;
  bool GcThrewInWindow = false;
  uint64_t Digest = 0;
  size_t Current = 0;
  FuzzResult R;
};

} // namespace

FuzzResult panthera::fuzz::runSchedule(const FuzzOptions &Opts,
                                       const std::vector<FuzzAction> &S) {
  FuzzResult First = Runner(Opts, S).run();
  // Cluster mode: replay the schedule on each additional executor heap and
  // require a bit-identical heap image. Divergence here means per-executor
  // heaps do not evolve deterministically from their inputs, which would
  // sink the cluster's thread/executor-count invariance guarantees.
  for (unsigned E = 1; E < Opts.Executors && First.Ok; ++E) {
    FuzzResult R = Runner(Opts, S).run();
    if (!R.Ok)
      return R;
    if (R.Digest != First.Digest) {
      First.Ok = false;
      First.Problem = "executor " + std::to_string(E) +
                      " heap digest diverged from executor 0 under an "
                      "identical schedule";
      First.FailingAction = S.empty() ? 0 : S.size() - 1;
      return First;
    }
  }
  return First;
}

FuzzResult panthera::fuzz::runDifferential(const FuzzOptions &Opts) {
  std::vector<FuzzAction> S = generateSchedule(
      Opts.Seed, Opts.NumOps, makeFuzzSetup(Opts.Config).Profile);
  return runSchedule(Opts, S);
}

size_t panthera::fuzz::shrinkToMinimalOps(const FuzzOptions &Opts) {
  std::vector<FuzzAction> Full = generateSchedule(
      Opts.Seed, Opts.NumOps, makeFuzzSetup(Opts.Config).Profile);
  auto Fails = [&](size_t N) {
    std::vector<FuzzAction> Prefix(Full.begin(),
                                   Full.begin() + static_cast<ptrdiff_t>(N));
    return !runSchedule(Opts, Prefix).Ok;
  };
  if (!Fails(Full.size()))
    return Opts.NumOps;
  // Divergence detection is monotone enough in practice for a binary
  // search over prefix length: find the shortest still-failing prefix.
  size_t Lo = 0, Hi = Full.size(); // Lo passes (empty schedule), Hi fails
  while (Hi - Lo > 1) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    if (Fails(Mid))
      Hi = Mid;
    else
      Lo = Mid;
  }
  return Hi;
}
