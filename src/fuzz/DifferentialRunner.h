//===- fuzz/DifferentialRunner.h - Replay + oracle diff ---------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a fuzz schedule against the real generational hybrid collector
/// and the ShadowHeap oracle in lockstep, diffing the two after every
/// collection (docs/fuzzing.md lists the invariants). On divergence the
/// result pins the failing action index so the shrinker can binary-search
/// the shortest failing schedule prefix.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_FUZZ_DIFFERENTIALRUNNER_H
#define PANTHERA_FUZZ_DIFFERENTIALRUNNER_H

#include "fuzz/FuzzSchedule.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace panthera {
namespace fuzz {

struct FuzzOptions {
  uint64_t Seed = 1;
  size_t NumOps = 512;
  FuzzConfigKind Config = FuzzConfigKind::Split;
  /// GC worker count. >= 1 installs a work-stealing pool (the parallel
  /// scavenge/mark paths, bit-identical at every count); 0 runs the
  /// serial collector paths instead.
  unsigned Threads = 1;
  /// Executor heaps driven from the one schedule (docs/cluster.md). With
  /// N > 1 the schedule replays against N independent heap + oracle
  /// instances -- the cluster's per-executor heaps -- and the run also
  /// fails if any replica's synced-heap digest diverges from the first's
  /// (identical schedules must produce bit-identical heaps).
  unsigned Executors = 1;
};

struct FuzzResult {
  bool Ok = true;
  std::string Problem;          ///< First divergence, human-readable.
  size_t FailingAction = SIZE_MAX; ///< Schedule index of the divergence.
  uint64_t Digest = 0;   ///< FNV-1a over every synced heap image; equal
                         ///< digests mean bit-identical runs.
  uint64_t MinorGcs = 0;
  uint64_t MajorGcs = 0;
  uint64_t OomErrorsThrown = 0;
  uint64_t LiveObjectsAtEnd = 0;
  uint64_t ActionsRun = 0;
};

/// Generates seed/ops' schedule and replays it differentially.
FuzzResult runDifferential(const FuzzOptions &Opts);

/// Replays an explicit schedule (the shrinker and hand-written regression
/// repros use this).
FuzzResult runSchedule(const FuzzOptions &Opts,
                       const std::vector<FuzzAction> &Schedule);

/// Binary-shrinks a failing (seed, ops) pair to the shortest failing
/// prefix length. Requires that runDifferential(Opts) already failed;
/// returns Opts.NumOps unchanged if it does not fail.
size_t shrinkToMinimalOps(const FuzzOptions &Opts);

} // namespace fuzz
} // namespace panthera

#endif // PANTHERA_FUZZ_DIFFERENTIALRUNNER_H
