//===- fuzz/ShadowHeap.h - Reference oracle object graph --------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzzer's reference oracle: a shadow object graph kept
/// entirely outside the simulated heap, mutated in lockstep with every
/// fuzz action. Liveness is decided by a naive stop-the-world mark from
/// the shadow roots -- no generations, no cards, no moving -- so any
/// disagreement with the real collector's surviving graph is the real
/// collector's bug (or the model's, which the shrinker makes cheap to
/// tell apart).
///
/// Besides structure, every node tracks the header facts the oracle can
/// predict exactly (kind, length, element width, RDD id, full payload
/// bytes) and the per-sync-window observations (last MEMORY_BITS tag,
/// survivor age, young/old residency, real address) that the runner's
/// invariant checks consume.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_FUZZ_SHADOWHEAP_H
#define PANTHERA_FUZZ_SHADOWHEAP_H

#include "heap/ObjectModel.h"
#include "support/MemTag.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace panthera {
namespace fuzz {

constexpr uint32_t NoNode = UINT32_MAX;

/// One shadow object. Reference slots hold shadow node ids (NoNode for
/// null), never real heap addresses -- identity between the two heaps is
/// established structurally by the runner's pairing traversal.
struct ShadowNode {
  heap::ObjectKind Kind = heap::ObjectKind::Plain;
  uint32_t NumRefs = 0;     ///< Plain: leading reference slots.
  uint32_t Length = 0;      ///< Arrays: element count.
  uint32_t ElemBytes = 0;   ///< PrimArray element width.
  uint32_t PayloadBytes = 0;///< Plain raw payload bytes.
  uint32_t RddId = 0;
  uint32_t ExpectedSize = 0;///< The header SizeBytes the real heap must carry.
  std::vector<uint32_t> Refs;  ///< Node ids, NoNode = null slot.
  std::vector<uint8_t> Payload;///< Exact expected payload bytes.

  // Last-sync observations for the relational invariants.
  MemTag LastTag = MemTag::None;
  uint8_t LastAge = 0;
  bool LastWasYoung = true;
  uint64_t RealAddr = 0;    ///< Refreshed by every pairing traversal.
  uint64_t BirthEpoch = 0;  ///< GC count when allocated (age-rule guard).

  uint32_t refSlots() const {
    return Kind == heap::ObjectKind::RefArray ? Length
           : Kind == heap::ObjectKind::Plain  ? NumRefs
                                              : 0;
  }
};

/// The shadow graph plus its ~naive mark. Node ids are never reused, so a
/// stale id can never silently alias a newer object.
class ShadowHeap {
public:
  uint32_t create(ShadowNode N) {
    uint32_t Id = NextId++;
    Nodes.emplace(Id, std::move(N));
    return Id;
  }

  ShadowNode &node(uint32_t Id) { return Nodes.at(Id); }
  const ShadowNode &node(uint32_t Id) const { return Nodes.at(Id); }
  bool alive(uint32_t Id) const { return Nodes.count(Id) != 0; }
  size_t size() const { return Nodes.size(); }

  /// Stop-the-world mark from \p RootIds in order: returns every reachable
  /// node exactly once, in deterministic depth-first preorder. This is the
  /// oracle's entire collection algorithm.
  std::vector<uint32_t> mark(const std::vector<uint32_t> &RootIds) const {
    std::vector<uint32_t> Order;
    std::unordered_map<uint32_t, bool> Seen;
    std::vector<uint32_t> Stack;
    for (auto It = RootIds.rbegin(); It != RootIds.rend(); ++It)
      Stack.push_back(*It);
    while (!Stack.empty()) {
      uint32_t Id = Stack.back();
      Stack.pop_back();
      if (Seen[Id])
        continue;
      Seen[Id] = true;
      Order.push_back(Id);
      const ShadowNode &N = Nodes.at(Id);
      for (auto It = N.Refs.rbegin(); It != N.Refs.rend(); ++It)
        if (*It != NoNode && !Seen[*It])
          Stack.push_back(*It);
    }
    return Order;
  }

  /// Discards every node not in \p LiveIds (the oracle's "sweep").
  void retainOnly(const std::vector<uint32_t> &LiveIds) {
    std::unordered_map<uint32_t, ShadowNode> Kept;
    Kept.reserve(LiveIds.size());
    for (uint32_t Id : LiveIds)
      Kept.emplace(Id, std::move(Nodes.at(Id)));
    Nodes = std::move(Kept);
  }

private:
  std::unordered_map<uint32_t, ShadowNode> Nodes;
  uint32_t NextId = 0;
};

} // namespace fuzz
} // namespace panthera

#endif // PANTHERA_FUZZ_SHADOWHEAP_H
