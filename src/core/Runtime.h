//===- core/Runtime.h - The Panthera runtime facade -------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level facade a user (and every benchmark) interacts with: a
/// Runtime assembles the hybrid-memory simulator, the managed heap, the
/// Panthera collector, the access monitor, and the Spark-like engine for a
/// chosen policy/heap/DRAM-ratio configuration; runs the §3 static analysis
/// on a driver program; and reports simulated time, device traffic, and
/// energy for the run.
///
/// Typical use:
/// \code
///   core::RuntimeConfig Config;
///   Config.Policy = gc::PolicyKind::Panthera;
///   core::Runtime RT(Config);
///   RT.analyzeAndInstall(PageRankDsl);
///   ... build RDDs through RT.ctx(), run actions ...
///   core::RunReport Report = RT.report();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_CORE_RUNTIME_H
#define PANTHERA_CORE_RUNTIME_H

#include "analysis/TagInference.h"
#include "cluster/Cluster.h"
#include "gc/Collector.h"
#include "offheap/OffHeapCache.h"
#include "gc/GcPolicy.h"
#include "memsim/HotnessTracker.h"
#include "memsim/HybridMemory.h"
#include "memsim/Migration.h"
#include "rdd/Rdd.h"
#include "support/FaultInjector.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/TraceLog.h"

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

namespace panthera {
namespace core {

/// Everything needed to stand up one experiment configuration.
struct RuntimeConfig {
  gc::PolicyKind Policy = gc::PolicyKind::Panthera;
  /// Heap size in paper gigabytes (64 and 120 in the evaluation).
  unsigned HeapPaperGB = 64;
  /// DRAM : total memory (the paper's 1/4 and 1/3; ignored for DRAM-only).
  double DramRatio = 1.0 / 3.0;
  /// Nursery fraction of the heap (§5.2 settles on 1/6).
  double NurseryFraction = 1.0 / 6.0;
  rdd::EngineConfig Engine;
  memsim::MemoryTechnology Technology;
  memsim::CacheConfig Cache;
  memsim::EnergyParams Energy;
  /// Memory-simulator access implementation (--memsim-path). Batched is
  /// the production fast path; PerLine is the reference loop kept for the
  /// bit-identity diff. Applied to the driver's and every executor's
  /// simulated memory.
  memsim::AccessPathMode AccessPath = memsim::AccessPathMode::Batched;
  /// Fig 8 bandwidth-trace bucket, in simulated nanoseconds.
  double EpochNs = 100.0e3;
  /// GC tuning overrides (ablations flip these).
  bool EagerPromotion = true;
  bool CardPadding = true;
  /// Debugging: verify the heap after every collection.
  bool VerifyHeap = false;
  /// Off-heap native region, paper GB.
  unsigned NativePaperGB = 16;
  /// Off-heap serialized cache tier budget (--offheap-mb), in paper MB,
  /// carved out of the native region (docs/offheap.md). 0 (the default)
  /// constructs no tier at all: OFF_HEAP persists run the seed
  /// NativeParts path and the run is byte-identical, including the
  /// metrics-JSON key set.
  unsigned OffHeapMB = 0;
  /// Deterministic fault-injection plan (all sites disabled by default).
  FaultPlan Faults;
  /// Verify the heap after every recovery path: emergency GC, pressure
  /// eviction, task retry. Tests default this on.
  bool VerifyHeapAfterRecovery = false;
  /// Worker threads shared by stage execution and GC (--threads). 0 means
  /// auto: the PANTHERA_THREADS environment variable if set, otherwise
  /// std::thread::hardware_concurrency(). Results and simulated
  /// time/energy are identical at every thread count; only wall-clock
  /// changes.
  unsigned NumThreads = 0;
  /// Cluster simulation knobs (docs/cluster.md). NumExecutors == 1 (the
  /// default) constructs no cluster at all: the engine runs the seed
  /// single-heap path byte-identically. With N > 1, each executor carves
  /// HeapPaperGB/N of heap and NativePaperGB/N of native region, tasks
  /// place by locality, and remote shuffle fetches ride the fabric.
  cluster::ClusterOptions Cluster;
  /// Online hotness profiling + between-GC migration; consulted only when
  /// Policy == PantheraDynamic (docs/memsim.md). Sampling stride in
  /// accounted cache lines (--hotness-sample); 0 disables the profiler
  /// and the engine entirely, making the dynamic policy byte-identical to
  /// static Panthera.
  uint64_t HotnessSampleEvery = 64;
  /// Samples-per-page density at which a region counts as migration-hot
  /// (--migrate-threshold).
  double MigrateHotThreshold = 2.0;
  /// Page-swap budget per between-GC migration step (--migrate-max-pages).
  uint64_t MigrateMaxPagesPerStep = 256;
  /// Incremental old-generation marking pause budget in microseconds
  /// (--max-pause-us, docs/gc_pause.md). 0 (the default) keeps the
  /// stop-the-world collector byte-identical, including the metrics-JSON
  /// key set.
  uint32_t MaxPauseUs = 0;
  /// Allocations between incremental mark steps (--inc-step-allocs):
  /// smaller paces the cycle harder, finishing the trace sooner at the
  /// cost of more (still budget-bounded) pauses. Ignored at MaxPauseUs=0.
  uint32_t IncStepAllocs = 64;
  /// NG2C-style allocation-site pretenuring (--pretenure-calls): a tagged
  /// array below the large-array threshold is pretenured when its RDD's
  /// AccessMonitor call count in the current window reaches this value. 0
  /// (the default) disables the oracle entirely.
  uint32_t PretenureMinCalls = 0;
};

/// Summary of one finished run.
struct RunReport {
  double MutatorNs = 0.0;
  double GcNs = 0.0;
  double TotalNs = 0.0;
  memsim::TrafficCounters DramTraffic;
  memsim::TrafficCounters NvmTraffic;
  memsim::EnergyBreakdown Energy;
  double TotalJoules = 0.0;
  double DramGB = 0.0; ///< Provisioned DRAM (paper GB) used for energy.
  double NvmGB = 0.0;
  gc::GcStats Gc;
  rdd::EngineStats Engine;
  uint64_t MonitoredCalls = 0;
  /// Per-task attempt ledger (stage, partition, attempts, outcome).
  TaskLedger Tasks;
};

/// Assembles and owns one full system instance.
class Runtime {
public:
  explicit Runtime(const RuntimeConfig &Config);

  const RuntimeConfig &config() const { return Config; }
  memsim::HybridMemory &memory() { return *Mem; }
  heap::Heap &heap() { return *TheHeap; }
  gc::Collector &collector() { return *TheCollector; }
  gc::AccessMonitor &monitor() { return Monitor; }
  rdd::SparkContext &ctx() { return *Context; }
  /// Nonnull only when Config.Faults enables at least one site.
  FaultInjector *faults() { return Injector.get(); }
  /// Nonnull only under --policy=dynamic with a nonzero sampling stride.
  memsim::HotnessTracker *hotnessTracker() { return Hot.get(); }
  memsim::MigrationEngine *migrationEngine() { return Migration.get(); }
  support::WorkStealingPool &pool() { return *Pool; }
  /// Nonnull only when Config.Cluster.NumExecutors > 1.
  cluster::Cluster *clusterSim() { return TheCluster.get(); }
  /// Nonnull only when Config.OffHeapMB > 0.
  offheap::OffHeapCache *offHeapCache() { return OffHeapTier.get(); }

  /// Parses \p DslSource, runs the §3 inference (plus any enabled
  /// extensions), and installs the result on the engine (only Panthera
  /// consumes the tags). Aborts on parse errors -- driver programs ship
  /// with the workloads and must be valid.
  const analysis::AnalysisResult &analyzeAndInstall(
      std::string_view DslSource,
      const analysis::AnalysisOptions &Options = {});

  const analysis::AnalysisResult &analysis() const { return Tags; }

  /// Snapshot of simulated time / traffic / energy / GC counters.
  RunReport report() const;

  //===--------------------------------------------------------------------===
  // Observability (docs/observability.md)
  //===--------------------------------------------------------------------===

  /// The process-wide metrics registry. Live instrumentation (GC pause
  /// histograms, occupancy gauges, bandwidth series) lands here as the run
  /// progresses; scalar totals are synced by publishMetrics().
  support::MetricsRegistry &metrics() { return Metrics; }
  const support::MetricsRegistry &metrics() const { return Metrics; }

  /// The simulated-clock span/event trace (chrome://tracing exportable).
  support::TraceLog &trace() { return Trace; }
  const support::TraceLog &trace() const { return Trace; }

  /// Syncs every scalar counter/gauge (time.*, energy.*, gc.*, engine.*,
  /// heap.*, memsim.* totals) from the authoritative stats structs into
  /// the registry. Idempotent -- call any time, typically once after the
  /// workload finishes and before exporting.
  void publishMetrics();

  /// publishMetrics() + flat-JSON serialization of the registry.
  std::string metricsJson();
  void writeMetricsJson(std::FILE *F);

  /// chrome://tracing JSON serialization of the trace log.
  std::string traceJson() const { return Trace.toJson(); }
  void writeTraceJson(std::FILE *F) const { Trace.writeJson(F); }

private:
  RuntimeConfig Config;
  std::unique_ptr<support::WorkStealingPool> Pool;
  /// Declared before Mem/TheHeap/...: the subsystems hold pointers into
  /// these for live instrumentation, so they must outlive them.
  support::MetricsRegistry Metrics;
  support::TraceLog Trace;
  std::unique_ptr<memsim::HybridMemory> Mem;
  std::unique_ptr<heap::Heap> TheHeap;
  gc::AccessMonitor Monitor;
  std::unique_ptr<gc::Collector> TheCollector;
  std::unique_ptr<rdd::SparkContext> Context;
  std::unique_ptr<cluster::Cluster> TheCluster;
  /// Off-heap serialized cache tier; non-null only when OffHeapMB > 0.
  std::unique_ptr<offheap::OffHeapCache> OffHeapTier;
  std::unique_ptr<FaultInjector> Injector;
  /// Online profiler + migration engine; non-null only for the dynamic
  /// policy with sampling on. Profiling covers the driver heap: executor
  /// heaps (cluster runs) never collect, so their placement is static and
  /// checksums stay invariant across --executors counts.
  std::unique_ptr<memsim::HotnessTracker> Hot;
  std::unique_ptr<memsim::MigrationEngine> Migration;
  analysis::AnalysisResult Tags;
};

} // namespace core
} // namespace panthera

#endif // PANTHERA_CORE_RUNTIME_H
