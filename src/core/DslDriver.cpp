//===- core/DslDriver.cpp - Execute driver-DSL programs -------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DslDriver.h"

#include "analysis/SparkOps.h"
#include "dsl/Parser.h"
#include "rdd/StorageLevel.h"

#include <cstdio>
#include <cstdlib>

using namespace panthera;
using namespace panthera::core;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::TupleSink;

namespace {

/// First identifier argument of a call, or "" when absent.
std::string fnArg(const dsl::MethodCall &Call) {
  if (!Call.Args.empty() && Call.Args[0].K == dsl::Arg::Kind::Var)
    return Call.Args[0].Text;
  return "";
}

rdd::MapFn builtinMap(const std::string &Name) {
  if (Name == "swap")
    return [](RddContext &C, ObjRef T) {
      return C.makeTuple(static_cast<int64_t>(C.value(T)),
                         static_cast<double>(C.key(T)));
    };
  if (Name == "double")
    return [](RddContext &C, ObjRef T) {
      return C.makeTuple(C.key(T), C.value(T) * 2.0);
    };
  if (Name == "negate")
    return [](RddContext &C, ObjRef T) {
      return C.makeTuple(C.key(T), -C.value(T));
    };
  if (Name == "one")
    return [](RddContext &C, ObjRef T) { return C.makeTuple(C.key(T), 1.0); };
  if (Name == "key")
    return [](RddContext &C, ObjRef T) {
      return C.makeTuple(C.key(T), static_cast<double>(C.key(T)));
    };
  // identity (default)
  return [](RddContext &C, ObjRef T) {
    return C.makeTuple(C.key(T), C.value(T));
  };
}

rdd::ValueFn builtinValueFn(const std::string &Name) {
  if (Name == "one")
    return [](double) { return 1.0; };
  if (Name == "double")
    return [](double V) { return V * 2.0; };
  if (Name == "negate")
    return [](double V) { return -V; };
  return [](double V) { return V; };
}

rdd::FilterFn builtinFilter(const std::string &Name) {
  if (Name == "even")
    return [](RddContext &C, ObjRef T) { return C.key(T) % 2 == 0; };
  if (Name == "odd")
    return [](RddContext &C, ObjRef T) { return C.key(T) % 2 != 0; };
  if (Name == "positive")
    return [](RddContext &C, ObjRef T) { return C.value(T) > 0.0; };
  return [](RddContext &, ObjRef) { return true; };
}

rdd::FlatMapFn builtinFlatMap(const std::string &Name) {
  if (Name == "dup")
    return [](RddContext &C, ObjRef T, const TupleSink &S) {
      int64_t K = C.key(T);
      double V = C.value(T);
      S(C.makeTuple(K, V));
      S(C.makeTuple(K, V));
    };
  return [](RddContext &C, ObjRef T, const TupleSink &S) {
    S(C.makeTuple(C.key(T), C.value(T)));
  };
}

rdd::CombineFn builtinCombine(const std::string &Name) {
  if (Name == "min")
    return [](double A, double B) { return A < B ? A : B; };
  if (Name == "max")
    return [](double A, double B) { return A > B ? A : B; };
  return [](double A, double B) { return A + B; };
}

/// Interpreter state and statement walker.
class Interp {
public:
  Interp(Runtime &RT, std::map<std::string, const rdd::SourceData *> &Data,
         std::map<std::string, int64_t> &Bounds,
         std::vector<std::unique_ptr<rdd::SourceData>> &Owned,
         DriverResult &Result)
      : RT(RT), Datasets(Data), LoopBounds(Bounds), OwnedData(Owned),
        Result(Result) {}

  void runBody(const std::vector<dsl::StmtPtr> &Body) {
    for (const dsl::StmtPtr &S : Body)
      runStmt(*S);
  }

private:
  const rdd::SourceData *datasetFor(const std::string &Name) {
    auto It = Datasets.find(Name);
    if (It != Datasets.end())
      return It->second;
    // Default synthetic dataset: 8000 rows, keys dense, values = key.
    auto Data = std::make_unique<rdd::SourceData>(
        RT.ctx().config().NumPartitions);
    for (int64_t I = 0; I != 8000; ++I)
      (*Data)[static_cast<size_t>(I) % Data->size()].push_back(
          {I, static_cast<double>(I % 97)});
    const rdd::SourceData *Ptr = Data.get();
    OwnedData.push_back(std::move(Data));
    Datasets[Name] = Ptr;
    return Ptr;
  }

  [[noreturn]] void fail(const dsl::SourceLoc &Loc, const char *What) {
    std::fprintf(stderr, "dsl driver %u:%u: error: %s\n", Loc.Line,
                 Loc.Column, What);
    std::abort();
  }

  Rdd lookup(const std::string &Var, const dsl::SourceLoc &Loc) {
    auto It = Env.find(Var);
    if (It == Env.end())
      fail(Loc, "use of an undefined RDD variable");
    return It->second;
  }

  /// Evaluates a chain; \p AssignVar names the variable being defined
  /// ("" for expression statements) so persist can attach to it.
  Rdd evalChain(const dsl::Chain &C, const std::string &AssignVar) {
    Rdd Cur;
    if (C.RootIsSource) {
      if (C.RootName == "rddAlloc")
        return Rdd(); // instrumentation no-op: the engine arms itself
      std::string Name =
          !C.RootArgs.empty() && C.RootArgs[0].K == dsl::Arg::Kind::Str
              ? C.RootArgs[0].Text
              : C.RootName;
      Cur = RT.ctx().source(datasetFor(Name));
    } else {
      Cur = lookup(C.RootName, C.Loc);
    }

    for (const dsl::MethodCall &Call : C.Calls) {
      const std::string &Op = Call.Name;
      if (Op == "map") {
        Cur = Cur.map(builtinMap(fnArg(Call)));
      } else if (Op == "mapValues") {
        Cur = Cur.mapValues(builtinValueFn(fnArg(Call)));
      } else if (Op == "filter") {
        Cur = Cur.filter(builtinFilter(fnArg(Call)));
      } else if (Op == "flatMap") {
        Cur = Cur.flatMap(builtinFlatMap(fnArg(Call)));
      } else if (Op == "groupByKey") {
        Cur = Cur.groupByKey();
      } else if (Op == "reduceByKey") {
        Cur = Cur.reduceByKey(builtinCombine(fnArg(Call)));
      } else if (Op == "distinct") {
        Cur = Cur.distinct();
      } else if (Op == "sortByKey") {
        Cur = Cur.sortByKey();
      } else if (Op == "sample") {
        double Fraction = 0.5;
        if (!Call.Args.empty() && Call.Args[0].K == dsl::Arg::Kind::Num)
          Fraction = static_cast<double>(Call.Args[0].Num) / 100.0;
        Cur = Cur.sample(Fraction, /*Seed=*/1234);
      } else if (Op == "join") {
        if (Call.Args.empty() || Call.Args[0].K != dsl::Arg::Kind::Var)
          fail(Call.Loc, "join needs an RDD variable argument");
        Rdd Right = lookup(Call.Args[0].Text, Call.Loc);
        Cur = Cur.join(Right, [](RddContext &C2, ObjRef Left, double RV) {
          return C2.makeTuple(C2.key(Left), C2.value(Left) + RV);
        });
      } else if (Op == "union" || Op == "unionWith") {
        if (Call.Args.empty() || Call.Args[0].K != dsl::Arg::Kind::Var)
          fail(Call.Loc, "union needs an RDD variable argument");
        Cur = Cur.unionWith(lookup(Call.Args[0].Text, Call.Loc));
      } else if (analysis::isPersist(Op)) {
        std::string Level = fnArg(Call);
        const std::string &Var =
            !AssignVar.empty() ? AssignVar : C.RootName;
        Cur = Cur.persistAs(Var, rdd::parseStorageLevel(Level));
      } else if (analysis::isUnpersist(Op)) {
        Cur.unpersist();
      } else if (Op == "count") {
        record(C, AssignVar, "count",
               static_cast<double>(Cur.count()));
      } else if (Op == "reduce") {
        record(C, AssignVar, "reduce",
               Cur.reduce(builtinCombine(fnArg(Call))));
      } else if (Op == "collect" || Op == "collectAsMap") {
        record(C, AssignVar, "collect",
               static_cast<double>(Cur.collect().size()));
      } else if (analysis::isAction(Op)) {
        record(C, AssignVar, Op.c_str(),
               static_cast<double>(Cur.count()));
      } else {
        fail(Call.Loc, "unknown method in driver program");
      }
    }
    return Cur;
  }

  void record(const dsl::Chain &C, const std::string &AssignVar,
              const char *Action, double Value) {
    std::string Owner = !AssignVar.empty()
                            ? AssignVar
                            : (C.RootIsSource ? "<source>" : C.RootName);
    Result.Actions.push_back({Owner + "." + Action, Value});
  }

  void runStmt(const dsl::Stmt &S) {
    switch (S.K) {
    case dsl::Stmt::Kind::Assign: {
      Rdd R = evalChain(S.Value, S.Var);
      if (R.valid())
        Env[S.Var] = R;
      break;
    }
    case dsl::Stmt::Kind::Expr:
      evalChain(S.Value, "");
      break;
    case dsl::Stmt::Kind::Loop: {
      int64_t End = S.LoopEnd;
      if (!S.LoopEndVar.empty()) {
        auto It = LoopBounds.find(S.LoopEndVar);
        End = It != LoopBounds.end() ? It->second : 3;
      }
      for (int64_t I = S.LoopBegin; I <= End; ++I)
        runBody(S.Body);
      break;
    }
    }
  }

  Runtime &RT;
  std::map<std::string, const rdd::SourceData *> &Datasets;
  std::map<std::string, int64_t> &LoopBounds;
  std::vector<std::unique_ptr<rdd::SourceData>> &OwnedData;
  DriverResult &Result;
  std::map<std::string, Rdd> Env;
};

} // namespace

void DslDriver::bindDataset(const std::string &Name,
                            const rdd::SourceData *Data) {
  Datasets[Name] = Data;
}

DriverResult DslDriver::run(std::string_view Source,
                            const analysis::AnalysisOptions &Options) {
  const analysis::AnalysisResult &Tags =
      RT.analyzeAndInstall(Source, Options);
  DriverResult Result;
  for (const auto &[Var, Info] : Tags.Vars)
    Result.Tags[Var] = Info.Tag;

  std::vector<dsl::Diagnostic> Diags;
  dsl::Program P = dsl::parseDriverProgram(Source, Diags);
  assert(Diags.empty() && "analyzeAndInstall already validated the source");

  Interp I(RT, Datasets, LoopBounds, OwnedData, Result);
  I.runBody(P.Body);
  return Result;
}
