//===- core/PantheraApi.h - The §4.3 data-placement APIs --------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two public APIs of §4.3, by which *any* managed Big Data system
/// whose backbone is a key-value array (Hadoop, Flink, Cassandra, ...)
/// can use the Panthera runtime without the Spark-specific analysis:
///
///  1. a pre-tenuring API that places a data structure according to a tag
///     supplied by developer annotation or a system-specific analysis; and
///  2. a dynamic-monitoring API that registers a data structure for
///     call-frequency tracking, leaving placement to the major GC's
///     migration pass instead of pre-tenuring.
///
/// The §4.3 worked example (HashJoin's build table: long-lived and
/// frequently probed, hence DRAM) lives in examples/hashjoin.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_CORE_PANTHERAAPI_H
#define PANTHERA_CORE_PANTHERAAPI_H

#include "gc/AccessMonitor.h"
#include "heap/Heap.h"

namespace panthera {
namespace core {

/// API #1 (pre-tenuring, allocation-time form): arms the runtime so the
/// next large array allocation is placed per \p Tag and stamped with
/// \p StructureId -- the §4.2.1 rdd_alloc protocol, exposed directly.
/// Cleared automatically by the allocation (or by passing MemTag::None).
inline void pretenureNextArray(heap::Heap &H, MemTag Tag,
                               uint32_t StructureId) {
  H.setPendingArrayTag(Tag, StructureId);
}

/// API #1 (pre-tenuring, retroactive form): tags an already-allocated
/// data structure. The tag is stamped into the object's MEMORY_BITS; the
/// next collection moves the object -- and, through tag-propagating
/// tracing, everything reachable from it -- into the matching space.
inline void tagDataStructure(heap::Heap &H, heap::ObjRef Root, MemTag Tag,
                             uint32_t StructureId = 0) {
  heap::ObjectHeader *Hdr = H.header(Root.addr());
  Hdr->setMemTag(Tag);
  if (StructureId != 0)
    Hdr->RddId = StructureId;
}

/// API #2 (dynamic monitoring): registers a data structure for
/// call-frequency tracking. Objects tracked this way should NOT be
/// pre-tenured (§4.3): they stay untagged and the major GC migrates them
/// between DRAM and NVM based on the counts recorded against
/// \p StructureId.
inline void trackDataStructure(heap::Heap &H, heap::ObjRef Root,
                               uint32_t StructureId) {
  H.header(Root.addr())->RddId = StructureId;
}

/// API #2: records one use of a tracked structure (the instrumented
/// call-site hook; the JNI call of §4.2.2).
inline void recordStructureUse(gc::AccessMonitor &Monitor,
                               uint32_t StructureId) {
  Monitor.recordCall(StructureId);
}

} // namespace core
} // namespace panthera

#endif // PANTHERA_CORE_PANTHERAAPI_H
