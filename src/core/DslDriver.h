//===- core/DslDriver.h - Execute driver-DSL programs -----------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An interpreter that runs driver-DSL programs end-to-end on the engine:
/// parse -> infer memory tags (§3) -> execute statements, building real
/// RDD lineage and triggering actions. With this, the DSL is a complete
/// little language: the same source the static analysis consumes is
/// executable, and its placement decisions can be observed live.
///
/// Record functions are chosen by an optional identifier argument from a
/// builtin registry (the DSL has no lambdas):
///
///   map(identity|swap|double|negate|one|key)   default: identity
///   mapValues(one|double|negate|identity)      default: identity
///   filter(even|odd|positive)                  default: keep all
///   flatMap(identity|dup)                      default: identity
///   reduceByKey(sum|min|max)                   default: sum
///   join(other)            combiner: (key, leftVal + rightVal)
///   union(other), groupByKey(), distinct(), sortByKey(), sample(P)
///   persist(LEVEL), unpersist(), count(), reduce(), collect()
///
/// Sources: `textFile("name")` reads the dataset bound under "name" (or a
/// default synthetic dataset when unbound); loop bounds with symbolic
/// upper ends (`for (i in 1..iters)`) resolve through the bounds map
/// (default 3).
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_CORE_DSLDRIVER_H
#define PANTHERA_CORE_DSLDRIVER_H

#include "core/Runtime.h"

#include <map>
#include <string>
#include <vector>

namespace panthera {
namespace core {

/// One executed action's outcome.
struct ActionOutcome {
  std::string Description; ///< e.g. "ranks.count"
  double Value = 0.0;
};

/// Results of one program execution.
struct DriverResult {
  std::vector<ActionOutcome> Actions;
  /// Variable -> final tag the engine used (from the installed analysis).
  std::map<std::string, MemTag> Tags;
};

/// Interprets driver programs against a Runtime's engine.
class DslDriver {
public:
  explicit DslDriver(Runtime &RT) : RT(RT) {}

  /// Binds the dataset \p Data (caller-owned) to textFile("\p Name").
  void bindDataset(const std::string &Name, const rdd::SourceData *Data);

  /// Sets the trip count used for `for (i in 1..<symbol>)` loops.
  void setLoopBound(const std::string &Symbol, int64_t Count) {
    LoopBounds[Symbol] = Count;
  }

  /// Parses, analyzes, installs tags, and executes \p Source. Aborts on
  /// parse errors; unknown builtin names fall back to their defaults.
  DriverResult run(std::string_view Source,
                   const analysis::AnalysisOptions &Options = {});

private:
  Runtime &RT;
  std::map<std::string, const rdd::SourceData *> Datasets;
  std::map<std::string, int64_t> LoopBounds;
  /// Default data for unbound sources (owned here, lazily built).
  std::vector<std::unique_ptr<rdd::SourceData>> OwnedData;
};

} // namespace core
} // namespace panthera

#endif // PANTHERA_CORE_DSLDRIVER_H
