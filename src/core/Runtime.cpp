//===- core/Runtime.cpp - The Panthera runtime facade --------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "dsl/Parser.h"
#include "gc/HeapVerifier.h"
#include "support/Errors.h"
#include "support/Units.h"

#include <algorithm>
#include <string>

#include <cstdio>
#include <cstdlib>

using namespace panthera;
using namespace panthera::core;

Runtime::Runtime(const RuntimeConfig &Config) : Config(Config) {
  unsigned Workers = Config.NumThreads != 0 ? Config.NumThreads
                                            : support::resolveAutoThreads();
  Pool = std::make_unique<support::WorkStealingPool>(Workers);

  heap::HeapConfig HC = gc::makeHeapConfig(Config.Policy, Config.HeapPaperGB,
                                           Config.DramRatio);
  HC.NurseryFraction = Config.NurseryFraction;
  HC.NativeBytes = static_cast<uint64_t>(Config.NativePaperGB) * PaperGB;
  // The EagerPromotion/CardPadding overrides drive the §5.3 ablations and
  // only make sense for the Panthera family; the baselines always run
  // without these optimizations (stock Parallel Scavenge).
  if (gc::isPantheraFamily(Config.Policy)) {
    HC.Tuning.EagerPromotion = Config.EagerPromotion;
    HC.Tuning.CardPadding = Config.CardPadding;
  }
  HC.Tuning.VerifyHeap = Config.VerifyHeap;
  HC.Tuning.MaxPauseUs = Config.MaxPauseUs;
  HC.Tuning.IncStepAllocs = Config.IncStepAllocs;

  uint64_t TotalBytes =
      heap::HeapConfig::alignPage(4096 + HC.HeapBytes + HC.NativeBytes);
  Mem = std::make_unique<memsim::HybridMemory>(TotalBytes, Config.Technology,
                                               Config.Cache, Config.EpochNs,
                                               &Metrics);
  Mem->setAccessPath(Config.AccessPath);
  TheHeap = std::make_unique<heap::Heap>(HC, *Mem);
  TheHeap->setTelemetry(&Metrics, &Trace);
  TheCollector =
      std::make_unique<gc::Collector>(*TheHeap, Config.Policy, &Monitor);
  TheCollector->setThreadPool(Pool.get());
  TheCollector->setTelemetry(&Metrics, &Trace);

  // Online hotness profiling + between-GC migration (--policy=dynamic,
  // docs/memsim.md). A zero sampling stride constructs neither tracker
  // nor engine: the run (including the metrics-JSON key set) is then
  // byte-identical to static Panthera.
  if (Config.Policy == gc::PolicyKind::PantheraDynamic &&
      Config.HotnessSampleEvery > 0) {
    std::vector<heap::Heap::OldGenRegion> Old = TheHeap->oldGenRegions();
    if (!Old.empty()) {
      uint64_t Lo = Old.front().Base, Hi = Old.front().End;
      for (const heap::Heap::OldGenRegion &R : Old) {
        Lo = std::min(Lo, R.Base);
        Hi = std::max(Hi, R.End);
      }
      memsim::HotnessConfig HotCfg;
      HotCfg.SampleEveryLines = Config.HotnessSampleEvery;
      Hot = std::make_unique<memsim::HotnessTracker>(Lo, Hi, HotCfg);
      memsim::MigrationConfig MigCfg;
      MigCfg.HotSamplesPerPage = Config.MigrateHotThreshold;
      MigCfg.MaxPagesPerStep = Config.MigrateMaxPagesPerStep;
      Migration =
          std::make_unique<memsim::MigrationEngine>(*Mem, *Hot, MigCfg);
      std::vector<memsim::CanonicalRange> Ranges;
      for (const heap::Heap::OldGenRegion &R : Old)
        Ranges.push_back({R.Base, R.End, R.Canonical});
      Migration->setEligibleRanges(std::move(Ranges));
      Mem->setHotnessTracker(Hot.get());
      TheCollector->setMigrationEngine(Migration.get());
    }
  }

  // NG2C-style allocation-site pretenuring: consult the AccessMonitor's
  // per-RDD call counts (the same profile that feeds dynamic migration) to
  // pretenure smaller arrays of long-lived RDDs. Off by default so every
  // existing configuration is byte-identical.
  if (Config.PretenureMinCalls > 0) {
    uint32_t Min = Config.PretenureMinCalls;
    gc::AccessMonitor *Mon = &Monitor;
    TheHeap->setPretenureOracle(
        [Mon, Min](uint32_t RddId) { return Mon->callsInWindow(RddId) >= Min; });
  }

  rdd::EngineConfig EC = Config.Engine;
  EC.UseStaticTags = gc::usesStaticTags(Config.Policy);
  Context = std::make_unique<rdd::SparkContext>(*TheHeap, &Monitor, EC);
  Context->setThreadPool(Pool.get());
  Context->setTelemetry(&Metrics, &Trace);

  // Off-heap serialized cache tier (docs/offheap.md). At OffHeapMB == 0 no
  // tier exists: OFF_HEAP persists run the seed NativeParts path and the
  // exports (metrics key set included) stay byte-identical.
  if (Config.OffHeapMB > 0) {
    OffHeapTier = std::make_unique<offheap::OffHeapCache>(
        *TheHeap, static_cast<uint64_t>(Config.OffHeapMB) * PaperMB,
        &Metrics, &Trace);
    Context->setOffHeapCache(OffHeapTier.get());
  }

  if (Config.Cluster.NumExecutors > 1) {
    // Carve the paper heap and native region evenly across the executors;
    // each gets its own HybridMemory + Heap on a private clock. At
    // NumExecutors == 1 no cluster exists at all, so the seed single-heap
    // path (and its exports) stays byte-identical.
    cluster::ClusterConfig CC;
    CC.Options = Config.Cluster;
    unsigned N = Config.Cluster.NumExecutors;
    unsigned PerExecGB = Config.HeapPaperGB / N;
    if (PerExecGB == 0)
      PerExecGB = 1;
    CC.ExecutorHeap =
        gc::makeHeapConfig(Config.Policy, PerExecGB, Config.DramRatio);
    CC.ExecutorHeap.NurseryFraction = Config.NurseryFraction;
    uint64_t PerExecNative = heap::HeapConfig::alignPage(
        static_cast<uint64_t>(Config.NativePaperGB) * PaperGB / N);
    CC.ExecutorHeap.NativeBytes = std::max<uint64_t>(PerExecNative, PaperGB);
    CC.Technology = Config.Technology;
    CC.Cache = Config.Cache;
    CC.AccessPath = Config.AccessPath;
    CC.EpochNs = Config.EpochNs;
    CC.DiskNsPerRecord = Config.Engine.DiskRecordCpuNs;
    TheCluster = std::make_unique<cluster::Cluster>(CC, *Mem, &Trace);
    Context->setCluster(TheCluster.get());
  }

  if (Config.Faults.enabled()) {
    Injector = std::make_unique<FaultInjector>(Config.Faults);
    TheHeap->setFaultInjector(Injector.get());
    Context->setFaultInjector(Injector.get());
  }
  // Before declaring OOM the heap asks the engine to shed MEMORY_AND_DISK
  // cached partitions; the loop in Heap::oomFallback stops once this
  // returns false (nothing left to evict).
  TheHeap->setPressureHandler(
      [this](uint64_t) { return Context->evictOneUnderPressure(); });
  if (Config.VerifyHeapAfterRecovery) {
    auto Verify = [this](const char *What) {
      gc::VerifyResult VR = gc::verifyHeap(*TheHeap);
      if (!VR.Ok)
        throw EngineError(std::string("heap verification failed after ") +
                          What + ": " + VR.FirstProblem);
    };
    TheHeap->setRecoveryVerifier(Verify);
    Context->setRecoveryVerifier(Verify);
  }
}

const analysis::AnalysisResult &
Runtime::analyzeAndInstall(std::string_view DslSource,
                           const analysis::AnalysisOptions &Options) {
  std::vector<dsl::Diagnostic> Diags;
  dsl::Program P = dsl::parseDriverProgram(DslSource, Diags);
  if (!Diags.empty()) {
    for (const dsl::Diagnostic &D : Diags)
      std::fprintf(stderr, "driver dsl %u:%u: error: %s\n", D.Loc.Line,
                   D.Loc.Column, D.Message.c_str());
    std::abort();
  }
  Tags = analysis::inferMemoryTags(P, Options);
  Context->setAnalysis(&Tags);
  return Tags;
}

void Runtime::publishMetrics() {
  RunReport R = report();
  auto G = [&](const char *Name, double V) { Metrics.gauge(Name).set(V); };
  auto C = [&](const char *Name, uint64_t V) { Metrics.counter(Name).set(V); };

  // Simulated clocks and the energy model (Fig 5 / Fig 9 inputs).
  G("time.total_ns", R.TotalNs);
  G("time.mutator_ns", R.MutatorNs);
  G("time.gc_ns", R.GcNs);
  G("energy.total_joules", R.TotalJoules);
  G("energy.dram_static_joules", R.Energy.DramStaticJoules);
  G("energy.nvm_static_joules", R.Energy.NvmStaticJoules);
  G("energy.dram_dynamic_joules", R.Energy.DramDynamicJoules);
  G("energy.nvm_dynamic_joules", R.Energy.NvmDynamicJoules);
  G("energy.dram_provisioned_gb", R.DramGB);
  G("energy.nvm_provisioned_gb", R.NvmGB);

  // Device traffic and cache behavior (the VTune-uncore analogue).
  C("memsim.dram.line_reads", R.DramTraffic.LineReads);
  C("memsim.dram.line_writes", R.DramTraffic.LineWrites);
  C("memsim.nvm.line_reads", R.NvmTraffic.LineReads);
  C("memsim.nvm.line_writes", R.NvmTraffic.LineWrites);
  C("memsim.cache_hits", Mem->cacheHits());
  C("memsim.cache_misses", Mem->cacheMisses());
  C("memsim.prefetched_misses", Mem->prefetchedMisses());

  // Collector totals (Fig 5 phase data lives in the gc.* histograms).
  C("gc.minor_gcs", R.Gc.MinorGcs);
  C("gc.major_gcs", R.Gc.MajorGcs);
  C("gc.bytes_promoted", R.Gc.BytesPromoted);
  C("gc.bytes_copied_to_survivor", R.Gc.BytesCopiedToSurvivor);
  C("gc.eager_promotions", R.Gc.EagerPromotions);
  C("gc.cards_scanned", R.Gc.CardsScanned);
  C("gc.cards_cleaned", R.Gc.CardsCleaned);
  C("gc.shared_array_card_scans", R.Gc.SharedArrayCardScans);
  C("gc.migrated_rdd_arrays_to_dram", R.Gc.MigratedRddArraysToDram);
  C("gc.migrated_rdd_arrays_to_nvm", R.Gc.MigratedRddArraysToNvm);
  C("gc.rdds_migrated", R.Gc.RddsMigrated);

  // RDD engine totals, including the TaskLedger rollup.
  C("engine.stages_run", R.Engine.StagesRun);
  C("engine.shuffle_records", R.Engine.ShuffleRecords);
  C("engine.shuffle_bytes",
    R.Engine.ShuffleRecords * sizeof(rdd::SourceRecord));
  C("engine.shuffle_spills", R.Engine.ShuffleSpills);
  C("engine.rdds_materialized", R.Engine.RddsMaterialized);
  C("engine.rdds_evicted_to_disk", R.Engine.RddsEvictedToDisk);
  C("engine.records_streamed", R.Engine.RecordsStreamed);
  C("engine.tasks_launched", R.Engine.TasksLaunched);
  C("engine.task_retries", R.Engine.TaskRetries);
  C("engine.injected_task_failures", R.Engine.InjectedTaskFailures);
  C("engine.cache_loss_events", R.Engine.CacheLossEvents);
  C("engine.lineage_recomputations", R.Engine.LineageRecomputations);
  C("engine.oom_task_failures", R.Engine.OomTaskFailures);
  C("engine.tasks", R.Tasks.totalTasks());
  C("engine.task_attempts", R.Tasks.totalAttempts());
  C("engine.failed_tasks", R.Tasks.failedTasks());

  // Heap allocation / barrier / OOM-degradation totals.
  const heap::HeapStats &HS = TheHeap->stats();
  C("heap.objects_allocated", HS.ObjectsAllocated);
  C("heap.bytes_allocated", HS.BytesAllocated);
  C("heap.arrays_pretenured", HS.ArraysPretenured);
  C("heap.pretenure_dram_fallbacks", HS.PretenureDramFallbacks);
  C("heap.ref_stores", HS.RefStores);
  C("heap.card_padding_waste_bytes", HS.CardPaddingWasteBytes);
  C("heap.gc_plab_refills", HS.GcPlabRefills);
  C("heap.gc_plab_waste_bytes", HS.GcPlabWasteBytes);
  C("heap.emergency_gcs", HS.EmergencyGcs);
  C("heap.pressure_evictions", HS.PressureEvictions);
  C("heap.oom_errors_thrown", HS.OomErrorsThrown);

  C("analysis.monitored_calls", R.MonitoredCalls);

  // Incremental-marking totals (only with a pause budget set: the budget-0
  // configuration must export the exact seed key set).
  if (Config.MaxPauseUs > 0) {
    C("gc.incremental.cycles", R.Gc.IncCycles);
    C("gc.incremental.mark_steps", R.Gc.IncMarkSteps);
    C("gc.incremental.satb_drained", R.Gc.IncSatbDrained);
    C("gc.incremental.objects_marked", R.Gc.IncObjectsMarked);
  }
  // Allocation-site pretenuring totals (gated like the oracle itself).
  if (Config.PretenureMinCalls > 0)
    C("heap.arrays_oracle_pretenured", HS.ArraysOraclePretenured);

  // Hotness/migration totals (only under --policy=dynamic with sampling
  // on: every other configuration must export the exact seed key set).
  if (Hot) {
    const memsim::HotnessStats &HotS = Hot->stats();
    C("memsim.hotness.samples", HotS.Samples);
    C("memsim.hotness.epochs", HotS.Epochs);
    C("memsim.hotness.splits", HotS.Splits);
    C("memsim.hotness.merges", HotS.Merges);
    C("memsim.hotness.regions", Hot->regions().size());
    const memsim::MigrationStats &MigS = Migration->stats();
    C("memsim.migration.steps", MigS.Steps);
    C("memsim.migration.pages_to_dram", MigS.PagesToDram);
    C("memsim.migration.pages_to_nvm", MigS.PagesToNvm);
    C("memsim.migration.bytes_copied", MigS.BytesCopied);
    C("memsim.migration.resets", MigS.Resets);
    C("memsim.migration.pages_restored", MigS.PagesRestored);
  }

  // Off-heap tier totals (only with --offheap-mb > 0: the tier-less
  // configuration must export the exact seed key set).
  if (OffHeapTier)
    OffHeapTier->publishMetrics(Metrics);

  // Cluster totals (only in cluster runs: --executors=1 must export the
  // exact seed key set).
  if (TheCluster)
    TheCluster->publishMetrics(Metrics);
}

std::string Runtime::metricsJson() {
  publishMetrics();
  return Metrics.toJson();
}

void Runtime::writeMetricsJson(std::FILE *F) {
  publishMetrics();
  Metrics.writeJson(F);
}

RunReport Runtime::report() const {
  RunReport R;
  R.MutatorNs = Mem->mutatorTimeNs();
  R.GcNs = Mem->gcTimeNs();
  R.TotalNs = Mem->totalTimeNs();
  R.DramTraffic = Mem->traffic(memsim::Device::DRAM);
  R.NvmTraffic = Mem->traffic(memsim::Device::NVM);

  // Provisioned capacities, in paper GB. DRAM-only provisions the whole
  // heap as DRAM; hybrid configurations split by the DRAM ratio.
  double HeapGB = static_cast<double>(Config.HeapPaperGB);
  if (Config.Policy == gc::PolicyKind::DramOnly) {
    R.DramGB = HeapGB;
    R.NvmGB = 0.0;
  } else {
    R.DramGB = HeapGB * Config.DramRatio;
    R.NvmGB = HeapGB - R.DramGB;
  }
  R.Energy = memsim::computeEnergy(Config.Energy, R.TotalNs, R.DramGB,
                                   R.NvmGB, R.DramTraffic, R.NvmTraffic);
  R.TotalJoules = R.Energy.totalJoules();
  R.Gc = TheCollector->stats();
  R.Engine = Context->stats();
  R.MonitoredCalls = Monitor.totalCalls();
  R.Tasks = Context->taskLedger();
  return R;
}
