//===- core/Runtime.cpp - The Panthera runtime facade --------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include "dsl/Parser.h"
#include "gc/HeapVerifier.h"
#include "support/Errors.h"
#include "support/Units.h"

#include <string>

#include <cstdio>
#include <cstdlib>

using namespace panthera;
using namespace panthera::core;

Runtime::Runtime(const RuntimeConfig &Config) : Config(Config) {
  unsigned Workers = Config.NumThreads != 0 ? Config.NumThreads
                                            : support::resolveAutoThreads();
  Pool = std::make_unique<support::WorkStealingPool>(Workers);

  heap::HeapConfig HC = gc::makeHeapConfig(Config.Policy, Config.HeapPaperGB,
                                           Config.DramRatio);
  HC.NurseryFraction = Config.NurseryFraction;
  HC.NativeBytes = static_cast<uint64_t>(Config.NativePaperGB) * PaperGB;
  // The EagerPromotion/CardPadding overrides drive the §5.3 ablations and
  // only make sense for Panthera; the baselines always run without these
  // optimizations (stock Parallel Scavenge).
  if (Config.Policy == gc::PolicyKind::Panthera) {
    HC.Tuning.EagerPromotion = Config.EagerPromotion;
    HC.Tuning.CardPadding = Config.CardPadding;
  }
  HC.Tuning.VerifyHeap = Config.VerifyHeap;

  uint64_t TotalBytes =
      heap::HeapConfig::alignPage(4096 + HC.HeapBytes + HC.NativeBytes);
  Mem = std::make_unique<memsim::HybridMemory>(TotalBytes, Config.Technology,
                                               Config.Cache, Config.EpochNs);
  TheHeap = std::make_unique<heap::Heap>(HC, *Mem);
  TheCollector =
      std::make_unique<gc::Collector>(*TheHeap, Config.Policy, &Monitor);
  TheCollector->setThreadPool(Pool.get());

  rdd::EngineConfig EC = Config.Engine;
  EC.UseStaticTags = gc::usesStaticTags(Config.Policy);
  Context = std::make_unique<rdd::SparkContext>(*TheHeap, &Monitor, EC);
  Context->setThreadPool(Pool.get());

  if (Config.Faults.enabled()) {
    Injector = std::make_unique<FaultInjector>(Config.Faults);
    TheHeap->setFaultInjector(Injector.get());
    Context->setFaultInjector(Injector.get());
  }
  // Before declaring OOM the heap asks the engine to shed MEMORY_AND_DISK
  // cached partitions; the loop in Heap::oomFallback stops once this
  // returns false (nothing left to evict).
  TheHeap->setPressureHandler(
      [this](uint64_t) { return Context->evictOneUnderPressure(); });
  if (Config.VerifyHeapAfterRecovery) {
    auto Verify = [this](const char *What) {
      gc::VerifyResult VR = gc::verifyHeap(*TheHeap);
      if (!VR.Ok)
        throw EngineError(std::string("heap verification failed after ") +
                          What + ": " + VR.FirstProblem);
    };
    TheHeap->setRecoveryVerifier(Verify);
    Context->setRecoveryVerifier(Verify);
  }
}

const analysis::AnalysisResult &
Runtime::analyzeAndInstall(std::string_view DslSource,
                           const analysis::AnalysisOptions &Options) {
  std::vector<dsl::Diagnostic> Diags;
  dsl::Program P = dsl::parseDriverProgram(DslSource, Diags);
  if (!Diags.empty()) {
    for (const dsl::Diagnostic &D : Diags)
      std::fprintf(stderr, "driver dsl %u:%u: error: %s\n", D.Loc.Line,
                   D.Loc.Column, D.Message.c_str());
    std::abort();
  }
  Tags = analysis::inferMemoryTags(P, Options);
  Context->setAnalysis(&Tags);
  return Tags;
}

RunReport Runtime::report() const {
  RunReport R;
  R.MutatorNs = Mem->mutatorTimeNs();
  R.GcNs = Mem->gcTimeNs();
  R.TotalNs = Mem->totalTimeNs();
  R.DramTraffic = Mem->traffic(memsim::Device::DRAM);
  R.NvmTraffic = Mem->traffic(memsim::Device::NVM);

  // Provisioned capacities, in paper GB. DRAM-only provisions the whole
  // heap as DRAM; hybrid configurations split by the DRAM ratio.
  double HeapGB = static_cast<double>(Config.HeapPaperGB);
  if (Config.Policy == gc::PolicyKind::DramOnly) {
    R.DramGB = HeapGB;
    R.NvmGB = 0.0;
  } else {
    R.DramGB = HeapGB * Config.DramRatio;
    R.NvmGB = HeapGB - R.DramGB;
  }
  R.Energy = memsim::computeEnergy(Config.Energy, R.TotalNs, R.DramGB,
                                   R.NvmGB, R.DramTraffic, R.NvmTraffic);
  R.TotalJoules = R.Energy.totalJoules();
  R.Gc = TheCollector->stats();
  R.Engine = Context->stats();
  R.MonitoredCalls = Monitor.totalCalls();
  R.Tasks = Context->taskLedger();
  return R;
}
