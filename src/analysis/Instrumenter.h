//===- analysis/Instrumenter.h - §4.2.1 tag-instrumentation pass -*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation pass of §4.2.1: given a driver program and the
/// inferred memory tags, produces a transformed program in which a
///
///     rddAlloc(<var>, <DRAM|NVM>);
///
/// call is inserted immediately before each materialization point (the
/// statement containing the variable's persist call, or its first action
/// when it is action-materialized). The output is ordinary DSL and
/// re-parses; re-running inference on it yields the same tags (rddAlloc
/// is neither a transformation nor an action).
///
/// In the paper this pass rewrites the Spark program to call the native
/// method that arms the runtime's pretenuring wait state; here the engine
/// arms the heap directly, so the pass exists as the user-visible,
/// testable artifact of the same design (see examples/analyze_driver
/// --instrument).
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_ANALYSIS_INSTRUMENTER_H
#define PANTHERA_ANALYSIS_INSTRUMENTER_H

#include "analysis/TagInference.h"
#include "dsl/Ast.h"

namespace panthera {
namespace analysis {

/// Statistics about one instrumentation run.
struct InstrumentationStats {
  unsigned CallsInserted = 0;
};

/// Returns a copy of \p P with rddAlloc calls inserted per \p Tags.
/// Variables whose tag is None (DISK_ONLY / unmaterialized) are skipped.
dsl::Program instrumentProgram(const dsl::Program &P,
                               const AnalysisResult &Tags,
                               InstrumentationStats *Stats = nullptr);

} // namespace analysis
} // namespace panthera

#endif // PANTHERA_ANALYSIS_INSTRUMENTER_H
