//===- analysis/TagInference.h - §3 static memory-tag inference -*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §3 static analysis: infers a DRAM/NVM memory tag for every
/// RDD variable that is materialized (persisted, or targeted by an action)
/// in a driver program, from def-use information relative to the loops in
/// which the variable appears.
///
/// Rules implemented (all from §3):
///  * Only loops that the variable's materialization point precedes or is
///    inside are considered.
///  * If there is a considered loop where the variable is used but never
///    defined, the variable is tagged DRAM (one instance, reused).
///  * Otherwise, a variable defined inside a considered loop is tagged NVM
///    (each iteration strands the previous, now-unused instance).
///  * With no considered loops, the variable is NVM (accessed once).
///  * OFF_HEAP persists become OFF_HEAP_NVM; DISK_ONLY carries no tag.
///  * If every materialized variable ends up NVM, all flip to DRAM so the
///    DRAM space does not sit idle.
///  * Every other storage level is expanded into a _DRAM or _NVM sub-level.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_ANALYSIS_TAGINFERENCE_H
#define PANTHERA_ANALYSIS_TAGINFERENCE_H

#include "dsl/Ast.h"
#include "support/MemTag.h"

#include <map>
#include <string>
#include <vector>

namespace panthera {
namespace analysis {

/// Why a variable received its tag (surfaced in diagnostics and tests).
enum class TagReason : uint8_t {
  UsedOnlyInLoop,     ///< DRAM: a considered loop only reads it.
  DefinedInLoop,      ///< NVM: redefined per iteration.
  NoConsideredLoop,   ///< NVM: no loop after/around materialization.
  OffHeap,            ///< NVM: OFF_HEAP persists go to native NVM.
  AllNvmFallback,     ///< DRAM: the flip-all rule fired.
  NotMaterialized,    ///< No tag: DISK_ONLY or never materialized.
  RetiredByUnpersist, ///< NVM: redefined + unpersisted per iteration
                      ///< (UnpersistAware extension only).
};

const char *tagReasonName(TagReason R);

/// Per-variable inference result.
struct VarTagInfo {
  std::string Name;
  bool Persisted = false;
  bool ActionMaterialized = false;
  bool OffHeap = false;
  std::string StorageLevel;  ///< As written; empty for action-materialized.
  std::string ExpandedLevel; ///< e.g. MEMORY_ONLY_DRAM (§3 sub-levels).
  MemTag Tag = MemTag::None;
  TagReason Reason = TagReason::NotMaterialized;
  dsl::SourceLoc MaterializationLoc;
};

/// Optional analysis extensions beyond the paper's §3 rules.
struct AnalysisOptions {
  /// §5.5 future-work extension: the paper's analysis ignores unpersist,
  /// so GraphX-style per-iteration graph RDDs are all tagged DRAM and
  /// stale generations must be demoted by dynamic migration at major GCs.
  /// With this flag, a variable that is both (re)defined and unpersisted
  /// inside a considered loop is tagged NVM statically: every iteration
  /// explicitly retires the previous instance, so instances are
  /// epoch-local even if an inner loop reads the current one.
  bool UnpersistAware = false;
};

/// Whole-program inference result.
struct AnalysisResult {
  /// Variable name -> inference (materialized variables only).
  std::map<std::string, VarTagInfo> Vars;
  /// True when the all-NVM -> all-DRAM fallback was applied.
  bool AllNvmFallbackApplied = false;
  /// Human-readable notes from the run.
  std::vector<std::string> Notes;

  /// Tag for \p Var; MemTag::None when unknown/unmaterialized.
  MemTag tagFor(const std::string &Var) const {
    auto It = Vars.find(Var);
    return It == Vars.end() ? MemTag::None : It->second.Tag;
  }
};

/// Runs the §3 inference over \p P (plus any enabled extensions).
AnalysisResult inferMemoryTags(const dsl::Program &P,
                               const AnalysisOptions &Options = {});

} // namespace analysis
} // namespace panthera

#endif // PANTHERA_ANALYSIS_TAGINFERENCE_H
