//===- analysis/Instrumenter.cpp - §4.2.1 tag-instrumentation pass --------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Instrumenter.h"

#include "analysis/SparkOps.h"
#include "dsl/Printer.h"

#include <set>

using namespace panthera;
using namespace panthera::analysis;
using dsl::Chain;
using dsl::Program;
using dsl::Stmt;
using dsl::StmtPtr;

namespace {

/// Rewrites statement bodies, inserting rddAlloc calls at materialization
/// points. The call goes *after* a defining statement that persists the
/// variable (the variable must be bound before it can be passed) and
/// *before* an expression statement whose action materializes it.
class Rewriter {
public:
  Rewriter(const AnalysisResult &Tags, InstrumentationStats *Stats)
      : Tags(Tags), Stats(Stats) {}

  std::vector<StmtPtr> rewriteBody(const std::vector<StmtPtr> &Body) {
    std::vector<StmtPtr> Out;
    for (const StmtPtr &S : Body) {
      switch (S->K) {
      case Stmt::Kind::Assign: {
        bool Instrument = chainPersists(S->Value) &&
                          shouldInstrument(S->Var, /*Persisted=*/true);
        Out.push_back(dsl::cloneStmt(*S));
        if (Instrument)
          Out.push_back(makeRddAlloc(S->Var));
        break;
      }
      case Stmt::Kind::Expr: {
        const Chain &C = S->Value;
        bool Instrument = !C.RootIsSource && chainActs(C) &&
                          shouldInstrument(C.RootName,
                                           /*Persisted=*/false);
        if (Instrument)
          Out.push_back(makeRddAlloc(C.RootName));
        Out.push_back(dsl::cloneStmt(*S));
        break;
      }
      case Stmt::Kind::Loop: {
        StmtPtr Loop = dsl::cloneStmt(*S);
        Loop->Body = rewriteBody(S->Body);
        Out.push_back(std::move(Loop));
        break;
      }
      }
    }
    return Out;
  }

private:
  static bool chainPersists(const Chain &C) {
    for (const dsl::MethodCall &Call : C.Calls)
      if (isPersist(Call.Name))
        return true;
    return false;
  }

  static bool chainActs(const Chain &C) {
    for (const dsl::MethodCall &Call : C.Calls)
      if (isAction(Call.Name))
        return true;
    return false;
  }

  /// One rddAlloc per variable, at its first materialization site, and
  /// only for variables the analysis tagged. Persist sites win over
  /// action sites (the paper materializes at the persist call).
  bool shouldInstrument(const std::string &Var, bool Persisted) {
    auto It = Tags.Vars.find(Var);
    if (It == Tags.Vars.end() || It->second.Tag == MemTag::None)
      return false;
    if (!Persisted && It->second.Persisted)
      return false; // an action on a persisted var: not its mat point
    return Done.insert(Var).second;
  }

  StmtPtr makeRddAlloc(const std::string &Var) {
    if (Stats)
      ++Stats->CallsInserted;
    auto S = std::make_unique<Stmt>();
    S->K = Stmt::Kind::Expr;
    Chain C;
    C.RootIsSource = true; // call syntax: rddAlloc(var, TAG)
    C.RootName = "rddAlloc";
    dsl::Arg VarArg;
    VarArg.K = dsl::Arg::Kind::Var;
    VarArg.Text = Var;
    dsl::Arg TagArg;
    TagArg.K = dsl::Arg::Kind::Var;
    TagArg.Text = memTagName(Tags.Vars.at(Var).Tag);
    C.RootArgs.push_back(std::move(VarArg));
    C.RootArgs.push_back(std::move(TagArg));
    S->Value = std::move(C);
    return S;
  }

  const AnalysisResult &Tags;
  InstrumentationStats *Stats;
  std::set<std::string> Done;
};

} // namespace

Program panthera::analysis::instrumentProgram(const Program &P,
                                              const AnalysisResult &Tags,
                                              InstrumentationStats *Stats) {
  Program Out;
  Out.Name = P.Name;
  Rewriter RW(Tags, Stats);
  Out.Body = RW.rewriteBody(P.Body);
  return Out;
}
