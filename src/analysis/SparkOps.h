//===- analysis/SparkOps.h - Spark API classification -----------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies the method names appearing in driver-DSL chains into
/// transformations, actions, and storage-management calls, mirroring the
/// Spark API surface the paper's analysis understands.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_ANALYSIS_SPARKOPS_H
#define PANTHERA_ANALYSIS_SPARKOPS_H

#include <string_view>

namespace panthera {
namespace analysis {

/// True for RDD-to-RDD transformations (lazy).
inline bool isTransformation(std::string_view Name) {
  return Name == "map" || Name == "filter" || Name == "flatMap" ||
         Name == "mapValues" || Name == "distinct" || Name == "groupByKey" ||
         Name == "reduceByKey" || Name == "join" || Name == "values" ||
         Name == "union" || Name == "keys" || Name == "mapPartitions" ||
         Name == "subtract";
}

/// True for actions (force evaluation).
inline bool isAction(std::string_view Name) {
  return Name == "count" || Name == "collect" || Name == "reduce" ||
         Name == "first" || Name == "take" || Name == "takeSample" ||
         Name == "collectAsMap" || Name == "saveAsTextFile" ||
         Name == "foreach" || Name == "aggregate";
}

inline bool isPersist(std::string_view Name) { return Name == "persist"; }
inline bool isUnpersist(std::string_view Name) {
  return Name == "unpersist";
}

/// True for the storage levels that live (at least partly) in memory and
/// therefore get expanded into _DRAM/_NVM sub-levels by the analysis (§3).
inline bool isMemoryStorageLevel(std::string_view Level) {
  return Level == "MEMORY_ONLY" || Level == "MEMORY_ONLY_SER" ||
         Level == "MEMORY_AND_DISK" || Level == "MEMORY_AND_DISK_SER" ||
         Level == "MEMORY_ONLY_2" || Level == "MEMORY_AND_DISK_2";
}

} // namespace analysis
} // namespace panthera

#endif // PANTHERA_ANALYSIS_SPARKOPS_H
