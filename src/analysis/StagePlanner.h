//===- analysis/StagePlanner.h - §2 lineage-to-stage planning ---*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the lineage graph of a driver program and splits it into stages
/// the way §2 describes Spark's scheduler doing it: transformations with
/// narrow dependences are grouped into one stage; every wide dependence
/// (shuffle) cuts a stage boundary, writing shuffle files that the next
/// stage's ShuffledRDD reads back.
///
/// Loops contribute one representative iteration: the plan is the
/// per-iteration stage structure (which is also what Fig 2(b) draws).
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_ANALYSIS_STAGEPLANNER_H
#define PANTHERA_ANALYSIS_STAGEPLANNER_H

#include "dsl/Ast.h"

#include <string>
#include <vector>

namespace panthera {
namespace analysis {

/// One operator node of the lineage graph.
struct LineageNode {
  unsigned Id = 0;
  std::string Op;        ///< Operator name (map, groupByKey, textFile...).
  bool Wide = false;     ///< True when the incoming dependence shuffles.
  bool Persisted = false;
  bool Action = false;
  std::string Var;       ///< Variable this node was bound to ("" if none).
  std::vector<unsigned> Parents;
  unsigned Stage = 0;
};

/// The computed plan.
struct StagePlan {
  std::vector<LineageNode> Nodes;
  unsigned NumStages = 0;
  unsigned NumShuffles = 0;

  /// Nodes belonging to \p Stage, in id order.
  std::vector<const LineageNode *> stageNodes(unsigned Stage) const;
};

/// Plans \p P's per-iteration lineage into stages.
StagePlan planStages(const dsl::Program &P);

/// Renders the plan as a human-readable listing.
std::string printStagePlan(const StagePlan &Plan);

} // namespace analysis
} // namespace panthera

#endif // PANTHERA_ANALYSIS_STAGEPLANNER_H
