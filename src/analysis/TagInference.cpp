//===- analysis/TagInference.cpp - §3 static memory-tag inference --------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/TagInference.h"

#include "analysis/SparkOps.h"

#include <algorithm>

using namespace panthera;
using namespace panthera::analysis;
using dsl::Chain;
using dsl::Program;
using dsl::Stmt;

const char *panthera::analysis::tagReasonName(TagReason R) {
  switch (R) {
  case TagReason::UsedOnlyInLoop:
    return "used-only in a loop after materialization";
  case TagReason::DefinedInLoop:
    return "defined per loop iteration";
  case TagReason::NoConsideredLoop:
    return "no loop follows or contains the materialization point";
  case TagReason::OffHeap:
    return "OFF_HEAP persists into native NVM";
  case TagReason::AllNvmFallback:
    return "all-NVM fallback flipped the tag to DRAM";
  case TagReason::NotMaterialized:
    return "not materialized in memory";
  case TagReason::RetiredByUnpersist:
    return "redefined and unpersisted per iteration (extension)";
  }
  return "?";
}

namespace {

/// A loop's statement-index range [Start, End] (pre-order, inclusive).
struct LoopRange {
  int Start;
  int End;
};

/// Flattened def/use facts gathered in one pre-order walk.
struct Facts {
  // Per variable: statement indices of definitions, uses, unpersists.
  std::map<std::string, std::vector<int>> Defs;
  std::map<std::string, std::vector<int>> Uses;
  std::map<std::string, std::vector<int>> Unpersists;
  // Materialization: variable -> (index, persisted?, level, loc).
  struct Materialization {
    int Index = -1;
    bool Persisted = false;
    std::string Level;
    dsl::SourceLoc Loc;
  };
  std::map<std::string, Materialization> Mats;
  std::vector<LoopRange> Loops;
};

class FactCollector {
public:
  explicit FactCollector(Facts &F) : F(F) {}

  void run(const Program &P) {
    for (const auto &S : P.Body)
      visitStmt(*S);
  }

private:
  void noteUse(const std::string &Var, int Index) {
    F.Uses[Var].push_back(Index);
  }
  void noteDef(const std::string &Var, int Index) {
    F.Defs[Var].push_back(Index);
  }

  /// Records the earliest materialization of \p Var. Per §2, a persisted
  /// RDD materializes at the persist call; an action-targeted RDD at the
  /// action. Once materialized, later statements do not move the point.
  void noteMaterialization(const std::string &Var, int Index, bool Persisted,
                           std::string Level, dsl::SourceLoc Loc) {
    auto It = F.Mats.find(Var);
    if (It != F.Mats.end()) {
      // Keep the first; upgrade non-persist to persist info if same stmt.
      if (Persisted && !It->second.Persisted && It->second.Index == Index) {
        It->second.Persisted = true;
        It->second.Level = std::move(Level);
      }
      return;
    }
    F.Mats[Var] = {Index, Persisted, std::move(Level), Loc};
  }

  void visitChain(const Chain &C, int Index,
                  const std::string &DefinedVar) {
    if (!C.RootIsSource)
      noteUse(C.RootName, Index);
    for (const dsl::MethodCall &Call : C.Calls) {
      for (const dsl::Arg &A : Call.Args)
        if (A.K == dsl::Arg::Kind::Var && A.Text != "_")
          noteUse(A.Text, Index);
      if (isPersist(Call.Name)) {
        std::string Level = "MEMORY_ONLY";
        if (!Call.Args.empty() && Call.Args[0].K == dsl::Arg::Kind::Var)
          Level = Call.Args[0].Text;
        // persist in a definition chain materializes the defined variable;
        // persist invoked directly on a variable materializes that one.
        const std::string &Target =
            !DefinedVar.empty() ? DefinedVar
                                : (C.RootIsSource ? DefinedVar : C.RootName);
        if (!Target.empty())
          noteMaterialization(Target, Index, /*Persisted=*/true, Level,
                              Call.Loc);
      } else if (isAction(Call.Name)) {
        // An action forces the chain; the root variable's RDD becomes
        // materialized here if it was not already.
        if (!C.RootIsSource)
          noteMaterialization(C.RootName, Index, /*Persisted=*/false, "",
                              Call.Loc);
      } else if (isUnpersist(Call.Name)) {
        if (!C.RootIsSource)
          F.Unpersists[C.RootName].push_back(Index);
      }
    }
  }

  void visitStmt(const Stmt &S) {
    int Index = NextIndex++;
    switch (S.K) {
    case Stmt::Kind::Assign:
      visitChain(S.Value, Index, S.Var);
      noteDef(S.Var, Index);
      break;
    case Stmt::Kind::Expr:
      visitChain(S.Value, Index, "");
      break;
    case Stmt::Kind::Loop: {
      int Start = NextIndex; // first index inside the body
      for (const auto &Body : S.Body)
        visitStmt(*Body);
      int End = NextIndex - 1;
      if (End >= Start)
        F.Loops.push_back({Start, End});
      break;
    }
    }
  }

  Facts &F;
  int NextIndex = 0;
};

bool anyIndexIn(const std::vector<int> &Indices, const LoopRange &L) {
  return std::any_of(Indices.begin(), Indices.end(), [&](int I) {
    return I >= L.Start && I <= L.End;
  });
}

} // namespace

AnalysisResult panthera::analysis::inferMemoryTags(
    const Program &P, const AnalysisOptions &Options) {
  Facts F;
  FactCollector(F).run(P);

  AnalysisResult R;
  for (const auto &[Var, Mat] : F.Mats) {
    VarTagInfo Info;
    Info.Name = Var;
    Info.Persisted = Mat.Persisted;
    Info.ActionMaterialized = !Mat.Persisted;
    Info.StorageLevel = Mat.Level;
    Info.MaterializationLoc = Mat.Loc;

    if (Mat.Persisted && Mat.Level == "DISK_ONLY") {
      // DISK_ONLY carries no memory tag (§3).
      Info.Tag = MemTag::None;
      Info.Reason = TagReason::NotMaterialized;
      Info.ExpandedLevel = "DISK_ONLY";
      R.Vars[Var] = std::move(Info);
      continue;
    }
    if (Mat.Persisted && Mat.Level == "OFF_HEAP") {
      // OFF_HEAP translates directly to OFF_HEAP_NVM (§3): data placed in
      // native memory is rarely used.
      Info.Tag = MemTag::Nvm;
      Info.OffHeap = true;
      Info.Reason = TagReason::OffHeap;
      Info.ExpandedLevel = "OFF_HEAP_NVM";
      R.Vars[Var] = std::move(Info);
      continue;
    }

    // Consider only loops the materialization point precedes or is in.
    const std::vector<int> &Defs = F.Defs[Var];
    const std::vector<int> &Uses = F.Uses[Var];
    bool SawUsedOnlyLoop = false;
    bool SawDefiningLoop = false;
    bool SawConsideredLoop = false;
    bool SawRetiringLoop = false;
    for (const LoopRange &L : F.Loops) {
      if (Mat.Index > L.End)
        continue; // loop entirely before materialization: ignored
      SawConsideredLoop = true;
      bool DefinedHere = anyIndexIn(Defs, L);
      bool UsedHere = anyIndexIn(Uses, L);
      if (UsedHere && !DefinedHere)
        SawUsedOnlyLoop = true;
      if (DefinedHere)
        SawDefiningLoop = true;
      if (Options.UnpersistAware && DefinedHere &&
          anyIndexIn(F.Unpersists[Var], L))
        SawRetiringLoop = true;
    }

    if (SawRetiringLoop) {
      // Extension: redefining AND unpersisting per iteration retires the
      // previous instance explicitly; every instance is epoch-local.
      Info.Tag = MemTag::Nvm;
      Info.Reason = TagReason::RetiredByUnpersist;
      R.Vars[Var] = std::move(Info);
      continue;
    }
    if (SawUsedOnlyLoop) {
      Info.Tag = MemTag::Dram;
      Info.Reason = TagReason::UsedOnlyInLoop;
    } else if (SawDefiningLoop) {
      Info.Tag = MemTag::Nvm;
      Info.Reason = TagReason::DefinedInLoop;
    } else {
      Info.Tag = MemTag::Nvm;
      Info.Reason = SawConsideredLoop ? TagReason::DefinedInLoop
                                      : TagReason::NoConsideredLoop;
      if (!SawConsideredLoop)
        Info.Reason = TagReason::NoConsideredLoop;
      else if (!SawDefiningLoop)
        // Loops exist but never touch the variable: same as no loop.
        Info.Reason = TagReason::NoConsideredLoop;
    }
    R.Vars[Var] = std::move(Info);
  }

  // All-NVM fallback (§3): if every tagged variable is NVM, flip all to
  // DRAM so the DRAM space is used first; overflow lands in NVM anyway.
  bool AnyHeapTagged = false;
  bool AllNvm = true;
  for (const auto &[Var, Info] : R.Vars) {
    (void)Var;
    if (Info.Tag == MemTag::None || Info.OffHeap)
      continue;
    AnyHeapTagged = true;
    if (Info.Tag != MemTag::Nvm)
      AllNvm = false;
  }
  if (AnyHeapTagged && AllNvm) {
    R.AllNvmFallbackApplied = true;
    for (auto &[Var, Info] : R.Vars) {
      (void)Var;
      if (Info.Tag == MemTag::Nvm && !Info.OffHeap) {
        Info.Tag = MemTag::Dram;
        Info.Reason = TagReason::AllNvmFallback;
      }
    }
    R.Notes.push_back("all persisted RDDs were NVM; flipped all to DRAM");
  }

  // Expand storage levels into _DRAM/_NVM sub-levels.
  for (auto &[Var, Info] : R.Vars) {
    (void)Var;
    if (!Info.ExpandedLevel.empty() || Info.Tag == MemTag::None)
      continue;
    std::string Base =
        Info.StorageLevel.empty() ? "MEMORY_ONLY" : Info.StorageLevel;
    Info.ExpandedLevel =
        Base + (Info.Tag == MemTag::Dram ? "_DRAM" : "_NVM");
  }
  return R;
}
