//===- analysis/StagePlanner.cpp - §2 lineage-to-stage planning -----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StagePlanner.h"

#include "analysis/SparkOps.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace panthera;
using namespace panthera::analysis;
using dsl::Chain;
using dsl::Program;
using dsl::Stmt;

namespace {

/// True for the operators that introduce a wide (shuffle) dependence in
/// the engine (§2: wide dependences require shuffles).
bool isWideTransformation(std::string_view Name) {
  return Name == "groupByKey" || Name == "reduceByKey" ||
         Name == "distinct" || Name == "repartition" ||
         Name == "sortByKey";
}

class Planner {
public:
  StagePlan run(const Program &P) {
    for (const auto &S : P.Body)
      visitStmt(*S);
    assignStages();
    return std::move(Plan);
  }

private:
  unsigned newNode(std::string Op, bool Wide,
                   std::vector<unsigned> Parents) {
    LineageNode N;
    N.Id = static_cast<unsigned>(Plan.Nodes.size());
    N.Op = std::move(Op);
    N.Wide = Wide;
    N.Parents = std::move(Parents);
    if (Wide)
      ++Plan.NumShuffles;
    Plan.Nodes.push_back(std::move(N));
    return Plan.Nodes.back().Id;
  }

  /// Evaluates a chain to the node producing its result; -1u when the
  /// chain roots at an unknown variable (treated as a fresh source).
  unsigned visitChain(const Chain &C) {
    unsigned Cur;
    if (C.RootIsSource) {
      Cur = newNode(C.RootName, /*Wide=*/false, {});
    } else {
      auto It = Env.find(C.RootName);
      if (It == Env.end()) {
        Cur = newNode("input:" + C.RootName, /*Wide=*/false, {});
        Env[C.RootName] = Cur;
      } else {
        Cur = It->second;
      }
    }
    for (const dsl::MethodCall &Call : C.Calls) {
      if (isPersist(Call.Name)) {
        Plan.Nodes[Cur].Persisted = true;
        continue;
      }
      if (isUnpersist(Call.Name))
        continue;
      if (isAction(Call.Name)) {
        Plan.Nodes[Cur].Action = true;
        continue;
      }
      // A transformation; variable arguments join in as extra parents.
      std::vector<unsigned> Parents = {Cur};
      for (const dsl::Arg &A : Call.Args)
        if (A.K == dsl::Arg::Kind::Var) {
          auto It = Env.find(A.Text);
          if (It != Env.end())
            Parents.push_back(It->second);
        }
      Cur = newNode(Call.Name, isWideTransformation(Call.Name),
                    std::move(Parents));
    }
    return Cur;
  }

  void visitStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Assign: {
      unsigned Node = visitChain(S.Value);
      Plan.Nodes[Node].Var = S.Var;
      Env[S.Var] = Node;
      break;
    }
    case Stmt::Kind::Expr:
      visitChain(S.Value);
      break;
    case Stmt::Kind::Loop:
      // One representative iteration (Fig 2(b) draws exactly this).
      for (const auto &Body : S.Body)
        visitStmt(*Body);
      break;
    }
  }

  /// Stage of a node = max over parents of (parent stage, +1 if the edge
  /// into this node is wide). Wide nodes begin the *next* stage: they
  /// read shuffle files written by their parents' stage.
  void assignStages() {
    for (LineageNode &N : Plan.Nodes) {
      unsigned Stage = 0;
      for (unsigned P : N.Parents)
        Stage = std::max(Stage, Plan.Nodes[P].Stage);
      if (N.Wide && !N.Parents.empty())
        Stage += 1;
      N.Stage = Stage;
      Plan.NumStages = std::max(Plan.NumStages, Stage + 1);
    }
  }

  StagePlan Plan;
  std::map<std::string, unsigned> Env;
};

} // namespace

std::vector<const LineageNode *>
StagePlan::stageNodes(unsigned Stage) const {
  std::vector<const LineageNode *> Out;
  for (const LineageNode &N : Nodes)
    if (N.Stage == Stage)
      Out.push_back(&N);
  return Out;
}

StagePlan panthera::analysis::planStages(const Program &P) {
  return Planner().run(P);
}

std::string panthera::analysis::printStagePlan(const StagePlan &Plan) {
  std::ostringstream Out;
  Out << "stages: " << Plan.NumStages << ", shuffles: " << Plan.NumShuffles
      << "\n";
  for (unsigned S = 0; S != Plan.NumStages; ++S) {
    Out << "  stage " << S << ":";
    for (const LineageNode *N : Plan.stageNodes(S)) {
      Out << ' ' << N->Op;
      if (N->Wide)
        Out << "*"; // reads a shuffle
      if (!N->Var.empty())
        Out << "[" << N->Var << (N->Persisted ? ", persisted" : "") << "]";
      else if (N->Persisted)
        Out << "[persisted]";
      if (N->Action)
        Out << "!";
    }
    Out << "\n";
  }
  Out << "  (* = shuffle input, [..] = bound variable, ! = action)\n";
  return Out.str();
}
