//===- gc/GcPolicy.h - Memory-management policies under test ----*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five memory-management policies the paper evaluates (§5.2):
///
///   DramOnly    - the whole heap in DRAM; the normalization baseline.
///   Unmanaged   - young gen in DRAM; old gen virtual-address chunks mapped
///                 to DRAM with probability = DRAM ratio (common practice to
///                 combine the two devices' bandwidth). No semantics.
///   Kingsguard-Nursery (KN)  - young gen DRAM, old gen entirely NVM [7].
///   Kingsguard-Writes  (KW)  - KN plus write-monitoring barriers; objects
///                 observed to be write-hot are kept/migrated in DRAM [7].
///   Panthera    - split old gen; static tags pretenure RDDs; eager
///                 promotion, card padding, dynamic migration.
///
/// Plus one extension beyond the paper:
///
///   PantheraDynamic - Panthera with the online hotness profiler and
///                 between-GC page migration enabled (docs/memsim.md).
///                 Identical heap layout and GC behavior; only the
///                 memsim-level placement adapts at runtime.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_GC_GCPOLICY_H
#define PANTHERA_GC_GCPOLICY_H

#include "heap/HeapConfig.h"

namespace panthera {
namespace gc {

/// Which end-to-end memory-management configuration is running.
enum class PolicyKind : uint8_t {
  DramOnly,
  Unmanaged,
  KingsguardNursery,
  KingsguardWrites,
  Panthera,
  PantheraDynamic,
};

/// True for Panthera and its dynamic-migration extension: both consume
/// static tags, run the §4.2 GC changes, and use the split old gen.
inline bool isPantheraFamily(PolicyKind K) {
  return K == PolicyKind::Panthera || K == PolicyKind::PantheraDynamic;
}

inline const char *policyName(PolicyKind K) {
  switch (K) {
  case PolicyKind::DramOnly:
    return "DRAM-only";
  case PolicyKind::Unmanaged:
    return "Unmanaged";
  case PolicyKind::KingsguardNursery:
    return "Kingsguard-N";
  case PolicyKind::KingsguardWrites:
    return "Kingsguard-W";
  case PolicyKind::Panthera:
    return "Panthera";
  case PolicyKind::PantheraDynamic:
    return "Panthera-Dyn";
  }
  return "?";
}

/// True when the policy consumes the static analysis' DRAM/NVM tags.
inline bool usesStaticTags(PolicyKind K) { return isPantheraFamily(K); }

/// True when the policy migrates RDDs at major GCs using call counts.
inline bool usesDynamicMigration(PolicyKind K) { return isPantheraFamily(K); }

/// Builds the heap configuration for \p Kind with \p HeapPaperGB of heap
/// and the given DRAM : total-memory ratio.
inline heap::HeapConfig makeHeapConfig(PolicyKind Kind, unsigned HeapPaperGB,
                                       double DramRatio) {
  heap::HeapConfig C;
  C.HeapBytes = static_cast<uint64_t>(HeapPaperGB) * PaperGB;
  C.DramRatio = DramRatio;
  // Eager promotion and card padding are Panthera's GC changes (§4.2);
  // every baseline runs the stock Parallel Scavenge behavior -- including
  // the §4.2.3 shared-card pathology on large arrays.
  C.Tuning.EagerPromotion = isPantheraFamily(Kind);
  C.Tuning.CardPadding = isPantheraFamily(Kind);
  switch (Kind) {
  case PolicyKind::DramOnly:
    C.Layout = heap::OldGenLayout::UnifiedDram;
    C.DramRatio = 1.0;
    break;
  case PolicyKind::Unmanaged:
    C.Layout = heap::OldGenLayout::UnifiedInterleaved;
    break;
  case PolicyKind::KingsguardNursery:
    C.Layout = heap::OldGenLayout::UnifiedNvm;
    break;
  case PolicyKind::KingsguardWrites:
    C.Layout = heap::OldGenLayout::SplitDramNvm;
    C.Tuning.KwWriteMonitoring = true;
    break;
  case PolicyKind::Panthera:
  case PolicyKind::PantheraDynamic:
    C.Layout = heap::OldGenLayout::SplitDramNvm;
    break;
  }
  return C;
}

} // namespace gc
} // namespace panthera

#endif // PANTHERA_GC_GCPOLICY_H
