//===- gc/HeapVerifier.cpp - Post-GC heap integrity checking --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/HeapVerifier.h"

#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace panthera;
using namespace panthera::gc;
using heap::Heap;
using heap::ObjectHeader;
using heap::ObjRef;
using heap::Space;

namespace {

class Verifier {
public:
  Verifier(Heap &H, const VerifyOptions &Opts) : H(H), Opts(Opts) {}

  VerifyResult run() {
    H.forEachRoot([this](ObjRef &R) {
      if (Result.Ok)
        checkAndPush(R.addr(), /*From=*/0, ~0u);
    });
    while (Result.Ok && !Stack.empty()) {
      uint64_t Addr = Stack.back();
      Stack.pop_back();
      ++Result.ObjectsVisited;
      ObjectHeader *Hdr = H.header(Addr);
      uint32_t N = Hdr->numRefSlots();
      for (uint32_t I = 0; I != N && Result.Ok; ++I) {
        ObjRef Child = H.rawLoadRef(Addr, I);
        if (Child)
          checkAndPush(Child.addr(), Addr, I);
      }
    }
    if (Result.Ok)
      checkSpaceTiling();
    return Result;
  }

private:
  Space *spaceOf(uint64_t Addr) {
    for (Space *S : {&H.eden(), &H.fromSpace(), &H.toSpace(), &H.oldDram(),
                     &H.oldNvm()})
      if (S->contains(Addr))
        return S;
    return nullptr;
  }

  void fail(uint64_t Addr, uint64_t From, uint32_t Slot, const char *Why) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "object 0x%" PRIx64 " (reached from 0x%" PRIx64
                  " slot %u): %s",
                  Addr, From, Slot, Why);
    Result.Ok = false;
    Result.FirstProblem = Buf;
  }

  void checkAndPush(uint64_t Addr, uint64_t From, uint32_t Slot) {
    if (!Visited.insert(Addr).second)
      return;
    if (Addr % 8 != 0)
      return fail(Addr, From, Slot, "misaligned reference");
    Space *S = spaceOf(Addr);
    if (!S)
      return fail(Addr, From, Slot, "outside every heap space");
    if (Addr >= S->top())
      return fail(Addr, From, Slot,
                  "beyond its space's allocation frontier (dangling)");
    ObjectHeader *Hdr = H.header(Addr);
    if (Hdr->SizeBytes < sizeof(ObjectHeader) ||
        Addr + Hdr->SizeBytes > S->top())
      return fail(Addr, From, Slot, "corrupt object size");
    if (Hdr->isForwarded())
      return fail(Addr, From, Slot, "stale forwarding pointer");
    Stack.push_back(Addr);
  }

  /// Walks every space object-by-object and checks that the headers tile
  /// the space exactly -- no gap, no overlap, walk ending exactly at the
  /// allocation frontier. This is what catches a parallel scavenge that
  /// retires a PLAB remainder without writing a well-formed filler over
  /// it. For the old generation it additionally cross-checks the card
  /// table's first-object map: every entry must name the lowest object
  /// start in its card (an entry a promotion path forgot to note, or one
  /// pointing into the middle of an object, breaks dirty-card scanning).
  void checkSpaceTiling() {
    for (Space *S : {&H.eden(), &H.fromSpace(), &H.toSpace(), &H.oldDram(),
                     &H.oldNvm()}) {
      if (S->sizeBytes() == 0)
        continue;
      bool Old = H.isOld(S->base());
      std::unordered_map<size_t, uint64_t> FirstStart;
      uint64_t Addr = S->base();
      while (Addr < S->top()) {
        ObjectHeader *Hdr = H.header(Addr);
        uint64_t Size = Hdr->SizeBytes;
        if (Size < sizeof(ObjectHeader) || Size % 8 != 0 ||
            Addr + Size > S->top())
          return fail(Addr, 0, ~0u, "space not walkable: bad object size");
        if (Hdr->kind() == heap::ObjectKind::PrimArray &&
            sizeof(ObjectHeader) +
                    static_cast<uint64_t>(Hdr->Length) * Hdr->Aux >
                Size)
          return fail(Addr, 0, ~0u,
                      "primitive array (or filler) payload exceeds size");
        if (Old) {
          size_t Card = H.cardTable().cardIndex(Addr);
          FirstStart.emplace(Card, Addr); // first visit = lowest start
          if (Opts.CheckCardMarking)
            checkOldToYoungSlots(Addr, Hdr);
        }
        if (!Result.Ok)
          return;
        Addr += Size;
      }
      if (Addr != S->top())
        return fail(Addr, 0, ~0u, "space walk overshot its frontier");
      if (!Old)
        continue;
      size_t FirstCard = H.cardTable().cardIndex(S->base());
      size_t LastCard = S->usedBytes() == 0
                            ? FirstCard
                            : H.cardTable().cardIndex(S->top() - 1);
      for (size_t C = FirstCard; S->usedBytes() != 0 && C <= LastCard;
           ++C) {
        auto It = FirstStart.find(C);
        uint64_t Expect =
            It == FirstStart.end() ? heap::CardTable::NoObject : It->second;
        if (H.cardTable().firstObjectInCard(C) != Expect)
          return fail(H.cardTable().cardStart(C), 0, ~0u,
                      "card first-object map disagrees with the walk");
      }
    }
  }

  /// Every old->young edge must live on a dirty card, or the next minor
  /// GC's card scan will never discover it. Checked for every old object
  /// the tiling walk visits, reachable or not.
  void checkOldToYoungSlots(uint64_t Addr, ObjectHeader *Hdr) {
    uint32_t N = Hdr->numRefSlots();
    for (uint32_t I = 0; I != N; ++I) {
      ObjRef Child = H.rawLoadRef(Addr, I);
      if (!Child || !H.isYoung(Child.addr()))
        continue;
      uint64_t SlotAddr = H.refSlotAddr(Addr, I);
      if (!H.cardTable().isDirty(H.cardTable().cardIndex(SlotAddr)))
        return fail(Addr, 0, I,
                    "old->young reference on a clean card (write barrier "
                    "or card scan lost the edge)");
    }
  }

  Heap &H;
  VerifyOptions Opts;
  VerifyResult Result;
  std::unordered_set<uint64_t> Visited;
  std::vector<uint64_t> Stack;
};

} // namespace

VerifyResult panthera::gc::verifyHeap(Heap &H) {
  return Verifier(H, VerifyOptions{}).run();
}

VerifyResult panthera::gc::verifyHeap(Heap &H, const VerifyOptions &Opts) {
  return Verifier(H, Opts).run();
}
