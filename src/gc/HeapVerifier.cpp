//===- gc/HeapVerifier.cpp - Post-GC heap integrity checking --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/HeapVerifier.h"

#include <cinttypes>
#include <cstdio>
#include <unordered_set>
#include <vector>

using namespace panthera;
using namespace panthera::gc;
using heap::Heap;
using heap::ObjectHeader;
using heap::ObjRef;
using heap::Space;

namespace {

class Verifier {
public:
  explicit Verifier(Heap &H) : H(H) {}

  VerifyResult run() {
    H.forEachRoot([this](ObjRef &R) {
      if (Result.Ok)
        checkAndPush(R.addr(), /*From=*/0, ~0u);
    });
    while (Result.Ok && !Stack.empty()) {
      uint64_t Addr = Stack.back();
      Stack.pop_back();
      ++Result.ObjectsVisited;
      ObjectHeader *Hdr = H.header(Addr);
      uint32_t N = Hdr->numRefSlots();
      for (uint32_t I = 0; I != N && Result.Ok; ++I) {
        ObjRef Child = H.rawLoadRef(Addr, I);
        if (Child)
          checkAndPush(Child.addr(), Addr, I);
      }
    }
    return Result;
  }

private:
  Space *spaceOf(uint64_t Addr) {
    for (Space *S : {&H.eden(), &H.fromSpace(), &H.toSpace(), &H.oldDram(),
                     &H.oldNvm()})
      if (S->contains(Addr))
        return S;
    return nullptr;
  }

  void fail(uint64_t Addr, uint64_t From, uint32_t Slot, const char *Why) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "object 0x%" PRIx64 " (reached from 0x%" PRIx64
                  " slot %u): %s",
                  Addr, From, Slot, Why);
    Result.Ok = false;
    Result.FirstProblem = Buf;
  }

  void checkAndPush(uint64_t Addr, uint64_t From, uint32_t Slot) {
    if (!Visited.insert(Addr).second)
      return;
    if (Addr % 8 != 0)
      return fail(Addr, From, Slot, "misaligned reference");
    Space *S = spaceOf(Addr);
    if (!S)
      return fail(Addr, From, Slot, "outside every heap space");
    if (Addr >= S->top())
      return fail(Addr, From, Slot,
                  "beyond its space's allocation frontier (dangling)");
    ObjectHeader *Hdr = H.header(Addr);
    if (Hdr->SizeBytes < sizeof(ObjectHeader) ||
        Addr + Hdr->SizeBytes > S->top())
      return fail(Addr, From, Slot, "corrupt object size");
    if (Hdr->isForwarded())
      return fail(Addr, From, Slot, "stale forwarding pointer");
    Stack.push_back(Addr);
  }

  Heap &H;
  VerifyResult Result;
  std::unordered_set<uint64_t> Visited;
  std::vector<uint64_t> Stack;
};

} // namespace

VerifyResult panthera::gc::verifyHeap(Heap &H) {
  return Verifier(H).run();
}
