//===- gc/Collector.cpp - Panthera generational collector ----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"

#include "gc/HeapVerifier.h"
#include "memsim/Migration.h"
#include "support/Errors.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/TraceLog.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

using namespace panthera;
using namespace panthera::gc;
using heap::CardTable;
using heap::ObjectHeader;
using heap::ObjectKind;
using heap::ObjRef;
using heap::Space;

[[noreturn]] static void fatalGc(const char *What) {
  std::fprintf(stderr, "panthera: gc failure: %s\n", What);
  std::abort();
}

Collector::Collector(heap::Heap &H, PolicyKind Policy, AccessMonitor *Monitor)
    : H(H), Policy(Policy), Monitor(Monitor) {
  H.setGcHost(this);
}

Collector::~Collector() { H.setGcHost(nullptr); }

void Collector::emitTelemetry(const GcEvent &Event) {
  if (Event.IncStep) {
    // Incremental mark steps are bounded pauses, not collections: they get
    // their own histogram and span and skip the occupancy sampling (the
    // heap shape has not changed).
    if (Metrics)
      Metrics->histogram("gc.incremental.step_ns").observe(Event.DurationNs);
    if (TraceSink)
      TraceSink
          ->span(support::TraceTrack::Gc, "incremental mark step", "gc",
                 Event.StartNs, Event.DurationNs)
          .arg("reason", std::string(Event.Reason));
    return;
  }
  if (Metrics) {
    const char *Kind = Event.Major ? "major" : "minor";
    Metrics->histogram(std::string("gc.") + Kind + ".pause_ns")
        .observe(Event.DurationNs);
    if (Event.Major) {
      Metrics->histogram("gc.major.mark_ns").observe(Event.MarkNs);
      Metrics->histogram("gc.major.compact_ns").observe(Event.CompactNs);
    } else {
      Metrics->histogram("gc.minor.root_task_ns").observe(Event.RootTaskNs);
      Metrics->histogram("gc.minor.dram_to_young_ns")
          .observe(Event.DramToYoungTaskNs);
      Metrics->histogram("gc.minor.nvm_to_young_ns")
          .observe(Event.NvmToYoungTaskNs);
      Metrics->histogram("gc.minor.drain_ns").observe(Event.DrainNs);
    }
    // Per-space occupancy, sampled right after the collection: the gauge
    // keeps the latest value, the histogram the whole run's distribution.
    auto Sample = [&](Space &S, const char *Name) {
      double Used = static_cast<double>(S.usedBytes());
      Metrics->gauge(std::string("heap.occupancy.") + Name + "_bytes")
          .set(Used);
      double Ratio =
          S.sizeBytes() ? Used / static_cast<double>(S.sizeBytes()) : 0.0;
      Metrics->histogram(std::string("heap.occupancy.") + Name + "_ratio")
          .observe(Ratio);
    };
    Sample(H.eden(), "eden");
    Sample(H.fromSpace(), "from");
    Sample(H.toSpace(), "to");
    Sample(H.oldDram(), "old_dram");
    Sample(H.oldNvm(), "old_nvm");
  }

  if (TraceSink) {
    using support::TraceTrack;
    TraceSink
        ->span(TraceTrack::Gc, Event.Major ? "major gc" : "minor gc", "gc",
               Event.StartNs, Event.DurationNs)
        .arg("reason", std::string(Event.Reason))
        .arg("bytes_promoted", Event.BytesPromoted)
        .arg("bytes_copied_to_survivor", Event.BytesCopiedToSurvivor)
        .arg("cards_scanned", Event.CardsScanned)
        .arg("rdd_arrays_migrated", Event.RddArraysMigrated);
    // Phase sub-spans, laid out back-to-back from the pause start. The
    // phases do not necessarily cover the whole pause (setup/cleanup time
    // between them stays unattributed), which chrome://tracing renders as
    // gaps inside the parent span.
    double T = Event.StartNs;
    auto Phase = [&](const char *Name, double DurNs) {
      if (DurNs <= 0.0)
        return;
      TraceSink->span(TraceTrack::Gc, Name, "gc.phase", T, DurNs);
      T += DurNs;
    };
    if (Event.Major) {
      Phase("mark", Event.MarkNs);
      Phase("compact", Event.CompactNs);
    } else {
      Phase("root task", Event.RootTaskNs);
      Phase("dram-to-young cards", Event.DramToYoungTaskNs);
      Phase("nvm-to-young cards", Event.NvmToYoungTaskNs);
      Phase("drain", Event.DrainNs);
    }
  }
}

//===----------------------------------------------------------------------===
// Minor GC
//===----------------------------------------------------------------------===

bool Collector::inCollectedYoung(uint64_t Addr) const {
  const heap::Heap &CH = H;
  return const_cast<heap::Heap &>(CH).eden().contains(Addr) ||
         const_cast<heap::Heap &>(CH).fromSpace().contains(Addr);
}

ObjRef Collector::evacuate(ObjRef Ref, MemTag IncomingTag) {
  uint64_t Addr = Ref.addr();
  ObjectHeader *Hdr = H.header(Addr);
  if (Hdr->isForwarded()) {
    // A later reference may still carry a stronger (DRAM) tag; keep it on
    // the copy so the next major GC can correct the placement.
    ObjectHeader *NewHdr = H.header(Hdr->Forward);
    NewHdr->setMemTag(mergeTags(NewHdr->memTag(), IncomingTag));
    return ObjRef(Hdr->Forward);
  }

  MemTag Tag = mergeTags(Hdr->memTag(), IncomingTag);
  uint32_t Size = Hdr->SizeBytes;
  // Any card-spanning reference array can create the §4.2.3 shared-card
  // pathology, so padding applies to all of them on promotion ("card
  // sharing among arrays is completely eliminated").
  bool IsRddArray = Hdr->kind() == ObjectKind::RefArray &&
                    Size >= CardTable::CardBytes;
  const heap::GcTuning &T = H.config().Tuning;

  uint64_t NewAddr = 0;
  bool Promoted = false;
  bool TagPromote =
      Tag != MemTag::None && T.EagerPromotion && H.hasSplitOldGen();
  // Widen before the +1: at Age == 255 a uint8 increment wraps to 0 and
  // resets the tenuring clock, so a saturated age must stay tenure-eligible.
  bool AgePromote = static_cast<uint32_t>(Hdr->Age) + 1 >= T.TenureAge;
  if (TagPromote || AgePromote) {
    MemTag PromoTag = Tag;
    if (T.KwWriteMonitoring)
      PromoTag =
          Hdr->WriteCount >= T.KwHotWrites ? MemTag::Dram : MemTag::Nvm;
    NewAddr = H.allocateInOld(Size, PromoTag, IsRddArray);
    Promoted = NewAddr != 0;
    if (TagPromote && Promoted)
      ++Stats.EagerPromotions;
  }
  if (!NewAddr)
    NewAddr = H.toSpace().allocate(Size);
  if (!NewAddr) {
    // Survivor overflow: tenure regardless of age.
    NewAddr = H.allocateInOld(Size, Tag, IsRddArray);
    Promoted = NewAddr != 0;
  }
  if (!NewAddr)
    fatalGc("no space left for a surviving object during scavenge");

  H.account(Addr, Size, /*IsWrite=*/false);
  H.account(NewAddr, Size, /*IsWrite=*/true);
  std::memcpy(H.rawBytes(NewAddr), H.rawBytes(Addr), Size);
  ObjectHeader *NewHdr = H.header(NewAddr);
  NewHdr->setMemTag(Tag);
  NewHdr->Forward = 0;
  NewHdr->Age = Promoted ? Hdr->Age
                         : static_cast<uint8_t>(
                               Hdr->Age == 255 ? 255 : Hdr->Age + 1);
  Hdr->Forward = NewAddr;
  if (Promoted)
    Stats.BytesPromoted += Size;
  else
    Stats.BytesCopiedToSurvivor += Size;
  Worklist.push_back(NewAddr);
  return ObjRef(NewAddr);
}

void Collector::scanCopied(uint64_t Addr) {
  ObjectHeader *Hdr = H.header(Addr);
  MemTag Tag = Hdr->memTag();
  bool ParentOld = H.isOld(Addr);
  uint32_t N = Hdr->numRefSlots();
  for (uint32_t I = 0; I != N; ++I) {
    uint64_t SlotAddr = H.refSlotAddr(Addr, I);
    H.account(SlotAddr, heap::RefSlotBytes, /*IsWrite=*/false);
    ObjRef Child = H.rawLoadRef(Addr, I);
    if (!Child)
      continue;
    if (inCollectedYoung(Child.addr())) {
      ObjRef Moved = evacuate(Child, Tag);
      H.rawStoreRef(Addr, I, Moved);
      H.account(SlotAddr, heap::RefSlotBytes, /*IsWrite=*/true);
      Child = Moved;
    }
    // A promoted object that still points into the young generation must
    // be visible to the next minor GC's card scan.
    if (ParentOld && H.isYoung(Child.addr()))
      H.cardTable().dirtyCardFor(SlotAddr);
  }
}

void Collector::drainWorklist() {
  while (!Worklist.empty()) {
    uint64_t Addr = Worklist.back();
    Worklist.pop_back();
    scanCopied(Addr);
  }
}

/// Scans ref slots [SlotBegin, SlotEnd) of the object at \p Addr,
/// evacuating young referents with the object's tag. Returns true when a
/// young referent remains after scanning (card must stay dirty).
static bool scanSlotRange(heap::Heap &H, Collector &C, uint64_t Addr,
                          uint32_t SlotBegin, uint32_t SlotEnd,
                          const std::function<ObjRef(ObjRef, MemTag)> &Evac) {
  (void)C;
  ObjectHeader *Hdr = H.header(Addr);
  MemTag Tag = Hdr->memTag();
  bool YoungRemains = false;
  for (uint32_t I = SlotBegin; I != SlotEnd; ++I) {
    uint64_t SlotAddr = H.refSlotAddr(Addr, I);
    H.account(SlotAddr, heap::RefSlotBytes, /*IsWrite=*/false);
    ObjRef Child = H.rawLoadRef(Addr, I);
    if (!Child)
      continue;
    ObjRef Moved = Evac(Child, Tag);
    if (Moved != Child) {
      H.rawStoreRef(Addr, I, Moved);
      H.account(SlotAddr, heap::RefSlotBytes, /*IsWrite=*/true);
    }
    if (H.isYoung(Moved.addr()))
      YoungRemains = true;
  }
  return YoungRemains;
}

void Collector::scanCard(Space &S, size_t CardIdx) {
  ++Stats.CardsScanned;
  CardTable &Cards = H.cardTable();
  uint64_t CardLo = Cards.cardStart(CardIdx);
  uint64_t CardHi = CardLo + CardTable::CardBytes;

  uint64_t First = H.firstObjectIntersectingCard(S, CardIdx);
  if (!First) {
    Cards.clean(CardIdx);
    return;
  }

  // Collect the objects intersecting this card.
  std::vector<uint64_t> Objs;
  unsigned LargeArrays = 0;
  for (uint64_t A = First; A < S.top() && A < CardHi;
       A += H.header(A)->SizeBytes) {
    Objs.push_back(A);
    ObjectHeader *Hdr = H.header(A);
    if (Hdr->kind() == ObjectKind::RefArray &&
        Hdr->SizeBytes >= CardTable::CardBytes)
      ++LargeArrays;
  }

  auto Evac = [this](ObjRef Child, MemTag Tag) {
    if (inCollectedYoung(Child.addr()))
      return evacuate(Child, Tag);
    return Child;
  };

  if (LargeArrays >= 2) {
    // §4.2.3 pathology: two large arrays share the card; neither GC thread
    // can prove the card clean, so every element of each array is rescanned
    // on every minor GC and the card stays dirty until a major GC.
    ++Stats.SharedArrayCardScans;
    for (uint64_t A : Objs)
      scanSlotRange(H, *this, A, 0, H.header(A)->numRefSlots(), Evac);
    return;
  }

  bool YoungRemains = false;
  for (uint64_t A : Objs) {
    ObjectHeader *Hdr = H.header(A);
    uint32_t N = Hdr->numRefSlots();
    uint64_t SlotsBase = A + sizeof(ObjectHeader);
    // Clamp the scan to the slots whose addresses fall inside the card.
    uint32_t Begin = 0;
    if (CardLo > SlotsBase)
      Begin = static_cast<uint32_t>(
          (CardLo - SlotsBase + heap::RefSlotBytes - 1) /
          heap::RefSlotBytes);
    uint32_t End = N;
    if (SlotsBase < CardHi) {
      uint64_t Fit = (CardHi - SlotsBase + heap::RefSlotBytes - 1) /
                     heap::RefSlotBytes;
      End = static_cast<uint32_t>(std::min<uint64_t>(N, Fit));
    } else {
      End = 0;
    }
    if (Begin < End)
      YoungRemains |= scanSlotRange(H, *this, A, Begin, End, Evac);
  }
  if (!YoungRemains) {
    Cards.clean(CardIdx);
    ++Stats.CardsCleaned;
  }
}

void Collector::scanOldToYoungCards(GcEvent &Event) {
  // The paper splits the old-to-young task into a DRAM-to-young and an
  // NVM-to-young task; iterating the (up to two) old spaces separately is
  // the sequential equivalent, and each task's cost is recorded.
  CardTable &Cards = H.cardTable();
  for (Space *S : H.oldSpaces()) {
    if (S->usedBytes() == 0)
      continue;
    double Before = H.memory().gcTimeNs();
    size_t FirstCard = Cards.cardIndex(S->base());
    size_t LastCard = Cards.cardIndex(S->top() - 1);
    for (size_t C = FirstCard; C <= LastCard; ++C)
      if (Cards.isDirty(C))
        scanCard(*S, C);
    double Spent = H.memory().gcTimeNs() - Before;
    if (H.hasSplitOldGen() && S == &H.oldDram())
      Event.DramToYoungTaskNs += Spent;
    else
      Event.NvmToYoungTaskNs += Spent;
  }
}

bool Collector::scavengeHeadroomOk() const {
  heap::Heap &MH = const_cast<heap::Heap &>(static_cast<const heap::Heap &>(H));
  // Worst case: every young byte survives and must land in to-space or be
  // tenured. An actual scavenge that exceeds this would die mid-evacuation
  // with the heap half-forwarded, so it is never allowed to start.
  uint64_t Worst = MH.eden().usedBytes() + MH.fromSpace().usedBytes();
  uint64_t Room = MH.toSpace().sizeBytes() - MH.toSpace().usedBytes();
  for (Space *S : MH.oldSpaces())
    Room += S->sizeBytes() - S->usedBytes();
  return Worst <= Room;
}

void Collector::collectMinor(const char *Reason) {
  assert(!H.inGc() && "re-entrant collection");
  if (!scavengeHeadroomOk()) {
    // A sliding full compaction needs no evacuation headroom and leaves
    // the young generation empty, so there is nothing left to scavenge.
    // If even the live set does not fit, collectMajor throws a typed
    // OutOfMemoryError before moving a single object.
    collectMajor("minor gc survivor headroom exhausted");
    return;
  }
  // The SATB log may hold young addresses, which the evacuation below
  // would invalidate: trace them now, as a step event of their own so the
  // minor pause accounting stays untouched.
  if (IncActive)
    satbDrainStep();
  H.setInGc(true);
  GcEvent Event;
  Event.Major = false;
  Event.Reason = Reason;
  Event.StartNs = H.memory().totalTimeNs();
  double GcNsBefore = H.memory().gcTimeNs();
  uint64_t PromotedBefore = Stats.BytesPromoted;
  uint64_t CopiedBefore = Stats.BytesCopiedToSurvivor;
  uint64_t CardsBefore = Stats.CardsScanned;
  {
    memsim::ActorScope Scope(H.memory(), memsim::Actor::Gc);
    ++Stats.MinorGcs;
    if (Pool) {
      // Work-stealing scavenge: claim / plan / copy / fixup phases (see
      // below). Same reachability and promotion rules; deterministic at
      // every worker count.
      scavengeParallel(Event);
    } else {
      Worklist.clear();

      // Root task: stack handles and persisted-RDD roots. Top RDD objects
      // with MEMORY_BITS set are promoted here (§4.2.2 root-task change).
      double PhaseStart = H.memory().gcTimeNs();
      H.forEachRoot([this](ObjRef &R) {
        if (inCollectedYoung(R.addr()))
          R = evacuate(R, MemTag::None);
      });
      Event.RootTaskNs = H.memory().gcTimeNs() - PhaseStart;

      scanOldToYoungCards(Event);

      PhaseStart = H.memory().gcTimeNs();
      drainWorklist();
      Event.DrainNs = H.memory().gcTimeNs() - PhaseStart;
    }

    // Young spaces: eden and from are now garbage; survivors sit in 'to'.
    uint64_t YoungLo = std::min(
        {H.eden().base(), H.fromSpace().base(), H.toSpace().base()});
    uint64_t YoungHi =
        std::max({H.eden().end(), H.fromSpace().end(), H.toSpace().end()});
    H.eden().reset();
    H.fromSpace().reset();
    H.swapSurvivors();
    // Young cards are never scanned; drop any stale dirty bits, but keep
    // the old-generation cards (including uncleanable shared ones).
    // clearRange leaves a card partially shared with a neighboring space
    // conservatively dirty and preserves its out-of-range FirstObj entry.
    H.cardTable().clearRange(YoungLo, YoungHi);
  }
  H.setInGc(false);
  Event.DurationNs = H.memory().gcTimeNs() - GcNsBefore;
  Event.BytesPromoted = Stats.BytesPromoted - PromotedBefore;
  Event.BytesCopiedToSurvivor =
      Stats.BytesCopiedToSurvivor - CopiedBefore;
  Event.CardsScanned = Stats.CardsScanned - CardsBefore;
  Events.push_back(Event);
  emitTelemetry(Event);
  if (H.config().Tuning.VerifyHeap) {
    VerifyResult V = verifyHeap(H);
    if (!V.Ok) {
      std::fprintf(stderr, "verify after minor gc #%llu: %s\n",
                   static_cast<unsigned long long>(Stats.MinorGcs),
                   V.FirstProblem.c_str());
      std::abort();
    }
  }
  uint64_t MajorsBefore = Stats.MajorGcs;
  maybeTriggerMajor();
  // Between-GC dynamic migration (--policy=dynamic): one bounded hot/cold
  // page-swap step per minor GC. Skipped when this minor escalated to a
  // major -- the major already reset placement to the canonical layout,
  // so the tracker window describes a heap that no longer exists.
  if (Migration && Stats.MajorGcs == MajorsBefore) {
    double StepStart = H.memory().totalTimeNs();
    memsim::MigrationStep S = Migration->step();
    if (S.PagesSwapped != 0 && TraceSink)
      TraceSink->span(support::TraceTrack::Gc, "migration.step",
                      "gc.migration", StepStart, S.CopyNs);
  }
}

//===----------------------------------------------------------------------===
// Parallel scavenge (docs/parallelism.md)
//
// The single-threaded scavenge above interleaves discovery, placement, and
// copying, so its result depends on trace order. The parallel scavenge
// splits the same work into four phases so that every order-dependent
// decision is made serially and every order-free phase runs on the
// work-stealing pool:
//
//   1. discover (parallel): claim reachable young objects with a CAS on the
//      header's forwarding word and compute the monotone MEMORY_BITS
//      fixpoint; roots and dirty cards seed per-worker Chase-Lev deques.
//   2. plan (serial): walk eden + from-space in address order and assign
//      every claimed object its destination, replicating the serial
//      promotion rules; old-generation placement goes through promotion
//      buffers (PLABs) whose remainders are retired as dead fillers.
//   3. copy (parallel): memcpy each object to its planned destination and
//      rewrite its reference slots through the forwarding words.
//   4. fixup (serial): rewrite roots and dirty-card slots, make the card
//      clean/keep decisions, and charge the merged traffic tallies.
//
// Because the claim set, the tag fixpoint, and the address-ordered plan are
// all independent of scheduling, the resulting heap image, statistics, and
// simulated time are bit-identical at every worker count.
//===----------------------------------------------------------------------===

namespace {

/// Forward-word value marking "claimed, destination not yet planned".
constexpr uint64_t ClaimedSentinel = 1;

/// Per-worker integer traffic counts, merged before the single bulk charge
/// so simulated GC time is independent of scheduling (floating-point
/// accumulation order never varies). Promoted to memsim::TrafficShard so
/// every parallel phase (not just the GC) can shard its accounting; the
/// flush (HybridMemory::flushShard) charges the current actor and returns
/// the ns consumed, exactly as the old GcTally::charge did under the GC
/// actor scope.
using GcTally = memsim::TrafficShard;

MemTag loadTagAtomic(ObjectHeader *Hdr) {
  std::atomic_ref<uint8_t> F(Hdr->Flags);
  return static_cast<MemTag>(F.load(std::memory_order_relaxed) &
                             ObjectHeader::MemoryBitsMask);
}

/// Raises the object's MEMORY_BITS to merge(current, Incoming). Returns
/// true when the stored tag changed. The merge is monotone (DRAM > NVM >
/// none), so concurrent raisers converge and each object's tag can rise at
/// most twice.
bool raiseTagAtomic(ObjectHeader *Hdr, MemTag Incoming) {
  if (Incoming == MemTag::None)
    return false;
  std::atomic_ref<uint8_t> F(Hdr->Flags);
  uint8_t Old = F.load(std::memory_order_relaxed);
  for (;;) {
    MemTag Cur = static_cast<MemTag>(Old & ObjectHeader::MemoryBitsMask);
    MemTag Merged = mergeTags(Cur, Incoming);
    if (Merged == Cur)
      return false;
    uint8_t New = static_cast<uint8_t>((Old & ~ObjectHeader::MemoryBitsMask) |
                                       static_cast<uint8_t>(Merged));
    if (F.compare_exchange_weak(Old, New, std::memory_order_relaxed))
      return true;
  }
}

/// Claims the object for this scavenge: CAS the forwarding word from 0 to
/// the sentinel. Exactly one thread wins per object.
bool claimAtomic(ObjectHeader *Hdr) {
  std::atomic_ref<uint64_t> Fwd(Hdr->Forward);
  uint64_t Expected = 0;
  return Fwd.compare_exchange_strong(Expected, ClaimedSentinel,
                                     std::memory_order_relaxed);
}

/// One minor collection's parallel-scavenge state. Constructed per GC on
/// the caller's stack; shares the heap, the collector's stats, and the
/// pool.
class ParallelScavenge {
public:
  ParallelScavenge(heap::Heap &H, GcStats &Stats,
                   support::WorkStealingPool &Pool)
      : H(H), Stats(Stats), Pool(Pool), Workers(Pool.numWorkers()),
        Map(H.memory().map()) {}

  void collect(GcEvent &Event) {
    prepare();
    discover();
    plan();
    copy();
    fixup(Event);
  }

private:
  //===--- shared helpers -------------------------------------------------===

  /// One dirty old-generation card's work item.
  struct CardWork {
    Space *S;
    size_t Idx;
  };

  bool inCollectedYoung(uint64_t Addr) const {
    return H.eden().contains(Addr) || H.fromSpace().contains(Addr);
  }

  uint64_t topOf(heap::Space *S) const {
    return S == &H.oldDram() ? TopDram : TopNvm;
  }

  /// Heap::firstObjectIntersectingCard against a snapshotted allocation
  /// frontier, so the discover and fixup phases see the identical object
  /// population even though planning extends the old spaces in between.
  uint64_t firstObjectIntersecting(Space &S, size_t CardIdx, uint64_t Top) {
    CardTable &Cards = H.cardTable();
    uint64_t CardLo = Cards.cardStart(CardIdx);
    uint64_t CardHi = CardLo + CardTable::CardBytes;
    if (CardLo >= Top)
      return 0;
    uint64_t Anchor = S.base();
    size_t BaseCard = Cards.cardIndex(S.base());
    for (size_t C = CardIdx; C > BaseCard;) {
      --C;
      uint64_t A = Cards.firstObjectInCard(C);
      if (A != heap::CardTable::NoObject && A < Top) {
        Anchor = A;
        break;
      }
    }
    uint64_t Addr = Anchor;
    while (Addr < Top) {
      uint32_t Size = H.header(Addr)->SizeBytes;
      if (Addr + Size > CardLo)
        return Addr < CardHi ? Addr : 0;
      Addr += Size;
    }
    return 0;
  }

  /// Slot ranges a dirty card's scan covers, replicating scanCard's
  /// clamping and the §4.2.3 shared-array full-rescan rule. Used by both
  /// the parallel discover pass and the serial fixup pass.
  struct CardRange {
    uint64_t Addr;
    uint32_t Begin, End;
  };
  struct CardScan {
    bool HasObjects = false;
    bool Shared = false;
    std::vector<CardRange> Ranges;
  };

  CardScan collectCardRanges(Space &S, size_t CardIdx, uint64_t Top) {
    CardScan R;
    CardTable &Cards = H.cardTable();
    uint64_t CardLo = Cards.cardStart(CardIdx);
    uint64_t CardHi = CardLo + CardTable::CardBytes;
    uint64_t First = firstObjectIntersecting(S, CardIdx, Top);
    if (!First)
      return R;
    R.HasObjects = true;
    std::vector<uint64_t> Objs;
    unsigned LargeArrays = 0;
    for (uint64_t A = First; A < Top && A < CardHi;
         A += H.header(A)->SizeBytes) {
      Objs.push_back(A);
      ObjectHeader *Hdr = H.header(A);
      if (Hdr->kind() == ObjectKind::RefArray &&
          Hdr->SizeBytes >= CardTable::CardBytes)
        ++LargeArrays;
    }
    if (LargeArrays >= 2) {
      R.Shared = true;
      for (uint64_t A : Objs)
        R.Ranges.push_back({A, 0, H.header(A)->numRefSlots()});
      return R;
    }
    for (uint64_t A : Objs) {
      ObjectHeader *Hdr = H.header(A);
      uint32_t N = Hdr->numRefSlots();
      uint64_t SlotsBase = A + sizeof(ObjectHeader);
      uint32_t Begin = 0;
      if (CardLo > SlotsBase)
        Begin = static_cast<uint32_t>(
            (CardLo - SlotsBase + heap::RefSlotBytes - 1) /
            heap::RefSlotBytes);
      uint32_t End = N;
      if (SlotsBase < CardHi) {
        uint64_t Fit = (CardHi - SlotsBase + heap::RefSlotBytes - 1) /
                       heap::RefSlotBytes;
        End = static_cast<uint32_t>(std::min<uint64_t>(N, Fit));
      } else {
        End = 0;
      }
      if (Begin < End)
        R.Ranges.push_back({A, Begin, End});
    }
    return R;
  }

  //===--- phase 0: prepare -----------------------------------------------===

  void prepare() {
    H.forEachRoot([this](ObjRef &R) { Roots.push_back(&R); });
    TopDram = H.oldDram().top();
    TopNvm = H.oldNvm().top();
    CardTable &Cards = H.cardTable();
    for (Space *S : H.oldSpaces()) {
      if (S->usedBytes() == 0)
        continue;
      size_t FirstCard = Cards.cardIndex(S->base());
      size_t LastCard = Cards.cardIndex(S->top() - 1);
      for (size_t C = FirstCard; C <= LastCard; ++C)
        if (Cards.isDirty(C))
          DirtyCards.push_back({S, C});
    }
  }

  //===--- phase 1: discover (parallel) -----------------------------------===

  void enqueue(uint64_t Addr, unsigned W) {
    Pending.fetch_add(1);
    Deques[W]->push(Addr);
  }

  void visitYoung(uint64_t Addr, MemTag Incoming, unsigned W) {
    ObjectHeader *Hdr = H.header(Addr);
    bool Claimed = claimAtomic(Hdr);
    bool Raised = raiseTagAtomic(Hdr, Incoming);
    // A raise on an already-claimed object re-enqueues it so its children
    // observe the stronger tag; the monotone merge bounds re-scans at two
    // per object and makes the fixpoint schedule-independent.
    if (Claimed || Raised)
      enqueue(Addr, W);
  }

  void scanObject(uint64_t Addr, unsigned W) {
    ObjectHeader *Hdr = H.header(Addr);
    MemTag Tag = loadTagAtomic(Hdr);
    uint32_t N = Hdr->numRefSlots();
    for (uint32_t I = 0; I != N; ++I) {
      ObjRef Child = H.rawLoadRef(Addr, I);
      if (Child && inCollectedYoung(Child.addr()))
        visitYoung(Child.addr(), Tag, W);
    }
  }

  void scanDirtyCard(const CardWork &C, unsigned W);

  void discover() {
    Deques.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Deques.push_back(std::make_unique<support::ChaseLevDeque<uint64_t>>());
    size_t NumItems = Roots.size() + DirtyCards.size();
    Pending.store(NumItems);
    Pool.runOnWorkers([this, NumItems](unsigned W) {
      // Striped initial work: roots first, then dirty cards.
      for (size_t I = W; I < NumItems; I += Workers) {
        if (I < Roots.size()) {
          ObjRef R = *Roots[I];
          if (R && inCollectedYoung(R.addr()))
            visitYoung(R.addr(), MemTag::None, W);
        } else {
          scanDirtyCard(DirtyCards[I - Roots.size()], W);
        }
        Pending.fetch_sub(1);
      }
      // Work-stealing trace to the claim/tag fixpoint.
      for (;;) {
        uint64_t Addr;
        if (Deques[W]->pop(Addr)) {
          scanObject(Addr, W);
          Pending.fetch_sub(1);
          continue;
        }
        bool Stole = false;
        for (unsigned I = 1; I != Workers && !Stole; ++I)
          Stole = Deques[(W + I) % Workers]->steal(Addr);
        if (Stole) {
          scanObject(Addr, W);
          Pending.fetch_sub(1);
          continue;
        }
        if (Pending.load() == 0)
          break;
        std::this_thread::yield();
      }
    });
  }

  //===--- phase 2: plan (serial) -----------------------------------------===

  /// Per-space promotion buffer: a bump extent carved from the owning
  /// space. Retiring a partially used extent plugs the remainder with a
  /// dead filler; the fit rule never leaves a remainder smaller than a
  /// header, so every remainder is representable.
  struct Plab {
    Space *S = nullptr;
    uint64_t Cursor = 0;
    uint64_t Limit = 0;
  };

  static constexpr uint64_t PlabBytes = 16 * 1024;
  static constexpr uint64_t MinFiller = sizeof(ObjectHeader);

  void retirePlab(Plab &P) {
    uint64_t R = P.Limit - P.Cursor;
    if (R == 0)
      return;
    assert(R >= MinFiller && "unrepresentable PLAB remainder");
    H.writeFillerObject(P.Cursor, R);
    H.stats().GcPlabWasteBytes += R;
    P.Cursor = P.Limit;
  }

  bool refillPlab(Plab &P) {
    uint64_t A = P.S->allocate(PlabBytes);
    if (!A)
      return false;
    ++H.stats().GcPlabRefills;
    if (A == P.Limit && P.Limit != 0) {
      P.Limit = A + PlabBytes; // contiguous: the remainder is absorbed
    } else {
      retirePlab(P);
      P.Cursor = A;
      P.Limit = A + PlabBytes;
    }
    return true;
  }

  uint64_t plabPlace(Plab &P, uint32_t Size) {
    if (!P.S || P.S->sizeBytes() == 0)
      return 0;
    uint64_t Avail = P.Limit - P.Cursor;
    bool Fits = Avail == Size || Avail >= Size + MinFiller;
    if (!Fits) {
      if (!refillPlab(P)) {
        // The space cannot supply a whole extent; fall back to a direct
        // tail allocation so the scavenge keeps the headroom guarantee the
        // serial check established.
        uint64_t A = P.S->allocate(Size);
        if (A)
          H.cardTable().noteObjectStart(A);
        return A;
      }
      Avail = P.Limit - P.Cursor;
      Fits = Avail == Size || Avail >= Size + MinFiller;
      if (!Fits)
        return 0;
    }
    uint64_t Addr = P.Cursor;
    P.Cursor += Size;
    H.cardTable().noteObjectStart(Addr);
    return Addr;
  }

  /// Old-generation placement mirroring Heap::allocateInOld's primary /
  /// fallback order, with small objects routed through the PLABs. Large or
  /// card-padded (RDD array) objects bypass the PLAB and allocate
  /// directly, which also re-establishes card padding.
  uint64_t placeOld(uint32_t Size, MemTag Tag, bool IsRddArray) {
    if (IsRddArray || Size + MinFiller > PlabBytes)
      return H.allocateInOld(Size, Tag, IsRddArray);
    Plab *Primary;
    Plab *Fallback = nullptr;
    if (!H.hasSplitOldGen()) {
      Primary = &NvmPlab;
    } else if (Tag == MemTag::Dram) {
      Primary = &DramPlab;
      Fallback = &NvmPlab;
    } else {
      Primary = &NvmPlab;
      Fallback = &DramPlab;
    }
    for (Plab *P : {Primary, Fallback}) {
      if (!P)
        continue;
      uint64_t Addr = plabPlace(*P, Size);
      if (!Addr)
        continue;
      if (P == Fallback && Tag == MemTag::Dram)
        ++H.stats().PretenureDramFallbacks;
      return Addr;
    }
    return 0;
  }

  struct Move {
    uint64_t Old;
    uint64_t New;
    uint32_t Size;
    bool Promoted;
  };

  void plan() {
    DramPlab.S = &H.oldDram();
    NvmPlab.S = &H.oldNvm();
    const heap::GcTuning &T = H.config().Tuning;
    for (Space *S : {&H.eden(), &H.fromSpace()}) {
      H.walkObjects(S->base(), S->top(), [&](uint64_t Addr) {
        ObjectHeader *Hdr = H.header(Addr);
        if (Hdr->Forward == 0)
          return; // unreachable
        MemTag Tag = Hdr->memTag(); // the discover fixpoint's merged tag
        uint32_t Size = Hdr->SizeBytes;
        bool IsRddArray = Hdr->kind() == ObjectKind::RefArray &&
                          Size >= CardTable::CardBytes;
        bool TagPromote =
            Tag != MemTag::None && T.EagerPromotion && H.hasSplitOldGen();
        // Same widening as the serial path: a saturated age (255) must not
        // wrap to 0 and lose its tenure eligibility.
        bool AgePromote = static_cast<uint32_t>(Hdr->Age) + 1 >= T.TenureAge;
        uint64_t NewAddr = 0;
        bool Promoted = false;
        if (TagPromote || AgePromote) {
          MemTag PromoTag = Tag;
          if (T.KwWriteMonitoring)
            PromoTag =
                Hdr->WriteCount >= T.KwHotWrites ? MemTag::Dram : MemTag::Nvm;
          NewAddr = placeOld(Size, PromoTag, IsRddArray);
          Promoted = NewAddr != 0;
          if (TagPromote && Promoted)
            ++Stats.EagerPromotions;
        }
        if (!NewAddr)
          NewAddr = H.toSpace().allocate(Size);
        if (!NewAddr) {
          // Survivor overflow: tenure regardless of age.
          NewAddr = placeOld(Size, Tag, IsRddArray);
          Promoted = NewAddr != 0;
        }
        if (!NewAddr)
          fatalGc("no space left for a surviving object during scavenge");
        Hdr->Forward = NewAddr;
        if (Promoted)
          Stats.BytesPromoted += Size;
        else
          Stats.BytesCopiedToSurvivor += Size;
        Moves.push_back({Addr, NewAddr, Size, Promoted});
      });
    }
    retirePlab(DramPlab);
    retirePlab(NvmPlab);
  }

  //===--- phase 3: copy (parallel) ---------------------------------------===

  void copy() {
    Tallies.assign(Workers, GcTally());
    DirtySlots.assign(Workers, {});
    Pool.run(Moves.size(), [this](size_t I, unsigned W) {
      const Move &M = Moves[I];
      GcTally &T = Tallies[W];
      T.add(Map, M.Old, M.Size, /*IsWrite=*/false);
      T.add(Map, M.New, M.Size, /*IsWrite=*/true);
      std::memcpy(H.rawBytes(M.New), H.rawBytes(M.Old), M.Size);
      ObjectHeader *NewHdr = H.header(M.New);
      NewHdr->Forward = 0;
      if (!M.Promoted)
        NewHdr->Age = static_cast<uint8_t>(
            NewHdr->Age == 255 ? 255 : NewHdr->Age + 1);
      bool ParentOld = H.isOld(M.New);
      uint32_t N = NewHdr->numRefSlots();
      for (uint32_t S = 0; S != N; ++S) {
        uint64_t SlotAddr = H.refSlotAddr(M.New, S);
        T.add(Map, SlotAddr, heap::RefSlotBytes, /*IsWrite=*/false);
        ObjRef Child = H.rawLoadRef(M.New, S);
        if (!Child)
          continue;
        if (inCollectedYoung(Child.addr())) {
          ObjRef Moved(H.header(Child.addr())->Forward);
          H.rawStoreRef(M.New, S, Moved);
          T.add(Map, SlotAddr, heap::RefSlotBytes, /*IsWrite=*/true);
          Child = Moved;
        }
        // Promoted objects still pointing into the young generation must
        // be visible to the next minor GC's card scan; the dirtying is
        // deferred so it lands after the fixup phase's clean decisions,
        // matching the serial scavenge's phase order.
        if (ParentOld && H.isYoung(Child.addr()))
          DirtySlots[W].push_back(SlotAddr);
      }
    });
  }

  //===--- phase 4: fixup (serial) ----------------------------------------===

  void fixup(GcEvent &Event) {
    H.forEachRoot([this](ObjRef &R) {
      if (R && inCollectedYoung(R.addr()))
        R = ObjRef(H.header(R.addr())->Forward);
    });

    GcTally DramCards, NvmCards;
    CardTable &Cards = H.cardTable();
    for (const CardWork &C : DirtyCards) {
      GcTally &T =
          H.hasSplitOldGen() && C.S == &H.oldDram() ? DramCards : NvmCards;
      ++Stats.CardsScanned;
      CardScan CS = collectCardRanges(*C.S, C.Idx, topOf(C.S));
      if (!CS.HasObjects) {
        Cards.clean(C.Idx);
        continue;
      }
      if (CS.Shared)
        ++Stats.SharedArrayCardScans;
      bool YoungRemains = false;
      for (const CardRange &R : CS.Ranges) {
        for (uint32_t S = R.Begin; S != R.End; ++S) {
          uint64_t SlotAddr = H.refSlotAddr(R.Addr, S);
          T.add(Map, SlotAddr, heap::RefSlotBytes, /*IsWrite=*/false);
          ObjRef Child = H.rawLoadRef(R.Addr, S);
          if (!Child)
            continue;
          if (inCollectedYoung(Child.addr())) {
            ObjRef Moved(H.header(Child.addr())->Forward);
            H.rawStoreRef(R.Addr, S, Moved);
            T.add(Map, SlotAddr, heap::RefSlotBytes, /*IsWrite=*/true);
            Child = Moved;
          }
          if (H.isYoung(Child.addr()))
            YoungRemains = true;
        }
      }
      if (!CS.Shared && !YoungRemains) {
        Cards.clean(C.Idx);
        ++Stats.CardsCleaned;
      }
    }

    // Re-dirty the cards of promoted objects that still reference young
    // survivors -- strictly after the clean decisions above, as in the
    // serial scavenge where all dirtying happens during the drain.
    for (const std::vector<uint64_t> &V : DirtySlots)
      for (uint64_t SlotAddr : V)
        Cards.dirtyCardFor(SlotAddr);

    // Single bulk charge per task family; the integer counts were merged
    // above, so time is identical at every worker count. Root handles live
    // outside simulated memory, so the root task itself is free -- the
    // copies it caused are part of the drain tally.
    memsim::HybridMemory &Mem = H.memory();
    Event.RootTaskNs = 0.0;
    Event.DramToYoungTaskNs = Mem.flushShard(DramCards);
    Event.NvmToYoungTaskNs = Mem.flushShard(NvmCards);
    GcTally Drain;
    for (const GcTally &T : Tallies)
      Drain.merge(T);
    Event.DrainNs = Mem.flushShard(Drain);
  }

  //===--- state ----------------------------------------------------------===

  heap::Heap &H;
  GcStats &Stats;
  support::WorkStealingPool &Pool;
  unsigned Workers;
  const memsim::AddressMap &Map;

  std::vector<ObjRef *> Roots;
  std::vector<CardWork> DirtyCards;
  uint64_t TopDram = 0, TopNvm = 0;

  std::vector<std::unique_ptr<support::ChaseLevDeque<uint64_t>>> Deques;
  std::atomic<size_t> Pending{0};

  Plab DramPlab, NvmPlab;
  std::vector<Move> Moves;

  std::vector<GcTally> Tallies;
  std::vector<std::vector<uint64_t>> DirtySlots;
};

void ParallelScavenge::scanDirtyCard(const CardWork &C, unsigned W) {
  CardScan CS = collectCardRanges(*C.S, C.Idx, topOf(C.S));
  for (const CardRange &R : CS.Ranges) {
    MemTag Tag = H.header(R.Addr)->memTag(); // old gen: stable during GC
    for (uint32_t S = R.Begin; S != R.End; ++S) {
      ObjRef Child = H.rawLoadRef(R.Addr, S);
      if (Child && inCollectedYoung(Child.addr()))
        visitYoung(Child.addr(), Tag, W);
    }
  }
}

} // namespace

void Collector::scavengeParallel(GcEvent &Event) {
  ParallelScavenge PS(H, Stats, *Pool);
  PS.collect(Event);
}

void Collector::maybeTriggerMajor() {
  double Threshold = H.config().Tuning.MajorGcOccupancy;
  uint64_t Used = 0;
  uint64_t Size = 0;
  for (Space *S : H.oldSpaces()) {
    Used += S->usedBytes();
    Size += S->sizeBytes();
  }
  if (Size == 0)
    return;
  // Progress guard: require a couple of minor collections between majors
  // so a heap legitimately full of hot data does not thrash in
  // back-to-back full collections.
  if (Stats.MinorGcs < MinorsAtLastMajor + 3)
    return;
  bool TotalFull =
      static_cast<double>(Used) >= Threshold * static_cast<double>(Size);
  // The old generation's DRAM component is the scarce resource: when it
  // fills up, a full GC gives dynamic migration the chance to demote cold
  // RDDs and reclaim DRAM (§4.2.2).
  bool DramFull = false;
  if (H.hasSplitOldGen() && H.oldDram().sizeBytes() > 0) {
    uint64_t DUsed = H.oldDram().usedBytes();
    uint64_t DSize = H.oldDram().sizeBytes();
    DramFull =
        static_cast<double>(DUsed) >= Threshold * static_cast<double>(DSize);
  }
  if (TotalFull || DramFull) {
    const char *Reason = DramFull ? "old DRAM component occupancy"
                                  : "old generation occupancy";
    // With a pause budget, the occupancy trigger starts an incremental
    // marking cycle instead of a stop-the-world major; an already-active
    // cycle covers the trigger and finishes on its own pace.
    if (H.config().Tuning.MaxPauseUs > 0) {
      if (!IncActive)
        startIncrementalCycle(Reason);
      return;
    }
    collectMajor(Reason);
  }
}

//===----------------------------------------------------------------------===
// Major GC
//===----------------------------------------------------------------------===

void Collector::markObject(uint64_t Addr, std::vector<uint64_t> &Stack) {
  ObjectHeader *Hdr = H.header(Addr);
  if (Hdr->isMarked())
    return;
  Hdr->setMarked(true);
  Stack.push_back(Addr);
}

void Collector::markFromRoots() {
  std::vector<uint64_t> Stack;
  H.forEachRoot([this, &Stack](ObjRef &R) { markObject(R.addr(), Stack); });
  while (!Stack.empty()) {
    uint64_t Addr = Stack.back();
    Stack.pop_back();
    ObjectHeader *Hdr = H.header(Addr);
    H.account(Addr, sizeof(ObjectHeader), /*IsWrite=*/false);
    uint32_t N = Hdr->numRefSlots();
    for (uint32_t I = 0; I != N; ++I) {
      H.account(H.refSlotAddr(Addr, I), heap::RefSlotBytes,
                /*IsWrite=*/false);
      ObjRef Child = H.rawLoadRef(Addr, I);
      if (Child)
        markObject(Child.addr(), Stack);
    }
  }
}

void Collector::markParallelFromRoots() {
  // Work-stealing mark. Exactly one worker claims each object (an atomic
  // fetch_or of the mark bit), and the claimer scans it, so every header
  // and slot is tallied exactly once regardless of scheduling -- the
  // merged traffic counts, and hence MarkNs, are worker-count invariant.
  unsigned Workers = Pool->numWorkers();
  std::vector<std::unique_ptr<support::ChaseLevDeque<uint64_t>>> Deques;
  Deques.reserve(Workers);
  for (unsigned W = 0; W != Workers; ++W)
    Deques.push_back(std::make_unique<support::ChaseLevDeque<uint64_t>>());
  std::vector<uint64_t> Roots;
  H.forEachRoot([&Roots](ObjRef &R) { Roots.push_back(R.addr()); });
  std::atomic<size_t> Pending{Roots.size()};
  std::vector<GcTally> Tallies(Workers);
  const memsim::AddressMap &Map = H.memory().map();

  auto Claim = [this](uint64_t Addr) {
    std::atomic_ref<uint8_t> F(H.header(Addr)->Flags);
    uint8_t Old =
        F.fetch_or(ObjectHeader::MarkBit, std::memory_order_relaxed);
    return (Old & ObjectHeader::MarkBit) == 0;
  };
  auto Scan = [&](uint64_t Addr, unsigned W) {
    ObjectHeader *Hdr = H.header(Addr);
    GcTally &T = Tallies[W];
    T.add(Map, Addr, sizeof(ObjectHeader), /*IsWrite=*/false);
    uint32_t N = Hdr->numRefSlots();
    for (uint32_t I = 0; I != N; ++I) {
      T.add(Map, H.refSlotAddr(Addr, I), heap::RefSlotBytes,
            /*IsWrite=*/false);
      ObjRef Child = H.rawLoadRef(Addr, I);
      if (Child && Claim(Child.addr())) {
        Pending.fetch_add(1);
        Deques[W]->push(Child.addr());
      }
    }
  };

  Pool->runOnWorkers([&](unsigned W) {
    for (size_t I = W; I < Roots.size(); I += Workers) {
      if (Claim(Roots[I]))
        Scan(Roots[I], W);
      Pending.fetch_sub(1);
    }
    for (;;) {
      uint64_t Addr;
      if (Deques[W]->pop(Addr)) {
        Scan(Addr, W);
        Pending.fetch_sub(1);
        continue;
      }
      bool Stole = false;
      for (unsigned I = 1; I != Workers && !Stole; ++I)
        Stole = Deques[(W + I) % Workers]->steal(Addr);
      if (Stole) {
        Scan(Addr, W);
        Pending.fetch_sub(1);
        continue;
      }
      if (Pending.load() == 0)
        break;
      std::this_thread::yield();
    }
  });

  GcTally Total;
  for (const GcTally &T : Tallies)
    Total.merge(T);
  H.memory().flushShard(Total);
}

//===----------------------------------------------------------------------===
// Incremental marking (docs/gc_pause.md)
//
// With --max-pause-us=N the occupancy trigger starts a marking cycle
// instead of a stop-the-world major GC. The cycle snapshots the roots,
// arms the heap's SATB write barrier and allocate-black allocation, and
// then advances in bounded steps at allocation safepoints, each draining
// the mutation log and scanning gray old objects until N microseconds of
// simulated GC time have elapsed. When the trace runs dry, a normal major
// GC runs as the final remark + compaction; its root trace skips the
// already-marked snapshot, so the remaining pause is dominated by the
// compaction copy. Soundness is the standard SATB weak-snapshot argument:
// every object live at remark is snapshot-reachable (each snapshot edge
// either survives until its source is scanned or was overwritten, which
// logged the target) or was allocated during the cycle (born marked).
//===----------------------------------------------------------------------===

void Collector::incMarkRef(uint64_t Addr) {
  ObjectHeader *Hdr = H.header(Addr);
  if (Hdr->isMarked())
    return;
  Hdr->setMarked(true);
  if (H.isOld(Addr)) {
    IncStack.push_back(Addr);
    return;
  }
  // Young objects move at every minor GC, so their addresses must never
  // wait on the gray stack across steps: close over the young subgraph
  // now, deferring only its old children. Cheap in practice -- cycles
  // start right after a minor GC, when only to-space survivors are young.
  std::vector<uint64_t> YoungStack;
  YoungStack.push_back(Addr);
  while (!YoungStack.empty()) {
    uint64_t A = YoungStack.back();
    YoungStack.pop_back();
    ObjectHeader *AH = H.header(A);
    H.account(A, sizeof(ObjectHeader), /*IsWrite=*/false);
    uint32_t N = AH->numRefSlots();
    for (uint32_t I = 0; I != N; ++I) {
      H.account(H.refSlotAddr(A, I), heap::RefSlotBytes, /*IsWrite=*/false);
      ObjRef Child = H.rawLoadRef(A, I);
      if (!Child)
        continue;
      ObjectHeader *CH = H.header(Child.addr());
      if (CH->isMarked())
        continue;
      CH->setMarked(true);
      if (H.isOld(Child.addr()))
        IncStack.push_back(Child.addr());
      else
        YoungStack.push_back(Child.addr());
    }
    ++Stats.IncObjectsMarked;
  }
}

void Collector::scanForMark(uint64_t Addr) {
  ObjectHeader *Hdr = H.header(Addr);
  H.account(Addr, sizeof(ObjectHeader), /*IsWrite=*/false);
  uint32_t N = Hdr->numRefSlots();
  for (uint32_t I = 0; I != N; ++I) {
    H.account(H.refSlotAddr(Addr, I), heap::RefSlotBytes, /*IsWrite=*/false);
    ObjRef Child = H.rawLoadRef(Addr, I);
    if (Child)
      incMarkRef(Child.addr());
  }
  ++Stats.IncObjectsMarked;
}

void Collector::startIncrementalCycle(const char *Reason) {
  assert(!IncActive && "incremental cycle already active");
  ++Stats.IncCycles;
  GcEvent Event;
  Event.IncStep = true;
  Event.Reason = Reason;
  Event.StartNs = H.memory().totalTimeNs();
  double Before = H.memory().gcTimeNs();
  H.setInGc(true);
  {
    memsim::ActorScope Scope(H.memory(), memsim::Actor::Gc);
    IncActive = true;
    AllocsSinceStep = 0;
    H.setSatbActive(true);
    H.setAllocBlack(true);
    // Root snapshot. Runs right after a minor GC, so each root's young
    // closure only walks to-space survivors; old roots just turn gray.
    H.forEachRoot([this](ObjRef &R) { incMarkRef(R.addr()); });
  }
  H.setInGc(false);
  Event.DurationNs = H.memory().gcTimeNs() - Before;
  Events.push_back(Event);
  emitTelemetry(Event);
}

void Collector::incrementalMarkStep(const char *Reason) {
  if (!IncActive)
    return;
  GcEvent Event;
  Event.IncStep = true;
  Event.Reason = Reason;
  Event.StartNs = H.memory().totalTimeNs();
  double Before = H.memory().gcTimeNs();
  double BudgetNs = H.config().Tuning.MaxPauseUs * 1000.0;
  H.setInGc(true);
  {
    memsim::ActorScope Scope(H.memory(), memsim::Actor::Gc);
    ++Stats.IncMarkSteps;
    // Mutation log first: its entries may reference young objects whose
    // addresses only stay valid until the next minor GC.
    std::vector<uint64_t> Log;
    Log.swap(H.satbBuffer());
    Stats.IncSatbDrained += Log.size();
    for (uint64_t A : Log)
      incMarkRef(A);
    while (!IncStack.empty() &&
           H.memory().gcTimeNs() - Before < BudgetNs) {
      uint64_t Addr = IncStack.back();
      IncStack.pop_back();
      scanForMark(Addr);
    }
  }
  H.setInGc(false);
  Event.DurationNs = H.memory().gcTimeNs() - Before;
  Events.push_back(Event);
  emitTelemetry(Event);
  // Trace ran dry: the cycle ends with a normal major GC, whose root
  // trace skips the marked snapshot -- the remark is root iteration plus
  // whatever the snapshot never saw, then the compaction.
  if (IncStack.empty() && H.satbBuffer().empty())
    collectMajor("incremental mark complete");
}

void Collector::satbDrainStep() {
  if (H.satbBuffer().empty())
    return;
  GcEvent Event;
  Event.IncStep = true;
  Event.Reason = "satb drain before minor gc";
  Event.StartNs = H.memory().totalTimeNs();
  double Before = H.memory().gcTimeNs();
  H.setInGc(true);
  {
    memsim::ActorScope Scope(H.memory(), memsim::Actor::Gc);
    std::vector<uint64_t> Log;
    Log.swap(H.satbBuffer());
    Stats.IncSatbDrained += Log.size();
    for (uint64_t A : Log)
      incMarkRef(A);
  }
  H.setInGc(false);
  Event.DurationNs = H.memory().gcTimeNs() - Before;
  Events.push_back(Event);
  emitTelemetry(Event);
}

void Collector::finishIncrementalMark() {
  // Remark (stop-the-world, inside collectMajor's mark phase): finish the
  // snapshot trace serially and disarm the cycle. The barriers come off
  // first -- no mutator runs here, and the compaction below must not see
  // allocate-black or SATB state.
  H.setSatbActive(false);
  H.setAllocBlack(false);
  IncActive = false;
  std::vector<uint64_t> Log;
  Log.swap(H.satbBuffer());
  Stats.IncSatbDrained += Log.size();
  for (uint64_t A : Log)
    incMarkRef(A);
  while (!IncStack.empty()) {
    uint64_t Addr = IncStack.back();
    IncStack.pop_back();
    scanForMark(Addr);
  }
}

void Collector::allocationSafepoint() {
  if (!IncActive)
    return;
  if (++AllocsSinceStep < H.config().Tuning.IncStepAllocs)
    return;
  AllocsSinceStep = 0;
  incrementalMarkStep("allocation pacing");
}

bool Collector::incrementalStep() {
  if (!IncActive)
    return false;
  incrementalMarkStep("explicit step");
  return true;
}

void Collector::propagateMigrationTag(uint64_t ArrayAddr, MemTag Target) {
  std::vector<uint64_t> Stack;
  Stack.push_back(ArrayAddr);
  // The migrating array itself is retagged unconditionally; reachable
  // objects only ever gain a tag at least as strong (DRAM > NVM).
  H.header(ArrayAddr)->setMemTag(Target);
  while (!Stack.empty()) {
    uint64_t Addr = Stack.back();
    Stack.pop_back();
    ObjectHeader *Hdr = H.header(Addr);
    uint32_t N = Hdr->numRefSlots();
    for (uint32_t I = 0; I != N; ++I) {
      ObjRef Child = H.rawLoadRef(Addr, I);
      if (!Child)
        continue;
      ObjectHeader *CHdr = H.header(Child.addr());
      MemTag Merged = mergeTags(CHdr->memTag(), Target);
      if (Merged == CHdr->memTag())
        continue; // already at least as strong; subtree settled
      CHdr->setMemTag(Merged);
      Stack.push_back(Child.addr());
    }
  }
}

void Collector::planMigrations() {
  if (!usesDynamicMigration(Policy) || !Monitor || !H.hasSplitOldGen())
    return;
  const heap::GcTuning &T = H.config().Tuning;
  // Collect decisions first; propagation mutates tags which must not feed
  // back into the scan.
  struct Decision {
    uint64_t Addr;
    uint32_t RddId;
    MemTag Target;
  };
  std::vector<Decision> Decisions;
  for (Space *S : H.oldSpaces()) {
    H.walkObjects(S->base(), S->top(), [&](uint64_t Addr) {
      ObjectHeader *Hdr = H.header(Addr);
      // RDD arrays carry the owning RDD id: reference arrays for
      // deserialized caches, primitive arrays for serialized ones.
      if (!Hdr->isMarked() || Hdr->RddId == 0 ||
          Hdr->kind() == ObjectKind::Plain)
        return;
      uint32_t Calls = Monitor->callsInWindow(Hdr->RddId);
      bool InDram = H.oldDram().contains(Addr);
      if (!InDram && Calls >= T.MigrationHotCalls)
        Decisions.push_back({Addr, Hdr->RddId, MemTag::Dram});
      else if (InDram && Calls == 0)
        Decisions.push_back({Addr, Hdr->RddId, MemTag::Nvm});
    });
  }
  // Apply NVM demotions first so DRAM promotions win any shared-object
  // conflict (DRAM > NVM, §4.2.2).
  std::stable_sort(Decisions.begin(), Decisions.end(),
                   [](const Decision &A, const Decision &B) {
                     return A.Target == MemTag::Nvm && B.Target == MemTag::Dram;
                   });
  for (const Decision &D : Decisions) {
    propagateMigrationTag(D.Addr, D.Target);
    MigratedRddIds.insert(D.RddId);
    if (D.Target == MemTag::Dram)
      ++Stats.MigratedRddArraysToDram;
    else
      ++Stats.MigratedRddArraysToNvm;
  }
  Stats.RddsMigrated = MigratedRddIds.size();
}

MemTag Collector::majorTargetTag(uint64_t Addr, bool WasYoung) {
  ObjectHeader *Hdr = H.header(Addr);
  const heap::GcTuning &T = H.config().Tuning;
  if (!H.hasSplitOldGen())
    return MemTag::None;
  if (T.KwWriteMonitoring)
    return Hdr->WriteCount >= T.KwHotWrites ? MemTag::Dram : MemTag::Nvm;
  MemTag Tag = Hdr->memTag();
  if (Tag != MemTag::None)
    return Tag;
  if (WasYoung)
    return MemTag::Nvm; // untagged objects tenure into NVM
  // Untagged old objects stay on their side of the boundary: compaction
  // must not move data across DRAM/NVM (§4.2.2).
  return H.oldDram().contains(Addr) ? MemTag::Dram : MemTag::Nvm;
}

namespace {

/// Bump cursor over one target space during compaction planning.
struct SpacePlan {
  Space *S = nullptr;
  uint64_t Cursor = 0;
  /// (OldAddr, NewAddr, Size) for live objects placed here.
  struct Move {
    uint64_t OldAddr;
    uint64_t NewAddr;
    uint32_t Size;
  };
  std::vector<Move> Moves;
  /// (Addr, Bytes) filler runs recreated for card padding.
  std::vector<std::pair<uint64_t, uint64_t>> Fillers;

  bool fits(uint64_t Bytes) const {
    return S && Cursor + Bytes <= S->end();
  }
};

} // namespace

void Collector::compactHeap() {
  const heap::GcTuning &T = H.config().Tuning;
  SpacePlan DramPlan, NvmPlan;
  if (H.hasSplitOldGen()) {
    DramPlan.S = &H.oldDram();
    DramPlan.Cursor = H.oldDram().base();
  }
  NvmPlan.S = &H.oldNvm();
  NvmPlan.Cursor = H.oldNvm().base();

  auto PlanFor = [&](MemTag Tag) -> std::pair<SpacePlan *, SpacePlan *> {
    if (!H.hasSplitOldGen())
      return {&NvmPlan, nullptr};
    if (Tag == MemTag::Dram)
      return {&DramPlan, &NvmPlan};
    return {&NvmPlan, DramPlan.S && DramPlan.S->sizeBytes() ? &DramPlan
                                                            : nullptr};
  };

  // Raised while the compaction is still a pure plan (no bytes moved);
  // the handler unwinds the plan's header scribbles and reports OOM.
  struct CompactionOverflow {};
  auto Place = [&](uint64_t Addr, bool WasYoung) {
    ObjectHeader *Hdr = H.header(Addr);
    if (!Hdr->isMarked())
      return;
    uint32_t Size = Hdr->SizeBytes;
    MemTag Tag = majorTargetTag(Addr, WasYoung);
    auto [Primary, Fallback] = PlanFor(Tag);
    SpacePlan *Target = Primary->fits(Size)
                            ? Primary
                            : (Fallback && Fallback->fits(Size) ? Fallback
                                                                : nullptr);
    if (!Target)
      throw CompactionOverflow();
    uint64_t NewAddr = Target->Cursor;
    Target->Cursor += Size;
    Target->Moves.push_back({Addr, NewAddr, Size});
    Hdr->Forward = NewAddr;
    // Re-establish card padding behind large reference arrays (§4.2.3).
    bool IsRddArray = Hdr->kind() == ObjectKind::RefArray &&
                      Size >= CardTable::CardBytes;
    if (IsRddArray && T.CardPadding) {
      uint64_t Misalign = Target->Cursor % CardTable::CardBytes;
      if (Misalign != 0) {
        uint64_t Gap = CardTable::CardBytes - Misalign;
        if (Gap < sizeof(ObjectHeader))
          Gap += CardTable::CardBytes;
        if (Target->Cursor + Gap <= Target->S->end()) {
          Target->Fillers.push_back({Target->Cursor, Gap});
          Target->Cursor += Gap;
        }
      }
    }
  };

  // Place old-generation objects first (their spaces are the compaction
  // targets), then promote every live young object.
  try {
    for (Space *S : H.oldSpaces())
      H.walkObjects(S->base(), S->top(),
                    [&](uint64_t A) { Place(A, /*WasYoung=*/false); });
    for (Space *S : {&H.eden(), &H.fromSpace(), &H.toSpace()})
      H.walkObjects(S->base(), S->top(),
                    [&](uint64_t A) { Place(A, /*WasYoung=*/true); });
  } catch (const CompactionOverflow &) {
    // The live set does not fit even perfectly compacted. Nothing has
    // been copied yet; scrub the mark bits and forward pointers the plan
    // left behind so the heap is exactly as it was, then let the
    // allocation path surface a typed error.
    auto Scrub = [&](uint64_t A) {
      ObjectHeader *Hdr = H.header(A);
      Hdr->setMarked(false);
      Hdr->Forward = 0;
    };
    for (Space *S : H.oldSpaces())
      H.walkObjects(S->base(), S->top(), Scrub);
    for (Space *S : {&H.eden(), &H.fromSpace(), &H.toSpace()})
      H.walkObjects(S->base(), S->top(), Scrub);
    throw OutOfMemoryError(
        "heap exhausted: live data exceeds the old generation even after "
        "full compaction");
  }

  // Update every reference (roots + live objects) to the forward address.
  H.forEachRoot([this](ObjRef &R) {
    ObjectHeader *Hdr = H.header(R.addr());
    assert(Hdr->isMarked() && "root points to unmarked object");
    R = ObjRef(Hdr->Forward);
  });
  auto UpdateRefs = [&](uint64_t Addr) {
    ObjectHeader *Hdr = H.header(Addr);
    if (!Hdr->isMarked())
      return;
    uint32_t N = Hdr->numRefSlots();
    for (uint32_t I = 0; I != N; ++I) {
      ObjRef Child = H.rawLoadRef(Addr, I);
      if (!Child)
        continue;
      ObjectHeader *CHdr = H.header(Child.addr());
      assert(CHdr->isMarked() && "live object references dead object");
      H.rawStoreRef(Addr, I, ObjRef(CHdr->Forward));
    }
  };
  for (Space *S : H.oldSpaces())
    H.walkObjects(S->base(), S->top(), UpdateRefs);
  for (Space *S : {&H.eden(), &H.fromSpace(), &H.toSpace()})
    H.walkObjects(S->base(), S->top(), UpdateRefs);

  // Copy through staging images. Migration makes sources and targets
  // overlap across spaces (a DRAM-resident object may move to NVM while a
  // hot NVM object moves the other way), so *every* staging image must be
  // built from the originals before any space is overwritten.
  CardTable &Cards = H.cardTable();
  std::vector<uint8_t> StagingImages[2];
  SpacePlan *Plans[2] = {&DramPlan, &NvmPlan};
  for (unsigned PI = 0; PI != 2; ++PI) {
    SpacePlan *Plan = Plans[PI];
    if (!Plan->S || Plan->S->sizeBytes() == 0)
      continue;
    Space *S = Plan->S;
    std::vector<uint8_t> &Staging = StagingImages[PI];
    Staging.assign(static_cast<size_t>(Plan->Cursor - S->base()), 0);
    for (const SpacePlan::Move &M : Plan->Moves) {
      H.account(M.OldAddr, M.Size, /*IsWrite=*/false);
      H.account(M.NewAddr, M.Size, /*IsWrite=*/true);
      std::memcpy(&Staging[M.NewAddr - S->base()], H.rawBytes(M.OldAddr),
                  M.Size);
      ObjectHeader *NewHdr =
          reinterpret_cast<ObjectHeader *>(&Staging[M.NewAddr - S->base()]);
      NewHdr->Forward = 0;
      NewHdr->setMarked(false);
      NewHdr->Age = T.TenureAge; // everything here is tenured now
      NewHdr->WriteCount = 0;    // KW monitoring window resets
    }
    for (auto [Addr, Bytes] : Plan->Fillers) {
      ObjectHeader *F =
          reinterpret_cast<ObjectHeader *>(&Staging[Addr - S->base()]);
      F->SizeBytes = static_cast<uint32_t>(Bytes);
      F->Kind = static_cast<uint8_t>(ObjectKind::PrimArray);
      F->Aux = 1;
      F->Length = static_cast<uint32_t>(Bytes - sizeof(ObjectHeader));
    }
  }
  for (unsigned PI = 0; PI != 2; ++PI) {
    SpacePlan *Plan = Plans[PI];
    if (!Plan->S)
      continue;
    Space *S = Plan->S;
    Cards.clearRange(S->base(), S->end());
    if (S->sizeBytes() == 0)
      continue;
    std::vector<uint8_t> &Staging = StagingImages[PI];
    if (!Staging.empty())
      std::memcpy(H.rawBytes(S->base()), Staging.data(), Staging.size());
    S->reset();
    S->setTop(Plan->Cursor);
    for (const SpacePlan::Move &M : Plan->Moves)
      Cards.noteObjectStart(M.NewAddr);
    for (auto [Addr, Bytes] : Plan->Fillers) {
      (void)Bytes;
      Cards.noteObjectStart(Addr);
    }
  }

  // The young generation is empty after a full GC.
  uint64_t YoungLo =
      std::min({H.eden().base(), H.fromSpace().base(), H.toSpace().base()});
  uint64_t YoungHi =
      std::max({H.eden().end(), H.fromSpace().end(), H.toSpace().end()});
  Cards.clearRange(YoungLo, YoungHi);
  H.eden().reset();
  H.fromSpace().reset();
  H.toSpace().reset();
}

void Collector::collectMajor(const char *Reason) {
  assert(!H.inGc() && "re-entrant collection");
  // Drop any between-GC remaps before compaction: the major GC re-places
  // every object by its static tag, so costs are charged against the
  // canonical mapping. The restore itself is free (the compaction copy is
  // what's paid for); it also clears the tracker's heat window.
  if (Migration)
    Migration->resetToCanonical();
  H.setInGc(true);
  GcEvent Event;
  Event.Major = true;
  Event.Reason = Reason;
  Event.StartNs = H.memory().totalTimeNs();
  double GcNsBefore = H.memory().gcTimeNs();
  uint64_t MigratedBefore =
      Stats.MigratedRddArraysToDram + Stats.MigratedRddArraysToNvm;
  {
    memsim::ActorScope Scope(H.memory(), memsim::Actor::Gc);
    ++Stats.MajorGcs;
    double PhaseStart = H.memory().gcTimeNs();
    if (IncActive)
      finishIncrementalMark();
    if (Pool)
      markParallelFromRoots();
    else
      markFromRoots();
    Event.MarkNs = H.memory().gcTimeNs() - PhaseStart;
    planMigrations();
    PhaseStart = H.memory().gcTimeNs();
    try {
      compactHeap();
    } catch (...) {
      // Compaction overflow: the plan was unwound with the heap intact;
      // drop the in-GC flag so the caller can still run cleanup code.
      H.setInGc(false);
      throw;
    }
    Event.CompactNs = H.memory().gcTimeNs() - PhaseStart;
    if (Monitor)
      Monitor->resetWindow(); // §4.2.2: frequencies reset per major GC
    MinorsAtLastMajor = Stats.MinorGcs;
  }
  H.setInGc(false);
  Event.DurationNs = H.memory().gcTimeNs() - GcNsBefore;
  Event.RddArraysMigrated = Stats.MigratedRddArraysToDram +
                            Stats.MigratedRddArraysToNvm - MigratedBefore;
  Events.push_back(Event);
  emitTelemetry(Event);
  if (H.config().Tuning.VerifyHeap) {
    VerifyResult V = verifyHeap(H);
    if (!V.Ok) {
      std::fprintf(stderr, "verify after major gc #%llu: %s\n",
                   static_cast<unsigned long long>(Stats.MajorGcs),
                   V.FirstProblem.c_str());
      std::abort();
    }
  }
}
