//===- gc/Collector.cpp - Panthera generational collector ----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"

#include "gc/HeapVerifier.h"
#include "support/Errors.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace panthera;
using namespace panthera::gc;
using heap::CardTable;
using heap::ObjectHeader;
using heap::ObjectKind;
using heap::ObjRef;
using heap::Space;

[[noreturn]] static void fatalGc(const char *What) {
  std::fprintf(stderr, "panthera: gc failure: %s\n", What);
  std::abort();
}

Collector::Collector(heap::Heap &H, PolicyKind Policy, AccessMonitor *Monitor)
    : H(H), Policy(Policy), Monitor(Monitor) {
  H.setGcHost(this);
}

Collector::~Collector() { H.setGcHost(nullptr); }

//===----------------------------------------------------------------------===
// Minor GC
//===----------------------------------------------------------------------===

bool Collector::inCollectedYoung(uint64_t Addr) const {
  const heap::Heap &CH = H;
  return const_cast<heap::Heap &>(CH).eden().contains(Addr) ||
         const_cast<heap::Heap &>(CH).fromSpace().contains(Addr);
}

ObjRef Collector::evacuate(ObjRef Ref, MemTag IncomingTag) {
  uint64_t Addr = Ref.addr();
  ObjectHeader *Hdr = H.header(Addr);
  if (Hdr->isForwarded()) {
    // A later reference may still carry a stronger (DRAM) tag; keep it on
    // the copy so the next major GC can correct the placement.
    ObjectHeader *NewHdr = H.header(Hdr->Forward);
    NewHdr->setMemTag(mergeTags(NewHdr->memTag(), IncomingTag));
    return ObjRef(Hdr->Forward);
  }

  MemTag Tag = mergeTags(Hdr->memTag(), IncomingTag);
  uint32_t Size = Hdr->SizeBytes;
  // Any card-spanning reference array can create the §4.2.3 shared-card
  // pathology, so padding applies to all of them on promotion ("card
  // sharing among arrays is completely eliminated").
  bool IsRddArray = Hdr->kind() == ObjectKind::RefArray &&
                    Size >= CardTable::CardBytes;
  const heap::GcTuning &T = H.config().Tuning;

  uint64_t NewAddr = 0;
  bool Promoted = false;
  bool TagPromote =
      Tag != MemTag::None && T.EagerPromotion && H.hasSplitOldGen();
  bool AgePromote = static_cast<uint8_t>(Hdr->Age + 1) >= T.TenureAge;
  if (TagPromote || AgePromote) {
    MemTag PromoTag = Tag;
    if (T.KwWriteMonitoring)
      PromoTag =
          Hdr->WriteCount >= T.KwHotWrites ? MemTag::Dram : MemTag::Nvm;
    NewAddr = H.allocateInOld(Size, PromoTag, IsRddArray);
    Promoted = NewAddr != 0;
    if (TagPromote && Promoted)
      ++Stats.EagerPromotions;
  }
  if (!NewAddr)
    NewAddr = H.toSpace().allocate(Size);
  if (!NewAddr) {
    // Survivor overflow: tenure regardless of age.
    NewAddr = H.allocateInOld(Size, Tag, IsRddArray);
    Promoted = NewAddr != 0;
  }
  if (!NewAddr)
    fatalGc("no space left for a surviving object during scavenge");

  H.account(Addr, Size, /*IsWrite=*/false);
  H.account(NewAddr, Size, /*IsWrite=*/true);
  std::memcpy(H.rawBytes(NewAddr), H.rawBytes(Addr), Size);
  ObjectHeader *NewHdr = H.header(NewAddr);
  NewHdr->setMemTag(Tag);
  NewHdr->Forward = 0;
  NewHdr->Age = Promoted ? Hdr->Age : static_cast<uint8_t>(Hdr->Age + 1);
  Hdr->Forward = NewAddr;
  if (Promoted)
    Stats.BytesPromoted += Size;
  else
    Stats.BytesCopiedToSurvivor += Size;
  Worklist.push_back(NewAddr);
  return ObjRef(NewAddr);
}

void Collector::scanCopied(uint64_t Addr) {
  ObjectHeader *Hdr = H.header(Addr);
  MemTag Tag = Hdr->memTag();
  bool ParentOld = H.isOld(Addr);
  uint32_t N = Hdr->numRefSlots();
  for (uint32_t I = 0; I != N; ++I) {
    uint64_t SlotAddr = H.refSlotAddr(Addr, I);
    H.account(SlotAddr, heap::RefSlotBytes, /*IsWrite=*/false);
    ObjRef Child = H.rawLoadRef(Addr, I);
    if (!Child)
      continue;
    if (inCollectedYoung(Child.addr())) {
      ObjRef Moved = evacuate(Child, Tag);
      H.rawStoreRef(Addr, I, Moved);
      H.account(SlotAddr, heap::RefSlotBytes, /*IsWrite=*/true);
      Child = Moved;
    }
    // A promoted object that still points into the young generation must
    // be visible to the next minor GC's card scan.
    if (ParentOld && H.isYoung(Child.addr()))
      H.cardTable().dirtyCardFor(SlotAddr);
  }
}

void Collector::drainWorklist() {
  while (!Worklist.empty()) {
    uint64_t Addr = Worklist.back();
    Worklist.pop_back();
    scanCopied(Addr);
  }
}

/// Scans ref slots [SlotBegin, SlotEnd) of the object at \p Addr,
/// evacuating young referents with the object's tag. Returns true when a
/// young referent remains after scanning (card must stay dirty).
static bool scanSlotRange(heap::Heap &H, Collector &C, uint64_t Addr,
                          uint32_t SlotBegin, uint32_t SlotEnd,
                          const std::function<ObjRef(ObjRef, MemTag)> &Evac) {
  (void)C;
  ObjectHeader *Hdr = H.header(Addr);
  MemTag Tag = Hdr->memTag();
  bool YoungRemains = false;
  for (uint32_t I = SlotBegin; I != SlotEnd; ++I) {
    uint64_t SlotAddr = H.refSlotAddr(Addr, I);
    H.account(SlotAddr, heap::RefSlotBytes, /*IsWrite=*/false);
    ObjRef Child = H.rawLoadRef(Addr, I);
    if (!Child)
      continue;
    ObjRef Moved = Evac(Child, Tag);
    if (Moved != Child) {
      H.rawStoreRef(Addr, I, Moved);
      H.account(SlotAddr, heap::RefSlotBytes, /*IsWrite=*/true);
    }
    if (H.isYoung(Moved.addr()))
      YoungRemains = true;
  }
  return YoungRemains;
}

void Collector::scanCard(Space &S, size_t CardIdx) {
  ++Stats.CardsScanned;
  CardTable &Cards = H.cardTable();
  uint64_t CardLo = Cards.cardStart(CardIdx);
  uint64_t CardHi = CardLo + CardTable::CardBytes;

  uint64_t First = H.firstObjectIntersectingCard(S, CardIdx);
  if (!First) {
    Cards.clean(CardIdx);
    return;
  }

  // Collect the objects intersecting this card.
  std::vector<uint64_t> Objs;
  unsigned LargeArrays = 0;
  for (uint64_t A = First; A < S.top() && A < CardHi;
       A += H.header(A)->SizeBytes) {
    Objs.push_back(A);
    ObjectHeader *Hdr = H.header(A);
    if (Hdr->kind() == ObjectKind::RefArray &&
        Hdr->SizeBytes >= CardTable::CardBytes)
      ++LargeArrays;
  }

  auto Evac = [this](ObjRef Child, MemTag Tag) {
    if (inCollectedYoung(Child.addr()))
      return evacuate(Child, Tag);
    return Child;
  };

  if (LargeArrays >= 2) {
    // §4.2.3 pathology: two large arrays share the card; neither GC thread
    // can prove the card clean, so every element of each array is rescanned
    // on every minor GC and the card stays dirty until a major GC.
    ++Stats.SharedArrayCardScans;
    for (uint64_t A : Objs)
      scanSlotRange(H, *this, A, 0, H.header(A)->numRefSlots(), Evac);
    return;
  }

  bool YoungRemains = false;
  for (uint64_t A : Objs) {
    ObjectHeader *Hdr = H.header(A);
    uint32_t N = Hdr->numRefSlots();
    uint64_t SlotsBase = A + sizeof(ObjectHeader);
    // Clamp the scan to the slots whose addresses fall inside the card.
    uint32_t Begin = 0;
    if (CardLo > SlotsBase)
      Begin = static_cast<uint32_t>(
          (CardLo - SlotsBase + heap::RefSlotBytes - 1) /
          heap::RefSlotBytes);
    uint32_t End = N;
    if (SlotsBase < CardHi) {
      uint64_t Fit = (CardHi - SlotsBase + heap::RefSlotBytes - 1) /
                     heap::RefSlotBytes;
      End = static_cast<uint32_t>(std::min<uint64_t>(N, Fit));
    } else {
      End = 0;
    }
    if (Begin < End)
      YoungRemains |= scanSlotRange(H, *this, A, Begin, End, Evac);
  }
  if (!YoungRemains) {
    Cards.clean(CardIdx);
    ++Stats.CardsCleaned;
  }
}

void Collector::scanOldToYoungCards(GcEvent &Event) {
  // The paper splits the old-to-young task into a DRAM-to-young and an
  // NVM-to-young task; iterating the (up to two) old spaces separately is
  // the sequential equivalent, and each task's cost is recorded.
  CardTable &Cards = H.cardTable();
  for (Space *S : H.oldSpaces()) {
    if (S->usedBytes() == 0)
      continue;
    double Before = H.memory().gcTimeNs();
    size_t FirstCard = Cards.cardIndex(S->base());
    size_t LastCard = Cards.cardIndex(S->top() - 1);
    for (size_t C = FirstCard; C <= LastCard; ++C)
      if (Cards.isDirty(C))
        scanCard(*S, C);
    double Spent = H.memory().gcTimeNs() - Before;
    if (H.hasSplitOldGen() && S == &H.oldDram())
      Event.DramToYoungTaskNs += Spent;
    else
      Event.NvmToYoungTaskNs += Spent;
  }
}

bool Collector::scavengeHeadroomOk() const {
  heap::Heap &MH = const_cast<heap::Heap &>(static_cast<const heap::Heap &>(H));
  // Worst case: every young byte survives and must land in to-space or be
  // tenured. An actual scavenge that exceeds this would die mid-evacuation
  // with the heap half-forwarded, so it is never allowed to start.
  uint64_t Worst = MH.eden().usedBytes() + MH.fromSpace().usedBytes();
  uint64_t Room = MH.toSpace().sizeBytes() - MH.toSpace().usedBytes();
  for (Space *S : MH.oldSpaces())
    Room += S->sizeBytes() - S->usedBytes();
  return Worst <= Room;
}

void Collector::collectMinor(const char *Reason) {
  assert(!H.inGc() && "re-entrant collection");
  if (!scavengeHeadroomOk()) {
    // A sliding full compaction needs no evacuation headroom and leaves
    // the young generation empty, so there is nothing left to scavenge.
    // If even the live set does not fit, collectMajor throws a typed
    // OutOfMemoryError before moving a single object.
    collectMajor("minor gc survivor headroom exhausted");
    return;
  }
  H.setInGc(true);
  GcEvent Event;
  Event.Major = false;
  Event.Reason = Reason;
  Event.StartNs = H.memory().totalTimeNs();
  double GcNsBefore = H.memory().gcTimeNs();
  uint64_t PromotedBefore = Stats.BytesPromoted;
  uint64_t CopiedBefore = Stats.BytesCopiedToSurvivor;
  uint64_t CardsBefore = Stats.CardsScanned;
  {
    memsim::ActorScope Scope(H.memory(), memsim::Actor::Gc);
    ++Stats.MinorGcs;
    Worklist.clear();

    // Root task: stack handles and persisted-RDD roots. Top RDD objects
    // with MEMORY_BITS set are promoted here (§4.2.2 root-task change).
    double PhaseStart = H.memory().gcTimeNs();
    H.forEachRoot([this](ObjRef &R) {
      if (inCollectedYoung(R.addr()))
        R = evacuate(R, MemTag::None);
    });
    Event.RootTaskNs = H.memory().gcTimeNs() - PhaseStart;

    scanOldToYoungCards(Event);

    PhaseStart = H.memory().gcTimeNs();
    drainWorklist();
    Event.DrainNs = H.memory().gcTimeNs() - PhaseStart;

    // Young spaces: eden and from are now garbage; survivors sit in 'to'.
    uint64_t YoungLo = std::min(
        {H.eden().base(), H.fromSpace().base(), H.toSpace().base()});
    uint64_t YoungHi =
        std::max({H.eden().end(), H.fromSpace().end(), H.toSpace().end()});
    H.eden().reset();
    H.fromSpace().reset();
    H.swapSurvivors();
    // Young cards are never scanned; drop any stale dirty bits, but keep
    // the old-generation cards (including uncleanable shared ones).
    for (size_t C = H.cardTable().cardIndex(YoungLo),
                E = H.cardTable().cardIndex(YoungHi - 1);
         C <= E; ++C)
      H.cardTable().clean(C);
  }
  H.setInGc(false);
  Event.DurationNs = H.memory().gcTimeNs() - GcNsBefore;
  Event.BytesPromoted = Stats.BytesPromoted - PromotedBefore;
  Event.BytesCopiedToSurvivor =
      Stats.BytesCopiedToSurvivor - CopiedBefore;
  Event.CardsScanned = Stats.CardsScanned - CardsBefore;
  Events.push_back(Event);
  if (H.config().Tuning.VerifyHeap) {
    VerifyResult V = verifyHeap(H);
    if (!V.Ok) {
      std::fprintf(stderr, "verify after minor gc #%llu: %s\n",
                   static_cast<unsigned long long>(Stats.MinorGcs),
                   V.FirstProblem.c_str());
      std::abort();
    }
  }
  maybeTriggerMajor();
}

void Collector::maybeTriggerMajor() {
  double Threshold = H.config().Tuning.MajorGcOccupancy;
  uint64_t Used = 0;
  uint64_t Size = 0;
  for (Space *S : H.oldSpaces()) {
    Used += S->usedBytes();
    Size += S->sizeBytes();
  }
  if (Size == 0)
    return;
  // Progress guard: require a couple of minor collections between majors
  // so a heap legitimately full of hot data does not thrash in
  // back-to-back full collections.
  if (Stats.MinorGcs < MinorsAtLastMajor + 3)
    return;
  bool TotalFull =
      static_cast<double>(Used) >= Threshold * static_cast<double>(Size);
  // The old generation's DRAM component is the scarce resource: when it
  // fills up, a full GC gives dynamic migration the chance to demote cold
  // RDDs and reclaim DRAM (§4.2.2).
  bool DramFull = false;
  if (H.hasSplitOldGen() && H.oldDram().sizeBytes() > 0) {
    uint64_t DUsed = H.oldDram().usedBytes();
    uint64_t DSize = H.oldDram().sizeBytes();
    DramFull =
        static_cast<double>(DUsed) >= Threshold * static_cast<double>(DSize);
  }
  if (TotalFull || DramFull)
    collectMajor(DramFull ? "old DRAM component occupancy"
                          : "old generation occupancy");
}

//===----------------------------------------------------------------------===
// Major GC
//===----------------------------------------------------------------------===

void Collector::markObject(uint64_t Addr, std::vector<uint64_t> &Stack) {
  ObjectHeader *Hdr = H.header(Addr);
  if (Hdr->isMarked())
    return;
  Hdr->setMarked(true);
  Stack.push_back(Addr);
}

void Collector::markFromRoots() {
  std::vector<uint64_t> Stack;
  H.forEachRoot([this, &Stack](ObjRef &R) { markObject(R.addr(), Stack); });
  while (!Stack.empty()) {
    uint64_t Addr = Stack.back();
    Stack.pop_back();
    ObjectHeader *Hdr = H.header(Addr);
    H.account(Addr, sizeof(ObjectHeader), /*IsWrite=*/false);
    uint32_t N = Hdr->numRefSlots();
    for (uint32_t I = 0; I != N; ++I) {
      H.account(H.refSlotAddr(Addr, I), heap::RefSlotBytes,
                /*IsWrite=*/false);
      ObjRef Child = H.rawLoadRef(Addr, I);
      if (Child)
        markObject(Child.addr(), Stack);
    }
  }
}

void Collector::propagateMigrationTag(uint64_t ArrayAddr, MemTag Target) {
  std::vector<uint64_t> Stack;
  Stack.push_back(ArrayAddr);
  // The migrating array itself is retagged unconditionally; reachable
  // objects only ever gain a tag at least as strong (DRAM > NVM).
  H.header(ArrayAddr)->setMemTag(Target);
  while (!Stack.empty()) {
    uint64_t Addr = Stack.back();
    Stack.pop_back();
    ObjectHeader *Hdr = H.header(Addr);
    uint32_t N = Hdr->numRefSlots();
    for (uint32_t I = 0; I != N; ++I) {
      ObjRef Child = H.rawLoadRef(Addr, I);
      if (!Child)
        continue;
      ObjectHeader *CHdr = H.header(Child.addr());
      MemTag Merged = mergeTags(CHdr->memTag(), Target);
      if (Merged == CHdr->memTag())
        continue; // already at least as strong; subtree settled
      CHdr->setMemTag(Merged);
      Stack.push_back(Child.addr());
    }
  }
}

void Collector::planMigrations() {
  if (!usesDynamicMigration(Policy) || !Monitor || !H.hasSplitOldGen())
    return;
  const heap::GcTuning &T = H.config().Tuning;
  // Collect decisions first; propagation mutates tags which must not feed
  // back into the scan.
  struct Decision {
    uint64_t Addr;
    uint32_t RddId;
    MemTag Target;
  };
  std::vector<Decision> Decisions;
  for (Space *S : H.oldSpaces()) {
    H.walkObjects(S->base(), S->top(), [&](uint64_t Addr) {
      ObjectHeader *Hdr = H.header(Addr);
      // RDD arrays carry the owning RDD id: reference arrays for
      // deserialized caches, primitive arrays for serialized ones.
      if (!Hdr->isMarked() || Hdr->RddId == 0 ||
          Hdr->kind() == ObjectKind::Plain)
        return;
      uint32_t Calls = Monitor->callsInWindow(Hdr->RddId);
      bool InDram = H.oldDram().contains(Addr);
      if (!InDram && Calls >= T.MigrationHotCalls)
        Decisions.push_back({Addr, Hdr->RddId, MemTag::Dram});
      else if (InDram && Calls == 0)
        Decisions.push_back({Addr, Hdr->RddId, MemTag::Nvm});
    });
  }
  // Apply NVM demotions first so DRAM promotions win any shared-object
  // conflict (DRAM > NVM, §4.2.2).
  std::stable_sort(Decisions.begin(), Decisions.end(),
                   [](const Decision &A, const Decision &B) {
                     return A.Target == MemTag::Nvm && B.Target == MemTag::Dram;
                   });
  for (const Decision &D : Decisions) {
    propagateMigrationTag(D.Addr, D.Target);
    MigratedRddIds.insert(D.RddId);
    if (D.Target == MemTag::Dram)
      ++Stats.MigratedRddArraysToDram;
    else
      ++Stats.MigratedRddArraysToNvm;
  }
  Stats.RddsMigrated = MigratedRddIds.size();
}

MemTag Collector::majorTargetTag(uint64_t Addr, bool WasYoung) {
  ObjectHeader *Hdr = H.header(Addr);
  const heap::GcTuning &T = H.config().Tuning;
  if (!H.hasSplitOldGen())
    return MemTag::None;
  if (T.KwWriteMonitoring)
    return Hdr->WriteCount >= T.KwHotWrites ? MemTag::Dram : MemTag::Nvm;
  MemTag Tag = Hdr->memTag();
  if (Tag != MemTag::None)
    return Tag;
  if (WasYoung)
    return MemTag::Nvm; // untagged objects tenure into NVM
  // Untagged old objects stay on their side of the boundary: compaction
  // must not move data across DRAM/NVM (§4.2.2).
  return H.oldDram().contains(Addr) ? MemTag::Dram : MemTag::Nvm;
}

namespace {

/// Bump cursor over one target space during compaction planning.
struct SpacePlan {
  Space *S = nullptr;
  uint64_t Cursor = 0;
  /// (OldAddr, NewAddr, Size) for live objects placed here.
  struct Move {
    uint64_t OldAddr;
    uint64_t NewAddr;
    uint32_t Size;
  };
  std::vector<Move> Moves;
  /// (Addr, Bytes) filler runs recreated for card padding.
  std::vector<std::pair<uint64_t, uint64_t>> Fillers;

  bool fits(uint64_t Bytes) const {
    return S && Cursor + Bytes <= S->end();
  }
};

} // namespace

void Collector::compactHeap() {
  const heap::GcTuning &T = H.config().Tuning;
  SpacePlan DramPlan, NvmPlan;
  if (H.hasSplitOldGen()) {
    DramPlan.S = &H.oldDram();
    DramPlan.Cursor = H.oldDram().base();
  }
  NvmPlan.S = &H.oldNvm();
  NvmPlan.Cursor = H.oldNvm().base();

  auto PlanFor = [&](MemTag Tag) -> std::pair<SpacePlan *, SpacePlan *> {
    if (!H.hasSplitOldGen())
      return {&NvmPlan, nullptr};
    if (Tag == MemTag::Dram)
      return {&DramPlan, &NvmPlan};
    return {&NvmPlan, DramPlan.S && DramPlan.S->sizeBytes() ? &DramPlan
                                                            : nullptr};
  };

  // Raised while the compaction is still a pure plan (no bytes moved);
  // the handler unwinds the plan's header scribbles and reports OOM.
  struct CompactionOverflow {};
  auto Place = [&](uint64_t Addr, bool WasYoung) {
    ObjectHeader *Hdr = H.header(Addr);
    if (!Hdr->isMarked())
      return;
    uint32_t Size = Hdr->SizeBytes;
    MemTag Tag = majorTargetTag(Addr, WasYoung);
    auto [Primary, Fallback] = PlanFor(Tag);
    SpacePlan *Target = Primary->fits(Size)
                            ? Primary
                            : (Fallback && Fallback->fits(Size) ? Fallback
                                                                : nullptr);
    if (!Target)
      throw CompactionOverflow();
    uint64_t NewAddr = Target->Cursor;
    Target->Cursor += Size;
    Target->Moves.push_back({Addr, NewAddr, Size});
    Hdr->Forward = NewAddr;
    // Re-establish card padding behind large reference arrays (§4.2.3).
    bool IsRddArray = Hdr->kind() == ObjectKind::RefArray &&
                      Size >= CardTable::CardBytes;
    if (IsRddArray && T.CardPadding) {
      uint64_t Misalign = Target->Cursor % CardTable::CardBytes;
      if (Misalign != 0) {
        uint64_t Gap = CardTable::CardBytes - Misalign;
        if (Gap < sizeof(ObjectHeader))
          Gap += CardTable::CardBytes;
        if (Target->Cursor + Gap <= Target->S->end()) {
          Target->Fillers.push_back({Target->Cursor, Gap});
          Target->Cursor += Gap;
        }
      }
    }
  };

  // Place old-generation objects first (their spaces are the compaction
  // targets), then promote every live young object.
  try {
    for (Space *S : H.oldSpaces())
      H.walkObjects(S->base(), S->top(),
                    [&](uint64_t A) { Place(A, /*WasYoung=*/false); });
    for (Space *S : {&H.eden(), &H.fromSpace(), &H.toSpace()})
      H.walkObjects(S->base(), S->top(),
                    [&](uint64_t A) { Place(A, /*WasYoung=*/true); });
  } catch (const CompactionOverflow &) {
    // The live set does not fit even perfectly compacted. Nothing has
    // been copied yet; scrub the mark bits and forward pointers the plan
    // left behind so the heap is exactly as it was, then let the
    // allocation path surface a typed error.
    auto Scrub = [&](uint64_t A) {
      ObjectHeader *Hdr = H.header(A);
      Hdr->setMarked(false);
      Hdr->Forward = 0;
    };
    for (Space *S : H.oldSpaces())
      H.walkObjects(S->base(), S->top(), Scrub);
    for (Space *S : {&H.eden(), &H.fromSpace(), &H.toSpace()})
      H.walkObjects(S->base(), S->top(), Scrub);
    throw OutOfMemoryError(
        "heap exhausted: live data exceeds the old generation even after "
        "full compaction");
  }

  // Update every reference (roots + live objects) to the forward address.
  H.forEachRoot([this](ObjRef &R) {
    ObjectHeader *Hdr = H.header(R.addr());
    assert(Hdr->isMarked() && "root points to unmarked object");
    R = ObjRef(Hdr->Forward);
  });
  auto UpdateRefs = [&](uint64_t Addr) {
    ObjectHeader *Hdr = H.header(Addr);
    if (!Hdr->isMarked())
      return;
    uint32_t N = Hdr->numRefSlots();
    for (uint32_t I = 0; I != N; ++I) {
      ObjRef Child = H.rawLoadRef(Addr, I);
      if (!Child)
        continue;
      ObjectHeader *CHdr = H.header(Child.addr());
      assert(CHdr->isMarked() && "live object references dead object");
      H.rawStoreRef(Addr, I, ObjRef(CHdr->Forward));
    }
  };
  for (Space *S : H.oldSpaces())
    H.walkObjects(S->base(), S->top(), UpdateRefs);
  for (Space *S : {&H.eden(), &H.fromSpace(), &H.toSpace()})
    H.walkObjects(S->base(), S->top(), UpdateRefs);

  // Copy through staging images. Migration makes sources and targets
  // overlap across spaces (a DRAM-resident object may move to NVM while a
  // hot NVM object moves the other way), so *every* staging image must be
  // built from the originals before any space is overwritten.
  CardTable &Cards = H.cardTable();
  std::vector<uint8_t> StagingImages[2];
  SpacePlan *Plans[2] = {&DramPlan, &NvmPlan};
  for (unsigned PI = 0; PI != 2; ++PI) {
    SpacePlan *Plan = Plans[PI];
    if (!Plan->S || Plan->S->sizeBytes() == 0)
      continue;
    Space *S = Plan->S;
    std::vector<uint8_t> &Staging = StagingImages[PI];
    Staging.assign(static_cast<size_t>(Plan->Cursor - S->base()), 0);
    for (const SpacePlan::Move &M : Plan->Moves) {
      H.account(M.OldAddr, M.Size, /*IsWrite=*/false);
      H.account(M.NewAddr, M.Size, /*IsWrite=*/true);
      std::memcpy(&Staging[M.NewAddr - S->base()], H.rawBytes(M.OldAddr),
                  M.Size);
      ObjectHeader *NewHdr =
          reinterpret_cast<ObjectHeader *>(&Staging[M.NewAddr - S->base()]);
      NewHdr->Forward = 0;
      NewHdr->setMarked(false);
      NewHdr->Age = T.TenureAge; // everything here is tenured now
      NewHdr->WriteCount = 0;    // KW monitoring window resets
    }
    for (auto [Addr, Bytes] : Plan->Fillers) {
      ObjectHeader *F =
          reinterpret_cast<ObjectHeader *>(&Staging[Addr - S->base()]);
      F->SizeBytes = static_cast<uint32_t>(Bytes);
      F->Kind = static_cast<uint8_t>(ObjectKind::PrimArray);
      F->Aux = 1;
      F->Length = static_cast<uint32_t>(Bytes - sizeof(ObjectHeader));
    }
  }
  for (unsigned PI = 0; PI != 2; ++PI) {
    SpacePlan *Plan = Plans[PI];
    if (!Plan->S)
      continue;
    Space *S = Plan->S;
    Cards.clearRange(S->base(), S->end());
    if (S->sizeBytes() == 0)
      continue;
    std::vector<uint8_t> &Staging = StagingImages[PI];
    if (!Staging.empty())
      std::memcpy(H.rawBytes(S->base()), Staging.data(), Staging.size());
    S->reset();
    S->setTop(Plan->Cursor);
    for (const SpacePlan::Move &M : Plan->Moves)
      Cards.noteObjectStart(M.NewAddr);
    for (auto [Addr, Bytes] : Plan->Fillers) {
      (void)Bytes;
      Cards.noteObjectStart(Addr);
    }
  }

  // The young generation is empty after a full GC.
  uint64_t YoungLo =
      std::min({H.eden().base(), H.fromSpace().base(), H.toSpace().base()});
  uint64_t YoungHi =
      std::max({H.eden().end(), H.fromSpace().end(), H.toSpace().end()});
  Cards.clearRange(YoungLo, YoungHi);
  H.eden().reset();
  H.fromSpace().reset();
  H.toSpace().reset();
}

void Collector::collectMajor(const char *Reason) {
  assert(!H.inGc() && "re-entrant collection");
  H.setInGc(true);
  GcEvent Event;
  Event.Major = true;
  Event.Reason = Reason;
  Event.StartNs = H.memory().totalTimeNs();
  double GcNsBefore = H.memory().gcTimeNs();
  uint64_t MigratedBefore =
      Stats.MigratedRddArraysToDram + Stats.MigratedRddArraysToNvm;
  {
    memsim::ActorScope Scope(H.memory(), memsim::Actor::Gc);
    ++Stats.MajorGcs;
    double PhaseStart = H.memory().gcTimeNs();
    markFromRoots();
    Event.MarkNs = H.memory().gcTimeNs() - PhaseStart;
    planMigrations();
    PhaseStart = H.memory().gcTimeNs();
    try {
      compactHeap();
    } catch (...) {
      // Compaction overflow: the plan was unwound with the heap intact;
      // drop the in-GC flag so the caller can still run cleanup code.
      H.setInGc(false);
      throw;
    }
    Event.CompactNs = H.memory().gcTimeNs() - PhaseStart;
    if (Monitor)
      Monitor->resetWindow(); // §4.2.2: frequencies reset per major GC
    MinorsAtLastMajor = Stats.MinorGcs;
  }
  H.setInGc(false);
  Event.DurationNs = H.memory().gcTimeNs() - GcNsBefore;
  Event.RddArraysMigrated = Stats.MigratedRddArraysToDram +
                            Stats.MigratedRddArraysToNvm - MigratedBefore;
  Events.push_back(Event);
  if (H.config().Tuning.VerifyHeap) {
    VerifyResult V = verifyHeap(H);
    if (!V.Ok) {
      std::fprintf(stderr, "verify after major gc #%llu: %s\n",
                   static_cast<unsigned long long>(Stats.MajorGcs),
                   V.FirstProblem.c_str());
      std::abort();
    }
  }
}
