//===- gc/AccessMonitor.h - RDD call-frequency monitoring -------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lightweight method-level monitor of §4.2.2: the instrumented Spark
/// program invokes a native call at every transformation/action call site
/// on an RDD object; the runtime keeps a hash table mapping the RDD to its
/// call count. At each major GC the collector consults the window counts to
/// migrate mis-placed RDDs, then resets the window (the paper resets the
/// frequency of each RDD at the end of every major GC).
///
/// Table 5 reports the total number of monitored calls per program, which
/// totalCalls() reproduces.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_GC_ACCESSMONITOR_H
#define PANTHERA_GC_ACCESSMONITOR_H

#include <cstdint>
#include <unordered_map>

namespace panthera {
namespace gc {

/// Per-RDD call-frequency table with a reset-at-major-GC window.
class AccessMonitor {
public:
  /// Records one method invocation on the RDD identified by \p RddId.
  void recordCall(uint32_t RddId) { recordCalls(RddId, 1); }

  /// Records \p N invocations at once. The window counter saturates at
  /// UINT32_MAX instead of wrapping: a long window between major GCs could
  /// otherwise overflow a hot RDD's count back toward 0 and invert the
  /// hot/cold migration decision (same failure shape as the survivor-age
  /// wrap fixed in the collector; a saturated RDD stays hot).
  void recordCalls(uint32_t RddId, uint32_t N) {
    if (RddId == 0 || N == 0)
      return;
    uint32_t &C = Window[RddId];
    C = C > UINT32_MAX - N ? UINT32_MAX : C + N;
    Total += N;
  }

  /// Calls observed on \p RddId since the last window reset.
  uint32_t callsInWindow(uint32_t RddId) const {
    auto It = Window.find(RddId);
    return It == Window.end() ? 0 : It->second;
  }

  /// Clears the window (end of a major GC).
  void resetWindow() { Window.clear(); }

  /// Total calls monitored over the program's lifetime (Table 5, col 2).
  uint64_t totalCalls() const { return Total; }

private:
  std::unordered_map<uint32_t, uint32_t> Window;
  uint64_t Total = 0;
};

} // namespace gc
} // namespace panthera

#endif // PANTHERA_GC_ACCESSMONITOR_H
