//===- gc/Collector.h - Panthera generational collector ---------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Panthera garbage collector (§4): a generational collector modeled on
/// OpenJDK's Parallel Scavenge, extended with
///
///   * tag-propagating minor GC: tracing from a tagged object stamps its
///     MEMORY_BITS onto reachable young objects, which are then *eagerly
///     promoted* into the matching old-generation component (§4.2.2);
///   * DRAM-to-young and NVM-to-young card-scan tasks replacing the single
///     old-to-young task (§4.2.2);
///   * a major GC whose compaction never crosses the DRAM/NVM boundary and
///     which migrates RDD arrays (plus everything reachable from them)
///     between the components according to their monitored call frequency;
///   * the card-sharing pathology of §4.2.3: a dirty card overlapped by two
///     or more large arrays forces a full rescan of every element of each
///     such array at every minor GC and can never be cleaned until a major
///     GC -- unless card padding removed the sharing at allocation time.
///
/// The same collector also implements the baseline policies: with no tags
/// and a unified old generation it behaves exactly like stock Parallel
/// Scavenge (the Unmanaged/KN baselines); with write monitoring enabled it
/// implements Kingsguard-Writes' placement rule.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_GC_COLLECTOR_H
#define PANTHERA_GC_COLLECTOR_H

#include "gc/AccessMonitor.h"
#include "gc/GcPolicy.h"
#include "heap/Heap.h"

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace panthera {
namespace memsim {
class MigrationEngine;
} // namespace memsim
namespace support {
class WorkStealingPool;
class MetricsRegistry;
class TraceLog;
} // namespace support
namespace gc {

/// One collection's record, in the spirit of a JVM GC log line, with the
/// per-phase breakdown named after Parallel Scavenge's tasks (§4.2.2).
struct GcEvent {
  bool Major = false;
  /// True for incremental-marking step events (cycle start, paced mark
  /// steps, SATB drains): bounded pauses interleaved with the mutator,
  /// not full collections (docs/gc_pause.md).
  bool IncStep = false;
  const char *Reason = "";
  double StartNs = 0.0;    ///< Simulated time the collection began.
  double DurationNs = 0.0; ///< Simulated GC time it consumed.
  uint64_t BytesPromoted = 0;
  uint64_t BytesCopiedToSurvivor = 0;
  uint64_t CardsScanned = 0;
  uint64_t RddArraysMigrated = 0;

  // Minor-GC phases.
  double RootTaskNs = 0.0;        ///< Stack + persistent root scanning.
  double DramToYoungTaskNs = 0.0; ///< Dirty-card scan of old-gen DRAM.
  double NvmToYoungTaskNs = 0.0;  ///< Dirty-card scan of old-gen NVM.
  double DrainNs = 0.0;           ///< Copy/trace worklist draining.
  // Major-GC phases.
  double MarkNs = 0.0;
  double CompactNs = 0.0;
};

/// Collector counters used by tests and the Fig 5 / Table 5 harnesses.
struct GcStats {
  uint64_t MinorGcs = 0;
  uint64_t MajorGcs = 0;
  uint64_t BytesCopiedToSurvivor = 0;
  uint64_t BytesPromoted = 0;
  uint64_t EagerPromotions = 0;
  uint64_t CardsScanned = 0;
  uint64_t CardsCleaned = 0;
  /// Dirty cards shared by >=2 large arrays (the §4.2.3 pathology): each
  /// occurrence forces full-array rescans.
  uint64_t SharedArrayCardScans = 0;
  uint64_t MigratedRddArraysToDram = 0;
  uint64_t MigratedRddArraysToNvm = 0;
  /// Distinct RDDs that dynamic migration moved (Table 5, col 3).
  uint64_t RddsMigrated = 0;
  // Incremental marking (--max-pause-us, docs/gc_pause.md).
  uint64_t IncCycles = 0;        ///< Incremental cycles started.
  uint64_t IncMarkSteps = 0;     ///< Bounded mark steps run.
  uint64_t IncSatbDrained = 0;   ///< SATB log entries drained.
  uint64_t IncObjectsMarked = 0; ///< Objects scanned incrementally.
};

/// The generational collector. One instance per Heap.
class Collector : public heap::GcHost {
public:
  Collector(heap::Heap &H, PolicyKind Policy, AccessMonitor *Monitor);
  ~Collector() override;

  void collectMinor(const char *Reason) override;
  void collectMajor(const char *Reason) override;
  /// Pacing hook: with Tuning.MaxPauseUs > 0 and an active incremental
  /// cycle, runs one bounded mark step every Tuning.IncStepAllocs
  /// allocations. A no-op otherwise (the stop-the-world configuration is
  /// byte-identical to a build without the hook).
  void allocationSafepoint() override;

  /// True while an incremental marking cycle is in flight.
  bool incrementalCycleActive() const { return IncActive; }

  /// Runs one bounded mark step now if a cycle is active; the fuzz
  /// harness and tests interleave steps explicitly through this instead
  /// of relying on allocation pacing. Returns whether a step ran.
  bool incrementalStep();

  const GcStats &stats() const { return Stats; }
  PolicyKind policy() const { return Policy; }

  /// Installs the shared work-stealing pool. With a pool the minor GC runs
  /// the deterministic parallel scavenge (docs/parallelism.md) and the
  /// major GC marks in parallel; without one (unit tests constructing the
  /// collector directly) the single-threaded paths are kept verbatim.
  /// Results and simulated time are invariant in the pool's worker count.
  void setThreadPool(support::WorkStealingPool *P) { Pool = P; }

  /// Installs the observability sinks (docs/observability.md). After every
  /// collection the collector publishes pause/phase histograms and
  /// per-space occupancy gauges into \p M and a minor/major span with
  /// per-phase sub-spans into \p T, stamped with the simulated clock.
  /// Either may be null. Scalar totals (gc.* counters) are synced from
  /// GcStats by Runtime::publishMetrics instead, so nothing here double
  /// counts.
  void setTelemetry(support::MetricsRegistry *M, support::TraceLog *T) {
    Metrics = M;
    TraceSink = T;
  }

  /// Installs the between-GC page-migration engine (--policy=dynamic,
  /// docs/memsim.md). When set, every minor GC that did not escalate to a
  /// major ends with one bounded hot/cold swap step, and every major GC
  /// starts by restoring the canonical static mapping. Null (the default)
  /// leaves all policies byte-identical to a build without the engine.
  void setMigrationEngine(memsim::MigrationEngine *M) { Migration = M; }

  /// Instance ids of RDDs dynamic migration has moved; Table 5 reports
  /// these mapped back to driver variables.
  const std::unordered_set<uint32_t> &migratedRddIds() const {
    return MigratedRddIds;
  }

  /// Per-collection event log (every minor and major GC, in order).
  const std::vector<GcEvent> &eventLog() const { return Events; }

private:
  //===--- minor GC -------------------------------------------------------===
  bool scavengeHeadroomOk() const;
  bool inCollectedYoung(uint64_t Addr) const;
  heap::ObjRef evacuate(heap::ObjRef Ref, MemTag IncomingTag);
  void scanCopied(uint64_t Addr);
  void drainWorklist();
  void scanOldToYoungCards(GcEvent &Event);
  void scanCard(heap::Space &S, size_t CardIdx);
  void maybeTriggerMajor();

  /// The work-stealing scavenge (claim / plan / copy / fixup phases); runs
  /// in place of the root-scan + card-scan + drain sequence when a pool is
  /// installed. Fills the Event phase fields.
  void scavengeParallel(GcEvent &Event);

  //===--- major GC -------------------------------------------------------===
  void markFromRoots();
  /// Work-stealing mark (claim via an atomic mark-bit fetch_or); replaces
  /// markFromRoots when a pool is installed.
  void markParallelFromRoots();
  void markObject(uint64_t Addr, std::vector<uint64_t> &Stack);
  /// Publishes one finished collection's telemetry (histograms, occupancy
  /// gauges, trace spans). Runs at the serial Events.push_back point.
  void emitTelemetry(const GcEvent &Event);
  void planMigrations();
  void propagateMigrationTag(uint64_t ArrayAddr, MemTag Target);
  MemTag majorTargetTag(uint64_t Addr, bool WasYoung);
  void compactHeap();

  //===--- incremental marking (docs/gc_pause.md) -------------------------===
  /// Starts a cycle: snapshots the roots, arms the heap's SATB and
  /// allocate-black hooks. Recorded as its own step event.
  void startIncrementalCycle(const char *Reason);
  /// One bounded mark step: drains the SATB log, then scans gray old
  /// objects until Tuning.MaxPauseUs of simulated GC time has elapsed.
  /// Triggers the final stop-the-world remark + compaction when both the
  /// gray stack and the SATB log are empty.
  void incrementalMarkStep(const char *Reason);
  /// Unbounded SATB drain at minor-GC entry: logged young addresses must
  /// be traced before evacuation invalidates them.
  void satbDrainStep();
  /// Remark entry: finishes the snapshot trace serially and disarms the
  /// cycle; runs at the top of collectMajor's mark phase.
  void finishIncrementalMark();
  /// Marks \p Addr gray. Old objects go on the gray stack; young objects
  /// are closed over immediately (their addresses do not survive minor
  /// GCs), pushing only their old children.
  void incMarkRef(uint64_t Addr);
  /// Scans one marked object's slots, charging like markFromRoots.
  void scanForMark(uint64_t Addr);

  heap::Heap &H;
  PolicyKind Policy;
  AccessMonitor *Monitor;
  support::WorkStealingPool *Pool = nullptr;
  support::MetricsRegistry *Metrics = nullptr;
  support::TraceLog *TraceSink = nullptr;
  memsim::MigrationEngine *Migration = nullptr;
  GcStats Stats;
  std::vector<uint64_t> Worklist;
  std::unordered_set<uint32_t> MigratedRddIds;
  /// Minor-GC count at the last major GC (re-trigger guard).
  uint64_t MinorsAtLastMajor = 0;
  std::vector<GcEvent> Events;
  // Incremental-cycle state. The gray stack holds only old-generation
  // addresses (stable across minor GCs); all touched serially.
  bool IncActive = false;
  std::vector<uint64_t> IncStack;
  uint64_t AllocsSinceStep = 0;
};

} // namespace gc
} // namespace panthera

#endif // PANTHERA_GC_COLLECTOR_H
