//===- gc/HeapVerifier.h - Post-GC heap integrity checking ------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A debugging verifier that walks the reachable object graph and checks
/// structural invariants: every root and every reference field must point
/// at a well-formed object header inside the *live* portion of some heap
/// space (never into evacuated eden/from space, fillers, or mid-object).
/// The collector runs it after every phase when GcTuning.VerifyHeap is on;
/// tests use it directly.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_GC_HEAPVERIFIER_H
#define PANTHERA_GC_HEAPVERIFIER_H

#include "heap/Heap.h"

#include <string>

namespace panthera {
namespace gc {

/// Result of one verification pass.
struct VerifyResult {
  bool Ok = true;
  std::string FirstProblem; ///< Description of the first violation found.
  uint64_t ObjectsVisited = 0;

  explicit operator bool() const { return Ok; }
};

/// Optional extra checks layered on top of the structural pass.
struct VerifyOptions {
  /// Require every old-generation reference slot holding a young-generation
  /// pointer to lie on a dirty card. The invariant holds heap-wide -- even
  /// inside unreachable old objects, because dirty-card scanning visits all
  /// objects in a card -- so a clean card hiding an old->young edge means a
  /// minor GC would miss that edge entirely.
  bool CheckCardMarking = false;
};

/// Verifies the reachable graph of \p H. References into evacuated space
/// are caught by the allocation-frontier check (reset spaces have an empty
/// live region).
VerifyResult verifyHeap(heap::Heap &H);
VerifyResult verifyHeap(heap::Heap &H, const VerifyOptions &Opts);

} // namespace gc
} // namespace panthera

#endif // PANTHERA_GC_HEAPVERIFIER_H
