//===- gc/HeapVerifier.h - Post-GC heap integrity checking ------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A debugging verifier that walks the reachable object graph and checks
/// structural invariants: every root and every reference field must point
/// at a well-formed object header inside the *live* portion of some heap
/// space (never into evacuated eden/from space, fillers, or mid-object).
/// The collector runs it after every phase when GcTuning.VerifyHeap is on;
/// tests use it directly.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_GC_HEAPVERIFIER_H
#define PANTHERA_GC_HEAPVERIFIER_H

#include "heap/Heap.h"

#include <string>

namespace panthera {
namespace gc {

/// Result of one verification pass.
struct VerifyResult {
  bool Ok = true;
  std::string FirstProblem; ///< Description of the first violation found.
  uint64_t ObjectsVisited = 0;

  explicit operator bool() const { return Ok; }
};

/// Verifies the reachable graph of \p H. References into evacuated space
/// are caught by the allocation-frontier check (reset spaces have an empty
/// live region).
VerifyResult verifyHeap(heap::Heap &H);

} // namespace gc
} // namespace panthera

#endif // PANTHERA_GC_HEAPVERIFIER_H
