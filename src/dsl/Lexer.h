//===- dsl/Lexer.h - Lexer for the driver-program DSL -----------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the driver DSL. Supports `//` line comments,
/// double-quoted strings, decimal integers, and the keyword set
/// {program, for, in}.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_DSL_LEXER_H
#define PANTHERA_DSL_LEXER_H

#include "dsl/Token.h"

#include <string>
#include <string_view>

namespace panthera {
namespace dsl {

/// Single-pass lexer over an in-memory source buffer.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Produces the next token; Eof forever once exhausted. Malformed input
  /// yields an Error token whose Text describes the problem.
  Token next();

private:
  char peek() const { return Pos < Source.size() ? Source[Pos] : '\0'; }
  char advance();
  void skipTrivia();
  Token make(TokenKind K, SourceLoc Loc, std::string Text = {});

  std::string_view Source;
  size_t Pos = 0;
  SourceLoc Loc;
};

} // namespace dsl
} // namespace panthera

#endif // PANTHERA_DSL_LEXER_H
