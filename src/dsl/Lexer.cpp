//===- dsl/Lexer.cpp - Lexer for the driver-program DSL ------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dsl/Lexer.h"

#include <cctype>

using namespace panthera::dsl;

const char *panthera::dsl::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Integer:
    return "integer";
  case TokenKind::String:
    return "string";
  case TokenKind::KwProgram:
    return "'program'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::DotDot:
    return "'..'";
  case TokenKind::Equals:
    return "'='";
  case TokenKind::Error:
    return "invalid token";
  }
  return "?";
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Loc.Line;
    Loc.Column = 1;
  } else {
    ++Loc.Column;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && Pos + 1 < Source.size() && Source[Pos + 1] == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

Token Lexer::make(TokenKind K, SourceLoc L, std::string Text) {
  Token T;
  T.Kind = K;
  T.Loc = L;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Start = Loc;
  if (Pos >= Source.size())
    return make(TokenKind::Eof, Start);

  char C = advance();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (Pos < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_'))
      Text.push_back(advance());
    if (Text == "program")
      return make(TokenKind::KwProgram, Start, Text);
    if (Text == "for")
      return make(TokenKind::KwFor, Start, Text);
    if (Text == "in")
      return make(TokenKind::KwIn, Start, Text);
    return make(TokenKind::Identifier, Start, Text);
  }
  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Text(1, C);
    while (Pos < Source.size() &&
           std::isdigit(static_cast<unsigned char>(peek())))
      Text.push_back(advance());
    Token T = make(TokenKind::Integer, Start, Text);
    T.IntValue = std::stoll(Text);
    return T;
  }
  switch (C) {
  case '"': {
    std::string Text;
    while (Pos < Source.size() && peek() != '"' && peek() != '\n')
      Text.push_back(advance());
    if (Pos >= Source.size() || peek() != '"')
      return make(TokenKind::Error, Start, "unterminated string literal");
    advance(); // closing quote
    return make(TokenKind::String, Start, Text);
  }
  case '{':
    return make(TokenKind::LBrace, Start);
  case '}':
    return make(TokenKind::RBrace, Start);
  case '(':
    return make(TokenKind::LParen, Start);
  case ')':
    return make(TokenKind::RParen, Start);
  case ';':
    return make(TokenKind::Semicolon, Start);
  case ',':
    return make(TokenKind::Comma, Start);
  case '=':
    return make(TokenKind::Equals, Start);
  case '.':
    if (peek() == '.') {
      advance();
      return make(TokenKind::DotDot, Start);
    }
    return make(TokenKind::Dot, Start);
  default:
    return make(TokenKind::Error, Start,
                std::string("unexpected character '") + C + "'");
  }
}
