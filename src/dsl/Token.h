//===- dsl/Token.h - Tokens of the driver-program DSL -----------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token definitions for the Spark driver-program DSL. The DSL captures the
/// program structure the paper's §3 static analysis consumes: RDD variable
/// definitions as transformation chains, persist calls with storage levels,
/// actions, and loops.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_DSL_TOKEN_H
#define PANTHERA_DSL_TOKEN_H

#include <cstdint>
#include <string>

namespace panthera {
namespace dsl {

/// A position in the DSL source, for diagnostics.
struct SourceLoc {
  uint32_t Line = 1;
  uint32_t Column = 1;
};

enum class TokenKind : uint8_t {
  Eof,
  Identifier,
  Integer,
  String,
  KwProgram,
  KwFor,
  KwIn,
  LBrace,
  RBrace,
  LParen,
  RParen,
  Semicolon,
  Comma,
  Dot,
  DotDot,
  Equals,
  Error,
};

const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  /// Identifier / string / integer spelling (strings without quotes).
  std::string Text;
  int64_t IntValue = 0;
  SourceLoc Loc;
};

} // namespace dsl
} // namespace panthera

#endif // PANTHERA_DSL_TOKEN_H
