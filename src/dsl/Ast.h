//===- dsl/Ast.h - AST of the driver-program DSL ----------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree for the driver DSL. A program is a list of
/// statements: assignments of transformation chains to RDD variables,
/// expression statements (typically action calls), and counted loops.
///
/// A chain is either rooted at a variable reference (`links.join(ranks)`)
/// or at a source call (`textFile("input")`), followed by method calls
/// whose arguments are variables, strings, or integers.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_DSL_AST_H
#define PANTHERA_DSL_AST_H

#include "dsl/Token.h"

#include <memory>
#include <string>
#include <vector>

namespace panthera {
namespace dsl {

/// A method-call argument.
struct Arg {
  enum class Kind : uint8_t { Var, Str, Num };
  Kind K = Kind::Var;
  std::string Text; ///< Variable name or string contents.
  int64_t Num = 0;
  SourceLoc Loc;
};

/// One `.name(args)` link in a chain.
struct MethodCall {
  std::string Name;
  std::vector<Arg> Args;
  SourceLoc Loc;
};

/// A transformation/action chain.
struct Chain {
  /// True when the chain is rooted at a source call such as textFile(...);
  /// false when rooted at an RDD variable reference.
  bool RootIsSource = false;
  std::string RootName;       ///< Variable name or source function name.
  std::vector<Arg> RootArgs;  ///< Source-call arguments (if RootIsSource).
  std::vector<MethodCall> Calls;
  SourceLoc Loc;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statement node (tagged union in the classic style).
struct Stmt {
  enum class Kind : uint8_t { Assign, Expr, Loop };
  Kind K;
  SourceLoc Loc;

  // Assign / Expr.
  std::string Var; ///< Assign: defined variable name.
  Chain Value;

  // Loop.
  std::string IndexVar;
  int64_t LoopBegin = 0;
  int64_t LoopEnd = 0;        ///< Used when LoopEndVar is empty.
  std::string LoopEndVar;     ///< Symbolic trip count (e.g. `iters`).
  std::vector<StmtPtr> Body;
};

/// A parsed driver program.
struct Program {
  std::string Name;
  std::vector<StmtPtr> Body;
};

/// A parse/lex diagnostic.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;
};

} // namespace dsl
} // namespace panthera

#endif // PANTHERA_DSL_AST_H
