//===- dsl/Parser.cpp - Recursive-descent parser for the DSL -------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dsl/Parser.h"

using namespace panthera::dsl;

Parser::Parser(std::string_view Source) : Lex(Source) { Tok = Lex.next(); }

void Parser::bump() { Tok = Lex.next(); }

void Parser::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({Loc, std::move(Message)});
}

bool Parser::expect(TokenKind K, const char *What) {
  if (Tok.Kind == K) {
    bump();
    return true;
  }
  error(Tok.Loc, std::string("expected ") + tokenKindName(K) + " " + What +
                     ", found " + tokenKindName(Tok.Kind));
  return false;
}

std::vector<Arg> Parser::parseArgs() {
  std::vector<Arg> Args;
  if (Tok.Kind == TokenKind::RParen)
    return Args;
  while (true) {
    Arg A;
    A.Loc = Tok.Loc;
    switch (Tok.Kind) {
    case TokenKind::Identifier:
      A.K = Arg::Kind::Var;
      A.Text = Tok.Text;
      break;
    case TokenKind::String:
      A.K = Arg::Kind::Str;
      A.Text = Tok.Text;
      break;
    case TokenKind::Integer:
      A.K = Arg::Kind::Num;
      A.Num = Tok.IntValue;
      break;
    default:
      error(Tok.Loc, std::string("expected argument, found ") +
                         tokenKindName(Tok.Kind));
      return Args;
    }
    bump();
    Args.push_back(std::move(A));
    if (Tok.Kind != TokenKind::Comma)
      break;
    bump();
  }
  return Args;
}

MethodCall Parser::parseCall() {
  MethodCall Call;
  Call.Loc = Tok.Loc;
  if (Tok.Kind != TokenKind::Identifier) {
    error(Tok.Loc, std::string("expected method name, found ") +
                       tokenKindName(Tok.Kind));
    return Call;
  }
  Call.Name = Tok.Text;
  bump();
  if (!expect(TokenKind::LParen, "after method name"))
    return Call;
  Call.Args = parseArgs();
  expect(TokenKind::RParen, "to close the argument list");
  return Call;
}

Chain Parser::parseChain() {
  Chain C;
  C.Loc = Tok.Loc;
  if (Tok.Kind != TokenKind::Identifier) {
    error(Tok.Loc, std::string("expected RDD variable or source, found ") +
                       tokenKindName(Tok.Kind));
    return C;
  }
  C.RootName = Tok.Text;
  bump();
  if (Tok.Kind == TokenKind::LParen) {
    C.RootIsSource = true;
    bump();
    C.RootArgs = parseArgs();
    expect(TokenKind::RParen, "to close the source-call argument list");
  }
  while (Tok.Kind == TokenKind::Dot) {
    bump();
    C.Calls.push_back(parseCall());
  }
  return C;
}

StmtPtr Parser::parseLoop() {
  auto S = std::make_unique<Stmt>();
  S->K = Stmt::Kind::Loop;
  S->Loc = Tok.Loc;
  bump(); // 'for'
  expect(TokenKind::LParen, "after 'for'");
  if (Tok.Kind == TokenKind::Identifier) {
    S->IndexVar = Tok.Text;
    bump();
  } else {
    error(Tok.Loc, "expected loop index variable");
  }
  expect(TokenKind::KwIn, "after loop index");
  if (Tok.Kind == TokenKind::Integer) {
    S->LoopBegin = Tok.IntValue;
    bump();
  } else {
    error(Tok.Loc, "expected loop lower bound");
  }
  expect(TokenKind::DotDot, "in loop range");
  if (Tok.Kind == TokenKind::Integer) {
    S->LoopEnd = Tok.IntValue;
    bump();
  } else if (Tok.Kind == TokenKind::Identifier) {
    S->LoopEndVar = Tok.Text;
    bump();
  } else {
    error(Tok.Loc, "expected loop upper bound");
  }
  expect(TokenKind::RParen, "to close the loop header");
  expect(TokenKind::LBrace, "to open the loop body");
  while (Tok.Kind != TokenKind::RBrace && Tok.Kind != TokenKind::Eof) {
    StmtPtr Body = parseStmt();
    if (!Body)
      break;
    S->Body.push_back(std::move(Body));
  }
  expect(TokenKind::RBrace, "to close the loop body");
  return S;
}

StmtPtr Parser::parseStmt() {
  if (Tok.Kind == TokenKind::KwFor)
    return parseLoop();

  if (Tok.Kind != TokenKind::Identifier) {
    error(Tok.Loc, std::string("expected statement, found ") +
                       tokenKindName(Tok.Kind));
    bump(); // make progress so errors cannot loop forever
    return nullptr;
  }

  // Lookahead-free trick: parse the leading identifier, then decide
  // between assignment and expression statement by the next token.
  Token First = Tok;
  bump();
  auto S = std::make_unique<Stmt>();
  S->Loc = First.Loc;
  if (Tok.Kind == TokenKind::Equals) {
    bump();
    S->K = Stmt::Kind::Assign;
    S->Var = First.Text;
    S->Value = parseChain();
  } else {
    // Re-root the chain at the already-consumed identifier.
    S->K = Stmt::Kind::Expr;
    Chain C;
    C.Loc = First.Loc;
    C.RootName = First.Text;
    if (Tok.Kind == TokenKind::LParen) {
      C.RootIsSource = true;
      bump();
      C.RootArgs = parseArgs();
      expect(TokenKind::RParen, "to close the source-call argument list");
    }
    while (Tok.Kind == TokenKind::Dot) {
      bump();
      C.Calls.push_back(parseCall());
    }
    S->Value = std::move(C);
  }
  expect(TokenKind::Semicolon, "to end the statement");
  return S;
}

Program Parser::parseProgram() {
  Program P;
  expect(TokenKind::KwProgram, "at the start of the file");
  if (Tok.Kind == TokenKind::Identifier) {
    P.Name = Tok.Text;
    bump();
  } else {
    error(Tok.Loc, "expected program name");
  }
  expect(TokenKind::LBrace, "to open the program body");
  while (Tok.Kind != TokenKind::RBrace && Tok.Kind != TokenKind::Eof) {
    StmtPtr S = parseStmt();
    if (S)
      P.Body.push_back(std::move(S));
  }
  expect(TokenKind::RBrace, "to close the program body");
  return P;
}

Program panthera::dsl::parseDriverProgram(std::string_view Source,
                                          std::vector<Diagnostic> &Diags) {
  Parser P(Source);
  Program Prog = P.parseProgram();
  Diags.insert(Diags.end(), P.diagnostics().begin(), P.diagnostics().end());
  return Prog;
}
