//===- dsl/Printer.h - Pretty-printer for the driver DSL --------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a dsl::Program back to source text. Output is canonical (one
/// statement per line, two-space loop indentation) and re-parseable, so
/// print(parse(s)) is a fixpoint -- the property the instrumentation pass
/// and the round-trip tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_DSL_PRINTER_H
#define PANTHERA_DSL_PRINTER_H

#include "dsl/Ast.h"

#include <string>

namespace panthera {
namespace dsl {

/// Renders \p P as canonical DSL source.
std::string printProgram(const Program &P);

/// Renders one chain (without the trailing semicolon).
std::string printChain(const Chain &C);

/// Deep-copies a statement tree (the AST is move-only by default).
StmtPtr cloneStmt(const Stmt &S);

/// Deep-copies a whole program.
Program cloneProgram(const Program &P);

} // namespace dsl
} // namespace panthera

#endif // PANTHERA_DSL_PRINTER_H
