//===- dsl/Printer.cpp - Pretty-printer for the driver DSL ----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dsl/Printer.h"

#include <sstream>

using namespace panthera;
using namespace panthera::dsl;

static void printArgs(std::ostringstream &Out, const std::vector<Arg> &Args) {
  Out << '(';
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I)
      Out << ", ";
    const Arg &A = Args[I];
    switch (A.K) {
    case Arg::Kind::Var:
      Out << A.Text;
      break;
    case Arg::Kind::Str:
      Out << '"' << A.Text << '"';
      break;
    case Arg::Kind::Num:
      Out << A.Num;
      break;
    }
  }
  Out << ')';
}

std::string panthera::dsl::printChain(const Chain &C) {
  std::ostringstream Out;
  Out << C.RootName;
  if (C.RootIsSource)
    printArgs(Out, C.RootArgs);
  for (const MethodCall &Call : C.Calls) {
    Out << '.' << Call.Name;
    printArgs(Out, Call.Args);
  }
  return Out.str();
}

static void printStmt(std::ostringstream &Out, const Stmt &S,
                      unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (S.K) {
  case Stmt::Kind::Assign:
    Out << Pad << S.Var << " = " << printChain(S.Value) << ";\n";
    break;
  case Stmt::Kind::Expr:
    Out << Pad << printChain(S.Value) << ";\n";
    break;
  case Stmt::Kind::Loop:
    Out << Pad << "for (" << S.IndexVar << " in " << S.LoopBegin << "..";
    if (!S.LoopEndVar.empty())
      Out << S.LoopEndVar;
    else
      Out << S.LoopEnd;
    Out << ") {\n";
    for (const StmtPtr &Body : S.Body)
      printStmt(Out, *Body, Indent + 1);
    Out << Pad << "}\n";
    break;
  }
}

std::string panthera::dsl::printProgram(const Program &P) {
  std::ostringstream Out;
  Out << "program " << P.Name << " {\n";
  for (const StmtPtr &S : P.Body)
    printStmt(Out, *S, 1);
  Out << "}\n";
  return Out.str();
}

StmtPtr panthera::dsl::cloneStmt(const Stmt &S) {
  auto Copy = std::make_unique<Stmt>();
  Copy->K = S.K;
  Copy->Loc = S.Loc;
  Copy->Var = S.Var;
  Copy->Value = S.Value; // Chain is value-copyable
  Copy->IndexVar = S.IndexVar;
  Copy->LoopBegin = S.LoopBegin;
  Copy->LoopEnd = S.LoopEnd;
  Copy->LoopEndVar = S.LoopEndVar;
  for (const StmtPtr &Body : S.Body)
    Copy->Body.push_back(cloneStmt(*Body));
  return Copy;
}

Program panthera::dsl::cloneProgram(const Program &P) {
  Program Copy;
  Copy.Name = P.Name;
  for (const StmtPtr &S : P.Body)
    Copy.Body.push_back(cloneStmt(*S));
  return Copy;
}
