//===- dsl/Parser.h - Recursive-descent parser for the DSL ------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing a dsl::Program. Errors are collected
/// as diagnostics (with source locations) rather than thrown; a program is
/// usable only when no diagnostics were produced.
///
/// Grammar:
///   program   ::= 'program' IDENT '{' stmt* '}'
///   stmt      ::= IDENT '=' chain ';' | chain ';' | loop
///   loop      ::= 'for' '(' IDENT 'in' INT '..' (INT | IDENT) ')'
///                 '{' stmt* '}'
///   chain     ::= root ('.' call)*
///   root      ::= IDENT | IDENT '(' args? ')'
///   call      ::= IDENT '(' args? ')'
///   args      ::= arg (',' arg)*
///   arg       ::= IDENT | STRING | INT
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_DSL_PARSER_H
#define PANTHERA_DSL_PARSER_H

#include "dsl/Ast.h"
#include "dsl/Lexer.h"

#include <string_view>
#include <vector>

namespace panthera {
namespace dsl {

/// Parses a full driver program.
class Parser {
public:
  explicit Parser(std::string_view Source);

  /// Parses the source; the returned program is meaningful only when
  /// diagnostics() is empty afterwards.
  Program parseProgram();

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

private:
  void bump();
  bool expect(TokenKind K, const char *What);
  void error(SourceLoc Loc, std::string Message);

  StmtPtr parseStmt();
  StmtPtr parseLoop();
  Chain parseChain();
  MethodCall parseCall();
  std::vector<Arg> parseArgs();

  Lexer Lex;
  Token Tok;
  std::vector<Diagnostic> Diags;
};

/// Convenience entry point: parses \p Source, appending diagnostics to
/// \p Diags. Returns the (possibly partial) program.
Program parseDriverProgram(std::string_view Source,
                           std::vector<Diagnostic> &Diags);

} // namespace dsl
} // namespace panthera

#endif // PANTHERA_DSL_PARSER_H
