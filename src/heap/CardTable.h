//===- heap/CardTable.h - 512-byte card table + object starts ---*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpenJDK-style card table: the heap is divided into 512-byte cards; the
/// write barrier dirties the card containing an object whose reference
/// field was stored. Minor GCs scan dirty old-generation cards to find
/// old-to-young references (§4.2.3).
///
/// The table also keeps a per-card "first object start" map (the analogue
/// of OpenJDK's block-offset table) so a dirty card's overlapping objects
/// can be located without walking the whole space.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_HEAP_CARDTABLE_H
#define PANTHERA_HEAP_CARDTABLE_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace panthera {
namespace heap {

/// Dirty-card tracking plus object-start lookup over the whole heap range.
class CardTable {
public:
  static constexpr uint64_t CardBytes = 512;

  /// Sentinel for "no object starts in this card". Address 0 is a real
  /// heap address (the table covers the memory range from 0), so it
  /// cannot double as the empty marker: an object recorded at 0 would be
  /// indistinguishable from an empty card and invisible to dirty-card
  /// scanning.
  static constexpr uint64_t NoObject = UINT64_MAX;

  explicit CardTable(uint64_t TotalBytes)
      : Dirty((TotalBytes + CardBytes - 1) / CardBytes, 0),
        FirstObj(Dirty.size(), NoObject) {}

  size_t numCards() const { return Dirty.size(); }

  /// Maps \p Addr to its card index. Checked in every build type: the
  /// card table backs the write barrier and the collector's card scans,
  /// and an address past the table end would silently index out of
  /// bounds in release builds. A heap that produces such an address is
  /// already corrupt, and a broken collector cannot unwind safely, so
  /// abort rather than throw (same precedent as Space::setTop).
  size_t cardIndex(uint64_t Addr) const {
    size_t Idx = static_cast<size_t>(Addr / CardBytes);
    if (Idx >= Dirty.size()) {
      std::fprintf(stderr,
                   "panthera: card table: address 0x%llx beyond covered "
                   "range (%zu cards)\n",
                   static_cast<unsigned long long>(Addr), Dirty.size());
      std::abort();
    }
    return Idx;
  }
  uint64_t cardStart(size_t Idx) const { return Idx * CardBytes; }

  void dirtyCardFor(uint64_t Addr) { Dirty[cardIndex(Addr)] = 1; }
  bool isDirty(size_t Idx) const { return Dirty[Idx] != 0; }
  void clean(size_t Idx) { Dirty[Idx] = 0; }
  void dirtyIndex(size_t Idx) { Dirty[Idx] = 1; }

  /// Records that an object begins at \p Addr (old-generation allocation).
  /// Keeps the lowest start per card; bump allocation visits addresses in
  /// ascending order so the first note wins.
  void noteObjectStart(uint64_t Addr) {
    size_t Idx = cardIndex(Addr);
    if (Addr < FirstObj[Idx])
      FirstObj[Idx] = Addr;
  }

  /// Address of the first object starting inside card \p Idx, NoObject
  /// if none.
  uint64_t firstObjectInCard(size_t Idx) const { return FirstObj[Idx]; }

  /// Drops object-start and dirty state for [Start, End) -- used when a
  /// space is evacuated or recompacted.
  ///
  /// Boundary cards only partially covered by the range (an unaligned
  /// Start or End shares the card with a neighboring space) are handled
  /// conservatively: the FirstObj entry is dropped only if the recorded
  /// object start actually lies inside [Start, End), and the dirty bit is
  /// kept -- a spurious rescan of the neighbor is safe, losing its
  /// object-start or dirty state is not. In practice every space boundary
  /// is page-aligned (HeapConfig::alignPage), so the partial-card path
  /// never fires during normal operation.
  void clearRange(uint64_t Start, uint64_t End) {
    if (Start >= End)
      return;
    size_t FirstIdx = cardIndex(Start);
    size_t LastIdx = cardIndex(End - 1);
    for (size_t Idx = FirstIdx; Idx <= LastIdx; ++Idx) {
      uint64_t CardLo = cardStart(Idx);
      uint64_t CardHi = CardLo + CardBytes;
      if (Start <= CardLo && CardHi <= End) {
        Dirty[Idx] = 0;
        FirstObj[Idx] = NoObject;
      } else if (FirstObj[Idx] >= Start && FirstObj[Idx] < End) {
        FirstObj[Idx] = NoObject;
      }
    }
  }

private:
  std::vector<uint8_t> Dirty;
  std::vector<uint64_t> FirstObj;
};

} // namespace heap
} // namespace panthera

#endif // PANTHERA_HEAP_CARDTABLE_H
