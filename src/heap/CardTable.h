//===- heap/CardTable.h - 512-byte card table + object starts ---*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpenJDK-style card table: the heap is divided into 512-byte cards; the
/// write barrier dirties the card containing an object whose reference
/// field was stored. Minor GCs scan dirty old-generation cards to find
/// old-to-young references (§4.2.3).
///
/// The table also keeps a per-card "first object start" map (the analogue
/// of OpenJDK's block-offset table) so a dirty card's overlapping objects
/// can be located without walking the whole space.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_HEAP_CARDTABLE_H
#define PANTHERA_HEAP_CARDTABLE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace panthera {
namespace heap {

/// Dirty-card tracking plus object-start lookup over the whole heap range.
class CardTable {
public:
  static constexpr uint64_t CardBytes = 512;

  explicit CardTable(uint64_t TotalBytes)
      : Dirty((TotalBytes + CardBytes - 1) / CardBytes, 0),
        FirstObj(Dirty.size(), 0) {}

  size_t numCards() const { return Dirty.size(); }

  size_t cardIndex(uint64_t Addr) const {
    size_t Idx = static_cast<size_t>(Addr / CardBytes);
    assert(Idx < Dirty.size() && "address beyond card table");
    return Idx;
  }
  uint64_t cardStart(size_t Idx) const { return Idx * CardBytes; }

  void dirtyCardFor(uint64_t Addr) { Dirty[cardIndex(Addr)] = 1; }
  bool isDirty(size_t Idx) const { return Dirty[Idx] != 0; }
  void clean(size_t Idx) { Dirty[Idx] = 0; }
  void dirtyIndex(size_t Idx) { Dirty[Idx] = 1; }

  /// Records that an object begins at \p Addr (old-generation allocation).
  /// Keeps the lowest start per card; bump allocation visits addresses in
  /// ascending order so the first note wins.
  void noteObjectStart(uint64_t Addr) {
    size_t Idx = cardIndex(Addr);
    if (FirstObj[Idx] == 0 || Addr < FirstObj[Idx])
      FirstObj[Idx] = Addr;
  }

  /// Address of the first object starting inside card \p Idx, 0 if none.
  uint64_t firstObjectInCard(size_t Idx) const { return FirstObj[Idx]; }

  /// Drops object-start and dirty state for [Start, End) -- used when a
  /// space is evacuated or recompacted.
  ///
  /// Boundary cards only partially covered by the range (an unaligned
  /// Start or End shares the card with a neighboring space) are handled
  /// conservatively: the FirstObj entry is dropped only if the recorded
  /// object start actually lies inside [Start, End), and the dirty bit is
  /// kept -- a spurious rescan of the neighbor is safe, losing its
  /// object-start or dirty state is not. In practice every space boundary
  /// is page-aligned (HeapConfig::alignPage), so the partial-card path
  /// never fires during normal operation.
  void clearRange(uint64_t Start, uint64_t End) {
    if (Start >= End)
      return;
    size_t FirstIdx = cardIndex(Start);
    size_t LastIdx = cardIndex(End - 1);
    for (size_t Idx = FirstIdx; Idx <= LastIdx; ++Idx) {
      uint64_t CardLo = cardStart(Idx);
      uint64_t CardHi = CardLo + CardBytes;
      if (Start <= CardLo && CardHi <= End) {
        Dirty[Idx] = 0;
        FirstObj[Idx] = 0;
      } else if (FirstObj[Idx] >= Start && FirstObj[Idx] < End) {
        FirstObj[Idx] = 0;
      }
    }
  }

private:
  std::vector<uint8_t> Dirty;
  std::vector<uint64_t> FirstObj;
};

} // namespace heap
} // namespace panthera

#endif // PANTHERA_HEAP_CARDTABLE_H
