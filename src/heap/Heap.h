//===- heap/Heap.h - The managed heap over hybrid memory --------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The managed heap: a young generation (eden + two survivor semispaces)
/// placed entirely in DRAM, an old generation laid out per the configured
/// policy (split DRAM/NVM for Panthera, unified for the baselines), and an
/// NVM-backed native region for off-heap storage (§4.1, Fig 3).
///
/// Every mutator field access goes through the accessor methods, which
/// route traffic to the HybridMemory cost model and run the card-marking
/// write barrier. The collector (src/gc) drives evacuation through the
/// "runtime-internal" raw accessors, charging its own traffic explicitly.
///
/// Code holding references across any allocation must protect them with
/// GcRoot handles -- a minor collection can move any young object.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_HEAP_HEAP_H
#define PANTHERA_HEAP_HEAP_H

#include "heap/CardTable.h"
#include "heap/HeapConfig.h"
#include "heap/ObjectModel.h"
#include "heap/Space.h"
#include "memsim/HybridMemory.h"

#include <cstring>
#include <functional>
#include <vector>

namespace panthera {

class FaultInjector;

namespace support {
class MetricsRegistry;
class TraceLog;
} // namespace support

namespace heap {

/// Interface the collector implements so the heap can request collections
/// on allocation failure without depending on the gc library.
class GcHost {
public:
  virtual ~GcHost();
  /// Runs a minor (young-generation) collection.
  virtual void collectMinor(const char *Reason) = 0;
  /// Runs a major (full-heap) collection.
  virtual void collectMajor(const char *Reason) = 0;
  /// Called at the top of every mutator allocation (never from inside a
  /// collection). The incremental marker uses this as its pacing hook: a
  /// bounded mark step runs every Tuning.IncStepAllocs allocations while a
  /// cycle is active. Default is a no-op so the stop-the-world collector
  /// is unaffected.
  virtual void allocationSafepoint() {}
};

/// Allocation / barrier counters.
struct HeapStats {
  uint64_t ObjectsAllocated = 0;
  uint64_t BytesAllocated = 0;
  uint64_t ArraysPretenured = 0;
  uint64_t ArraysOraclePretenured = 0; ///< Pretenured below the size
                                       ///< threshold by the NG2C-style
                                       ///< allocation-site oracle.
  uint64_t PretenureDramFallbacks = 0; ///< DRAM-tagged arrays that landed
                                       ///< in NVM because DRAM was full.
  uint64_t RefStores = 0;
  uint64_t CardPaddingWasteBytes = 0;
  // Parallel-scavenge promotion buffers (PLABs).
  uint64_t GcPlabRefills = 0;    ///< Promotion-buffer extents carved.
  uint64_t GcPlabWasteBytes = 0; ///< Filler bytes retiring PLAB remainders.
  // Staged OOM-fallback counters.
  uint64_t EmergencyGcs = 0;          ///< Emergency full GCs on alloc failure.
  uint64_t PressureEvictions = 0;     ///< Caches shed via the pressure hook.
  uint64_t OomErrorsThrown = 0;       ///< OutOfMemoryError raised (no abort).
};

class Heap;

/// RAII stack root: registers a slot the collector scans and updates.
/// Strictly LIFO, like a handle scope.
class GcRoot {
public:
  explicit GcRoot(Heap &H, ObjRef Initial = ObjRef());
  ~GcRoot();

  GcRoot(const GcRoot &) = delete;
  GcRoot &operator=(const GcRoot &) = delete;

  ObjRef get() const;
  void set(ObjRef R);

private:
  Heap &H;
  size_t Index;
};

/// The managed heap.
class Heap {
public:
  Heap(const HeapConfig &Config, memsim::HybridMemory &Mem);

  const HeapConfig &config() const { return Config; }
  memsim::HybridMemory &memory() { return Mem; }
  CardTable &cardTable() { return Cards; }
  HeapStats &stats() { return Stats; }

  void setGcHost(GcHost *Host) { this->Host = Host; }

  /// Installs the (optional) fault injector; the mutator allocation path
  /// consults its Allocation site.
  void setFaultInjector(FaultInjector *F) { Faults = F; }

  /// Called when every in-heap fallback failed: the engine should shed one
  /// MEMORY_AND_DISK cache to disk and return true, or return false when
  /// nothing is left to evict. \p BytesNeeded is the failing request.
  using PressureHandler = std::function<bool(uint64_t BytesNeeded)>;
  void setPressureHandler(PressureHandler Fn) {
    OnPressure = std::move(Fn);
  }

  /// Called after each recovery step (emergency GC, pressure eviction) when
  /// RuntimeConfig::VerifyHeapAfterRecovery is on. The hook lives above the
  /// heap (it runs gc::verifyHeap, which this library cannot link).
  using RecoveryHook = std::function<void(const char *What)>;
  void setRecoveryVerifier(RecoveryHook Fn) {
    RecoveryVerifier = std::move(Fn);
  }

  /// Installs the observability sinks (docs/observability.md): the staged
  /// OOM-fallback path emits instant events on the heap track (emergency
  /// GC, NVM-overflow retry, pressure eviction, OOM error), stamped with
  /// the simulated clock. Either may be null. Scalar heap.* counters are
  /// synced from HeapStats by Runtime::publishMetrics.
  void setTelemetry(support::MetricsRegistry *M, support::TraceLog *T) {
    Metrics = M;
    TraceSink = T;
  }

  //===--------------------------------------------------------------------===
  // Spaces
  //===--------------------------------------------------------------------===

  Space &eden() { return Eden; }
  Space &fromSpace() { return From; }
  Space &toSpace() { return To; }
  /// Old-generation DRAM component (empty-sized for UnifiedNvm layouts).
  Space &oldDram() { return OldDramSpace; }
  /// Old-generation NVM component (or the unified space for baselines).
  Space &oldNvm() { return OldNvmSpace; }
  Space &native() { return NativeSpace; }
  /// True when the old generation has distinct DRAM and NVM components.
  bool hasSplitOldGen() const {
    return Config.Layout == OldGenLayout::SplitDramNvm;
  }
  /// The old-generation spaces in address order (1 for unified layouts).
  std::vector<Space *> oldSpaces();

  /// One old-generation address range with the device the static layout
  /// backs it with. The dynamic-migration engine remaps pages inside
  /// these ranges between GCs and restores the canonical device at every
  /// major GC (docs/memsim.md).
  struct OldGenRegion {
    uint64_t Base = 0;
    uint64_t End = 0;
    memsim::Device Canonical = memsim::Device::DRAM;
  };

  /// The old generation's ranges with their canonical devices, in address
  /// order. Empty for UnifiedInterleaved (no per-range canonical device
  /// exists; the chunk map is probabilistic).
  std::vector<OldGenRegion> oldGenRegions() const;

  bool isYoung(uint64_t Addr) const {
    return Eden.contains(Addr) || From.contains(Addr) || To.contains(Addr);
  }
  bool isOld(uint64_t Addr) const {
    return OldDramSpace.contains(Addr) || OldNvmSpace.contains(Addr);
  }

  /// Exchanges the survivor semispaces after a scavenge.
  void swapSurvivors() { std::swap(From, To); }

  //===--------------------------------------------------------------------===
  // Allocation (mutator-facing; may trigger GC)
  //===--------------------------------------------------------------------===

  /// Allocates a Plain object with \p NumRefs leading reference slots and
  /// \p PayloadBytes raw bytes.
  ObjRef allocPlain(uint32_t NumRefs, uint32_t PayloadBytes);

  /// Allocates a reference array. If a pretenure tag is pending (§4.2.1's
  /// rdd_alloc wait state) and \p Length reaches the large-array threshold,
  /// the array goes directly into the tagged old-generation space.
  ObjRef allocRefArray(uint32_t Length);

  /// Allocates a primitive array of \p Length elements x \p ElemBytes.
  /// Like allocRefArray, a sufficiently large primitive array claims a
  /// pending rdd_alloc tag and is pretenured (serialized RDD caches are
  /// single large primitive arrays).
  ObjRef allocPrimArray(uint32_t Length, uint32_t ElemBytes);

  /// Allocates raw native (off-heap, NVM) storage; never collected.
  uint64_t allocNative(uint64_t Bytes);

  /// Allocates an OffHeapStub: the on-heap handle for a partition the
  /// off-heap cache tier serialized into a native region. The stub's
  /// payload holds {NativeAddr, Region}; Length holds the record count.
  /// The collector treats the stub as a leaf (numRefSlots() == 0), so the
  /// serialized bytes behind it never contribute trace or compaction work.
  ObjRef allocOffHeapStub(uint64_t NativeAddr, uint32_t Region,
                          uint32_t RecordCount, uint32_t RddId);

  /// Arms the rdd_alloc wait state: the next sufficiently large RefArray
  /// allocation is placed per \p Tag and stamped with \p RddId.
  void setPendingArrayTag(MemTag Tag, uint32_t RddId) {
    PendingTag = Tag;
    PendingRddId = RddId;
  }
  MemTag pendingArrayTag() const { return PendingTag; }

  /// NG2C-style allocation-site pretenuring oracle: when installed, a
  /// tagged array below the large-array threshold is still pretenured if
  /// the oracle says its RDD's allocation site is long-lived (fed by the
  /// AccessMonitor hotness profile). Null disables the heuristic.
  using PretenureOracle = std::function<bool(uint32_t RddId)>;
  void setPretenureOracle(PretenureOracle Fn) { Pretenure = std::move(Fn); }

  //===--------------------------------------------------------------------===
  // Mutator field access (accounted + write barrier)
  //===--------------------------------------------------------------------===

  ObjRef loadRef(ObjRef Obj, uint32_t Slot);
  void storeRef(ObjRef Obj, uint32_t Slot, ObjRef Value);

  /// Bulk ref-slot copy: the accounted equivalent of
  ///   for I in 0..Count: storeRef(Dst, DstFirst+I, loadRef(Src, SrcFirst+I))
  /// issued as two element-granular ranges (all reads, then all writes)
  /// plus the per-store write-barrier bookkeeping. Only valid when no
  /// allocation can intervene (the caller holds both objects stable);
  /// PartitionBuilder::finish uses it to flatten chunks.
  void copyRefRange(ObjRef Dst, uint32_t DstFirst, ObjRef Src,
                    uint32_t SrcFirst, uint32_t Count);
  int64_t loadI64(ObjRef Obj, uint32_t ByteOffset);
  void storeI64(ObjRef Obj, uint32_t ByteOffset, int64_t Value);
  double loadF64(ObjRef Obj, uint32_t ByteOffset);
  void storeF64(ObjRef Obj, uint32_t ByteOffset, double Value);

  /// Primitive-array element access (ElemBytes must be 8 for these).
  int64_t loadElemI64(ObjRef Array, uint32_t Index);
  void storeElemI64(ObjRef Array, uint32_t Index, int64_t Value);
  double loadElemF64(ObjRef Array, uint32_t Index);
  void storeElemF64(ObjRef Array, uint32_t Index, double Value);

  /// Bulk primitive-array element access: \p Count consecutive 8-byte
  /// elements starting at \p FirstIndex. Accounted as one element-granular
  /// range through the memsim fast path — the simulated cost is
  /// bit-identical to the per-element loop on either access path; only the
  /// bookkeeping is amortized.
  void loadElemsI64(ObjRef Array, uint32_t FirstIndex, uint32_t Count,
                    int64_t *Dst);
  void storeElemsI64(ObjRef Array, uint32_t FirstIndex, uint32_t Count,
                     const int64_t *Src);

  /// Unaccounted element read: the value only, touching neither the cache
  /// model nor the clock. For capture-phase workers reading stable data
  /// (broadcast blocks); the accounted read is re-issued at replay.
  double peekElemF64(ObjRef Array, uint32_t Index) const;

  /// Native-region access (accounted, no barrier).
  void nativeWrite(uint64_t Addr, const void *Src, uint64_t Bytes);
  void nativeRead(uint64_t Addr, void *Dst, uint64_t Bytes);

  /// Bulk native-region access accounted as \p Count records of
  /// \p RecordBytes each (the cost of the equivalent per-record loop),
  /// moving the Count * RecordBytes payload in one memcpy.
  void nativeWriteRecords(uint64_t Addr, const void *Src, uint64_t Count,
                          uint64_t RecordBytes);
  void nativeReadRecords(uint64_t Addr, void *Dst, uint64_t Count,
                         uint64_t RecordBytes);

  uint32_t arrayLength(ObjRef Obj) const {
    return header(Obj.addr())->Length;
  }
  uint32_t plainPayloadOffset(ObjRef Obj) const {
    return sizeof(ObjectHeader) + header(Obj.addr())->Aux * RefSlotBytes;
  }

  /// OffHeapStub payload access (accounted). The record count rides in the
  /// header's Length field and is read unaccounted, like arrayLength.
  uint64_t stubNativeAddr(ObjRef Stub);
  uint32_t stubRegion(ObjRef Stub);
  uint32_t stubRecordCount(ObjRef Stub) const {
    assert(header(Stub.addr())->kind() == ObjectKind::OffHeapStub);
    return header(Stub.addr())->Length;
  }
  /// Retargets a stub, e.g. to offheap::NoAddress when its region is
  /// evicted to disk. No write barrier: the payload holds no references.
  void setStubNativeAddr(ObjRef Stub, uint64_t NativeAddr);

  //===--------------------------------------------------------------------===
  // Roots
  //===--------------------------------------------------------------------===

  /// Registers a long-lived root slot (persisted RDDs); returns its id.
  size_t addPersistentRoot(ObjRef R);
  void removePersistentRoot(size_t Id);
  ObjRef persistentRoot(size_t Id) const { return PersistentRoots[Id]; }
  void setPersistentRoot(size_t Id, ObjRef R) { PersistentRoots[Id] = R; }

  /// Applies \p Fn to every root slot (stack handles + persistent roots);
  /// the collector uses this to trace and to fix up moved references.
  void forEachRoot(const std::function<void(ObjRef &)> &Fn);

  //===--------------------------------------------------------------------===
  // Runtime-internal interface (collector use; unaccounted unless noted)
  //===--------------------------------------------------------------------===

  ObjectHeader *header(uint64_t Addr) {
    return reinterpret_cast<ObjectHeader *>(&Buffer[Addr]);
  }
  const ObjectHeader *header(uint64_t Addr) const {
    return reinterpret_cast<const ObjectHeader *>(&Buffer[Addr]);
  }

  uint64_t refSlotAddr(uint64_t Obj, uint32_t Slot) const {
    return Obj + sizeof(ObjectHeader) +
           static_cast<uint64_t>(Slot) * RefSlotBytes;
  }

  ObjRef rawLoadRef(uint64_t Obj, uint32_t Slot) const {
    uint64_t V;
    std::memcpy(&V, &Buffer[refSlotAddr(Obj, Slot)], sizeof(V));
    return ObjRef(V);
  }
  void rawStoreRef(uint64_t Obj, uint32_t Slot, ObjRef R) {
    uint64_t V = R.addr();
    std::memcpy(&Buffer[refSlotAddr(Obj, Slot)], &V, sizeof(V));
  }

  uint8_t *rawBytes(uint64_t Addr) { return &Buffer[Addr]; }

  /// Charges device traffic for a GC-driven (or other explicit) access.
  void account(uint64_t Addr, uint32_t Bytes, bool IsWrite) {
    Mem.onAccess(Addr, Bytes, IsWrite);
  }

  /// Range form of account(): one bulk charge for a traversal of
  /// [Addr, Addr+Bytes) in \p ElemBytes-sized steps (0 = a single access
  /// spanning the range). See HybridMemory::onAccessRange.
  void accountRange(uint64_t Addr, uint64_t Bytes, bool IsWrite,
                    uint64_t ElemBytes = 0) {
    Mem.onAccessRange(Addr, Bytes, IsWrite, ElemBytes);
  }

  /// Allocates \p Bytes in the old generation honoring \p Tag; applies the
  /// Panthera card-padding rule when \p IsRddArray. Returns 0 when full.
  /// Never triggers a collection (GC promotion path uses this).
  uint64_t allocateInOld(uint64_t Bytes, MemTag Tag, bool IsRddArray);

  /// Writes a dead filler object over [Addr, Addr+Bytes) and records its
  /// start so the space stays walkable. The parallel scavenge uses this to
  /// retire promotion-buffer (PLAB) remainders; no waste stat is charged
  /// here -- callers account the waste to the right counter.
  void writeFillerObject(uint64_t Addr, uint64_t Bytes);

  /// Walks all objects in [Start, End) in address order.
  void walkObjects(uint64_t Start, uint64_t End,
                   const std::function<void(uint64_t)> &Fn);

  /// First object whose byte range intersects card \p CardIdx of \p S,
  /// or 0 when the card is past the space's allocation frontier.
  uint64_t firstObjectIntersectingCard(Space &S, size_t CardIdx);

  bool inGc() const { return InGcFlag; }
  void setInGc(bool V) { InGcFlag = V; }

  //===--------------------------------------------------------------------===
  // Incremental-marking hooks (docs/gc_pause.md)
  //===--------------------------------------------------------------------===

  /// SATB (snapshot-at-the-beginning) recording: while active, storeRef
  /// and copyRefRange append every overwritten non-null reference to the
  /// SATB buffer before the raw store, preserving the marking snapshot.
  /// The mutator is single-threaded (the non-atomic HeapStats counters
  /// rely on the same invariant), so one unsynchronized buffer suffices.
  void setSatbActive(bool V) { SatbActive = V; }
  bool satbActive() const { return SatbActive; }
  std::vector<uint64_t> &satbBuffer() { return Satb; }

  /// Allocate-black: while a marking cycle is active every new object is
  /// born marked, so objects allocated mid-cycle are never freed by the
  /// cycle's compaction regardless of when they become reachable.
  void setAllocBlack(bool V) { AllocBlack = V; }

  /// Requests a full collection (the engine uses this after evicting a
  /// storage block so the freed space becomes allocatable).
  void requestMajorGc(const char *Reason) {
    if (Host && !InGcFlag)
      Host->collectMajor(Reason);
  }

private:
  friend class GcRoot;

  /// Initializes a header at \p Addr and zeroes the payload; charges the
  /// allocation-write traffic.
  void formatObject(uint64_t Addr, uint32_t SizeBytes, ObjectKind Kind,
                    uint32_t Aux, uint32_t Length, uint32_t RddId,
                    MemTag Tag);

  /// Narrows a 64-bit computed object size into the uint32 header field;
  /// throws a typed OutOfMemoryError when it does not fit.
  uint32_t checkedObjectSize(uint64_t Size64, const char *What);

  /// Allocates in eden, collecting when full. Returns the address.
  uint64_t allocateYoung(uint32_t Bytes);

  /// Last-resort staged fallback after the normal GC-and-retry path fails:
  /// emergency full GC -> DRAM<->NVM overflow retry -> pressure-callback
  /// cache eviction -> OutOfMemoryError. Returns a young-or-old address.
  uint64_t oomFallback(uint64_t Bytes, MemTag Tag, bool IsRddArray,
                       const char *What);

  /// Plugs [Addr, Addr+Bytes) with a filler object so spaces stay walkable.
  void insertFiller(uint64_t Addr, uint64_t Bytes);

  void writeBarrier(ObjRef Obj, uint64_t SlotAddr);

  HeapConfig Config;
  memsim::HybridMemory &Mem;
  CardTable Cards;
  HeapStats Stats;
  GcHost *Host = nullptr;
  FaultInjector *Faults = nullptr;
  PressureHandler OnPressure;
  RecoveryHook RecoveryVerifier;
  support::MetricsRegistry *Metrics = nullptr;
  support::TraceLog *TraceSink = nullptr;
  bool InPressureHandler = false; ///< Re-entrancy guard for stage 3.

  std::vector<uint8_t> Buffer;
  Space Eden, From, To;
  Space OldDramSpace, OldNvmSpace;
  Space NativeSpace;

  MemTag PendingTag = MemTag::None;
  uint32_t PendingRddId = 0;
  bool InGcFlag = false;
  bool SatbActive = false;
  bool AllocBlack = false;
  std::vector<uint64_t> Satb;
  PretenureOracle Pretenure;

  std::vector<ObjRef> RootStack;
  std::vector<ObjRef> PersistentRoots;
  std::vector<size_t> FreePersistentSlots;
};

inline GcRoot::GcRoot(Heap &H, ObjRef Initial) : H(H) {
  Index = H.RootStack.size();
  H.RootStack.push_back(Initial);
}

inline GcRoot::~GcRoot() {
  assert(Index == H.RootStack.size() - 1 && "GcRoots must nest LIFO");
  H.RootStack.pop_back();
}

inline ObjRef GcRoot::get() const { return H.RootStack[Index]; }
inline void GcRoot::set(ObjRef R) { H.RootStack[Index] = R; }

} // namespace heap
} // namespace panthera

#endif // PANTHERA_HEAP_HEAP_H
