//===- heap/ObjectModel.h - Object headers and references -------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The managed object model. Every heap object starts with an
/// ObjectHeader; the payload layout depends on the object kind:
///
///   Plain:     Aux leading 8-byte reference slots, then raw payload bytes.
///   RefArray:  Length 8-byte reference slots.
///   PrimArray: Length elements of Aux bytes each, no references.
///
/// The header carries the paper's two MEMORY_BITS (§4.1) in its flag byte,
/// a survivor age for tenuring, a mark bit for the major GC, the owning RDD
/// id used by dynamic migration (§4.2.2), a forwarding address used while
/// objects move, and a write counter used only by the Kingsguard-Writes
/// baseline.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_HEAP_OBJECTMODEL_H
#define PANTHERA_HEAP_OBJECTMODEL_H

#include "support/MemTag.h"

#include <cassert>
#include <cstdint>

namespace panthera {
namespace heap {

/// Shape of a heap object's payload.
enum class ObjectKind : uint8_t {
  Plain = 0,     ///< Aux ref slots followed by raw payload bytes.
  RefArray = 1,  ///< Length reference slots.
  PrimArray = 2, ///< Length elements of Aux bytes each.
  OffHeapStub = 3 ///< Off-heap cache handle (docs/offheap.md): a 16-byte
                  ///< raw payload {native address, region id} with Length
                  ///< holding the record count. Carries no references, so
                  ///< the collector treats it as a leaf -- the serialized
                  ///< partition behind it is never traced or compacted.
};

/// A reference to a managed object: its address in the simulated physical
/// address space. Address 0 is never allocated and acts as null.
class ObjRef {
public:
  ObjRef() : Addr(0) {}
  explicit ObjRef(uint64_t Addr) : Addr(Addr) {}

  uint64_t addr() const { return Addr; }
  bool isNull() const { return Addr == 0; }
  explicit operator bool() const { return Addr != 0; }

  friend bool operator==(ObjRef A, ObjRef B) { return A.Addr == B.Addr; }
  friend bool operator!=(ObjRef A, ObjRef B) { return A.Addr != B.Addr; }

private:
  uint64_t Addr;
};

/// Header preceding every object's payload. 32 bytes, 8-byte aligned.
struct ObjectHeader {
  // Flag bits.
  static constexpr uint8_t MemoryBitsMask = 0x3; ///< §4.1 MEMORY_BITS.
  static constexpr uint8_t MarkBit = 0x4;        ///< Major-GC mark.

  uint32_t SizeBytes; ///< Total size including this header, 8-aligned.
  uint8_t Kind;       ///< ObjectKind.
  uint8_t Flags;      ///< MEMORY_BITS | mark.
  uint8_t Age;        ///< Minor GCs survived (tenuring clock).
  uint8_t Aux;        ///< Plain: #ref slots. PrimArray: element bytes.
  uint32_t Length;    ///< Arrays: element count. Plain: payload bytes.
  uint32_t RddId;     ///< Owning RDD for monitoring/migration; 0 = none.
  uint64_t Forward;   ///< Forwarding address during GC; 0 = not forwarded.
  uint32_t WriteCount; ///< Kingsguard-Writes: stores observed this window.
  uint32_t Reserved;

  ObjectKind kind() const { return static_cast<ObjectKind>(Kind); }

  MemTag memTag() const {
    return static_cast<MemTag>(Flags & MemoryBitsMask);
  }
  void setMemTag(MemTag T) {
    Flags = static_cast<uint8_t>((Flags & ~MemoryBitsMask) |
                                 static_cast<uint8_t>(T));
  }

  bool isMarked() const { return Flags & MarkBit; }
  void setMarked(bool M) {
    Flags = M ? (Flags | MarkBit) : (Flags & ~MarkBit);
  }

  bool isForwarded() const { return Forward != 0; }

  /// Number of leading reference slots to trace. Every trace, evacuation,
  /// and verification path derives its scan work from this, which is what
  /// makes OffHeapStub's leaf contract a single line: zero ref slots means
  /// the collector copies the stub by SizeBytes and never looks behind it.
  uint32_t numRefSlots() const {
    switch (kind()) {
    case ObjectKind::Plain:
      return Aux;
    case ObjectKind::RefArray:
      return Length;
    case ObjectKind::PrimArray:
    case ObjectKind::OffHeapStub:
      return 0;
    }
    return 0;
  }
};

static_assert(sizeof(ObjectHeader) == 32, "header layout must stay compact");

constexpr uint32_t RefSlotBytes = 8;

/// Largest object size the uint32 SizeBytes header field can represent,
/// kept 8-aligned. Allocation paths must reject anything larger before the
/// value is narrowed into a header (a wrapped small size would corrupt
/// linear space walks).
constexpr uint64_t MaxObjectBytes = UINT32_MAX & ~static_cast<uint64_t>(7);

/// Size in bytes of a Plain object with \p NumRefs refs and \p PayloadBytes
/// raw bytes, rounded to 8. Computed in 64 bits: the result can exceed the
/// uint32 header field for adversarial inputs and must be range-checked by
/// the caller (Heap::alloc* throws a typed allocation error).
inline uint64_t plainObjectSize(uint32_t NumRefs, uint32_t PayloadBytes) {
  uint64_t Raw = sizeof(ObjectHeader) +
                 static_cast<uint64_t>(NumRefs) * RefSlotBytes + PayloadBytes;
  return (Raw + 7) & ~static_cast<uint64_t>(7);
}

inline uint64_t refArraySize(uint32_t Length) {
  return sizeof(ObjectHeader) + static_cast<uint64_t>(Length) * RefSlotBytes;
}

inline uint64_t primArraySize(uint32_t Length, uint32_t ElemBytes) {
  uint64_t Raw =
      sizeof(ObjectHeader) + static_cast<uint64_t>(Length) * ElemBytes;
  return (Raw + 7) & ~static_cast<uint64_t>(7);
}

/// OffHeapStub payload: 8-byte native address + 4-byte region id + 4 bytes
/// of padding. Fixed-size, so every stub is sizeof(ObjectHeader) + 16.
constexpr uint32_t OffHeapStubPayloadBytes = 16;

inline uint64_t offHeapStubSize() {
  return sizeof(ObjectHeader) + OffHeapStubPayloadBytes;
}

} // namespace heap
} // namespace panthera

#endif // PANTHERA_HEAP_OBJECTMODEL_H
