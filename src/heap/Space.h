//===- heap/Space.h - Bump-allocated heap space -----------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A contiguous bump-allocated region of the simulated address space.
/// Eden, the two survivor semispaces, the old-generation components, and
/// native memory are all Spaces. Objects within [base, top) are contiguous
/// (fillers plug any alignment padding), so a space can be walked linearly
/// by object headers.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_HEAP_SPACE_H
#define PANTHERA_HEAP_SPACE_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace panthera {
namespace heap {

/// A bump-pointer region.
class Space {
public:
  Space() = default;
  Space(std::string Name, uint64_t Base, uint64_t Size)
      : Name(std::move(Name)), Base(Base), End(Base + Size), Top(Base) {}

  const std::string &name() const { return Name; }
  uint64_t base() const { return Base; }
  uint64_t end() const { return End; }
  uint64_t top() const { return Top; }
  uint64_t sizeBytes() const { return End - Base; }
  uint64_t usedBytes() const { return Top - Base; }
  uint64_t freeBytes() const { return End - Top; }

  bool contains(uint64_t Addr) const { return Addr >= Base && Addr < End; }

  /// Bump-allocates \p Bytes (caller guarantees 8-alignment); returns 0 when
  /// the space cannot fit the request. The comparison is phrased against the
  /// remaining room (never `Top + Bytes`, which wraps for huge \p Bytes and
  /// would falsely succeed, handing out addresses beyond the space).
  uint64_t allocate(uint64_t Bytes) {
    assert((Bytes & 7) == 0 && "allocation size must be 8-aligned");
    if (Bytes > End - Top)
      return 0;
    uint64_t Addr = Top;
    Top += Bytes;
    return Addr;
  }

  /// Empties the space (GC evacuation / compaction rebuild).
  void reset() { Top = Base; }

  /// Sets the bump pointer directly (compaction installs the new top).
  /// Checked in every build type: a top outside [base, end] means the
  /// compaction plan is corrupt, and the heap cannot be unwound safely.
  void setTop(uint64_t NewTop) {
    if (NewTop < Base || NewTop > End) {
      std::fprintf(stderr,
                   "panthera: space '%s': new top 0x%llx outside "
                   "[0x%llx, 0x%llx]\n",
                   Name.c_str(), static_cast<unsigned long long>(NewTop),
                   static_cast<unsigned long long>(Base),
                   static_cast<unsigned long long>(End));
      std::abort();
    }
    Top = NewTop;
  }

private:
  std::string Name;
  uint64_t Base = 0;
  uint64_t End = 0;
  uint64_t Top = 0;
};

} // namespace heap
} // namespace panthera

#endif // PANTHERA_HEAP_SPACE_H
