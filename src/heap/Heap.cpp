//===- heap/Heap.cpp - The managed heap over hybrid memory ---------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "heap/Heap.h"

#include "support/Errors.h"
#include "support/FaultInjector.h"
#include "support/TraceLog.h"

#include <cstdio>

using namespace panthera;
using namespace panthera::heap;
using memsim::Device;

GcHost::~GcHost() = default;

namespace {
/// Restores a bool flag on scope exit (exception-safe re-entrancy guard).
struct FlagScope {
  bool &Flag;
  bool Saved;
  explicit FlagScope(bool &Flag) : Flag(Flag), Saved(Flag) { Flag = true; }
  ~FlagScope() { Flag = Saved; }
};
} // namespace

Heap::Heap(const HeapConfig &Config, memsim::HybridMemory &Mem)
    : Config(Config), Mem(Mem), Cards(Mem.map().totalBytes()) {
  uint64_t EdenBytes = Config.edenBytes();
  uint64_t SurvivorBytes = Config.survivorBytes();
  uint64_t OldBytes = Config.HeapBytes - EdenBytes - 2 * SurvivorBytes;
  OldBytes = HeapConfig::alignPage(OldBytes);

  uint64_t OldDramBytes = 0;
  uint64_t OldNvmBytes = OldBytes;
  if (Config.Layout == OldGenLayout::SplitDramNvm) {
    OldDramBytes = HeapConfig::alignPage(Config.oldDramBytes());
    if (OldDramBytes > OldBytes)
      OldDramBytes = OldBytes;
    OldNvmBytes = OldBytes - OldDramBytes;
  }

  // Leave page zero unused so address 0 is a valid null reference.
  uint64_t Cursor = 4096;
  Eden = Space("eden", Cursor, EdenBytes);
  Cursor += EdenBytes;
  From = Space("from", Cursor, SurvivorBytes);
  Cursor += SurvivorBytes;
  To = Space("to", Cursor, SurvivorBytes);
  Cursor += SurvivorBytes;
  OldDramSpace = Space("old-dram", Cursor, OldDramBytes);
  Cursor += OldDramBytes;
  OldNvmSpace = Space("old-nvm", Cursor, OldNvmBytes);
  Cursor += OldNvmBytes;
  NativeSpace = Space("native", Cursor, Config.NativeBytes);
  Cursor += Config.NativeBytes;

  uint64_t Total = Mem.map().totalBytes();
  if (Cursor > Total)
    throw EngineError("heap misconfiguration: simulated memory smaller "
                      "than configured heap");
  Buffer.assign(Total, 0);

  // Back each range with its device. The nursery is always DRAM (§4.1).
  memsim::AddressMap &Map = Mem.map();
  Map.setRange(Eden.base(), To.end(), Device::DRAM);
  switch (Config.Layout) {
  case OldGenLayout::SplitDramNvm:
    Map.setRange(OldDramSpace.base(), OldDramSpace.end(), Device::DRAM);
    Map.setRange(OldNvmSpace.base(), OldNvmSpace.end(), Device::NVM);
    break;
  case OldGenLayout::UnifiedDram:
    Map.setRange(OldNvmSpace.base(), OldNvmSpace.end(), Device::DRAM);
    break;
  case OldGenLayout::UnifiedNvm:
    Map.setRange(OldNvmSpace.base(), OldNvmSpace.end(), Device::NVM);
    break;
  case OldGenLayout::UnifiedInterleaved:
    Map.interleaveRange(OldNvmSpace.base(), OldNvmSpace.end(),
                        Config.InterleaveChunkBytes, Config.DramRatio,
                        Config.InterleaveSeed);
    break;
  }
  Map.setRange(NativeSpace.base(), NativeSpace.end(), Device::NVM);
}

std::vector<Heap::OldGenRegion> Heap::oldGenRegions() const {
  std::vector<OldGenRegion> Result;
  switch (Config.Layout) {
  case OldGenLayout::SplitDramNvm:
    if (OldDramSpace.sizeBytes() > 0)
      Result.push_back(
          {OldDramSpace.base(), OldDramSpace.end(), Device::DRAM});
    Result.push_back({OldNvmSpace.base(), OldNvmSpace.end(), Device::NVM});
    break;
  case OldGenLayout::UnifiedDram:
    Result.push_back({OldNvmSpace.base(), OldNvmSpace.end(), Device::DRAM});
    break;
  case OldGenLayout::UnifiedNvm:
    Result.push_back({OldNvmSpace.base(), OldNvmSpace.end(), Device::NVM});
    break;
  case OldGenLayout::UnifiedInterleaved:
    break;
  }
  return Result;
}

std::vector<Space *> Heap::oldSpaces() {
  std::vector<Space *> Result;
  if (OldDramSpace.sizeBytes() > 0)
    Result.push_back(&OldDramSpace);
  Result.push_back(&OldNvmSpace);
  return Result;
}

//===----------------------------------------------------------------------===
// Allocation
//===----------------------------------------------------------------------===

void Heap::formatObject(uint64_t Addr, uint32_t SizeBytes, ObjectKind Kind,
                        uint32_t Aux, uint32_t Length, uint32_t RddId,
                        MemTag Tag) {
  std::memset(&Buffer[Addr], 0, SizeBytes);
  ObjectHeader *H = header(Addr);
  H->SizeBytes = SizeBytes;
  H->Kind = static_cast<uint8_t>(Kind);
  H->Aux = static_cast<uint8_t>(Aux);
  H->Length = Length;
  H->RddId = RddId;
  H->setMemTag(Tag);
  // Allocate-black: objects born during an incremental marking cycle are
  // live by definition for that cycle (fillers stay unmarked -- they are
  // reclaimed at compaction like any dead object).
  if (AllocBlack)
    H->setMarked(true);
  ++Stats.ObjectsAllocated;
  Stats.BytesAllocated += SizeBytes;
  // Zero-initialization traffic (TLAB zeroing in a real JVM).
  Mem.onAccess(Addr, SizeBytes, /*IsWrite=*/true);
  Mem.addCpuWorkNs(Config.Tuning.AllocCpuNs);
}

uint64_t Heap::allocateYoung(uint32_t Bytes) {
  assert(!InGcFlag && "collector must not allocate through the young path");
  if (Faults && Faults->shouldFail(FaultSite::Allocation)) {
    ++Stats.OomErrorsThrown;
    throw OutOfMemoryError("injected allocation failure");
  }
  uint64_t Addr = Eden.allocate(Bytes);
  if (Addr)
    return Addr;
  if (Host) {
    try {
      Host->collectMinor("eden full");
      Addr = Eden.allocate(Bytes);
      if (Addr)
        return Addr;
    } catch (const OutOfMemoryError &) {
      // The collection itself found no room (survivor headroom or
      // compaction overflow). The heap is untouched; the staged fallback
      // below can still shed caches before giving up.
    }
  }
  // Object larger than eden: place it directly in the old generation.
  Addr = allocateInOld(Bytes, MemTag::None, /*IsRddArray=*/false);
  if (!Addr && Host) {
    try {
      Host->collectMajor("old gen full on young overflow");
    } catch (const OutOfMemoryError &) {
    }
    Addr = allocateInOld(Bytes, MemTag::None, /*IsRddArray=*/false);
  }
  if (!Addr)
    Addr = oomFallback(Bytes, MemTag::None, /*IsRddArray=*/false,
                       "allocation does not fit in eden or the old "
                       "generation");
  return Addr;
}

uint64_t Heap::oomFallback(uint64_t Bytes, MemTag Tag, bool IsRddArray,
                           const char *What) {
  // After a full collection (or an eviction-driven one) both eden and the
  // old generation may have room again; prefer eden for young-sized
  // requests so survivor-space semantics stay normal.
  auto Retry = [&]() -> uint64_t {
    uint64_t A = Eden.allocate(Bytes);
    if (!A)
      A = allocateInOld(Bytes, Tag, IsRddArray);
    return A;
  };

  // Stage 1: emergency full GC. (Stage 2 -- old-gen DRAM<->NVM overflow
  // placement -- is inherent in allocateInOld's primary/fallback search.)
  if (Host && !InGcFlag) {
    ++Stats.EmergencyGcs;
    if (TraceSink)
      TraceSink
          ->instant(support::TraceTrack::Heap, "emergency gc", "heap",
                    Mem.totalTimeNs())
          .arg("bytes", Bytes)
          .arg("what", std::string(What));
    try {
      Host->collectMajor("emergency full gc: allocation failure");
      if (RecoveryVerifier)
        RecoveryVerifier("emergency full gc");
      if (uint64_t Addr = Retry())
        return Addr;
    } catch (const OutOfMemoryError &) {
      // Even a full compaction cannot fit the live set; eviction below
      // is the only stage that can shrink it.
    }
  }

  // Stage 3: ask the engine to shed MEMORY_AND_DISK caches to disk, one
  // LRU victim at a time, collecting after each so the space is reusable.
  // The handler itself streams (and allocates); the guard keeps a nested
  // allocation failure from recursing back into eviction.
  if (OnPressure && !InPressureHandler) {
    FlagScope Guard(InPressureHandler);
    while (OnPressure(Bytes)) {
      ++Stats.PressureEvictions;
      if (TraceSink)
        TraceSink
            ->instant(support::TraceTrack::Heap, "pressure eviction", "heap",
                      Mem.totalTimeNs())
            .arg("bytes", Bytes);
      try {
        if (Host && !InGcFlag)
          Host->collectMajor("memory pressure eviction");
      } catch (const OutOfMemoryError &) {
        continue; // evict further before retrying the collection
      }
      if (RecoveryVerifier)
        RecoveryVerifier("pressure eviction");
      if (uint64_t Addr = Retry())
        return Addr;
    }
  }

  ++Stats.OomErrorsThrown;
  if (TraceSink)
    TraceSink
        ->instant(support::TraceTrack::Heap, "oom error", "heap",
                  Mem.totalTimeNs())
        .arg("bytes", Bytes)
        .arg("what", std::string(What));
  throw OutOfMemoryError(What);
}

void Heap::writeFillerObject(uint64_t Addr, uint64_t Bytes) {
  assert(Bytes >= sizeof(ObjectHeader) && (Bytes & 7) == 0 &&
         "filler must hold a header");
  std::memset(&Buffer[Addr], 0, sizeof(ObjectHeader));
  ObjectHeader *H = header(Addr);
  H->SizeBytes = static_cast<uint32_t>(Bytes);
  H->Kind = static_cast<uint8_t>(ObjectKind::PrimArray);
  H->Aux = 1;
  H->Length = static_cast<uint32_t>(Bytes - sizeof(ObjectHeader));
  Cards.noteObjectStart(Addr);
}

void Heap::insertFiller(uint64_t Addr, uint64_t Bytes) {
  writeFillerObject(Addr, Bytes);
  Stats.CardPaddingWasteBytes += Bytes;
}

uint64_t Heap::allocateInOld(uint64_t Bytes, MemTag Tag, bool IsRddArray) {
  Space *Primary;
  Space *Fallback = nullptr;
  if (!hasSplitOldGen()) {
    Primary = &OldNvmSpace; // the unified old space
  } else if (Tag == MemTag::Dram) {
    Primary = &OldDramSpace;
    Fallback = &OldNvmSpace;
  } else {
    Primary = &OldNvmSpace;
    Fallback = &OldDramSpace;
  }

  bool Pad = IsRddArray && Config.Tuning.CardPadding;
  for (Space *S : {Primary, Fallback}) {
    if (!S || S->sizeBytes() == 0)
      continue;
    uint64_t Addr = S->allocate(Bytes);
    if (!Addr)
      continue;
    if (S == Fallback && Tag == MemTag::Dram) {
      ++Stats.PretenureDramFallbacks;
      // §4.1 overflow placement: DRAM-tagged data lands in NVM because
      // the DRAM component is full. Always on a serial path (mutator
      // allocation or the scavenge's serial plan phase).
      if (TraceSink)
        TraceSink
            ->instant(support::TraceTrack::Heap, "nvm overflow", "heap",
                      Mem.totalTimeNs())
            .arg("bytes", Bytes);
    }
    Cards.noteObjectStart(Addr);
    if (Pad) {
      // §4.2.3 card padding: align the end of the array region to a card
      // boundary so no later large array shares this array's last card.
      uint64_t Misalign = S->top() % CardTable::CardBytes;
      if (Misalign != 0) {
        uint64_t Gap = CardTable::CardBytes - Misalign;
        if (Gap < sizeof(ObjectHeader))
          Gap += CardTable::CardBytes;
        uint64_t FillerAddr = S->allocate(Gap);
        if (FillerAddr)
          insertFiller(FillerAddr, Gap);
      }
    }
    return Addr;
  }
  return 0;
}

/// Narrows a 64-bit object size into the uint32 header field, rejecting
/// anything too large to represent: a silently wrapped size would corrupt
/// every linear space walk that steps by SizeBytes.
uint32_t Heap::checkedObjectSize(uint64_t Size64, const char *What) {
  if (Size64 > MaxObjectBytes) {
    ++Stats.OomErrorsThrown;
    throw OutOfMemoryError(std::string(What) +
                           ": object size overflows the 32-bit header size "
                           "field");
  }
  return static_cast<uint32_t>(Size64);
}

ObjRef Heap::allocPlain(uint32_t NumRefs, uint32_t PayloadBytes) {
  assert(NumRefs <= 255 && "Plain objects carry at most 255 ref slots");
  if (Host && !InGcFlag)
    Host->allocationSafepoint();
  uint32_t Size =
      checkedObjectSize(plainObjectSize(NumRefs, PayloadBytes), "allocPlain");
  uint64_t Addr = allocateYoung(Size);
  formatObject(Addr, Size, ObjectKind::Plain, NumRefs,
               NumRefs * RefSlotBytes + PayloadBytes, /*RddId=*/0,
               MemTag::None);
  return ObjRef(Addr);
}

ObjRef Heap::allocRefArray(uint32_t Length) {
  if (Host && !InGcFlag)
    Host->allocationSafepoint();
  uint32_t Size = checkedObjectSize(refArraySize(Length), "allocRefArray");
  MemTag Tag = MemTag::None;
  uint32_t RddId = 0;
  // §4.2.1: a pending rdd_alloc tag claims the next large array. The
  // NG2C-style oracle extends the claim to smaller tagged arrays whose
  // allocation site (RDD id) the hotness profile says is long-lived.
  bool BySite = Length < Config.Tuning.LargeArrayElems && Pretenure &&
                PendingTag != MemTag::None && Pretenure(PendingRddId);
  if (PendingTag != MemTag::None &&
      (Length >= Config.Tuning.LargeArrayElems || BySite)) {
    Tag = PendingTag;
    RddId = PendingRddId;
    PendingTag = MemTag::None;
    PendingRddId = 0;
    uint64_t Addr = allocateInOld(Size, Tag, /*IsRddArray=*/true);
    if (!Addr && Host && !InGcFlag) {
      Host->collectMajor("old gen full on pretenured array");
      Addr = allocateInOld(Size, Tag, /*IsRddArray=*/true);
    }
    if (Addr) {
      ++Stats.ArraysPretenured;
      if (BySite)
        ++Stats.ArraysOraclePretenured;
      formatObject(Addr, Size, ObjectKind::RefArray, 0, Length, RddId, Tag);
      return ObjRef(Addr);
    }
    // Old generation exhausted: fall through to a young allocation; the
    // header keeps the tag so the GC promotes it eagerly later.
  }
  uint64_t Addr = allocateYoung(Size);
  formatObject(Addr, Size, ObjectKind::RefArray, 0, Length, RddId, Tag);
  return ObjRef(Addr);
}

ObjRef Heap::allocPrimArray(uint32_t Length, uint32_t ElemBytes) {
  assert(ElemBytes > 0 && ElemBytes <= 255 && "element size fits Aux");
  if (Host && !InGcFlag)
    Host->allocationSafepoint();
  uint32_t Size =
      checkedObjectSize(primArraySize(Length, ElemBytes), "allocPrimArray");
  // Serialized RDD caches are large primitive arrays; the rdd_alloc wait
  // state pretenures them exactly like reference arrays. No card padding
  // is needed: primitive arrays hold no references and are never scanned.
  bool BySite = Length < Config.Tuning.LargeArrayElems && Pretenure &&
                PendingTag != MemTag::None && Pretenure(PendingRddId);
  if (PendingTag != MemTag::None &&
      (Length >= Config.Tuning.LargeArrayElems || BySite)) {
    MemTag Tag = PendingTag;
    uint32_t RddId = PendingRddId;
    PendingTag = MemTag::None;
    PendingRddId = 0;
    uint64_t Addr = allocateInOld(Size, Tag, /*IsRddArray=*/false);
    if (!Addr && Host && !InGcFlag) {
      Host->collectMajor("old gen full on pretenured serialized array");
      Addr = allocateInOld(Size, Tag, /*IsRddArray=*/false);
    }
    if (Addr) {
      ++Stats.ArraysPretenured;
      if (BySite)
        ++Stats.ArraysOraclePretenured;
      formatObject(Addr, Size, ObjectKind::PrimArray, ElemBytes, Length,
                   RddId, Tag);
      return ObjRef(Addr);
    }
  }
  uint64_t Addr = allocateYoung(Size);
  formatObject(Addr, Size, ObjectKind::PrimArray, ElemBytes, Length,
               /*RddId=*/0, MemTag::None);
  return ObjRef(Addr);
}

uint64_t Heap::allocNative(uint64_t Bytes) {
  uint64_t Aligned = (Bytes + 7) & ~7ull;
  if (Aligned < Bytes) {
    // Rounding a near-UINT64_MAX request wrapped to a tiny size; the
    // request itself can obviously never be satisfied.
    ++Stats.OomErrorsThrown;
    throw OutOfMemoryError("native allocation size overflows");
  }
  uint64_t Addr = NativeSpace.allocate(Aligned);
  if (!Addr) {
    // The native region is never collected, so there is no staged fallback
    // to run -- but the failure is still a typed, catchable error.
    ++Stats.OomErrorsThrown;
    throw OutOfMemoryError("native (off-heap) region exhausted");
  }
  return Addr;
}

ObjRef Heap::allocOffHeapStub(uint64_t NativeAddr, uint32_t Region,
                              uint32_t RecordCount, uint32_t RddId) {
  if (Host && !InGcFlag)
    Host->allocationSafepoint();
  constexpr uint32_t Size = sizeof(ObjectHeader) + OffHeapStubPayloadBytes;
  uint64_t Addr = allocateYoung(Size);
  formatObject(Addr, Size, ObjectKind::OffHeapStub, /*Aux=*/0, RecordCount,
               RddId, MemTag::None);
  uint64_t Payload = Addr + sizeof(ObjectHeader);
  std::memcpy(&Buffer[Payload], &NativeAddr, sizeof(NativeAddr));
  std::memcpy(&Buffer[Payload + 8], &Region, sizeof(Region));
  Mem.onAccessRange(Payload, OffHeapStubPayloadBytes, /*IsWrite=*/true,
                    /*ElemBytes=*/8);
  return ObjRef(Addr);
}

uint64_t Heap::stubNativeAddr(ObjRef Stub) {
  assert(Stub && "null dereference");
  assert(header(Stub.addr())->kind() == ObjectKind::OffHeapStub);
  uint64_t Payload = Stub.addr() + sizeof(ObjectHeader);
  Mem.onAccess(Payload, 8, /*IsWrite=*/false);
  uint64_t V;
  std::memcpy(&V, &Buffer[Payload], sizeof(V));
  return V;
}

uint32_t Heap::stubRegion(ObjRef Stub) {
  assert(Stub && "null dereference");
  assert(header(Stub.addr())->kind() == ObjectKind::OffHeapStub);
  uint64_t Payload = Stub.addr() + sizeof(ObjectHeader);
  Mem.onAccess(Payload + 8, 4, /*IsWrite=*/false);
  uint32_t V;
  std::memcpy(&V, &Buffer[Payload + 8], sizeof(V));
  return V;
}

void Heap::setStubNativeAddr(ObjRef Stub, uint64_t NativeAddr) {
  assert(Stub && "null dereference");
  assert(header(Stub.addr())->kind() == ObjectKind::OffHeapStub);
  uint64_t Payload = Stub.addr() + sizeof(ObjectHeader);
  Mem.onAccess(Payload, 8, /*IsWrite=*/true);
  std::memcpy(&Buffer[Payload], &NativeAddr, sizeof(NativeAddr));
}

//===----------------------------------------------------------------------===
// Accessors
//===----------------------------------------------------------------------===

void Heap::writeBarrier(ObjRef Obj, uint64_t SlotAddr) {
  ++Stats.RefStores;
  Cards.dirtyCardFor(SlotAddr);
  Mem.addCpuWorkNs(Config.Tuning.BarrierCpuNs);
  if (Config.Tuning.KwWriteMonitoring) {
    ObjectHeader *H = header(Obj.addr());
    if (H->WriteCount != UINT32_MAX)
      ++H->WriteCount;
    Mem.onAccess(Obj.addr(), sizeof(uint32_t), /*IsWrite=*/true);
  }
}

ObjRef Heap::loadRef(ObjRef Obj, uint32_t Slot) {
  assert(Obj && "null dereference");
  assert(Slot < header(Obj.addr())->numRefSlots() && "ref slot out of range");
  uint64_t SlotAddr = refSlotAddr(Obj.addr(), Slot);
  Mem.onAccess(SlotAddr, RefSlotBytes, /*IsWrite=*/false);
  return rawLoadRef(Obj.addr(), Slot);
}

void Heap::storeRef(ObjRef Obj, uint32_t Slot, ObjRef Value) {
  assert(Obj && "null dereference");
  assert(Slot < header(Obj.addr())->numRefSlots() && "ref slot out of range");
  uint64_t SlotAddr = refSlotAddr(Obj.addr(), Slot);
  if (SatbActive) {
    // SATB barrier: log the overwritten reference before the store so the
    // marking snapshot stays reachable. The barrier's pre-read of the slot
    // is charged like any other load.
    Mem.onAccess(SlotAddr, RefSlotBytes, /*IsWrite=*/false);
    if (ObjRef Old = rawLoadRef(Obj.addr(), Slot))
      Satb.push_back(Old.addr());
  }
  Mem.onAccess(SlotAddr, RefSlotBytes, /*IsWrite=*/true);
  rawStoreRef(Obj.addr(), Slot, Value);
  writeBarrier(Obj, SlotAddr);
}

void Heap::copyRefRange(ObjRef Dst, uint32_t DstFirst, ObjRef Src,
                        uint32_t SrcFirst, uint32_t Count) {
  if (Count == 0)
    return;
  assert(Dst && Src && "null dereference");
  assert(SrcFirst + static_cast<uint64_t>(Count) <=
             header(Src.addr())->numRefSlots() &&
         "source ref range out of bounds");
  assert(DstFirst + static_cast<uint64_t>(Count) <=
             header(Dst.addr())->numRefSlots() &&
         "destination ref range out of bounds");
  uint64_t SrcAddr = refSlotAddr(Src.addr(), SrcFirst);
  uint64_t DstAddr = refSlotAddr(Dst.addr(), DstFirst);
  if (SatbActive) {
    // SATB barrier, range form: log every overwritten destination slot
    // before the memmove, charging the pre-reads as one element range.
    Mem.onAccessRange(DstAddr, Count * uint64_t(RefSlotBytes),
                      /*IsWrite=*/false, RefSlotBytes);
    for (uint32_t I = 0; I != Count; ++I)
      if (ObjRef Old = rawLoadRef(Dst.addr(), DstFirst + I))
        Satb.push_back(Old.addr());
  }
  Mem.onAccessRange(SrcAddr, Count * uint64_t(RefSlotBytes),
                    /*IsWrite=*/false, RefSlotBytes);
  Mem.onAccessRange(DstAddr, Count * uint64_t(RefSlotBytes),
                    /*IsWrite=*/true, RefSlotBytes);
  std::memmove(&Buffer[DstAddr], &Buffer[SrcAddr],
               Count * uint64_t(RefSlotBytes));
  // Per-store write-barrier bookkeeping, matching writeBarrier().
  for (uint32_t I = 0; I != Count; ++I) {
    ++Stats.RefStores;
    Cards.dirtyCardFor(DstAddr + I * uint64_t(RefSlotBytes));
    Mem.addCpuWorkNs(Config.Tuning.BarrierCpuNs);
  }
  if (Config.Tuning.KwWriteMonitoring) {
    ObjectHeader *Hdr = header(Dst.addr());
    for (uint32_t I = 0; I != Count; ++I) {
      if (Hdr->WriteCount != UINT32_MAX)
        ++Hdr->WriteCount;
      Mem.onAccess(Dst.addr(), sizeof(uint32_t), /*IsWrite=*/true);
    }
  }
}

int64_t Heap::loadI64(ObjRef Obj, uint32_t ByteOffset) {
  uint64_t Addr = Obj.addr() + plainPayloadOffset(Obj) + ByteOffset;
  Mem.onAccess(Addr, 8, /*IsWrite=*/false);
  int64_t V;
  std::memcpy(&V, &Buffer[Addr], sizeof(V));
  return V;
}

void Heap::storeI64(ObjRef Obj, uint32_t ByteOffset, int64_t Value) {
  uint64_t Addr = Obj.addr() + plainPayloadOffset(Obj) + ByteOffset;
  Mem.onAccess(Addr, 8, /*IsWrite=*/true);
  std::memcpy(&Buffer[Addr], &Value, sizeof(Value));
  if (Config.Tuning.KwWriteMonitoring) {
    ObjectHeader *H = header(Obj.addr());
    if (H->WriteCount != UINT32_MAX)
      ++H->WriteCount;
  }
}

double Heap::loadF64(ObjRef Obj, uint32_t ByteOffset) {
  uint64_t Addr = Obj.addr() + plainPayloadOffset(Obj) + ByteOffset;
  Mem.onAccess(Addr, 8, /*IsWrite=*/false);
  double V;
  std::memcpy(&V, &Buffer[Addr], sizeof(V));
  return V;
}

void Heap::storeF64(ObjRef Obj, uint32_t ByteOffset, double Value) {
  uint64_t Addr = Obj.addr() + plainPayloadOffset(Obj) + ByteOffset;
  Mem.onAccess(Addr, 8, /*IsWrite=*/true);
  std::memcpy(&Buffer[Addr], &Value, sizeof(Value));
}

int64_t Heap::loadElemI64(ObjRef Array, uint32_t Index) {
  assert(header(Array.addr())->kind() == ObjectKind::PrimArray &&
         header(Array.addr())->Aux == 8 && "not an 8-byte prim array");
  assert(Index < header(Array.addr())->Length && "index out of range");
  uint64_t Addr = Array.addr() + sizeof(ObjectHeader) + Index * 8ull;
  Mem.onAccess(Addr, 8, /*IsWrite=*/false);
  int64_t V;
  std::memcpy(&V, &Buffer[Addr], sizeof(V));
  return V;
}

void Heap::storeElemI64(ObjRef Array, uint32_t Index, int64_t Value) {
  assert(Index < header(Array.addr())->Length && "index out of range");
  uint64_t Addr = Array.addr() + sizeof(ObjectHeader) + Index * 8ull;
  Mem.onAccess(Addr, 8, /*IsWrite=*/true);
  std::memcpy(&Buffer[Addr], &Value, sizeof(Value));
}

double Heap::loadElemF64(ObjRef Array, uint32_t Index) {
  int64_t Bits = loadElemI64(Array, Index);
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

void Heap::loadElemsI64(ObjRef Array, uint32_t FirstIndex, uint32_t Count,
                        int64_t *Dst) {
  if (Count == 0)
    return;
  assert(header(Array.addr())->kind() == ObjectKind::PrimArray &&
         header(Array.addr())->Aux == 8 && "not an 8-byte prim array");
  assert(FirstIndex + static_cast<uint64_t>(Count) <=
             header(Array.addr())->Length &&
         "range out of bounds");
  uint64_t Addr = Array.addr() + sizeof(ObjectHeader) + FirstIndex * 8ull;
  Mem.onAccessRange(Addr, Count * 8ull, /*IsWrite=*/false, /*ElemBytes=*/8);
  std::memcpy(Dst, &Buffer[Addr], Count * 8ull);
}

void Heap::storeElemsI64(ObjRef Array, uint32_t FirstIndex, uint32_t Count,
                         const int64_t *Src) {
  if (Count == 0)
    return;
  assert(FirstIndex + static_cast<uint64_t>(Count) <=
             header(Array.addr())->Length &&
         "range out of bounds");
  uint64_t Addr = Array.addr() + sizeof(ObjectHeader) + FirstIndex * 8ull;
  Mem.onAccessRange(Addr, Count * 8ull, /*IsWrite=*/true, /*ElemBytes=*/8);
  std::memcpy(&Buffer[Addr], Src, Count * 8ull);
}

double Heap::peekElemF64(ObjRef Array, uint32_t Index) const {
  assert(header(Array.addr())->kind() == ObjectKind::PrimArray &&
         header(Array.addr())->Aux == 8 && "not an 8-byte prim array");
  assert(Index < header(Array.addr())->Length && "index out of range");
  uint64_t Addr = Array.addr() + sizeof(ObjectHeader) + Index * 8ull;
  double V;
  std::memcpy(&V, &Buffer[Addr], sizeof(V));
  return V;
}

void Heap::storeElemF64(ObjRef Array, uint32_t Index, double Value) {
  int64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  storeElemI64(Array, Index, Bits);
}

void Heap::nativeWrite(uint64_t Addr, const void *Src, uint64_t Bytes) {
  assert(NativeSpace.contains(Addr) && "native write outside native space");
  Mem.onAccess(Addr, static_cast<uint32_t>(Bytes), /*IsWrite=*/true);
  std::memcpy(&Buffer[Addr], Src, Bytes);
}

void Heap::nativeRead(uint64_t Addr, void *Dst, uint64_t Bytes) {
  assert(NativeSpace.contains(Addr) && "native read outside native space");
  Mem.onAccess(Addr, static_cast<uint32_t>(Bytes), /*IsWrite=*/false);
  std::memcpy(Dst, &Buffer[Addr], Bytes);
}

void Heap::nativeWriteRecords(uint64_t Addr, const void *Src, uint64_t Count,
                              uint64_t RecordBytes) {
  if (Count == 0)
    return;
  assert(NativeSpace.contains(Addr) && "native write outside native space");
  Mem.onAccessRange(Addr, Count * RecordBytes, /*IsWrite=*/true, RecordBytes);
  std::memcpy(&Buffer[Addr], Src, Count * RecordBytes);
}

void Heap::nativeReadRecords(uint64_t Addr, void *Dst, uint64_t Count,
                             uint64_t RecordBytes) {
  if (Count == 0)
    return;
  assert(NativeSpace.contains(Addr) && "native read outside native space");
  Mem.onAccessRange(Addr, Count * RecordBytes, /*IsWrite=*/false, RecordBytes);
  std::memcpy(Dst, &Buffer[Addr], Count * RecordBytes);
}

//===----------------------------------------------------------------------===
// Roots
//===----------------------------------------------------------------------===

size_t Heap::addPersistentRoot(ObjRef R) {
  if (!FreePersistentSlots.empty()) {
    size_t Id = FreePersistentSlots.back();
    FreePersistentSlots.pop_back();
    PersistentRoots[Id] = R;
    return Id;
  }
  PersistentRoots.push_back(R);
  return PersistentRoots.size() - 1;
}

void Heap::removePersistentRoot(size_t Id) {
  assert(Id < PersistentRoots.size() && "bad persistent root id");
  PersistentRoots[Id] = ObjRef();
  FreePersistentSlots.push_back(Id);
}

void Heap::forEachRoot(const std::function<void(ObjRef &)> &Fn) {
  for (ObjRef &R : RootStack)
    if (R)
      Fn(R);
  for (ObjRef &R : PersistentRoots)
    if (R)
      Fn(R);
}

//===----------------------------------------------------------------------===
// Space walking
//===----------------------------------------------------------------------===

void Heap::walkObjects(uint64_t Start, uint64_t End,
                       const std::function<void(uint64_t)> &Fn) {
  uint64_t Addr = Start;
  while (Addr < End) {
    uint32_t Size = header(Addr)->SizeBytes;
    assert(Size >= sizeof(ObjectHeader) && "corrupt object header");
    Fn(Addr);
    Addr += Size;
  }
}

uint64_t Heap::firstObjectIntersectingCard(Space &S, size_t CardIdx) {
  uint64_t CardLo = Cards.cardStart(CardIdx);
  uint64_t CardHi = CardLo + CardTable::CardBytes;
  if (CardLo >= S.top())
    return 0;

  // Anchor: the nearest known object start strictly before this card (the
  // covering object may begin in an earlier card); fall back to the space
  // base, from which every object is reachable by walking headers.
  uint64_t Anchor = S.base();
  size_t BaseCard = Cards.cardIndex(S.base());
  for (size_t C = CardIdx; C > BaseCard;) {
    --C;
    uint64_t A = Cards.firstObjectInCard(C);
    if (A != CardTable::NoObject && A < S.top()) {
      Anchor = A;
      break;
    }
  }

  uint64_t Addr = Anchor;
  while (Addr < S.top()) {
    uint32_t Size = header(Addr)->SizeBytes;
    if (Addr + Size > CardLo)
      return Addr < CardHi ? Addr : 0;
    Addr += Size;
  }
  return 0;
}
