//===- heap/HeapConfig.h - Heap sizing and GC tuning ------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the managed heap's layout over hybrid memory and the
/// collector's tunables. The defaults mirror the paper's evaluation setup:
/// nursery = 1/6 of the heap, entirely in DRAM (§5.2); old generation split
/// into a DRAM component sized DramRatio * heap - nursery and an NVM
/// component holding the rest (§4.1).
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_HEAP_HEAPCONFIG_H
#define PANTHERA_HEAP_HEAPCONFIG_H

#include "support/Units.h"

#include <cstdint>

namespace panthera {
namespace heap {

/// How the old generation is laid out over the two devices.
enum class OldGenLayout : uint8_t {
  /// Panthera / Kingsguard-style: a DRAM space plus an NVM space.
  SplitDramNvm,
  /// One space, all DRAM (the DRAM-only baseline).
  UnifiedDram,
  /// One space, all NVM (Kingsguard-Nursery).
  UnifiedNvm,
  /// One space over chunks mapped to DRAM with probability = DramRatio
  /// (the paper's Unmanaged baseline, §5.2).
  UnifiedInterleaved,
};

/// Collector tunables, including the §4.2.2/§4.2.3 optimizations whose
/// ablations the paper reports.
struct GcTuning {
  /// §4.2.2: move tagged survivors straight to their old-gen space during
  /// the first minor GC that sees them, instead of waiting out TenureAge.
  bool EagerPromotion = true;
  /// §4.2.3: pad RDD-array allocations so no two large arrays share a card.
  bool CardPadding = true;
  /// Minor GCs an untagged object must survive before tenuring.
  uint8_t TenureAge = 3;
  /// Trigger a major GC when old-gen occupancy crosses this fraction.
  double MajorGcOccupancy = 0.85;
  /// Arrays at least this long are "RDD arrays" for pretenuring (paper:
  /// one million elements; scaled 1024x like every size).
  uint32_t LargeArrayElems = ScaledLargeArrayThreshold;
  /// Kingsguard-Writes: count stores per object and place write-hot
  /// objects in DRAM. Off for every other policy.
  bool KwWriteMonitoring = false;
  /// KW: writes within one monitoring window that make an object hot.
  uint32_t KwHotWrites = 1;
  /// §4.2.2 dynamic migration: RDD method calls per major-GC window that
  /// make an NVM-resident RDD hot enough to migrate to DRAM. Calls are
  /// counted per task (partition), so the threshold covers several full
  /// scans of a 4-partition RDD.
  uint32_t MigrationHotCalls = 16;
  /// CPU cost charged per write barrier / allocation, in nanoseconds.
  double BarrierCpuNs = 0.5;
  double AllocCpuNs = 4.0;
  /// Incremental old-generation marking (docs/gc_pause.md): pause budget
  /// per mark step in microseconds. 0 keeps the stop-the-world collector
  /// byte-identical; nonzero splits major-GC marking into bounded steps
  /// interleaved with mutator execution on the simulated clock.
  uint32_t MaxPauseUs = 0;
  /// Allocations between incremental mark steps while a cycle is active.
  uint32_t IncStepAllocs = 64;
  /// Debugging: run the heap verifier after every collection and abort on
  /// the first violation.
  bool VerifyHeap = false;
};

/// Heap layout over the simulated physical memory.
struct HeapConfig {
  uint64_t HeapBytes = 64 * PaperGB;
  /// DRAM : total memory ratio (the paper's 1/4 and 1/3 configurations).
  double DramRatio = 1.0 / 3.0;
  /// Nursery fraction of the heap (the paper settles on 1/6).
  double NurseryFraction = 1.0 / 6.0;
  /// Eden fraction of the nursery; the two survivor spaces split the rest.
  double EdenFraction = 0.8;
  /// Off-heap native memory (OFF_HEAP storage), placed entirely in NVM.
  uint64_t NativeBytes = 16 * PaperGB;
  OldGenLayout Layout = OldGenLayout::SplitDramNvm;
  /// Unmanaged baseline: interleave chunk size (paper: 1 GB, scaled).
  uint64_t InterleaveChunkBytes = PaperGB;
  uint64_t InterleaveSeed = 42;
  GcTuning Tuning;

  uint64_t nurseryBytes() const {
    return alignPage(static_cast<uint64_t>(HeapBytes * NurseryFraction));
  }
  uint64_t edenBytes() const {
    return alignPage(static_cast<uint64_t>(nurseryBytes() * EdenFraction));
  }
  uint64_t survivorBytes() const {
    return alignPage((nurseryBytes() - edenBytes()) / 2);
  }
  uint64_t dramBytes() const {
    return alignPage(static_cast<uint64_t>(HeapBytes * DramRatio));
  }
  uint64_t oldBytes() const { return HeapBytes - nurseryBytes(); }
  /// DRAM left for the old generation once the nursery took its share.
  uint64_t oldDramBytes() const {
    uint64_t Dram = dramBytes();
    uint64_t Nursery = nurseryBytes();
    return Dram > Nursery ? Dram - Nursery : 0;
  }

  static uint64_t alignPage(uint64_t Bytes) {
    return (Bytes + 4095) & ~static_cast<uint64_t>(4095);
  }
};

} // namespace heap
} // namespace panthera

#endif // PANTHERA_HEAP_HEAPCONFIG_H
