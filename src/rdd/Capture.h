//===- rdd/Capture.h - Deterministic parallel stage capture -----*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's parallel execution strategy is *capture + replay* (see
/// docs/parallelism.md). For an action over a narrow, source-rooted
/// transformation chain, each partition's function chain is first executed
/// in parallel against a per-partition arena instead of the managed heap:
/// makeTuple() appends a record to the arena and hands the user function a
/// fake reference; key()/value() read the arena and count the accesses;
/// broadcast-block reads peek the (stage-stable) bytes and are recorded
/// for replay. No worker ever mutates the heap, the memory simulator, or
/// any other shared state, so this phase needs no synchronization at all
/// and is trivially deterministic.
///
/// The recorded sessions are then *replayed* serially in partition-index
/// order: every allocation, heap access, and CPU charge is re-issued
/// against the real heap in the exact order the arena recorded, and the
/// action's fold is applied in the recorded sink order. Results, GC
/// scheduling, and simulated time/energy are therefore bit-identical at
/// every thread count -- the thread pool only changes how fast the capture
/// phase runs in wall-clock terms.
///
/// A transformation that touches state the arena cannot model (payload
/// references, boxed buffers, the raw heap) throws CaptureAbort; the stage
/// then reruns on the ordinary serial path. Nothing observable happened
/// during the aborted capture, so the fallback is exact.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_RDD_CAPTURE_H
#define PANTHERA_RDD_CAPTURE_H

#include "heap/Heap.h"

#include <cstdint>
#include <vector>

namespace panthera {
namespace rdd {

/// Thrown by RddContext when a user function performs an operation the
/// capture arena cannot model. Carries no state: capture has no side
/// effects, so the stage simply reruns serially.
struct CaptureAbort {};

/// One partition's recorded execution.
class CaptureSession {
public:
  /// Fake references carry this bit; low bits index Allocs. Real heap
  /// addresses are far below this (the simulated address space is tiny).
  static constexpr uint64_t FakeBase = 1ull << 62;

  /// One tuple allocation, with the heap accesses made against it.
  struct Alloc {
    int64_t Key = 0;
    double Val = 0.0;
    uint32_t KeyReads = 0;
    uint32_t ValReads = 0;
  };

  /// A recorded (key, value) sink emission (collect actions).
  struct KV {
    int64_t Key;
    double Val;
  };

  /// A broadcast-block element read made by a user function. Recorded by
  /// index through the persistent-root table (not by address: replay can
  /// trigger GCs that move the block) and re-issued as an accounted read
  /// at replay.
  struct RootRead {
    size_t RootId;
    uint32_t Index;
  };

  bool Aborted = false;
  /// Per-record operator CPU to charge at replay, in simulated ns.
  double CpuNs = 0.0;
  /// Source records streamed (EngineStats::RecordsStreamed).
  uint64_t Records = 0;
  /// Tuple allocations in program order.
  std::vector<Alloc> Allocs;
  /// Broadcast element reads in stream order.
  std::vector<RootRead> RootReads;

  // Sink captures, by action kind (only the relevant one is filled).
  uint64_t SinkCount = 0;
  std::vector<double> SinkVals; ///< reduce: values in stream order.
  std::vector<KV> SinkRecs;     ///< collect: records in stream order.

  heap::ObjRef makeTuple(int64_t Key, double Val) {
    Allocs.push_back(Alloc{Key, Val, 0, 0});
    return heap::ObjRef(FakeBase | (Allocs.size() - 1));
  }

  static bool isFake(heap::ObjRef R) { return (R.addr() & FakeBase) != 0; }

  int64_t key(heap::ObjRef T) {
    Alloc &A = arena(T);
    ++A.KeyReads;
    return A.Key;
  }

  double value(heap::ObjRef T) {
    Alloc &A = arena(T);
    ++A.ValReads;
    return A.Val;
  }

private:
  Alloc &arena(heap::ObjRef T) {
    if (!isFake(T))
      throw CaptureAbort{};
    return Allocs[T.addr() & (FakeBase - 1)];
  }
};

/// The session the current thread is recording into, or null. Installed by
/// CaptureScope around each per-partition capture task; RddContext checks
/// it on every operation.
extern thread_local CaptureSession *ActiveCapture;

/// RAII install/restore of the thread's active capture session.
class CaptureScope {
public:
  explicit CaptureScope(CaptureSession *S) : Prev(ActiveCapture) {
    ActiveCapture = S;
  }
  ~CaptureScope() { ActiveCapture = Prev; }

  CaptureScope(const CaptureScope &) = delete;
  CaptureScope &operator=(const CaptureScope &) = delete;

private:
  CaptureSession *Prev;
};

} // namespace rdd
} // namespace panthera

#endif // PANTHERA_RDD_CAPTURE_H
