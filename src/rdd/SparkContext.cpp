//===- rdd/SparkContext.cpp - RDD scheduler and executor ------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rdd/Rdd.h"

#include "cluster/Cluster.h"
#include "offheap/OffHeapCache.h"
#include "rdd/PartitionBuilder.h"
#include "support/Errors.h"
#include "support/FaultInjector.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/TraceLog.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>

using namespace panthera;
using namespace panthera::rdd;
using heap::GcRoot;
using heap::ObjRef;

thread_local CaptureSession *panthera::rdd::ActiveCapture = nullptr;

const char *panthera::rdd::opKindName(OpKind K) {
  switch (K) {
  case OpKind::Source:
    return "source";
  case OpKind::Map:
    return "map";
  case OpKind::Filter:
    return "filter";
  case OpKind::FlatMap:
    return "flatMap";
  case OpKind::MapValues:
    return "mapValues";
  case OpKind::Union:
    return "union";
  case OpKind::GroupByKey:
    return "groupByKey";
  case OpKind::ReduceByKey:
    return "reduceByKey";
  case OpKind::Distinct:
    return "distinct";
  case OpKind::Join:
    return "join";
  case OpKind::Repartition:
    return "repartition";
  case OpKind::SortByKey:
    return "sortByKey";
  }
  return "?";
}

/// Shuffle partitioner: SplitMix64 finalizer over the key, mod partitions.
static uint32_t partitionOf(int64_t Key, uint32_t NumPartitions) {
  uint64_t Z = static_cast<uint64_t>(Key) + 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<uint32_t>((Z ^ (Z >> 31)) % NumPartitions);
}

//===----------------------------------------------------------------------===
// Rdd handle methods
//===----------------------------------------------------------------------===

Rdd Rdd::map(MapFn Fn) const {
  Ctx->recordCall(Node);
  Rdd R = Ctx->derive(OpKind::Map, {Node});
  R.node()->Map = std::move(Fn);
  return R;
}

Rdd Rdd::filter(FilterFn Fn) const {
  Ctx->recordCall(Node);
  Rdd R = Ctx->derive(OpKind::Filter, {Node});
  R.node()->Filter = std::move(Fn);
  return R;
}

Rdd Rdd::flatMap(FlatMapFn Fn) const {
  Ctx->recordCall(Node);
  Rdd R = Ctx->derive(OpKind::FlatMap, {Node});
  R.node()->FlatMap = std::move(Fn);
  return R;
}

Rdd Rdd::mapValues(ValueFn Fn) const {
  Ctx->recordCall(Node);
  Rdd R = Ctx->derive(OpKind::MapValues, {Node});
  R.node()->MapValue = std::move(Fn);
  return R;
}

Rdd Rdd::mapValuesWithKey(ValueKeyFn Fn) const {
  Ctx->recordCall(Node);
  Rdd R = Ctx->derive(OpKind::MapValues, {Node});
  R.node()->MapValueKey = std::move(Fn);
  return R;
}

Rdd Rdd::groupByKey() const {
  Ctx->recordCall(Node);
  return Ctx->derive(OpKind::GroupByKey, {Node});
}

Rdd Rdd::reduceByKey(CombineFn Fn) const {
  Ctx->recordCall(Node);
  Rdd R = Ctx->derive(OpKind::ReduceByKey, {Node});
  R.node()->Combine = std::move(Fn);
  return R;
}

Rdd Rdd::distinct() const {
  Ctx->recordCall(Node);
  return Ctx->derive(OpKind::Distinct, {Node});
}

Rdd Rdd::sortByKey() const {
  Ctx->recordCall(Node);
  return Ctx->derive(OpKind::SortByKey, {Node});
}

Rdd Rdd::sample(double Fraction, uint64_t Seed) const {
  Ctx->recordCall(Node);
  Rdd R = Ctx->derive(OpKind::Filter, {Node});
  R.node()->Filter = [Fraction, Seed](RddContext &C, ObjRef T) {
    // Deterministic Bernoulli draw from (key, seed).
    uint64_t Z = static_cast<uint64_t>(C.key(T)) * 0x9e3779b97f4a7c15ull +
                 Seed;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    Z ^= Z >> 31;
    return static_cast<double>(Z >> 11) * 0x1.0p-53 < Fraction;
  };
  return R;
}

Rdd Rdd::join(const Rdd &Right, JoinFn Fn) const {
  Ctx->recordCall(Node);
  Ctx->recordCall(Right.Node);
  RddRef Left = Node;
  // Joins match records per partition; both inputs must be co-partitioned
  // by hash, so anything else (arbitrary or range) gets an implicit
  // repartition stage.
  if (Left->PartitionedBy != Partitioning::Hash)
    Left = Ctx->derive(OpKind::Repartition, {Left}).node();
  RddRef R = Right.Node;
  if (R->PartitionedBy != Partitioning::Hash)
    R = Ctx->derive(OpKind::Repartition, {R}).node();
  Rdd J = Ctx->derive(OpKind::Join, {Left, R});
  J.node()->Join = std::move(Fn);
  return J;
}

Rdd Rdd::unionWith(const Rdd &Other) const {
  Ctx->recordCall(Node);
  Ctx->recordCall(Other.Node);
  return Ctx->derive(OpKind::Union, {Node, Other.Node});
}

Rdd Rdd::persistAs(const std::string &Var, StorageLevel Level) const {
  Ctx->persist(Node, Level, Var);
  return *this;
}

Rdd Rdd::named(const std::string &Var) const {
  Ctx->persist(Node, Node->Level, Var);
  Node->PersistRequested = false; // named-only: action materialization
  return *this;
}

void Rdd::unpersist() const { Ctx->unpersist(Node); }

void Rdd::checkpoint() const {
  Ctx->recordCall(Node);
  if (Node->Materialized && !Node->DiskParts.empty())
    return; // already checkpointed
  // Compute (or reuse) the data, write it to disk, then truncate the
  // lineage so upstream stages can never be re-run for this RDD.
  rdd::RddContext C(Ctx->heapRef());
  std::vector<std::vector<SourceRecord>> Parts(
      Ctx->config().NumPartitions);
  Ctx->prepare(Node, MemTag::None);
  for (uint32_t P = 0; P != Ctx->config().NumPartitions; ++P)
    Ctx->runTask("checkpoint", Node->Id, P,
                 [&] {
                   Ctx->streamPartition(Node, P, [&](heap::ObjRef T) {
                     Parts[P].push_back({C.key(T), C.value(T)});
                   });
                 },
                 [&] { Parts[P].clear(); });
  Ctx->finishAction();
  // Drop any heap materialization; the disk copy is authoritative.
  if (Node->TopRootId != SIZE_MAX) {
    Ctx->heapRef().removePersistentRoot(Node->TopRootId);
    Node->TopRootId = SIZE_MAX;
  }
  Node->SerializedInMemory = false;
  Node->DiskParts = std::move(Parts);
  Node->Materialized = true;
  Node->Parents.clear(); // lineage truncation
}

int64_t Rdd::count() const { return Ctx->runCount(Node); }

double Rdd::reduce(CombineFn Fn) const { return Ctx->runReduce(Node, Fn); }

std::vector<SourceRecord> Rdd::collect() const {
  return Ctx->runCollect(Node);
}

//===----------------------------------------------------------------------===
// SparkContext: construction and lineage building
//===----------------------------------------------------------------------===

SparkContext::SparkContext(heap::Heap &H, gc::AccessMonitor *Monitor,
                           const EngineConfig &Config)
    : H(H), Monitor(Monitor), Config(Config) {}

Rdd SparkContext::source(const SourceData *Data, const std::string &Name) {
  PANTHERA_CHECK(Data && Data->size() == Config.NumPartitions,
                 "source data must have one vector per partition");
  Rdd R = derive(OpKind::Source, {});
  R.node()->Source = Data;
  if (!Name.empty())
    R.node()->VarName = Name;
  return R;
}

Rdd SparkContext::derive(OpKind Op, std::vector<RddRef> Parents) {
  auto Node = std::make_shared<RddNode>();
  Node->Id = NextRddId++;
  Node->Op = Op;
  Node->Parents = std::move(Parents);
  switch (Op) {
  case OpKind::Source:
  case OpKind::Map:
  case OpKind::FlatMap:
    Node->PartitionedBy = Partitioning::None;
    break;
  case OpKind::Filter:
  case OpKind::MapValues:
    Node->PartitionedBy = Node->Parents[0]->PartitionedBy;
    break;
  case OpKind::Union:
    Node->PartitionedBy =
        Node->Parents[0]->PartitionedBy == Node->Parents[1]->PartitionedBy
            ? Node->Parents[0]->PartitionedBy
            : Partitioning::None;
    break;
  case OpKind::GroupByKey:
  case OpKind::ReduceByKey:
  case OpKind::Distinct:
  case OpKind::Repartition:
    Node->PartitionedBy = Partitioning::Hash;
    break;
  case OpKind::Join:
    // Join preserves the (hash) partitioning of its co-partitioned inputs.
    Node->PartitionedBy = Partitioning::Hash;
    break;
  case OpKind::SortByKey:
    Node->PartitionedBy = Partitioning::Range;
    break;
  }
  return Rdd(this, Node);
}

void SparkContext::persist(const RddRef &R, StorageLevel Level,
                           const std::string &Var) {
  R->PersistRequested = true;
  R->Level = Level;
  R->VarName = Var;
  IdToVar.emplace_back(R->Id, Var);
  if (Analysis)
    R->StaticTag = Analysis->tagFor(Var);
  recordCall(R);
}

void SparkContext::unpersist(const RddRef &R) {
  recordCall(R);
  if (!R->Materialized)
    return;
  dropMaterialized(R);
}

void SparkContext::dropMaterialized(const RddRef &R) {
  if (R->OffHeapStubs && OffHeap && R->TopRootId != SIZE_MAX) {
    // Release every region the RDD's stubs still hold before the stubs
    // become unreachable. Raw (unaccounted) reads: the stub walk is driver
    // bookkeeping, not simulated mutator traffic.
    ObjRef Top = H.persistentRoot(R->TopRootId);
    ObjRef Dir = H.rawLoadRef(Top.addr(), 0);
    uint32_t P = H.arrayLength(Dir);
    for (uint32_t I = 0; I != P; ++I) {
      ObjRef Stub = H.rawLoadRef(Dir.addr(), I);
      if (!Stub)
        continue;
      uint64_t Payload = Stub.addr() + sizeof(heap::ObjectHeader);
      uint64_t Addr;
      uint32_t Region;
      std::memcpy(&Addr, H.rawBytes(Payload), sizeof(Addr));
      std::memcpy(&Region, H.rawBytes(Payload + 8), sizeof(Region));
      if (Region != offheap::NoRegion && Addr != offheap::NoAddress)
        OffHeap->release(Region, /*Evicted=*/false);
    }
    OffHeapStore.erase(
        std::remove(OffHeapStore.begin(), OffHeapStore.end(), R),
        OffHeapStore.end());
  }
  if (R->TopRootId != SIZE_MAX) {
    H.removePersistentRoot(R->TopRootId);
    R->TopRootId = SIZE_MAX;
  }
  R->NativeParts.clear();
  R->DiskParts.clear();
  R->SerializedInMemory = false;
  R->OffHeapStubs = false;
  R->Materialized = false;
}

std::string SparkContext::varNameOf(uint32_t RddId) const {
  for (const auto &[Id, Var] : IdToVar)
    if (Id == RddId)
      return Var;
  return "";
}

void SparkContext::recordCall(const RddRef &R) {
  if (Monitor && !R->VarName.empty())
    Monitor->recordCall(R->Id);
}

//===----------------------------------------------------------------------===
// Task-level fault tolerance
//===----------------------------------------------------------------------===

bool SparkContext::canRecompute(const RddRef &R) {
  // Checkpointed RDDs truncate their lineage; their disk copy is the only
  // authority, so a loss there is unrecoverable and never injected.
  return !R->Parents.empty() || (R->Op == OpKind::Source && R->Source);
}

void SparkContext::chargeBackoff(uint32_t Attempt) {
  // Deterministic capped exponential backoff: no wall clock, just
  // attempt-count-scaled simulated CPU time.
  double Delay = Config.RetryBackoffBaseNs;
  for (uint32_t I = 1; I < Attempt && Delay < Config.RetryBackoffMaxNs; ++I)
    Delay *= 2.0;
  if (Delay > Config.RetryBackoffMaxNs)
    Delay = Config.RetryBackoffMaxNs;
  H.memory().addCpuWorkNs(Delay);
}

void SparkContext::chargeFetchBackoff(uint32_t Attempt, uint32_t Map,
                                      uint32_t Reduce) {
  // Same capped exponential schedule as task retries, but charged against
  // the fetch path and surfaced as its own trace span so degraded-network
  // runs show where the simulated time went.
  double Delay = Config.RetryBackoffBaseNs;
  for (uint32_t I = 1; I < Attempt && Delay < Config.RetryBackoffMaxNs; ++I)
    Delay *= 2.0;
  if (Delay > Config.RetryBackoffMaxNs)
    Delay = Config.RetryBackoffMaxNs;
  double StartNs = H.memory().totalTimeNs();
  H.memory().addCpuWorkNs(Delay);
  if (Clstr)
    Clstr->stats().FetchBackoffNs += Delay;
  if (TraceSink)
    TraceSink
        ->span(support::TraceTrack::Network, "backoff", "fetch", StartNs,
               Delay)
        .arg("map", static_cast<uint64_t>(Map))
        .arg("reduce", static_cast<uint64_t>(Reduce))
        .arg("attempt", static_cast<uint64_t>(Attempt));
}

void SparkContext::clusterBeginStage() {
  // Stage boundary on the cluster sim: fold the previous stage into the
  // makespan, apply any scheduled elastic events, then give the slow-
  // executor fault site one draw per live, still-healthy executor. The
  // draw order is the executor index order, so the schedule is a pure
  // function of the fault seed and the stage sequence.
  Clstr->beginStage();
  if (!Faults)
    return;
  for (unsigned E = 0; E != Clstr->numExecutors(); ++E)
    if (Clstr->executorAlive(E) && Clstr->slowdown(E) == 1.0 &&
        Faults->shouldFail(FaultSite::SlowExecutor))
      Clstr->degradeExecutor(E);
}

void SparkContext::recoverLostCaches() {
  while (!LostCaches.empty()) {
    RddRef R = LostCaches.back();
    LostCaches.pop_back();
    if (R->Materialized)
      continue; // already rebuilt by an earlier recovery
    // Recovery must not itself be injected, or a pathological plan could
    // make the retry loop nonterminating.
    FaultSuppressionScope Scope(Faults);
    // Rebuild through prepare(), not materialize*() directly: the lost
    // RDD's wide ancestors may have been temp-materialized and released
    // when their stage ended, and prepare() is what knows how to
    // reconstruct (and afterwards re-release) that chain.
    prepare(R, R->EffectiveTag);
    ++Stats.LineageRecomputations;
  }
}

SparkContext::StageScope::StageScope(SparkContext &Ctx, std::string Name)
    : Ctx(Ctx), Name(std::move(Name)),
      StartNs(Ctx.H.memory().totalTimeNs()) {}

SparkContext::StageScope::~StageScope() {
  if (!Ctx.TraceSink)
    return;
  double Now = Ctx.H.memory().totalTimeNs();
  Ctx.TraceSink->span(support::TraceTrack::Engine, Name, "stage", StartNs,
                      Now - StartNs);
}

void SparkContext::runTask(const std::string &Stage, uint32_t RddId,
                           uint32_t Partition,
                           const std::function<void()> &Body,
                           const std::function<void()> &Rollback,
                           unsigned *PlacedExec) {
  ++Stats.TasksLaunched;
  double TaskStartNs = H.memory().totalTimeNs();
  // Emits the task's trace span; runs at every task exit (success or
  // terminal failure), always on the serial scheduling path.
  auto EmitTaskSpan = [&](uint32_t Attempts, bool Ok) {
    if (!TraceSink)
      return;
    TraceSink
        ->span(support::TraceTrack::Engine, Stage, "task", TaskStartNs,
               H.memory().totalTimeNs() - TaskStartNs)
        .arg("rdd", static_cast<uint64_t>(RddId))
        .arg("partition", static_cast<uint64_t>(Partition))
        .arg("attempts", static_cast<uint64_t>(Attempts))
        .arg("ok", std::string(Ok ? "true" : "false"));
  };
  TaskAttemptRecord Rec;
  Rec.Stage = Stage;
  Rec.RddId = RddId;
  Rec.Partition = Partition;

  // Undo a failed attempt's partial effects. The pending rdd_alloc tag is
  // cleared unconditionally: an exception can unwind between arming it and
  // the allocation that would consume it.
  auto Cleanup = [&] {
    H.setPendingArrayTag(MemTag::None, 0);
    if (Rollback)
      Rollback();
  };

  for (uint32_t Attempt = 1;; ++Attempt) {
    Rec.Attempts = Attempt;
    // Debugging aid for fault plans: per-attempt task log on stderr.
    if (std::getenv("PANTHERA_TRACE_TASKS"))
      std::fprintf(stderr, "[task] %s p%u attempt %u\n", Stage.c_str(),
                   Partition, Attempt);
    try {
      if (Faults && Faults->shouldFail(FaultSite::TaskExecution)) {
        ++Stats.InjectedTaskFailures;
        throw TaskFailure("injected task failure in stage '" + Stage +
                          "', partition " + std::to_string(Partition));
      }
      double BodyStartNs = H.memory().totalTimeNs();
      Body();
      if (PlacedExec && Clstr) {
        // Feed the driver-measured base cost into straggler detection. If
        // a speculative copy on another executor finishes first, the
        // original attempt is rolled back and the body re-runs as the
        // winning copy -- same inputs, same bytes, so checksums are
        // invariant under speculation on/off.
        double BaseNs = H.memory().totalTimeNs() - BodyStartNs;
        cluster::Cluster::SpeculationOutcome O =
            Clstr->accountTask(*PlacedExec, BaseNs);
        if (O.CopyWon) {
          if (std::getenv("PANTHERA_TRACE_TASKS"))
            std::fprintf(stderr, "[spec] %s p%u copy won on exec %u\n",
                         Stage.c_str(), Partition, O.CopyExec);
          *PlacedExec = O.CopyExec;
          Cleanup();
          FaultSuppressionScope Scope(Faults);
          Body();
        }
      }
      Rec.Succeeded = true;
      EmitTaskSpan(Rec.Attempts, /*Ok=*/true);
      Ledger.Records.push_back(std::move(Rec));
      return;
    } catch (TaskFailure &F) {
      Rec.LastError = F.what();
    } catch (OutOfMemoryError &F) {
      Rec.LastError = F.what();
      ++Stats.OomTaskFailures;
      if (Attempt >= Config.MaxTaskAttempts) {
        // Retries exhausted on memory pressure: report the typed OOM to
        // the caller instead of wrapping it (the process still survives).
        Cleanup();
        Rec.Succeeded = false;
        EmitTaskSpan(Rec.Attempts, /*Ok=*/false);
        Ledger.Records.push_back(std::move(Rec));
        throw;
      }
    }
    Cleanup();
    if (Attempt >= Config.MaxTaskAttempts) {
      Rec.Succeeded = false;
      std::string Msg = "stage '" + Stage + "' failed: partition " +
                        std::to_string(Partition) + " of RDD " +
                        std::to_string(RddId) + " exhausted " +
                        std::to_string(Config.MaxTaskAttempts) +
                        " attempts; last error: " + Rec.LastError;
      EmitTaskSpan(Rec.Attempts, /*Ok=*/false);
      Ledger.Records.push_back(std::move(Rec));
      throw EngineError(Msg);
    }
    ++Stats.TaskRetries;
    chargeBackoff(Attempt);
    // A failure that dropped a persisted cache recorded it in LostCaches;
    // rebuild from lineage before re-attempting (the generalization of
    // what examples/fault_tolerance.cpp demonstrates by hand).
    recoverLostCaches();
    if (RecoveryVerifier)
      RecoveryVerifier("task retry");
  }
}

bool SparkContext::evictOneUnderPressure() {
  // Least-recently-used resident MEMORY_AND_DISK(_SER) block.
  RddRef Victim;
  for (const RddRef &R : EvictableStore)
    if (R->Materialized && R->TopRootId != SIZE_MAX &&
        (!Victim || R->LastUse < Victim->LastUse))
      Victim = R;
  if (!Victim)
    return false;
  // Eviction streams the victim through the heap; injecting faults into
  // the recovery machinery itself would corrupt the eviction.
  FaultSuppressionScope Scope(Faults);
  evictToDisk(Victim);
  return true;
}

//===----------------------------------------------------------------------===
// Scheduling
//===----------------------------------------------------------------------===

bool SparkContext::canFuseIntoShuffle(const RddRef &Parent) const {
  return Parent->PersistRequested && !Parent->Materialized &&
         !isWideOp(Parent->Op) && Parent->Op != OpKind::Source &&
         isHeapLevel(Parent->Level);
}

void SparkContext::prepare(const RddRef &R, MemTag DownstreamTag,
                           bool DeferMaterialize) {
  MemTag Own = Config.UseStaticTags ? R->StaticTag : MemTag::None;
  MemTag Effective = Own != MemTag::None ? Own : DownstreamTag;
  // Lineage back-propagation with DRAM-wins conflict resolution (§3).
  R->EffectiveTag = mergeTags(R->EffectiveTag, Effective);

  if (R->Materialized || R->Op == OpKind::Source)
    return;

  bool Materializes =
      (isWideOp(R->Op) || R->PersistRequested) && !DeferMaterialize;
  size_t TempSnapshot = TempMaterialized.size();
  if (isWideOp(R->Op)) {
    // Shuffle fusion (Spark behavior): a persist-pending narrow parent is
    // materialized by the shuffle's own map pass rather than beforehand,
    // so its data is written once and never re-read from its cache.
    const RddRef &Parent = R->Parents[0];
    prepare(Parent, R->EffectiveTag,
            /*DeferMaterialize=*/canFuseIntoShuffle(Parent));
  } else {
    for (const RddRef &Parent : R->Parents)
      prepare(Parent, R->EffectiveTag);
  }

  if (isWideOp(R->Op)) {
    materializeWide(R);
    if (!R->PersistRequested)
      TempMaterialized.push_back(R);
  } else if (R->PersistRequested && !DeferMaterialize) {
    materializeNarrow(R);
  }
  // A completed materialization ends the stage that computed it; shuffle
  // outputs consumed by that stage are released (collected at next GC).
  // R itself stays: its consumer has not streamed it yet.
  if (Materializes) {
    std::vector<RddRef> Kept;
    while (TempMaterialized.size() > TempSnapshot) {
      RddRef Temp = TempMaterialized.back();
      TempMaterialized.pop_back();
      if (Temp == R)
        Kept.push_back(Temp);
      else
        unpersist(Temp);
    }
    for (auto It = Kept.rbegin(); It != Kept.rend(); ++It)
      TempMaterialized.push_back(*It);
  }
}

void SparkContext::streamPartition(const RddRef &R, uint32_t P,
                                   const TupleSink &Sink) {
  if (R->Materialized) {
    streamMaterialized(R, P, Sink);
    return;
  }
  RddContext Ctx(H);
  memsim::HybridMemory &Mem = H.memory();
  switch (R->Op) {
  case OpKind::Source: {
    const std::vector<SourceRecord> &Rows = (*R->Source)[P];
    for (const SourceRecord &Row : Rows) {
      Mem.addCpuWorkNs(Config.PerRecordCpuNs);
      ++Stats.RecordsStreamed;
      Sink(Ctx.makeTuple(Row.Key, Row.Val));
    }
    return;
  }
  case OpKind::Map:
    streamPartition(R->Parents[0], P, [&](ObjRef T) {
      Mem.addCpuWorkNs(Config.PerRecordCpuNs);
      Sink(R->Map(Ctx, T));
    });
    return;
  case OpKind::Filter:
    streamPartition(R->Parents[0], P, [&](ObjRef T) {
      Mem.addCpuWorkNs(Config.PerRecordCpuNs);
      if (R->Filter(Ctx, T))
        Sink(T);
    });
    return;
  case OpKind::FlatMap:
    streamPartition(R->Parents[0], P, [&](ObjRef T) {
      Mem.addCpuWorkNs(Config.PerRecordCpuNs);
      R->FlatMap(Ctx, T, Sink);
    });
    return;
  case OpKind::MapValues:
    streamPartition(R->Parents[0], P, [&](ObjRef T) {
      Mem.addCpuWorkNs(Config.PerRecordCpuNs);
      int64_t K = Ctx.key(T);
      double V = R->MapValueKey ? R->MapValueKey(K, Ctx.value(T))
                                : R->MapValue(Ctx.value(T));
      Sink(Ctx.makeTuple(K, V));
    });
    return;
  case OpKind::Union:
    streamPartition(R->Parents[0], P, Sink);
    streamPartition(R->Parents[1], P, Sink);
    return;
  case OpKind::Join: {
    // Both sides are key-partitioned; build a native value index over the
    // right side's partition, then probe while streaming the left side.
    std::unordered_map<int64_t, std::vector<double>> Index;
    streamPartition(R->Parents[1], P, [&](ObjRef T) {
      Index[Ctx.key(T)].push_back(Ctx.value(T));
    });
    streamPartition(R->Parents[0], P, [&](ObjRef T) {
      auto It = Index.find(Ctx.key(T));
      if (It == Index.end())
        return;
      // One output per matching right value. The left tuple must be
      // re-rooted across emissions: the join function allocates.
      GcRoot Left(H, T);
      for (double V : It->second) {
        Mem.addCpuWorkNs(Config.PerRecordCpuNs);
        Sink(R->Join(Ctx, Left.get(), V));
      }
    });
    return;
  }
  case OpKind::GroupByKey:
  case OpKind::ReduceByKey:
  case OpKind::Distinct:
  case OpKind::Repartition:
  case OpKind::SortByKey:
    PANTHERA_CHECK(false, "wide RDD streamed before materialization");
    return;
  }
}

void SparkContext::streamMaterialized(const RddRef &R, uint32_t P,
                                      const TupleSink &Sink) {
  // Cache-loss injection: the materialized copy vanishes (executor
  // failure) before this read. The cache is dropped, queued for lineage
  // recomputation, and the consuming task fails -- its retry finds the
  // rebuilt cache.
  if (Faults && canRecompute(R) &&
      Faults->shouldFail(FaultSite::CacheRead)) {
    ++Stats.CacheLossEvents;
    dropMaterialized(R);
    LostCaches.push_back(R);
    throw TaskFailure("injected cache loss: RDD " + std::to_string(R->Id) +
                      (R->VarName.empty() ? "" : " (" + R->VarName + ")") +
                      " partition " + std::to_string(P) +
                      " lost its materialized copy");
  }
  RddContext Ctx(H);
  memsim::HybridMemory &Mem = H.memory();
  R->LastUse = ++UseClock;
  // Each per-partition read is a task invoking iterator() on the RDD
  // object -- one monitored call (the Table 5 counts scale with tasks).
  recordCall(R);
  if (R->OffHeapStubs) {
    // Off-heap region tier: the on-heap stub is the only object the read
    // touches before the serialized bytes stream out of the region. A
    // stub retargeted to NoAddress was spilled to executor "disk".
    PANTHERA_CHECK(OffHeap && R->TopRootId != SIZE_MAX,
                   "off-heap RDD lost its tier or root");
    GcRoot Top(H, H.persistentRoot(R->TopRootId));
    GcRoot Dir(H, H.loadRef(Top.get(), 0));
    GcRoot Stub(H, H.loadRef(Dir.get(), P));
    uint64_t Addr = H.stubNativeAddr(Stub.get());
    uint32_t Count = H.stubRecordCount(Stub.get());
    if (Addr == offheap::NoAddress) {
      PANTHERA_CHECK(P < R->DiskParts.size(), "spilled stub lost its rows");
      for (const SourceRecord &Row : R->DiskParts[P]) {
        Mem.addCpuWorkNs(Config.PerRecordCpuNs + Config.DiskRecordCpuNs);
        Sink(Ctx.makeTuple(Row.Key, Row.Val));
      }
      return;
    }
    uint32_t Region = H.stubRegion(Stub.get());
    // Bulk record-granular read of the whole partition (regions never
    // move, so hoisting ahead of the allocating sink is safe), then the
    // same per-record deserialization CPU as the on-heap _SER levels.
    std::vector<SourceRecord> Rows(Count);
    OffHeap->readPartition(Region, Addr, Rows.data(), Count,
                           sizeof(SourceRecord));
    for (const SourceRecord &Row : Rows) {
      Mem.addCpuWorkNs(Config.PerRecordCpuNs + Config.ShuffleRecordCpuNs);
      Sink(Ctx.makeTuple(Row.Key, Row.Val));
    }
    return;
  }
  if (!R->NativeParts.empty()) {
    // OFF_HEAP: deserialize records from native NVM into young tuples.
    // The whole partition is read through one record-granular range (the
    // native region never moves, so hoisting the reads ahead of the
    // allocating sink is safe) and the per-record deserialization CPU is
    // charged in the sink loop.
    const RddNode::NativePartition &Part = R->NativeParts[P];
    std::vector<SourceRecord> Rows(Part.Count);
    H.nativeReadRecords(Part.Addr, Rows.data(), Part.Count,
                        sizeof(SourceRecord));
    for (const SourceRecord &Row : Rows) {
      Mem.addCpuWorkNs(Config.PerRecordCpuNs);
      Sink(Ctx.makeTuple(Row.Key, Row.Val));
    }
    return;
  }
  if (!R->DiskParts.empty()) {
    // DISK_ONLY or evicted MEMORY_AND_DISK: re-read from "disk"
    // (unaccounted device; deserialization CPU cost only).
    for (const SourceRecord &Row : R->DiskParts[P]) {
      Mem.addCpuWorkNs(Config.PerRecordCpuNs + Config.DiskRecordCpuNs);
      Sink(Ctx.makeTuple(Row.Key, Row.Val));
    }
    return;
  }
  PANTHERA_CHECK(R->TopRootId != SIZE_MAX,
                 "materialized RDD lost its root");
  GcRoot Top(H, H.persistentRoot(R->TopRootId));
  GcRoot Dir(H, H.loadRef(Top.get(), 0));
  GcRoot Arr(H, H.loadRef(Dir.get(), P));
  if (R->SerializedInMemory) {
    // Deserialize: one bulk element-granular read of the byte buffer
    // (reading ahead of the allocating sink also means a GC triggered by
    // tuple allocation can no longer move the array mid-scan), then one
    // young tuple allocated per record.
    uint32_t Pairs = H.arrayLength(Arr.get()) / 2;
    std::vector<int64_t> Bits(2ull * Pairs);
    H.loadElemsI64(Arr.get(), 0, 2 * Pairs, Bits.data());
    for (uint32_t I = 0; I != Pairs; ++I) {
      int64_t Key = Bits[2 * I];
      double Val;
      std::memcpy(&Val, &Bits[2 * I + 1], sizeof(Val));
      Mem.addCpuWorkNs(Config.PerRecordCpuNs + Config.ShuffleRecordCpuNs);
      Sink(Ctx.makeTuple(Key, Val));
    }
    return;
  }
  uint32_t Len = H.arrayLength(Arr.get());
  for (uint32_t I = 0; I != Len; ++I) {
    Mem.addCpuWorkNs(Config.PerRecordCpuNs);
    Sink(H.loadRef(Arr.get(), I));
  }
}

//===----------------------------------------------------------------------===
// Materialization
//===----------------------------------------------------------------------===

void SparkContext::installMaterialized(const RddRef &R, ObjRef Top) {
  R->TopRootId = H.addPersistentRoot(Top);
  R->Materialized = true;
  R->LastUse = ++UseClock;
  ++Stats.RddsMaterialized;
  // Only disk-backed heap levels may fall back to disk under pressure, and
  // only flat (payload-free) tuples serialize; grouped RDDs stay pinned.
  if (R->PersistRequested && isHeapLevel(R->Level) &&
      levelProps(R->Level).DiskBacked && R->Op != OpKind::GroupByKey &&
      std::find(EvictableStore.begin(), EvictableStore.end(), R) ==
          EvictableStore.end())
    EvictableStore.push_back(R);
}

void SparkContext::evictToDisk(const RddRef &R) {
  PANTHERA_CHECK(R->Materialized && R->TopRootId != SIZE_MAX,
                 "nothing to evict");
  // Eviction reads the cache it is about to drop; a cache-loss injection
  // in the middle of that read would corrupt the transfer.
  FaultSuppressionScope Suppress(Faults);
  memsim::HybridMemory &Mem = H.memory();
  RddContext Ctx(H);
  uint32_t P = Config.NumPartitions;
  // Collect into a staging structure first: streamMaterialized dispatches
  // on DiskParts, which must stay empty until the read-back completes.
  std::vector<std::vector<SourceRecord>> Collected(P);
  for (uint32_t I = 0; I != P; ++I)
    streamMaterialized(R, I, [&](ObjRef T) {
      Mem.addCpuWorkNs(Config.DiskRecordCpuNs);
      Collected[I].push_back({Ctx.key(T), Ctx.value(T)});
    });
  R->DiskParts = std::move(Collected);
  // Drop the heap copy; the next full GC reclaims it.
  H.removePersistentRoot(R->TopRootId);
  R->TopRootId = SIZE_MAX;
  R->SerializedInMemory = false;
  ++Stats.RddsEvictedToDisk;
}

void SparkContext::maybeEvictStorage() {
  auto Occupancy = [this] {
    uint64_t Used = 0, Size = 0;
    for (heap::Space *S : H.oldSpaces()) {
      Used += S->usedBytes();
      Size += S->sizeBytes();
    }
    return Size ? static_cast<double>(Used) / static_cast<double>(Size)
                : 0.0;
  };
  if (Occupancy() < Config.EvictionOccupancy)
    return;
  while (true) {
    // Pick the least-recently-used still-resident evictable block.
    RddRef Victim;
    for (const RddRef &R : EvictableStore)
      if (R->Materialized && R->TopRootId != SIZE_MAX &&
          (!Victim || R->LastUse < Victim->LastUse))
        Victim = R;
    if (!Victim)
      return;
    evictToDisk(Victim);
    H.requestMajorGc("storage eviction");
    if (Occupancy() < Config.EvictionOccupancy)
      return;
  }
}

bool SparkContext::spillOffHeapVictim(const RddRef &Current,
                                      ObjRef CurrentDir) {
  offheap::OffHeapCache::Victim V = OffHeap->pickVictim();
  if (V.Region == offheap::NoRegion)
    return false;
  // The pick can be a partition of the RDD being materialized right now --
  // its directory is still a caller-held stack root, not an installed
  // persistent root, so the caller passes it in.
  RddRef Victim;
  GcRoot Dir(H);
  if (Current && V.RddId == Current->Id) {
    Victim = Current;
    Dir.set(CurrentDir);
  } else {
    for (const RddRef &R : OffHeapStore)
      if (R->Id == V.RddId) {
        Victim = R;
        break;
      }
    PANTHERA_CHECK(Victim && Victim->Materialized &&
                       Victim->TopRootId != SIZE_MAX,
                   "off-heap eviction pick lost its RDD");
    Dir.set(H.loadRef(H.persistentRoot(Victim->TopRootId), 0));
  }
  // Read the serialized partition back out of its region, stage it on
  // executor "disk" (same CPU charge as BlockManager eviction), retarget
  // the stub, and release the region for recycling.
  GcRoot Stub(H, H.loadRef(Dir.get(), V.Part));
  uint64_t Addr = H.stubNativeAddr(Stub.get());
  uint32_t Count = H.stubRecordCount(Stub.get());
  PANTHERA_CHECK(Addr != offheap::NoAddress, "victim already spilled");
  std::vector<SourceRecord> Rows(Count);
  OffHeap->readPartition(V.Region, Addr, Rows.data(), Count,
                         sizeof(SourceRecord));
  H.memory().addCpuWorkNs(static_cast<double>(Count) *
                          Config.DiskRecordCpuNs);
  if (Victim->DiskParts.empty())
    Victim->DiskParts.assign(Config.NumPartitions, {});
  Victim->DiskParts[V.Part] = std::move(Rows);
  H.setStubNativeAddr(Stub.get(), offheap::NoAddress);
  OffHeap->release(V.Region, /*Evicted=*/true);
  return true;
}

void SparkContext::materializeNarrow(const RddRef &R,
                                     const ShuffleFusion *Fusion) {
  uint32_t P = Config.NumPartitions;
  MemTag Tag = Config.UseStaticTags ? R->EffectiveTag : MemTag::None;
  const TupleSink *Tee = Fusion ? Fusion->Tee : nullptr;
  PANTHERA_CHECK(!Tee || isHeapLevel(R->Level),
                 "shuffle fusion applies to heap-materialized RDDs only");
  maybeEvictStorage();
  std::string Stage =
      std::string("materialize ") + opKindName(R->Op) +
      (R->VarName.empty() ? std::string() : " '" + R->VarName + "'");
  StageScope Span(*this, Stage);
  // Cluster mode, standalone materialization: place each per-partition
  // task by its parent's locality and record where the result lives. A
  // fused materialization is placed by the consuming shuffle's hooks.
  std::vector<unsigned> TaskExec;
  if (Clstr && !Fusion) {
    clusterBeginStage();
    TaskExec.assign(P, 0);
  }
  // Pointer handed to runTask for straggler detection: the standalone
  // cluster path owns TaskExec; a fused map task's slot belongs to the
  // consuming shuffle.
  auto ExecPtr = [&](uint32_t I) -> unsigned * {
    if (Clstr && !Fusion)
      return &TaskExec[I];
    if (Fusion && Fusion->ExecSlot)
      return Fusion->ExecSlot(I);
    return nullptr;
  };
  auto Place = [&](uint32_t I) {
    if (!Clstr || Fusion)
      return;
    int Pref = R->Parents.empty()
                   ? -1
                   : Clstr->partitionLocation(R->Parents[0]->Id, I);
    if (Pref < 0)
      Pref = Clstr->splitOwner(I);
    TaskExec[I] = Clstr->placeTask(Pref);
  };
  auto Placed = [&](uint32_t I) {
    if (Clstr && !Fusion)
      Clstr->recordPartitionLocation(R->Id, I, TaskExec[I]);
  };
  // Bracket each per-partition task with the consuming shuffle's
  // snapshot/flush/rollback hooks so a failed fused map task can undo the
  // records it already routed.
  auto FusionBegin = [&](uint32_t I) {
    if (Fusion && Fusion->BeforeTask)
      Fusion->BeforeTask(I);
    if (Fusion && Fusion->BeginTask)
      Fusion->BeginTask();
  };
  auto FusionAfter = [&](uint32_t I) {
    if (Fusion && Fusion->AfterTask)
      Fusion->AfterTask(I);
  };
  auto FusionEnd = [&] {
    if (Fusion && Fusion->EndTask)
      Fusion->EndTask();
  };
  std::function<void()> FusionRollback;
  if (Fusion && Fusion->Rollback)
    FusionRollback = Fusion->Rollback;

  if (R->Level == StorageLevel::OffHeapSer && R->PersistRequested &&
      OffHeap) {
    // Off-heap region tier (docs/offheap.md): serialize each partition
    // once into a region, then root one GC-leaf stub per partition. The
    // serialized bytes never appear in trace or compaction work; only the
    // 48-byte stubs do.
    R->OffHeapStubs = true;
    GcRoot Dir(H, H.allocRefArray(P));
    RddContext Ctx(H);
    for (uint32_t I = 0; I != P; ++I) {
      Place(I);
      uint32_t PlacedRegion = offheap::NoRegion;
      runTask(
          Stage, R->Id, I,
          [&] {
            PlacedRegion = offheap::NoRegion;
            std::vector<SourceRecord> Rows;
            streamPartition(R, I, [&](ObjRef T) {
              Rows.push_back({Ctx.key(T), Ctx.value(T)});
              H.memory().addCpuWorkNs(Config.ShuffleRecordCpuNs);
            });
            // Budget pressure sheds untouched regions first; when nothing
            // is left to shed, this partition falls back to executor
            // "disk" behind a NoAddress stub (the staged-OOM spill path).
            offheap::OffHeapCache::Placement Pl;
            while (true) {
              Pl = OffHeap->cachePartition(Rows.data(), Rows.size(),
                                           sizeof(SourceRecord), R->Id, I);
              if (Pl.Region != offheap::NoRegion ||
                  !spillOffHeapVictim(R, Dir.get()))
                break;
            }
            PlacedRegion = Pl.Region;
            if (Pl.Region == offheap::NoRegion) {
              if (R->DiskParts.empty())
                R->DiskParts.assign(P, {});
              H.memory().addCpuWorkNs(static_cast<double>(Rows.size()) *
                                      Config.DiskRecordCpuNs);
              R->DiskParts[I] = std::move(Rows);
              Pl.Addr = offheap::NoAddress;
            }
            ObjRef Stub = H.allocOffHeapStub(
                Pl.Addr, Pl.Region, static_cast<uint32_t>(Rows.size()),
                R->Id);
            H.storeRef(Dir.get(), I, Stub);
          },
          [&] {
            // A failed attempt may have placed a region (e.g. OOM while
            // allocating the stub) or spilled rows; undo both.
            if (PlacedRegion != offheap::NoRegion) {
              OffHeap->release(PlacedRegion, /*Evicted=*/false);
              PlacedRegion = offheap::NoRegion;
            }
            if (!R->DiskParts.empty())
              R->DiskParts[I].clear();
          },
          ExecPtr(I));
      Placed(I);
    }
    ObjRef Top = H.allocPlain(/*NumRefs=*/1, /*PayloadBytes=*/0);
    H.header(Top.addr())->RddId = R->Id;
    H.storeRef(Top, 0, Dir.get());
    installMaterialized(R, Top);
    if (std::find(OffHeapStore.begin(), OffHeapStore.end(), R) ==
        OffHeapStore.end())
      OffHeapStore.push_back(R);
    return;
  }
  if (R->Level == StorageLevel::OffHeapSer && R->PersistRequested) {
    // Serialize into native NVM memory (the paper places all off-heap
    // native memory in NVM, §4.1).
    R->NativeParts.assign(P, {});
    for (uint32_t I = 0; I != P; ++I) {
      Place(I);
      runTask(
          Stage, R->Id, I,
          [&] {
            std::vector<SourceRecord> Rows;
            RddContext Ctx(H);
            streamPartition(R, I, [&](ObjRef T) {
              Rows.push_back({Ctx.key(T), Ctx.value(T)});
            });
            uint64_t Addr = H.allocNative(Rows.size() * sizeof(SourceRecord));
            for (size_t J = 0; J != Rows.size(); ++J)
              H.nativeWrite(Addr + J * sizeof(SourceRecord), &Rows[J],
                            sizeof(SourceRecord));
            R->NativeParts[I] = {Addr, static_cast<uint32_t>(Rows.size())};
          },
          nullptr, ExecPtr(I));
      Placed(I);
    }
    R->Materialized = true;
    ++Stats.RddsMaterialized;
    return;
  }
  if (R->Level == StorageLevel::DiskOnly && R->PersistRequested) {
    R->DiskParts.assign(P, {});
    for (uint32_t I = 0; I != P; ++I) {
      Place(I);
      runTask(
          Stage, R->Id, I,
          [&] {
            RddContext Ctx(H);
            streamPartition(R, I, [&](ObjRef T) {
              R->DiskParts[I].push_back({Ctx.key(T), Ctx.value(T)});
            });
          },
          [&] { R->DiskParts[I].clear(); }, ExecPtr(I));
      Placed(I);
    }
    R->Materialized = true;
    ++Stats.RddsMaterialized;
    return;
  }

  if (isHeapLevel(R->Level) && isSerializedLevel(R->Level)) {
    // Serialized in-memory storage: each partition is ONE primitive array
    // of (key, value-bits) pairs. No tuple objects survive, so the cache
    // is nearly invisible to the GC -- which is why the paper persists
    // its fault-tolerance caches (e.g. PageRank's contribs) this way.
    GcRoot Dir(H, H.allocRefArray(P));
    RddContext Ctx(H);
    for (uint32_t I = 0; I != P; ++I) {
      Place(I);
      FusionBegin(I);
      runTask(
          Stage, R->Id, I,
          [&] {
            std::vector<SourceRecord> Rows;
            streamPartition(R, I, [&](ObjRef T) {
              if (Tee) {
                GcRoot Saved(H, T);
                (*Tee)(T);
                T = Saved.get();
              }
              Rows.push_back({Ctx.key(T), Ctx.value(T)});
              H.memory().addCpuWorkNs(Config.ShuffleRecordCpuNs);
            });
            if (Tag != MemTag::None)
              H.setPendingArrayTag(Tag, R->Id);
            ObjRef Buf =
                H.allocPrimArray(static_cast<uint32_t>(Rows.size()) * 2, 8);
            H.setPendingArrayTag(MemTag::None, 0);
            H.header(Buf.addr())->RddId = R->Id;
            {
              // Serialize through one bulk element-granular store: the
              // interleaved (key, value-bits) image is staged host-side,
              // then written as a single range — no allocation intervenes,
              // so the store sequence is exactly the old per-element loop.
              GcRoot BufRoot(H, Buf);
              std::vector<int64_t> Bits(Rows.size() * 2);
              for (uint32_t J = 0; J != Rows.size(); ++J) {
                Bits[2 * J] = Rows[J].Key;
                std::memcpy(&Bits[2 * J + 1], &Rows[J].Val,
                            sizeof(int64_t));
              }
              H.storeElemsI64(BufRoot.get(), 0,
                              static_cast<uint32_t>(Bits.size()),
                              Bits.data());
              H.storeRef(Dir.get(), I, BufRoot.get());
            }
            FusionEnd();
          },
          FusionRollback, ExecPtr(I));
      FusionAfter(I);
      Placed(I);
    }
    ObjRef Top = H.allocPlain(/*NumRefs=*/1, /*PayloadBytes=*/0);
    heap::ObjectHeader *TopHdr = H.header(Top.addr());
    TopHdr->RddId = R->Id;
    if (Tag != MemTag::None)
      TopHdr->setMemTag(Tag);
    H.storeRef(Top, 0, Dir.get());
    R->SerializedInMemory = true;
    installMaterialized(R, Top);
    return;
  }

  // Heap materialization: directory -> per-partition arrays of tuples.
  GcRoot Dir(H, H.allocRefArray(P));
  for (uint32_t I = 0; I != P; ++I) {
    Place(I);
    FusionBegin(I);
    runTask(
        Stage, R->Id, I,
        [&] {
          PartitionBuilder Builder(H);
          streamPartition(R, I, [&](ObjRef T) {
            if (Tee) {
              // Shuffle fusion: feed the consuming shuffle in the same
              // pass. The tee may allocate (spill buffers), so re-root
              // the tuple.
              GcRoot Saved(H, T);
              (*Tee)(T);
              T = Saved.get();
            }
            Builder.append(T);
          });
          ObjRef Arr = Builder.finish(Tag, R->Id);
          H.storeRef(Dir.get(), I, Arr);
          FusionEnd();
        },
        FusionRollback, ExecPtr(I));
    FusionAfter(I);
    Placed(I);
  }
  // rdd_alloc also stamps the *top* object's MEMORY_BITS so the root task
  // promotes it to the right space (§4.2.1).
  ObjRef Top = H.allocPlain(/*NumRefs=*/1, /*PayloadBytes=*/0);
  heap::ObjectHeader *TopHdr = H.header(Top.addr());
  TopHdr->RddId = R->Id;
  if (Tag != MemTag::None)
    TopHdr->setMemTag(Tag);
  H.storeRef(Top, 0, Dir.get());
  installMaterialized(R, Top);
}

SparkContext::Buckets
SparkContext::shuffle(const RddRef &Parent,
                      const std::function<uint32_t(int64_t)> &Partitioner) {
  uint32_t P = Config.NumPartitions;
  RddContext Ctx(H);
  memsim::HybridMemory &Mem = H.memory();
  ++Stats.StagesRun;
  StageScope Span(*this,
                  std::string("shuffle ") + opKindName(Parent->Op) +
                      (Parent->VarName.empty()
                           ? std::string()
                           : " '" + Parent->VarName + "'"));

  // Map side. As in Spark, the shuffle's write buffers are heap data: the
  // routed records accumulate in per-target-partition buffers that stay
  // live for the whole map pass -- this transient bulk is precisely the
  // "large amounts of intermediate data" whose collection dominates the
  // paper's GC costs. Builders must be destroyed in reverse construction
  // order (GC root discipline is LIFO) even when an exception unwinds this
  // frame, so a plain vector (forward element destruction) won't do.
  struct BuilderStack {
    std::vector<std::unique_ptr<PartitionBuilder>> V;
    ~BuilderStack() {
      while (!V.empty())
        V.pop_back();
    }
    PartitionBuilder &operator[](uint32_t I) { return *V[I]; }
  } Buffers;
  Buffers.V.reserve(P);
  for (uint32_t I = 0; I != P; ++I)
    Buffers.V.emplace_back(std::make_unique<PartitionBuilder>(H));
  Buckets Out(P);
  // Spills a buffer to "disk" (native memory, unaccounted like the
  // paper's disk I/O) and recycles it.
  auto Spill = [&](uint32_t Target) {
    PartitionBuilder &B = Buffers[Target];
    Out[Target].reserve(Out[Target].size() + B.size());
    B.forEach([&](ObjRef T) {
      Mem.addCpuWorkNs(Config.ShuffleRecordCpuNs);
      Out[Target].push_back({Ctx.key(T), Ctx.value(T)});
    });
    B.clear();
  };
  TupleSink Route = [&](ObjRef T) {
    Mem.addCpuWorkNs(Config.ShuffleRecordCpuNs);
    ++Stats.ShuffleRecords;
    int64_t K = Ctx.key(T);
    uint32_t Target = Partitioner ? Partitioner(K) : partitionOf(K, P);
    Buffers[Target].append(T);
    if (Buffers[Target].size() >= Config.ShuffleSpillRecords) {
      ++Stats.ShuffleSpills;
      Spill(Target);
    }
  };

  // Task bracketing: every map task ends by flushing all route buffers
  // into Out, so a failed attempt can restore Out to its task-start
  // snapshot and clear the buffers without disturbing earlier tasks'
  // records. Each record is still written exactly once.
  std::vector<size_t> OutSnapshot(P, 0);
  uint64_t RecordsSnapshot = 0, SpillsSnapshot = 0;
  auto BeginTask = [&] {
    for (uint32_t I = 0; I != P; ++I)
      OutSnapshot[I] = Out[I].size();
    RecordsSnapshot = Stats.ShuffleRecords;
    SpillsSnapshot = Stats.ShuffleSpills;
  };
  auto EndTask = [&] {
    for (uint32_t I = 0; I != P; ++I)
      Spill(I);
  };
  auto Rollback = [&] {
    for (uint32_t I = 0; I != P; ++I) {
      Buffers[I].clear();
      Out[I].resize(OutSnapshot[I]);
    }
    Stats.ShuffleRecords = RecordsSnapshot;
    Stats.ShuffleSpills = SpillsSnapshot;
  };

  // Cluster mode (docs/cluster.md): this stage is the map side of a
  // distributed shuffle. Each map task is placed by its parent
  // partition's locality; after it succeeds, the records it routed to
  // each target partition register as per-executor blocks with the map
  // output tracker. The buckets in Out remain the data plane either way.
  std::function<void(uint32_t)> PlaceMap, RegisterMapOutputs;
  if (Clstr) {
    ClusterShuffle.Active = true;
    ClusterShuffle.Parent = Parent;
    ClusterShuffle.Partitioner = Partitioner;
    ClusterShuffle.MapExec.assign(P, 0);
    ClusterShuffle.PendingRecompute.clear();
    Clstr->beginShuffle(P, P);
    clusterBeginStage();
    PlaceMap = [&](uint32_t M) {
      int Pref = Clstr->partitionLocation(Parent->Id, M);
      if (Pref < 0)
        Pref = Clstr->splitOwner(M);
      ClusterShuffle.MapExec[M] = Clstr->placeTask(Pref);
    };
    RegisterMapOutputs = [&](uint32_t M) {
      unsigned E = ClusterShuffle.MapExec[M];
      for (uint32_t T = 0; T != P; ++T) {
        uint64_t Count = Out[T].size() - OutSnapshot[T];
        Clstr->registerMapOutput(M, T, E, Out[T].data() + OutSnapshot[T],
                                 Count * sizeof(SourceRecord), Count,
                                 OutSnapshot[T]);
      }
      // The computed parent partition now lives on E; later stages over
      // the same parent prefer it.
      Clstr->recordPartitionLocation(Parent->Id, M, E);
    };
  }

  if (canFuseIntoShuffle(Parent)) {
    // Materialize the persist-pending parent and write the shuffle in one
    // streaming pass: its cached partitions are written once, not re-read.
    ShuffleFusion Fusion;
    Fusion.Tee = &Route;
    Fusion.BeginTask = BeginTask;
    Fusion.EndTask = EndTask;
    Fusion.Rollback = Rollback;
    Fusion.BeforeTask = PlaceMap;
    Fusion.AfterTask = RegisterMapOutputs;
    if (Clstr)
      Fusion.ExecSlot = [this](uint32_t M) {
        return &ClusterShuffle.MapExec[M];
      };
    materializeNarrow(Parent, &Fusion);
  } else {
    std::string Stage =
        std::string("shuffle map ") + opKindName(Parent->Op) +
        (Parent->VarName.empty() ? std::string()
                                 : " '" + Parent->VarName + "'");
    for (uint32_t I = 0; I != P; ++I) {
      if (PlaceMap)
        PlaceMap(I);
      BeginTask();
      runTask(
          Stage, Parent->Id, I,
          [&] {
            streamPartition(Parent, I, Route);
            EndTask();
          },
          Rollback, Clstr ? &ClusterShuffle.MapExec[I] : nullptr);
      if (RegisterMapOutputs)
        RegisterMapOutputs(I);
    }
  }
  return Out;
}

void SparkContext::materializeWide(const RddRef &R) {
  uint32_t P = Config.NumPartitions;
  MemTag Tag = Config.UseStaticTags ? R->EffectiveTag : MemTag::None;
  maybeEvictStorage();
  RddContext Ctx(H);
  StageScope Span(*this, std::string("reduce ") + opKindName(R->Op) +
                             (R->VarName.empty()
                                  ? std::string()
                                  : " '" + R->VarName + "'"));

  // sortByKey first runs a sampling pass over its parent to choose range
  // splitters (Spark's RangePartitioner does the same extra job).
  std::function<uint32_t(int64_t)> Partitioner;
  if (R->Op == OpKind::SortByKey) {
    std::vector<int64_t> Sample;
    uint64_t Counter = 0;
    for (uint32_t I = 0; I != P; ++I) {
      size_t SampleSnapshot = Sample.size();
      uint64_t CounterSnapshot = Counter;
      runTask(
          "sortByKey sampling", R->Id, I,
          [&] {
            streamPartition(R->Parents[0], I, [&](ObjRef T) {
              if ((Counter++ & 15) == 0)
                Sample.push_back(Ctx.key(T));
            });
          },
          [&] {
            Sample.resize(SampleSnapshot);
            Counter = CounterSnapshot;
          });
    }
    std::sort(Sample.begin(), Sample.end());
    std::vector<int64_t> Splitters;
    for (uint32_t I = 1; I < P; ++I)
      Splitters.push_back(
          Sample.empty() ? 0 : Sample[I * Sample.size() / P]);
    Partitioner = [Splitters](int64_t K) {
      return static_cast<uint32_t>(
          std::upper_bound(Splitters.begin(), Splitters.end(), K) -
          Splitters.begin());
    };
  }

  Buckets In = shuffle(R->Parents[0], Partitioner);

  // Cluster mode: place each reduce task where most of its shuffle bytes
  // already sit, then account its block fetches (local free, remote over
  // the fabric) inside the retryable task body -- an injected executor
  // loss surfaces there as a lost-block fetch failure, and the retry
  // re-runs the lost map tasks from lineage first.
  std::vector<unsigned> ReduceExec;
  if (Clstr) {
    clusterBeginStage();
    ReduceExec.assign(P, 0);
  }

  GcRoot Dir(H, H.allocRefArray(P));
  std::string Stage =
      std::string("reduce ") + opKindName(R->Op) +
      (R->VarName.empty() ? std::string() : " '" + R->VarName + "'");
  // One retryable reduce task per partition. The shuffle buckets in `In`
  // stay intact across attempts, so a retry re-fetches the same input; all
  // heap effects before the final directory store are discarded garbage.
  for (uint32_t I = 0; I != P; ++I) {
    // Placement is lazy -- immediately before each task, not up front for
    // the whole stage -- so a straggler flagged by an earlier reduce task
    // is already steered around when the later ones place.
    if (Clstr)
      ReduceExec[I] = Clstr->placeTask(Clstr->preferredReducer(I));
    runTask(Stage, R->Id, I, [&] {
    if (Faults && Faults->shouldFail(FaultSite::ShuffleFetch))
      throw TaskFailure("injected shuffle fetch failure in stage '" + Stage +
                        "', partition " + std::to_string(I));
    if (Clstr)
      fetchShuffleInputs(In, I, ReduceExec[I]);
    std::vector<SourceRecord> &Rows = In[I];
    switch (R->Op) {
    case OpKind::ReduceByKey: {
      std::map<int64_t, double> Agg;
      for (const SourceRecord &Row : Rows) {
        auto [It, New] = Agg.emplace(Row.Key, Row.Val);
        if (!New)
          It->second = R->Combine(It->second, Row.Val);
      }
      if (Tag != MemTag::None)
        H.setPendingArrayTag(Tag, R->Id);
      ObjRef ArrRaw = H.allocRefArray(static_cast<uint32_t>(Agg.size()));
      H.setPendingArrayTag(MemTag::None, 0);
      H.header(ArrRaw.addr())->RddId = R->Id;
      GcRoot Arr(H, ArrRaw);
      uint32_t Index = 0;
      for (const auto &[K, V] : Agg) {
        ObjRef T = Ctx.makeTuple(K, V);
        H.storeRef(Arr.get(), Index++, T);
      }
      H.storeRef(Dir.get(), I, Arr.get());
      break;
    }
    case OpKind::GroupByKey: {
      std::map<int64_t, std::vector<double>> Groups;
      for (const SourceRecord &Row : Rows)
        Groups[Row.Key].push_back(Row.Val);
      if (Tag != MemTag::None)
        H.setPendingArrayTag(Tag, R->Id);
      ObjRef ArrRaw = H.allocRefArray(static_cast<uint32_t>(Groups.size()));
      H.setPendingArrayTag(MemTag::None, 0);
      H.header(ArrRaw.addr())->RddId = R->Id;
      GcRoot Arr(H, ArrRaw);
      uint32_t Index = 0;
      for (const auto &[K, Values] : Groups) {
        // CompactBuffer (Fig 1): tuple -> reference array -> boxed value
        // objects. The indirection is load-bearing: reading a cached
        // grouped RDD is a pointer chase, exactly like the paper's
        // String-element buffers.
        ObjRef Buf =
            H.allocRefArray(static_cast<uint32_t>(Values.size()));
        {
          GcRoot BufRoot(H, Buf);
          for (uint32_t J = 0; J != Values.size(); ++J) {
            ObjRef Box = Ctx.makeBox(Values[J]);
            H.storeRef(BufRoot.get(), J, Box);
          }
          ObjRef T = Ctx.makeTupleWithRef(K, 0.0, BufRoot.get());
          H.storeRef(Arr.get(), Index++, T);
        }
      }
      H.storeRef(Dir.get(), I, Arr.get());
      break;
    }
    case OpKind::Distinct: {
      std::map<std::pair<int64_t, int64_t>, bool> Seen;
      std::vector<SourceRecord> Unique;
      for (const SourceRecord &Row : Rows) {
        int64_t Bits;
        std::memcpy(&Bits, &Row.Val, sizeof(Bits));
        if (Seen.emplace(std::make_pair(Row.Key, Bits), true).second)
          Unique.push_back(Row);
      }
      if (Tag != MemTag::None)
        H.setPendingArrayTag(Tag, R->Id);
      ObjRef ArrRaw = H.allocRefArray(static_cast<uint32_t>(Unique.size()));
      H.setPendingArrayTag(MemTag::None, 0);
      H.header(ArrRaw.addr())->RddId = R->Id;
      GcRoot Arr(H, ArrRaw);
      for (uint32_t J = 0; J != Unique.size(); ++J) {
        ObjRef T = Ctx.makeTuple(Unique[J].Key, Unique[J].Val);
        H.storeRef(Arr.get(), J, T);
      }
      H.storeRef(Dir.get(), I, Arr.get());
      break;
    }
    case OpKind::SortByKey:
    case OpKind::Repartition: {
      // Sort a copy, never In[I] itself: the buckets are the shuffle's
      // data plane, which replica byte-verification (and any retry or
      // speculative re-run that re-fetches) checks against -- the reduce
      // body must leave it exactly as the map side wrote it.
      std::vector<SourceRecord> Output = Rows;
      if (R->Op == OpKind::SortByKey)
        std::sort(Output.begin(), Output.end(),
                  [](const SourceRecord &A, const SourceRecord &B) {
                    return A.Key != B.Key ? A.Key < B.Key : A.Val < B.Val;
                  });
      if (Tag != MemTag::None)
        H.setPendingArrayTag(Tag, R->Id);
      ObjRef ArrRaw = H.allocRefArray(static_cast<uint32_t>(Output.size()));
      H.setPendingArrayTag(MemTag::None, 0);
      H.header(ArrRaw.addr())->RddId = R->Id;
      GcRoot Arr(H, ArrRaw);
      for (uint32_t J = 0; J != Output.size(); ++J) {
        ObjRef T = Ctx.makeTuple(Output[J].Key, Output[J].Val);
        H.storeRef(Arr.get(), J, T);
      }
      H.storeRef(Dir.get(), I, Arr.get());
      break;
    }
    default:
      PANTHERA_CHECK(false, "not a materializing wide op");
    }
    }, nullptr, Clstr ? &ReduceExec[I] : nullptr);
    if (Clstr)
      Clstr->recordPartitionLocation(R->Id, I, ReduceExec[I]);
  }
  if (Clstr) {
    Clstr->endShuffle();
    ClusterShuffle = ActiveClusterShuffle();
  }

  ObjRef Top = H.allocPlain(/*NumRefs=*/1, /*PayloadBytes=*/0);
  heap::ObjectHeader *TopHdr = H.header(Top.addr());
  TopHdr->RddId = R->Id;
  if (Tag != MemTag::None)
    TopHdr->setMemTag(Tag);
  H.storeRef(Top, 0, Dir.get());
  installMaterialized(R, Top);
}

//===----------------------------------------------------------------------===
// Cluster mode: distributed shuffle fetch + lineage recovery
//===----------------------------------------------------------------------===

void SparkContext::fetchShuffleInputs(Buckets &In, uint32_t Reduce,
                                      unsigned Exec) {
  // A previous attempt (of this or an earlier reduce task) saw blocks die
  // with their executor: re-run those map tasks from lineage before
  // fetching, so this attempt finds every block live again.
  if (!ClusterShuffle.PendingRecompute.empty())
    recomputeLostMapOutputs(In);
  uint32_t P = Config.NumPartitions;
  for (uint32_t M = 0; M != P; ++M) {
    // Executor-loss injection rides the per-block fetch: a firing draw
    // kills the executor owning the block about to be fetched (never the
    // last live one).
    if (Faults && Clstr->numAlive() > 1 &&
        Faults->shouldFail(FaultSite::ExecutorLoss)) {
      unsigned Victim = Clstr->mapOutput(M, Reduce).Exec;
      if (Clstr->executorAlive(Victim)) {
        if (TraceSink)
          TraceSink->instant(support::TraceTrack::Engine, "executor lost",
                             "cluster", H.memory().totalTimeNs())
              .arg("executor", static_cast<uint64_t>(Victim));
        std::vector<uint32_t> LostMaps = Clstr->killExecutor(Victim);
        ClusterShuffle.PendingRecompute.insert(
            ClusterShuffle.PendingRecompute.end(), LostMaps.begin(),
            LostMaps.end());
      }
    }
    const cluster::BlockInfo &B = Clstr->mapOutput(M, Reduce);
    if (B.Lost) {
      // Queue the map task (again -- recomputeLostMapOutputs dedups) so
      // the retry repairs it even if an earlier recovery pass was itself
      // interrupted, then fail the task like Spark's FetchFailed.
      ClusterShuffle.PendingRecompute.push_back(M);
      throw TaskFailure("shuffle fetch failed: map output " +
                        std::to_string(M) + "/" + std::to_string(Reduce) +
                        " was lost with executor " + std::to_string(B.Exec));
    }
    // Transient fetch faults: a firing draw either drops the response on
    // the simulated wire (latency charged, no bytes) or delivers bytes
    // that fail the replica byte-verification. Either way the fetch
    // retries under capped exponential backoff; once the retry budget is
    // spent, the block is declared lost and the task fails over to the
    // lineage-recompute path, exactly like a real executor loss.
    uint32_t RetryLimit = std::max(1u, Clstr->config().Options.FetchRetryLimit);
    for (uint32_t Attempt = 1;; ++Attempt) {
      bool Ok;
      if (Faults && Faults->shouldFail(FaultSite::FetchTransient)) {
        // Alternate the failure mode on the site's fire count so one
        // probability knob exercises both drop and corruption.
        if (Faults->fired(FaultSite::FetchTransient) % 2 == 0) {
          Clstr->chargeDroppedFetch(M, Reduce, Exec);
          Ok = false;
        } else {
          Ok = Clstr->fetchBlock(M, Reduce, Exec,
                                 In[Reduce].data() + B.BucketOffset,
                                 /*InjectCorrupt=*/true);
        }
      } else {
        Ok = Clstr->fetchBlock(M, Reduce, Exec,
                               In[Reduce].data() + B.BucketOffset);
      }
      if (Ok)
        break;
      if (Attempt >= RetryLimit) {
        Clstr->markMapOutputLost(M);
        ClusterShuffle.PendingRecompute.push_back(M);
        throw TaskFailure("shuffle fetch failed: map output " +
                          std::to_string(M) + "/" + std::to_string(Reduce) +
                          " still unfetchable after " +
                          std::to_string(Attempt) + " attempts");
      }
      ++Clstr->stats().FetchRetries;
      chargeFetchBackoff(Attempt, M, Reduce);
    }
  }
}

void SparkContext::recomputeLostMapOutputs(Buckets &In) {
  // Lineage recovery is repair machinery: further injections are
  // suppressed while it runs, like recoverLostCaches.
  FaultSuppressionScope Suppress(Faults);
  std::vector<uint32_t> Maps = std::move(ClusterShuffle.PendingRecompute);
  ClusterShuffle.PendingRecompute.clear();
  std::sort(Maps.begin(), Maps.end());
  Maps.erase(std::unique(Maps.begin(), Maps.end()), Maps.end());
  uint32_t P = Config.NumPartitions;
  RddContext Ctx(H);
  memsim::HybridMemory &Mem = H.memory();
  for (uint32_t M : Maps) {
    double Start = Mem.totalTimeNs();
    // Deterministic re-execution of the lost map task: stream the parent
    // partition through the same per-record route + spill cost structure
    // and the same partitioner the original run used.
    std::vector<std::vector<SourceRecord>> Staged(P);
    streamPartition(ClusterShuffle.Parent, M, [&](ObjRef T) {
      Mem.addCpuWorkNs(2 * Config.ShuffleRecordCpuNs);
      int64_t K = Ctx.key(T);
      uint32_t Target = ClusterShuffle.Partitioner
                            ? ClusterShuffle.Partitioner(K)
                            : partitionOf(K, P);
      Staged[Target].push_back({K, Ctx.value(T)});
    });
    // Re-register on a live executor, checking the recomputation against
    // the intact data plane: lineage must reproduce the records exactly.
    unsigned E = Clstr->placeTask(Clstr->splitOwner(M));
    ClusterShuffle.MapExec[M] = E;
    for (uint32_t T = 0; T != P; ++T) {
      const cluster::BlockInfo &B = Clstr->mapOutput(M, T);
      PANTHERA_CHECK(B.Records == Staged[T].size(),
                     "lineage recomputation changed a block's size");
      PANTHERA_CHECK(B.Records == 0 ||
                         std::memcmp(In[T].data() + B.BucketOffset,
                                     Staged[T].data(), B.Bytes) == 0,
                     "lineage recomputation diverged from the data plane");
      Clstr->registerMapOutput(M, T, E, Staged[T].data(), B.Bytes, B.Records,
                               B.BucketOffset);
    }
    ++Clstr->stats().MapOutputsRecomputed;
    ++Stats.LineageRecomputations;
    if (TraceSink)
      TraceSink->span(support::TraceTrack::Engine, "recompute map output",
                      "cluster", Start, Mem.totalTimeNs() - Start)
          .arg("map", static_cast<uint64_t>(M))
          .arg("executor", static_cast<uint64_t>(E));
  }
}

//===----------------------------------------------------------------------===
// Deterministic parallel capture (rdd/Capture.h)
//===----------------------------------------------------------------------===

bool SparkContext::captureEligible(const RddRef &R) const {
  if (!R || R->Materialized)
    return false;
  switch (R->Op) {
  case OpKind::Source:
    return R->Source != nullptr;
  case OpKind::Map:
  case OpKind::Filter:
  case OpKind::FlatMap:
  case OpKind::MapValues:
    return captureEligible(R->Parents[0]);
  default:
    return false;
  }
}

void SparkContext::captureStream(const RddRef &R, uint32_t P,
                                 CaptureSession &S, const TupleSink &Sink) {
  // Mirrors streamPartition's narrow operators record for record, but
  // charges CPU and streamed-record counts into the session (merged at
  // replay) instead of the shared simulator, and allocates tuples in the
  // session arena via the RddContext capture redirect.
  RddContext Ctx(H);
  switch (R->Op) {
  case OpKind::Source: {
    const std::vector<SourceRecord> &Rows = (*R->Source)[P];
    for (const SourceRecord &Row : Rows) {
      S.CpuNs += Config.PerRecordCpuNs;
      ++S.Records;
      Sink(Ctx.makeTuple(Row.Key, Row.Val));
    }
    return;
  }
  case OpKind::Map:
    captureStream(R->Parents[0], P, S, [&](ObjRef T) {
      S.CpuNs += Config.PerRecordCpuNs;
      Sink(R->Map(Ctx, T));
    });
    return;
  case OpKind::Filter:
    captureStream(R->Parents[0], P, S, [&](ObjRef T) {
      S.CpuNs += Config.PerRecordCpuNs;
      if (R->Filter(Ctx, T))
        Sink(T);
    });
    return;
  case OpKind::FlatMap:
    captureStream(R->Parents[0], P, S, [&](ObjRef T) {
      S.CpuNs += Config.PerRecordCpuNs;
      R->FlatMap(Ctx, T, Sink);
    });
    return;
  case OpKind::MapValues:
    captureStream(R->Parents[0], P, S, [&](ObjRef T) {
      S.CpuNs += Config.PerRecordCpuNs;
      int64_t K = Ctx.key(T);
      double V = R->MapValueKey ? R->MapValueKey(K, Ctx.value(T))
                                : R->MapValue(Ctx.value(T));
      Sink(Ctx.makeTuple(K, V));
    });
    return;
  default:
    // captureEligible rejected everything else up front.
    throw CaptureAbort{};
  }
}

bool SparkContext::captureStage(const RddRef &R, ActionKind Kind,
                                std::vector<CaptureSession> &Sessions) {
  Sessions.assign(Config.NumPartitions, CaptureSession());
  auto CaptureOne = [&](size_t P, unsigned) {
    CaptureSession &S = Sessions[P];
    CaptureScope Scope(&S);
    try {
      switch (Kind) {
      case ActionKind::Count:
        captureStream(R, static_cast<uint32_t>(P), S,
                      [&](ObjRef) { ++S.SinkCount; });
        break;
      case ActionKind::Reduce:
        captureStream(R, static_cast<uint32_t>(P), S, [&](ObjRef T) {
          RddContext C(H);
          S.SinkVals.push_back(C.value(T));
        });
        break;
      case ActionKind::Collect:
        captureStream(R, static_cast<uint32_t>(P), S, [&](ObjRef T) {
          RddContext C(H);
          S.SinkRecs.push_back({C.key(T), C.value(T)});
        });
        break;
      }
    } catch (CaptureAbort &) {
      S.Aborted = true;
    } catch (...) {
      // A user-function failure aborts capture too: the serial rerun hits
      // the same exception and surfaces it through the ordinary task path.
      S.Aborted = true;
    }
  };
  if (Pool)
    Pool->run(Config.NumPartitions, CaptureOne);
  else
    for (uint32_t P = 0; P != Config.NumPartitions; ++P)
      CaptureOne(P, 0);
  for (const CaptureSession &S : Sessions)
    if (S.Aborted)
      return false;
  return true;
}

void SparkContext::replayPartition(const CaptureSession &S) {
  RddContext Ctx(H);
  memsim::HybridMemory &Mem = H.memory();
  Mem.addCpuWorkNs(S.CpuNs);
  Stats.RecordsStreamed += S.Records;
  // Broadcast reads the user functions peeked during capture, re-issued
  // through the persistent-root table (the block may have moved if a
  // replayed allocation GCed).
  for (const CaptureSession::RootRead &R : S.RootReads)
    (void)H.loadElemF64(H.persistentRoot(R.RootId), R.Index);
  for (const CaptureSession::Alloc &A : S.Allocs) {
    ObjRef T = Ctx.makeTuple(A.Key, A.Val);
    for (uint32_t I = 0; I != A.KeyReads; ++I)
      (void)H.loadI64(T, 0);
    for (uint32_t I = 0; I != A.ValReads; ++I)
      (void)H.loadF64(T, 8);
  }
}

//===----------------------------------------------------------------------===
// Actions
//===----------------------------------------------------------------------===

void SparkContext::finishAction() {
  while (!TempMaterialized.empty()) {
    RddRef Temp = TempMaterialized.back();
    TempMaterialized.pop_back();
    unpersist(Temp);
  }
}

int64_t SparkContext::runCount(const RddRef &R) {
  recordCall(R);
  prepare(R, MemTag::None);
  StageScope Span(*this, "count action");
  int64_t Total = 0;
  // Fault-free narrow source-rooted stages run the parallel capture phase,
  // then replay serially in partition order; everything else streams
  // serially as before. Either way the result and the simulated clock are
  // independent of the worker count.
  std::vector<CaptureSession> Sessions;
  bool Captured = !Faults && captureEligible(R) &&
                  captureStage(R, ActionKind::Count, Sessions);
  for (uint32_t P = 0; P != Config.NumPartitions; ++P) {
    int64_t Snapshot = Total;
    runTask(
        "count action", R->Id, P,
        [&] {
          if (Captured) {
            replayPartition(Sessions[P]);
            Total += static_cast<int64_t>(Sessions[P].SinkCount);
          } else {
            streamPartition(R, P, [&](ObjRef) { ++Total; });
          }
        },
        [&] { Total = Snapshot; });
  }
  finishAction();
  return Total;
}

double SparkContext::runReduce(const RddRef &R, const CombineFn &Fn) {
  recordCall(R);
  prepare(R, MemTag::None);
  StageScope Span(*this, "reduce action");
  RddContext Ctx(H);
  bool Seeded = false;
  double Acc = 0.0;
  // Parallel capture records each partition's sink values in stream
  // order; the fold below then combines them in exactly the serial
  // left-fold order, so the result is bit-identical at any thread count.
  std::vector<CaptureSession> Sessions;
  bool Captured = !Faults && captureEligible(R) &&
                  captureStage(R, ActionKind::Reduce, Sessions);
  for (uint32_t P = 0; P != Config.NumPartitions; ++P) {
    double AccSnapshot = Acc;
    bool SeededSnapshot = Seeded;
    runTask(
        "reduce action", R->Id, P,
        [&] {
          if (Captured) {
            replayPartition(Sessions[P]);
            for (double V : Sessions[P].SinkVals) {
              Acc = Seeded ? Fn(Acc, V) : V;
              Seeded = true;
            }
          } else {
            streamPartition(R, P, [&](ObjRef T) {
              double V = Ctx.value(T);
              Acc = Seeded ? Fn(Acc, V) : V;
              Seeded = true;
            });
          }
        },
        [&] {
          Acc = AccSnapshot;
          Seeded = SeededSnapshot;
        });
  }
  finishAction();
  return Acc;
}

std::vector<SourceRecord> SparkContext::runCollect(const RddRef &R) {
  recordCall(R);
  prepare(R, MemTag::None);
  StageScope Span(*this, "collect action");
  RddContext Ctx(H);
  std::vector<SourceRecord> Out;
  std::vector<CaptureSession> Sessions;
  bool Captured = !Faults && captureEligible(R) &&
                  captureStage(R, ActionKind::Collect, Sessions);
  for (uint32_t P = 0; P != Config.NumPartitions; ++P) {
    size_t Snapshot = Out.size();
    runTask(
        "collect action", R->Id, P,
        [&] {
          if (Captured) {
            replayPartition(Sessions[P]);
            for (const CaptureSession::KV &Rec : Sessions[P].SinkRecs)
              Out.push_back({Rec.Key, Rec.Val});
          } else {
            streamPartition(R, P, [&](ObjRef T) {
              Out.push_back({Ctx.key(T), Ctx.value(T)});
            });
          }
        },
        [&] { Out.resize(Snapshot); });
  }
  finishAction();
  return Out;
}
