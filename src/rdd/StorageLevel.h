//===- rdd/StorageLevel.h - Spark storage levels ----------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spark storage levels for persisted RDDs, plus the paper's §3 expansion
/// of each memory level into _DRAM and _NVM sub-levels.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_RDD_STORAGELEVEL_H
#define PANTHERA_RDD_STORAGELEVEL_H

#include "support/Errors.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace panthera {
namespace rdd {

/// Where a persisted RDD's partitions live.
enum class StorageLevel : uint8_t {
  MemoryOnly,
  MemoryOnlySer,
  MemoryAndDisk,
  MemoryAndDiskSer,
  DiskOnly,
  OffHeap,
};

inline const char *storageLevelName(StorageLevel L) {
  switch (L) {
  case StorageLevel::MemoryOnly:
    return "MEMORY_ONLY";
  case StorageLevel::MemoryOnlySer:
    return "MEMORY_ONLY_SER";
  case StorageLevel::MemoryAndDisk:
    return "MEMORY_AND_DISK";
  case StorageLevel::MemoryAndDiskSer:
    return "MEMORY_AND_DISK_SER";
  case StorageLevel::DiskOnly:
    return "DISK_ONLY";
  case StorageLevel::OffHeap:
    return "OFF_HEAP";
  }
  return "?";
}

/// True when the level keeps deserialized objects in the managed heap
/// (these are the levels Panthera's tags act on).
inline bool isHeapLevel(StorageLevel L) {
  return L == StorageLevel::MemoryOnly || L == StorageLevel::MemoryOnlySer ||
         L == StorageLevel::MemoryAndDisk ||
         L == StorageLevel::MemoryAndDiskSer;
}

/// Parses the DSL spelling. The empty string is the argless persist() form
/// and means MEMORY_ONLY; any other unknown spelling is a driver-program
/// bug (a typo'd level used to silently cache deserialized on-heap) and
/// throws EngineError.
inline StorageLevel parseStorageLevel(std::string_view Name) {
  if (Name.empty() || Name == "MEMORY_ONLY")
    return StorageLevel::MemoryOnly;
  if (Name == "MEMORY_ONLY_SER")
    return StorageLevel::MemoryOnlySer;
  if (Name == "MEMORY_AND_DISK")
    return StorageLevel::MemoryAndDisk;
  if (Name == "MEMORY_AND_DISK_SER")
    return StorageLevel::MemoryAndDiskSer;
  if (Name == "DISK_ONLY")
    return StorageLevel::DiskOnly;
  if (Name == "OFF_HEAP")
    return StorageLevel::OffHeap;
  throw EngineError("unknown storage level '" + std::string(Name) + "'");
}

} // namespace rdd
} // namespace panthera

#endif // PANTHERA_RDD_STORAGELEVEL_H
