//===- rdd/StorageLevel.h - Spark storage levels ----------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spark storage levels for persisted RDDs, plus the paper's §3 expansion
/// of each memory level into _DRAM and _NVM sub-levels.
///
/// Every property a level implies -- its DSL spelling, whether partitions
/// live on the managed heap, whether they are serialized, whether a disk
/// copy backs them, and whether the off-heap region tier owns them -- comes
/// from one table (StorageLevelProps). The parser, Rdd::persistAs, the
/// materializers, and the report block all index the same rows, so a level
/// cannot mean different things in different layers.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_RDD_STORAGELEVEL_H
#define PANTHERA_RDD_STORAGELEVEL_H

#include "support/Errors.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace panthera {
namespace rdd {

/// Where a persisted RDD's partitions live.
enum class StorageLevel : uint8_t {
  MemoryOnly,
  MemoryOnlySer,
  MemoryAndDisk,
  MemoryAndDiskSer,
  DiskOnly,
  OffHeapSer,
};

/// The properties a storage level implies, in one row.
struct StorageLevelProps {
  const char *Name;  ///< DSL spelling.
  bool OnHeap;       ///< Partitions live as managed-heap objects.
  bool Serialized;   ///< Cached form is a serialized byte run.
  bool DiskBacked;   ///< A disk copy exists (or is the only copy).
  bool OffHeap;      ///< Owned by the off-heap region tier (docs/offheap.md).
};

/// One row per StorageLevel, in enum order.
inline constexpr StorageLevelProps StorageLevelTable[] = {
    {"MEMORY_ONLY", true, false, false, false},
    {"MEMORY_ONLY_SER", true, true, false, false},
    {"MEMORY_AND_DISK", true, false, true, false},
    {"MEMORY_AND_DISK_SER", true, true, true, false},
    {"DISK_ONLY", false, false, true, false},
    {"OFF_HEAP", false, true, false, true},
};

inline const StorageLevelProps &levelProps(StorageLevel L) {
  return StorageLevelTable[static_cast<uint8_t>(L)];
}

inline const char *storageLevelName(StorageLevel L) {
  return levelProps(L).Name;
}

/// True when the level keeps deserialized objects in the managed heap
/// (these are the levels Panthera's tags act on).
inline bool isHeapLevel(StorageLevel L) { return levelProps(L).OnHeap; }

/// True when the cached form is a serialized byte run (on-heap primitive
/// array or off-heap region) rather than an object graph.
inline bool isSerializedLevel(StorageLevel L) {
  return levelProps(L).Serialized;
}

/// Parses the DSL spelling against the table. The empty string is the
/// argless persist() form and means MEMORY_ONLY; any other unknown
/// spelling is a driver-program bug (a typo'd level used to silently cache
/// deserialized on-heap) and throws EngineError.
inline StorageLevel parseStorageLevel(std::string_view Name) {
  if (Name.empty())
    return StorageLevel::MemoryOnly;
  for (size_t I = 0;
       I != sizeof(StorageLevelTable) / sizeof(StorageLevelTable[0]); ++I)
    if (Name == StorageLevelTable[I].Name)
      return static_cast<StorageLevel>(I);
  throw EngineError("unknown storage level '" + std::string(Name) + "'");
}

} // namespace rdd
} // namespace panthera

#endif // PANTHERA_RDD_STORAGELEVEL_H
