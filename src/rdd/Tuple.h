//===- rdd/Tuple.h - Heap layout of RDD data tuples -------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap shape of RDD elements, mirroring the paper's Fig 1: a
/// materialized partition is a reference array whose elements are tuple
/// objects; a tuple holds an int64 key, a double value, and an optional
/// reference to a nested payload (a CompactBuffer primitive array for
/// groupByKey results, a pair object for co-grouped values, etc.).
///
/// Tuple layout: Plain object, 1 ref slot (payload), 16 payload bytes
/// (key at offset 0, value at offset 8).
///
/// RddContext wraps the heap with element-level helpers and is the handle
/// user transformation functions receive. Functions that hold a tuple
/// reference across an allocation must protect it with heap::GcRoot --
/// allocation can trigger a moving collection.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_RDD_TUPLE_H
#define PANTHERA_RDD_TUPLE_H

#include "heap/Heap.h"
#include "rdd/Capture.h"

namespace panthera {
namespace rdd {

/// Element-level view over the managed heap for user functions.
///
/// During a parallel capture pass (rdd/Capture.h) every operation is
/// redirected to the thread's arena instead of the heap: tuples become
/// arena records, key/value reads are counted for exact replay, and any
/// operation the arena cannot model throws CaptureAbort so the stage
/// falls back to the serial path.
class RddContext {
public:
  explicit RddContext(heap::Heap &H) : H(H) {}

  heap::Heap &heap() {
    if (ActiveCapture)
      throw CaptureAbort{};
    return H;
  }

  /// Allocates a (key, value) tuple with a null payload reference.
  heap::ObjRef makeTuple(int64_t Key, double Value) {
    if (CaptureSession *S = ActiveCapture)
      return S->makeTuple(Key, Value);
    heap::ObjRef T = H.allocPlain(/*NumRefs=*/1, /*PayloadBytes=*/16);
    H.storeI64(T, 0, Key);
    H.storeF64(T, 8, Value);
    return T;
  }

  /// Allocates a tuple carrying a payload reference. \p Payload is rooted
  /// internally across the allocation.
  heap::ObjRef makeTupleWithRef(int64_t Key, double Value,
                                heap::ObjRef Payload) {
    if (ActiveCapture)
      throw CaptureAbort{};
    heap::GcRoot Saved(H, Payload);
    heap::ObjRef T = H.allocPlain(/*NumRefs=*/1, /*PayloadBytes=*/16);
    H.storeI64(T, 0, Key);
    H.storeF64(T, 8, Value);
    H.storeRef(T, 0, Saved.get());
    return T;
  }

  int64_t key(heap::ObjRef Tuple) {
    if (CaptureSession *S = ActiveCapture)
      return S->key(Tuple);
    return H.loadI64(Tuple, 0);
  }
  double value(heap::ObjRef Tuple) {
    if (CaptureSession *S = ActiveCapture)
      return S->value(Tuple);
    return H.loadF64(Tuple, 8);
  }
  heap::ObjRef payload(heap::ObjRef Tuple) {
    if (ActiveCapture)
      throw CaptureAbort{};
    return H.loadRef(Tuple, 0);
  }

  /// Length of a tuple's CompactBuffer payload (0 for a null payload).
  uint32_t bufferLength(heap::ObjRef Tuple) {
    heap::ObjRef Buf = payload(Tuple);
    return Buf ? H.arrayLength(Buf) : 0;
  }

  /// Reads element \p I of a CompactBuffer. Buffers built by groupByKey
  /// are reference arrays of boxed values (the paper's Fig 1 heap shape:
  /// buffer -> element object -> payload), so reading an element is a
  /// pointer chase; primitive arrays are also accepted.
  double bufferValue(heap::ObjRef Buffer, uint32_t I) {
    if (ActiveCapture)
      throw CaptureAbort{};
    if (H.header(Buffer.addr())->kind() == heap::ObjectKind::RefArray) {
      heap::ObjRef Box = H.loadRef(Buffer, I);
      return H.loadF64(Box, 0);
    }
    return H.loadElemF64(Buffer, I);
  }

  /// Allocates a boxed double (Plain object, 8-byte payload).
  heap::ObjRef makeBox(double Value) {
    if (ActiveCapture)
      throw CaptureAbort{};
    heap::ObjRef Box = H.allocPlain(/*NumRefs=*/0, /*PayloadBytes=*/8);
    H.storeF64(Box, 0, Value);
    return Box;
  }

private:
  heap::Heap &H;
};

} // namespace rdd
} // namespace panthera

#endif // PANTHERA_RDD_TUPLE_H
