//===- rdd/PartitionBuilder.h - GC-safe growable partition ------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulates streamed tuples into a partition array when the final count
/// is unknown (persisted narrow RDDs downstream of filter/flatMap). Native
/// vectors of ObjRefs would dangle across moving collections, so elements
/// are staged in heap-allocated chunk arrays hung off a rooted directory;
/// finish() allocates the exact-size partition array -- through the
/// rdd_alloc pretenuring pathway when a tag applies -- and copies the
/// references over.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_RDD_PARTITIONBUILDER_H
#define PANTHERA_RDD_PARTITIONBUILDER_H

#include "heap/Heap.h"

#include <functional>

namespace panthera {
namespace rdd {

/// GC-safe append-only staging buffer for one partition's tuples.
class PartitionBuilder {
public:
  /// \p MaxChunks bounds capacity at MaxChunks * ChunkCapacity elements.
  explicit PartitionBuilder(heap::Heap &H, uint32_t MaxChunks = 4096);

  /// Appends one element (rooted internally while chunks grow).
  void append(heap::ObjRef Element);

  uint32_t size() const { return Count; }

  /// Visits every staged element in append order. \p Fn must not allocate
  /// (elements are re-read per chunk, not individually rooted).
  void forEach(const std::function<void(heap::ObjRef)> &Fn);

  /// Drops all staged elements (they become garbage) and resets the
  /// builder for reuse. Used by shuffle spilling: the rooted directory
  /// slot is retained, so GC-root LIFO order is preserved.
  void clear();

  /// Allocates the exact-size partition array and fills it. When \p Tag is
  /// not None, arms the heap's pending-array state first (the §4.2.1
  /// rdd_alloc protocol) so a sufficiently large array is pretenured into
  /// the tagged old-generation space and stamped with \p RddId.
  heap::ObjRef finish(MemTag Tag, uint32_t RddId);

  static constexpr uint32_t ChunkCapacity = 4096;

private:
  heap::Heap &H;
  heap::GcRoot Directory; ///< RefArray of chunk arrays.
  uint32_t NumChunks = 0;
  uint32_t InChunk = ChunkCapacity; // force a chunk on first append
  uint32_t Count = 0;
};

} // namespace rdd
} // namespace panthera

#endif // PANTHERA_RDD_PARTITIONBUILDER_H
