//===- rdd/Rdd.h - RDD lineage graph and the driver-facing API --*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Spark-like data-parallel engine: lazy RDD lineage nodes, the typed
/// driver-facing Rdd handle (map/filter/flatMap/mapValues/groupByKey/
/// reduceByKey/distinct/join/union + persist and actions), and the
/// SparkContext that schedules execution.
///
/// Execution model (mirroring §2):
///  * Narrow transformations stream: each record is a short-lived tuple
///    object allocated in the young generation and passed through the
///    function chain (the paper's "intermediate RDDs die young").
///  * Wide transformations cut stages: the map side streams parent
///    partitions into hash-partitioned native shuffle buckets ("disk");
///    the reduce side materializes a ShuffledRDD -- real heap arrays of
///    tuples -- as the next stage's input.
///  * persist() materializes a variable's partitions in the heap and roots
///    them; the §3 static tag is applied through the rdd_alloc pathway at
///    each partition-array allocation (§4.2.1).
///  * Memory tags propagate backward through the lineage when stages are
///    scheduled: an untagged ShuffledRDD inherits the tag of the closest
///    downstream tagged RDD, DRAM winning conflicts (§3).
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_RDD_RDD_H
#define PANTHERA_RDD_RDD_H

#include "analysis/TagInference.h"
#include "gc/AccessMonitor.h"
#include "heap/Heap.h"
#include "rdd/StorageLevel.h"
#include "rdd/Tuple.h"
#include "support/Errors.h"
#include "support/FaultInjector.h"
#include "support/Statistics.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace panthera {

namespace support {
class WorkStealingPool;
class MetricsRegistry;
class TraceLog;
} // namespace support

namespace cluster {
class Cluster;
} // namespace cluster

namespace offheap {
class OffHeapCache;
} // namespace offheap

namespace rdd {

/// Operator of a lineage node.
enum class OpKind : uint8_t {
  Source,
  Map,
  Filter,
  FlatMap,
  MapValues,
  Union,
  GroupByKey,
  ReduceByKey,
  Distinct,
  Join,
  Repartition, ///< Implicit hash-repartition inserted before joins whose
               ///< left input is not hash-partitioned.
  SortByKey,   ///< Range-partitioned total sort (sampled splitters).
};

/// How a node's output records are distributed across partitions.
enum class Partitioning : uint8_t {
  None, ///< Arbitrary (source splits, key-changing maps).
  Hash, ///< Hash of the key mod partitions (shuffle outputs).
  Range ///< Sorted, range-partitioned (sortByKey outputs).
};

/// True for operators that introduce a wide (shuffle) dependency. Join is
/// narrow here: both inputs are key-partitioned (the engine inserts an
/// implicit Repartition otherwise), which is exactly Spark's co-partitioned
/// join optimization.
inline bool isWideOp(OpKind K) {
  return K == OpKind::GroupByKey || K == OpKind::ReduceByKey ||
         K == OpKind::Distinct || K == OpKind::Repartition ||
         K == OpKind::SortByKey;
}

const char *opKindName(OpKind K);

/// One record of source ("text file") data.
struct SourceRecord {
  int64_t Key;
  double Val;
};

/// Per-partition source data, generated natively by the workloads.
using SourceData = std::vector<std::vector<SourceRecord>>;

/// Receives streamed tuples.
using TupleSink = std::function<void(heap::ObjRef)>;

/// User functions. They receive heap tuples; any tuple held across an
/// allocation must be protected with heap::GcRoot (see rdd/Tuple.h).
using MapFn = std::function<heap::ObjRef(RddContext &, heap::ObjRef)>;
using FilterFn = std::function<bool(RddContext &, heap::ObjRef)>;
using FlatMapFn =
    std::function<void(RddContext &, heap::ObjRef, const TupleSink &)>;
using ValueFn = std::function<double(double)>;
/// mapValuesWithKey's function: receives (key, value), returns new value.
using ValueKeyFn = std::function<double(int64_t, double)>;
using CombineFn = std::function<double(double, double)>;
/// Join combiner: left tuple (with payload) plus the matching right-side
/// value (shuffles carry (int64, double) records).
using JoinFn =
    std::function<heap::ObjRef(RddContext &, heap::ObjRef, double)>;

class SparkContext;

/// A lineage node. Driver code uses the Rdd handle below instead.
struct RddNode {
  uint32_t Id = 0;
  std::string VarName; ///< Driver variable name; "" for intermediates.
  OpKind Op = OpKind::Source;
  std::vector<std::shared_ptr<RddNode>> Parents;

  MapFn Map;
  FilterFn Filter;
  FlatMapFn FlatMap;
  ValueFn MapValue;
  ValueKeyFn MapValueKey;
  CombineFn Combine;
  JoinFn Join;
  const SourceData *Source = nullptr;

  bool PersistRequested = false;
  StorageLevel Level = StorageLevel::MemoryOnly;
  /// Tag from the §3 static analysis (applied at persist/action sites).
  MemTag StaticTag = MemTag::None;
  /// Tag after lineage back-propagation (set during scheduling).
  MemTag EffectiveTag = MemTag::None;

  /// How this node's output is partitioned by key.
  Partitioning PartitionedBy = Partitioning::None;

  // Materialization state.
  bool Materialized = false;
  /// True when partitions are stored serialized: one primitive array of
  /// (key, value-bits) pairs per partition instead of tuple object graphs
  /// (the _SER storage levels). GC-cheap; reads pay deserialization.
  bool SerializedInMemory = false;
  /// True when partitions live in the off-heap region tier behind
  /// GC-leaf stub objects (OFF_HEAP with --offheap-mb > 0). The top/dir
  /// structure holds one OffHeapStub per partition; a stub whose native
  /// address is offheap::NoAddress was spilled to DiskParts.
  bool OffHeapStubs = false;
  size_t TopRootId = SIZE_MAX; ///< Persistent root of the top object.
  /// LRU clock for storage eviction (bumped on every materialized read).
  uint64_t LastUse = 0;
  /// OFF_HEAP / DISK_ONLY backing: per-partition (native address, count).
  struct NativePartition {
    uint64_t Addr = 0;
    uint32_t Count = 0;
  };
  std::vector<NativePartition> NativeParts;
  std::vector<std::vector<SourceRecord>> DiskParts; ///< DISK_ONLY rows.
};

using RddRef = std::shared_ptr<RddNode>;

/// Driver-facing RDD handle: a thin typed wrapper over a lineage node.
class Rdd {
public:
  Rdd() = default;
  Rdd(SparkContext *Ctx, RddRef Node) : Ctx(Ctx), Node(std::move(Node)) {}

  bool valid() const { return Node != nullptr; }
  RddRef node() const { return Node; }
  SparkContext *context() const { return Ctx; }
  uint32_t id() const { return Node->Id; }
  const std::string &varName() const { return Node->VarName; }

  //===--- transformations (lazy) -----------------------------------------===
  Rdd map(MapFn Fn) const;
  Rdd filter(FilterFn Fn) const;
  Rdd flatMap(FlatMapFn Fn) const;
  Rdd mapValues(ValueFn Fn) const;
  /// Like mapValues but the function also sees the key. Keys are unchanged
  /// so partitioning is preserved.
  Rdd mapValuesWithKey(ValueKeyFn Fn) const;
  Rdd groupByKey() const;
  Rdd reduceByKey(CombineFn Fn) const;
  Rdd distinct() const;
  /// Globally sorts by key via sampled range partitioning (TeraSort-style
  /// total order: partition i's keys all precede partition i+1's).
  Rdd sortByKey() const;
  /// Keeps each record with probability \p Fraction (deterministic per
  /// key and \p Seed); a narrow Bernoulli sample.
  Rdd sample(double Fraction, uint64_t Seed) const;
  /// Joins this RDD (left, payloads preserved) with \p Right's values.
  Rdd join(const Rdd &Right, JoinFn Fn) const;
  Rdd unionWith(const Rdd &Other) const;

  //===--- persistence ----------------------------------------------------===
  /// Names this RDD after driver variable \p Var (the analysis key) and
  /// requests persistence at \p Level.
  Rdd persistAs(const std::string &Var, StorageLevel Level) const;
  /// Names the RDD without persisting (action-materialized variables).
  Rdd named(const std::string &Var) const;
  void unpersist() const;
  /// Eagerly writes this RDD to reliable storage ("disk") and truncates
  /// its lineage: later reads deserialize the checkpoint instead of
  /// recomputing upstream stages (Spark's RDD.checkpoint()).
  void checkpoint() const;

  //===--- actions (eager) ------------------------------------------------===
  int64_t count() const;
  double reduce(CombineFn Fn) const;
  /// Collects (key, value) pairs; payload refs are not collected.
  std::vector<SourceRecord> collect() const;

private:
  SparkContext *Ctx = nullptr;
  RddRef Node;
};

/// Engine configuration.
struct EngineConfig {
  uint32_t NumPartitions = 4;
  /// Whether §3 static tags flow into rdd_alloc (Panthera policy only).
  bool UseStaticTags = true;
  /// CPU nanoseconds charged per record per operator application.
  double PerRecordCpuNs = 20.0;
  /// CPU nanoseconds per record of shuffle serialization ("disk" I/O).
  double ShuffleRecordCpuNs = 15.0;
  /// Records a map-side shuffle buffer holds before spilling to "disk"
  /// (Spark's ExternalSorter spill threshold, scaled).
  uint32_t ShuffleSpillRecords = 16384;
  /// CPU nanoseconds per record read back from or written to "disk"
  /// (eviction and DISK_ONLY I/O; the device itself is unaccounted).
  double DiskRecordCpuNs = 60.0;
  /// Old-generation occupancy at which MEMORY_AND_DISK blocks evict.
  double EvictionOccupancy = 0.80;
  /// Total attempts a per-partition task gets before its stage fails
  /// (Spark's spark.task.maxFailures, default 4).
  uint32_t MaxTaskAttempts = 4;
  /// Retry backoff, charged as simulated CPU time: attempt k waits
  /// min(RetryBackoffBaseNs * 2^(k-1), RetryBackoffMaxNs). Deterministic --
  /// attempt-count based, no wall clock.
  double RetryBackoffBaseNs = 1000.0;
  double RetryBackoffMaxNs = 64000.0;
};

/// Engine statistics (Table 5 and general sanity checks).
struct EngineStats {
  uint64_t StagesRun = 0;
  uint64_t ShuffleRecords = 0;
  uint64_t ShuffleSpills = 0;
  uint64_t RddsMaterialized = 0;
  uint64_t RddsEvictedToDisk = 0;
  uint64_t RecordsStreamed = 0;
  // Fault-tolerance counters.
  uint64_t TasksLaunched = 0;
  uint64_t TaskRetries = 0;          ///< Attempts beyond each task's first.
  uint64_t InjectedTaskFailures = 0; ///< TaskExecution-site fires.
  uint64_t CacheLossEvents = 0;      ///< Materialized caches dropped.
  uint64_t LineageRecomputations = 0;///< Lost caches rebuilt from lineage.
  uint64_t OomTaskFailures = 0;      ///< Task attempts that hit OOM.
};

/// The executor + scheduler. One per Runtime.
class SparkContext {
public:
  SparkContext(heap::Heap &H, gc::AccessMonitor *Monitor,
               const EngineConfig &Config);

  heap::Heap &heapRef() { return H; }
  const EngineConfig &config() const { return Config; }
  EngineStats &stats() { return Stats; }
  const TaskLedger &taskLedger() const { return Ledger; }

  /// Installs the (optional) deterministic fault injector.
  void setFaultInjector(FaultInjector *F) { Faults = F; }
  /// Installs the shared worker pool; without one, stages run serially.
  void setThreadPool(support::WorkStealingPool *P) { Pool = P; }
  /// Installs the multi-executor cluster simulation (docs/cluster.md).
  /// Null (the default) runs the seed single-heap engine; with a cluster,
  /// tasks are placed by locality, map outputs register per executor, and
  /// reducers fetch remote blocks through the simulated fabric. The data
  /// plane (bucket contents and order) is identical either way.
  void setCluster(cluster::Cluster *C) { Clstr = C; }
  /// Installs the off-heap region cache tier (docs/offheap.md). Null (the
  /// default, --offheap-mb=0) keeps the seed OFF_HEAP materialization
  /// path byte-identical; with a tier, OFF_HEAP partitions serialize into
  /// regions behind GC-leaf stub objects.
  void setOffHeapCache(offheap::OffHeapCache *C) { OffHeap = C; }
  /// Installs the observability sinks (docs/observability.md): stage and
  /// per-partition task spans on the engine track, stamped with the
  /// simulated clock. Either may be null. Scalar engine.* counters are
  /// synced from EngineStats by Runtime::publishMetrics.
  void setTelemetry(support::MetricsRegistry *M, support::TraceLog *T) {
    Metrics = M;
    TraceSink = T;
  }
  /// Installs the post-recovery heap verification hook (runs after every
  /// successful task retry when RuntimeConfig::VerifyHeapAfterRecovery).
  void setRecoveryVerifier(std::function<void(const char *)> Fn) {
    RecoveryVerifier = std::move(Fn);
  }

  /// Heap pressure callback target: evicts the single least-recently-used
  /// resident MEMORY_AND_DISK cache to disk. Returns false when nothing is
  /// left to shed (the heap then raises OutOfMemoryError).
  bool evictOneUnderPressure();

  /// Installs the static-analysis result; persistAs/named consult it.
  void setAnalysis(const analysis::AnalysisResult *Result) {
    Analysis = Result;
  }

  /// Creates a source RDD over \p Data (whose lifetime the caller owns).
  Rdd source(const SourceData *Data, const std::string &Name = "");

  /// Maps an RDD instance id to its driver variable name ("" if none).
  std::string varNameOf(uint32_t RddId) const;

  // Internal API used by the Rdd handle.
  Rdd derive(OpKind Op, std::vector<RddRef> Parents);
  void persist(const RddRef &R, StorageLevel Level, const std::string &Var);
  void unpersist(const RddRef &R);
  int64_t runCount(const RddRef &R);
  double runReduce(const RddRef &R, const CombineFn &Fn);
  std::vector<SourceRecord> runCollect(const RddRef &R);
  void recordCall(const RddRef &R);

  /// Drops the in-heap copy of a materialized MEMORY_AND_DISK RDD to
  /// "disk" (the BlockManager eviction path); later reads deserialize
  /// from the disk copy instead of recomputing the lineage.
  void evictToDisk(const RddRef &R);

private:
  //===--- scheduling -----------------------------------------------------===
  /// Prepares \p R for streaming: back-propagates \p DownstreamTag,
  /// materializes persisted RDDs and wide dependencies. With
  /// \p DeferMaterialize, R's own materialization is left to the caller
  /// (shuffle fusion: the consuming wide op materializes it in the same
  /// streaming pass that writes the shuffle, as Spark does).
  void prepare(const RddRef &R, MemTag DownstreamTag,
               bool DeferMaterialize = false);
  /// Streams partition \p P of a prepared narrow chain into \p Sink.
  void streamPartition(const RddRef &R, uint32_t P, const TupleSink &Sink);
  void streamMaterialized(const RddRef &R, uint32_t P,
                          const TupleSink &Sink);
  /// Shuffle-fusion hooks threaded into materializeNarrow: \p Tee receives
  /// every streamed tuple; Begin/End/Rollback bracket each per-partition
  /// task so a failed map task can undo its partially-routed records.
  struct ShuffleFusion {
    const TupleSink *Tee = nullptr;
    std::function<void()> BeginTask; ///< Snapshot the shuffle output state.
    std::function<void()> EndTask;   ///< Flush route buffers to the output.
    std::function<void()> Rollback;  ///< Restore the BeginTask snapshot.
    /// Cluster mode: place the map task / register its outputs. Invoked
    /// around each fused per-partition task (outside the retry body).
    std::function<void(uint32_t)> BeforeTask;
    std::function<void(uint32_t)> AfterTask;
    /// Cluster mode: where BeforeTask recorded partition I's executor --
    /// runTask reads it for straggler accounting and rewrites it when a
    /// speculative copy wins, before AfterTask registers the outputs.
    std::function<unsigned *(uint32_t)> ExecSlot;
  };

  /// Materializes a narrow persisted RDD, one retryable task per partition;
  /// \p Fusion carries the consuming shuffle's sink and rollback hooks.
  void materializeNarrow(const RddRef &R,
                         const ShuffleFusion *Fusion = nullptr);
  void materializeWide(const RddRef &R);
  void finishAction();

  //===--- deterministic parallel capture (rdd/Capture.h) -----------------===
  /// The action an eligible stage feeds; decides which sink is recorded.
  enum class ActionKind { Count, Reduce, Collect };
  /// True when \p R's chain is narrow, un-materialized, and source-rooted
  /// -- the shape capture can model. Thread-count independent.
  bool captureEligible(const RddRef &R) const;
  /// Runs the capture phase for every partition in parallel. Returns false
  /// (all sessions discarded) if any partition aborted capture.
  bool captureStage(const RddRef &R, ActionKind Kind,
                    std::vector<CaptureSession> &Sessions);
  /// Re-executes \p R's function chain for partition \p P against \p S's
  /// arena. Runs on a pool worker; touches no shared state.
  void captureStream(const RddRef &R, uint32_t P, CaptureSession &S,
                     const TupleSink &Sink);
  /// Serially re-issues one captured partition against the real heap:
  /// CPU charges, streamed-record counts, tuple allocations, and the
  /// recorded per-tuple reads, in recorded order.
  void replayPartition(const CaptureSession &S);

  //===--- task-level fault tolerance -------------------------------------===
  /// Runs one per-partition task with retry. \p Body does the work;
  /// \p Rollback undoes its partial effects after a failed attempt (may be
  /// null when the body's effects are all-or-nothing). TaskFailure and
  /// OutOfMemoryError are caught and retried with capped exponential
  /// backoff up to EngineConfig::MaxTaskAttempts; lost caches recorded by
  /// the failure are recomputed from lineage before the next attempt.
  /// \p PlacedExec (cluster mode only) points at the executor the task was
  /// placed on: a successful attempt feeds straggler detection, and when a
  /// speculative copy wins, the original attempt is rolled back, the body
  /// re-runs as the copy, and *PlacedExec is rewritten to the winner.
  void runTask(const std::string &Stage, uint32_t RddId, uint32_t Partition,
               const std::function<void()> &Body,
               const std::function<void()> &Rollback = {},
               unsigned *PlacedExec = nullptr);
  /// Charges the deterministic attempt-count-based backoff delay.
  void chargeBackoff(uint32_t Attempt);
  /// Same capped exponential schedule for a failed transient block fetch,
  /// with a `backoff` trace span and cluster.fetch_retry.* accounting.
  void chargeFetchBackoff(uint32_t Attempt, uint32_t Map, uint32_t Reduce);
  /// Cluster mode: opens a scheduler stage (elastic events apply, loads
  /// reset) and draws the slow-executor fault site once per live healthy
  /// executor -- a fire degrades that executor for the rest of the run.
  void clusterBeginStage();
  /// Re-materializes every cache recorded in LostCaches (injection
  /// suppressed while recovering).
  void recoverLostCaches();
  /// Drops \p R's materialized state (cache loss) so the next prepare or
  /// recovery pass recomputes it from lineage.
  void dropMaterialized(const RddRef &R);
  /// True when a lost cache can be rebuilt (lineage intact or source data
  /// still attached); checkpointed RDDs with truncated lineage cannot.
  static bool canRecompute(const RddRef &R);
  /// True when the shuffle feeding a wide op can materialize \p Parent in
  /// the same pass instead of re-reading it afterwards.
  bool canFuseIntoShuffle(const RddRef &Parent) const;

  /// RAII stage span: records the simulated clock at construction and
  /// emits a trace span on scope exit (also when an exception unwinds the
  /// stage). No-op without an installed TraceLog.
  class StageScope {
  public:
    StageScope(SparkContext &Ctx, std::string Name);
    ~StageScope();
    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

  private:
    SparkContext &Ctx;
    std::string Name;
    double StartNs;
  };

  /// Under old-generation pressure, drops the in-heap copy of the
  /// least-recently-used MEMORY_AND_DISK(_SER) RDDs to "disk" (Spark's
  /// BlockManager eviction) until occupancy falls below the threshold.
  void maybeEvictStorage();

  /// Off-heap budget pressure: spills the tier's eviction pick (untouched
  /// regions first) to executor "disk", retargets its stub to
  /// offheap::NoAddress, and releases the region. Returns false when
  /// nothing cacheable is left to shed. \p Current / \p CurrentDir let the
  /// materializer hand in the not-yet-rooted RDD it is building, whose
  /// already-cached partitions are themselves eviction candidates.
  bool spillOffHeapVictim(const RddRef &Current = nullptr,
                          heap::ObjRef CurrentDir = heap::ObjRef());

  /// Runs the map side of a shuffle of \p Parent into Buckets, routing by
  /// \p Partitioner (hash of the key when empty; sortByKey passes a range
  /// partitioner built from sampled splitters).
  using Buckets = std::vector<std::vector<SourceRecord>>;
  Buckets shuffle(const RddRef &Parent,
                  const std::function<uint32_t(int64_t)> &Partitioner = {});

  heap::ObjRef buildPartitionArray(const RddRef &R, uint32_t P,
                                   const std::vector<heap::ObjRef> &) =
      delete; // tuples cannot live in native vectors across GC

  void installMaterialized(const RddRef &R, heap::ObjRef Top);

  //===--- cluster mode (docs/cluster.md) ---------------------------------===
  /// Control-plane state of the shuffle currently tracked by the cluster:
  /// what a lost map output needs for a lineage re-run. The data plane
  /// (the driver-side buckets) is untouched by executor loss.
  struct ActiveClusterShuffle {
    bool Active = false;
    RddRef Parent;
    std::function<uint32_t(int64_t)> Partitioner;
    std::vector<unsigned> MapExec; ///< Executor that ran each map task.
    /// Map tasks whose registered outputs died with an executor; the next
    /// reduce attempt re-runs them before fetching.
    std::vector<uint32_t> PendingRecompute;
  };
  /// Accounts the block fetches feeding reduce task \p Reduce running on
  /// executor \p Exec: drains pending lineage recomputations, draws the
  /// executor-loss fault site per block, throws TaskFailure on a lost
  /// block (the task retry finds the recomputed output), and charges the
  /// fabric for remote blocks.
  void fetchShuffleInputs(Buckets &In, uint32_t Reduce, unsigned Exec);
  /// Re-runs the map tasks in PendingRecompute under fault suppression,
  /// verifying the recomputed records against the intact buckets and
  /// re-registering their blocks on live executors.
  void recomputeLostMapOutputs(Buckets &In);

  friend class Rdd; // checkpoint() drives prepare/stream directly

  heap::Heap &H;
  gc::AccessMonitor *Monitor;
  EngineConfig Config;
  EngineStats Stats;
  TaskLedger Ledger;
  FaultInjector *Faults = nullptr;
  support::WorkStealingPool *Pool = nullptr;
  cluster::Cluster *Clstr = nullptr;
  ActiveClusterShuffle ClusterShuffle;
  support::MetricsRegistry *Metrics = nullptr;
  support::TraceLog *TraceSink = nullptr;
  std::function<void(const char *)> RecoveryVerifier;
  /// Caches dropped by an injected (or real) loss, pending recomputation.
  std::vector<RddRef> LostCaches;
  const analysis::AnalysisResult *Analysis = nullptr;
  uint32_t NextRddId = 1;
  uint64_t UseClock = 0;
  std::vector<RddRef> TempMaterialized;
  /// Heap-materialized MEMORY_AND_DISK(_SER) RDDs, eligible for eviction.
  std::vector<RddRef> EvictableStore;
  offheap::OffHeapCache *OffHeap = nullptr;
  /// RDDs whose partitions live in the off-heap tier; spillOffHeapVictim
  /// maps the tier's (rdd, partition) eviction pick back to its node.
  std::vector<RddRef> OffHeapStore;
  std::vector<std::pair<uint32_t, std::string>> IdToVar;
};

} // namespace rdd
} // namespace panthera

#endif // PANTHERA_RDD_RDD_H
