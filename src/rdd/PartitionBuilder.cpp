//===- rdd/PartitionBuilder.cpp - GC-safe growable partition -------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rdd/PartitionBuilder.h"

using namespace panthera;
using namespace panthera::rdd;
using heap::GcRoot;
using heap::ObjRef;

PartitionBuilder::PartitionBuilder(heap::Heap &H, uint32_t MaxChunks)
    : H(H), Directory(H, H.allocRefArray(MaxChunks)) {}

void PartitionBuilder::append(ObjRef Element) {
  if (InChunk == ChunkCapacity) {
    // Need a fresh chunk; the element must survive the allocation.
    GcRoot Saved(H, Element);
    ObjRef Chunk = H.allocRefArray(ChunkCapacity);
    assert(NumChunks < H.arrayLength(Directory.get()) &&
           "partition exceeds builder capacity");
    H.storeRef(Directory.get(), NumChunks, Chunk);
    ++NumChunks;
    InChunk = 0;
    Element = Saved.get();
  }
  ObjRef Chunk = H.loadRef(Directory.get(), NumChunks - 1);
  H.storeRef(Chunk, InChunk, Element);
  ++InChunk;
  ++Count;
}

void PartitionBuilder::forEach(const std::function<void(ObjRef)> &Fn) {
  uint32_t Index = 0;
  for (uint32_t C = 0; C != NumChunks && Index != Count; ++C) {
    ObjRef Chunk = H.loadRef(Directory.get(), C);
    uint32_t Limit =
        (C == NumChunks - 1) ? (Count - C * ChunkCapacity) : ChunkCapacity;
    for (uint32_t I = 0; I != Limit; ++I, ++Index)
      Fn(H.loadRef(Chunk, I));
  }
}

void PartitionBuilder::clear() {
  // Null the chunk references so the staged data is unreachable.
  for (uint32_t C = 0; C != NumChunks; ++C)
    H.storeRef(Directory.get(), C, ObjRef());
  NumChunks = 0;
  InChunk = ChunkCapacity;
  Count = 0;
}

ObjRef PartitionBuilder::finish(MemTag Tag, uint32_t RddId) {
  if (Tag != MemTag::None)
    H.setPendingArrayTag(Tag, RddId);
  ObjRef Array = H.allocRefArray(Count);
  // A partition below the large-array threshold leaves the pending state
  // armed; disarm so an unrelated allocation cannot claim the tag.
  H.setPendingArrayTag(MemTag::None, 0);
  if (RddId != 0)
    H.header(Array.addr())->RddId = RddId;

  GcRoot ArrayRoot(H, Array);
  uint32_t Index = 0;
  for (uint32_t C = 0; C != NumChunks && Index != Count; ++C) {
    ObjRef Chunk = H.loadRef(Directory.get(), C);
    uint32_t Limit =
        (C == NumChunks - 1) ? (Count - C * ChunkCapacity) : ChunkCapacity;
    // Whole-chunk bulk copy: nothing allocates between here and the last
    // slot, so both arrays are pinned and the flatten is two ranges plus
    // barrier bookkeeping instead of per-slot load/store pairs.
    H.copyRefRange(ArrayRoot.get(), Index, Chunk, 0, Limit);
    Index += Limit;
  }
  assert(Index == Count && "chunk bookkeeping out of sync");
  return ArrayRoot.get();
}
