//===- rdd/Broadcast.h - Read-only broadcast variables ----------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spark-style broadcast variables: a read-only array shipped to every
/// task. The values live in the managed heap (a primitive array reached
/// from a persistent root), so every per-record read a task performs is
/// visible to the memory model -- under the hybrid layouts, a broadcast
/// that tenures into NVM makes every task pay NVM latency, exactly the
/// class of frequently-read data Panthera keeps in DRAM.
///
/// Broadcasts are small and hot, so they are created through the
/// pre-tenuring API with a DRAM tag by default.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_RDD_BROADCAST_H
#define PANTHERA_RDD_BROADCAST_H

#include "heap/Heap.h"
#include "rdd/Capture.h"

#include <vector>

namespace panthera {
namespace rdd {

/// A read-only array of doubles visible to user functions. Copyable like
/// Spark's Broadcast handle; all copies share the underlying block.
class Broadcast {
public:
  Broadcast() = default;

  /// Ships \p Values into the heap. \p Tag defaults to DRAM: broadcasts
  /// are read by every task of every stage.
  Broadcast(heap::Heap &H, const std::vector<double> &Values,
            MemTag Tag = MemTag::Dram)
      : H(&H) {
    if (Tag != MemTag::None)
      H.setPendingArrayTag(Tag, /*RddId=*/0);
    heap::ObjRef Block =
        H.allocPrimArray(static_cast<uint32_t>(Values.size()), 8);
    H.setPendingArrayTag(MemTag::None, 0);
    if (Tag != MemTag::None)
      H.header(Block.addr())->setMemTag(Tag);
    {
      heap::GcRoot Root(H, Block);
      for (uint32_t I = 0; I != Values.size(); ++I)
        H.storeElemF64(Root.get(), I, Values[I]);
      RootId = H.addPersistentRoot(Root.get());
    }
  }

  bool valid() const { return H != nullptr && RootId != SIZE_MAX; }

  uint32_t size() const {
    return H->arrayLength(H->persistentRoot(RootId));
  }

  /// Reads element \p I (an accounted heap access, like a real task's).
  /// Inside a capture-phase worker the block's bytes are stable, so the
  /// value is peeked without touching the shared cache model or clock and
  /// the accounted read is recorded for the serial replay.
  double get(uint32_t I) const {
    if (CaptureSession *S = ActiveCapture) {
      S->RootReads.push_back({RootId, I});
      return H->peekElemF64(H->persistentRoot(RootId), I);
    }
    return H->loadElemF64(H->persistentRoot(RootId), I);
  }

  /// Releases the block (Spark's Broadcast.destroy); the next full GC
  /// reclaims it. Idempotent.
  void destroy() {
    if (valid()) {
      H->removePersistentRoot(RootId);
      RootId = SIZE_MAX;
    }
  }

private:
  heap::Heap *H = nullptr;
  size_t RootId = SIZE_MAX;
};

} // namespace rdd
} // namespace panthera

#endif // PANTHERA_RDD_BROADCAST_H
