//===- mapreduce/MapReduce.h - Hadoop-like layer on Panthera ----*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal Hadoop-style MapReduce framework built directly on the
/// managed heap and the two §4.3 Panthera APIs -- no RDD engine involved.
/// This demonstrates the paper's applicability claim: any Big Data system
/// whose backbone is a key-value array can adopt the runtime.
///
/// Execution model (one "job"):
///   * map tasks stream input splits, emitting (int64, double) pairs into
///     heap-resident spill buffers (young-generation churn, like Hadoop's
///     MapOutputBuffer);
///   * the shuffle groups pairs by reducer;
///   * reduce tasks aggregate each key group and write the output table
///     -- a key-value array pre-tenured through the Panthera API: DRAM
///     when the job declares its output hot (HashJoin's build table),
///     NVM when it is archival.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MAPREDUCE_MAPREDUCE_H
#define PANTHERA_MAPREDUCE_MAPREDUCE_H

#include "core/Runtime.h"

#include <functional>
#include <vector>

namespace panthera {
namespace mapreduce {

/// One input record.
struct KeyValue {
  int64_t Key;
  double Value;
};

/// Emits intermediate pairs from a map task.
using Emitter = std::function<void(int64_t, double)>;
/// Mapper: input record -> zero or more emitted pairs.
using MapFn = std::function<void(const KeyValue &, const Emitter &)>;
/// Reducer: combines two values of one key.
using ReduceFn = std::function<double(double, double)>;

/// Job configuration.
struct JobConfig {
  /// Number of reduce tasks (output table partitions).
  uint32_t NumReducers = 4;
  /// Placement of the output table (§4.3: hot -> DRAM, archival -> NVM).
  MemTag OutputTag = MemTag::Dram;
  /// Identifier for dynamic monitoring of the output table.
  uint32_t OutputStructureId = 0;
  /// CPU nanoseconds per record per phase.
  double RecordCpuNs = 20.0;
};

/// A completed job's output: a heap-resident key-value table (the §4.3
/// "key-value array backbone"), readable until released.
class OutputTable {
public:
  OutputTable() = default;
  OutputTable(heap::Heap &H, std::vector<size_t> PartitionRoots)
      : H(&H), Roots(std::move(PartitionRoots)) {}

  uint32_t numPartitions() const {
    return static_cast<uint32_t>(Roots.size());
  }
  /// Rows in partition \p P.
  uint32_t rows(uint32_t P) const;
  /// Reads row \p I of partition \p P (accounted heap reads).
  KeyValue row(uint32_t P, uint32_t I) const;
  /// Looks up \p Key (scans its partition). Returns false when absent.
  bool lookup(int64_t Key, double &ValueOut) const;
  /// Sum of all values (streams the whole table).
  double total() const;
  /// Releases the table's roots; the next full GC reclaims it.
  void release();

private:
  heap::Heap *H = nullptr;
  std::vector<size_t> Roots;
};

/// Runs a MapReduce job over \p Splits inside \p RT.
OutputTable runJob(core::Runtime &RT, const JobConfig &Config,
                   const std::vector<std::vector<KeyValue>> &Splits,
                   const MapFn &Map, const ReduceFn &Reduce);

} // namespace mapreduce
} // namespace panthera

#endif // PANTHERA_MAPREDUCE_MAPREDUCE_H
