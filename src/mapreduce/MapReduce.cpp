//===- mapreduce/MapReduce.cpp - Hadoop-like layer on Panthera ------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mapreduce/MapReduce.h"

#include "core/PantheraApi.h"
#include "rdd/PartitionBuilder.h"

#include <map>
#include <memory>

using namespace panthera;
using namespace panthera::mapreduce;
using heap::GcRoot;
using heap::ObjRef;

/// Same SplitMix64-finalizer partitioner the RDD shuffle uses.
static uint32_t reducerOf(int64_t Key, uint32_t NumReducers) {
  uint64_t Z = static_cast<uint64_t>(Key) + 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<uint32_t>((Z ^ (Z >> 31)) % NumReducers);
}

uint32_t OutputTable::rows(uint32_t P) const {
  return H->arrayLength(H->persistentRoot(Roots[P]));
}

KeyValue OutputTable::row(uint32_t P, uint32_t I) const {
  ObjRef Arr = H->persistentRoot(Roots[P]);
  ObjRef T = H->loadRef(Arr, I);
  return {H->loadI64(T, 0), H->loadF64(T, 8)};
}

bool OutputTable::lookup(int64_t Key, double &ValueOut) const {
  uint32_t P = reducerOf(Key, numPartitions());
  ObjRef Arr = H->persistentRoot(Roots[P]);
  uint32_t N = H->arrayLength(Arr);
  for (uint32_t I = 0; I != N; ++I) {
    ObjRef T = H->loadRef(Arr, I);
    if (H->loadI64(T, 0) == Key) {
      ValueOut = H->loadF64(T, 8);
      return true;
    }
  }
  return false;
}

double OutputTable::total() const {
  double Sum = 0.0;
  for (uint32_t P = 0; P != numPartitions(); ++P) {
    uint32_t N = rows(P);
    for (uint32_t I = 0; I != N; ++I)
      Sum += row(P, I).Value;
  }
  return Sum;
}

void OutputTable::release() {
  if (!H)
    return;
  for (size_t Id : Roots)
    H->removePersistentRoot(Id);
  Roots.clear();
}

OutputTable panthera::mapreduce::runJob(
    core::Runtime &RT, const JobConfig &Config,
    const std::vector<std::vector<KeyValue>> &Splits, const MapFn &Map,
    const ReduceFn &Reduce) {
  heap::Heap &H = RT.heap();
  memsim::HybridMemory &Mem = RT.memory();
  uint32_t R = Config.NumReducers;

  // Map phase. Emitted pairs accumulate in heap spill buffers (one per
  // reducer, like Hadoop's MapOutputBuffer) and drain to native "disk"
  // shuffle files when full.
  std::vector<std::vector<KeyValue>> ShuffleFiles(R);
  {
    std::vector<std::unique_ptr<rdd::PartitionBuilder>> Buffers;
    Buffers.reserve(R);
    for (uint32_t I = 0; I != R; ++I)
      Buffers.emplace_back(std::make_unique<rdd::PartitionBuilder>(H));
    auto Spill = [&](uint32_t Target) {
      rdd::PartitionBuilder &B = *Buffers[Target];
      B.forEach([&](ObjRef T) {
        ShuffleFiles[Target].push_back(
            {H.loadI64(T, 0), H.loadF64(T, 8)});
      });
      B.clear();
    };
    Emitter Emit = [&](int64_t Key, double Value) {
      Mem.addCpuWorkNs(Config.RecordCpuNs);
      ObjRef T = H.allocPlain(/*NumRefs=*/1, /*PayloadBytes=*/16);
      H.storeI64(T, 0, Key);
      H.storeF64(T, 8, Value);
      uint32_t Target = reducerOf(Key, R);
      Buffers[Target]->append(T);
      if (Buffers[Target]->size() >= 16384)
        Spill(Target);
    };
    for (const std::vector<KeyValue> &Split : Splits)
      for (const KeyValue &Record : Split) {
        Mem.addCpuWorkNs(Config.RecordCpuNs);
        Map(Record, Emit);
      }
    for (uint32_t I = 0; I != R; ++I)
      Spill(I);
    while (!Buffers.empty())
      Buffers.pop_back(); // LIFO root discipline
  }

  // Reduce phase: aggregate per key, then write the output table through
  // the §4.3 pre-tenuring API.
  std::vector<size_t> Roots;
  for (uint32_t P = 0; P != R; ++P) {
    std::map<int64_t, double> Agg;
    for (const KeyValue &KV : ShuffleFiles[P]) {
      Mem.addCpuWorkNs(Config.RecordCpuNs);
      auto [It, New] = Agg.emplace(KV.Key, KV.Value);
      if (!New)
        It->second = Reduce(It->second, KV.Value);
    }
    core::pretenureNextArray(H, Config.OutputTag,
                             Config.OutputStructureId);
    ObjRef ArrRaw = H.allocRefArray(static_cast<uint32_t>(Agg.size()));
    H.setPendingArrayTag(MemTag::None, 0);
    if (Config.OutputStructureId != 0)
      H.header(ArrRaw.addr())->RddId = Config.OutputStructureId;
    GcRoot Arr(H, ArrRaw);
    uint32_t Index = 0;
    for (const auto &[Key, Value] : Agg) {
      Mem.addCpuWorkNs(Config.RecordCpuNs);
      ObjRef T = H.allocPlain(/*NumRefs=*/1, /*PayloadBytes=*/16);
      H.storeI64(T, 0, Key);
      H.storeF64(T, 8, Value);
      H.storeRef(Arr.get(), Index++, T);
    }
    Roots.push_back(H.addPersistentRoot(Arr.get()));
  }
  return OutputTable(H, std::move(Roots));
}
