//===- offheap/OffHeapCache.cpp - Untraced serialized cache tier ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "offheap/OffHeapCache.h"

#include "heap/Heap.h"
#include "support/Metrics.h"
#include "support/TraceLog.h"

#include <cassert>

using namespace panthera;
using namespace panthera::offheap;

OffHeapCache::OffHeapCache(heap::Heap &H, uint64_t BudgetBytes,
                           support::MetricsRegistry *Metrics,
                           support::TraceLog *Trace)
    : H(H), Alloc(H, BudgetBytes, /*MinClaimBytes=*/4096), Metrics(Metrics),
      Trace(Trace) {}

OffHeapCache::Placement OffHeapCache::cachePartition(const void *Records,
                                                     uint64_t Count,
                                                     uint64_t RecordBytes,
                                                     uint32_t RddId,
                                                     uint32_t Part) {
  uint64_t Bytes = Count * RecordBytes;
  uint32_t Region = Alloc.allocRegion(Bytes);
  if (Region == NoRegion)
    return Placement();
  uint64_t Addr = Alloc.regionAlloc(Region, Bytes);
  assert(Addr != NoAddress && "fresh region cannot be full");
  double StartNs = H.memory().totalTimeNs();
  // Serialize once: the only time these records cross the heap boundary
  // as objects. Charged as Count record-granular NVM writes.
  H.nativeWriteRecords(Addr, Records, Count, RecordBytes);
  Entries.push_back({Region, RddId, Part});
  ++Stats.PartitionsCached;
  Stats.BytesCached += Bytes;
  if (Trace)
    Trace
        ->span(support::TraceTrack::Heap, "offheap region", "offheap",
               StartNs, H.memory().totalTimeNs() - StartNs)
        .arg("region", static_cast<uint64_t>(Region))
        .arg("rdd", static_cast<uint64_t>(RddId))
        .arg("partition", static_cast<uint64_t>(Part))
        .arg("bytes", Bytes);
  return Placement{Region, Addr};
}

void OffHeapCache::readPartition(uint32_t Region, uint64_t Addr, void *Dst,
                                 uint64_t Count, uint64_t RecordBytes) {
  assert(Region != NoRegion && Addr != NoAddress && "reading a dead stub");
  H.nativeReadRecords(Addr, Dst, Count, RecordBytes);
  Alloc.touch(Region);
  ++Stats.StubReads;
  Stats.BytesRead += Count * RecordBytes;
}

OffHeapCache::Victim OffHeapCache::pickVictim() const {
  Victim Best;
  uint64_t BestTouches = 0;
  for (const Entry &E : Entries) {
    uint64_t T = Alloc.touches(E.Region);
    // Untouched regions first, then least-touched; the lowest region id
    // (oldest surviving carve) breaks ties, so the order is deterministic.
    if (Best.Region == NoRegion || T < BestTouches ||
        (T == BestTouches && E.Region < Best.Region)) {
      Best = {E.Region, E.RddId, E.Part};
      BestTouches = T;
    }
  }
  return Best;
}

void OffHeapCache::release(uint32_t Region, bool Evicted) {
  for (size_t I = 0; I != Entries.size(); ++I) {
    if (Entries[I].Region != Region)
      continue;
    Entries.erase(Entries.begin() + static_cast<ptrdiff_t>(I));
    break;
  }
  if (Evicted)
    ++Stats.PartitionsEvicted;
  else
    ++Stats.PartitionsUnpersisted;
  if (Alloc.release(Region)) {
    ++Stats.RegionsFreed;
    if (Trace)
      Trace
          ->instant(support::TraceTrack::Heap,
                    Evicted ? "offheap evict" : "offheap unpersist",
                    "offheap", H.memory().totalTimeNs())
          .arg("region", static_cast<uint64_t>(Region));
  }
}

void OffHeapCache::publishMetrics(support::MetricsRegistry &M) const {
  M.counter("offheap.partitions_cached").set(Stats.PartitionsCached);
  M.counter("offheap.partitions_evicted").set(Stats.PartitionsEvicted);
  M.counter("offheap.partitions_unpersisted")
      .set(Stats.PartitionsUnpersisted);
  M.counter("offheap.bytes_cached").set(Stats.BytesCached);
  M.counter("offheap.stub_reads").set(Stats.StubReads);
  M.counter("offheap.bytes_read").set(Stats.BytesRead);
  M.counter("offheap.regions_freed").set(Stats.RegionsFreed);
  const RegionAllocatorStats &A = Alloc.stats();
  M.counter("offheap.regions_carved").set(A.RegionsCarved);
  M.counter("offheap.regions_recycled").set(A.RegionsRecycled);
  M.counter("offheap.regions_released").set(A.RegionsReleased);
  M.counter("offheap.alloc_failures").set(A.AllocFailures);
  M.gauge("offheap.claim_bytes").set(static_cast<double>(Alloc.claimBytes()));
  M.gauge("offheap.live_regions")
      .set(static_cast<double>(Alloc.liveRegions()));
}
