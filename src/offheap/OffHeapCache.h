//===- offheap/OffHeapCache.h - Untraced serialized cache tier --*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The off-heap serialized cache tier (docs/offheap.md): the third point in
/// the GC-vs-serialization trade-off from "Garbage Collection or
/// Serialization? Between a Rock and a Hard Place!" (PAPERS.md).
///
/// A partition persisted at StorageLevel::OffHeapSer is serialized ONCE
/// into a region carved from the native/NVM budget by the RegionAllocator.
/// The heap keeps only a 48-byte stub object (ObjectKind::OffHeapStub)
/// holding the region handle; the collector scans stubs as leaves, so the
/// cached bytes never appear in trace or compaction work -- unlike the
/// on-heap _SER levels, whose byte arrays the old-gen trace still walks --
/// while reads lazily deserialize through the stub with the memsim traffic
/// charged via the heap's record-granular native access path.
///
/// Eviction order when the budget runs out: untouched regions first (no
/// stub read since caching), then least-touched, lowest region id on ties.
/// The engine spills the victim to its RDD's disk parts (the PR 1 staged
/// path's disk tier) before releasing the region.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_OFFHEAP_OFFHEAPCACHE_H
#define PANTHERA_OFFHEAP_OFFHEAPCACHE_H

#include "offheap/RegionAllocator.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace panthera {

namespace heap {
class Heap;
} // namespace heap

namespace support {
class MetricsRegistry;
class TraceLog;
} // namespace support

namespace offheap {

/// Tier counters, mirrored under offheap.* by publishMetrics.
struct OffHeapCacheStats {
  uint64_t PartitionsCached = 0;
  uint64_t PartitionsEvicted = 0;     ///< Spilled to disk under pressure.
  uint64_t PartitionsUnpersisted = 0; ///< Released by unpersist/drop.
  uint64_t BytesCached = 0;           ///< Serialized bytes written.
  uint64_t StubReads = 0;             ///< Partition reads through a stub.
  uint64_t BytesRead = 0;
  uint64_t RegionsFreed = 0; ///< Region refcounts that reached zero.
};

class OffHeapCache {
public:
  /// Claims up to \p BudgetBytes of \p H's native space (page-granular
  /// halving claim; see RegionAllocator). \p Metrics / \p Trace may be
  /// null; when set, region lifecycle events land on the heap trace track
  /// and counters publish under offheap.*.
  OffHeapCache(heap::Heap &H, uint64_t BudgetBytes,
               support::MetricsRegistry *Metrics, support::TraceLog *Trace);

  heap::Heap &heap() { return H; }
  RegionAllocator &allocator() { return Alloc; }
  const OffHeapCacheStats &stats() const { return Stats; }

  /// Where a cached partition landed. Region == NoRegion means the budget
  /// could not hold it even after the caller's eviction loop -- the caller
  /// falls back to disk.
  struct Placement {
    uint32_t Region = NoRegion;
    uint64_t Addr = NoAddress;
  };

  /// Serializes \p Count records of \p RecordBytes each into a fresh
  /// region (one region per partition, so unpersist reclaims wholesale).
  /// Charges the serialization traffic record-granularly and emits a
  /// region span. Fails (NoRegion) when no region fits; the caller evicts
  /// or spills.
  Placement cachePartition(const void *Records, uint64_t Count,
                           uint64_t RecordBytes, uint32_t RddId,
                           uint32_t Part);

  /// Reads \p Count records back through a stub handle, charging the
  /// deserialization traffic and bumping the region's touch counter (the
  /// eviction order's signal).
  void readPartition(uint32_t Region, uint64_t Addr, void *Dst,
                     uint64_t Count, uint64_t RecordBytes);

  /// Eviction candidate: the live cached partition whose region has the
  /// fewest touches (untouched first), lowest region id on ties.
  struct Victim {
    uint32_t Region = NoRegion;
    uint32_t RddId = 0;
    uint32_t Part = 0;
  };
  Victim pickVictim() const;

  /// Releases a cached partition's region (refcount-driven; the storage
  /// recycles through the allocator's free list once the count hits zero).
  /// \p Evicted distinguishes pressure eviction from unpersist in the
  /// counters and the trace.
  void release(uint32_t Region, bool Evicted);

  size_t numCached() const { return Entries.size(); }

  /// Mirrors the tier + allocator counters under offheap.*. Only called
  /// when the tier exists, so --offheap-mb=0 exports stay byte-identical.
  void publishMetrics(support::MetricsRegistry &M) const;

private:
  heap::Heap &H;
  RegionAllocator Alloc;
  support::MetricsRegistry *Metrics;
  support::TraceLog *Trace;
  OffHeapCacheStats Stats;

  /// One live cached partition (dropped at release).
  struct Entry {
    uint32_t Region = NoRegion;
    uint32_t RddId = 0;
    uint32_t Part = 0;
  };
  std::vector<Entry> Entries;
};

} // namespace offheap
} // namespace panthera

#endif // PANTHERA_OFFHEAP_OFFHEAPCACHE_H
