//===- offheap/RegionAllocator.cpp - Native-region bump allocator ---------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "offheap/RegionAllocator.h"

#include "heap/Heap.h"
#include "heap/HeapConfig.h"
#include "support/Errors.h"

#include <algorithm>
#include <cassert>

using namespace panthera;
using namespace panthera::offheap;

RegionAllocator::RegionAllocator(heap::Heap &H, uint64_t WantBytes,
                                 uint64_t MinClaimBytes) {
  // Claim up front: the native region is never collected, so per-region
  // reuse needs our own bookkeeping over one big claim. The halving loop
  // (and its typed-OOM probe sequence) is exactly the executor arena's.
  uint64_t Want = WantBytes;
  while (Want >= MinClaimBytes && Want > 0) {
    try {
      ClaimBase = H.allocNative(Want);
      ClaimSize = Want;
      break;
    } catch (const OutOfMemoryError &) {
      Want >>= 1;
    }
  }
}

uint32_t RegionAllocator::allocRegion(uint64_t MinBytes) {
  uint64_t Need = (MinBytes + 7) & ~7ull;
  if (Need < MinBytes) {
    ++Stats.AllocFailures;
    return NoRegion;
  }
  // Free list first: lowest-id free region that fits.
  for (size_t I = 0; I != FreeList.size(); ++I) {
    uint32_t Id = FreeList[I];
    if (Regions[Id].Size < Need)
      continue;
    FreeList.erase(FreeList.begin() + static_cast<ptrdiff_t>(I));
    Region &R = Regions[Id];
    R.Used = 0;
    R.Refs = 1;
    R.Touches = 0;
    R.Live = true;
    ++Stats.RegionsRecycled;
    return Id;
  }
  // Carve fresh from the claim, page-granular. When the claim remainder is
  // smaller than the page round-up but still covers the request, hand out
  // the whole tail instead of failing with usable bytes left.
  uint64_t Carve = heap::HeapConfig::alignPage(Need);
  uint64_t Remaining = ClaimSize - ClaimUsed;
  if (Carve > Remaining || Carve < Need /* alignPage overflow */) {
    if (Need > Remaining) {
      ++Stats.AllocFailures;
      return NoRegion;
    }
    Carve = Remaining;
  }
  Region R;
  R.Base = ClaimBase + ClaimUsed;
  R.Size = Carve;
  R.Refs = 1;
  R.Live = true;
  ClaimUsed += Carve;
  Regions.push_back(R);
  ++Stats.RegionsCarved;
  return static_cast<uint32_t>(Regions.size() - 1);
}

uint64_t RegionAllocator::regionAlloc(uint32_t Id, uint64_t Bytes) {
  if (Id == NoRegion)
    return NoAddress;
  Region &R = Regions[Id];
  assert(R.Live && "allocating in a released region");
  uint64_t Aligned = (Bytes + 7) & ~7ull;
  if (Aligned < Bytes || R.Used + Aligned > R.Size)
    return NoAddress;
  uint64_t Addr = R.Base + R.Used;
  R.Used += Aligned;
  Stats.BytesAllocated += Aligned;
  return Addr;
}

void RegionAllocator::resetRegion(uint32_t Id) {
  if (Id == NoRegion)
    return;
  Regions[Id].Used = 0;
}

void RegionAllocator::retain(uint32_t Id) {
  assert(Regions[Id].Live && "retaining a released region");
  ++Regions[Id].Refs;
}

bool RegionAllocator::release(uint32_t Id) {
  Region &R = Regions[Id];
  assert(R.Live && R.Refs > 0 && "double release");
  if (--R.Refs != 0)
    return false;
  R.Live = false;
  R.Used = 0;
  R.Touches = 0;
  FreeList.insert(std::lower_bound(FreeList.begin(), FreeList.end(), Id),
                  Id);
  ++Stats.RegionsReleased;
  return true;
}

size_t RegionAllocator::liveRegions() const {
  size_t N = 0;
  for (const Region &R : Regions)
    N += R.Live ? 1 : 0;
  return N;
}
