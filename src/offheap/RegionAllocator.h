//===- offheap/RegionAllocator.h - Native-region bump allocator -*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A region allocator over the heap's native (NVM) budget (docs/offheap.md).
///
/// One RegionAllocator claims a contiguous slab of the never-collected
/// native space up front (halving its request until the claim fits, like
/// the cluster executors' shuffle arenas it generalizes) and carves
/// page-aligned regions out of it on demand. Within a region, allocation
/// is a bump pointer; reclamation is whole-region only, driven by a
/// per-region reference count. Released regions enter a free list and are
/// recycled first-fit in region-id order, so the allocation sequence is a
/// pure function of the request sequence -- the determinism contract every
/// checksum test relies on.
///
/// Two consumers share this allocator type:
///  - cluster::Executor's shuffle arena: one region spanning the whole
///    claim, bump-allocated per block and reset between shuffles.
///  - OffHeapCache: one region per cached partition, released at
///    unpersist/eviction, with per-region touch counters feeding the
///    untouched-first eviction order.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_OFFHEAP_REGIONALLOCATOR_H
#define PANTHERA_OFFHEAP_REGIONALLOCATOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace panthera {

namespace heap {
class Heap;
} // namespace heap

namespace offheap {

/// "No native address". UINT64_MAX, not 0: like CardTable::NoObject,
/// address 0 is a real (if never-allocated) simulated address, and the
/// pre-refactor shuffle arena already used this value as its spill
/// sentinel -- naming it keeps every consumer byte-identical.
constexpr uint64_t NoAddress = UINT64_MAX;

/// "No region" handle.
constexpr uint32_t NoRegion = UINT32_MAX;

/// Allocator counters (mirrored under offheap.* when the cache tier owns
/// the allocator; executor arenas keep them private).
struct RegionAllocatorStats {
  uint64_t RegionsCarved = 0;   ///< Fresh regions cut from the claim.
  uint64_t RegionsRecycled = 0; ///< Requests served from the free list.
  uint64_t RegionsReleased = 0; ///< Refcounts that reached zero.
  uint64_t BytesAllocated = 0;  ///< Bump-allocated bytes (8-aligned).
  uint64_t AllocFailures = 0;   ///< allocRegion exhaustion (caller spills).
};

class RegionAllocator {
public:
  /// Claims up to \p WantBytes of \p H's native space, halving the request
  /// on exhaustion until it drops below \p MinClaimBytes (then the
  /// allocator owns no memory and every allocRegion fails -- callers fall
  /// back to their disk-spill path). The claim is permanent: the native
  /// space is never collected, so regions recycle through the free list
  /// instead of returning to the heap.
  RegionAllocator(heap::Heap &H, uint64_t WantBytes, uint64_t MinClaimBytes);

  RegionAllocator(const RegionAllocator &) = delete;
  RegionAllocator &operator=(const RegionAllocator &) = delete;

  bool claimed() const { return ClaimSize != 0; }
  uint64_t claimBytes() const { return ClaimSize; }
  uint64_t claimUsed() const { return ClaimUsed; }

  /// Carves a region of at least \p MinBytes (page-granular; the final
  /// carve may consume a sub-page claim remainder that still fits the
  /// request). Recycles a free region first when one is large enough.
  /// The new region starts with a reference count of 1. Returns NoRegion
  /// when neither the free list nor the claim can satisfy the request.
  uint32_t allocRegion(uint64_t MinBytes);

  /// Bump-allocates \p Bytes (8-aligned) inside region \p Id; NoAddress
  /// when the region cannot hold it (or \p Id is NoRegion). Exactly the
  /// pre-refactor shuffle-arena formula, overflow check included.
  uint64_t regionAlloc(uint32_t Id, uint64_t Bytes);

  /// Rewinds region \p Id's bump pointer (arena reuse between shuffles).
  void resetRegion(uint32_t Id);

  /// Liveness counting: retain/release bracket each handle to the region.
  /// release returns true when the count reached zero -- the region joined
  /// the free list and its storage may be recycled by a later allocRegion.
  void retain(uint32_t Id);
  bool release(uint32_t Id);
  uint32_t refCount(uint32_t Id) const { return Regions[Id].Refs; }

  /// Access counting for eviction ordering: the cache tier bumps a
  /// region's counter on every stub read; untouched regions evict first.
  void touch(uint32_t Id) { ++Regions[Id].Touches; }
  uint64_t touches(uint32_t Id) const { return Regions[Id].Touches; }

  bool live(uint32_t Id) const { return Regions[Id].Live; }
  uint64_t regionBase(uint32_t Id) const { return Regions[Id].Base; }
  uint64_t regionSize(uint32_t Id) const { return Regions[Id].Size; }
  uint64_t regionUsed(uint32_t Id) const { return Regions[Id].Used; }
  size_t numRegions() const { return Regions.size(); }
  size_t liveRegions() const;

  const RegionAllocatorStats &stats() const { return Stats; }

private:
  struct Region {
    uint64_t Base = 0;
    uint64_t Size = 0;
    uint64_t Used = 0;
    uint32_t Refs = 0;
    uint64_t Touches = 0;
    bool Live = false;
  };

  uint64_t ClaimBase = 0;
  uint64_t ClaimSize = 0;
  uint64_t ClaimUsed = 0;
  std::vector<Region> Regions;
  /// Released region ids, kept sorted so recycling is first-fit in region
  /// id order (deterministic across runs).
  std::vector<uint32_t> FreeList;
  RegionAllocatorStats Stats;
};

} // namespace offheap
} // namespace panthera

#endif // PANTHERA_OFFHEAP_REGIONALLOCATOR_H
