//===- graphx/Pregel.h - GraphX-like Pregel layer ---------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A GraphX-like graph layer over the RDD engine: adjacency construction
/// (vertex -> CompactBuffer of neighbor ids, the Fig 1 heap shape) and a
/// Pregel-style iteration in which each superstep joins the adjacency with
/// the vertex RDD, fans messages out along edges, and combines incoming
/// messages per vertex.
///
/// Mirroring GraphX's behavior the paper discusses in §5.5: each iteration
/// persists a *new* vertex RDD under the same driver variable and
/// unpersists the RDDs of older iterations after a lag -- so stale-but-
/// still-persisted vertex RDDs with zero recent calls accumulate in DRAM
/// until a major GC demotes them (the Table 5 migrations for CC/SSSP).
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_GRAPHX_PREGEL_H
#define PANTHERA_GRAPHX_PREGEL_H

#include "rdd/Rdd.h"

#include <functional>
#include <string>

namespace panthera {
namespace graphx {

/// Pregel superstep parameters.
struct PregelConfig {
  uint32_t MaxIterations = 10;
  /// Iterations an old vertex RDD stays persisted before unpersist.
  /// GraphX unpersists lazily; a stale-but-persisted generation that
  /// crosses a whole major-GC window untouched is what dynamic migration
  /// demotes to NVM (§5.5).
  uint32_t UnpersistLag = 3;
  /// Driver variable name for the per-iteration vertex RDDs.
  std::string VertexVar = "vertices";
};

/// Builds the adjacency RDD (vertex -> neighbor buffer) from an edge list
/// of (src, dst) records, symmetrizing so components are undirected, and
/// persists it under \p EdgesVar.
rdd::Rdd buildAdjacency(rdd::SparkContext &Ctx, const rdd::Rdd &EdgeList,
                        const std::string &EdgesVar, bool Symmetrize);

/// Runs \p Config.MaxIterations supersteps. Per superstep, a vertex with
/// value v for which \p ShouldSend(v) holds sends \p MsgFn(v) to every
/// neighbor; incoming messages and the old value combine via \p Combine.
/// Returns the final vertex RDD (still persisted).
rdd::Rdd pregel(rdd::SparkContext &Ctx, const rdd::Rdd &Adjacency,
                const rdd::Rdd &InitialVertices, const PregelConfig &Config,
                const std::function<bool(double)> &ShouldSend,
                const std::function<double(double)> &MsgFn,
                const rdd::CombineFn &Combine);

/// Connected components by min-label propagation: returns (v, label).
rdd::Rdd connectedComponents(rdd::SparkContext &Ctx,
                             const rdd::Rdd &Adjacency,
                             const PregelConfig &Config);

/// Unit-weight single-source shortest paths (BFS distance). Unreachable
/// vertices keep the Infinity sentinel.
rdd::Rdd shortestPaths(rdd::SparkContext &Ctx, const rdd::Rdd &Adjacency,
                       int64_t SourceVertex, const PregelConfig &Config);

/// PageRank over the Pregel layer (GraphX's built-in algorithm): ranks
/// initialize to 1.0 and per superstep each vertex spreads rank/degree to
/// its neighbors; incoming contributions combine by sum and damp with
/// 0.15 + 0.85 * sum. Returns the final (vertex, rank) RDD.
rdd::Rdd pageRank(rdd::SparkContext &Ctx, const rdd::Rdd &Adjacency,
                  const PregelConfig &Config);

/// Distance sentinel for unreachable vertices.
constexpr double Unreachable = 1.0e18;

} // namespace graphx
} // namespace panthera

#endif // PANTHERA_GRAPHX_PREGEL_H
