//===- graphx/Pregel.cpp - GraphX-like Pregel layer -----------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "graphx/Pregel.h"

#include <cmath>
#include <deque>

using namespace panthera;
using namespace panthera::graphx;
using heap::GcRoot;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::SparkContext;
using rdd::TupleSink;

Rdd panthera::graphx::buildAdjacency(SparkContext &Ctx, const Rdd &EdgeList,
                                     const std::string &EdgesVar,
                                     bool Symmetrize) {
  (void)Ctx; // the handles carry their context; kept for API symmetry
  Rdd Edges = EdgeList;
  if (Symmetrize) {
    Edges = Edges.flatMap([](RddContext &C, ObjRef T, const TupleSink &S) {
      int64_t Src = C.key(T);
      double Dst = C.value(T);
      S(C.makeTuple(Src, Dst));
      S(C.makeTuple(static_cast<int64_t>(Dst), static_cast<double>(Src)));
    });
  }
  return Edges.groupByKey().persistAs(EdgesVar,
                                      rdd::StorageLevel::MemoryOnly);
}

Rdd panthera::graphx::pregel(SparkContext &Ctx, const Rdd &Adjacency,
                             const Rdd &InitialVertices,
                             const PregelConfig &Config,
                             const std::function<bool(double)> &ShouldSend,
                             const std::function<double(double)> &MsgFn,
                             const rdd::CombineFn &Combine) {
  (void)Ctx;
  Rdd Vertices = InitialVertices;
  std::deque<Rdd> OldGenerations;
  for (uint32_t Iter = 0; Iter != Config.MaxIterations; ++Iter) {
    // Superstep: join the adjacency with the current vertex values, carry
    // the neighbor buffer through the join, and fan the message out.
    Rdd Carried = Adjacency.join(
        Vertices, [ShouldSend, MsgFn](RddContext &C, ObjRef Left, double V) {
          double Msg = ShouldSend(V) ? MsgFn(V) : std::nan("");
          return C.makeTupleWithRef(C.key(Left), Msg, C.payload(Left));
        });
    Rdd Msgs =
        Carried.flatMap([](RddContext &C, ObjRef T, const TupleSink &S) {
          double Msg = C.value(T);
          if (std::isnan(Msg))
            return;
          GcRoot Buf(C.heap(), C.payload(T));
          if (Buf.get().isNull())
            return;
          uint32_t N = C.heap().arrayLength(Buf.get());
          for (uint32_t I = 0; I != N; ++I) {
            int64_t Neighbor =
                static_cast<int64_t>(C.bufferValue(Buf.get(), I));
            S(C.makeTuple(Neighbor, Msg));
          }
        });
    Rdd Updated = Msgs.unionWith(Vertices)
                      .reduceByKey(Combine)
                      .persistAs(Config.VertexVar,
                                 rdd::StorageLevel::MemoryOnly);
    // GraphX materializes each superstep (it needs the active-message
    // count to decide termination).
    Updated.count();

    OldGenerations.push_back(Vertices);
    Vertices = Updated;
    while (OldGenerations.size() > Config.UnpersistLag) {
      OldGenerations.front().unpersist();
      OldGenerations.pop_front();
    }
  }
  return Vertices;
}

Rdd panthera::graphx::connectedComponents(SparkContext &Ctx,
                                          const Rdd &Adjacency,
                                          const PregelConfig &Config) {
  // Labels start as the vertex id; min-label propagation converges to the
  // component's smallest vertex id.
  Rdd Initial =
      Adjacency
          .mapValuesWithKey([](int64_t K, double) {
            return static_cast<double>(K);
          })
          .persistAs(Config.VertexVar, rdd::StorageLevel::MemoryOnly);
  return pregel(
      Ctx, Adjacency, Initial, Config,
      /*ShouldSend=*/[](double) { return true; },
      /*MsgFn=*/[](double V) { return V; },
      /*Combine=*/[](double A, double B) { return A < B ? A : B; });
}

Rdd panthera::graphx::pageRank(SparkContext &Ctx, const Rdd &Adjacency,
                               const PregelConfig &Config) {
  (void)Ctx;
  Rdd Ranks = Adjacency
                  .mapValuesWithKey([](int64_t, double) { return 1.0; })
                  .persistAs(Config.VertexVar,
                             rdd::StorageLevel::MemoryOnly);
  std::deque<Rdd> OldGenerations;
  for (uint32_t Iter = 0; Iter != Config.MaxIterations; ++Iter) {
    Rdd Carried = Adjacency.join(
        Ranks, [](RddContext &C, ObjRef Left, double Rank) {
          return C.makeTupleWithRef(C.key(Left), Rank, C.payload(Left));
        });
    Rdd Contribs =
        Carried.flatMap([](RddContext &C, ObjRef T, const TupleSink &S) {
          GcRoot Buf(C.heap(), C.payload(T));
          if (Buf.get().isNull())
            return;
          uint32_t N = C.heap().arrayLength(Buf.get());
          double Share = C.value(T) / N;
          for (uint32_t I = 0; I != N; ++I)
            S(C.makeTuple(
                static_cast<int64_t>(C.bufferValue(Buf.get(), I)), Share));
        });
    Rdd Updated =
        Contribs.reduceByKey([](double A, double B) { return A + B; })
            .mapValues([](double Sum) { return 0.15 + 0.85 * Sum; })
            .persistAs(Config.VertexVar, rdd::StorageLevel::MemoryOnly);
    Updated.count();
    OldGenerations.push_back(Ranks);
    Ranks = Updated;
    while (OldGenerations.size() > Config.UnpersistLag) {
      OldGenerations.front().unpersist();
      OldGenerations.pop_front();
    }
  }
  return Ranks;
}

Rdd panthera::graphx::shortestPaths(SparkContext &Ctx, const Rdd &Adjacency,
                                    int64_t SourceVertex,
                                    const PregelConfig &Config) {
  Rdd Initial = Adjacency
                    .mapValuesWithKey([SourceVertex](int64_t K, double) {
                      return K == SourceVertex ? 0.0 : Unreachable;
                    })
                    .persistAs(Config.VertexVar,
                               rdd::StorageLevel::MemoryOnly);
  return pregel(
      Ctx, Adjacency, Initial, Config,
      /*ShouldSend=*/[](double D) { return D < Unreachable; },
      /*MsgFn=*/[](double D) { return D + 1.0; },
      /*Combine=*/[](double A, double B) { return A < B ? A : B; });
}
