//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A name-keyed metrics registry shared by every subsystem: monotonically
/// increasing counters, point-in-time gauges, Accumulator-backed histograms,
/// and epoch-bucketed time series (the Fig 8 bandwidth trace re-expressed
/// as a metric). The Runtime owns one registry; the GC, the RDD engine, the
/// heap, and the memory simulator all publish into it, and the flat-JSON
/// exporter replaces the per-bench hand-rolled plumbing.
///
/// Every exported number derives from the simulated clock and from counters
/// that PR 2's determinism contract already keeps thread-invariant, so the
/// serialized registry is byte-identical at every --threads value. To keep
/// it that way the exporter iterates std::map (sorted keys) and prints
/// doubles with %.17g (round-trip exact); non-finite values (the empty
/// histogram's NaN min/max) serialize as null.
///
/// Registration is idempotent: counter("gc.minor_gcs") returns the same
/// object on every call, so instrumentation sites need no setup phase.
/// References returned by the accessors stay valid for the registry's
/// lifetime (std::map nodes do not move).
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_METRICS_H
#define PANTHERA_SUPPORT_METRICS_H

#include "support/Errors.h"
#include "support/Statistics.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace panthera {
namespace support {

/// Monotonically increasing event count. set() exists for the idempotent
/// publish path that syncs authoritative stats structs into the registry.
class Counter {
public:
  void add(uint64_t N = 1) { V += N; }
  void set(uint64_t N) { V = N; }
  uint64_t value() const { return V; }

private:
  uint64_t V = 0;
};

/// Point-in-time measurement (occupancy, simulated clocks, joules).
class Gauge {
public:
  void set(double X) { V = X; }
  double value() const { return V; }

private:
  double V = 0.0;
};

/// Distribution summary backed by the Accumulator: count/sum/mean/min/max.
/// An empty histogram reports NaN min/max, which the exporter turns into
/// JSON null instead of fabricating a zero.
class Histogram {
public:
  void observe(double V) { A.add(V); }
  uint64_t count() const { return A.count(); }
  double sum() const { return A.sum(); }
  double mean() const { return A.average(); }
  double min() const { return A.min(); }
  double max() const { return A.max(); }
  const Accumulator &accumulator() const { return A; }

private:
  Accumulator A;
};

/// Values accumulated into fixed-width buckets of the simulated clock
/// (bucket index = totalTimeNs / EpochNs, computed by the caller).
class TimeSeries {
public:
  /// Hard cap on the bucket index. The index is derived by dividing the
  /// simulated clock by the epoch length, so a tiny (but still positive)
  /// epoch can demand an absurd resize; 2^24 buckets (128 MB of doubles,
  /// ~28 simulated minutes at the default 100 us epoch) is far beyond any
  /// legitimate run and cheap enough to allocate when actually reached.
  static constexpr size_t MaxBuckets = size_t(1) << 24;

  void addAt(size_t Bucket, double V) {
    PANTHERA_CHECK(Bucket < MaxBuckets,
                   "time-series bucket index out of range (epoch length too "
                   "small for the simulated duration?)");
    if (Buckets.size() <= Bucket)
      Buckets.resize(Bucket + 1, 0.0);
    Buckets[Bucket] += V;
  }
  size_t size() const { return Buckets.size(); }
  double at(size_t I) const { return I < Buckets.size() ? Buckets[I] : 0.0; }
  const std::vector<double> &buckets() const { return Buckets; }

private:
  std::vector<double> Buckets;
};

/// The registry: four name-keyed families. Copyable (bench harnesses
/// snapshot one per experiment); not thread-safe -- every publishing site
/// runs on the serial driver path, same as the stats structs it mirrors.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name) { return Counters[Name]; }
  Gauge &gauge(const std::string &Name) { return Gauges[Name]; }
  Histogram &histogram(const std::string &Name) { return Histograms[Name]; }
  TimeSeries &series(const std::string &Name) { return Series[Name]; }

  const Counter *findCounter(const std::string &Name) const;
  const Gauge *findGauge(const std::string &Name) const;
  const Histogram *findHistogram(const std::string &Name) const;
  const TimeSeries *findSeries(const std::string &Name) const;

  /// Lookup helpers for harnesses: value or 0 when absent.
  uint64_t counterValue(const std::string &Name) const;
  double gaugeValue(const std::string &Name) const;

  const std::map<std::string, Counter> &counters() const { return Counters; }
  const std::map<std::string, Gauge> &gauges() const { return Gauges; }
  const std::map<std::string, Histogram> &histograms() const {
    return Histograms;
  }
  const std::map<std::string, TimeSeries> &allSeries() const {
    return Series;
  }

  /// Flat-JSON export: {"counters":{...},"gauges":{...},"histograms":{...},
  /// "series":{...}}. Deterministic: sorted keys, %.17g doubles, null for
  /// non-finite values.
  std::string toJson() const;
  void writeJson(std::FILE *F) const;

private:
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
  std::map<std::string, TimeSeries> Series;
};

/// Renders \p V the way the JSON exporters do: %.17g, or "null" when not
/// finite. Shared with TraceLog so args and metrics agree byte-for-byte.
std::string jsonDouble(double V);

/// JSON string escaping (quotes, backslash, control characters).
std::string jsonEscape(const std::string &S);

} // namespace support
} // namespace panthera

#endif // PANTHERA_SUPPORT_METRICS_H
