//===- support/Random.cpp - Deterministic PRNG and samplers --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace panthera;

ZipfSampler::ZipfSampler(uint64_t N, double Skew) {
  assert(N > 0 && "Zipf domain must be nonempty");
  Cdf.resize(N);
  double Total = 0.0;
  for (uint64_t I = 0; I < N; ++I) {
    Total += 1.0 / std::pow(static_cast<double>(I + 1), Skew);
    Cdf[I] = Total;
  }
  for (uint64_t I = 0; I < N; ++I)
    Cdf[I] /= Total;
}

uint64_t ZipfSampler::sample(SplitMix64 &Rng) const {
  double U = Rng.nextDouble();
  auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
  if (It == Cdf.end())
    return Cdf.size() - 1;
  return static_cast<uint64_t>(It - Cdf.begin());
}
