//===- support/CliParse.h - Strict command-line number parsing --*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict numeric parsing for command-line flags, replacing the silent
/// atoi/atof calls that turned "--threads=abc" into 0 and "--heap=x" into
/// a 0-GB heap. Every parser rejects empty input, trailing garbage,
/// out-of-range values, and (for the unsigned parser) negative numbers,
/// returning false instead of fabricating a zero; callers print a
/// diagnostic naming the flag and its accepted range.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_CLIPARSE_H
#define PANTHERA_SUPPORT_CLIPARSE_H

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace panthera {
namespace support {

/// Parses \p S as an unsigned integer in [Min, Max]. Returns false on
/// empty input, a leading sign, trailing garbage, or range overflow
/// (strtoull silently wraps negatives, so the sign check is explicit).
inline bool parseUnsigned(const char *S, uint64_t Min, uint64_t Max,
                          uint64_t &Out) {
  if (!S || *S == '\0' || !std::isdigit(static_cast<unsigned char>(*S)))
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0' || errno == ERANGE)
    return false;
  if (V < Min || V > Max)
    return false;
  Out = static_cast<uint64_t>(V);
  return true;
}

/// Parses \p S as a finite double in [Min, Max]. Rejects empty input,
/// trailing garbage, overflow, and inf/nan spellings.
inline bool parseF64(const char *S, double Min, double Max, double &Out) {
  if (!S || *S == '\0')
    return false;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(S, &End);
  if (End == S || *End != '\0' || errno == ERANGE || !std::isfinite(V))
    return false;
  if (V < Min || V > Max)
    return false;
  Out = V;
  return true;
}

} // namespace support
} // namespace panthera

#endif // PANTHERA_SUPPORT_CLIPARSE_H
