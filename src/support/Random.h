//===- support/Random.h - Deterministic PRNG and samplers ------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation used by the dataset
/// generators and the Unmanaged baseline's probabilistic chunk interleaving.
/// Everything in the repository draws randomness from SplitMix64 so that a
/// given seed reproduces a bit-identical experiment.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_RANDOM_H
#define PANTHERA_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace panthera {

/// SplitMix64 generator (Steele, Lea & Flood). Tiny state, full 64-bit
/// output, passes BigCrush; more than adequate for workload synthesis.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible
    // for the bounds used in this project.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

/// Samples integers in [0, N) from a Zipf(s) distribution using a
/// precomputed inverse CDF table. Used to synthesize the power-law degree
/// structure of web graphs (the paper's Wikipedia/Notre Dame inputs).
class ZipfSampler {
public:
  /// Builds the CDF for \p N items with exponent \p Skew (typically ~1.0).
  ZipfSampler(uint64_t N, double Skew);

  /// Draws one sample in [0, N).
  uint64_t sample(SplitMix64 &Rng) const;

  uint64_t size() const { return Cdf.size(); }

private:
  std::vector<double> Cdf;
};

} // namespace panthera

#endif // PANTHERA_SUPPORT_RANDOM_H
