//===- support/Metrics.cpp - Process-wide metrics registry ---------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstring>

using namespace panthera::support;

std::string panthera::support::jsonDouble(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

std::string panthera::support::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

const Counter *MetricsRegistry::findCounter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? nullptr : &It->second;
}

const Gauge *MetricsRegistry::findGauge(const std::string &Name) const {
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? nullptr : &It->second;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &Name) const {
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : &It->second;
}

const TimeSeries *MetricsRegistry::findSeries(const std::string &Name) const {
  auto It = Series.find(Name);
  return It == Series.end() ? nullptr : &It->second;
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  const Counter *C = findCounter(Name);
  return C ? C->value() : 0;
}

double MetricsRegistry::gaugeValue(const std::string &Name) const {
  const Gauge *G = findGauge(Name);
  return G ? G->value() : 0.0;
}

std::string MetricsRegistry::toJson() const {
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &KV : Counters) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, KV.second.value());
    Out += First ? "\n" : ",\n";
    Out += "    \"" + jsonEscape(KV.first) + "\": " + Buf;
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"gauges\": {";
  First = true;
  for (const auto &KV : Gauges) {
    Out += First ? "\n" : ",\n";
    Out += "    \"" + jsonEscape(KV.first) +
           "\": " + jsonDouble(KV.second.value());
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"histograms\": {";
  First = true;
  for (const auto &KV : Histograms) {
    const Histogram &H = KV.second;
    char Count[32];
    std::snprintf(Count, sizeof(Count), "%" PRIu64, H.count());
    Out += First ? "\n" : ",\n";
    Out += "    \"" + jsonEscape(KV.first) + "\": {\"count\": " + Count +
           ", \"sum\": " + jsonDouble(H.sum()) +
           ", \"mean\": " + jsonDouble(H.mean()) +
           ", \"min\": " + jsonDouble(H.min()) +
           ", \"max\": " + jsonDouble(H.max()) + "}";
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"series\": {";
  First = true;
  for (const auto &KV : Series) {
    Out += First ? "\n" : ",\n";
    Out += "    \"" + jsonEscape(KV.first) + "\": [";
    const std::vector<double> &B = KV.second.buckets();
    for (size_t I = 0; I != B.size(); ++I) {
      if (I)
        Out += ", ";
      Out += jsonDouble(B[I]);
    }
    Out += "]";
    First = false;
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

void MetricsRegistry::writeJson(std::FILE *F) const {
  std::string S = toJson();
  std::fwrite(S.data(), 1, S.size(), F);
}
