//===- support/ThreadPool.cpp - Work-stealing thread pool -----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cstdlib>

namespace panthera {
namespace support {

namespace {
/// True while the current thread is executing a worker body. Used to run
/// nested regions inline (serially) instead of deadlocking on the pool.
thread_local bool InsideWorkerRegion = false;
} // namespace

unsigned resolveAutoThreads() {
  if (const char *Env = std::getenv("PANTHERA_THREADS")) {
    long N = std::atol(Env);
    if (N >= 1)
      return static_cast<unsigned>(N);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

WorkStealingPool::WorkStealingPool(unsigned NumWorkers)
    : Workers(NumWorkers == 0 ? 1 : NumWorkers) {}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> L(M);
    ShuttingDown = true;
  }
  JobCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkStealingPool::startThreads() {
  if (ThreadsStarted)
    return;
  ThreadsStarted = true;
  Threads.reserve(Workers - 1);
  for (unsigned Id = 1; Id < Workers; ++Id)
    Threads.emplace_back([this, Id] { workerLoop(Id); });
}

void WorkStealingPool::workerLoop(unsigned Id) {
  // Worker threads only ever execute inside a region.
  InsideWorkerRegion = true;
  uint64_t SeenGen = 0;
  std::unique_lock<std::mutex> L(M);
  for (;;) {
    JobCv.wait(L, [&] { return ShuttingDown || JobGen != SeenGen; });
    if (ShuttingDown)
      return;
    SeenGen = JobGen;
    const std::function<void(unsigned)> *Fn = Job;
    L.unlock();
    (*Fn)(Id);
    L.lock();
    if (--Outstanding == 0)
      DoneCv.notify_one();
  }
}

void WorkStealingPool::runOnWorkers(const std::function<void(unsigned)> &Fn) {
  if (Workers == 1 || InsideWorkerRegion) {
    for (unsigned W = 0; W < Workers; ++W)
      Fn(W);
    return;
  }
  startThreads();
  {
    std::lock_guard<std::mutex> L(M);
    Job = &Fn;
    Outstanding = Workers - 1;
    ++JobGen;
  }
  JobCv.notify_all();
  InsideWorkerRegion = true;
  Fn(0);
  InsideWorkerRegion = false;
  std::unique_lock<std::mutex> L(M);
  DoneCv.wait(L, [&] { return Outstanding == 0; });
  Job = nullptr;
}

void WorkStealingPool::run(size_t NumTasks,
                           const std::function<void(size_t, unsigned)> &Fn) {
  if (NumTasks == 0)
    return;
  if (Workers == 1 || NumTasks == 1 || InsideWorkerRegion) {
    for (size_t T = 0; T < NumTasks; ++T)
      Fn(T, 0);
    return;
  }
  std::vector<std::unique_ptr<ChaseLevDeque<size_t>>> Deques;
  Deques.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Deques.emplace_back(std::make_unique<ChaseLevDeque<size_t>>());
  // Pre-distribute the index space round-robin before any worker starts;
  // the dispatch handshake publishes these pushes to every worker.
  for (size_t T = 0; T < NumTasks; ++T)
    Deques[T % Workers]->push(T);
  std::atomic<size_t> Remaining{NumTasks};
  runOnWorkers([&](unsigned W) {
    size_t Task = 0;
    for (;;) {
      bool Got = Deques[W]->pop(Task);
      for (unsigned I = 1; I < Workers && !Got; ++I)
        Got = Deques[(W + I) % Workers]->steal(Task);
      if (Got) {
        Fn(Task, W);
        Remaining.fetch_sub(1, std::memory_order_acq_rel);
      } else {
        if (Remaining.load(std::memory_order_acquire) == 0)
          return;
        std::this_thread::yield();
      }
    }
  });
}

} // namespace support
} // namespace panthera
