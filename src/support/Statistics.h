//===- support/Statistics.h - Small numeric helpers -------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny numeric helpers shared by the benchmark harnesses: running means,
/// geometric means for normalized ratios, and simple ratio formatting.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_STATISTICS_H
#define PANTHERA_SUPPORT_STATISTICS_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace panthera {

/// Arithmetic mean of \p Values; zero for an empty vector.
inline double mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

/// Geometric mean of \p Values (all must be positive); used to average
/// normalized time/energy ratios across benchmarks, as is conventional.
inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Running min/max/sum accumulator.
class Accumulator {
public:
  void add(double V) {
    Sum += V;
    Count += 1;
    if (Count == 1 || V < Minimum)
      Minimum = V;
    if (Count == 1 || V > Maximum)
      Maximum = V;
  }

  double sum() const { return Sum; }
  double average() const { return Count ? Sum / Count : 0.0; }
  double min() const { return Minimum; }
  double max() const { return Maximum; }
  uint64_t count() const { return Count; }

private:
  double Sum = 0.0;
  double Minimum = 0.0;
  double Maximum = 0.0;
  uint64_t Count = 0;
};

} // namespace panthera

#endif // PANTHERA_SUPPORT_STATISTICS_H
