//===- support/Statistics.h - Small numeric helpers -------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny numeric helpers shared by the benchmark harnesses: running means,
/// geometric means for normalized ratios, and simple ratio formatting.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_STATISTICS_H
#define PANTHERA_SUPPORT_STATISTICS_H

#include "support/Errors.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace panthera {

/// Arithmetic mean of \p Values; zero for an empty vector.
inline double mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

/// Geometric mean of \p Values (all must be positive); used to average
/// normalized time/energy ratios across benchmarks, as is conventional.
/// Non-positive or non-finite inputs are rejected with a typed error in
/// every build mode -- an assert-only check would let a zero ratio turn
/// the whole mean into exp(-inf) = 0 silently in release builds.
inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    PANTHERA_CHECK(std::isfinite(V) && V > 0.0,
                   "geomean requires positive finite values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Running min/max/sum accumulator. An empty accumulator has no minimum
/// or maximum: min()/max() return NaN until the first add() so consumers
/// (notably the metrics JSON exporter, which renders NaN as null) cannot
/// mistake "no samples" for a real 0-valued extremum.
/// Non-finite samples (NaN/inf) are skipped and tallied separately: a NaN
/// arriving first would otherwise poison min/max for good (NaN < NaN and
/// V < NaN are both false, so neither extremum could ever update again).
class Accumulator {
public:
  void add(double V) {
    if (!std::isfinite(V)) {
      NonFinite += 1;
      return;
    }
    Sum += V;
    Count += 1;
    if (Count == 1 || V < Minimum)
      Minimum = V;
    if (Count == 1 || V > Maximum)
      Maximum = V;
  }

  double sum() const { return Sum; }
  double average() const { return Count ? Sum / Count : 0.0; }
  double min() const {
    return Count ? Minimum : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return Count ? Maximum : std::numeric_limits<double>::quiet_NaN();
  }
  uint64_t count() const { return Count; }
  /// Samples rejected for being NaN or infinite.
  uint64_t nonFiniteCount() const { return NonFinite; }

private:
  double Sum = 0.0;
  double Minimum = 0.0;
  double Maximum = 0.0;
  uint64_t Count = 0;
  uint64_t NonFinite = 0;
};

/// One per-partition task's attempt history (every launch appends one
/// record on completion, successful or not).
struct TaskAttemptRecord {
  std::string Stage;     ///< Human-readable stage label.
  uint32_t RddId = 0;    ///< Lineage node the task computed.
  uint32_t Partition = 0;
  uint32_t Attempts = 1; ///< Total attempts made (1 = first try worked).
  bool Succeeded = true;
  std::string LastError; ///< Message of the last failed attempt ("" if none).
};

/// The per-stage/per-task attempt ledger the engine surfaces after a run.
struct TaskLedger {
  std::vector<TaskAttemptRecord> Records;

  uint64_t totalTasks() const { return Records.size(); }
  uint64_t totalAttempts() const {
    uint64_t N = 0;
    for (const TaskAttemptRecord &R : Records)
      N += R.Attempts;
    return N;
  }
  /// Attempts beyond each task's first (the cost of recovery).
  uint64_t totalRetries() const { return totalAttempts() - totalTasks(); }
  uint64_t failedTasks() const {
    uint64_t N = 0;
    for (const TaskAttemptRecord &R : Records)
      if (!R.Succeeded)
        ++N;
    return N;
  }
  void clear() { Records.clear(); }
};

} // namespace panthera

#endif // PANTHERA_SUPPORT_STATISTICS_H
