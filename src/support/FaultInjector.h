//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, site-addressable fault injector. Each injection site (task
/// execution, cache read, allocation, shuffle fetch) draws from its own
/// SplitMix64 stream derived from the plan seed, so a given (seed, plan)
/// reproduces the exact same failure schedule regardless of what the other
/// sites observe. Sites fire either probabilistically (Bernoulli per
/// occurrence) or deterministically on the Nth occurrence.
///
/// Recovery code wraps itself in a FaultSuppressionScope so that the
/// machinery that repairs an injected failure is never itself injected
/// (which would make recovery tests nonterminating).
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_FAULTINJECTOR_H
#define PANTHERA_SUPPORT_FAULTINJECTOR_H

#include "support/Errors.h"
#include "support/Random.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace panthera {

/// Where a fault can be injected.
enum class FaultSite : uint8_t {
  TaskExecution, ///< At the start of a per-partition task body.
  CacheRead,     ///< Reading a materialized (persisted) partition: the
                 ///< cache is dropped and must be recomputed from lineage.
  Allocation,    ///< In the heap's mutator allocation path (simulated
                 ///< memory exhaustion -> OutOfMemoryError).
  ShuffleFetch,  ///< Reduce side fetching its shuffle bucket.
  ExecutorLoss,  ///< Cluster mode: a reduce-side block fetch kills the
                 ///< owning executor; its map outputs are recomputed from
                 ///< lineage (no-op without a cluster).
  // New sites append at the end: the constructor derives one stream per
  // site in enum order, so inserting in the middle would silently reseed
  // every later site and invalidate frozen fault schedules.
  SlowExecutor,  ///< Cluster mode: a stage-start draw per live executor;
                 ///< a fire degrades that executor, multiplying its
                 ///< simulated task/fetch costs by the configured factor
                 ///< (no-op without a cluster).
  FetchTransient,///< Cluster mode: one remote shuffle-block fetch is
                 ///< dropped in flight or delivers bytes that fail the
                 ///< replica byte-verification; retried with backoff
                 ///< (no-op without a cluster).
};

constexpr size_t NumFaultSites = 7;

const char *faultSiteName(FaultSite S);

/// Parses a CLI site spelling ("task", "cache", "alloc", "shuffle",
/// "executor", "slow-executor", "fetch").
/// Returns false for unknown names.
bool parseFaultSite(const std::string &Name, FaultSite &Out);

/// Malformed fault-plan input (unknown site, trigger outside its domain, a
/// probability outside [0, 1]). Typed so CLI front-ends and tests can
/// distinguish configuration mistakes from engine faults.
class FaultConfigError : public EngineError {
public:
  explicit FaultConfigError(const std::string &What) : EngineError(What) {}
};

/// Per-site trigger configuration. Probability and FireOnNth compose: the
/// site fires on its FireOnNth-th occurrence and on every Bernoulli hit,
/// up to MaxFires total.
struct FaultSiteConfig {
  double Probability = 0.0; ///< Bernoulli chance per occurrence.
  uint64_t FireOnNth = 0;   ///< 1-based occurrence index; 0 disables.
  uint64_t MaxFires = UINT64_MAX; ///< Cap on total fires at this site.

  bool enabled() const { return Probability > 0.0 || FireOnNth != 0; }

  /// Throws FaultConfigError when Probability falls outside [0, 1] (or is
  /// not a number). A probability above 1 silently behaves like 1.0 and
  /// a negative one like 0.0, so unvalidated plans would "work" while
  /// running a different schedule than the user asked for.
  void validate(const char *SiteName) const;
};

/// A full injection plan: one seed, one config per site.
struct FaultPlan {
  uint64_t Seed = 0x70616e7468657261ull; // "panthera"
  std::array<FaultSiteConfig, NumFaultSites> Sites;

  FaultSiteConfig &site(FaultSite S) {
    return Sites[static_cast<size_t>(S)];
  }
  const FaultSiteConfig &site(FaultSite S) const {
    return Sites[static_cast<size_t>(S)];
  }
  bool enabled() const {
    for (const FaultSiteConfig &C : Sites)
      if (C.enabled())
        return true;
    return false;
  }
  /// Validates every site (see FaultSiteConfig::validate). The injector
  /// constructor calls this, so a plan with an out-of-range probability
  /// fails loudly no matter which front-end built it.
  void validate() const;
};

/// Parses one CLI fault spec "SITE:p=X" / "SITE:nth=N" (panthera_sim's
/// --fault flag) into \p Plan, accumulating over earlier specs. Throws
/// FaultConfigError on an unknown site, a malformed trigger, a probability
/// outside [0, 1], or nth == 0.
void parseFaultSpec(const std::string &Spec, FaultPlan &Plan);

/// Draws deterministic fire/no-fire decisions per site. Safe to call from
/// multiple worker threads: the occurrence counters are atomic, and each
/// draw is a pure function of (site stream, occurrence index), so the set
/// of firing occurrence indices is identical at every thread count.
class FaultInjector {
public:
  explicit FaultInjector(const FaultPlan &Plan);

  /// Counts one occurrence of \p S and returns true when the site fires.
  /// Returns false (and does not count) while suppressed.
  bool shouldFail(FaultSite S);

  uint64_t occurrences(FaultSite S) const {
    return Counters[static_cast<size_t>(S)].Occurrences.load(
        std::memory_order_relaxed);
  }
  uint64_t fired(FaultSite S) const {
    return Counters[static_cast<size_t>(S)].Fired.load(
        std::memory_order_relaxed);
  }
  uint64_t totalFired() const;

  /// Seed for a worker-local randomness stream decorrelated from the plan
  /// seed and from every other worker's stream. Code running on pool
  /// worker \p StreamId that needs private randomness (beyond the shared
  /// per-site schedules above) must draw from SplitMix64(childSeed(Id))
  /// rather than sharing a sequential stream, so its draws do not depend
  /// on how work was interleaved across workers.
  uint64_t childSeed(uint64_t StreamId) const {
    SplitMix64 Mix(Plan.Seed ^
                   (0x9e3779b97f4a7c15ull * (StreamId + 1)));
    return Mix.next();
  }

  bool suppressed() const {
    return SuppressDepth.load(std::memory_order_relaxed) > 0;
  }
  void pushSuppression() {
    SuppressDepth.fetch_add(1, std::memory_order_relaxed);
  }
  void popSuppression() {
    SuppressDepth.fetch_sub(1, std::memory_order_relaxed);
  }

  const FaultPlan &plan() const { return Plan; }

private:
  struct SiteState {
    uint64_t BaseState = 0; ///< Per-site stream base (fixed after init).
    std::atomic<uint64_t> Occurrences{0};
    std::atomic<uint64_t> Fired{0};
  };

  FaultPlan Plan;
  std::array<SiteState, NumFaultSites> Counters;
  std::atomic<int> SuppressDepth{0};
};

/// RAII suppression for recovery paths. Null injector is a no-op.
class FaultSuppressionScope {
public:
  explicit FaultSuppressionScope(FaultInjector *I) : I(I) {
    if (I)
      I->pushSuppression();
  }
  ~FaultSuppressionScope() {
    if (I)
      I->popSuppression();
  }
  FaultSuppressionScope(const FaultSuppressionScope &) = delete;
  FaultSuppressionScope &operator=(const FaultSuppressionScope &) = delete;

private:
  FaultInjector *I;
};

} // namespace panthera

#endif // PANTHERA_SUPPORT_FAULTINJECTOR_H
