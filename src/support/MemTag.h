//===- support/MemTag.h - DRAM/NVM memory tags ------------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory tag carried from the static analysis down to the runtime.
/// Matches the paper's two reserved object-header MEMORY_BITS: 00 = no tag,
/// 01 = DRAM, 10 = NVM.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_MEMTAG_H
#define PANTHERA_SUPPORT_MEMTAG_H

#include <cstdint>

namespace panthera {

/// Placement hint for an RDD (and transitively its data objects).
enum class MemTag : uint8_t {
  None = 0, ///< MEMORY_BITS 00: untagged; ages normally, tenures to NVM.
  Dram = 1, ///< MEMORY_BITS 01: pretenure into the old gen's DRAM space.
  Nvm = 2,  ///< MEMORY_BITS 10: pretenure into the old gen's NVM space.
};

/// Resolves a tag conflict. §3/§4.2.2: DRAM has priority over NVM, because
/// the goal is to minimize NVM-induced slowdowns on frequently-read data.
inline MemTag mergeTags(MemTag A, MemTag B) {
  if (A == MemTag::Dram || B == MemTag::Dram)
    return MemTag::Dram;
  if (A == MemTag::Nvm || B == MemTag::Nvm)
    return MemTag::Nvm;
  return MemTag::None;
}

inline const char *memTagName(MemTag T) {
  switch (T) {
  case MemTag::None:
    return "NONE";
  case MemTag::Dram:
    return "DRAM";
  case MemTag::Nvm:
    return "NVM";
  }
  return "?";
}

} // namespace panthera

#endif // PANTHERA_SUPPORT_MEMTAG_H
