//===- support/TraceLog.h - Simulated-clock span/event trace ----*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only trace of spans (GC pauses with per-phase sub-spans,
/// stages, per-partition tasks) and instant events (OOM-degradation
/// steps), all stamped with the *simulated* clock from HybridMemory --
/// never the wall clock, so the export is byte-identical at every
/// --threads value.
///
/// The exporter emits the chrome://tracing JSON object format
/// ({"traceEvents":[...]}): complete events (ph "X") for spans, instant
/// events (ph "i") for point occurrences, and metadata events naming the
/// three fixed tracks (engine / gc / heap). Timestamps are simulated
/// microseconds (chrome's native unit), fractional where the clock
/// demands it. Load the file at chrome://tracing or https://ui.perfetto.dev.
///
/// Emission runs only on the serial driver path (task scheduling, the GC
/// entry points, the heap's OOM fallback) -- the log is not thread-safe,
/// and does not need to be under PR 2's execution model.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_TRACELOG_H
#define PANTHERA_SUPPORT_TRACELOG_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace panthera {
namespace support {

/// Fixed trace tracks, rendered as chrome "threads" of one process.
enum class TraceTrack : uint32_t {
  Engine = 1,  ///< Stages, per-partition tasks.
  Gc = 2,      ///< Minor/major collections and their phases.
  Heap = 3,    ///< Allocation-pressure events (OOM degradation path).
  Network = 4, ///< Cluster fabric transfers (remote shuffle fetches). Its
               ///< thread_name metadata is emitted only when an event uses
               ///< it, so non-cluster traces keep the 3-track prologue.
};

/// One recorded span or instant event.
struct TraceEvent {
  std::string Name;
  std::string Cat;
  TraceTrack Track = TraceTrack::Engine;
  double StartNs = 0.0;
  double DurationNs = -1.0; ///< Negative = instant event.
  /// Pre-rendered args: value is emitted verbatim unless Quoted.
  struct Arg {
    std::string Key;
    std::string Value;
    bool Quoted = false;
  };
  std::vector<Arg> Args;
};

class TraceLog {
public:
  /// Builder handle for attaching args to the event just recorded. Use it
  /// immediately: it points into the log and is invalidated by the next
  /// span()/instant() call.
  class EventRef {
  public:
    explicit EventRef(TraceEvent &E) : E(E) {}
    EventRef &arg(const std::string &Key, uint64_t V);
    EventRef &arg(const std::string &Key, double V);
    EventRef &arg(const std::string &Key, const std::string &V);

  private:
    TraceEvent &E;
  };

  /// Records a complete span [StartNs, StartNs + DurationNs).
  EventRef span(TraceTrack Track, const std::string &Name,
                const std::string &Cat, double StartNs, double DurationNs);

  /// Records an instant event at \p AtNs.
  EventRef instant(TraceTrack Track, const std::string &Name,
                   const std::string &Cat, double AtNs);

  const std::vector<TraceEvent> &events() const { return Events; }
  size_t size() const { return Events.size(); }

  /// chrome://tracing JSON object format. Deterministic: events in record
  /// order, fixed metadata prologue, %.17g timestamps.
  std::string toJson() const;
  void writeJson(std::FILE *F) const;

private:
  std::vector<TraceEvent> Events;
};

} // namespace support
} // namespace panthera

#endif // PANTHERA_SUPPORT_TRACELOG_H
