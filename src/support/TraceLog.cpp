//===- support/TraceLog.cpp - Simulated-clock span/event trace -----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TraceLog.h"

#include "support/Metrics.h"

#include <cinttypes>

using namespace panthera::support;

TraceLog::EventRef &TraceLog::EventRef::arg(const std::string &Key,
                                            uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  E.Args.push_back({Key, Buf, /*Quoted=*/false});
  return *this;
}

TraceLog::EventRef &TraceLog::EventRef::arg(const std::string &Key,
                                            double V) {
  E.Args.push_back({Key, jsonDouble(V), /*Quoted=*/false});
  return *this;
}

TraceLog::EventRef &TraceLog::EventRef::arg(const std::string &Key,
                                            const std::string &V) {
  E.Args.push_back({Key, V, /*Quoted=*/true});
  return *this;
}

TraceLog::EventRef TraceLog::span(TraceTrack Track, const std::string &Name,
                                  const std::string &Cat, double StartNs,
                                  double DurationNs) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Track = Track;
  E.StartNs = StartNs;
  E.DurationNs = DurationNs < 0.0 ? 0.0 : DurationNs;
  Events.push_back(std::move(E));
  return EventRef(Events.back());
}

TraceLog::EventRef TraceLog::instant(TraceTrack Track,
                                     const std::string &Name,
                                     const std::string &Cat, double AtNs) {
  TraceEvent E;
  E.Name = Name;
  E.Cat = Cat;
  E.Track = Track;
  E.StartNs = AtNs;
  E.DurationNs = -1.0;
  Events.push_back(std::move(E));
  return EventRef(Events.back());
}

std::string TraceLog::toJson() const {
  std::string Out = "{\"traceEvents\": [\n";
  // Metadata prologue: name the process and the three fixed tracks so
  // chrome://tracing labels them instead of showing bare tids.
  Out += "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": 0, \"args\": {\"name\": \"panthera (simulated clock)\"}}";
  struct TrackName {
    TraceTrack Track;
    const char *Name;
  };
  const TrackName Tracks[4] = {{TraceTrack::Engine, "engine"},
                               {TraceTrack::Gc, "gc"},
                               {TraceTrack::Heap, "heap"},
                               {TraceTrack::Network, "network"}};
  bool AnyNetwork = false;
  for (const TraceEvent &E : Events)
    AnyNetwork |= E.Track == TraceTrack::Network;
  for (const TrackName &T : Tracks) {
    // The network track only exists in cluster runs; naming it
    // unconditionally would change every non-cluster trace export.
    if (T.Track == TraceTrack::Network && !AnyNetwork)
      continue;
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", "
                  "\"pid\": 1, \"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                  static_cast<unsigned>(T.Track), T.Name);
    Out += Buf;
  }

  for (const TraceEvent &E : Events) {
    Out += ",\n  {\"name\": \"" + jsonEscape(E.Name) + "\", \"cat\": \"" +
           jsonEscape(E.Cat) + "\", ";
    char Buf[96];
    if (E.DurationNs < 0.0) {
      // Instant event, thread scope.
      Out += "\"ph\": \"i\", \"s\": \"t\", ";
    } else {
      Out += "\"ph\": \"X\", \"dur\": " + jsonDouble(E.DurationNs / 1000.0) +
             ", ";
    }
    std::snprintf(Buf, sizeof(Buf), "\"pid\": 1, \"tid\": %u, \"ts\": ",
                  static_cast<unsigned>(E.Track));
    Out += Buf;
    Out += jsonDouble(E.StartNs / 1000.0);
    Out += ", \"args\": {";
    for (size_t I = 0; I != E.Args.size(); ++I) {
      const TraceEvent::Arg &A = E.Args[I];
      if (I)
        Out += ", ";
      Out += "\"" + jsonEscape(A.Key) + "\": ";
      if (A.Quoted)
        Out += "\"" + jsonEscape(A.Value) + "\"";
      else
        Out += A.Value;
    }
    Out += "}}";
  }
  Out += "\n]}\n";
  return Out;
}

void TraceLog::writeJson(std::FILE *F) const {
  std::string S = toJson();
  std::fwrite(S.data(), 1, S.size(), F);
}
