//===- support/Errors.h - Typed runtime errors and checks -------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exception taxonomy for recoverable failures. A production big-data
/// runtime must degrade, not crash: invariant violations on user-reachable
/// paths throw EngineError, allocation failure after the staged fallback
/// throws OutOfMemoryError, and a failed (or fault-injected) task throws
/// TaskFailure so the scheduler can retry it from lineage.
///
/// PANTHERA_CHECK replaces assert() on user-reachable engine paths: it
/// stays active under NDEBUG and throws instead of aborting. Internal GC
/// invariants keep plain assert -- a broken collector cannot unwind safely.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_ERRORS_H
#define PANTHERA_SUPPORT_ERRORS_H

#include <stdexcept>
#include <string>

namespace panthera {

/// An engine invariant was violated on a user-reachable path (bad driver
/// input, misuse of the API, or retry exhaustion). Not retryable.
class EngineError : public std::runtime_error {
public:
  explicit EngineError(const std::string &What) : std::runtime_error(What) {}
};

/// The heap could not satisfy an allocation even after the staged fallback
/// (emergency full GC, DRAM<->NVM overflow, storage eviction). The task
/// layer converts this into a failed -- retryable or cleanly-reported --
/// task instead of a process crash.
class OutOfMemoryError : public std::runtime_error {
public:
  explicit OutOfMemoryError(const std::string &What)
      : std::runtime_error(What) {}
};

/// One task (per-partition unit of stage work) failed and may be retried.
/// Thrown by fault-injection sites and by cache-loss detection; the
/// scheduler rolls back the task's partial effects, recomputes any lost
/// lineage, and re-attempts with capped exponential backoff.
class TaskFailure : public std::runtime_error {
public:
  explicit TaskFailure(const std::string &What) : std::runtime_error(What) {}
};

} // namespace panthera

/// Invariant check for user-reachable paths: active in every build type,
/// throws EngineError with the failing condition and location.
#define PANTHERA_CHECK(Cond, Msg)                                             \
  do {                                                                        \
    if (!(Cond))                                                              \
      throw ::panthera::EngineError(std::string("engine check failed: ") +    \
                                    (Msg) + " [" #Cond "] (" __FILE__ ":" +   \
                                    std::to_string(__LINE__) + ")");          \
  } while (false)

#endif // PANTHERA_SUPPORT_ERRORS_H
