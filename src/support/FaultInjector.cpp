//===- support/FaultInjector.cpp - Deterministic fault injection ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

using namespace panthera;

const char *panthera::faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::TaskExecution:
    return "task";
  case FaultSite::CacheRead:
    return "cache";
  case FaultSite::Allocation:
    return "alloc";
  case FaultSite::ShuffleFetch:
    return "shuffle";
  }
  return "?";
}

bool panthera::parseFaultSite(const std::string &Name, FaultSite &Out) {
  if (Name == "task") {
    Out = FaultSite::TaskExecution;
  } else if (Name == "cache") {
    Out = FaultSite::CacheRead;
  } else if (Name == "alloc" || Name == "allocation") {
    Out = FaultSite::Allocation;
  } else if (Name == "shuffle") {
    Out = FaultSite::ShuffleFetch;
  } else {
    return false;
  }
  return true;
}

FaultInjector::FaultInjector(const FaultPlan &Plan) : Plan(Plan) {
  // Decorrelate the per-site streams: run the plan seed through one
  // SplitMix64 step per site so adjacent sites never share a sequence.
  SplitMix64 Seeder(Plan.Seed);
  for (SiteState &S : Counters)
    S.RngState = Seeder.next();
}

bool FaultInjector::shouldFail(FaultSite Site) {
  if (SuppressDepth > 0)
    return false;
  SiteState &S = Counters[static_cast<size_t>(Site)];
  const FaultSiteConfig &C = Plan.site(Site);
  if (!C.enabled())
    return false;
  ++S.Occurrences;
  if (S.Fired >= C.MaxFires)
    return false;
  bool Fire = C.FireOnNth != 0 && S.Occurrences == C.FireOnNth;
  if (!Fire && C.Probability > 0.0) {
    // Advance this site's private stream even when the draw misses so the
    // schedule depends only on this site's occurrence index.
    SplitMix64 Rng(S.RngState);
    double Draw = Rng.nextDouble();
    S.RngState += 0x9e3779b97f4a7c15ull; // mirror SplitMix64's advance
    Fire = Draw < C.Probability;
  }
  if (Fire)
    ++S.Fired;
  return Fire;
}

uint64_t FaultInjector::totalFired() const {
  uint64_t Total = 0;
  for (const SiteState &S : Counters)
    Total += S.Fired;
  return Total;
}
