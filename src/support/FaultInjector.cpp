//===- support/FaultInjector.cpp - Deterministic fault injection ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

using namespace panthera;

const char *panthera::faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::TaskExecution:
    return "task";
  case FaultSite::CacheRead:
    return "cache";
  case FaultSite::Allocation:
    return "alloc";
  case FaultSite::ShuffleFetch:
    return "shuffle";
  case FaultSite::ExecutorLoss:
    return "executor";
  }
  return "?";
}

bool panthera::parseFaultSite(const std::string &Name, FaultSite &Out) {
  if (Name == "task") {
    Out = FaultSite::TaskExecution;
  } else if (Name == "cache") {
    Out = FaultSite::CacheRead;
  } else if (Name == "alloc" || Name == "allocation") {
    Out = FaultSite::Allocation;
  } else if (Name == "shuffle") {
    Out = FaultSite::ShuffleFetch;
  } else if (Name == "executor" || Name == "exec") {
    Out = FaultSite::ExecutorLoss;
  } else {
    return false;
  }
  return true;
}

FaultInjector::FaultInjector(const FaultPlan &Plan) : Plan(Plan) {
  // Decorrelate the per-site streams: run the plan seed through one
  // SplitMix64 step per site so adjacent sites never share a sequence.
  SplitMix64 Seeder(Plan.Seed);
  for (SiteState &S : Counters)
    S.BaseState = Seeder.next();
}

bool FaultInjector::shouldFail(FaultSite Site) {
  if (suppressed())
    return false;
  SiteState &S = Counters[static_cast<size_t>(Site)];
  const FaultSiteConfig &C = Plan.site(Site);
  if (!C.enabled())
    return false;
  uint64_t Occ = S.Occurrences.fetch_add(1, std::memory_order_relaxed) + 1;
  bool Fire = C.FireOnNth != 0 && Occ == C.FireOnNth;
  if (!Fire && C.Probability > 0.0) {
    // The draw is a pure function of the site's stream base and this
    // occurrence's index, so the schedule depends only on this site's
    // occurrence count -- never on thread interleaving or on what the
    // other sites observed.
    SplitMix64 Rng(S.BaseState + (Occ - 1) * 0x9e3779b97f4a7c15ull);
    Fire = Rng.nextDouble() < C.Probability;
  }
  if (!Fire)
    return false;
  // Enforce the fire cap with a CAS so concurrent hits never exceed it.
  uint64_t F = S.Fired.load(std::memory_order_relaxed);
  do {
    if (F >= C.MaxFires)
      return false;
  } while (!S.Fired.compare_exchange_weak(F, F + 1,
                                          std::memory_order_relaxed));
  return true;
}

uint64_t FaultInjector::totalFired() const {
  uint64_t Total = 0;
  for (const SiteState &S : Counters)
    Total += S.Fired.load(std::memory_order_relaxed);
  return Total;
}
