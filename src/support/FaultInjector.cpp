//===- support/FaultInjector.cpp - Deterministic fault injection ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include "support/CliParse.h"

using namespace panthera;

const char *panthera::faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::TaskExecution:
    return "task";
  case FaultSite::CacheRead:
    return "cache";
  case FaultSite::Allocation:
    return "alloc";
  case FaultSite::ShuffleFetch:
    return "shuffle";
  case FaultSite::ExecutorLoss:
    return "executor";
  case FaultSite::SlowExecutor:
    return "slow-executor";
  case FaultSite::FetchTransient:
    return "fetch";
  }
  return "?";
}

bool panthera::parseFaultSite(const std::string &Name, FaultSite &Out) {
  if (Name == "task") {
    Out = FaultSite::TaskExecution;
  } else if (Name == "cache") {
    Out = FaultSite::CacheRead;
  } else if (Name == "alloc" || Name == "allocation") {
    Out = FaultSite::Allocation;
  } else if (Name == "shuffle") {
    Out = FaultSite::ShuffleFetch;
  } else if (Name == "executor" || Name == "exec") {
    Out = FaultSite::ExecutorLoss;
  } else if (Name == "slow-executor" || Name == "slow") {
    Out = FaultSite::SlowExecutor;
  } else if (Name == "fetch") {
    Out = FaultSite::FetchTransient;
  } else {
    return false;
  }
  return true;
}

void FaultSiteConfig::validate(const char *SiteName) const {
  // NaN compares false against everything, so test for in-range rather
  // than out-of-range.
  if (!(Probability >= 0.0 && Probability <= 1.0))
    throw FaultConfigError("fault site '" + std::string(SiteName) +
                           "': probability " + std::to_string(Probability) +
                           " is outside [0, 1]");
}

void FaultPlan::validate() const {
  for (size_t I = 0; I != NumFaultSites; ++I)
    Sites[I].validate(faultSiteName(static_cast<FaultSite>(I)));
}

void panthera::parseFaultSpec(const std::string &Spec, FaultPlan &Plan) {
  size_t Colon = Spec.find(':');
  if (Colon == std::string::npos)
    throw FaultConfigError("fault spec '" + Spec +
                           "' is not SITE:p=X or SITE:nth=N");
  std::string SiteName = Spec.substr(0, Colon);
  std::string Trigger = Spec.substr(Colon + 1);
  FaultSite Site;
  if (!parseFaultSite(SiteName, Site))
    throw FaultConfigError(
        "unknown fault site '" + SiteName +
        "' (task|cache|alloc|shuffle|executor|slow-executor|fetch)");
  FaultSiteConfig &C = Plan.site(Site);
  if (Trigger.rfind("p=", 0) == 0) {
    double P = 0.0;
    // Parse over the whole double range first, then range-check through
    // validate() so "p=1.5" reports the typed out-of-[0,1] error rather
    // than a generic parse failure.
    if (!support::parseF64(Trigger.c_str() + 2, -1e308, 1e308, P))
      throw FaultConfigError("fault spec '" + Spec +
                             "': malformed probability '" +
                             Trigger.substr(2) + "'");
    FaultSiteConfig Candidate = C;
    Candidate.Probability = P;
    Candidate.validate(faultSiteName(Site));
    C = Candidate;
  } else if (Trigger.rfind("nth=", 0) == 0) {
    uint64_t N = 0;
    if (!support::parseUnsigned(Trigger.c_str() + 4, 1, UINT64_MAX, N))
      throw FaultConfigError("fault spec '" + Spec +
                             "': nth wants an integer >= 1, got '" +
                             Trigger.substr(4) + "'");
    C.FireOnNth = N;
  } else {
    throw FaultConfigError("fault spec '" + Spec +
                           "': trigger must be p=<prob> or nth=<N>");
  }
}

FaultInjector::FaultInjector(const FaultPlan &Plan) : Plan(Plan) {
  Plan.validate();
  // Decorrelate the per-site streams: run the plan seed through one
  // SplitMix64 step per site so adjacent sites never share a sequence.
  SplitMix64 Seeder(Plan.Seed);
  for (SiteState &S : Counters)
    S.BaseState = Seeder.next();
}

bool FaultInjector::shouldFail(FaultSite Site) {
  if (suppressed())
    return false;
  SiteState &S = Counters[static_cast<size_t>(Site)];
  const FaultSiteConfig &C = Plan.site(Site);
  if (!C.enabled())
    return false;
  uint64_t Occ = S.Occurrences.fetch_add(1, std::memory_order_relaxed) + 1;
  bool Fire = C.FireOnNth != 0 && Occ == C.FireOnNth;
  if (!Fire && C.Probability > 0.0) {
    // The draw is a pure function of the site's stream base and this
    // occurrence's index, so the schedule depends only on this site's
    // occurrence count -- never on thread interleaving or on what the
    // other sites observed.
    SplitMix64 Rng(S.BaseState + (Occ - 1) * 0x9e3779b97f4a7c15ull);
    Fire = Rng.nextDouble() < C.Probability;
  }
  if (!Fire)
    return false;
  // Enforce the fire cap with a CAS so concurrent hits never exceed it.
  uint64_t F = S.Fired.load(std::memory_order_relaxed);
  do {
    if (F >= C.MaxFires)
      return false;
  } while (!S.Fired.compare_exchange_weak(F, F + 1,
                                          std::memory_order_relaxed));
  return true;
}

uint64_t FaultInjector::totalFired() const {
  uint64_t Total = 0;
  for (const SiteState &S : Counters)
    Total += S.Fired.load(std::memory_order_relaxed);
  return Total;
}
