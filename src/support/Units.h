//===- support/Units.h - Size units and the paper's scale factor -*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-size unit helpers and the global paper-to-simulation scale factor.
///
/// The paper evaluates 64 GB and 120 GB heaps on a NUMA emulator. The
/// simulator in this repository scales every size by 1 GB -> 1 MB (heaps,
/// the Unmanaged baseline's interleave chunks, dataset footprints, and the
/// large-array pretenuring threshold), which preserves every ratio the
/// evaluation depends on while keeping runs laptop-sized.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_UNITS_H
#define PANTHERA_SUPPORT_UNITS_H

#include <cstdint>

namespace panthera {

constexpr uint64_t KiB = 1024;
constexpr uint64_t MiB = 1024 * KiB;
constexpr uint64_t GiB = 1024 * MiB;

/// One "paper gigabyte" expressed in simulated bytes (1 GB -> 1 MB).
constexpr uint64_t PaperGB = MiB;

/// One "paper megabyte" under the same 1024x scale (1 MB -> 1 KB); used by
/// the finer-grained budgets (--offheap-mb).
constexpr uint64_t PaperMB = PaperGB / 1024;

/// The paper pretenures the first array allocation whose length exceeds one
/// million elements after an rdd_alloc call; scaled by the same 1024x factor.
constexpr uint32_t ScaledLargeArrayThreshold = 1024;

} // namespace panthera

#endif // PANTHERA_SUPPORT_UNITS_H
