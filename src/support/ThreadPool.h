//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shared work-stealing thread pool in the shape of HotSpot's GC task
/// manager: a fixed set of workers, per-worker Chase-Lev deques, and two
/// entry points -- run() for a work-stealing parallel loop over task
/// indices, and runOnWorkers() for barrier-style parallel regions where
/// each worker executes one long-lived body (the form the collector's
/// scavenge phases use).
///
/// Design constraints:
///   * Worker ids are stable: id W maps to the same OS thread across every
///     region, so owner-only data structures (deques, PLAB cursors, tally
///     counters) can be indexed by worker id and carried between regions.
///   * The caller participates as worker 0; a pool of one worker never
///     spawns a thread and degenerates to plain serial execution.
///   * Nested regions execute inline and serially, so code that is reached
///     both from inside and outside a region behaves identically.
///   * ThreadSanitizer-clean: the deque is the seq_cst formulation of
///     Chase-Lev (no standalone fences, which TSan does not model) and
///     elements live in std::atomic slots.
///
/// Task bodies must not throw: an escaping exception would unwind a worker
/// thread. Callers that can fail capture their error state and rethrow
/// after the region joins.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_SUPPORT_THREADPOOL_H
#define PANTHERA_SUPPORT_THREADPOOL_H

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace panthera {
namespace support {

/// Chase-Lev work-stealing deque (Chase & Lev, SPAA '05). The owning
/// worker pushes and pops at the bottom; any other thread steals from the
/// top. Grows by doubling; old buffers are retired (not freed) until the
/// deque is destroyed because a concurrent thief may still be reading one.
template <typename T> class ChaseLevDeque {
public:
  explicit ChaseLevDeque(size_t InitialCapacity = 64) {
    size_t Cap = 8;
    while (Cap < InitialCapacity)
      Cap *= 2;
    Buf.store(new Buffer(Cap), std::memory_order_relaxed);
  }

  ~ChaseLevDeque() { delete Buf.load(std::memory_order_relaxed); }

  ChaseLevDeque(const ChaseLevDeque &) = delete;
  ChaseLevDeque &operator=(const ChaseLevDeque &) = delete;

  /// Owner-only: pushes \p V at the bottom.
  void push(T V) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_acquire);
    Buffer *A = Buf.load(std::memory_order_relaxed);
    if (B - Tp >= static_cast<int64_t>(A->Cap))
      A = grow(A, Tp, B);
    A->slot(B).store(V, std::memory_order_relaxed);
    Bottom.store(B + 1, std::memory_order_seq_cst);
  }

  /// Owner-only: pops the most recently pushed element.
  bool pop(T &Out) {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Buffer *A = Buf.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    if (Tp < B) {
      Out = A->slot(B).load(std::memory_order_relaxed);
      return true;
    }
    bool Got = false;
    if (Tp == B) {
      // Last element: race the thieves for it via the top counter.
      Out = A->slot(B).load(std::memory_order_relaxed);
      Got = Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
    }
    Bottom.store(B + 1, std::memory_order_seq_cst);
    return Got;
  }

  /// Any thread: steals the oldest element.
  bool steal(T &Out) {
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (Tp >= B)
      return false;
    Buffer *A = Buf.load(std::memory_order_acquire);
    T V = A->slot(Tp).load(std::memory_order_relaxed);
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return false;
    Out = V;
    return true;
  }

  bool empty() const {
    return Top.load(std::memory_order_seq_cst) >=
           Bottom.load(std::memory_order_seq_cst);
  }

private:
  struct Buffer {
    explicit Buffer(size_t C)
        : Cap(C), Slots(std::make_unique<std::atomic<T>[]>(C)) {}
    size_t Cap;
    std::unique_ptr<std::atomic<T>[]> Slots;
    std::atomic<T> &slot(int64_t I) {
      return Slots[static_cast<size_t>(I) & (Cap - 1)];
    }
  };

  /// Owner-only: doubles the buffer, copying the live range [Tp, B).
  Buffer *grow(Buffer *A, int64_t Tp, int64_t B) {
    Buffer *N = new Buffer(A->Cap * 2);
    for (int64_t I = Tp; I < B; ++I)
      N->slot(I).store(A->slot(I).load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    Buf.store(N, std::memory_order_release);
    Retired.emplace_back(A);
    return N;
  }

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Buffer *> Buf{nullptr};
  std::vector<std::unique_ptr<Buffer>> Retired;
};

/// The shared pool. One instance per Runtime, sized by
/// RuntimeConfig::NumThreads; injected into SparkContext and Collector.
class WorkStealingPool {
public:
  /// \p NumWorkers includes the caller; 0 is treated as 1.
  explicit WorkStealingPool(unsigned NumWorkers);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool &) = delete;
  WorkStealingPool &operator=(const WorkStealingPool &) = delete;

  unsigned numWorkers() const { return Workers; }

  /// Barrier-style parallel region: every worker W in [0, numWorkers())
  /// runs Fn(W) exactly once; returns after all of them finish. The caller
  /// runs worker 0's share. Nested calls execute inline and serially.
  void runOnWorkers(const std::function<void(unsigned)> &Fn);

  /// Work-stealing parallel loop: runs Fn(Task, Worker) for every Task in
  /// [0, NumTasks), distributed over per-worker deques with stealing.
  /// Returns after every task has finished.
  void run(size_t NumTasks, const std::function<void(size_t, unsigned)> &Fn);

private:
  void startThreads();
  void workerLoop(unsigned Id);

  unsigned Workers;
  std::vector<std::thread> Threads;
  bool ThreadsStarted = false;

  std::mutex M;
  std::condition_variable JobCv;
  std::condition_variable DoneCv;
  uint64_t JobGen = 0;
  const std::function<void(unsigned)> *Job = nullptr;
  unsigned Outstanding = 0;
  bool ShuttingDown = false;
};

/// The worker count RuntimeConfig::NumThreads == 0 ("auto") resolves to:
/// the PANTHERA_THREADS environment variable if set, otherwise
/// std::thread::hardware_concurrency().
unsigned resolveAutoThreads();

} // namespace support
} // namespace panthera

#endif // PANTHERA_SUPPORT_THREADPOOL_H
