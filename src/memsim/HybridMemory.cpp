//===- memsim/HybridMemory.cpp - Hybrid DRAM/NVM cost model --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "memsim/HybridMemory.h"

#include <cstddef>

using namespace panthera::memsim;

HybridMemory::HybridMemory(uint64_t TotalBytes, const MemoryTechnology &Tech,
                           const CacheConfig &CacheCfg, double EpochNs,
                           support::MetricsRegistry *Reg)
    : Map(TotalBytes), Tech(Tech), Cache(CacheCfg), EpochNs(EpochNs),
      Streams(Tech.PrefetchStreams) {
  if (Reg) {
    Registry = Reg;
  } else {
    OwnedRegistry = std::make_unique<support::MetricsRegistry>();
    Registry = OwnedRegistry.get();
  }
  Bw[0] = &Registry->series("memsim.bandwidth.dram_read_bytes");
  Bw[1] = &Registry->series("memsim.bandwidth.dram_write_bytes");
  Bw[2] = &Registry->series("memsim.bandwidth.nvm_read_bytes");
  Bw[3] = &Registry->series("memsim.bandwidth.nvm_write_bytes");
}

std::vector<EpochSample> HybridMemory::bandwidthTrace() const {
  size_t N = 0;
  for (const support::TimeSeries *S : Bw)
    if (S->size() > N)
      N = S->size();
  std::vector<EpochSample> Trace(N);
  for (size_t I = 0; I != N; ++I) {
    Trace[I].DramReadBytes = Bw[0]->at(I);
    Trace[I].DramWriteBytes = Bw[1]->at(I);
    Trace[I].NvmReadBytes = Bw[2]->at(I);
    Trace[I].NvmWriteBytes = Bw[3]->at(I);
  }
  return Trace;
}

bool HybridMemory::checkPrefetch(uint64_t LineAddr) {
  // A prefetcher configured with zero stream slots tracks nothing; without
  // this guard the LRU insertion below would write Streams[0] of an empty
  // vector.
  if (Streams.empty())
    return false;
  ++StreamClock;
  size_t Lru = 0;
  for (size_t I = 0; I != Streams.size(); ++I) {
    if (Streams[I].NextLine == LineAddr) {
      Streams[I].NextLine = LineAddr + 1;
      Streams[I].LastUse = StreamClock;
      return true;
    }
    if (Streams[I].LastUse < Streams[Lru].LastUse)
      Lru = I;
  }
  // New stream candidate: predict the sequential successor.
  Streams[Lru].NextLine = LineAddr + 1;
  Streams[Lru].LastUse = StreamClock;
  return false;
}

void HybridMemory::recordTraffic(uint64_t LineAddr, bool IsWrite) {
  Device D = Map.deviceOf(LineAddr);
  TrafficCounters &C = Traffic[static_cast<unsigned>(D)];
  if (IsWrite)
    ++C.LineWrites;
  else
    ++C.LineReads;

  // Bucket into the bandwidth series by current simulated time.
  size_t Epoch = static_cast<size_t>(totalTimeNs() / EpochNs);
  size_t Idx = (D == Device::DRAM ? 0 : 2) + (IsWrite ? 1 : 0);
  Bw[Idx]->addAt(Epoch, static_cast<double>(CacheLineBytes));
}

void HybridMemory::onAccess(uint64_t Addr, uint32_t Bytes, bool IsWrite) {
  assert(Bytes > 0 && "zero-size access");
  uint64_t FirstLine = Addr / CacheLineBytes;
  uint64_t LastLine = (Addr + Bytes - 1) / CacheLineBytes;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line) {
    uint64_t LineAddr = Line * CacheLineBytes;
    if (Tech.Mode == EmulationMode::NaiveInjection) {
      // §5.1's rejected alternative: a fixed delay per executed
      // load/store, blind to caches and overlap.
      Device D = Map.deviceOf(LineAddr);
      chargeNs(IsWrite ? Tech.writeLatencyNs(D) : Tech.readLatencyNs(D));
      recordTraffic(LineAddr, IsWrite);
      continue;
    }
    CacheResult R = Cache.access(LineAddr, IsWrite);
    if (R.Hit) {
      chargeNs(Tech.CacheHitNs / Tech.mlp(Current));
      continue;
    }
    // Miss: fill the line from its device. A write miss performs a
    // read-for-ownership; the store itself is absorbed by the cache and
    // reaches the device later as a writeback. Sequential-stream misses
    // are hidden by the prefetcher and cost only bandwidth.
    Device D = Map.deviceOf(LineAddr);
    bool Prefetched =
        Tech.StreamPrefetcher && checkPrefetch(Line);
    if (Prefetched) {
      ++PrefetchedMisses;
      // Prefetched lines stream concurrently with compute.
      chargeOverlappableNs(
          Tech.missCostNs(D, Current, /*IsWrite=*/false, Prefetched));
    } else {
      // A demand miss is a dependent load: the pipeline stalls.
      chargeNs(Tech.missCostNs(D, Current, /*IsWrite=*/false, Prefetched));
    }
    recordTraffic(LineAddr, /*IsWrite=*/false);
    if (R.Writeback) {
      // Writebacks drain asynchronously; they consume bandwidth (and on
      // NVM, substantial energy) but overlap with compute.
      Device VictimDev = Map.deviceOf(R.VictimLineAddr);
      chargeOverlappableNs(static_cast<double>(CacheLineBytes) /
                           Tech.bandwidthGBs(VictimDev));
      recordTraffic(R.VictimLineAddr, /*IsWrite=*/true);
    }
  }
}

void HybridMemory::chargeBulkLines(uint64_t DramReads, uint64_t DramWrites,
                                   uint64_t NvmReads, uint64_t NvmWrites) {
  struct Batch {
    Device D;
    bool IsWrite;
    uint64_t Count;
  };
  const Batch Batches[4] = {
      {Device::DRAM, false, DramReads},
      {Device::DRAM, true, DramWrites},
      {Device::NVM, false, NvmReads},
      {Device::NVM, true, NvmWrites},
  };
  for (const Batch &B : Batches) {
    if (B.Count == 0)
      continue;
    chargeNs(static_cast<double>(B.Count) *
             Tech.missCostNs(B.D, Current, B.IsWrite));
    TrafficCounters &C = Traffic[static_cast<unsigned>(B.D)];
    if (B.IsWrite)
      C.LineWrites += B.Count;
    else
      C.LineReads += B.Count;
  }
  // Bucket the whole batch into the trace at the post-charge time (one
  // epoch sample; bulk charges are point events on the simulated clock).
  size_t Epoch = static_cast<size_t>(totalTimeNs() / EpochNs);
  double LineBytes = CacheLineBytes;
  Bw[0]->addAt(Epoch, LineBytes * static_cast<double>(DramReads));
  Bw[1]->addAt(Epoch, LineBytes * static_cast<double>(DramWrites));
  Bw[2]->addAt(Epoch, LineBytes * static_cast<double>(NvmReads));
  Bw[3]->addAt(Epoch, LineBytes * static_cast<double>(NvmWrites));
}

void HybridMemory::addCpuWorkNs(double Ns) {
  chargeNs(Ns);
  double &Slack = CpuSlackNs[static_cast<unsigned>(Current)];
  Slack += Ns;
  if (Slack > Tech.CpuOverlapWindowNs)
    Slack = Tech.CpuOverlapWindowNs;
}
