//===- memsim/HybridMemory.cpp - Hybrid DRAM/NVM cost model --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "memsim/HybridMemory.h"

#include <cstddef>

using namespace panthera::memsim;

HybridMemory::HybridMemory(uint64_t TotalBytes, const MemoryTechnology &Tech,
                           const CacheConfig &CacheCfg, double EpochNs)
    : Map(TotalBytes), Tech(Tech), Cache(CacheCfg), EpochNs(EpochNs),
      Streams(Tech.PrefetchStreams) {}

bool HybridMemory::checkPrefetch(uint64_t LineAddr) {
  ++StreamClock;
  size_t Lru = 0;
  for (size_t I = 0; I != Streams.size(); ++I) {
    if (Streams[I].NextLine == LineAddr) {
      Streams[I].NextLine = LineAddr + 1;
      Streams[I].LastUse = StreamClock;
      return true;
    }
    if (Streams[I].LastUse < Streams[Lru].LastUse)
      Lru = I;
  }
  // New stream candidate: predict the sequential successor.
  Streams[Lru].NextLine = LineAddr + 1;
  Streams[Lru].LastUse = StreamClock;
  return false;
}

void HybridMemory::recordTraffic(uint64_t LineAddr, bool IsWrite) {
  Device D = Map.deviceOf(LineAddr);
  TrafficCounters &C = Traffic[static_cast<unsigned>(D)];
  if (IsWrite)
    ++C.LineWrites;
  else
    ++C.LineReads;

  // Bucket into the bandwidth trace by current simulated time.
  size_t Epoch = static_cast<size_t>(totalTimeNs() / EpochNs);
  if (Trace.size() <= Epoch)
    Trace.resize(Epoch + 1);
  EpochSample &S = Trace[Epoch];
  double Bytes = CacheLineBytes;
  if (D == Device::DRAM) {
    (IsWrite ? S.DramWriteBytes : S.DramReadBytes) += Bytes;
  } else {
    (IsWrite ? S.NvmWriteBytes : S.NvmReadBytes) += Bytes;
  }
}

void HybridMemory::onAccess(uint64_t Addr, uint32_t Bytes, bool IsWrite) {
  assert(Bytes > 0 && "zero-size access");
  uint64_t FirstLine = Addr / CacheLineBytes;
  uint64_t LastLine = (Addr + Bytes - 1) / CacheLineBytes;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line) {
    uint64_t LineAddr = Line * CacheLineBytes;
    if (Tech.Mode == EmulationMode::NaiveInjection) {
      // §5.1's rejected alternative: a fixed delay per executed
      // load/store, blind to caches and overlap.
      Device D = Map.deviceOf(LineAddr);
      chargeNs(IsWrite ? Tech.writeLatencyNs(D) : Tech.readLatencyNs(D));
      recordTraffic(LineAddr, IsWrite);
      continue;
    }
    CacheResult R = Cache.access(LineAddr, IsWrite);
    if (R.Hit) {
      chargeNs(Tech.CacheHitNs / Tech.mlp(Current));
      continue;
    }
    // Miss: fill the line from its device. A write miss performs a
    // read-for-ownership; the store itself is absorbed by the cache and
    // reaches the device later as a writeback. Sequential-stream misses
    // are hidden by the prefetcher and cost only bandwidth.
    Device D = Map.deviceOf(LineAddr);
    bool Prefetched =
        Tech.StreamPrefetcher && checkPrefetch(Line);
    if (Prefetched) {
      ++PrefetchedMisses;
      // Prefetched lines stream concurrently with compute.
      chargeOverlappableNs(
          Tech.missCostNs(D, Current, /*IsWrite=*/false, Prefetched));
    } else {
      // A demand miss is a dependent load: the pipeline stalls.
      chargeNs(Tech.missCostNs(D, Current, /*IsWrite=*/false, Prefetched));
    }
    recordTraffic(LineAddr, /*IsWrite=*/false);
    if (R.Writeback) {
      // Writebacks drain asynchronously; they consume bandwidth (and on
      // NVM, substantial energy) but overlap with compute.
      Device VictimDev = Map.deviceOf(R.VictimLineAddr);
      chargeOverlappableNs(static_cast<double>(CacheLineBytes) /
                           Tech.bandwidthGBs(VictimDev));
      recordTraffic(R.VictimLineAddr, /*IsWrite=*/true);
    }
  }
}

void HybridMemory::chargeBulkLines(uint64_t DramReads, uint64_t DramWrites,
                                   uint64_t NvmReads, uint64_t NvmWrites) {
  struct Batch {
    Device D;
    bool IsWrite;
    uint64_t Count;
  };
  const Batch Batches[4] = {
      {Device::DRAM, false, DramReads},
      {Device::DRAM, true, DramWrites},
      {Device::NVM, false, NvmReads},
      {Device::NVM, true, NvmWrites},
  };
  for (const Batch &B : Batches) {
    if (B.Count == 0)
      continue;
    chargeNs(static_cast<double>(B.Count) *
             Tech.missCostNs(B.D, Current, B.IsWrite));
    TrafficCounters &C = Traffic[static_cast<unsigned>(B.D)];
    if (B.IsWrite)
      C.LineWrites += B.Count;
    else
      C.LineReads += B.Count;
  }
  // Bucket the whole batch into the trace at the post-charge time (one
  // epoch sample; bulk charges are point events on the simulated clock).
  size_t Epoch = static_cast<size_t>(totalTimeNs() / EpochNs);
  if (Trace.size() <= Epoch)
    Trace.resize(Epoch + 1);
  EpochSample &S = Trace[Epoch];
  double LineBytes = CacheLineBytes;
  S.DramReadBytes += LineBytes * static_cast<double>(DramReads);
  S.DramWriteBytes += LineBytes * static_cast<double>(DramWrites);
  S.NvmReadBytes += LineBytes * static_cast<double>(NvmReads);
  S.NvmWriteBytes += LineBytes * static_cast<double>(NvmWrites);
}

void HybridMemory::addCpuWorkNs(double Ns) {
  chargeNs(Ns);
  double &Slack = CpuSlackNs[static_cast<unsigned>(Current)];
  Slack += Ns;
  if (Slack > Tech.CpuOverlapWindowNs)
    Slack = Tech.CpuOverlapWindowNs;
}
