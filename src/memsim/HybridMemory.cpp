//===- memsim/HybridMemory.cpp - Hybrid DRAM/NVM cost model --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "memsim/HybridMemory.h"

#include "memsim/HotnessTracker.h"
#include "support/Errors.h"

#include <cmath>
#include <cstddef>

using namespace panthera::memsim;

HybridMemory::HybridMemory(uint64_t TotalBytes, const MemoryTechnology &Tech,
                           const CacheConfig &CacheCfg, double EpochNs,
                           support::MetricsRegistry *Reg)
    : Map(TotalBytes), Tech(Tech), Cache(CacheCfg), EpochNs(EpochNs),
      Prefetch(Tech.PrefetchStreams) {
  // recordTraffic divides by EpochNs and casts the quotient to size_t; a
  // zero, negative, or non-finite epoch turns that cast into undefined
  // behavior, so reject it at the source.
  PANTHERA_CHECK(std::isfinite(EpochNs) && EpochNs > 0.0,
                 "memsim epoch length must be a positive finite ns value");
  if (Reg) {
    Registry = Reg;
  } else {
    OwnedRegistry = std::make_unique<support::MetricsRegistry>();
    Registry = OwnedRegistry.get();
  }
  Bw[0] = &Registry->series("memsim.bandwidth.dram_read_bytes");
  Bw[1] = &Registry->series("memsim.bandwidth.dram_write_bytes");
  Bw[2] = &Registry->series("memsim.bandwidth.nvm_read_bytes");
  Bw[3] = &Registry->series("memsim.bandwidth.nvm_write_bytes");
}

std::vector<EpochSample> HybridMemory::bandwidthTrace() const {
  size_t N = 0;
  for (const support::TimeSeries *S : Bw)
    if (S->size() > N)
      N = S->size();
  std::vector<EpochSample> Trace(N);
  for (size_t I = 0; I != N; ++I) {
    Trace[I].DramReadBytes = Bw[0]->at(I);
    Trace[I].DramWriteBytes = Bw[1]->at(I);
    Trace[I].NvmReadBytes = Bw[2]->at(I);
    Trace[I].NvmWriteBytes = Bw[3]->at(I);
  }
  return Trace;
}

void HybridMemory::recordTraffic(uint64_t LineAddr, bool IsWrite) {
  Device D = Map.deviceOf(LineAddr);
  TrafficCounters &C = Traffic[static_cast<unsigned>(D)];
  if (IsWrite)
    ++C.LineWrites;
  else
    ++C.LineReads;

  // Bucket into the bandwidth series by current simulated time.
  size_t Epoch = static_cast<size_t>(totalTimeNs() / EpochNs);
  size_t Idx = (D == Device::DRAM ? 0 : 2) + (IsWrite ? 1 : 0);
  Bw[Idx]->addAt(Epoch, static_cast<double>(CacheLineBytes));
}

void HybridMemory::onAccessRange(uint64_t Addr, uint64_t Bytes, bool IsWrite,
                                 uint64_t ElemBytes) {
  assert(Bytes > 0 && "zero-size access");
  assert((ElemBytes == 0 || Bytes % ElemBytes == 0) &&
         "range must be a whole number of elements");
  // Hotness profiling taps the accounted stream here, ahead of the path
  // dispatch, so Batched and PerLine feed the tracker identically. Only
  // mutator-actor traffic counts: GC evacuation touching a page must not
  // make it look application-hot.
  if (Hot && Current == Actor::Mutator)
    Hot->onRange(Addr, Bytes);
  // NaiveInjection ignores the cache entirely, so there is nothing to
  // amortize; it always takes the reference loop.
  if (Path == AccessPathMode::PerLine ||
      Tech.Mode == EmulationMode::NaiveInjection) {
    perLineRange(Addr, Bytes, IsWrite, ElemBytes);
    return;
  }
  // Single-line ranges -- every mutator field access -- skip the range
  // walker and its per-call cost-constant setup entirely.
  const uint64_t FirstLine = Addr / CacheLineBytes;
  if (FirstLine == (Addr + Bytes - 1) / CacheLineBytes) {
    const uint64_t E = ElemBytes ? ElemBytes : Bytes;
    fastOne(FirstLine, IsWrite, static_cast<uint32_t>(Bytes / E));
    return;
  }
  fastRange(Addr, Bytes, IsWrite, ElemBytes);
}

void HybridMemory::fastOne(uint64_t Line, bool IsWrite, uint32_t Touches) {
  // Mirrors one iteration of the reference per-line loop, including the
  // fused Touches * HitNs fold; costs are evaluated only on the branch
  // taken, so the hot hit case is probe + multiply + add.
  CacheResult R = Cache.accessLineHinted(Line, IsWrite, Touches - 1);
  if (R.Hit) {
    chargeNs(static_cast<double>(Touches) *
             (Tech.CacheHitNs / Tech.mlp(Current)));
    return;
  }
  const uint64_t LineStart = Line * CacheLineBytes;
  Device D = Map.deviceOf(LineStart);
  bool Prefetched = Tech.StreamPrefetcher && Prefetch.access(Line);
  if (Prefetched) {
    ++PrefetchedMisses;
    chargeOverlappableNs(
        Tech.missCostNs(D, Current, /*IsWrite=*/false, Prefetched));
  } else {
    chargeNs(Tech.missCostNs(D, Current, /*IsWrite=*/false, Prefetched));
  }
  recordTraffic(LineStart, /*IsWrite=*/false);
  if (R.Writeback) {
    Device VictimDev = victimDeviceOf(R.VictimLineAddr);
    chargeOverlappableNs(static_cast<double>(CacheLineBytes) /
                         Tech.bandwidthGBs(VictimDev));
    recordTraffic(R.VictimLineAddr, /*IsWrite=*/true);
  }
  if (Touches > 1)
    chargeNs(static_cast<double>(Touches - 1) *
             (Tech.CacheHitNs / Tech.mlp(Current)));
}

void HybridMemory::perLineRange(uint64_t Addr, uint64_t Bytes, bool IsWrite,
                                uint64_t ElemBytes) {
  if (Tech.Mode == EmulationMode::NaiveInjection) {
    // Naive injection is a flat per-touch delay with no cache, so the
    // range op literally is the element loop.
    if (ElemBytes == 0) {
      perLineAccess(Addr, Bytes, IsWrite);
      return;
    }
    for (uint64_t I = 0, N = Bytes / ElemBytes; I != N; ++I)
      perLineAccess(Addr + I * ElemBytes, ElemBytes, IsWrite);
    return;
  }

  // Cache-aware reference loop: one full pipeline evaluation per touched
  // line -- deviceOf on every line, a prefetcher probe per miss, one
  // cache probe per element touch -- with only the cost fold the range
  // contract defines shared with the batched path (one fused
  // Touches * HitNs term per line; see onAccessRange in the header).
  const double HitNs = Tech.CacheHitNs / Tech.mlp(Current);
  const uint64_t E = ElemBytes ? ElemBytes : Bytes;
  const uint64_t NumElems = Bytes / E;
  const uint64_t FirstLine = Addr / CacheLineBytes;
  const uint64_t LastLine = (Addr + Bytes - 1) / CacheLineBytes;

  uint64_t ElemIdx = 0;
  uint64_t ElemStart = Addr;
  uint64_t CurEnd = 0;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line) {
    const uint64_t LineStart = Line * CacheLineBytes;
    const uint64_t LineEnd = LineStart + CacheLineBytes;
    uint32_t Touches = CurEnd > LineStart ? 1u : 0u;
    while (ElemIdx != NumElems && ElemStart < LineEnd) {
      ++Touches;
      ++ElemIdx;
      ElemStart += E;
      CurEnd = ElemStart;
    }
    // One cache probe per touch (the batched path instead coalesces the
    // guaranteed repeat hits through the Repeat parameter -- running both
    // forms differentially checks that coalescing).
    CacheResult R = Cache.access(LineStart, IsWrite);
    for (uint32_t K = 1; K < Touches; ++K)
      Cache.access(LineStart, IsWrite);
    if (R.Hit) {
      chargeNs(static_cast<double>(Touches) * HitNs);
      continue;
    }
    Device D = Map.deviceOf(LineStart);
    bool Prefetched = Tech.StreamPrefetcher && Prefetch.access(Line);
    if (Prefetched) {
      ++PrefetchedMisses;
      chargeOverlappableNs(
          Tech.missCostNs(D, Current, /*IsWrite=*/false, Prefetched));
    } else {
      chargeNs(Tech.missCostNs(D, Current, /*IsWrite=*/false, Prefetched));
    }
    recordTraffic(LineStart, /*IsWrite=*/false);
    if (R.Writeback) {
      Device VictimDev = Map.deviceOf(R.VictimLineAddr);
      chargeOverlappableNs(static_cast<double>(CacheLineBytes) /
                           Tech.bandwidthGBs(VictimDev));
      recordTraffic(R.VictimLineAddr, /*IsWrite=*/true);
    }
    if (Touches > 1)
      chargeNs(static_cast<double>(Touches - 1) * HitNs);
  }
}

void HybridMemory::perLineAccess(uint64_t Addr, uint64_t Bytes, bool IsWrite) {
  uint64_t FirstLine = Addr / CacheLineBytes;
  uint64_t LastLine = (Addr + Bytes - 1) / CacheLineBytes;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line) {
    uint64_t LineAddr = Line * CacheLineBytes;
    if (Tech.Mode == EmulationMode::NaiveInjection) {
      // §5.1's rejected alternative: a fixed delay per executed
      // load/store, blind to caches and overlap.
      Device D = Map.deviceOf(LineAddr);
      chargeNs(IsWrite ? Tech.writeLatencyNs(D) : Tech.readLatencyNs(D));
      recordTraffic(LineAddr, IsWrite);
      continue;
    }
    CacheResult R = Cache.access(LineAddr, IsWrite);
    if (R.Hit) {
      chargeNs(Tech.CacheHitNs / Tech.mlp(Current));
      continue;
    }
    // Miss: fill the line from its device. A write miss performs a
    // read-for-ownership; the store itself is absorbed by the cache and
    // reaches the device later as a writeback. Sequential-stream misses
    // are hidden by the prefetcher and cost only bandwidth.
    Device D = Map.deviceOf(LineAddr);
    bool Prefetched = Tech.StreamPrefetcher && Prefetch.access(Line);
    if (Prefetched) {
      ++PrefetchedMisses;
      // Prefetched lines stream concurrently with compute.
      chargeOverlappableNs(
          Tech.missCostNs(D, Current, /*IsWrite=*/false, Prefetched));
    } else {
      // A demand miss is a dependent load: the pipeline stalls.
      chargeNs(Tech.missCostNs(D, Current, /*IsWrite=*/false, Prefetched));
    }
    recordTraffic(LineAddr, /*IsWrite=*/false);
    if (R.Writeback) {
      // Writebacks drain asynchronously; they consume bandwidth (and on
      // NVM, substantial energy) but overlap with compute.
      Device VictimDev = Map.deviceOf(R.VictimLineAddr);
      chargeOverlappableNs(static_cast<double>(CacheLineBytes) /
                           Tech.bandwidthGBs(VictimDev));
      recordTraffic(R.VictimLineAddr, /*IsWrite=*/true);
    }
  }
}

void HybridMemory::fastRange(uint64_t Addr, uint64_t Bytes, bool IsWrite,
                             uint64_t ElemBytes) {
  // The reference path is a loop of per-element, per-line pipeline
  // evaluations. Three observations let this path strip most of that work
  // without changing a single bit of simulator state:
  //
  //   1. Consecutive touches of one line after the first are guaranteed
  //      LLC hits (the line is MRU; nothing intervenes). The cache model
  //      coalesces them (Repeat) and the clock takes the single fused
  //      Touches * HitNs term the range contract defines -- the same FP
  //      multiply-then-add the reference loop performs.
  //   2. The device map is page-granular and cannot change mid-call, so
  //      one deviceOf per page run equals one per missed line.
  //   3. Miss/hit/writeback costs are pure functions of constants, so
  //      they can be computed once per call.
  //
  // The clock, slack, and epoch arithmetic below mirrors chargeNs /
  // chargeOverlappableNs / recordTraffic operation-for-operation on local
  // copies, written back at the end.
  const unsigned Cur = static_cast<unsigned>(Current);
  double Clock = ActorNs[Cur];
  const double OtherClock = ActorNs[1 - Cur];
  double Slack = CpuSlackNs[Cur];

  const double HitNs = Tech.CacheHitNs / Tech.mlp(Current);
  const double DemandNs[NumDevices] = {
      Tech.missCostNs(Device::DRAM, Current, false, false),
      Tech.missCostNs(Device::NVM, Current, false, false)};
  const double PrefetchNs[NumDevices] = {
      Tech.missCostNs(Device::DRAM, Current, false, true),
      Tech.missCostNs(Device::NVM, Current, false, true)};
  const double WritebackNs[NumDevices] = {
      static_cast<double>(CacheLineBytes) /
          Tech.bandwidthGBs(Device::DRAM),
      static_cast<double>(CacheLineBytes) / Tech.bandwidthGBs(Device::NVM)};

  // totalTimeNs() is ActorNs[0] + ActorNs[1] in that order; reproduce the
  // operand order exactly so the epoch index rounds identically.
  const auto RecordTraffic = [&](Device D, bool W) {
    TrafficCounters &C = Traffic[static_cast<unsigned>(D)];
    if (W)
      ++C.LineWrites;
    else
      ++C.LineReads;
    double Total = Cur == 0 ? Clock + OtherClock : OtherClock + Clock;
    size_t Epoch = static_cast<size_t>(Total / EpochNs);
    size_t Idx = (D == Device::DRAM ? 0 : 2) + (W ? 1 : 0);
    Bw[Idx]->addAt(Epoch, static_cast<double>(CacheLineBytes));
  };

  const uint64_t E = ElemBytes ? ElemBytes : Bytes;
  const uint64_t NumElems = Bytes / E;
  const uint64_t FirstLine = Addr / CacheLineBytes;
  const uint64_t LastLine = (Addr + Bytes - 1) / CacheLineBytes;
  constexpr uint64_t LinesPerPage = AddressMap::PageBytes / CacheLineBytes;
  // When whole elements tile a line exactly (the aligned sub-line scan
  // every bulk caller issues), the touch count is a constant and the
  // cursor advances arithmetically -- no per-element loop.
  const uint32_t TilePerLine =
      (E <= CacheLineBytes && CacheLineBytes % E == 0)
          ? static_cast<uint32_t>(CacheLineBytes / E)
          : 0;

  // Element cursor: ElemIdx/ElemStart walk forward monotonically; CurEnd
  // is the end of the last element seen, which detects elements straddling
  // into the current line from the previous one.
  uint64_t ElemIdx = 0;
  uint64_t ElemStart = Addr;
  uint64_t CurEnd = 0;

  uint64_t Line = FirstLine;
  while (Line <= LastLine) {
    uint64_t PageLast = Line | (LinesPerPage - 1);
    if (PageLast > LastLine)
      PageLast = LastLine;
    const Device D = Map.deviceOf(Line * CacheLineBytes);
    const unsigned DI = static_cast<unsigned>(D);
    for (; Line <= PageLast; ++Line) {
      const uint64_t LineStart = Line * CacheLineBytes;
      const uint64_t LineEnd = LineStart + CacheLineBytes;
      // Touches = number of elements overlapping this line; they appear
      // back-to-back in the reference stream because element spans are
      // sorted and contiguous.
      uint32_t Touches;
      if (TilePerLine != 0 && ElemStart == LineStart &&
          NumElems - ElemIdx >= TilePerLine) {
        Touches = TilePerLine;
        ElemIdx += TilePerLine;
        ElemStart = LineEnd;
        CurEnd = LineEnd;
      } else {
        Touches = CurEnd > LineStart ? 1u : 0u;
        while (ElemIdx != NumElems && ElemStart < LineEnd) {
          ++Touches;
          ++ElemIdx;
          ElemStart += E;
          CurEnd = ElemStart;
        }
      }
      CacheResult R = Cache.accessLineHinted(Line, IsWrite, Touches - 1);
      if (R.Hit) {
        Clock += static_cast<double>(Touches) * HitNs;
        continue;
      }
      bool Prefetched = Tech.StreamPrefetcher && Prefetch.access(Line);
      if (Prefetched) {
        ++PrefetchedMisses;
        double Ns = PrefetchNs[DI];
        double Hidden = Ns < Slack ? Ns : Slack;
        Slack -= Hidden;
        Clock += Ns - Hidden;
      } else {
        Clock += DemandNs[DI];
      }
      RecordTraffic(D, false);
      if (R.Writeback) {
        Device VictimDev = victimDeviceOf(R.VictimLineAddr);
        double Ns = WritebackNs[static_cast<unsigned>(VictimDev)];
        double Hidden = Ns < Slack ? Ns : Slack;
        Slack -= Hidden;
        Clock += Ns - Hidden;
        RecordTraffic(VictimDev, true);
      }
      // The remaining touches of a missed line are its guaranteed hits.
      if (Touches > 1)
        Clock += static_cast<double>(Touches - 1) * HitNs;
    }
  }

  ActorNs[Cur] = Clock;
  CpuSlackNs[Cur] = Slack;
}

void HybridMemory::chargeBulkLines(uint64_t DramReads, uint64_t DramWrites,
                                   uint64_t NvmReads, uint64_t NvmWrites) {
  struct Batch {
    Device D;
    bool IsWrite;
    uint64_t Count;
  };
  const Batch Batches[4] = {
      {Device::DRAM, false, DramReads},
      {Device::DRAM, true, DramWrites},
      {Device::NVM, false, NvmReads},
      {Device::NVM, true, NvmWrites},
  };
  for (const Batch &B : Batches) {
    if (B.Count == 0)
      continue;
    chargeNs(static_cast<double>(B.Count) *
             Tech.missCostNs(B.D, Current, B.IsWrite));
    TrafficCounters &C = Traffic[static_cast<unsigned>(B.D)];
    if (B.IsWrite)
      C.LineWrites += B.Count;
    else
      C.LineReads += B.Count;
  }
  // Bucket the whole batch into the trace at the post-charge time (one
  // epoch sample; bulk charges are point events on the simulated clock).
  size_t Epoch = static_cast<size_t>(totalTimeNs() / EpochNs);
  double LineBytes = CacheLineBytes;
  Bw[0]->addAt(Epoch, LineBytes * static_cast<double>(DramReads));
  Bw[1]->addAt(Epoch, LineBytes * static_cast<double>(DramWrites));
  Bw[2]->addAt(Epoch, LineBytes * static_cast<double>(NvmReads));
  Bw[3]->addAt(Epoch, LineBytes * static_cast<double>(NvmWrites));
}

void HybridMemory::addCpuWorkNs(double Ns) {
  chargeNs(Ns);
  double &Slack = CpuSlackNs[static_cast<unsigned>(Current)];
  Slack += Ns;
  if (Slack > Tech.CpuOverlapWindowNs)
    Slack = Tech.CpuOverlapWindowNs;
}
