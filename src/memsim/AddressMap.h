//===- memsim/AddressMap.h - Address-to-device mapping ----------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps simulated physical addresses to the device (DRAM or NVM) backing
/// them, at page granularity. Heap spaces claim contiguous ranges; the
/// Unmanaged baseline instead interleaves fixed-size chunks probabilistically
/// (paper §5.2: 1 GB virtual-address chunks mapped to DRAM with probability
/// equal to the system's DRAM ratio).
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MEMSIM_ADDRESSMAP_H
#define PANTHERA_MEMSIM_ADDRESSMAP_H

#include "memsim/MemoryTechnology.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace panthera {
namespace memsim {

/// Page-granularity device map over a flat simulated address space.
class AddressMap {
public:
  static constexpr uint64_t PageBytes = 4096;

  /// Creates a map over \p TotalBytes of address space, all DRAM initially.
  explicit AddressMap(uint64_t TotalBytes);

  uint64_t totalBytes() const { return PageDevice.size() * PageBytes; }

  /// Backs [Start, End) with \p D. Both bounds must be page-aligned.
  void setRange(uint64_t Start, uint64_t End, Device D);

  /// Backs [Start, End) with chunks of \p ChunkBytes, each mapped to DRAM
  /// with probability \p DramProbability (deterministically from \p Seed).
  /// This is the Unmanaged baseline's layout (§5.2).
  void interleaveRange(uint64_t Start, uint64_t End, uint64_t ChunkBytes,
                       double DramProbability, uint64_t Seed);

  Device deviceOf(uint64_t Addr) const {
    uint64_t Page = Addr / PageBytes;
    assert(Page < PageDevice.size() && "address outside simulated memory");
    return static_cast<Device>(PageDevice[Page]);
  }

  /// Remap generation: bumped by every setRange/interleaveRange call.
  /// Consumers caching deviceOf results (HybridMemory's page-run fast path)
  /// compare generations instead of registering callbacks; a stale
  /// generation invalidates the cached device.
  uint64_t generation() const { return Generation; }

  /// Number of bytes in [Start, End) currently backed by \p D.
  uint64_t bytesBackedBy(uint64_t Start, uint64_t End, Device D) const;

private:
  std::vector<uint8_t> PageDevice;
  uint64_t Generation = 0;
};

} // namespace memsim
} // namespace panthera

#endif // PANTHERA_MEMSIM_ADDRESSMAP_H
