//===- memsim/Migration.h - Between-GC hot/cold page migration --*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic-migration companion to HotnessTracker: a CAMEO/MemPod-style
/// hot-page swap engine that runs at minor-GC safepoints, *between* major
/// collections. Each step pairs the hottest NVM-backed pages with the
/// coldest DRAM-backed pages inside the old generation and swaps their
/// device mapping through AddressMap::setRange (which bumps the remap
/// generation, keeping HybridMemory's page-run and victim caches coherent),
/// charging the modeled copy traffic to the GC clock.
///
/// DRAM capacity is conserved: migrations are strict 1:1 page swaps. At
/// every major GC the mapping is reset to the canonical static layout --
/// compaction re-places every object by its tag anyway, and the copy was
/// already charged by the collector, so the reset itself is free.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MEMSIM_MIGRATION_H
#define PANTHERA_MEMSIM_MIGRATION_H

#include "memsim/HotnessTracker.h"
#include "memsim/MemoryTechnology.h"

#include <cstdint>
#include <vector>

namespace panthera {
namespace memsim {

class HybridMemory;

/// Migration policy knobs (--migrate-threshold / --migrate-max-pages).
struct MigrationConfig {
  /// A region is migration-hot once it collects at least this many samples
  /// per page in the current window.
  double HotSamplesPerPage = 2.0;
  /// Page-swap budget per step (bounds the pause added to a minor GC).
  uint64_t MaxPagesPerStep = 256;
};

/// One address range the engine may remap, with its canonical (static
/// placement) device to restore at major GCs.
struct CanonicalRange {
  uint64_t Start = 0;
  uint64_t End = 0;
  Device Canonical = Device::DRAM;
};

/// Engine counters exported as memsim.migration.*.
struct MigrationStats {
  uint64_t Steps = 0;
  uint64_t PagesToDram = 0;   ///< Hot pages remapped NVM -> DRAM.
  uint64_t PagesToNvm = 0;    ///< Cold pages remapped DRAM -> NVM.
  uint64_t BytesCopied = 0;   ///< Modeled copy volume (both directions).
  uint64_t Resets = 0;        ///< Canonical restores (major GCs).
  uint64_t PagesRestored = 0; ///< Pages put back by those restores.
};

/// Result of one migration step (the collector turns it into a trace span).
struct MigrationStep {
  uint64_t PagesSwapped = 0;
  double CopyNs = 0.0;
};

/// Swaps hot-NVM / cold-DRAM page runs between collections.
class MigrationEngine {
public:
  MigrationEngine(HybridMemory &Mem, HotnessTracker &Hot,
                  const MigrationConfig &Config)
      : Mem(Mem), Hot(Hot), Config(Config) {}

  /// The ranges migration may touch (the old-generation spaces), with
  /// their canonical devices. Anything outside stays put.
  void setEligibleRanges(std::vector<CanonicalRange> Ranges) {
    Eligible = std::move(Ranges);
  }
  const std::vector<CanonicalRange> &eligibleRanges() const {
    return Eligible;
  }

  /// Runs one bounded swap pass (called at the end of a minor GC that did
  /// not escalate to a major). Deterministic: candidates are ordered by
  /// (density, address) only.
  MigrationStep step();

  /// Restores the canonical static mapping and clears the tracker window
  /// (called at the start of every major GC).
  void resetToCanonical();

  const MigrationStats &stats() const { return Stats; }

private:
  HybridMemory &Mem;
  HotnessTracker &Hot;
  MigrationConfig Config;
  std::vector<CanonicalRange> Eligible;
  MigrationStats Stats;
};

} // namespace memsim
} // namespace panthera

#endif // PANTHERA_MEMSIM_MIGRATION_H
