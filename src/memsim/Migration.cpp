//===- memsim/Migration.cpp - Between-GC hot/cold page migration ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "memsim/Migration.h"

#include "memsim/HybridMemory.h"

#include <algorithm>
#include <cassert>

using namespace panthera;
using namespace panthera::memsim;

namespace {

/// Collects up to \p Budget pages of [R.Start, R.End) (clipped to the
/// eligible ranges) currently backed by \p OnDevice.
void collectPages(const AddressMap &Map,
                  const std::vector<CanonicalRange> &Eligible,
                  const HotRegion &R, Device OnDevice, uint64_t Budget,
                  std::vector<uint64_t> &Out) {
  constexpr uint64_t P = AddressMap::PageBytes;
  for (const CanonicalRange &E : Eligible) {
    uint64_t S = std::max(R.Start, E.Start);
    uint64_t T = std::min(R.End, E.End);
    for (uint64_t Page = S; Page < T; Page += P) {
      if (Out.size() >= Budget)
        return;
      if (Map.deviceOf(Page) == OnDevice)
        Out.push_back(Page);
    }
  }
}

} // namespace

MigrationStep MigrationEngine::step() {
  MigrationStep Result;
  ++Stats.Steps;

  // Rank the tracker's regions by sample density. Ties break by address,
  // so the candidate order (hence the whole migration schedule) is a pure
  // function of the accounted access stream.
  const std::vector<HotRegion> &Regs = Hot.regions();
  std::vector<size_t> Order(Regs.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    double DA = Regs[A].samplesPerPage(), DB = Regs[B].samplesPerPage();
    if (DA != DB)
      return DA > DB;
    return Regs[A].Start < Regs[B].Start;
  });

  // Hottest-first: NVM-backed pages of regions past the hot threshold.
  std::vector<uint64_t> HotPages;
  for (size_t Idx : Order) {
    if (Regs[Idx].samplesPerPage() < Config.HotSamplesPerPage)
      break;
    collectPages(Mem.map(), Eligible, Regs[Idx], Device::NVM,
                 Config.MaxPagesPerStep, HotPages);
    if (HotPages.size() >= Config.MaxPagesPerStep)
      break;
  }
  if (HotPages.empty())
    return Result;

  // Coldest-first: DRAM-backed pages of regions below the threshold, one
  // victim per hot page (strict swap keeps the DRAM budget constant).
  std::vector<uint64_t> ColdPages;
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    if (Regs[*It].samplesPerPage() >= Config.HotSamplesPerPage)
      break;
    collectPages(Mem.map(), Eligible, Regs[*It], Device::DRAM,
                 HotPages.size(), ColdPages);
    if (ColdPages.size() >= HotPages.size())
      break;
  }

  uint64_t N = std::min(HotPages.size(), ColdPages.size());
  if (N == 0)
    return Result;

  constexpr uint64_t P = AddressMap::PageBytes;
  AddressMap &Map = Mem.map();
  uint64_t GenBefore = Map.generation();
  for (uint64_t I = 0; I != N; ++I) {
    Map.setRange(HotPages[I], HotPages[I] + P, Device::DRAM);
    Map.setRange(ColdPages[I], ColdPages[I] + P, Device::NVM);
  }
  // Staleness contract (docs/memsim.md): every remap must bump the map
  // generation, or HybridMemory's page-run and victim-writeback caches
  // would keep charging the pre-migration device. gc_fuzz folds the
  // generation into its digest for the same reason.
  assert(Map.generation() == GenBefore + 2 * N &&
         "migration remap did not bump the AddressMap generation");
  (void)GenBefore;

  // Charge the modeled copy: each swap reads the hot page from NVM and
  // writes it to DRAM, and vice versa for the cold victim. Bulk-line
  // accounting on the GC clock, same as the collector's evacuation
  // charges (a page exchange streams far more than the LLC holds).
  constexpr uint64_t LinesPerPage = AddressMap::PageBytes / CacheLineBytes;
  {
    ActorScope Scope(Mem, Actor::Gc);
    double Before = Mem.gcTimeNs();
    Mem.chargeBulkLines(/*DramReads=*/N * LinesPerPage,
                        /*DramWrites=*/N * LinesPerPage,
                        /*NvmReads=*/N * LinesPerPage,
                        /*NvmWrites=*/N * LinesPerPage);
    Result.CopyNs = Mem.gcTimeNs() - Before;
  }
  Stats.PagesToDram += N;
  Stats.PagesToNvm += N;
  Stats.BytesCopied += 2 * N * P;
  Result.PagesSwapped = N;
  return Result;
}

void MigrationEngine::resetToCanonical() {
  ++Stats.Resets;
  AddressMap &Map = Mem.map();
  for (const CanonicalRange &E : Eligible) {
    uint64_t Off = (E.End - E.Start) -
                   Map.bytesBackedBy(E.Start, E.End, E.Canonical);
    if (Off == 0)
      continue;
    Map.setRange(E.Start, E.End, E.Canonical);
    Stats.PagesRestored += Off / AddressMap::PageBytes;
  }
  // No copy is charged: the caller is a major GC whose compaction
  // evacuates every live object (and charges that traffic) anyway.
  Hot.resetCounters();
}
