//===- memsim/HotnessTracker.h - Sampled access-region profiler -*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An online hotness profiler over the memsim access stream, in the style
/// of Linux DAMON: instead of a counter per page (whose cost grows with
/// memory size), it maintains a bounded list of contiguous address regions
/// and samples the mutator's cache-line stream at a fixed stride. Hot
/// regions split so the hot/cold boundary sharpens; adjacent cold regions
/// merge so the list stays small. Monitoring cost is O(log regions) per
/// sample and O(regions) per epoch, independent of how much memory is
/// tracked.
///
/// The tracker is fed by HybridMemory::onAccessRange (mutator actor only,
/// so GC evacuation traffic never counts as application heat) and consumed
/// by the MigrationEngine (Migration.h), which swaps hot-NVM / cold-DRAM
/// page runs between collections. Determinism: samples are taken at exact
/// line-counter crossings of the accounted access stream, which the
/// engine's serial ordered replay makes identical at every thread count.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MEMSIM_HOTNESSTRACKER_H
#define PANTHERA_MEMSIM_HOTNESSTRACKER_H

#include "memsim/AddressMap.h"
#include "memsim/MemoryTechnology.h"

#include <cstdint>
#include <vector>

namespace panthera {
namespace memsim {

/// Tuning knobs for the profiler. The defaults keep overhead around one
/// region lookup per 64 accessed lines with a 128-entry region table.
struct HotnessConfig {
  /// Take one sample every N accounted cache lines (the DAMON sampling
  /// interval, expressed in stream position instead of wall time so the
  /// result is deterministic). 0 disables the tracker entirely.
  uint64_t SampleEveryLines = 64;
  /// Samples per aggregation epoch; at each epoch boundary counters decay
  /// and regions split/merge.
  uint64_t EpochSamples = 2048;
  /// Counter decay at epoch end: Count >>= DecayShift (exponential moving
  /// window, like DAMON's aggregation-interval reset but softer).
  unsigned DecayShift = 1;
  /// Regions never split below this (page granularity: migration remaps
  /// whole pages, so finer regions buy nothing).
  uint64_t MinRegionBytes = AddressMap::PageBytes;
  /// Hard cap on the region-table size (DAMON's max_nr_regions).
  unsigned MaxRegions = 128;
  /// A region splits only once it has at least this many (post-decay)
  /// samples in the epoch -- splitting cold regions is pure overhead.
  uint32_t SplitMinCount = 8;
  /// Adjacent regions whose counts are both <= this merge back together.
  uint32_t MergeMaxCount = 1;
};

/// One monitored region: [Start, End) with its sample counter.
struct HotRegion {
  uint64_t Start = 0;
  uint64_t End = 0;
  uint32_t Count = 0;

  uint64_t bytes() const { return End - Start; }
  /// Samples per page -- the density the migration threshold is applied
  /// to, so big and small regions compare fairly.
  double samplesPerPage() const {
    return static_cast<double>(Count) *
           static_cast<double>(AddressMap::PageBytes) /
           static_cast<double>(End - Start);
  }
};

/// Profiler counters exported as memsim.hotness.*.
struct HotnessStats {
  uint64_t Samples = 0; ///< Region-counter bumps taken.
  uint64_t Epochs = 0;  ///< Decay/split/merge passes run.
  uint64_t Splits = 0;  ///< Regions split (hot refinement).
  uint64_t Merges = 0;  ///< Regions merged (cold coarsening).
};

/// The DAMON-style region monitor over one address interval.
class HotnessTracker {
public:
  /// Monitors [Lo, Hi) (bounds are page-aligned outward). The interval is
  /// seeded with a handful of equal regions; split/merge adapts from there.
  HotnessTracker(uint64_t Lo, uint64_t Hi, const HotnessConfig &Config);

  /// Feeds one accounted access range. Called by HybridMemory for every
  /// mutator onAccess/onAccessRange; cost is a couple of integer ops when
  /// no sampling stride is crossed.
  void onRange(uint64_t Addr, uint64_t Bytes) {
    if (Config.SampleEveryLines == 0 || Bytes == 0)
      return;
    uint64_t End = Addr + Bytes;
    if (End <= Lo || Addr >= Hi)
      return;
    uint64_t S = Addr < Lo ? Lo : Addr;
    uint64_t E = End > Hi ? Hi : End;
    uint64_t FirstLine = S / CacheLineBytes;
    uint64_t NLines = (E - 1) / CacheLineBytes - FirstLine + 1;
    uint64_t Before = LineCursor;
    LineCursor += NLines;
    // Sample at every stride crossing of the global line counter, at the
    // exact line that crossed it (deterministic: pure function of the
    // accounted stream).
    uint64_t Stride = Config.SampleEveryLines;
    for (uint64_t Next = (Before / Stride + 1) * Stride;
         Next <= Before + NLines; Next += Stride)
      record((FirstLine + (Next - 1 - Before)) * CacheLineBytes);
  }

  const std::vector<HotRegion> &regions() const { return Regions; }
  const HotnessStats &stats() const { return Stats; }
  uint64_t lo() const { return Lo; }
  uint64_t hi() const { return Hi; }

  /// Zeroes every region counter and the epoch fill (major GC: compaction
  /// re-places everything, so accumulated heat describes a dead layout).
  /// Region boundaries survive -- the learned structure is still the best
  /// prior for the next window.
  void resetCounters();

private:
  void record(uint64_t Addr);
  void endEpoch();

  HotnessConfig Config;
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  uint64_t LineCursor = 0;
  uint64_t EpochFill = 0;
  std::vector<HotRegion> Regions;
  HotnessStats Stats;
};

} // namespace memsim
} // namespace panthera

#endif // PANTHERA_MEMSIM_HOTNESSTRACKER_H
