//===- memsim/HotnessTracker.cpp - Sampled access-region profiler ---------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "memsim/HotnessTracker.h"

#include <algorithm>
#include <cassert>

using namespace panthera;
using namespace panthera::memsim;

HotnessTracker::HotnessTracker(uint64_t Lo, uint64_t Hi,
                               const HotnessConfig &Config)
    : Config(Config) {
  constexpr uint64_t P = AddressMap::PageBytes;
  this->Lo = Lo / P * P;
  this->Hi = (Hi + P - 1) / P * P;
  assert(this->Lo < this->Hi && "empty tracked interval");
  // Seed with a few equal page-aligned regions; split/merge adapts the
  // partition to the observed access pattern from there.
  uint64_t Span = this->Hi - this->Lo;
  uint64_t Pages = Span / P;
  uint64_t Seed = std::min<uint64_t>({16, Pages, Config.MaxRegions});
  if (Seed == 0)
    Seed = 1;
  uint64_t PagesPer = Pages / Seed;
  uint64_t Start = this->Lo;
  for (uint64_t I = 0; I != Seed; ++I) {
    uint64_t End = I + 1 == Seed ? this->Hi : Start + PagesPer * P;
    Regions.push_back({Start, End, 0});
    Start = End;
  }
}

void HotnessTracker::record(uint64_t Addr) {
  // Regions are a sorted contiguous partition of [Lo, Hi); find the one
  // holding Addr by binary search on Start.
  auto It = std::upper_bound(
      Regions.begin(), Regions.end(), Addr,
      [](uint64_t A, const HotRegion &R) { return A < R.Start; });
  assert(It != Regions.begin() && "address below tracked interval");
  HotRegion &R = *(It - 1);
  assert(Addr >= R.Start && Addr < R.End && "region partition broken");
  if (R.Count != UINT32_MAX)
    ++R.Count;
  ++Stats.Samples;
  if (++EpochFill >= Config.EpochSamples) {
    EpochFill = 0;
    endEpoch();
  }
}

void HotnessTracker::endEpoch() {
  ++Stats.Epochs;

  // Merge adjacent cold regions first so the split pass below has table
  // room. (DAMON merges on similar access rates; cold-only merging keeps
  // every hot/cold boundary where the samples put it.)
  size_t Out = 0;
  for (size_t I = 0; I != Regions.size(); ++I) {
    if (Out != 0 && Regions[Out - 1].End == Regions[I].Start &&
        Regions[Out - 1].Count <= Config.MergeMaxCount &&
        Regions[I].Count <= Config.MergeMaxCount) {
      Regions[Out - 1].End = Regions[I].End;
      Regions[Out - 1].Count =
          std::max(Regions[Out - 1].Count, Regions[I].Count);
      ++Stats.Merges;
      continue;
    }
    Regions[Out++] = Regions[I];
  }
  Regions.resize(Out);

  // Split regions that collected enough samples to justify refining the
  // boundary, largest-count first implicitly by the in-order pass (every
  // qualifying region splits once per epoch while the table has room).
  std::vector<HotRegion> Next;
  Next.reserve(Regions.size() + 8);
  size_t Budget = Config.MaxRegions > Regions.size()
                      ? Config.MaxRegions - Regions.size()
                      : 0;
  for (const HotRegion &R : Regions) {
    if (Budget != 0 && R.Count >= Config.SplitMinCount &&
        R.bytes() >= 2 * Config.MinRegionBytes) {
      constexpr uint64_t P = AddressMap::PageBytes;
      uint64_t Mid = R.Start + (R.bytes() / 2 / P) * P;
      Next.push_back({R.Start, Mid, R.Count / 2});
      Next.push_back({Mid, R.End, R.Count - R.Count / 2});
      --Budget;
      ++Stats.Splits;
      continue;
    }
    Next.push_back(R);
  }
  Regions.swap(Next);

  // Exponential decay: old heat fades so the tracker follows working-set
  // shifts instead of averaging over the whole run.
  for (HotRegion &R : Regions)
    R.Count >>= Config.DecayShift;
}

void HotnessTracker::resetCounters() {
  for (HotRegion &R : Regions)
    R.Count = 0;
  EpochFill = 0;
}
