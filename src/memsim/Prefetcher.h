//===- memsim/Prefetcher.h - Sequential-stream prefetch table ---*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant-time bookkeeping for the hardware stream prefetcher modeled by
/// HybridMemory. The reference semantics are a linear table of N streams,
/// each holding the next line it expects:
///
///   - a missed line matching the lowest-indexed stream's expectation is a
///     prefetch hit; that stream advances to the successor line and becomes
///     most recently used;
///   - otherwise the least-recently-used stream (ties broken toward the
///     lowest index, which also makes never-used streams fill in index
///     order) is retrained to expect the successor.
///
/// The linear scan is O(N) per miss and sat directly on the simulator's
/// hottest path. For N <= 64 streams this table keeps the same decisions
/// with O(1) amortized work: an open-addressing hash table (fixed 256
/// slots, linear probing, backward-shift deletion -- no allocation on the
/// access path) from expected line to a bitmask of the streams expecting
/// it (lowest set bit == lowest index, matching the scan order), plus an
/// intrusive recency list whose head is the LRU victim (initialized
/// 0..N-1 so initial ties also pop in index order). For N > 64 it falls
/// back to the reference scan, so behavior is identical at any
/// configuration.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MEMSIM_PREFETCHER_H
#define PANTHERA_MEMSIM_PREFETCHER_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace panthera {
namespace memsim {

/// Stream-prefetcher state machine; access() per missed line address.
class PrefetchStreamTable {
public:
  /// Bitmask width; stream counts above this use the linear fallback.
  static constexpr uint32_t MaxFastStreams = 64;

  explicit PrefetchStreamTable(uint32_t NumStreams) : N(NumStreams) {
    if (N == 0)
      return;
    if (N > MaxFastStreams) {
      Linear.assign(N, Stream());
      return;
    }
    NextLine.assign(N, NoLine);
    Table.assign(TableSlots, Slot());
    Prev.resize(N);
    Next.resize(N);
    for (uint32_t I = 0; I != N; ++I) {
      Prev[I] = I == 0 ? NoIndex : I - 1;
      Next[I] = I + 1 == N ? NoIndex : I + 1;
    }
    Head = 0;
    Tail = N - 1;
  }

  /// True when \p LineAddr continues a tracked sequential stream; updates
  /// the table either way (hit streams advance, misses retrain the LRU
  /// stream). Decision-identical to the reference linear scan.
  bool access(uint64_t LineAddr) {
    if (N == 0)
      return false;
    if (!Linear.empty())
      return linearAccess(LineAddr);

    size_t S = findSlot(LineAddr);
    if (Table[S].Mask != 0) {
      // Lowest set bit == the stream the reference scan would find first.
      uint32_t I = static_cast<uint32_t>(std::countr_zero(Table[S].Mask));
      Table[S].Mask &= Table[S].Mask - 1;
      if (Table[S].Mask == 0)
        eraseAt(S);
      retarget(I, LineAddr + 1);
      return true;
    }
    // New stream candidate: retrain the LRU victim (list head) to predict
    // the sequential successor.
    uint32_t I = Head;
    if (NextLine[I] != NoLine) {
      size_t Old = findSlot(NextLine[I]);
      Table[Old].Mask &= ~(uint64_t(1) << I);
      if (Table[Old].Mask == 0)
        eraseAt(Old);
    }
    retarget(I, LineAddr + 1);
    return false;
  }

private:
  struct Stream {
    uint64_t NextLine = ~0ull;
    uint64_t LastUse = 0;
  };

  static constexpr uint64_t NoLine = ~0ull;
  static constexpr uint32_t NoIndex = ~0u;

  /// Slot for \p Key: the matching live slot, or the first empty slot of
  /// its probe chain. At most N (<= 64) of the 256 slots are ever live,
  /// so probe chains stay short.
  size_t findSlot(uint64_t Key) const {
    size_t S = slotOf(Key);
    while (Table[S].Mask != 0 && Table[S].Key != Key)
      S = (S + 1) & (TableSlots - 1);
    return S;
  }

  /// Deletes the entry at slot \p I by backward-shifting the rest of its
  /// probe cluster (no tombstones, so findSlot stays a two-test loop).
  void eraseAt(size_t I) {
    size_t J = I;
    while (true) {
      Table[I].Mask = 0;
      while (true) {
        J = (J + 1) & (TableSlots - 1);
        if (Table[J].Mask == 0)
          return;
        size_t Home = slotOf(Table[J].Key);
        // An entry whose home lies cyclically in (I, J] is still
        // reachable with the hole at I; keep scanning past it.
        bool Reachable = I <= J ? (Home > I && Home <= J)
                                : (Home > I || Home <= J);
        if (!Reachable)
          break;
      }
      Table[I] = Table[J];
      I = J;
    }
  }

  /// Points stream \p I at \p Line and makes it most recently used.
  void retarget(uint32_t I, uint64_t Line) {
    NextLine[I] = Line;
    size_t S = findSlot(Line);
    if (Table[S].Mask == 0)
      Table[S].Key = Line;
    Table[S].Mask |= uint64_t(1) << I;
    if (I == Tail)
      return;
    // Unlink, then append at the tail.
    if (Prev[I] != NoIndex)
      Next[Prev[I]] = Next[I];
    else
      Head = Next[I];
    Prev[Next[I]] = Prev[I];
    Prev[I] = Tail;
    Next[I] = NoIndex;
    Next[Tail] = I;
    Tail = I;
  }

  /// Reference algorithm, kept for stream counts wider than the bitmask.
  bool linearAccess(uint64_t LineAddr) {
    ++StreamClock;
    size_t Lru = 0;
    for (size_t I = 0; I != Linear.size(); ++I) {
      if (Linear[I].NextLine == LineAddr) {
        Linear[I].NextLine = LineAddr + 1;
        Linear[I].LastUse = StreamClock;
        return true;
      }
      if (Linear[I].LastUse < Linear[Lru].LastUse)
        Lru = I;
    }
    Linear[Lru].NextLine = LineAddr + 1;
    Linear[Lru].LastUse = StreamClock;
    return false;
  }

  /// Open-addressing table entry; Mask == 0 marks an empty slot (a live
  /// expectation always has at least one stream bit set).
  struct Slot {
    uint64_t Key = 0;
    uint64_t Mask = 0;
  };

  static constexpr size_t TableSlots = 256; // power of two, >= 4x streams

  /// Fibonacci-hash home slot of \p Key.
  static size_t slotOf(uint64_t Key) {
    return static_cast<size_t>((Key * 0x9E3779B97F4A7C15ull) >> 56);
  }

  uint32_t N;
  /// Fast path (N <= 64): expected line -> bitmask of streams expecting it.
  std::vector<Slot> Table;
  std::vector<uint64_t> NextLine;
  /// Intrusive recency list over stream indices; Head is the LRU victim.
  std::vector<uint32_t> Prev;
  std::vector<uint32_t> Next;
  uint32_t Head = NoIndex;
  uint32_t Tail = NoIndex;
  /// Fallback path (N > 64): the original linear table.
  std::vector<Stream> Linear;
  uint64_t StreamClock = 0;
};

} // namespace memsim
} // namespace panthera

#endif // PANTHERA_MEMSIM_PREFETCHER_H
