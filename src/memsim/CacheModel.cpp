//===- memsim/CacheModel.cpp - Set-associative LLC model -----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "memsim/CacheModel.h"

#include <cassert>
#include <cstddef>

using namespace panthera::memsim;

static uint32_t roundUpToPowerOfTwo(uint32_t V) {
  uint32_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

CacheModel::CacheModel(const CacheConfig &Config)
    : LineBytes(Config.LineBytes), Associativity(Config.Associativity) {
  assert(Config.CapacityBytes >= Config.LineBytes * Config.Associativity &&
         "cache must hold at least one set");
  uint32_t RawSets = static_cast<uint32_t>(
      Config.CapacityBytes / (Config.LineBytes * Config.Associativity));
  // Power-of-two set count keeps indexing a mask operation.
  NumSets = roundUpToPowerOfTwo(RawSets == 0 ? 1 : RawSets);
  Lines.assign(static_cast<size_t>(NumSets) * Associativity, Line());
  // Way-predictor table: big enough that every resident line can keep a
  // live hint (next power of two above the line count).
  uint32_t HintSlots = roundUpToPowerOfTwo(NumSets * Associativity);
  Hints.assign(HintSlots, Hint());
  HintMask = HintSlots - 1;
}

CacheResult CacheModel::access(uint64_t Addr, bool IsWrite, uint32_t Repeat) {
  return accessLine(Addr / LineBytes, IsWrite, Repeat);
}

CacheResult CacheModel::accessLine(uint64_t LineAddr, bool IsWrite,
                                   uint32_t Repeat) {
  uint32_t Set = static_cast<uint32_t>(LineAddr & (NumSets - 1));
  Line *Ways = &Lines[static_cast<size_t>(Set) * Associativity];
  ++UseClock;

  CacheResult Result;
  // Hit path: bump recency and possibly mark dirty.
  for (uint32_t W = 0; W != Associativity; ++W) {
    if (Ways[W].Tag == LineAddr) {
      Ways[W].LastUse = UseClock;
      Ways[W].Dirty |= IsWrite;
      ++Hits;
      Hints[LineAddr & HintMask] = {LineAddr, W};
      Result.Hit = true;
      // Coalesced back-to-back re-touches: each would be a guaranteed hit
      // (the line is MRU and nothing intervenes), so the only state it
      // changes is the clocks and the hit counter.
      if (Repeat != 0) {
        UseClock += Repeat;
        Ways[W].LastUse = UseClock;
        Hits += Repeat;
      }
      return Result;
    }
  }

  // Miss: fill the least-recently-used way (empty ways have LastUse 0 and
  // thus lose ties to any used way, so they fill first).
  ++Misses;
  uint32_t VictimWay = 0;
  for (uint32_t W = 1; W != Associativity; ++W)
    if (Ways[W].LastUse < Ways[VictimWay].LastUse)
      VictimWay = W;

  Line &Victim = Ways[VictimWay];
  if (Victim.Tag != ~0ull && Victim.Dirty) {
    Result.Writeback = true;
    Result.VictimLineAddr = Victim.Tag * LineBytes;
  }
  Victim.Tag = LineAddr;
  Victim.LastUse = UseClock;
  Victim.Dirty = IsWrite;
  Hints[LineAddr & HintMask] = {LineAddr, VictimWay};
  if (Repeat != 0) {
    UseClock += Repeat;
    Victim.LastUse = UseClock;
    Hits += Repeat;
  }
  return Result;
}

CacheResult CacheModel::accessHinted(uint64_t Addr, bool IsWrite,
                                     uint32_t Repeat) {
  return accessLineHinted(Addr / LineBytes, IsWrite, Repeat);
}

void CacheModel::reset() {
  for (Line &L : Lines)
    L = Line();
  for (Hint &H : Hints)
    H = Hint();
  UseClock = 0;
  Hits = 0;
  Misses = 0;
}
