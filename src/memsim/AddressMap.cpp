//===- memsim/AddressMap.cpp - Address-to-device mapping -----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "memsim/AddressMap.h"

#include "support/Random.h"

using namespace panthera;
using namespace panthera::memsim;

AddressMap::AddressMap(uint64_t TotalBytes) {
  assert(TotalBytes % PageBytes == 0 && "memory size must be page-aligned");
  PageDevice.assign(TotalBytes / PageBytes,
                    static_cast<uint8_t>(Device::DRAM));
}

void AddressMap::setRange(uint64_t Start, uint64_t End, Device D) {
  assert(Start % PageBytes == 0 && End % PageBytes == 0 &&
         "range must be page-aligned");
  assert(Start <= End && End <= totalBytes() && "range out of bounds");
  ++Generation;
  for (uint64_t Page = Start / PageBytes, E = End / PageBytes; Page != E;
       ++Page)
    PageDevice[Page] = static_cast<uint8_t>(D);
}

void AddressMap::interleaveRange(uint64_t Start, uint64_t End,
                                 uint64_t ChunkBytes, double DramProbability,
                                 uint64_t Seed) {
  assert(ChunkBytes % PageBytes == 0 && "chunk must be page-aligned");
  SplitMix64 Rng(Seed);
  for (uint64_t ChunkStart = Start; ChunkStart < End;
       ChunkStart += ChunkBytes) {
    uint64_t ChunkEnd = ChunkStart + ChunkBytes;
    if (ChunkEnd > End)
      ChunkEnd = End;
    Device D =
        Rng.nextDouble() < DramProbability ? Device::DRAM : Device::NVM;
    setRange(ChunkStart, ChunkEnd, D);
  }
}

uint64_t AddressMap::bytesBackedBy(uint64_t Start, uint64_t End,
                                   Device D) const {
  uint64_t Bytes = 0;
  for (uint64_t Page = Start / PageBytes, E = (End + PageBytes - 1) / PageBytes;
       Page != E; ++Page)
    if (PageDevice[Page] == static_cast<uint8_t>(D))
      Bytes += PageBytes;
  return Bytes;
}
