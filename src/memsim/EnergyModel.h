//===- memsim/EnergyModel.h - §5.1 energy estimation ------------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory energy estimation following the paper's §5.1 methodology:
///
///  * DRAM is modeled from Micron's DDR4 specification (TN-40-07): a static
///    (background + refresh) component proportional to provisioned capacity
///    and elapsed time, plus per-cache-line dynamic read/write energy.
///  * NVM follows Lee et al. [30]: static power is negligible compared to
///    DRAM; reads are cheaper than DRAM reads (non-destructive, no restore);
///    writes are expensive -- the paper computes 31200 pJ per cache-line
///    write from the row-buffer model (miss ratio 0.5, 1.02 pJ/bit buffer
///    write, 16.8 pJ/bit x 7.6% partial array write-back, 2.47 pJ/bit array
///    read), and that exact figure is used here.
///
/// Traffic counts are the simulator's per-device line reads/writes -- the
/// stand-in for the paper's VTune UNC_M_CAS_COUNT.{RD,WR} uncore events.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MEMSIM_ENERGYMODEL_H
#define PANTHERA_MEMSIM_ENERGYMODEL_H

#include <cstdint>

namespace panthera {
namespace memsim {

/// Per-device traffic totals (cache-line granularity).
struct TrafficCounters {
  uint64_t LineReads = 0;
  uint64_t LineWrites = 0;
};

/// Energy model parameters. Capacities are expressed in *paper* gigabytes
/// (the scale factor cancels in every normalized result the benches print).
struct EnergyParams {
  /// DDR4 background + refresh power per provisioned gigabyte. A 8 GB DDR4
  /// DIMM idles around 3 W in TN-40-07's worked examples.
  double DramStaticWattsPerGB = 0.375;
  /// NVM static power per gigabyte; "negligible compared to DRAM" [30].
  double NvmStaticWattsPerGB = 0.0375;
  /// DDR4 activate+read energy per 64 B line (~20 pJ/bit incl. I/O).
  double DramReadNanojoulesPerLine = 10.0;
  /// DDR4 activate+write energy per 64 B line.
  double DramWriteNanojoulesPerLine = 10.0;
  /// PCM array read: 2.47 pJ/bit x 512 bits, plus row-buffer overheads.
  double NvmReadNanojoulesPerLine = 2.0;
  /// The paper's computed figure: 31200 pJ per cache-line NVM write.
  double NvmWriteNanojoulesPerLine = 31.2;
};

/// A complete energy accounting for one run.
struct EnergyBreakdown {
  double DramStaticJoules = 0.0;
  double NvmStaticJoules = 0.0;
  double DramDynamicJoules = 0.0;
  double NvmDynamicJoules = 0.0;

  double totalJoules() const {
    return DramStaticJoules + NvmStaticJoules + DramDynamicJoules +
           NvmDynamicJoules;
  }
};

/// Computes the energy of a run that lasted \p ElapsedNs simulated
/// nanoseconds on a system provisioned with \p DramGB + \p NvmGB of memory,
/// generating \p Dram / \p Nvm line traffic.
inline EnergyBreakdown computeEnergy(const EnergyParams &P, double ElapsedNs,
                                     double DramGB, double NvmGB,
                                     const TrafficCounters &Dram,
                                     const TrafficCounters &Nvm) {
  EnergyBreakdown E;
  double Seconds = ElapsedNs * 1e-9;
  E.DramStaticJoules = P.DramStaticWattsPerGB * DramGB * Seconds;
  E.NvmStaticJoules = P.NvmStaticWattsPerGB * NvmGB * Seconds;
  E.DramDynamicJoules =
      (static_cast<double>(Dram.LineReads) * P.DramReadNanojoulesPerLine +
       static_cast<double>(Dram.LineWrites) * P.DramWriteNanojoulesPerLine) *
      1e-9;
  E.NvmDynamicJoules =
      (static_cast<double>(Nvm.LineReads) * P.NvmReadNanojoulesPerLine +
       static_cast<double>(Nvm.LineWrites) * P.NvmWriteNanojoulesPerLine) *
      1e-9;
  return E;
}

} // namespace memsim
} // namespace panthera

#endif // PANTHERA_MEMSIM_ENERGYMODEL_H
