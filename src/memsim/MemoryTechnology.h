//===- memsim/MemoryTechnology.h - Device parameters (Table 2) --*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Device-level timing parameters for the hybrid DRAM/NVM memory model.
///
/// The defaults reproduce Table 2 of the paper: DRAM read latency 120 ns and
/// 30 GB/s bandwidth; NVM read latency 300 ns (2.5x DRAM, the paper's
/// one-hop NUMA emulation) and 10 GB/s bandwidth (thermally throttled in the
/// paper's emulator). Like the paper's emulator we do not distinguish read
/// and write bandwidth.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MEMSIM_MEMORYTECHNOLOGY_H
#define PANTHERA_MEMSIM_MEMORYTECHNOLOGY_H

#include <cstdint>

namespace panthera {
namespace memsim {

/// Physical memory technology an address range is backed by.
enum class Device : uint8_t { DRAM = 0, NVM = 1 };

constexpr unsigned NumDevices = 2;

/// Who is issuing a memory access. The simulator charges time to separate
/// mutator/GC clocks (Fig 5's computation-vs-GC breakdown) and applies a
/// different memory-level-parallelism factor to each.
enum class Actor : uint8_t { Mutator = 0, Gc = 1 };

constexpr unsigned NumActors = 2;

/// A cache line, the granularity of all device traffic accounting (the
/// VTune UNC_M_CAS_COUNT events the paper measures count 64 B CAS commands).
constexpr uint32_t CacheLineBytes = 64;

/// How memory time is modeled. CacheAware is the calibrated default; §5.1
/// describes the alternative the paper rejects -- instrumenting every
/// load/store with an injected delay -- precisely because it ignores
/// caching effects and memory-level parallelism. NaiveInjection implements
/// that rejected model so the difference can be measured
/// (bench/emulator_validation).
enum class EmulationMode : uint8_t {
  CacheAware,     ///< LLC + prefetcher + MLP-aware miss costs.
  NaiveInjection, ///< Full device latency charged on every access.
};

/// Timing parameters of the simulated devices and the access-cost model.
///
/// Cost per missing cache line: max(latency / MLP, bytes / bandwidth).
/// The mutator's modest MLP leaves it latency-bound on both devices (NVM
/// costs ~2.5x DRAM per miss). GC tracing models the Parallel Scavenge
/// collector's 16 threads: aggregate parallelism is high enough that the GC
/// is *bandwidth*-bound, so tracing NVM costs 3x DRAM -- this is exactly the
/// effect §5.3 describes ("NVM's limited bandwidth has a large negative
/// impact on the performance of Parallel Scavenge").
struct MemoryTechnology {
  EmulationMode Mode = EmulationMode::CacheAware;
  double DramReadLatencyNs = 120.0;
  double NvmReadLatencyNs = 300.0;
  double DramWriteLatencyNs = 120.0;
  double NvmWriteLatencyNs = 300.0;
  double DramBandwidthGBs = 30.0;
  double NvmBandwidthGBs = 10.0;

  /// Outstanding misses an out-of-order core overlaps for application code.
  double MutatorMlp = 4.0;
  /// Effective parallelism of the 16 GC threads (16 threads x ~4
  /// outstanding misses each); large enough to hit the bandwidth roof.
  double GcMlp = 64.0;

  /// Cost of a last-level-cache hit.
  double CacheHitNs = 10.0;

  /// Hardware-prefetcher model: a miss that continues a detected
  /// sequential stream is served at bandwidth cost (the latency is hidden
  /// by the prefetcher), which is how streaming scans behave on both DRAM
  /// and NVM-class memory. Pointer-chasing misses still pay full latency.
  bool StreamPrefetcher = true;
  /// Concurrently tracked sequential streams.
  unsigned PrefetchStreams = 8;

  /// Out-of-order overlap: prefetched misses and writebacks proceed in
  /// parallel with already-charged CPU work, so their cost is first taken
  /// out of accumulated CPU slack (a roofline-style max(compute, stream)
  /// model). Dependent (non-prefetched) misses stall the pipeline and are
  /// never hidden. 0 disables the overlap (the calibrated default: the
  /// prefetcher's bandwidth-only cost already captures most of the hiding,
  /// and full overlap mutes the policy differentiation the paper reports).
  double CpuOverlapWindowNs = 0.0;

  double readLatencyNs(Device D) const {
    return D == Device::DRAM ? DramReadLatencyNs : NvmReadLatencyNs;
  }
  double writeLatencyNs(Device D) const {
    return D == Device::DRAM ? DramWriteLatencyNs : NvmWriteLatencyNs;
  }
  double bandwidthGBs(Device D) const {
    return D == Device::DRAM ? DramBandwidthGBs : NvmBandwidthGBs;
  }
  double mlp(Actor A) const {
    return A == Actor::Mutator ? MutatorMlp : GcMlp;
  }

  /// Simulated nanoseconds to service one cache-line miss. A \p Prefetched
  /// miss (sequential-stream continuation) pays only the bandwidth term.
  double missCostNs(Device D, Actor A, bool IsWrite,
                    bool Prefetched = false) const {
    double BandwidthTerm = static_cast<double>(CacheLineBytes) /
                           bandwidthGBs(D); // GB/s == bytes/ns
    if (Prefetched)
      return BandwidthTerm;
    double Latency = IsWrite ? writeLatencyNs(D) : readLatencyNs(D);
    double LatencyTerm = Latency / mlp(A);
    return LatencyTerm > BandwidthTerm ? LatencyTerm : BandwidthTerm;
  }
};

} // namespace memsim
} // namespace panthera

#endif // PANTHERA_MEMSIM_MEMORYTECHNOLOGY_H
