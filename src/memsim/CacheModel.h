//===- memsim/CacheModel.h - Set-associative LLC model ----------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, write-back, write-allocate last-level-cache model with
/// LRU replacement. Accesses that hit cost only the cache-hit latency;
/// misses generate device traffic. Modeling the cache matters for shape
/// fidelity: streaming transformation pipelines have high locality while GC
/// tracing and shuffled access patterns do not, and the paper's penalties
/// come precisely from the latter class of accesses reaching NVM.
///
/// The paper's testbed has a 20 MB 20-way L3 (Table 3); the model defaults
/// to a 20 KB 20-way cache, following the repository-wide 1 GB -> 1 MB scale
/// so that the cache:heap ratio matches the paper's.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MEMSIM_CACHEMODEL_H
#define PANTHERA_MEMSIM_CACHEMODEL_H

#include "memsim/MemoryTechnology.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace panthera {
namespace memsim {

/// Configuration of the modeled last-level cache.
struct CacheConfig {
  uint64_t CapacityBytes = 20 * 1024; // 20 MB / 1024 (Table 3, scaled)
  uint32_t Associativity = 20;
  uint32_t LineBytes = CacheLineBytes;
};

/// Outcome of a cache access, with any writeback the access displaced.
struct CacheResult {
  bool Hit = false;
  /// True when a dirty victim line was evicted; VictimLineAddr names it.
  bool Writeback = false;
  uint64_t VictimLineAddr = 0;
};

/// Set-associative LRU cache over line addresses.
class CacheModel {
public:
  explicit CacheModel(const CacheConfig &Config);

  /// Accesses the line containing \p Addr; \p IsWrite marks the line dirty.
  /// \p Repeat coalesces that many additional back-to-back accesses to the
  /// same line into the bookkeeping of this call. Because the line is MRU
  /// in its set after the first touch and nothing intervenes, each repeat
  /// is a guaranteed hit; the coalesced update (UseClock += Repeat,
  /// LastUse = final clock, Hits += Repeat, Dirty |= IsWrite) is
  /// bit-identical to issuing the accesses one at a time. The batched
  /// range path in HybridMemory uses this for element runs that share a
  /// cache line; repeats never generate traffic, so the caller still
  /// charges Repeat hit costs.
  CacheResult access(uint64_t Addr, bool IsWrite, uint32_t Repeat = 0);

  /// access() accelerated by a way-predictor hint: a direct-mapped
  /// LineAddr -> way table remembers where a line was last found, and a
  /// verified prediction (the way still holds the tag) takes the hit path
  /// without scanning the set. The hint is consulted before use and never
  /// trusted blind, so hit/miss outcomes, LRU state, counters, and
  /// writeback victims are exactly access()'s; a stale or colliding hint
  /// just falls back to the scan. Used by HybridMemory's batched range
  /// path; the per-line reference path keeps the plain scan.
  CacheResult accessHinted(uint64_t Addr, bool IsWrite, uint32_t Repeat = 0);

  /// accessHinted() addressed by line number (Addr / LineBytes) for
  /// callers that already walk lines -- skips re-deriving the line from
  /// the byte address (a hardware divide: LineBytes is a runtime knob).
  /// Defined inline: this is the innermost probe of the batched range
  /// path and the verified-prediction case must not pay a call.
  CacheResult accessLineHinted(uint64_t LineAddr, bool IsWrite,
                               uint32_t Repeat = 0) {
    const Hint &H = Hints[LineAddr & HintMask];
    if (H.Tag == LineAddr) {
      uint32_t Set = static_cast<uint32_t>(LineAddr & (NumSets - 1));
      Line &L = Lines[static_cast<size_t>(Set) * Associativity + H.Way];
      if (L.Tag == LineAddr) {
        // Verified prediction: perform exactly the scan's hit bookkeeping.
        ++UseClock;
        L.LastUse = UseClock;
        L.Dirty |= IsWrite;
        ++Hits;
        CacheResult Result;
        Result.Hit = true;
        if (Repeat != 0) {
          UseClock += Repeat;
          L.LastUse = UseClock;
          Hits += Repeat;
        }
        return Result;
      }
    }
    return accessLine(LineAddr, IsWrite, Repeat);
  }

  /// Drops every line (e.g. between independent experiment runs).
  void reset();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint32_t numSets() const { return NumSets; }

private:
  struct Line {
    uint64_t Tag = ~0ull; // line address; ~0 marks an empty way
    uint32_t LastUse = 0;
    bool Dirty = false;
  };

  /// The scan implementation behind every public entry point, addressed
  /// by line number.
  CacheResult accessLine(uint64_t LineAddr, bool IsWrite, uint32_t Repeat);

  /// One way-predictor entry: the line last seen at Way in its set.
  struct Hint {
    uint64_t Tag = ~0ull;
    uint32_t Way = 0;
  };

  uint32_t LineBytes;
  uint32_t Associativity;
  uint32_t NumSets;
  uint32_t UseClock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  std::vector<Line> Lines; // NumSets x Associativity, row-major
  std::vector<Hint> Hints; // power-of-two, direct mapped by line address
  uint64_t HintMask = 0;
};

} // namespace memsim
} // namespace panthera

#endif // PANTHERA_MEMSIM_CACHEMODEL_H
