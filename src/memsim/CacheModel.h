//===- memsim/CacheModel.h - Set-associative LLC model ----------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, write-back, write-allocate last-level-cache model with
/// LRU replacement. Accesses that hit cost only the cache-hit latency;
/// misses generate device traffic. Modeling the cache matters for shape
/// fidelity: streaming transformation pipelines have high locality while GC
/// tracing and shuffled access patterns do not, and the paper's penalties
/// come precisely from the latter class of accesses reaching NVM.
///
/// The paper's testbed has a 20 MB 20-way L3 (Table 3); the model defaults
/// to a 20 KB 20-way cache, following the repository-wide 1 GB -> 1 MB scale
/// so that the cache:heap ratio matches the paper's.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MEMSIM_CACHEMODEL_H
#define PANTHERA_MEMSIM_CACHEMODEL_H

#include "memsim/MemoryTechnology.h"

#include <cstdint>
#include <vector>

namespace panthera {
namespace memsim {

/// Configuration of the modeled last-level cache.
struct CacheConfig {
  uint64_t CapacityBytes = 20 * 1024; // 20 MB / 1024 (Table 3, scaled)
  uint32_t Associativity = 20;
  uint32_t LineBytes = CacheLineBytes;
};

/// Outcome of a cache access, with any writeback the access displaced.
struct CacheResult {
  bool Hit = false;
  /// True when a dirty victim line was evicted; VictimLineAddr names it.
  bool Writeback = false;
  uint64_t VictimLineAddr = 0;
};

/// Set-associative LRU cache over line addresses.
class CacheModel {
public:
  explicit CacheModel(const CacheConfig &Config);

  /// Accesses the line containing \p Addr; \p IsWrite marks the line dirty.
  CacheResult access(uint64_t Addr, bool IsWrite);

  /// Drops every line (e.g. between independent experiment runs).
  void reset();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint32_t numSets() const { return NumSets; }

private:
  struct Line {
    uint64_t Tag = ~0ull; // line address; ~0 marks an empty way
    uint32_t LastUse = 0;
    bool Dirty = false;
  };

  uint32_t LineBytes;
  uint32_t Associativity;
  uint32_t NumSets;
  uint32_t UseClock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  std::vector<Line> Lines; // NumSets x Associativity, row-major
};

} // namespace memsim
} // namespace panthera

#endif // PANTHERA_MEMSIM_CACHEMODEL_H
