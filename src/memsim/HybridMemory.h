//===- memsim/HybridMemory.h - Hybrid DRAM/NVM cost model -------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hybrid-memory simulator every heap access is routed through. It
/// stands in for the paper's NUMA-based NVM emulator (§5.1): instead of
/// inserting delays on a real machine, it advances a simulated clock by a
/// latency/bandwidth cost per cache-line miss and keeps per-device traffic
/// counters equivalent to the VTune uncore events the paper collects.
///
/// Time is split between two clocks -- mutator and GC -- which is how the
/// paper produces Fig 5's computation/GC breakdown. An epoch-bucketed
/// bandwidth trace reproduces Fig 8's bandwidth-over-time plots.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MEMSIM_HYBRIDMEMORY_H
#define PANTHERA_MEMSIM_HYBRIDMEMORY_H

#include "memsim/AddressMap.h"
#include "memsim/CacheModel.h"
#include "memsim/EnergyModel.h"
#include "memsim/MemoryTechnology.h"
#include "support/Metrics.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace panthera {
namespace memsim {

/// Device bytes moved during one trace epoch, split by direction.
struct EpochSample {
  double DramReadBytes = 0.0;
  double DramWriteBytes = 0.0;
  double NvmReadBytes = 0.0;
  double NvmWriteBytes = 0.0;
};

/// Accounting core: owns the address map, the LLC model, the simulated
/// clocks, traffic counters, and the bandwidth trace. It does NOT own the
/// data bytes themselves; the managed heap holds those and reports every
/// load/store here.
class HybridMemory {
public:
  /// \p Registry receives the four epoch-bucketed bandwidth series
  /// (memsim.bandwidth.{dram,nvm}_{read,write}_bytes). When null (unit
  /// tests constructing the simulator standalone) a private registry is
  /// owned internally; bandwidthTrace() works either way.
  HybridMemory(uint64_t TotalBytes, const MemoryTechnology &Tech,
               const CacheConfig &Cache, double EpochNs = 1.0e6,
               support::MetricsRegistry *Registry = nullptr);

  AddressMap &map() { return Map; }
  const AddressMap &map() const { return Map; }
  const MemoryTechnology &technology() const { return Tech; }

  /// Records an access of \p Bytes at \p Addr. Split into cache lines;
  /// hits cost the hit latency, misses cost the device miss latency plus
  /// any dirty-victim writeback.
  void onAccess(uint64_t Addr, uint32_t Bytes, bool IsWrite);

  /// Charges \p Ns of pure CPU work (no memory traffic) to the current
  /// actor's clock. The Spark engine uses this for per-record compute.
  void addCpuWorkNs(double Ns);

  /// Bulk accounting used by the parallel collector: charges whole
  /// cache-line counts per device and direction at the current actor's
  /// miss cost, bumping the traffic counters and the bandwidth trace.
  /// The counts are integers merged across GC workers before the single
  /// cost multiplication, so the simulated time is bit-identical at every
  /// thread count (no cache-model state is involved: a scavenge streams
  /// far more data than the LLC holds, so it is modeled as all misses at
  /// the GC's bandwidth-bound MLP).
  void chargeBulkLines(uint64_t DramReads, uint64_t DramWrites,
                       uint64_t NvmReads, uint64_t NvmWrites);

  void setActor(Actor A) { Current = A; }
  Actor actor() const { return Current; }

  double mutatorTimeNs() const { return ActorNs[0]; }
  double gcTimeNs() const { return ActorNs[1]; }
  double totalTimeNs() const { return ActorNs[0] + ActorNs[1]; }

  const TrafficCounters &traffic(Device D) const {
    return Traffic[static_cast<unsigned>(D)];
  }
  uint64_t cacheHits() const { return Cache.hits(); }
  uint64_t cacheMisses() const { return Cache.misses(); }

  /// The Fig 8 bandwidth-over-time trace, rebuilt from the registry's
  /// four bandwidth series (one row per epoch, padded to the longest).
  std::vector<EpochSample> bandwidthTrace() const;
  double epochNs() const { return EpochNs; }

  /// The registry the bandwidth series live in (the Runtime's, or the
  /// internally owned fallback).
  support::MetricsRegistry &metricsRegistry() { return *Registry; }

  uint64_t prefetchedMisses() const { return PrefetchedMisses; }

private:
  void chargeNs(double Ns) { ActorNs[static_cast<unsigned>(Current)] += Ns; }
  /// Charges \p Ns but lets it overlap with accumulated CPU slack
  /// (prefetched streams and writebacks run concurrently with compute).
  void chargeOverlappableNs(double Ns) {
    double &Slack = CpuSlackNs[static_cast<unsigned>(Current)];
    double Hidden = Ns < Slack ? Ns : Slack;
    Slack -= Hidden;
    chargeNs(Ns - Hidden);
  }
  void recordTraffic(uint64_t LineAddr, bool IsWrite);
  /// True when \p LineAddr continues a tracked sequential stream; updates
  /// the stream table either way.
  bool checkPrefetch(uint64_t LineAddr);

  AddressMap Map;
  MemoryTechnology Tech;
  CacheModel Cache;
  Actor Current = Actor::Mutator;
  double ActorNs[NumActors] = {0.0, 0.0};
  TrafficCounters Traffic[NumDevices];
  double EpochNs;
  /// Registry holding the bandwidth series; OwnedRegistry backs it when
  /// the constructor was not handed one.
  std::unique_ptr<support::MetricsRegistry> OwnedRegistry;
  support::MetricsRegistry *Registry = nullptr;
  /// Cached series handles, indexed [device][direction] as
  /// [DRAM read, DRAM write, NVM read, NVM write]. Map nodes are stable,
  /// so the pointers stay valid for the registry's lifetime.
  support::TimeSeries *Bw[4] = {nullptr, nullptr, nullptr, nullptr};

  /// Prefetcher stream table: the next line address each stream expects.
  struct Stream {
    uint64_t NextLine = ~0ull;
    uint64_t LastUse = 0;
  };
  std::vector<Stream> Streams;
  uint64_t StreamClock = 0;
  uint64_t PrefetchedMisses = 0;
  /// Per-actor CPU slack available to hide overlappable memory time.
  double CpuSlackNs[NumActors] = {0.0, 0.0};
};

/// RAII switch of the issuing actor; the GC wraps its phases in one.
class ActorScope {
public:
  ActorScope(HybridMemory &Mem, Actor A) : Mem(Mem), Saved(Mem.actor()) {
    Mem.setActor(A);
  }
  ~ActorScope() { Mem.setActor(Saved); }

  ActorScope(const ActorScope &) = delete;
  ActorScope &operator=(const ActorScope &) = delete;

private:
  HybridMemory &Mem;
  Actor Saved;
};

} // namespace memsim
} // namespace panthera

#endif // PANTHERA_MEMSIM_HYBRIDMEMORY_H
