//===- memsim/HybridMemory.h - Hybrid DRAM/NVM cost model -------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hybrid-memory simulator every heap access is routed through. It
/// stands in for the paper's NUMA-based NVM emulator (§5.1): instead of
/// inserting delays on a real machine, it advances a simulated clock by a
/// latency/bandwidth cost per cache-line miss and keeps per-device traffic
/// counters equivalent to the VTune uncore events the paper collects.
///
/// Time is split between two clocks -- mutator and GC -- which is how the
/// paper produces Fig 5's computation/GC breakdown. An epoch-bucketed
/// bandwidth trace reproduces Fig 8's bandwidth-over-time plots.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MEMSIM_HYBRIDMEMORY_H
#define PANTHERA_MEMSIM_HYBRIDMEMORY_H

#include "memsim/AddressMap.h"
#include "memsim/CacheModel.h"
#include "memsim/EnergyModel.h"
#include "memsim/MemoryTechnology.h"
#include "memsim/Prefetcher.h"
#include "support/Metrics.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace panthera {
namespace memsim {

class HotnessTracker;

/// Device bytes moved during one trace epoch, split by direction.
struct EpochSample {
  double DramReadBytes = 0.0;
  double DramWriteBytes = 0.0;
  double NvmReadBytes = 0.0;
  double NvmWriteBytes = 0.0;
};

/// Which implementation services onAccess/onAccessRange. Both produce
/// bit-identical simulated time, energy, traffic, cache statistics, and
/// bandwidth trace; PerLine is the straight-line reference loop kept for
/// differential testing (--memsim-path=per-line, ci.sh equivalence diff).
enum class AccessPathMode {
  Batched, ///< Amortized device/prefetch/LLC bookkeeping per line run.
  PerLine, ///< Reference: one full pipeline evaluation per touched line.
};

/// Per-worker integer traffic counts accumulated off the shared simulator
/// and charged in one bulk flush at a safepoint, so simulated time stays
/// independent of worker scheduling (no floating-point accumulation-order
/// variance) and parallel phases stop serializing on the accounting.
/// This is the promoted form of the collector's per-worker GcTally.
struct TrafficShard {
  uint64_t DramReads = 0;
  uint64_t DramWrites = 0;
  uint64_t NvmReads = 0;
  uint64_t NvmWrites = 0;

  /// Counts the lines of [Addr, Addr+Bytes) against the backing device of
  /// each, resolving the device once per page run (bit-identical to the
  /// per-line lookup: the map is page-granular).
  void add(const AddressMap &Map, uint64_t Addr, uint64_t Bytes,
           bool IsWrite) {
    uint64_t FirstLine = Addr / CacheLineBytes;
    uint64_t LastLine = (Addr + Bytes - 1) / CacheLineBytes;
    constexpr uint64_t LinesPerPage = AddressMap::PageBytes / CacheLineBytes;
    for (uint64_t L = FirstLine; L <= LastLine;) {
      uint64_t PageLast = L | (LinesPerPage - 1);
      if (PageLast > LastLine)
        PageLast = LastLine;
      uint64_t Run = PageLast - L + 1;
      bool Dram = Map.deviceOf(L * CacheLineBytes) == Device::DRAM;
      if (IsWrite)
        (Dram ? DramWrites : NvmWrites) += Run;
      else
        (Dram ? DramReads : NvmReads) += Run;
      L = PageLast + 1;
    }
  }

  void merge(const TrafficShard &O) {
    DramReads += O.DramReads;
    DramWrites += O.DramWrites;
    NvmReads += O.NvmReads;
    NvmWrites += O.NvmWrites;
  }
};

/// Accounting core: owns the address map, the LLC model, the simulated
/// clocks, traffic counters, and the bandwidth trace. It does NOT own the
/// data bytes themselves; the managed heap holds those and reports every
/// load/store here.
class HybridMemory {
public:
  /// \p Registry receives the four epoch-bucketed bandwidth series
  /// (memsim.bandwidth.{dram,nvm}_{read,write}_bytes). When null (unit
  /// tests constructing the simulator standalone) a private registry is
  /// owned internally; bandwidthTrace() works either way.
  HybridMemory(uint64_t TotalBytes, const MemoryTechnology &Tech,
               const CacheConfig &Cache, double EpochNs = 1.0e6,
               support::MetricsRegistry *Registry = nullptr);

  AddressMap &map() { return Map; }
  const AddressMap &map() const { return Map; }
  const MemoryTechnology &technology() const { return Tech; }

  /// Records an access of \p Bytes at \p Addr. Split into cache lines;
  /// hits cost the hit latency, misses cost the device miss latency plus
  /// any dirty-victim writeback.
  void onAccess(uint64_t Addr, uint32_t Bytes, bool IsWrite) {
    onAccessRange(Addr, Bytes, IsWrite, 0);
  }

  /// Records a bulk traversal of [Addr, Addr+Bytes). With \p ElemBytes == 0
  /// the range is one access (exactly onAccess); with \p ElemBytes == E
  /// (Bytes must be a multiple) it models the element loop
  ///   for I in 0..Bytes/E: access(Addr + I*E, E, IsWrite)
  /// i.e. one access per element in address order — the shape every
  /// array-scan and record-copy caller has. Traffic, cache statistics, and
  /// miss costs are exactly the loop's; the one deliberate difference from
  /// issuing Bytes/E separate onAccess calls is that the T guaranteed
  /// repeat hits a line takes from sub-line elements are charged as a
  /// single fused double(T) * HitNs clock term rather than T dependent
  /// additions (a serial FP-add chain would cap the whole simulator's
  /// throughput; at T == 1 the two are the same bit pattern).
  ///
  /// Both implementations (Batched and PerLine) define this op by the
  /// identical FP operation sequence, so simulated time, energy, traffic,
  /// cache statistics, and bandwidth trace are bit-identical between them
  /// (asserted by test and by the ci.sh diff). Batched additionally
  /// resolves the device once per page run, coalesces the repeat cache
  /// probes, and precomputes the cost constants once per call.
  void onAccessRange(uint64_t Addr, uint64_t Bytes, bool IsWrite,
                     uint64_t ElemBytes = 0);

  /// Selects the access implementation (default Batched); PerLine is the
  /// reference loop used for differential verification.
  void setAccessPath(AccessPathMode M) { Path = M; }
  AccessPathMode accessPath() const { return Path; }

  /// Charges \p Ns of pure CPU work (no memory traffic) to the current
  /// actor's clock. The Spark engine uses this for per-record compute.
  void addCpuWorkNs(double Ns);

  /// Bulk accounting used by the parallel collector: charges whole
  /// cache-line counts per device and direction at the current actor's
  /// miss cost, bumping the traffic counters and the bandwidth trace.
  /// The counts are integers merged across GC workers before the single
  /// cost multiplication, so the simulated time is bit-identical at every
  /// thread count (no cache-model state is involved: a scavenge streams
  /// far more data than the LLC holds, so it is modeled as all misses at
  /// the GC's bandwidth-bound MLP).
  void chargeBulkLines(uint64_t DramReads, uint64_t DramWrites,
                       uint64_t NvmReads, uint64_t NvmWrites);

  /// Flushes a worker's TrafficShard through chargeBulkLines and returns
  /// the simulated ns the flush added to the current actor's clock.
  double flushShard(const TrafficShard &S) {
    double Before = ActorNs[static_cast<unsigned>(Current)];
    chargeBulkLines(S.DramReads, S.DramWrites, S.NvmReads, S.NvmWrites);
    return ActorNs[static_cast<unsigned>(Current)] - Before;
  }

  void setActor(Actor A) { Current = A; }
  Actor actor() const { return Current; }

  double mutatorTimeNs() const { return ActorNs[0]; }
  double gcTimeNs() const { return ActorNs[1]; }
  double totalTimeNs() const { return ActorNs[0] + ActorNs[1]; }

  const TrafficCounters &traffic(Device D) const {
    return Traffic[static_cast<unsigned>(D)];
  }
  uint64_t cacheHits() const { return Cache.hits(); }
  uint64_t cacheMisses() const { return Cache.misses(); }

  /// The Fig 8 bandwidth-over-time trace, rebuilt from the registry's
  /// four bandwidth series (one row per epoch, padded to the longest).
  std::vector<EpochSample> bandwidthTrace() const;
  double epochNs() const { return EpochNs; }

  /// The registry the bandwidth series live in (the Runtime's, or the
  /// internally owned fallback).
  support::MetricsRegistry &metricsRegistry() { return *Registry; }

  uint64_t prefetchedMisses() const { return PrefetchedMisses; }

  /// Installs the online hotness profiler (docs/memsim.md). When set,
  /// every mutator-actor onAccess/onAccessRange feeds it before cost
  /// accounting -- identically on the Batched and PerLine paths, and never
  /// for GC-actor traffic, so profiling observes application heat only.
  /// Null (the default) keeps every non-dynamic policy's accounting
  /// byte-identical to a build without the profiler.
  void setHotnessTracker(HotnessTracker *T) { Hot = T; }
  HotnessTracker *hotnessTracker() { return Hot; }

private:
  void chargeNs(double Ns) { ActorNs[static_cast<unsigned>(Current)] += Ns; }
  /// Charges \p Ns but lets it overlap with accumulated CPU slack
  /// (prefetched streams and writebacks run concurrently with compute).
  void chargeOverlappableNs(double Ns) {
    double &Slack = CpuSlackNs[static_cast<unsigned>(Current)];
    double Hidden = Ns < Slack ? Ns : Slack;
    Slack -= Hidden;
    chargeNs(Ns - Hidden);
  }
  void recordTraffic(uint64_t LineAddr, bool IsWrite);
  /// Batched implementation of onAccessRange (cache-aware mode only).
  void fastRange(uint64_t Addr, uint64_t Bytes, bool IsWrite,
                 uint64_t ElemBytes);
  /// Batched service of a range confined to one cache line (\p Touches
  /// element touches) -- the dominant call shape: every mutator field
  /// access is a single sub-line onAccess. Unlike fastRange it computes
  /// costs lazily (only the branch taken), so a hit pays one probe and
  /// one fused fold and none of the per-call constant setup.
  void fastOne(uint64_t Line, bool IsWrite, uint32_t Touches);
  /// Reference implementation: the per-element, per-line pipeline.
  void perLineRange(uint64_t Addr, uint64_t Bytes, bool IsWrite,
                    uint64_t ElemBytes);
  /// One access through the original full pipeline (reference path and
  /// NaiveInjection mode).
  void perLineAccess(uint64_t Addr, uint64_t Bytes, bool IsWrite);
  /// deviceOf for writeback victims (arbitrary addresses): a single-entry
  /// page cache invalidated by the map's remap generation.
  Device victimDeviceOf(uint64_t Addr) {
    uint64_t Page = Addr / AddressMap::PageBytes;
    uint64_t Gen = Map.generation();
    if (Page != VictimCachePage || Gen != VictimCacheGen) {
      VictimCachePage = Page;
      VictimCacheGen = Gen;
      VictimCacheDev = Map.deviceOf(Addr);
    }
    return VictimCacheDev;
  }

  AddressMap Map;
  MemoryTechnology Tech;
  CacheModel Cache;
  Actor Current = Actor::Mutator;
  double ActorNs[NumActors] = {0.0, 0.0};
  TrafficCounters Traffic[NumDevices];
  double EpochNs;
  /// Registry holding the bandwidth series; OwnedRegistry backs it when
  /// the constructor was not handed one.
  std::unique_ptr<support::MetricsRegistry> OwnedRegistry;
  support::MetricsRegistry *Registry = nullptr;
  /// Cached series handles, indexed [device][direction] as
  /// [DRAM read, DRAM write, NVM read, NVM write]. Map nodes are stable,
  /// so the pointers stay valid for the registry's lifetime.
  support::TimeSeries *Bw[4] = {nullptr, nullptr, nullptr, nullptr};

  /// Prefetcher stream table (constant-time; decision-identical to the
  /// original linear scan).
  PrefetchStreamTable Prefetch;
  uint64_t PrefetchedMisses = 0;
  AccessPathMode Path = AccessPathMode::Batched;
  /// Single-entry victim deviceOf cache (see victimDeviceOf).
  uint64_t VictimCachePage = ~0ull;
  uint64_t VictimCacheGen = ~0ull;
  Device VictimCacheDev = Device::DRAM;
  /// Per-actor CPU slack available to hide overlappable memory time.
  double CpuSlackNs[NumActors] = {0.0, 0.0};
  /// Optional hotness profiler fed from onAccessRange (mutator only).
  HotnessTracker *Hot = nullptr;
};

/// RAII switch of the issuing actor; the GC wraps its phases in one.
class ActorScope {
public:
  ActorScope(HybridMemory &Mem, Actor A) : Mem(Mem), Saved(Mem.actor()) {
    Mem.setActor(A);
  }
  ~ActorScope() { Mem.setActor(Saved); }

  ActorScope(const ActorScope &) = delete;
  ActorScope &operator=(const ActorScope &) = delete;

private:
  HybridMemory &Mem;
  Actor Saved;
};

} // namespace memsim
} // namespace panthera

#endif // PANTHERA_MEMSIM_HYBRIDMEMORY_H
