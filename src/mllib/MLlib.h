//===- mllib/MLlib.h - MLlib-like algorithms over the RDD API ---*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MLlib-style machine-learning algorithms implemented against the RDD
/// API, standing in for the Spark MLlib programs the paper evaluates
/// (K-Means, Logistic Regression, Naive Bayes Classifiers).
///
/// The engine's record model is (int64 key, double value), so the feature
/// spaces are one-dimensional: K-Means clusters scalar points, logistic
/// regression fits (w, b) on scalar features with the label in the key's
/// low bit, and Naive Bayes consumes (label * F + feature) occurrence
/// events. The *memory* behaviour the paper measures -- a large persisted
/// training RDD re-scanned every iteration against short-lived per-record
/// intermediates -- is identical to the multi-dimensional originals.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_MLLIB_MLLIB_H
#define PANTHERA_MLLIB_MLLIB_H

#include "rdd/Rdd.h"

#include <vector>

namespace panthera {
namespace mllib {

/// K-Means result.
struct KMeansModel {
  std::vector<double> Centers;
  double Cost = 0.0; ///< Sum of squared distances to assigned centers.
  uint32_t Iterations = 0;
};

/// Lloyd's algorithm on a persisted 1-D point RDD (records: (id, x)).
/// Centers start evenly spaced over [0, 100).
KMeansModel trainKMeans(const rdd::Rdd &Points, uint32_t K,
                        uint32_t Iterations);

/// Multi-dimensional K-Means result (centers flattened K x Dims).
struct KMeansNDModel {
  uint32_t Dims = 0;
  std::vector<double> Centers; ///< Center c's coordinate d: [c*Dims + d].
  double Cost = 0.0;
  uint32_t Iterations = 0;
};

/// Lloyd's algorithm over multi-dimensional points. \p Points must be a
/// grouped RDD whose tuples carry a CompactBuffer of exactly \p Dims
/// coordinates (e.g. genClusteredPointsND source -> groupByKey). Centers
/// are broadcast each iteration; assignment statistics flow through a
/// flatMap + reduceByKey like Spark MLlib's implementation.
KMeansNDModel trainKMeansND(const rdd::Rdd &Points, uint32_t K,
                            uint32_t Dims, uint32_t Iterations);

/// Logistic-regression result for the 1-D model p = sigmoid(w x + b).
struct LogisticModel {
  double W = 0.0;
  double B = 0.0;
  double Loss = 0.0; ///< Final mean log-loss.
  uint32_t Iterations = 0;
};

/// Batch gradient descent; records are ((id << 1) | label, x).
LogisticModel trainLogistic(const rdd::Rdd &Points, uint32_t Iterations,
                            double LearningRate);

/// Multinomial Naive Bayes over (label * NumFeatures + feature, count)
/// events.
struct NaiveBayesModel {
  uint32_t NumFeatures = 0;
  uint32_t NumLabels = 0;
  std::vector<double> LogPrior;      ///< Per label.
  std::vector<double> LogLikelihood; ///< label * NumFeatures + feature.
};

NaiveBayesModel trainNaiveBayes(const rdd::Rdd &Events, uint32_t NumFeatures,
                                uint32_t NumLabels);

/// Classifies each event's feature and returns the fraction whose
/// predicted label matches the label encoded in the event key.
double naiveBayesAccuracy(const rdd::Rdd &Events,
                          const NaiveBayesModel &Model);

} // namespace mllib
} // namespace panthera

#endif // PANTHERA_MLLIB_MLLIB_H
