//===- mllib/MLlib.cpp - MLlib-like algorithms over the RDD API ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "mllib/MLlib.h"

#include "rdd/Broadcast.h"

#include <cassert>
#include <cmath>
#include <map>

using namespace panthera;
using namespace panthera::mllib;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::SourceRecord;

/// Nearest center by scanning a broadcast block (accounted heap reads,
/// like a Spark task probing a broadcast array).
static uint32_t nearestCenter(const rdd::Broadcast &Centers, double X) {
  uint32_t Best = 0;
  double BestDist = std::abs(X - Centers.get(0));
  for (uint32_t I = 1; I != Centers.size(); ++I) {
    double Dist = std::abs(X - Centers.get(I));
    if (Dist < BestDist) {
      BestDist = Dist;
      Best = I;
    }
  }
  return Best;
}

KMeansModel panthera::mllib::trainKMeans(const Rdd &Points, uint32_t K,
                                         uint32_t Iterations) {
  KMeansModel Model;
  Model.Centers.resize(K);
  for (uint32_t I = 0; I != K; ++I)
    Model.Centers[I] = 100.0 * (I + 0.5) / K;

  heap::Heap &H = Points.context()->heapRef();
  for (uint32_t Iter = 0; Iter != Iterations; ++Iter) {
    rdd::Broadcast Centers(H, Model.Centers); // DRAM-tagged broadcast
    Rdd Assigned = Points.map([Centers](RddContext &C, ObjRef T) {
      double X = C.value(T);
      return C.makeTuple(nearestCenter(Centers, X), X);
    });
    std::vector<SourceRecord> Sums =
        Assigned.reduceByKey([](double A, double B) { return A + B; })
            .collect();
    std::vector<SourceRecord> Counts =
        Assigned.mapValues([](double) { return 1.0; })
            .reduceByKey([](double A, double B) { return A + B; })
            .collect();
    std::map<int64_t, double> CountByCenter;
    for (const SourceRecord &Rec : Counts)
      CountByCenter[Rec.Key] = Rec.Val;
    for (const SourceRecord &Rec : Sums) {
      double N = CountByCenter[Rec.Key];
      if (N > 0.0)
        Model.Centers[static_cast<size_t>(Rec.Key)] = Rec.Val / N;
    }
    Centers.destroy();
    ++Model.Iterations;
  }

  // Final cost pass.
  rdd::Broadcast Centers(H, Model.Centers);
  Model.Cost = Points
                   .map([Centers](RddContext &C, ObjRef T) {
                     double X = C.value(T);
                     double D = X - Centers.get(nearestCenter(Centers, X));
                     return C.makeTuple(0, D * D);
                   })
                   .reduce([](double A, double B) { return A + B; });
  Centers.destroy();
  return Model;
}

namespace {

/// Reads a point's coordinate buffer into \p Out (at most 32 dims) and
/// returns the nearest center index by scanning the broadcast block.
uint32_t assignND(RddContext &C, ObjRef T, const rdd::Broadcast &Centers,
                  uint32_t K, uint32_t Dims, double *Out) {
  heap::GcRoot Buf(C.heap(), C.payload(T));
  uint32_t N = Buf.get() ? C.heap().arrayLength(Buf.get()) : 0;
  for (uint32_t D = 0; D != Dims; ++D)
    Out[D] = D < N ? C.bufferValue(Buf.get(), D) : 0.0;
  uint32_t Best = 0;
  double BestDist = 1e300;
  for (uint32_t Center = 0; Center != K; ++Center) {
    double Dist = 0.0;
    for (uint32_t D = 0; D != Dims; ++D) {
      double Delta = Out[D] - Centers.get(Center * Dims + D);
      Dist += Delta * Delta;
    }
    if (Dist < BestDist) {
      BestDist = Dist;
      Best = Center;
    }
  }
  return Best;
}

} // namespace

KMeansNDModel panthera::mllib::trainKMeansND(const Rdd &Points, uint32_t K,
                                             uint32_t Dims,
                                             uint32_t Iterations) {
  assert(Dims >= 1 && Dims <= 32 && "dimension out of supported range");
  KMeansNDModel Model;
  Model.Dims = Dims;
  Model.Centers.assign(static_cast<size_t>(K) * Dims, 0.0);
  for (uint32_t C = 0; C != K; ++C)
    for (uint32_t D = 0; D != Dims; ++D)
      Model.Centers[C * Dims + D] = 100.0 * (C + 0.5) / K;

  heap::Heap &H = Points.context()->heapRef();
  for (uint32_t Iter = 0; Iter != Iterations; ++Iter) {
    rdd::Broadcast Centers(H, Model.Centers);
    // Per point: emit one record per dimension (center*(Dims+1)+d, x_d)
    // plus a count record (center*(Dims+1)+Dims, 1).
    Rdd Stats =
        Points
            .flatMap([Centers, K, Dims](RddContext &C, ObjRef T,
                                        const rdd::TupleSink &S) {
              double Coords[32];
              uint32_t Best = assignND(C, T, Centers, K, Dims, Coords);
              int64_t Base = static_cast<int64_t>(Best) * (Dims + 1);
              for (uint32_t D = 0; D != Dims; ++D)
                S(C.makeTuple(Base + D, Coords[D]));
              S(C.makeTuple(Base + Dims, 1.0));
            })
            .reduceByKey([](double A, double B) { return A + B; });
    std::vector<SourceRecord> Rows = Stats.collect();
    std::vector<double> Sums(static_cast<size_t>(K) * (Dims + 1), 0.0);
    for (const SourceRecord &Rec : Rows)
      Sums[static_cast<size_t>(Rec.Key)] = Rec.Val;
    for (uint32_t C = 0; C != K; ++C) {
      double N = Sums[static_cast<size_t>(C) * (Dims + 1) + Dims];
      if (N > 0.0)
        for (uint32_t D = 0; D != Dims; ++D)
          Model.Centers[C * Dims + D] =
              Sums[static_cast<size_t>(C) * (Dims + 1) + D] / N;
    }
    Centers.destroy();
    ++Model.Iterations;
  }

  rdd::Broadcast Centers(H, Model.Centers);
  Model.Cost =
      Points
          .map([Centers, K, Dims](RddContext &C, ObjRef T) {
            double Coords[32];
            uint32_t Best = assignND(C, T, Centers, K, Dims, Coords);
            double Dist = 0.0;
            for (uint32_t D = 0; D != Dims; ++D) {
              double Delta = Coords[D] - Centers.get(Best * Dims + D);
              Dist += Delta * Delta;
            }
            return C.makeTuple(0, Dist);
          })
          .reduce([](double A, double B) { return A + B; });
  Centers.destroy();
  return Model;
}

static double sigmoid(double Z) { return 1.0 / (1.0 + std::exp(-Z)); }

LogisticModel panthera::mllib::trainLogistic(const Rdd &Points,
                                             uint32_t Iterations,
                                             double LearningRate) {
  LogisticModel Model;
  int64_t N = Points.count();
  if (N == 0)
    return Model;
  for (uint32_t Iter = 0; Iter != Iterations; ++Iter) {
    double W = Model.W, B = Model.B;
    // One pass for dW, one for dB (Spark LR similarly re-scans the cached
    // point RDD per iteration).
    double GradW = Points
                       .map([W, B](RddContext &C, ObjRef T) {
                         double Y = static_cast<double>(C.key(T) & 1);
                         double X = C.value(T);
                         return C.makeTuple(0, (sigmoid(W * X + B) - Y) * X);
                       })
                       .reduce([](double A, double Bv) { return A + Bv; });
    double GradB = Points
                       .map([W, B](RddContext &C, ObjRef T) {
                         double Y = static_cast<double>(C.key(T) & 1);
                         double X = C.value(T);
                         return C.makeTuple(0, sigmoid(W * X + B) - Y);
                       })
                       .reduce([](double A, double Bv) { return A + Bv; });
    Model.W -= LearningRate * GradW / static_cast<double>(N);
    Model.B -= LearningRate * GradB / static_cast<double>(N);
    ++Model.Iterations;
  }
  double W = Model.W, B = Model.B;
  Model.Loss = Points
                   .map([W, B](RddContext &C, ObjRef T) {
                     double Y = static_cast<double>(C.key(T) & 1);
                     double P = sigmoid(W * C.value(T) + B);
                     double Eps = 1e-12;
                     return C.makeTuple(
                         0, -(Y * std::log(P + Eps) +
                              (1.0 - Y) * std::log(1.0 - P + Eps)));
                   })
                   .reduce([](double A, double Bv) { return A + Bv; }) /
               static_cast<double>(N);
  return Model;
}

NaiveBayesModel panthera::mllib::trainNaiveBayes(const Rdd &Events,
                                                 uint32_t NumFeatures,
                                                 uint32_t NumLabels) {
  NaiveBayesModel Model;
  Model.NumFeatures = NumFeatures;
  Model.NumLabels = NumLabels;
  Model.LogPrior.assign(NumLabels, 0.0);
  Model.LogLikelihood.assign(static_cast<size_t>(NumFeatures) * NumLabels,
                             0.0);

  std::vector<SourceRecord> FeatureCounts =
      Events.reduceByKey([](double A, double B) { return A + B; }).collect();
  std::vector<SourceRecord> LabelCounts =
      Events
          .map([NumFeatures](RddContext &C, ObjRef T) {
            return C.makeTuple(C.key(T) / NumFeatures, C.value(T));
          })
          .reduceByKey([](double A, double B) { return A + B; })
          .collect();

  double Total = 0.0;
  std::vector<double> PerLabel(NumLabels, 0.0);
  for (const SourceRecord &Rec : LabelCounts) {
    PerLabel[static_cast<size_t>(Rec.Key)] = Rec.Val;
    Total += Rec.Val;
  }
  for (uint32_t L = 0; L != NumLabels; ++L)
    Model.LogPrior[L] = std::log((PerLabel[L] + 1.0) / (Total + NumLabels));
  // Laplace-smoothed class-conditional likelihoods.
  for (uint32_t L = 0; L != NumLabels; ++L)
    for (uint32_t F = 0; F != NumFeatures; ++F)
      Model.LogLikelihood[static_cast<size_t>(L) * NumFeatures + F] =
          std::log(1.0 / (PerLabel[L] + NumFeatures));
  for (const SourceRecord &Rec : FeatureCounts) {
    size_t L = static_cast<size_t>(Rec.Key) / NumFeatures;
    size_t F = static_cast<size_t>(Rec.Key) % NumFeatures;
    Model.LogLikelihood[L * NumFeatures + F] = std::log(
        (Rec.Val + 1.0) / (PerLabel[L] + NumFeatures));
  }
  return Model;
}

double panthera::mllib::naiveBayesAccuracy(const Rdd &Events,
                                           const NaiveBayesModel &Model) {
  // Predict the label of each event's feature; compare to the true label
  // encoded in the key. Classification happens inside the pipeline so the
  // scoring pass streams like any other Spark job.
  NaiveBayesModel M = Model; // captured by value below
  int64_t Total = Events.count();
  if (Total == 0)
    return 0.0;
  int64_t Correct =
      Events
          .filter([M](RddContext &C, ObjRef T) {
            int64_t Key = C.key(T);
            uint32_t TrueLabel =
                static_cast<uint32_t>(Key / M.NumFeatures);
            uint32_t Feature = static_cast<uint32_t>(Key % M.NumFeatures);
            uint32_t Best = 0;
            double BestScore = -1e300;
            for (uint32_t L = 0; L != M.NumLabels; ++L) {
              double Score =
                  M.LogPrior[L] +
                  M.LogLikelihood[static_cast<size_t>(L) * M.NumFeatures +
                                  Feature];
              if (Score > BestScore) {
                BestScore = Score;
                Best = L;
              }
            }
            return Best == TrueLabel;
          })
          .count();
  return static_cast<double>(Correct) / static_cast<double>(Total);
}
