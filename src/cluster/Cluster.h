//===- cluster/Cluster.h - Multi-executor cluster simulation ----*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic multi-executor cluster simulation (docs/cluster.md).
///
/// Panthera's evaluation runs on Spark clusters: executors with independent
/// hybrid heaps exchange shuffle blocks over a network. This layer models
/// that on top of the single-driver engine:
///
///  - Executor: one simulated machine owning a private Heap + HybridMemory
///    whose DRAM/NVM budgets are carved from the cluster config, plus a
///    native-region arena holding its serialized shuffle blocks.
///  - NetworkFabric: charges serialization CPU plus bandwidth/latency on
///    the driver's simulated clock for every remote block transfer.
///  - MapOutputTracker (folded into Cluster): map outputs register
///    per-(executor, partition); reducers fetch local blocks free and
///    remote blocks through the fabric.
///  - ClusterScheduler (folded into Cluster): places tasks by
///    cached-partition / shuffle-output locality, PROCESS_LOCAL -> ANY
///    with a delay-scheduling slack knob, and survives executor loss.
///
/// Determinism contract: every Cluster call happens on the serial driver
/// scheduling path (the thread pool only runs capture and GC phases), so
/// placement decisions, fabric charges, and fault draws are bit-identical
/// at every --threads value. The shuffle *data plane* is untouched -- the
/// driver-side buckets carry the records exactly as in the single-heap
/// engine -- so record contents and order are identical at every executor
/// count; the cluster adds accounting (executor clocks, network time on
/// the driver clock) and the loss/recovery control flow. The Runtime only
/// constructs a Cluster when NumExecutors > 1, which keeps --executors=1
/// byte-identical to the pre-cluster engine.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_CLUSTER_CLUSTER_H
#define PANTHERA_CLUSTER_CLUSTER_H

#include "heap/Heap.h"
#include "heap/HeapConfig.h"
#include "memsim/HybridMemory.h"
#include "offheap/RegionAllocator.h"
#include "support/Metrics.h"
#include "support/TraceLog.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace panthera {
namespace cluster {

/// One scheduled elastic-cluster event (panthera_sim: --decommission=E@K,
/// --join-at=K). AtStage counts cluster stages 1-based: the event fires
/// when the driver opens that stage (beginStage), before any placement.
struct ElasticEvent {
  bool Join = false;    ///< true: add an executor; false: decommission.
  unsigned Exec = 0;    ///< Decommission target (ignored for joins).
  uint64_t AtStage = 0; ///< 1-based cluster stage index.
};

/// User-facing cluster knobs (panthera_sim: --executors, --net-bw,
/// --net-lat-us). NumExecutors == 1 means "no cluster": the Runtime skips
/// construction entirely and the engine runs its seed single-heap path.
struct ClusterOptions {
  unsigned NumExecutors = 1;
  /// Fabric bandwidth in GB/s (1 GB = 1e9 bytes, so 1 GB/s = 1 byte/ns).
  double NetBandwidthGBps = 10.0;
  /// One-way latency charged per remote block fetch.
  double NetLatencyUs = 200.0;
  /// Serialization + deserialization CPU per shuffle record crossing the
  /// fabric (matches the engine's ShuffleRecordCpuNs scale).
  double NetSerNsPerRecord = 15.0;
  /// Delay scheduling (Zaharia et al., EuroSys'10): accept a non-preferred
  /// executor only when the preferred one is more than this many tasks
  /// ahead of the least-loaded one in the current stage.
  uint32_t DelaySchedulingSlack = 1;
  /// Speculative execution (docs/cluster.md "degraded executors"): the
  /// driver compares each completed task's executor-scaled cost against
  /// the stage's running median of base task costs and launches a
  /// speculative copy past the multiplier. Off = stragglers run to
  /// completion (checksums are identical either way).
  bool SpeculationEnabled = true;
  /// A task is a straggler when its scaled cost exceeds this multiple of
  /// the stage's running median task cost (spark.speculation.multiplier).
  double SpeculationMultiplier = 1.5;
  /// Simulated cost multiplier applied to an executor degraded by the
  /// slow-executor fault site.
  double SlowExecutorFactor = 4.0;
  /// Transient-fetch attempts per block before the driver gives up and
  /// escalates to executor-loss recovery (lineage recompute).
  uint32_t FetchRetryLimit = 3;
  /// Physical hosts the executors are packed onto (host of executor E is
  /// E % NumHosts). 0 means one host per executor — no co-location, so
  /// the zero-copy path below never triggers and the fabric charging is
  /// byte-identical to the pre-hosts engine.
  unsigned NumHosts = 0;
  /// Sparkle-style zero-copy shared-memory shuffle (PAPERS.md): a fetch
  /// whose mapper and reducer executors share a host skips the fabric
  /// entirely — no serialization CPU, no latency, no bandwidth charge —
  /// because the reducer maps the mapper's block directly. Blocks that
  /// overflowed onto executor disk still pay their deserialization CPU.
  /// Only meaningful when NumHosts packs several executors per host.
  bool ZeroCopyShuffle = true;
  /// Scheduled mid-job decommission/join events, applied at stage opens.
  std::vector<ElasticEvent> Elastic;
};

/// Full construction-time configuration; the Runtime fills the per-executor
/// heap carve and copies the memory technology from its own config.
struct ClusterConfig {
  ClusterOptions Options;
  /// Per-executor heap layout (already divided by NumExecutors).
  heap::HeapConfig ExecutorHeap;
  memsim::MemoryTechnology Technology;
  memsim::CacheConfig Cache;
  /// Access implementation for the executors' simulated memories (the
  /// Runtime copies its own setting so --memsim-path covers every clock).
  memsim::AccessPathMode AccessPath = memsim::AccessPathMode::Batched;
  double EpochNs = 1.0e6;
  /// Deserialization CPU per record for blocks that overflowed an
  /// executor's native arena onto its local disk (EngineConfig's
  /// DiskRecordCpuNs).
  double DiskNsPerRecord = 60.0;
};

/// Counters mirrored into the metrics registry by publishMetrics. All are
/// driven from the serial driver path.
struct ClusterStats {
  uint64_t ProcessLocalTasks = 0; ///< Placed on the preferred executor.
  uint64_t AnyTasks = 0;          ///< No (live) preference; least-loaded.
  uint64_t DelayedFallbacks = 0;  ///< Preference alive but over slack.
  uint64_t BlocksStored = 0;      ///< Map-output blocks registered.
  uint64_t BytesStored = 0;
  uint64_t ExecutorDiskBlocks = 0; ///< Blocks spilled past the arena.
  uint64_t LocalBlocksFetched = 0;
  uint64_t LocalBytesFetched = 0;
  uint64_t RemoteBlocksFetched = 0;
  uint64_t RemoteBytesFetched = 0;
  /// Same-host cross-executor fetches served through shared memory
  /// (--zero-copy-shuffle with --hosts packing > 1 executor per host).
  uint64_t ZeroCopyBlocksFetched = 0;
  uint64_t ZeroCopyBytesFetched = 0;
  double NetworkNs = 0.0; ///< Fabric time charged on the driver clock.
  uint64_t ExecutorsLost = 0;
  uint64_t MapOutputsLost = 0;       ///< Blocks on lost executors.
  uint64_t MapOutputsRecomputed = 0; ///< Lineage re-runs of map tasks.
  // Degraded-executor robustness (docs/cluster.md "degraded executors").
  uint64_t SpeculativeLaunches = 0; ///< Copies launched for stragglers.
  uint64_t SpeculativeWins = 0;     ///< Copies that finished first.
  double SpeculativeWastedNs = 0.0; ///< Loser-attempt executor time.
  uint64_t StragglersFlagged = 0;   ///< Executors flagged by detection.
  uint64_t StragglerAvoidedPlacements = 0; ///< Placements steered away.
  uint64_t FetchRetries = 0;     ///< Failed transient fetches retried.
  uint64_t FetchDrops = 0;       ///< Fetches dropped in flight.
  uint64_t FetchCorruptions = 0; ///< Fetches failing byte-verification.
  double FetchBackoffNs = 0.0;   ///< Backoff charged between attempts.
  uint64_t FetchEscalations = 0; ///< Retry budgets exhausted -> lineage.
  uint64_t ExecutorsDecommissioned = 0;
  uint64_t ExecutorsJoined = 0;
  uint64_t BlocksMigrated = 0; ///< Blocks re-registered at decommission.
  uint64_t BytesMigrated = 0;
};

/// One simulated executor: a private hybrid memory + heap. Shuffle blocks
/// live in one region of a RegionAllocator carved from the heap's native
/// budget and recycled when a shuffle's blocks are released (the engine
/// runs at most one shuffle at a time). The executor's clocks advance
/// independently of the driver's; only fabric charges land on the driver
/// clock.
class Executor {
public:
  Executor(unsigned Id, const ClusterConfig &Config);

  unsigned id() const { return Id; }
  bool alive() const { return Alive; }
  void kill() { Alive = false; }

  heap::Heap &heap() { return *H; }
  memsim::HybridMemory &memory() { return *Mem; }
  const memsim::HybridMemory &memory() const { return *Mem; }

  /// Bump-allocates \p Bytes from the shuffle arena region;
  /// offheap::NoAddress when the arena cannot hold the block (the caller
  /// spills to executor disk).
  uint64_t arenaAlloc(uint64_t Bytes) {
    return Arena->regionAlloc(ArenaRegion, Bytes);
  }
  /// Recycles the arena once every block of the finished shuffle is dead.
  void arenaReset() { Arena->resetRegion(ArenaRegion); }
  uint64_t arenaCapacity() const { return Arena->claimBytes(); }
  offheap::RegionAllocator &arena() { return *Arena; }

private:
  unsigned Id;
  bool Alive = true;
  std::unique_ptr<memsim::HybridMemory> Mem;
  std::unique_ptr<heap::Heap> H;
  std::unique_ptr<offheap::RegionAllocator> Arena;
  uint32_t ArenaRegion = offheap::NoRegion;
};

/// One registered map-output block: the records map task \p Map routed to
/// reduce partition \p Reduce, serialized into the owning executor.
struct BlockInfo {
  unsigned Exec = 0; ///< Owning executor.
  /// Executor-native address; offheap::NoAddress = spilled to disk.
  uint64_t Addr = offheap::NoAddress;
  uint64_t Bytes = 0;
  uint64_t Records = 0;
  /// Record offset of this block inside the driver-side bucket for
  /// \p Reduce (the data plane the reduce task actually consumes).
  uint64_t BucketOffset = 0;
  bool Lost = false; ///< Owner died; must be recomputed from lineage.
  /// Host copy for blocks that overflowed the arena onto executor disk.
  std::vector<uint8_t> DiskCopy;
};

class Cluster {
public:
  /// \p DriverMem is the engine's simulated memory: fabric time is charged
  /// there so remote fetches lengthen the run like any other engine work.
  /// \p Trace may be null; network spans are emitted on TraceTrack::Network.
  Cluster(const ClusterConfig &Config, memsim::HybridMemory &DriverMem,
          support::TraceLog *Trace);

  const ClusterConfig &config() const { return Config; }
  ClusterStats &stats() { return Stats; }
  const ClusterStats &stats() const { return Stats; }
  unsigned numExecutors() const {
    return static_cast<unsigned>(Executors.size());
  }
  unsigned numAlive() const;
  Executor &executor(unsigned Id) { return *Executors[Id]; }
  bool executorAlive(unsigned Id) const { return Executors[Id]->alive(); }
  /// Physical host of executor \p Id: Id % NumHosts, or Id itself when
  /// NumHosts == 0 (one host per executor, the default).
  unsigned hostOf(unsigned Id) const {
    return Config.Options.NumHosts == 0 ? Id : Id % Config.Options.NumHosts;
  }

  //===--- scheduler ------------------------------------------------------===
  /// Opens a new stage: folds the finished stage's makespan, applies any
  /// elastic events scheduled for the new stage index, and resets the
  /// per-executor load/cost counters. Stages count 1-based; the count is
  /// what --decommission=E@K / --join-at=K schedules against.
  void beginStage();
  uint64_t stageIndex() const { return StageCounter; }
  /// Places one task. \p Preferred < 0 means no locality preference. The
  /// preferred executor wins (PROCESS_LOCAL) while it is alive, not
  /// flagged as a straggler, and within DelaySchedulingSlack tasks of the
  /// least-loaded executor; otherwise the least-loaded live unflagged
  /// executor (lowest id on ties) runs it as ANY. Flagged executors are
  /// used only when every live executor is flagged.
  unsigned placeTask(int Preferred);
  /// Records / looks up which executor caches a materialized partition.
  /// Locations die with their executor.
  void recordPartitionLocation(uint32_t RddId, uint32_t Part, unsigned Exec);
  int partitionLocation(uint32_t RddId, uint32_t Part) const;
  /// Default owner of source split \p Part (round-robin sharding); -1 only
  /// when that executor is dead.
  int splitOwner(uint32_t Part) const;

  //===--- map output tracker + shuffle fabric ----------------------------===
  /// Opens shuffle tracking for a MapCount x ReduceCount block matrix.
  /// The engine runs shuffles strictly one at a time; any previous
  /// shuffle's blocks are released first.
  void beginShuffle(uint32_t MapCount, uint32_t ReduceCount);
  /// Registers map task \p Map's block for reduce partition \p Reduce on
  /// executor \p Exec: serializes \p Bytes of records into the executor's
  /// arena (charging the executor's clock), falling back to executor disk
  /// when the arena is full.
  void registerMapOutput(uint32_t Map, uint32_t Reduce, unsigned Exec,
                         const void *Data, uint64_t Bytes, uint64_t Records,
                         uint64_t BucketOffset);
  const BlockInfo &mapOutput(uint32_t Map, uint32_t Reduce) const;
  /// Executor holding the most shuffle bytes for \p Reduce (its preferred
  /// reduce location); -1 when the shuffle is empty.
  int preferredReducer(uint32_t Reduce) const;
  /// Accounts one block fetch by the reduce task running on \p DstExec:
  /// local blocks cost nothing on the driver clock (the bucket read is
  /// already charged by the engine); remote blocks ride the fabric
  /// (serialization + latency + bytes/bandwidth on the driver clock, plus
  /// a network trace span); a slow owner serves its serialization at its
  /// degraded rate. The executor-held bytes are byte-compared against
  /// \p Expect -- the replica must match the data plane. Returns false
  /// (instead of failing the check) when \p InjectCorrupt asked for a
  /// transient corruption: the delivered bytes were flipped before the
  /// verification, so the fetch failed and must be retried.
  bool fetchBlock(uint32_t Map, uint32_t Reduce, unsigned DstExec,
                  const void *Expect, bool InjectCorrupt = false);
  /// Accounts a remote fetch request dropped in flight (the fetch
  /// transient-fault site): one fabric latency on the driver clock, no
  /// payload delivered.
  void chargeDroppedFetch(uint32_t Map, uint32_t Reduce, unsigned DstExec);
  /// Releases the active shuffle's blocks and recycles executor arenas.
  void endShuffle();

  //===--- failure + degraded executors -----------------------------------===
  /// Kills \p Id: marks its active-shuffle blocks lost, drops its cached
  /// partition locations, bumps loss counters. Returns the map-task ids
  /// whose outputs were lost (the lineage the caller must re-run).
  std::vector<uint32_t> killExecutor(unsigned Id);
  /// Marks every block of map task \p Map lost (fetch-retry escalation:
  /// the owner executor survives, but its copy of this output is treated
  /// as unusable and must be recomputed from lineage).
  void markMapOutputLost(uint32_t Map);
  /// Degrades \p Id (slow-executor fault site): its simulated task and
  /// fetch costs are multiplied by SlowExecutorFactor from now on.
  void degradeExecutor(unsigned Id);
  double slowdown(unsigned Id) const { return Slowdown[Id]; }
  bool flaggedStraggler(unsigned Id) const { return Flagged[Id] != 0; }

  /// What accountTask decided for one completed task.
  struct SpeculationOutcome {
    bool Launched = false; ///< A speculative copy was launched.
    bool CopyWon = false;  ///< The copy finished first; the caller must
                           ///< roll the original attempt back and re-run.
    unsigned CopyExec = 0; ///< Executor the copy ran on.
  };
  /// Accounts one completed task with driver-measured base cost \p BaseNs
  /// placed on \p Exec. The executor-scaled cost joins the stage cost
  /// model (the per-stage makespan below); when it exceeds
  /// SpeculationMultiplier x the stage's running median of base costs,
  /// the driver launches a speculative copy on the least-loaded other
  /// executor and the first finisher (on the simulated cost model) wins.
  /// The loser's occupancy is charged to its executor as wasted time, and
  /// the straggler is flagged so later placements steer around it.
  SpeculationOutcome accountTask(unsigned Exec, double BaseNs);

  /// Cumulative simulated parallel stage time: for every stage, the
  /// maximum over executors of the task cost assigned to it. This is the
  /// "wall time" of the simulated cluster (the serial driver clock is the
  /// total work); a straggler stretches it, speculation recovers it.
  double makespanNs() const;

  //===--- elastic membership ---------------------------------------------===
  /// Gracefully removes \p Id mid-job: its active-shuffle blocks are
  /// re-registered on the surviving executors over the fabric, its cached
  /// partition locations drop (stale PROCESS_LOCAL hints fall back to
  /// ANY), and it stops receiving tasks. Refuses to remove the last live
  /// executor.
  void decommissionExecutor(unsigned Id);
  /// Adds a fresh executor (a new heap carved on a private clock, same
  /// per-executor config); delay scheduling starts placing on it
  /// immediately. Returns the new executor id.
  unsigned addExecutor();

  /// Mirrors ClusterStats and per-executor clocks into \p M under
  /// cluster.* keys. Only called when a cluster exists, so --executors=1
  /// exports stay byte-identical to the seed engine.
  void publishMetrics(support::MetricsRegistry &M) const;

private:
  BlockInfo &block(uint32_t Map, uint32_t Reduce) {
    return Blocks[static_cast<size_t>(Map) * ReduceCount + Reduce];
  }
  const BlockInfo &block(uint32_t Map, uint32_t Reduce) const {
    return Blocks[static_cast<size_t>(Map) * ReduceCount + Reduce];
  }
  /// Serializes \p Data into \p Exec's arena (disk fallback); shared by
  /// registerMapOutput and decommission migration.
  void storeBlock(BlockInfo &B, unsigned Exec, const void *Data);
  /// Applies the elastic events scheduled for the just-opened stage.
  void applyElasticEvents();
  double currentStageMaxNs() const;

  ClusterConfig Config;
  memsim::HybridMemory &DriverMem;
  support::TraceLog *Trace;
  ClusterStats Stats;
  std::vector<std::unique_ptr<Executor>> Executors;
  std::vector<uint64_t> StageLoad; ///< Tasks placed per executor.
  std::vector<double> StageCost;   ///< Scaled task cost per executor.
  std::vector<double> Slowdown;    ///< Cost multiplier (1.0 = healthy).
  std::vector<uint8_t> Flagged;    ///< Straggler-flagged executors.
  std::vector<double> StageBaseCosts; ///< Completed base costs, this stage.
  double FoldedMakespanNs = 0.0; ///< Makespan of all finished stages.
  uint64_t StageCounter = 0;     ///< 1-based; see beginStage().
  /// (RddId, Part) -> executor, kept sorted for deterministic iteration.
  std::vector<std::pair<uint64_t, unsigned>> Locations;
  /// Active shuffle: MapCount x ReduceCount row-major block matrix.
  uint32_t MapCount = 0;
  uint32_t ReduceCount = 0;
  std::vector<BlockInfo> Blocks;
  std::vector<uint8_t> Scratch; ///< Fetch read-back / verify buffer.
};

} // namespace cluster
} // namespace panthera

#endif // PANTHERA_CLUSTER_CLUSTER_H
