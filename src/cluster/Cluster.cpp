//===- cluster/Cluster.cpp - Multi-executor cluster simulation ------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cluster/Cluster.h"

#include "support/Errors.h"

#include <algorithm>
#include <cstring>

namespace panthera {
namespace cluster {

//===----------------------------------------------------------------------===
// Executor
//===----------------------------------------------------------------------===

Executor::Executor(unsigned Id, const ClusterConfig &Config) : Id(Id) {
  const heap::HeapConfig &HC = Config.ExecutorHeap;
  uint64_t Total =
      heap::HeapConfig::alignPage(4096 + HC.HeapBytes + HC.NativeBytes);
  // Null registry: each executor owns a private bandwidth-trace registry so
  // the driver's memsim.* series stay untouched.
  Mem = std::make_unique<memsim::HybridMemory>(Total, Config.Technology,
                                               Config.Cache, Config.EpochNs,
                                               /*Registry=*/nullptr);
  Mem->setAccessPath(Config.AccessPath);
  H = std::make_unique<heap::Heap>(HC, *Mem);
  // Claim the shuffle arena up front: the native region is never collected,
  // so per-shuffle reuse needs region recycling over one big claim. The
  // whole claim is one region, reset between shuffles.
  Arena = std::make_unique<offheap::RegionAllocator>(
      *H, HC.NativeBytes, /*MinClaimBytes=*/1ull << 20);
  if (Arena->claimed())
    ArenaRegion = Arena->allocRegion(Arena->claimBytes());
}

//===----------------------------------------------------------------------===
// Cluster
//===----------------------------------------------------------------------===

Cluster::Cluster(const ClusterConfig &Config,
                 memsim::HybridMemory &DriverMem, support::TraceLog *Trace)
    : Config(Config), DriverMem(DriverMem), Trace(Trace) {
  PANTHERA_CHECK(Config.Options.NumExecutors >= 1,
                 "cluster needs at least one executor");
  for (unsigned I = 0; I != Config.Options.NumExecutors; ++I)
    Executors.push_back(std::make_unique<Executor>(I, Config));
  StageLoad.assign(Executors.size(), 0);
  StageCost.assign(Executors.size(), 0.0);
  Slowdown.assign(Executors.size(), 1.0);
  Flagged.assign(Executors.size(), 0);
}

unsigned Cluster::numAlive() const {
  unsigned N = 0;
  for (const auto &E : Executors)
    N += E->alive() ? 1 : 0;
  return N;
}

void Cluster::beginStage() {
  FoldedMakespanNs += currentStageMaxNs();
  std::fill(StageLoad.begin(), StageLoad.end(), 0);
  std::fill(StageCost.begin(), StageCost.end(), 0.0);
  StageBaseCosts.clear();
  ++StageCounter;
  applyElasticEvents();
}

unsigned Cluster::placeTask(int Preferred) {
  // Least-loaded live executor, lowest id on ties: the ANY fallback.
  // Straggler-flagged executors are candidates only when every live
  // executor is flagged (otherwise the scheduler steers around them).
  bool AllFlagged = true;
  for (unsigned I = 0; I != Executors.size(); ++I)
    if (Executors[I]->alive() && !Flagged[I])
      AllFlagged = false;
  unsigned Fallback = 0;
  uint64_t MinLoad = UINT64_MAX;
  for (unsigned I = 0; I != Executors.size(); ++I) {
    if (!Executors[I]->alive() || (Flagged[I] && !AllFlagged))
      continue;
    if (StageLoad[I] < MinLoad) {
      MinLoad = StageLoad[I];
      Fallback = I;
    }
  }
  PANTHERA_CHECK(MinLoad != UINT64_MAX, "no live executor to place a task");
  if (Preferred >= 0 &&
      static_cast<unsigned>(Preferred) < Executors.size() &&
      Executors[Preferred]->alive()) {
    if (Flagged[Preferred] && !AllFlagged) {
      // The data lives on a flagged straggler: give up the PROCESS_LOCAL
      // hint rather than queue behind a degraded machine.
      ++Stats.StragglerAvoidedPlacements;
    } else if (StageLoad[Preferred] <=
               MinLoad + Config.Options.DelaySchedulingSlack) {
      ++Stats.ProcessLocalTasks;
      ++StageLoad[Preferred];
      return static_cast<unsigned>(Preferred);
    } else {
      // The preferred executor exists but is too far behind the pack;
      // delay scheduling gives up and takes the least-loaded one.
      ++Stats.DelayedFallbacks;
    }
  }
  ++Stats.AnyTasks;
  ++StageLoad[Fallback];
  return Fallback;
}

void Cluster::degradeExecutor(unsigned Id) {
  Slowdown[Id] = Config.Options.SlowExecutorFactor;
  if (Trace)
    Trace->instant(support::TraceTrack::Engine, "executor slowed", "cluster",
                   DriverMem.totalTimeNs())
        .arg("executor", static_cast<uint64_t>(Id))
        .arg("factor", Config.Options.SlowExecutorFactor);
}

double Cluster::currentStageMaxNs() const {
  double Max = 0.0;
  for (double C : StageCost)
    Max = std::max(Max, C);
  return Max;
}

double Cluster::makespanNs() const {
  return FoldedMakespanNs + currentStageMaxNs();
}

Cluster::SpeculationOutcome Cluster::accountTask(unsigned Exec,
                                                 double BaseNs) {
  SpeculationOutcome O;
  const ClusterOptions &Opt = Config.Options;
  double Scaled = BaseNs * Slowdown[Exec];
  // Running median of the driver-measured *base* costs this stage,
  // including the task at hand -- the driver's picture of what a healthy
  // run of this stage's tasks costs. Scaled vs base keeps the detector
  // meaningful from the very first task of a stage: a straggler's copy
  // stands out against its own base cost even before peers complete.
  StageBaseCosts.push_back(BaseNs);
  std::vector<double> Sorted = StageBaseCosts;
  std::sort(Sorted.begin(), Sorted.end());
  double Median = Sorted[Sorted.size() / 2];
  bool Straggling = Opt.SpeculationEnabled && Median > 0.0 &&
                    Scaled > Opt.SpeculationMultiplier * Median &&
                    numAlive() > 1;
  if (!Straggling) {
    StageCost[Exec] += Scaled;
    return O;
  }
  // Least-loaded (by stage cost) live executor other than the straggler;
  // unflagged executors win over flagged ones, lowest id on ties.
  int Alt = -1;
  for (unsigned I = 0; I != Executors.size(); ++I) {
    if (I == Exec || !Executors[I]->alive())
      continue;
    if (Alt < 0 ||
        std::make_pair(Flagged[I] != 0, StageCost[I]) <
            std::make_pair(Flagged[Alt] != 0, StageCost[Alt]))
      Alt = static_cast<int>(I);
  }
  if (Alt < 0) {
    StageCost[Exec] += Scaled;
    return O;
  }
  // Cost model on the simulated clock: the driver notices the task is
  // past the threshold at Detect, launches the copy then, and the first
  // finisher wins; the loser runs until the winner completes and is
  // killed, its occupancy wasted.
  double Detect = std::min(Scaled, Opt.SpeculationMultiplier * Median);
  double CopyDone = Detect + BaseNs * Slowdown[Alt];
  double Eff = std::min(Scaled, CopyDone);
  StageCost[Exec] += Eff;
  StageCost[Alt] += Eff - Detect;
  ++Stats.SpeculativeLaunches;
  if (!Flagged[Exec]) {
    Flagged[Exec] = 1;
    ++Stats.StragglersFlagged;
  }
  O.Launched = true;
  O.CopyExec = static_cast<unsigned>(Alt);
  O.CopyWon = CopyDone < Scaled;
  if (O.CopyWon)
    ++Stats.SpeculativeWins;
  Stats.SpeculativeWastedNs += O.CopyWon ? Eff : Eff - Detect;
  if (Trace)
    Trace->instant(support::TraceTrack::Engine, "speculative", "cluster",
                   DriverMem.totalTimeNs())
        .arg("straggler", static_cast<uint64_t>(Exec))
        .arg("copy", static_cast<uint64_t>(Alt))
        .arg("won", std::string(O.CopyWon ? "copy" : "original"))
        .arg("base_ns", BaseNs)
        .arg("scaled_ns", Scaled);
  return O;
}

static uint64_t locationKey(uint32_t RddId, uint32_t Part) {
  return (static_cast<uint64_t>(RddId) << 32) | Part;
}

void Cluster::recordPartitionLocation(uint32_t RddId, uint32_t Part,
                                      unsigned Exec) {
  uint64_t Key = locationKey(RddId, Part);
  auto It = std::lower_bound(
      Locations.begin(), Locations.end(), Key,
      [](const std::pair<uint64_t, unsigned> &L, uint64_t K) {
        return L.first < K;
      });
  if (It != Locations.end() && It->first == Key)
    It->second = Exec;
  else
    Locations.insert(It, {Key, Exec});
}

int Cluster::partitionLocation(uint32_t RddId, uint32_t Part) const {
  uint64_t Key = locationKey(RddId, Part);
  auto It = std::lower_bound(
      Locations.begin(), Locations.end(), Key,
      [](const std::pair<uint64_t, unsigned> &L, uint64_t K) {
        return L.first < K;
      });
  if (It == Locations.end() || It->first != Key)
    return -1;
  return Executors[It->second]->alive() ? static_cast<int>(It->second) : -1;
}

int Cluster::splitOwner(uint32_t Part) const {
  unsigned E = Part % static_cast<unsigned>(Executors.size());
  return Executors[E]->alive() ? static_cast<int>(E) : -1;
}

void Cluster::beginShuffle(uint32_t NewMapCount, uint32_t NewReduceCount) {
  endShuffle();
  MapCount = NewMapCount;
  ReduceCount = NewReduceCount;
  Blocks.assign(static_cast<size_t>(MapCount) * ReduceCount, BlockInfo());
}

void Cluster::registerMapOutput(uint32_t Map, uint32_t Reduce, unsigned Exec,
                                const void *Data, uint64_t Bytes,
                                uint64_t Records, uint64_t BucketOffset) {
  BlockInfo &B = block(Map, Reduce);
  B.Exec = Exec;
  B.Bytes = Bytes;
  B.Records = Records;
  B.BucketOffset = BucketOffset;
  B.Lost = false;
  B.DiskCopy.clear();
  B.Addr = offheap::NoAddress;
  ++Stats.BlocksStored;
  Stats.BytesStored += Bytes;
  if (Records == 0)
    return;
  storeBlock(B, Exec, Data);
}

void Cluster::storeBlock(BlockInfo &B, unsigned Exec, const void *Data) {
  B.Exec = Exec;
  B.Lost = false;
  B.DiskCopy.clear();
  Executor &E = *Executors[Exec];
  // Serializing the block is executor-side work: CPU plus the native-region
  // write traffic land on the executor's private clock, never the driver's.
  // A degraded executor serializes at its slowed rate.
  E.memory().addCpuWorkNs(Config.Options.NetSerNsPerRecord *
                          static_cast<double>(B.Records) * Slowdown[Exec]);
  B.Addr = E.arenaAlloc(B.Bytes);
  if (B.Addr != offheap::NoAddress) {
    E.heap().nativeWrite(B.Addr, Data, B.Bytes);
    return;
  }
  // Arena full: the block overflows to the executor's local disk (held as
  // a host-side copy; fetching it later pays the disk deserialization).
  ++Stats.ExecutorDiskBlocks;
  const uint8_t *Src = static_cast<const uint8_t *>(Data);
  B.DiskCopy.assign(Src, Src + B.Bytes);
}

const BlockInfo &Cluster::mapOutput(uint32_t Map, uint32_t Reduce) const {
  PANTHERA_CHECK(Map < MapCount && Reduce < ReduceCount,
                 "map-output lookup outside the active shuffle");
  return block(Map, Reduce);
}

int Cluster::preferredReducer(uint32_t Reduce) const {
  // The executor holding the most map-output bytes for this partition
  // fetches the least remotely; ties go to the lowest id.
  std::vector<uint64_t> BytesAt(Executors.size(), 0);
  for (uint32_t M = 0; M != MapCount; ++M) {
    const BlockInfo &B = block(M, Reduce);
    if (!B.Lost)
      BytesAt[B.Exec] += B.Bytes;
  }
  int Best = -1;
  uint64_t BestBytes = 0;
  for (unsigned E = 0; E != Executors.size(); ++E)
    if (Executors[E]->alive() && BytesAt[E] > BestBytes) {
      BestBytes = BytesAt[E];
      Best = static_cast<int>(E);
    }
  return Best;
}

bool Cluster::fetchBlock(uint32_t Map, uint32_t Reduce, unsigned DstExec,
                         const void *Expect, bool InjectCorrupt) {
  BlockInfo &B = block(Map, Reduce);
  PANTHERA_CHECK(!B.Lost, "fetch of a lost map output");
  if (B.Records == 0)
    return true;
  // Read the executor-held replica back and verify it against the data
  // plane (the driver-side bucket slice the reduce task consumes).
  Scratch.resize(B.Bytes);
  if (B.Addr != offheap::NoAddress) {
    Executor &Owner = *Executors[B.Exec];
    Owner.heap().nativeRead(B.Addr, Scratch.data(), B.Bytes);
  } else {
    std::memcpy(Scratch.data(), B.DiskCopy.data(), B.Bytes);
    // Executor-disk blocks pay deserialization on the fetching side.
    DriverMem.addCpuWorkNs(Config.DiskNsPerRecord *
                           static_cast<double>(B.Records));
  }
  if (InjectCorrupt) {
    // Transient corruption in flight: flip one payload bit so the
    // delivered bytes fail the same verification a real divergence would.
    Scratch[0] ^= 0x01;
  }
  if (std::memcmp(Scratch.data(), Expect, B.Bytes) != 0) {
    PANTHERA_CHECK(InjectCorrupt,
                   "shuffle block replica diverged from the data plane");
    ++Stats.FetchCorruptions;
    // The corrupt bytes still crossed the wire (or the local bus); the
    // fabric charge below is paid before the receiver can notice.
  }
  bool Delivered = !InjectCorrupt;
  if (DstExec == B.Exec) {
    ++Stats.LocalBlocksFetched;
    Stats.LocalBytesFetched += B.Bytes;
    return Delivered;
  }
  const ClusterOptions &O = Config.Options;
  if (O.ZeroCopyShuffle && hostOf(DstExec) == hostOf(B.Exec)) {
    // Sparkle-style zero-copy shared-memory shuffle: co-located executors
    // exchange blocks by mapping the mapper's pages into the reducer, so
    // no serialization CPU, latency, or fabric bandwidth is charged. The
    // replica read above already paid the memory traffic through the
    // owner's simulated memory (and disk-spilled blocks their
    // deserialization CPU); nothing else crosses any wire. Dropped
    // fetches and decommission migration still ride the fabric: a drop
    // models a request that left the host, and migration copies to
    // executors on other hosts.
    ++Stats.ZeroCopyBlocksFetched;
    Stats.ZeroCopyBytesFetched += B.Bytes;
    if (Trace)
      Trace->span(support::TraceTrack::Network, "zero-copy fetch", "net",
                  DriverMem.totalTimeNs(), 0.0)
          .arg("from", static_cast<uint64_t>(B.Exec))
          .arg("to", static_cast<uint64_t>(DstExec))
          .arg("map", static_cast<uint64_t>(Map))
          .arg("reduce", static_cast<uint64_t>(Reduce))
          .arg("bytes", B.Bytes)
          .arg("records", B.Records);
    return Delivered;
  }
  // Remote: serialization CPU plus latency plus bytes over the pipe, all
  // on the driver's simulated clock (1 GB/s == 1 byte/ns). A degraded
  // owner serves its serialization at the slowed rate.
  double Ns =
      O.NetSerNsPerRecord * static_cast<double>(B.Records) *
          Slowdown[B.Exec] +
      O.NetLatencyUs * 1000.0 +
      static_cast<double>(B.Bytes) / O.NetBandwidthGBps;
  double Start = DriverMem.totalTimeNs();
  DriverMem.addCpuWorkNs(Ns);
  Stats.NetworkNs += Ns;
  ++Stats.RemoteBlocksFetched;
  Stats.RemoteBytesFetched += B.Bytes;
  if (Trace)
    Trace->span(support::TraceTrack::Network, "remote fetch", "net", Start,
                Ns)
        .arg("from", static_cast<uint64_t>(B.Exec))
        .arg("to", static_cast<uint64_t>(DstExec))
        .arg("map", static_cast<uint64_t>(Map))
        .arg("reduce", static_cast<uint64_t>(Reduce))
        .arg("bytes", B.Bytes)
        .arg("records", B.Records);
  return Delivered;
}

void Cluster::chargeDroppedFetch(uint32_t Map, uint32_t Reduce,
                                 unsigned DstExec) {
  const BlockInfo &B = block(Map, Reduce);
  ++Stats.FetchDrops;
  // The request round-trips the fabric and vanishes: one latency on the
  // driver clock, no payload.
  double Ns = Config.Options.NetLatencyUs * 1000.0;
  double Start = DriverMem.totalTimeNs();
  DriverMem.addCpuWorkNs(Ns);
  Stats.NetworkNs += Ns;
  if (Trace)
    Trace->span(support::TraceTrack::Network, "dropped fetch", "net", Start,
                Ns)
        .arg("from", static_cast<uint64_t>(B.Exec))
        .arg("to", static_cast<uint64_t>(DstExec))
        .arg("map", static_cast<uint64_t>(Map))
        .arg("reduce", static_cast<uint64_t>(Reduce));
}

void Cluster::endShuffle() {
  MapCount = ReduceCount = 0;
  Blocks.clear();
  for (auto &E : Executors)
    E->arenaReset();
}

std::vector<uint32_t> Cluster::killExecutor(unsigned Id) {
  Executor &E = *Executors[Id];
  PANTHERA_CHECK(E.alive(), "executor killed twice");
  PANTHERA_CHECK(numAlive() > 1, "cannot kill the last live executor");
  E.kill();
  ++Stats.ExecutorsLost;
  // Its cached partitions are gone.
  Locations.erase(std::remove_if(Locations.begin(), Locations.end(),
                                 [Id](const std::pair<uint64_t, unsigned> &L) {
                                   return L.second == Id;
                                 }),
                  Locations.end());
  // Its active-shuffle blocks are lost; report which map tasks must re-run.
  std::vector<uint32_t> LostMaps;
  for (uint32_t M = 0; M != MapCount; ++M) {
    bool Any = false;
    for (uint32_t R = 0; R != ReduceCount; ++R) {
      BlockInfo &B = block(M, R);
      if (B.Exec == Id && !B.Lost) {
        B.Lost = true;
        B.DiskCopy.clear();
        ++Stats.MapOutputsLost;
        Any = true;
      }
    }
    if (Any)
      LostMaps.push_back(M);
  }
  return LostMaps;
}

void Cluster::markMapOutputLost(uint32_t Map) {
  PANTHERA_CHECK(Map < MapCount, "escalation outside the active shuffle");
  ++Stats.FetchEscalations;
  for (uint32_t R = 0; R != ReduceCount; ++R) {
    BlockInfo &B = block(Map, R);
    if (!B.Lost) {
      B.Lost = true;
      B.DiskCopy.clear();
      ++Stats.MapOutputsLost;
    }
  }
}

void Cluster::decommissionExecutor(unsigned Id) {
  PANTHERA_CHECK(Id < Executors.size(), "decommission of an unknown executor");
  Executor &E = *Executors[Id];
  PANTHERA_CHECK(E.alive(), "decommission of a dead executor");
  PANTHERA_CHECK(numAlive() > 1, "cannot decommission the last live executor");
  // Graceful exit: every active-shuffle block the executor holds is
  // re-registered on a surviving executor before the machine leaves, so
  // (unlike killExecutor) nothing needs lineage recomputation. Targets
  // are chosen greedily by migrated bytes so the blocks spread out.
  double Start = DriverMem.totalTimeNs();
  double FabricNs = 0.0;
  uint64_t MovedBlocks = 0, MovedBytes = 0;
  std::vector<uint64_t> TargetBytes(Executors.size(), 0);
  const ClusterOptions &O = Config.Options;
  for (uint32_t M = 0; M != MapCount; ++M) {
    for (uint32_t R = 0; R != ReduceCount; ++R) {
      BlockInfo &B = block(M, R);
      if (B.Exec != Id || B.Lost || B.Records == 0)
        continue;
      // Read the replica out of the leaving executor...
      Scratch.resize(B.Bytes);
      if (B.Addr != offheap::NoAddress)
        E.heap().nativeRead(B.Addr, Scratch.data(), B.Bytes);
      else
        std::memcpy(Scratch.data(), B.DiskCopy.data(), B.Bytes);
      // ...pick the surviving executor with the fewest migrated bytes
      // (lowest id on ties)...
      int Target = -1;
      for (unsigned T = 0; T != Executors.size(); ++T) {
        if (T == Id || !Executors[T]->alive())
          continue;
        if (Target < 0 || TargetBytes[T] < TargetBytes[Target])
          Target = static_cast<int>(T);
      }
      PANTHERA_CHECK(Target >= 0, "no live executor to migrate blocks to");
      TargetBytes[Target] += B.Bytes;
      // ...and push it over the fabric (driver clock, like any remote
      // transfer; the receiving side re-serializes into its arena).
      FabricNs += O.NetSerNsPerRecord * static_cast<double>(B.Records) *
                      Slowdown[Id] +
                  O.NetLatencyUs * 1000.0 +
                  static_cast<double>(B.Bytes) / O.NetBandwidthGBps;
      storeBlock(B, static_cast<unsigned>(Target), Scratch.data());
      ++MovedBlocks;
      MovedBytes += B.Bytes;
    }
  }
  if (FabricNs > 0.0) {
    DriverMem.addCpuWorkNs(FabricNs);
    Stats.NetworkNs += FabricNs;
  }
  Stats.BlocksMigrated += MovedBlocks;
  Stats.BytesMigrated += MovedBytes;
  ++Stats.ExecutorsDecommissioned;
  // Its cached partitions leave with it; stale PROCESS_LOCAL hints on
  // this executor now resolve to -1 and fall back to ANY placement.
  Locations.erase(std::remove_if(Locations.begin(), Locations.end(),
                                 [Id](const std::pair<uint64_t, unsigned> &L) {
                                   return L.second == Id;
                                 }),
                  Locations.end());
  E.kill();
  if (Trace)
    Trace->span(support::TraceTrack::Network, "decommission", "cluster",
                Start, DriverMem.totalTimeNs() - Start)
        .arg("executor", static_cast<uint64_t>(Id))
        .arg("blocks_migrated", MovedBlocks)
        .arg("bytes_migrated", MovedBytes);
}

unsigned Cluster::addExecutor() {
  unsigned Id = static_cast<unsigned>(Executors.size());
  Executors.push_back(std::make_unique<Executor>(Id, Config));
  StageLoad.push_back(0);
  StageCost.push_back(0.0);
  Slowdown.push_back(1.0);
  Flagged.push_back(0);
  ++Stats.ExecutorsJoined;
  if (Trace)
    Trace->instant(support::TraceTrack::Engine, "executor joined", "cluster",
                   DriverMem.totalTimeNs())
        .arg("executor", static_cast<uint64_t>(Id));
  return Id;
}

void Cluster::applyElasticEvents() {
  for (const ElasticEvent &Ev : Config.Options.Elastic) {
    if (Ev.AtStage != StageCounter)
      continue;
    if (Ev.Join)
      addExecutor();
    else
      decommissionExecutor(Ev.Exec);
  }
}

void Cluster::publishMetrics(support::MetricsRegistry &M) const {
  M.gauge("cluster.executors").set(static_cast<double>(Executors.size()));
  M.gauge("cluster.executors_alive").set(static_cast<double>(numAlive()));
  M.counter("cluster.tasks.process_local").set(Stats.ProcessLocalTasks);
  M.counter("cluster.tasks.any").set(Stats.AnyTasks);
  M.counter("cluster.tasks.delayed_fallbacks").set(Stats.DelayedFallbacks);
  M.counter("cluster.shuffle.blocks_stored").set(Stats.BlocksStored);
  M.counter("cluster.shuffle.bytes_stored").set(Stats.BytesStored);
  M.counter("cluster.shuffle.exec_disk_blocks").set(Stats.ExecutorDiskBlocks);
  M.counter("cluster.fetch.local_blocks").set(Stats.LocalBlocksFetched);
  M.counter("cluster.fetch.local_bytes").set(Stats.LocalBytesFetched);
  M.counter("cluster.fetch.remote_blocks").set(Stats.RemoteBlocksFetched);
  M.counter("cluster.fetch.remote_bytes").set(Stats.RemoteBytesFetched);
  M.counter("cluster.fetch.zero_copy_blocks").set(Stats.ZeroCopyBlocksFetched);
  M.counter("cluster.fetch.zero_copy_bytes").set(Stats.ZeroCopyBytesFetched);
  M.gauge("cluster.net.time_ns").set(Stats.NetworkNs);
  M.counter("cluster.executors_lost").set(Stats.ExecutorsLost);
  M.counter("cluster.map_outputs_lost").set(Stats.MapOutputsLost);
  M.counter("cluster.map_outputs_recomputed").set(Stats.MapOutputsRecomputed);
  M.gauge("cluster.stage.makespan_ns").set(makespanNs());
  M.counter("cluster.speculation.launched").set(Stats.SpeculativeLaunches);
  M.counter("cluster.speculation.wins").set(Stats.SpeculativeWins);
  M.gauge("cluster.speculation.wasted_ns").set(Stats.SpeculativeWastedNs);
  M.counter("cluster.speculation.flagged").set(Stats.StragglersFlagged);
  M.counter("cluster.speculation.avoided_placements")
      .set(Stats.StragglerAvoidedPlacements);
  M.counter("cluster.fetch_retry.attempts").set(Stats.FetchRetries);
  M.counter("cluster.fetch_retry.drops").set(Stats.FetchDrops);
  M.counter("cluster.fetch_retry.corrupt").set(Stats.FetchCorruptions);
  M.gauge("cluster.fetch_retry.backoff_ns").set(Stats.FetchBackoffNs);
  M.counter("cluster.fetch_retry.escalations").set(Stats.FetchEscalations);
  M.counter("cluster.elastic.decommissioned")
      .set(Stats.ExecutorsDecommissioned);
  M.counter("cluster.elastic.joined").set(Stats.ExecutorsJoined);
  M.counter("cluster.elastic.blocks_migrated").set(Stats.BlocksMigrated);
  M.counter("cluster.elastic.bytes_migrated").set(Stats.BytesMigrated);
  for (unsigned I = 0; I != Executors.size(); ++I) {
    const Executor &E = *Executors[I];
    std::string Prefix = "cluster.exec" + std::to_string(I) + ".";
    M.gauge(Prefix + "alive").set(E.alive() ? 1.0 : 0.0);
    const memsim::HybridMemory &Mem = E.memory();
    M.gauge(Prefix + "time_ns").set(Mem.totalTimeNs());
    const memsim::TrafficCounters &Dram = Mem.traffic(memsim::Device::DRAM);
    const memsim::TrafficCounters &Nvm = Mem.traffic(memsim::Device::NVM);
    M.counter(Prefix + "dram_line_reads").set(Dram.LineReads);
    M.counter(Prefix + "dram_line_writes").set(Dram.LineWrites);
    M.counter(Prefix + "nvm_line_reads").set(Nvm.LineReads);
    M.counter(Prefix + "nvm_line_writes").set(Nvm.LineWrites);
  }
}

} // namespace cluster
} // namespace panthera
