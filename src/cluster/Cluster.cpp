//===- cluster/Cluster.cpp - Multi-executor cluster simulation ------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cluster/Cluster.h"

#include "support/Errors.h"

#include <algorithm>
#include <cstring>

namespace panthera {
namespace cluster {

//===----------------------------------------------------------------------===
// Executor
//===----------------------------------------------------------------------===

Executor::Executor(unsigned Id, const ClusterConfig &Config) : Id(Id) {
  const heap::HeapConfig &HC = Config.ExecutorHeap;
  uint64_t Total =
      heap::HeapConfig::alignPage(4096 + HC.HeapBytes + HC.NativeBytes);
  // Null registry: each executor owns a private bandwidth-trace registry so
  // the driver's memsim.* series stay untouched.
  Mem = std::make_unique<memsim::HybridMemory>(Total, Config.Technology,
                                               Config.Cache, Config.EpochNs,
                                               /*Registry=*/nullptr);
  H = std::make_unique<heap::Heap>(HC, *Mem);
  // Claim the shuffle arena up front: the native region is never collected,
  // so per-shuffle reuse needs our own bump pointer over one big claim.
  uint64_t Want = HC.NativeBytes;
  while (Want >= (1ull << 20)) {
    try {
      ArenaBase = H->allocNative(Want);
      ArenaSize = Want;
      break;
    } catch (const OutOfMemoryError &) {
      Want >>= 1;
    }
  }
}

uint64_t Executor::arenaAlloc(uint64_t Bytes) {
  uint64_t Aligned = (Bytes + 7) & ~7ull;
  if (Aligned < Bytes || ArenaUsed + Aligned > ArenaSize)
    return UINT64_MAX;
  uint64_t Addr = ArenaBase + ArenaUsed;
  ArenaUsed += Aligned;
  return Addr;
}

//===----------------------------------------------------------------------===
// Cluster
//===----------------------------------------------------------------------===

Cluster::Cluster(const ClusterConfig &Config,
                 memsim::HybridMemory &DriverMem, support::TraceLog *Trace)
    : Config(Config), DriverMem(DriverMem), Trace(Trace) {
  PANTHERA_CHECK(Config.Options.NumExecutors >= 1,
                 "cluster needs at least one executor");
  for (unsigned I = 0; I != Config.Options.NumExecutors; ++I)
    Executors.push_back(std::make_unique<Executor>(I, Config));
  StageLoad.assign(Executors.size(), 0);
}

unsigned Cluster::numAlive() const {
  unsigned N = 0;
  for (const auto &E : Executors)
    N += E->alive() ? 1 : 0;
  return N;
}

void Cluster::beginStage() {
  std::fill(StageLoad.begin(), StageLoad.end(), 0);
}

unsigned Cluster::placeTask(int Preferred) {
  // Least-loaded live executor, lowest id on ties: the ANY fallback.
  unsigned Fallback = 0;
  uint64_t MinLoad = UINT64_MAX;
  for (unsigned I = 0; I != Executors.size(); ++I) {
    if (!Executors[I]->alive())
      continue;
    if (StageLoad[I] < MinLoad) {
      MinLoad = StageLoad[I];
      Fallback = I;
    }
  }
  PANTHERA_CHECK(MinLoad != UINT64_MAX, "no live executor to place a task");
  if (Preferred >= 0 &&
      static_cast<unsigned>(Preferred) < Executors.size() &&
      Executors[Preferred]->alive()) {
    if (StageLoad[Preferred] <= MinLoad + Config.Options.DelaySchedulingSlack) {
      ++Stats.ProcessLocalTasks;
      ++StageLoad[Preferred];
      return static_cast<unsigned>(Preferred);
    }
    // The preferred executor exists but is too far behind the pack; delay
    // scheduling gives up and takes the least-loaded one.
    ++Stats.DelayedFallbacks;
  }
  ++Stats.AnyTasks;
  ++StageLoad[Fallback];
  return Fallback;
}

static uint64_t locationKey(uint32_t RddId, uint32_t Part) {
  return (static_cast<uint64_t>(RddId) << 32) | Part;
}

void Cluster::recordPartitionLocation(uint32_t RddId, uint32_t Part,
                                      unsigned Exec) {
  uint64_t Key = locationKey(RddId, Part);
  auto It = std::lower_bound(
      Locations.begin(), Locations.end(), Key,
      [](const std::pair<uint64_t, unsigned> &L, uint64_t K) {
        return L.first < K;
      });
  if (It != Locations.end() && It->first == Key)
    It->second = Exec;
  else
    Locations.insert(It, {Key, Exec});
}

int Cluster::partitionLocation(uint32_t RddId, uint32_t Part) const {
  uint64_t Key = locationKey(RddId, Part);
  auto It = std::lower_bound(
      Locations.begin(), Locations.end(), Key,
      [](const std::pair<uint64_t, unsigned> &L, uint64_t K) {
        return L.first < K;
      });
  if (It == Locations.end() || It->first != Key)
    return -1;
  return Executors[It->second]->alive() ? static_cast<int>(It->second) : -1;
}

int Cluster::splitOwner(uint32_t Part) const {
  unsigned E = Part % static_cast<unsigned>(Executors.size());
  return Executors[E]->alive() ? static_cast<int>(E) : -1;
}

void Cluster::beginShuffle(uint32_t NewMapCount, uint32_t NewReduceCount) {
  endShuffle();
  MapCount = NewMapCount;
  ReduceCount = NewReduceCount;
  Blocks.assign(static_cast<size_t>(MapCount) * ReduceCount, BlockInfo());
}

void Cluster::registerMapOutput(uint32_t Map, uint32_t Reduce, unsigned Exec,
                                const void *Data, uint64_t Bytes,
                                uint64_t Records, uint64_t BucketOffset) {
  BlockInfo &B = block(Map, Reduce);
  B.Exec = Exec;
  B.Bytes = Bytes;
  B.Records = Records;
  B.BucketOffset = BucketOffset;
  B.Lost = false;
  B.DiskCopy.clear();
  B.Addr = UINT64_MAX;
  ++Stats.BlocksStored;
  Stats.BytesStored += Bytes;
  if (Records == 0)
    return;
  Executor &E = *Executors[Exec];
  // Serializing the block is executor-side work: CPU plus the native-region
  // write traffic land on the executor's private clock, never the driver's.
  E.memory().addCpuWorkNs(Config.Options.NetSerNsPerRecord *
                          static_cast<double>(Records));
  B.Addr = E.arenaAlloc(Bytes);
  if (B.Addr != UINT64_MAX) {
    E.heap().nativeWrite(B.Addr, Data, Bytes);
    return;
  }
  // Arena full: the block overflows to the executor's local disk (held as
  // a host-side copy; fetching it later pays the disk deserialization).
  ++Stats.ExecutorDiskBlocks;
  const uint8_t *Src = static_cast<const uint8_t *>(Data);
  B.DiskCopy.assign(Src, Src + Bytes);
}

const BlockInfo &Cluster::mapOutput(uint32_t Map, uint32_t Reduce) const {
  PANTHERA_CHECK(Map < MapCount && Reduce < ReduceCount,
                 "map-output lookup outside the active shuffle");
  return block(Map, Reduce);
}

int Cluster::preferredReducer(uint32_t Reduce) const {
  // The executor holding the most map-output bytes for this partition
  // fetches the least remotely; ties go to the lowest id.
  std::vector<uint64_t> BytesAt(Executors.size(), 0);
  for (uint32_t M = 0; M != MapCount; ++M) {
    const BlockInfo &B = block(M, Reduce);
    if (!B.Lost)
      BytesAt[B.Exec] += B.Bytes;
  }
  int Best = -1;
  uint64_t BestBytes = 0;
  for (unsigned E = 0; E != Executors.size(); ++E)
    if (Executors[E]->alive() && BytesAt[E] > BestBytes) {
      BestBytes = BytesAt[E];
      Best = static_cast<int>(E);
    }
  return Best;
}

void Cluster::fetchBlock(uint32_t Map, uint32_t Reduce, unsigned DstExec,
                         const void *Expect) {
  BlockInfo &B = block(Map, Reduce);
  PANTHERA_CHECK(!B.Lost, "fetch of a lost map output");
  if (B.Records == 0)
    return;
  // Read the executor-held replica back and verify it against the data
  // plane (the driver-side bucket slice the reduce task consumes).
  Scratch.resize(B.Bytes);
  if (B.Addr != UINT64_MAX) {
    Executor &Owner = *Executors[B.Exec];
    Owner.heap().nativeRead(B.Addr, Scratch.data(), B.Bytes);
  } else {
    std::memcpy(Scratch.data(), B.DiskCopy.data(), B.Bytes);
    // Executor-disk blocks pay deserialization on the fetching side.
    DriverMem.addCpuWorkNs(Config.DiskNsPerRecord *
                           static_cast<double>(B.Records));
  }
  PANTHERA_CHECK(std::memcmp(Scratch.data(), Expect, B.Bytes) == 0,
                 "shuffle block replica diverged from the data plane");
  if (DstExec == B.Exec) {
    ++Stats.LocalBlocksFetched;
    Stats.LocalBytesFetched += B.Bytes;
    return;
  }
  // Remote: serialization CPU plus latency plus bytes over the pipe, all
  // on the driver's simulated clock (1 GB/s == 1 byte/ns).
  const ClusterOptions &O = Config.Options;
  double Ns = O.NetSerNsPerRecord * static_cast<double>(B.Records) +
              O.NetLatencyUs * 1000.0 +
              static_cast<double>(B.Bytes) / O.NetBandwidthGBps;
  double Start = DriverMem.totalTimeNs();
  DriverMem.addCpuWorkNs(Ns);
  Stats.NetworkNs += Ns;
  ++Stats.RemoteBlocksFetched;
  Stats.RemoteBytesFetched += B.Bytes;
  if (Trace)
    Trace->span(support::TraceTrack::Network, "remote fetch", "net", Start,
                Ns)
        .arg("from", static_cast<uint64_t>(B.Exec))
        .arg("to", static_cast<uint64_t>(DstExec))
        .arg("map", static_cast<uint64_t>(Map))
        .arg("reduce", static_cast<uint64_t>(Reduce))
        .arg("bytes", B.Bytes)
        .arg("records", B.Records);
}

void Cluster::endShuffle() {
  MapCount = ReduceCount = 0;
  Blocks.clear();
  for (auto &E : Executors)
    E->arenaReset();
}

std::vector<uint32_t> Cluster::killExecutor(unsigned Id) {
  Executor &E = *Executors[Id];
  PANTHERA_CHECK(E.alive(), "executor killed twice");
  PANTHERA_CHECK(numAlive() > 1, "cannot kill the last live executor");
  E.kill();
  ++Stats.ExecutorsLost;
  // Its cached partitions are gone.
  Locations.erase(std::remove_if(Locations.begin(), Locations.end(),
                                 [Id](const std::pair<uint64_t, unsigned> &L) {
                                   return L.second == Id;
                                 }),
                  Locations.end());
  // Its active-shuffle blocks are lost; report which map tasks must re-run.
  std::vector<uint32_t> LostMaps;
  for (uint32_t M = 0; M != MapCount; ++M) {
    bool Any = false;
    for (uint32_t R = 0; R != ReduceCount; ++R) {
      BlockInfo &B = block(M, R);
      if (B.Exec == Id && !B.Lost) {
        B.Lost = true;
        B.DiskCopy.clear();
        ++Stats.MapOutputsLost;
        Any = true;
      }
    }
    if (Any)
      LostMaps.push_back(M);
  }
  return LostMaps;
}

void Cluster::publishMetrics(support::MetricsRegistry &M) const {
  M.gauge("cluster.executors").set(static_cast<double>(Executors.size()));
  M.gauge("cluster.executors_alive").set(static_cast<double>(numAlive()));
  M.counter("cluster.tasks.process_local").set(Stats.ProcessLocalTasks);
  M.counter("cluster.tasks.any").set(Stats.AnyTasks);
  M.counter("cluster.tasks.delayed_fallbacks").set(Stats.DelayedFallbacks);
  M.counter("cluster.shuffle.blocks_stored").set(Stats.BlocksStored);
  M.counter("cluster.shuffle.bytes_stored").set(Stats.BytesStored);
  M.counter("cluster.shuffle.exec_disk_blocks").set(Stats.ExecutorDiskBlocks);
  M.counter("cluster.fetch.local_blocks").set(Stats.LocalBlocksFetched);
  M.counter("cluster.fetch.local_bytes").set(Stats.LocalBytesFetched);
  M.counter("cluster.fetch.remote_blocks").set(Stats.RemoteBlocksFetched);
  M.counter("cluster.fetch.remote_bytes").set(Stats.RemoteBytesFetched);
  M.gauge("cluster.net.time_ns").set(Stats.NetworkNs);
  M.counter("cluster.executors_lost").set(Stats.ExecutorsLost);
  M.counter("cluster.map_outputs_lost").set(Stats.MapOutputsLost);
  M.counter("cluster.map_outputs_recomputed").set(Stats.MapOutputsRecomputed);
  for (unsigned I = 0; I != Executors.size(); ++I) {
    const Executor &E = *Executors[I];
    std::string Prefix = "cluster.exec" + std::to_string(I) + ".";
    M.gauge(Prefix + "alive").set(E.alive() ? 1.0 : 0.0);
    const memsim::HybridMemory &Mem = E.memory();
    M.gauge(Prefix + "time_ns").set(Mem.totalTimeNs());
    const memsim::TrafficCounters &Dram = Mem.traffic(memsim::Device::DRAM);
    const memsim::TrafficCounters &Nvm = Mem.traffic(memsim::Device::NVM);
    M.counter(Prefix + "dram_line_reads").set(Dram.LineReads);
    M.counter(Prefix + "dram_line_writes").set(Dram.LineWrites);
    M.counter(Prefix + "nvm_line_reads").set(Nvm.LineReads);
    M.counter(Prefix + "nvm_line_writes").set(Nvm.LineWrites);
  }
}

} // namespace cluster
} // namespace panthera
