//===- bench/fig6_time_sweep.cpp - Fig 6 reproduction ----------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fig 6: elapsed time of PR / LR / CC / BC under two heap sizes (120 GB,
/// 64 GB) and two DRAM ratios (1/4, 1/3), for Unmanaged and Panthera,
/// normalized to the same-size DRAM-only system.
///
/// Paper averages: Panthera overhead 9.5% (64GB,1/4), 3.4% (64GB,1/3),
/// 2.1% (120GB,1/4), 0% (120GB,1/3); Unmanaged 25.9%, 20.9%, 23.9%, 19.3%.
/// Key observations: Panthera is far more sensitive to the DRAM ratio
/// than the Unmanaged baseline, and both benefit from the bigger heap.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"

using namespace panthera;
using namespace panthera::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Fig 6", "Time sweep over heaps {120,64}GB x DRAM ratios "
                  "{1/4,1/3}, normalized to same-size DRAM-only",
         Scale);

  struct Config {
    unsigned HeapGB;
    double Ratio;
    const char *Label;
    double PaperU, PaperP; // paper's average overheads
  };
  const Config Configs[] = {
      {120, 0.25, "120GB, 1/4 DRAM", 1.239, 1.021},
      {120, 1.0 / 3.0, "120GB, 1/3 DRAM", 1.193, 1.000},
      {64, 0.25, "64GB, 1/4 DRAM", 1.259, 1.095},
      {64, 1.0 / 3.0, "64GB, 1/3 DRAM", 1.209, 1.034},
  };

  for (const Config &C : Configs) {
    std::printf("\n-- %s --\n", C.Label);
    std::printf("%-5s %12s %12s\n", "", "Unmanaged", "Panthera");
    std::vector<double> U, P;
    for (const workloads::WorkloadSpec *Spec : sweepPrograms()) {
      Experiment Base = runExperiment(*Spec, gc::PolicyKind::DramOnly,
                                      C.HeapGB, 1.0, Scale);
      Experiment EU = runExperiment(*Spec, gc::PolicyKind::Unmanaged,
                                    C.HeapGB, C.Ratio, Scale);
      Experiment EP = runExperiment(*Spec, gc::PolicyKind::Panthera,
                                    C.HeapGB, C.Ratio, Scale);
      double Ut = EU.Report.TotalNs / Base.Report.TotalNs;
      double Pt = EP.Report.TotalNs / Base.Report.TotalNs;
      U.push_back(Ut);
      P.push_back(Pt);
      std::printf("%-5s %12.3f %12.3f\n", Spec->ShortName.c_str(), Ut, Pt);
    }
    std::printf("%-5s %12.3f %12.3f   paper avg: U %.3f, P %.3f\n", "mean",
                geomean(U), geomean(P), C.PaperU, C.PaperP);
  }

  std::printf("\nshape checks (paper's two observations):\n");
  std::printf("  Panthera improves when the DRAM ratio grows; the\n"
              "  Unmanaged baseline is much less ratio-sensitive --\n"
              "  compare the per-config means above.\n");
  return 0;
}
