//===- bench/fig4_overall.cpp - Fig 4 reproduction -------------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fig 4: all seven programs under a 64 GB heap with DRAM : memory = 1/3;
/// elapsed time and energy of the Unmanaged and Panthera configurations,
/// normalized to the 64 GB DRAM-only baseline.
///
/// Paper reference (time, energy) normalized to DRAM-only:
///   PR  U(1.25,0.71) P(1.11,0.66) | KM U(1.15,0.66) P(0.91,0.56)
///   LR  U(1.15,0.68) P(0.99,0.61) | TC U(1.37,0.74) P(1.24,0.70)
///   CC  U(1.18,0.69) P(0.96,0.61) | SSSP U(1.15,0.66) P(1.01,0.64)
///   BC  U(1.25,0.69) P(1.08,0.60)
/// Averages: Unmanaged +21.4% time / -31.0% energy;
///           Panthera   +4.3% time / -37.4% energy.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"

using namespace panthera;
using namespace panthera::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Fig 4", "Overall time & energy, 64GB heap, 1/3 DRAM, normalized "
                  "to 64GB DRAM-only",
         Scale);

  struct PaperRef {
    const char *Name;
    double UT, UE, PT, PE;
  };
  const PaperRef Refs[] = {
      {"PR", 1.25, 0.71, 1.11, 0.66},  {"KM", 1.15, 0.66, 0.91, 0.56},
      {"LR", 1.15, 0.68, 0.99, 0.61},  {"TC", 1.37, 0.74, 1.24, 0.70},
      {"CC", 1.18, 0.69, 0.96, 0.61},  {"SSSP", 1.15, 0.66, 1.01, 0.64},
      {"BC", 1.25, 0.69, 1.08, 0.60},
  };

  std::printf("\n%-5s | %-23s | %-23s | paper (Unm t,e | Pan t,e)\n", "",
              "Unmanaged  time  energy", "Panthera   time  energy");
  std::vector<double> UT, UE, PT, PE;
  bool AllChecksumsAgree = true;
  for (const PaperRef &Ref : Refs) {
    const workloads::WorkloadSpec *Spec = workloads::findWorkload(Ref.Name);
    Experiment Base =
        runExperiment(*Spec, gc::PolicyKind::DramOnly, 64, 1.0, Scale);
    Experiment U = runExperiment(*Spec, gc::PolicyKind::Unmanaged, 64,
                                 1.0 / 3.0, Scale);
    Experiment P = runExperiment(*Spec, gc::PolicyKind::Panthera, 64,
                                 1.0 / 3.0, Scale);
    double Ut = U.Report.TotalNs / Base.Report.TotalNs;
    double Ue = U.Report.TotalJoules / Base.Report.TotalJoules;
    double Pt = P.Report.TotalNs / Base.Report.TotalNs;
    double Pe = P.Report.TotalJoules / Base.Report.TotalJoules;
    UT.push_back(Ut);
    UE.push_back(Ue);
    PT.push_back(Pt);
    PE.push_back(Pe);
    AllChecksumsAgree &=
        Base.Checksum == U.Checksum && Base.Checksum == P.Checksum;
    std::printf("%-5s |        %6.2f  %6.2f  |        %6.2f  %6.2f  | "
                "(%.2f,%.2f | %.2f,%.2f)\n",
                Ref.Name, Ut, Ue, Pt, Pe, Ref.UT, Ref.UE, Ref.PT, Ref.PE);
  }
  std::printf("%-5s |        %6.2f  %6.2f  |        %6.2f  %6.2f  | "
              "(1.21,0.69 | 1.04,0.63)\n",
              "mean", geomean(UT), geomean(UE), geomean(PT), geomean(PE));

  std::printf("\nshape checks:\n");
  std::printf("  Panthera time <= Unmanaged time (mean):  %s\n",
              geomean(PT) <= geomean(UT) ? "yes" : "NO");
  std::printf("  Panthera energy <= Unmanaged energy:     %s\n",
              geomean(PE) <= geomean(UE) ? "yes" : "NO");
  std::printf("  hybrid saves substantial energy (<0.8):  %s\n",
              geomean(PE) < 0.8 ? "yes" : "NO");
  std::printf("  results identical across policies:       %s\n",
              AllChecksumsAgree ? "yes" : "NO");
  return 0;
}
