//===- bench/fig7_energy_sweep.cpp - Fig 7 reproduction --------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fig 7: memory energy of PR / LR / CC / BC for the same heap x DRAM
/// ratio sweep as Fig 6, normalized to the same-size DRAM-only system.
///
/// Paper averages: 120GB heap: Unmanaged 0.50 (1/4) / 0.57 (1/3),
/// Panthera 0.43 / 0.48. 64GB heap: Unmanaged 0.63 / 0.69, Panthera
/// 0.58 / 0.62. Key observations: smaller DRAM ratio -> bigger savings;
/// Panthera saves more than Unmanaged at equal ratios (it runs faster,
/// so the static power integrates over less time).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"

using namespace panthera;
using namespace panthera::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Fig 7", "Energy sweep over heaps {120,64}GB x DRAM ratios "
                  "{1/4,1/3}, normalized to same-size DRAM-only",
         Scale);

  struct Config {
    unsigned HeapGB;
    double Ratio;
    const char *Label;
    double PaperU, PaperP;
  };
  const Config Configs[] = {
      {120, 0.25, "120GB, 1/4 DRAM", 0.498, 0.430},
      {120, 1.0 / 3.0, "120GB, 1/3 DRAM", 0.565, 0.483},
      {64, 0.25, "64GB, 1/4 DRAM", 0.633, 0.583},
      {64, 1.0 / 3.0, "64GB, 1/3 DRAM", 0.693, 0.620},
  };

  double MeanQuarter = 0.0, MeanThird = 0.0;
  for (const Config &C : Configs) {
    std::printf("\n-- %s --\n", C.Label);
    std::printf("%-5s %12s %12s\n", "", "Unmanaged", "Panthera");
    std::vector<double> U, P;
    for (const workloads::WorkloadSpec *Spec : sweepPrograms()) {
      Experiment Base = runExperiment(*Spec, gc::PolicyKind::DramOnly,
                                      C.HeapGB, 1.0, Scale);
      Experiment EU = runExperiment(*Spec, gc::PolicyKind::Unmanaged,
                                    C.HeapGB, C.Ratio, Scale);
      Experiment EP = runExperiment(*Spec, gc::PolicyKind::Panthera,
                                    C.HeapGB, C.Ratio, Scale);
      double Ue = EU.Report.TotalJoules / Base.Report.TotalJoules;
      double Pe = EP.Report.TotalJoules / Base.Report.TotalJoules;
      U.push_back(Ue);
      P.push_back(Pe);
      std::printf("%-5s %12.3f %12.3f\n", Spec->ShortName.c_str(), Ue, Pe);
    }
    std::printf("%-5s %12.3f %12.3f   paper avg: U %.3f, P %.3f\n", "mean",
                geomean(U), geomean(P), C.PaperU, C.PaperP);
    if (C.Ratio < 0.3)
      MeanQuarter += geomean(P);
    else
      MeanThird += geomean(P);
  }

  std::printf("\nshape checks:\n");
  std::printf("  smaller DRAM ratio saves more energy: %s\n",
              MeanQuarter < MeanThird ? "yes" : "NO");
  return 0;
}
