//===- bench/BenchCommon.h - Shared experiment driver -----------*- C++ -*-===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure/table reproduction binaries: one-line
/// experiment execution (workload x policy x heap x DRAM ratio), dataset
/// scaling via --scale or PANTHERA_BENCH_SCALE, and consistent headers.
///
/// Every harness prints the simulated measurement next to the paper's
/// reported value (`paper=...`) so shape agreement is visible at a glance.
///
//===----------------------------------------------------------------------===//

#ifndef PANTHERA_BENCH_BENCHCOMMON_H
#define PANTHERA_BENCH_BENCHCOMMON_H

#include "support/CliParse.h"
#include "support/Metrics.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace panthera {
namespace bench {

/// One experiment's outputs. Metrics is the run's published registry
/// snapshot (docs/observability.md); harnesses read figures from it
/// instead of private Runtime plumbing.
struct Experiment {
  double Checksum = 0.0;
  core::RunReport Report;
  support::MetricsRegistry Metrics;
};

/// Extra knobs an experiment may override.
struct Overrides {
  bool EagerPromotion = true;
  bool CardPadding = true;
  double NurseryFraction = 1.0 / 6.0;
  double EpochNs = 100.0e3;
};

/// Runs \p Spec under one configuration and reports time/energy/GC.
inline Experiment runExperiment(const workloads::WorkloadSpec &Spec,
                                gc::PolicyKind Policy, unsigned HeapGB,
                                double DramRatio, double Scale,
                                const Overrides &O = Overrides()) {
  core::RuntimeConfig Config;
  Config.Policy = Policy;
  // --scale multiplies the dataset, so the heap scales with it: each
  // figure is defined by its dataset:heap ratio (64 GB or 120 GB for the
  // paper's dataset), and keeping the ratio is what makes a scaled run
  // the same experiment. At scale 1 this is exactly the paper's heap; a
  // fixed heap under a 10x dataset would instead measure capacity thrash.
  Config.HeapPaperGB = HeapGB;
  if (Scale != 1.0)
    Config.HeapPaperGB = std::max(
        1u, static_cast<unsigned>(static_cast<double>(HeapGB) * Scale + 0.5));
  Config.DramRatio = DramRatio;
  Config.EagerPromotion = O.EagerPromotion;
  Config.CardPadding = O.CardPadding;
  Config.NurseryFraction = O.NurseryFraction;
  Config.EpochNs = O.EpochNs;
  core::Runtime RT(Config);
  Experiment E;
  E.Checksum = Spec.Run(RT, Scale);
  E.Report = RT.report();
  RT.publishMetrics();
  E.Metrics = RT.metrics();
  return E;
}

/// Parses --scale=<x> (or env PANTHERA_BENCH_SCALE); default 1.0.
/// Malformed or non-positive values abort with a diagnostic instead of
/// silently running at scale 0.
inline double parseScale(int Argc, char **Argv) {
  auto Parse = [](const char *S, const char *From) {
    double V = 0.0;
    if (!support::parseF64(S, 1e-9, 1e9, V)) {
      std::fprintf(stderr, "bad scale '%s' from %s (want a positive number)\n",
                   S, From);
      std::exit(1);
    }
    return V;
  };
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--scale=", 8) == 0)
      return Parse(Arg + 8, "--scale");
  }
  if (const char *Env = std::getenv("PANTHERA_BENCH_SCALE"))
    return Parse(Env, "PANTHERA_BENCH_SCALE");
  return 1.0;
}

/// Prints the standard harness banner.
inline void banner(const char *Id, const char *What, double Scale) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("Panthera reproduction | %s\n", Id);
  std::printf("%s\n", What);
  std::printf("scale: 1 paper-GB = 1 simulated MB; dataset scale factor "
              "%.2f\n",
              Scale);
  std::printf("==============================================================="
              "=================\n");
}

/// The four programs the paper uses for the heap/ratio sweeps (Fig 6/7).
inline std::vector<const workloads::WorkloadSpec *> sweepPrograms() {
  return {workloads::findWorkload("PR"), workloads::findWorkload("LR"),
          workloads::findWorkload("CC"), workloads::findWorkload("BC")};
}

} // namespace bench
} // namespace panthera

#endif // PANTHERA_BENCH_BENCHCOMMON_H
