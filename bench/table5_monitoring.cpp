//===- bench/table5_monitoring.cpp - Table 5 reproduction ------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 5: dynamic monitoring and migration under Panthera -- the number
/// of monitored RDD method calls and the number of (logical) RDDs that
/// dynamic migration moved, per program.
///
/// Paper: PR 328/0, KM 550/0, LR 333/0, TC 217/0, CC 2945/1, SSSP 3632/1,
/// BC 336/0. The monitoring overhead is below 1% everywhere; only the
/// GraphX programs see migrations (stale vertex-RDD generations demoted).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <set>

using namespace panthera;
using namespace panthera::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Table 5",
         "Dynamic monitoring and migration (Panthera, 64GB heap, 1/3 DRAM)",
         Scale);

  struct PaperRef {
    const char *Name;
    unsigned Calls;
    unsigned Migrated;
  };
  const PaperRef Refs[] = {{"PR", 328, 0}, {"KM", 550, 0},  {"LR", 333, 0},
                           {"TC", 217, 0}, {"CC", 2945, 1}, {"SSSP", 3632, 1},
                           {"BC", 336, 0}};

  std::printf("\n%-5s %18s %22s %s\n", "", "# calls monitored",
              "# logical RDDs migrated", "paper (calls, migrated)");
  bool GraphxMigrates = true;
  bool OthersDoNot = true;
  for (const PaperRef &Ref : Refs) {
    const workloads::WorkloadSpec *Spec = workloads::findWorkload(Ref.Name);
    // The GraphX programs need old-gen DRAM pressure for stale vertex
    // generations to be demoted, as on the paper's fuller heaps.
    bool IsGraphX =
        Spec->ShortName == "CC" || Spec->ShortName == "SSSP";
    unsigned HeapGB = IsGraphX ? 32 : 64;
    core::RuntimeConfig Config;
    Config.Policy = gc::PolicyKind::Panthera;
    Config.HeapPaperGB = HeapGB;
    Config.DramRatio = 1.0 / 3.0;
    core::Runtime RT(Config);
    Spec->Run(RT, Scale);

    // Map migrated RDD instances back to driver variables (each loop
    // iteration creates a fresh instance of the same logical RDD).
    std::set<std::string> MigratedVars;
    for (uint32_t Id : RT.collector().migratedRddIds()) {
      std::string Var = RT.ctx().varNameOf(Id);
      MigratedVars.insert(Var.empty() ? "<intermediate>" : Var);
    }
    core::RunReport Report = RT.report();
    std::string VarList;
    for (const std::string &V : MigratedVars)
      VarList += (VarList.empty() ? "" : ", ") + V;
    std::printf("%-5s %18llu %22zu (%u, %u)%s%s\n", Ref.Name,
                static_cast<unsigned long long>(Report.MonitoredCalls),
                MigratedVars.size(), Ref.Calls, Ref.Migrated,
                VarList.empty() ? "" : "   migrated: ", VarList.c_str());
    if (IsGraphX)
      GraphxMigrates &= !MigratedVars.empty();
    else
      OthersDoNot &= MigratedVars.empty();
  }

  std::printf("\nshape checks:\n");
  std::printf("  only the GraphX programs migrate RDDs: %s\n",
              GraphxMigrates && OthersDoNot ? "yes" : "NO");
  std::printf("  (monitored-call magnitudes are in the paper's hundreds-to-"
              "thousands range)\n");
  return 0;
}
