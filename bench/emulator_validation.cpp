//===- bench/emulator_validation.cpp - Memory-model validation -------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Validation of the hybrid-memory model, in the spirit of the paper's
/// §5.1 validation of its NUMA-based emulator against Quartz: drive
/// synthetic access patterns through HybridMemory and check that the
/// *achieved* latencies and bandwidths equal the configured Table 2
/// device characteristics:
///
///   * dependent (pointer-chase) reads see the full per-device latency,
///     NVM:DRAM = 2.5x (the paper's emulated one-hop remote ratio);
///   * sequential streams run at device bandwidth (30 / 10 GB/s);
///   * GC-actor traffic is bandwidth-bound on both devices (3x ratio).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "memsim/HybridMemory.h"

using namespace panthera;
using namespace panthera::bench;
using namespace panthera::memsim;

namespace {

struct Measured {
  double NsPerLine;
  double EffectiveGBs;
};

/// Issues \p Lines cache-line reads at \p StrideBytes and reports the
/// average simulated cost per line and effective bandwidth.
Measured drive(Device Dev, uint64_t StrideBytes, Actor A, uint64_t Lines) {
  MemoryTechnology Tech;
  CacheConfig Cache;
  HybridMemory Mem(64 * PaperGB, Tech, Cache);
  if (Dev == Device::NVM)
    Mem.map().setRange(0, 64 * PaperGB, Device::NVM);
  Mem.setActor(A);
  double Before = Mem.totalTimeNs();
  uint64_t Addr = 0;
  const uint64_t Span = 48 * PaperGB; // far larger than the cache
  for (uint64_t I = 0; I != Lines; ++I) {
    Mem.onAccess(Addr % Span, 8, /*IsWrite=*/false);
    Addr += StrideBytes;
  }
  double Ns = Mem.totalTimeNs() - Before;
  Measured M;
  M.NsPerLine = Ns / static_cast<double>(Lines);
  M.EffectiveGBs = static_cast<double>(Lines) * 64.0 / Ns; // bytes per ns
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("emulator validation",
         "Achieved device characteristics vs the configured Table 2 "
         "values (Quartz-style calibration check)",
         Scale);
  const uint64_t Lines = 200000;
  MemoryTechnology Tech;

  // Pointer-chase: a large prime stride defeats the stream prefetcher.
  Measured DramChase = drive(Device::DRAM, 4099 * 64, Actor::Mutator, Lines);
  Measured NvmChase = drive(Device::NVM, 4099 * 64, Actor::Mutator, Lines);
  // Streams: unit stride.
  Measured DramSeq = drive(Device::DRAM, 64, Actor::Mutator, Lines);
  Measured NvmSeq = drive(Device::NVM, 64, Actor::Mutator, Lines);
  // GC tracing (bandwidth-bound by design).
  Measured DramGc = drive(Device::DRAM, 64, Actor::Gc, Lines);
  Measured NvmGc = drive(Device::NVM, 64, Actor::Gc, Lines);

  std::printf("\n%-36s %10s %10s %12s\n", "pattern", "DRAM", "NVM",
              "expected");
  std::printf("%-36s %7.1f ns %7.1f ns   %.0f / %.0f ns (lat/MLP)\n",
              "dependent read latency (per line)", DramChase.NsPerLine,
              NvmChase.NsPerLine, Tech.DramReadLatencyNs / Tech.MutatorMlp,
              Tech.NvmReadLatencyNs / Tech.MutatorMlp);
  std::printf("%-36s %7.1f GB/s %5.1f GB/s   %.0f / %.0f GB/s\n",
              "sequential stream bandwidth", DramSeq.EffectiveGBs,
              NvmSeq.EffectiveGBs, Tech.DramBandwidthGBs,
              Tech.NvmBandwidthGBs);
  std::printf("%-36s %7.1f GB/s %5.1f GB/s   %.0f / %.0f GB/s\n",
              "GC tracing bandwidth", DramGc.EffectiveGBs,
              NvmGc.EffectiveGBs, Tech.DramBandwidthGBs,
              Tech.NvmBandwidthGBs);

  double LatencyRatio = NvmChase.NsPerLine / DramChase.NsPerLine;
  double StreamRatio = DramSeq.EffectiveGBs / NvmSeq.EffectiveGBs;
  std::printf("\nderived ratios:\n");
  std::printf("  NVM:DRAM dependent-read latency:  %.2fx  (paper's "
              "emulator: 2.5x one-hop)\n",
              LatencyRatio);
  std::printf("  DRAM:NVM stream bandwidth:        %.2fx  (Table 2: "
              "3.0x)\n",
              StreamRatio);

  auto Near = [](double A, double B) { return A > 0.9 * B && A < 1.1 * B; };
  std::printf("\nvalidation checks:\n");
  std::printf("  dependent latencies match configuration: %s\n",
              Near(DramChase.NsPerLine,
                   Tech.DramReadLatencyNs / Tech.MutatorMlp) &&
                      Near(NvmChase.NsPerLine,
                           Tech.NvmReadLatencyNs / Tech.MutatorMlp)
                  ? "yes"
                  : "NO");
  std::printf("  stream bandwidths match configuration:   %s\n",
              Near(DramSeq.EffectiveGBs, Tech.DramBandwidthGBs) &&
                      Near(NvmSeq.EffectiveGBs, Tech.NvmBandwidthGBs)
                  ? "yes"
                  : "NO");
  std::printf("  GC is bandwidth-bound on both devices:   %s\n",
              Near(DramGc.EffectiveGBs, Tech.DramBandwidthGBs) &&
                      Near(NvmGc.EffectiveGBs, Tech.NvmBandwidthGBs)
                  ? "yes"
                  : "NO");

  // §5.1's rejected alternative -- injecting a fixed delay at every
  // load/store -- overestimates the NVM penalty because it ignores caches
  // and overlap. Run PageRank under both models to show the difference.
  std::printf("\n§5.1 emulation-approach comparison (PageRank, 64GB "
              "Panthera, 1/3 DRAM):\n");
  const workloads::WorkloadSpec *PR = workloads::findWorkload("PR");
  auto RunWith = [&](EmulationMode Mode) {
    core::RuntimeConfig Config;
    Config.Policy = gc::PolicyKind::Panthera;
    Config.HeapPaperGB = 64;
    Config.DramRatio = 1.0 / 3.0;
    Config.Technology.Mode = Mode;
    core::Runtime RT(Config);
    PR->Run(RT, Scale);
    return RT.report().TotalNs / 1e6;
  };
  double CacheAwareMs = RunWith(EmulationMode::CacheAware);
  double NaiveMs = RunWith(EmulationMode::NaiveInjection);
  std::printf("  cache/MLP-aware model: %8.2f simulated ms\n", CacheAwareMs);
  std::printf("  naive delay injection: %8.2f simulated ms (%.1fx)\n",
              NaiveMs, NaiveMs / CacheAwareMs);
  std::printf("  naive model grossly overestimates (the paper's reason "
              "for building a NUMA emulator): %s\n",
              NaiveMs > 3.0 * CacheAwareMs ? "yes" : "NO");
  return 0;
}
