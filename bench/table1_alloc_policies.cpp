//===- bench/table1_alloc_policies.cpp - Table 1 verification --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 1: Panthera's allocation policies -- initial and final space per
/// (memory tag, object kind). This harness *verifies* each row against the
/// live runtime instead of merely printing the table: it allocates the
/// object shapes, runs collections, and reports where the objects actually
/// ended up.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gc/Collector.h"

using namespace panthera;
using namespace panthera::bench;
using heap::GcRoot;
using heap::ObjRef;

namespace {

const char *spaceName(heap::Heap &H, uint64_t Addr) {
  if (H.eden().contains(Addr) || H.fromSpace().contains(Addr) ||
      H.toSpace().contains(Addr))
    return "Young Gen.";
  if (H.oldDram().contains(Addr))
    return "DRAM of Old Gen.";
  if (H.oldNvm().contains(Addr))
    return "NVM of Old Gen.";
  return "?";
}

struct Row {
  const char *Tag;
  const char *ObjType;
  std::string Initial;
  std::string Final;
  const char *PaperInitial;
  const char *PaperFinal;
};

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Table 1", "Allocation policies, verified against the live "
                    "runtime (not just printed)",
         Scale);

  std::vector<Row> Rows;
  auto Check = [&](const char *TagName, MemTag Tag) {
    core::RuntimeConfig Config;
    Config.Policy = gc::PolicyKind::Panthera;
    Config.HeapPaperGB = 16;
    core::Runtime RT(Config);
    heap::Heap &H = RT.heap();

    // RDD top object: allocated young; rdd_alloc stamps MEMORY_BITS.
    GcRoot Top(H, H.allocPlain(1, 0));
    if (Tag != MemTag::None)
      H.header(Top.get().addr())->setMemTag(Tag);
    std::string TopInitial = spaceName(H, Top.get().addr());

    // RDD array: the rdd_alloc wait state pretenures tagged large arrays.
    if (Tag != MemTag::None)
      H.setPendingArrayTag(Tag, /*RddId=*/99);
    GcRoot Arr(H, H.allocRefArray(2048));
    H.setPendingArrayTag(MemTag::None, 0);
    std::string ArrInitial = spaceName(H, Arr.get().addr());
    H.storeRef(Top.get(), 0, Arr.get());

    // Data objects: always young initially; tracing propagates the tag.
    ObjRef Data = H.allocPlain(0, 16);
    H.storeRef(Arr.get(), 0, Data);
    std::string DataInitial = spaceName(H, Data.addr());

    // One minor GC moves everything to its final space; untagged young
    // objects need to age out, so run a few more for the NONE row.
    for (int I = 0; I != 4; ++I)
      RT.collector().collectMinor("table1");

    Rows.push_back({TagName, "RDD Top", TopInitial,
                    spaceName(H, Top.get().addr()), "Young Gen.",
                    Tag == MemTag::Dram   ? "DRAM of Old Gen."
                    : Tag == MemTag::Nvm ? "NVM of Old Gen."
                                         : "Young Gen. or NVM of Old Gen."});
    Rows.push_back({TagName, "RDD Array", ArrInitial,
                    spaceName(H, Arr.get().addr()),
                    Tag == MemTag::Dram   ? "DRAM of Old Gen."
                    : Tag == MemTag::Nvm ? "NVM of Old Gen."
                                         : "Young Gen.",
                    Tag == MemTag::Dram   ? "DRAM of Old Gen."
                    : Tag == MemTag::Nvm ? "NVM of Old Gen."
                                         : "Young Gen. or NVM of Old Gen."});
    ObjRef MovedData = H.loadRef(Arr.get(), 0);
    Rows.push_back({TagName, "Data Objs", DataInitial,
                    spaceName(H, MovedData.addr()), "Young Gen.",
                    Tag == MemTag::Dram   ? "DRAM of Old Gen."
                    : Tag == MemTag::Nvm ? "NVM of Old Gen."
                                         : "Young Gen. or NVM of Old Gen."});
  };
  Check("DRAM", MemTag::Dram);
  Check("NVM", MemTag::Nvm);
  Check("NONE", MemTag::None);

  std::printf("\n%-5s %-10s %-18s %-18s %s\n", "Tag", "Obj Type",
              "Initial Space", "Final Space", "paper final");
  bool AllMatch = true;
  for (const Row &R : Rows) {
    // The paper's NONE rows allow either young or NVM old gen.
    bool Match = R.Final == R.PaperFinal ||
                 (std::string(R.PaperFinal).find(R.Final) !=
                  std::string::npos);
    AllMatch &= Match;
    std::printf("%-5s %-10s %-18s %-18s %s%s\n", R.Tag, R.ObjType,
                R.Initial.c_str(), R.Final.c_str(), R.PaperFinal,
                Match ? "" : "   <-- MISMATCH");
  }
  std::printf("\nall rows match Table 1: %s\n", AllMatch ? "yes" : "NO");
  return 0;
}
