//===- bench/micro_memsim.cpp - Memsim access-path hot loop ---------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Host-throughput microbenchmark for the simulator's access fast path
/// (docs/memsim.md): the same deterministic access sequence is driven
/// through HybridMemory twice, once on the batched range path and once on
/// the per-line reference loop, and the accesses-per-wall-second of each
/// is recorded into BENCH_hotpath.json.
///
/// Two cases bracket the design space:
///
///   * hot_scan  -- element-wise (8 B) read+write sweeps over a 16 KB
///     resident buffer: all-hit steady state, 8 touches per line. This is
///     the shape of every record-copy loop in the engine and where the
///     batched path's coalesced repeat-hits pay off most. Floor: >= 10x
///     the per-line path, plus an absolute accesses/sec floor.
///   * stream    -- 64 B-stride sweeps over a 48 MB window straddling the
///     DRAM/NVM boundary: miss-dominated, one touch per line, exercising
///     the per-page device resolution and the prefetcher.
///
/// Both runs must agree bit-for-bit on simulated clocks, traffic, cache
/// statistics, and prefetched-miss counts -- that equivalence is asserted
/// here (and more exhaustively in tests/test_memsim.cpp); a divergence is
/// a FATAL error, not a slow run.
///
/// Flags: --no-floor (report only; for sanitizer or loaded hosts),
///        --scale=F (scales iteration counts, default 1.0).
///
//===----------------------------------------------------------------------===//

#include "memsim/HybridMemory.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

using namespace panthera;
using namespace panthera::memsim;

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everything one (case, path) run produces: the host-side throughput and
/// the complete simulated-state fingerprint used for the equivalence check.
struct PathResult {
  double WallMs = 0.0;
  uint64_t Accesses = 0;
  double AccessesPerSec = 0.0;
  // Simulated state -- must match bit-for-bit across paths.
  double MutatorNs = 0.0;
  double GcNs = 0.0;
  uint64_t DramReads = 0, DramWrites = 0, NvmReads = 0, NvmWrites = 0;
  uint64_t Hits = 0, Misses = 0, PrefetchedMisses = 0;
  double TraceSum = 0.0; ///< Folded Fig 8 bandwidth trace.

  bool identicalTo(const PathResult &O) const {
    return MutatorNs == O.MutatorNs && GcNs == O.GcNs &&
           DramReads == O.DramReads && DramWrites == O.DramWrites &&
           NvmReads == O.NvmReads && NvmWrites == O.NvmWrites &&
           Hits == O.Hits && Misses == O.Misses &&
           PrefetchedMisses == O.PrefetchedMisses && TraceSum == O.TraceSum;
  }
};

constexpr uint64_t TotalBytes = 64ull << 20; // 64 MB simulated space
constexpr uint64_t HotAddr = 4096;
constexpr uint64_t HotBytes = 16384; // 256 lines: resident in the 20 KB LLC
constexpr uint64_t StreamAddr = 8ull << 20;
constexpr uint64_t StreamBytes = 48ull << 20; // straddles the DRAM/NVM split

/// One simulator per run so cache/prefetcher state never leaks between
/// paths; the second half of the space is NVM so page-run device
/// resolution actually has boundaries to cross.
PathResult drive(AccessPathMode Path, bool Hot, uint64_t Iters) {
  HybridMemory Mem(TotalBytes, MemoryTechnology{}, CacheConfig{});
  Mem.map().setRange(TotalBytes / 2, TotalBytes, Device::NVM);
  Mem.setAccessPath(Path);

  PathResult R;
  double Start = nowMs();
  if (Hot) {
    // Read sweep + write sweep per iteration, 8 B elements: after the
    // first sweep installs the 256 lines, every access is an LLC hit.
    for (uint64_t I = 0; I != Iters; ++I) {
      Mem.onAccessRange(HotAddr, HotBytes, false, 8);
      Mem.onAccessRange(HotAddr, HotBytes, true, 8);
      R.Accesses += 2 * (HotBytes / 8);
    }
  } else {
    // Line-stride sweeps across 48 MB: far larger than the LLC, so every
    // line misses; a 4 KB call granularity matches the heap's bulk ops.
    for (uint64_t I = 0; I != Iters; ++I) {
      bool Write = (I & 1) != 0;
      for (uint64_t Off = 0; Off != StreamBytes; Off += 4096) {
        Mem.onAccessRange(StreamAddr + Off, 4096, Write, 64);
        R.Accesses += 4096 / 64;
      }
    }
  }
  R.WallMs = nowMs() - Start;
  R.AccessesPerSec = static_cast<double>(R.Accesses) / (R.WallMs / 1e3);

  R.MutatorNs = Mem.mutatorTimeNs();
  R.GcNs = Mem.gcTimeNs();
  const TrafficCounters &D = Mem.traffic(Device::DRAM);
  const TrafficCounters &N = Mem.traffic(Device::NVM);
  R.DramReads = D.LineReads;
  R.DramWrites = D.LineWrites;
  R.NvmReads = N.LineReads;
  R.NvmWrites = N.LineWrites;
  R.Hits = Mem.cacheHits();
  R.Misses = Mem.cacheMisses();
  R.PrefetchedMisses = Mem.prefetchedMisses();
  for (const EpochSample &E : Mem.bandwidthTrace())
    R.TraceSum += E.DramReadBytes + 2.0 * E.DramWriteBytes +
                  3.0 * E.NvmReadBytes + 5.0 * E.NvmWriteBytes;
  return R;
}

void printRow(const char *Name, const char *PathName, const PathResult &R) {
  std::printf("%10s %9s %12.1f ms %14.0f acc/s  simNs=%.0f hits=%llu "
              "misses=%llu\n",
              Name, PathName, R.WallMs, R.AccessesPerSec, R.MutatorNs,
              static_cast<unsigned long long>(R.Hits),
              static_cast<unsigned long long>(R.Misses));
}

void emitJson(std::FILE *Out, const char *Name, const PathResult &B,
              const PathResult &P, bool Last) {
  std::fprintf(
      Out,
      "    {\"name\": \"%s\",\n"
      "     \"batched\":  {\"wall_ms\": %.3f, \"accesses\": %llu, "
      "\"accesses_per_sec\": %.1f},\n"
      "     \"per_line\": {\"wall_ms\": %.3f, \"accesses\": %llu, "
      "\"accesses_per_sec\": %.1f},\n"
      "     \"speedup\": %.3f, \"identical_sim_state\": %s}%s\n",
      Name, B.WallMs, static_cast<unsigned long long>(B.Accesses),
      B.AccessesPerSec, P.WallMs,
      static_cast<unsigned long long>(P.Accesses), P.AccessesPerSec,
      B.AccessesPerSec / P.AccessesPerSec, B.identicalTo(P) ? "true" : "false",
      Last ? "" : ",");
}

} // namespace

int main(int Argc, char **Argv) {
  bool EnforceFloors = true;
  double Scale = 1.0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--no-floor") == 0)
      EnforceFloors = false;
    else if (std::strncmp(Argv[I], "--scale=", 8) == 0)
      Scale = std::stod(Argv[I] + 8);
    else {
      std::fprintf(stderr, "usage: %s [--no-floor] [--scale=F]\n", Argv[0]);
      return 2;
    }
  }

  const auto HotIters = static_cast<uint64_t>(2000 * Scale);
  const auto StreamIters = static_cast<uint64_t>(4 * Scale);

  std::printf("== micro_memsim: batched vs per-line access path ==\n");
  std::printf("hot buffer %llu KB, stream window %llu MB, scale %.2f\n\n",
              static_cast<unsigned long long>(HotBytes >> 10),
              static_cast<unsigned long long>(StreamBytes >> 20), Scale);

  // Best-of-3 per point: the simulated state is deterministic (identical
  // every repetition); only host wall-clock is noisy, and the minimum is
  // the least-disturbed measurement.
  auto Best = [](AccessPathMode Path, bool Hot, uint64_t Iters) {
    PathResult R = drive(Path, Hot, Iters);
    for (int Rep = 1; Rep != 3; ++Rep) {
      PathResult Again = drive(Path, Hot, Iters);
      if (Again.WallMs < R.WallMs)
        R = Again;
    }
    return R;
  };
  PathResult HotB = Best(AccessPathMode::Batched, true, HotIters);
  PathResult HotP = Best(AccessPathMode::PerLine, true, HotIters);
  PathResult StreamB = Best(AccessPathMode::Batched, false, StreamIters);
  PathResult StreamP = Best(AccessPathMode::PerLine, false, StreamIters);

  printRow("hot_scan", "batched", HotB);
  printRow("hot_scan", "per-line", HotP);
  printRow("stream", "batched", StreamB);
  printRow("stream", "per-line", StreamP);

  // The contract first: both paths must describe the same simulated run.
  if (!HotB.identicalTo(HotP) || !StreamB.identicalTo(StreamP)) {
    std::fprintf(stderr,
                 "FATAL: batched and per-line paths diverged on simulated "
                 "state (clock/traffic/cache/trace)\n");
    return 1;
  }

  double HotSpeedup = HotB.AccessesPerSec / HotP.AccessesPerSec;
  double StreamSpeedup = StreamB.AccessesPerSec / StreamP.AccessesPerSec;
  std::printf("\nspeedup: hot_scan %.2fx (floor 10x), stream %.2fx "
              "(reported only)\n",
              HotSpeedup, StreamSpeedup);

  // Absolute floor on the production path, calibrated with >= 3x headroom
  // against a Release build of this container (observed ~1.1e9 acc/s hot).
  constexpr double HotAbsFloor = 1.0e8;

  std::FILE *Out = std::fopen("BENCH_hotpath.json", "w");
  if (!Out) {
    std::perror("BENCH_hotpath.json");
    return 1;
  }
  std::fprintf(Out, "{\n  \"scale\": %.3f,\n  \"cases\": [\n", Scale);
  emitJson(Out, "hot_scan", HotB, HotP, false);
  emitJson(Out, "stream", StreamB, StreamP, true);
  std::fprintf(Out,
               "  ],\n  \"floors\": {\"hot_speedup\": 10.0, "
               "\"hot_accesses_per_sec\": %.1e, \"enforced\": %s}\n}\n",
               HotAbsFloor, EnforceFloors ? "true" : "false");
  std::fclose(Out);
  std::printf("wrote BENCH_hotpath.json\n");

  if (EnforceFloors) {
    if (HotSpeedup < 10.0) {
      std::fprintf(stderr,
                   "FAIL: hot_scan speedup %.2fx below the 10x floor\n",
                   HotSpeedup);
      return 1;
    }
    if (HotB.AccessesPerSec < HotAbsFloor) {
      std::fprintf(stderr,
                   "FAIL: batched hot_scan %.0f acc/s below the %.1e floor\n",
                   HotB.AccessesPerSec, HotAbsFloor);
      return 1;
    }
  }
  return 0;
}
