//===- bench/fig2c_motivation.cpp - Fig 2(c) reproduction -----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fig 2(c): Spark PageRank on (a) 32 GB DRAM only, (b) 32 GB DRAM + 88 GB
/// NVM managed by the OS (Unmanaged), and (c) the same hybrid managed by
/// Panthera -- elapsed time and energy normalized to a 120 GB DRAM-only
/// system.
///
/// Paper: Unmanaged = 1.23x time / 1.47x energy vs 32GB-DRAM-only...
/// normalized to 120GB DRAM: DRAM-32 (1.42, 0.55), Unmanaged (1.23, 0.81),
/// Panthera (1.00, 0.60).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace panthera;
using namespace panthera::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Fig 2(c)", "PageRank motivation: 32GB DRAM vs 32+88GB hybrid, "
                     "normalized to 120GB DRAM-only",
         Scale);
  const workloads::WorkloadSpec *PR = workloads::findWorkload("PR");

  // Baseline: 120 GB, all DRAM.
  Experiment Base =
      runExperiment(*PR, gc::PolicyKind::DramOnly, 120, 1.0, Scale);
  // 32 GB DRAM only (same machine, less memory): a 32 GB heap.
  Experiment Dram32 =
      runExperiment(*PR, gc::PolicyKind::DramOnly, 32, 1.0, Scale);
  // 32 GB DRAM + 88 GB NVM: a 120 GB heap, DRAM ratio 32/120.
  Experiment Unmanaged =
      runExperiment(*PR, gc::PolicyKind::Unmanaged, 120, 32.0 / 120.0, Scale);
  Experiment Panthera =
      runExperiment(*PR, gc::PolicyKind::Panthera, 120, 32.0 / 120.0, Scale);

  std::printf("\n%-34s %14s %14s   %s\n", "configuration", "elapsed-time",
              "energy", "paper (time, energy)");
  auto Row = [&](const char *Name, const Experiment &E, const char *Paper) {
    std::printf("%-34s %14.2f %14.2f   %s\n", Name,
                E.Report.TotalNs / Base.Report.TotalNs,
                E.Report.TotalJoules / Base.Report.TotalJoules, Paper);
  };
  Row("120GB DRAM only (baseline)", Base, "(1.00, 1.00)");
  Row("32GB DRAM only", Dram32, "(1.42, 0.55)");
  Row("32GB DRAM + 88GB NVM, Unmanaged", Unmanaged, "(1.23, 0.81)");
  Row("32GB DRAM + 88GB NVM, Panthera", Panthera, "(1.00, 0.60)");

  std::printf("\nshape checks:\n");
  std::printf("  adding NVM helps vs the 32GB DRAM-only box:   %s\n",
              Unmanaged.Report.TotalNs < Dram32.Report.TotalNs ? "yes"
                                                               : "NO");
  std::printf("  Panthera faster than Unmanaged on the hybrid: %s\n",
              Panthera.Report.TotalNs < Unmanaged.Report.TotalNs ? "yes"
                                                                 : "NO");
  std::printf("  Panthera approaches 120GB DRAM-only time:     %s\n",
              Panthera.Report.TotalNs < 1.08 * Base.Report.TotalNs ? "yes"
                                                                   : "NO");
  std::printf("  hybrid energy well below 120GB DRAM-only:     %s\n",
              Panthera.Report.TotalJoules < 0.8 * Base.Report.TotalJoules
                  ? "yes"
                  : "NO");
  std::printf("  checksums agree across configurations:        %s\n",
              Base.Checksum == Dram32.Checksum &&
                      Base.Checksum == Unmanaged.Checksum &&
                      Base.Checksum == Panthera.Checksum
                  ? "yes"
                  : "NO");
  return 0;
}
