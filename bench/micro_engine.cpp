//===- bench/micro_engine.cpp - Engine-operator micro costs ----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark micro costs of the RDD engine's operators on the host
/// machine: streaming map throughput, reduceByKey (full shuffle), join
/// probing, sortByKey, serialized vs deserialized cache reads, and the
/// DSL front-end (parse + infer). Complements micro_heap.
///
//===----------------------------------------------------------------------===//

#include "analysis/TagInference.h"
#include "core/Runtime.h"
#include "dsl/Parser.h"

#include <benchmark/benchmark.h>

using namespace panthera;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::SourceData;

namespace {

struct EngineFixture {
  EngineFixture() {
    core::RuntimeConfig Config;
    Config.Policy = gc::PolicyKind::Panthera;
    Config.HeapPaperGB = 32;
    RT = std::make_unique<core::Runtime>(Config);
    Data.resize(RT->ctx().config().NumPartitions);
    for (int64_t I = 0; I != 50000; ++I)
      Data[static_cast<size_t>(I) % Data.size()].push_back(
          {I % 5000, 1.0});
  }
  std::unique_ptr<core::Runtime> RT;
  SourceData Data;
};

void BM_MapCountPipeline(benchmark::State &State) {
  EngineFixture F;
  for (auto _ : State) {
    int64_t N = F.RT->ctx()
                    .source(&F.Data)
                    .map([](RddContext &C, ObjRef T) {
                      return C.makeTuple(C.key(T), C.value(T) + 1.0);
                    })
                    .count();
    benchmark::DoNotOptimize(N);
  }
  State.SetItemsProcessed(State.iterations() * 50000);
}
BENCHMARK(BM_MapCountPipeline);

void BM_ReduceByKeyShuffle(benchmark::State &State) {
  EngineFixture F;
  for (auto _ : State) {
    int64_t N = F.RT->ctx()
                    .source(&F.Data)
                    .reduceByKey([](double A, double B) { return A + B; })
                    .count();
    benchmark::DoNotOptimize(N);
  }
  State.SetItemsProcessed(State.iterations() * 50000);
}
BENCHMARK(BM_ReduceByKeyShuffle);

void BM_CoPartitionedJoin(benchmark::State &State) {
  EngineFixture F;
  Rdd Left = F.RT->ctx().source(&F.Data).reduceByKey(
      [](double A, double) { return A; });
  Rdd Right = F.RT->ctx().source(&F.Data).reduceByKey(
      [](double A, double) { return A; });
  Left.count(); // materialize both sides once
  Right.count();
  for (auto _ : State) {
    int64_t N = Left.join(Right,
                          [](RddContext &C, ObjRef LT, double RV) {
                            return C.makeTuple(C.key(LT),
                                               C.value(LT) + RV);
                          })
                    .count();
    benchmark::DoNotOptimize(N);
  }
  State.SetItemsProcessed(State.iterations() * 5000);
}
BENCHMARK(BM_CoPartitionedJoin);

void BM_SortByKey(benchmark::State &State) {
  EngineFixture F;
  for (auto _ : State) {
    int64_t N = F.RT->ctx().source(&F.Data).sortByKey().count();
    benchmark::DoNotOptimize(N);
  }
  State.SetItemsProcessed(State.iterations() * 50000);
}
BENCHMARK(BM_SortByKey);

void BM_CachedReadDeserialized(benchmark::State &State) {
  EngineFixture F;
  Rdd Cached = F.RT->ctx().source(&F.Data).persistAs(
      "c", rdd::StorageLevel::MemoryOnly);
  Cached.count();
  for (auto _ : State)
    benchmark::DoNotOptimize(Cached.count());
  State.SetItemsProcessed(State.iterations() * 50000);
}
BENCHMARK(BM_CachedReadDeserialized);

void BM_CachedReadSerialized(benchmark::State &State) {
  EngineFixture F;
  Rdd Cached = F.RT->ctx().source(&F.Data).persistAs(
      "c", rdd::StorageLevel::MemoryOnlySer);
  Cached.count();
  for (auto _ : State)
    benchmark::DoNotOptimize(Cached.count());
  State.SetItemsProcessed(State.iterations() * 50000);
}
BENCHMARK(BM_CachedReadSerialized);

const char *FrontEndProgram = R"(
program pagerank {
  lines = textFile("graph");
  links = lines.map().distinct().groupByKey().persist(MEMORY_ONLY);
  ranks = links.mapValues();
  for (i in 1..iters) {
    contribs = links.join(ranks).flatMap().persist(MEMORY_AND_DISK_SER);
    ranks = contribs.reduceByKey().mapValues();
  }
  ranks.count();
}
)";

void BM_DslParseAndInfer(benchmark::State &State) {
  for (auto _ : State) {
    std::vector<dsl::Diagnostic> Diags;
    dsl::Program P = dsl::parseDriverProgram(FrontEndProgram, Diags);
    analysis::AnalysisResult R = analysis::inferMemoryTags(P);
    benchmark::DoNotOptimize(R.Vars.size());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_DslParseAndInfer);

} // namespace

BENCHMARK_MAIN();
