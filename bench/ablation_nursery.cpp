//===- bench/ablation_nursery.cpp - §5.2 nursery-size sweep ----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// §5.2's nursery-fraction sweep: 1/4, 1/5, and 1/6 of the heap perform
/// within noise of each other while 1/7 is worse, so the paper settles on
/// 1/6 (leaving the most DRAM for the old generation's hot RDDs).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"

using namespace panthera;
using namespace panthera::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("§5.2 nursery sweep", "Panthera, 64GB heap, 1/3 DRAM; nursery "
                               "fraction 1/4..1/7",
         Scale);

  const double Fractions[] = {1.0 / 4.0, 1.0 / 5.0, 1.0 / 6.0, 1.0 / 7.0};
  const char *Labels[] = {"1/4", "1/5", "1/6", "1/7"};

  std::printf("\n%-5s %10s %10s %10s %10s   (simulated ms)\n", "", "1/4",
              "1/5", "1/6", "1/7");
  double Mean[4] = {0, 0, 0, 0};
  int Programs = 0;
  for (const char *Name : {"PR", "KM", "CC", "BC"}) {
    const workloads::WorkloadSpec *Spec = workloads::findWorkload(Name);
    std::printf("%-5s", Name);
    double Times[4];
    for (int I = 0; I != 4; ++I) {
      Overrides O;
      O.NurseryFraction = Fractions[I];
      Experiment E = runExperiment(*Spec, gc::PolicyKind::Panthera, 64,
                                   1.0 / 3.0, Scale, O);
      Times[I] = E.Report.TotalNs / 1e6;
      std::printf(" %10.2f", Times[I]);
    }
    std::printf("\n");
    for (int I = 0; I != 4; ++I)
      Mean[I] += Times[I] / Times[2]; // normalize to the 1/6 column
    ++Programs;
  }
  std::printf("\nnormalized to the 1/6 configuration:\n");
  for (int I = 0; I != 4; ++I)
    std::printf("  nursery %s: %.3f\n", Labels[I], Mean[I] / Programs);
  std::printf("\npaper: 1/4, 1/5, 1/6 are within noise; 1/7 is worse; 1/6 "
              "chosen to leave DRAM for the old generation.\n");
  return 0;
}
