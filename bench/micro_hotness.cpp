//===- bench/micro_hotness.cpp - Static vs dynamic placement crossover -----===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Sweeps the dynamic-migration hotness threshold on the shifting-working-
/// set workload (SW) and compares against static Panthera placement. SW is
/// built so the §3 static analysis is blind: the driver program only names
/// one of six persisted segments, but the actually-hot segment rotates at
/// runtime, so static placement pins most hot phases to NVM. The online
/// profiler finds the rotation and the migration engine promotes the hot
/// segment between GCs, which must win simulated time at some threshold --
/// the static-vs-dynamic crossover recorded in BENCH_hotness.json.
///
/// Enforced floors (exit 1 on violation):
///  * every configuration reproduces the baseline checksum bit-for-bit;
///  * --hotness-sample=0 reproduces static Panthera's simulated time
///    exactly (the profiling-off byte-identity contract);
///  * at least one threshold beats static placement in simulated time.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <vector>

using namespace panthera;
using namespace panthera::bench;

namespace {

struct DynResult {
  double Threshold = 0.0;
  double TotalMs = 0.0;
  double MutatorMs = 0.0;
  double GcMs = 0.0;
  double Checksum = 0.0;
  uint64_t PagesToDram = 0;
  uint64_t Steps = 0;
};

DynResult runSw(gc::PolicyKind Policy, double Scale, uint64_t SampleEvery,
                double Threshold) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("SW");
  core::RuntimeConfig Config;
  Config.Policy = Policy;
  Config.HotnessSampleEvery = SampleEvery;
  Config.MigrateHotThreshold = Threshold;
  core::Runtime RT(Config);
  DynResult R;
  R.Threshold = Threshold;
  R.Checksum = Spec->Run(RT, Scale);
  core::RunReport Report = RT.report();
  R.TotalMs = Report.TotalNs / 1e6;
  R.MutatorMs = Report.MutatorNs / 1e6;
  R.GcMs = Report.GcNs / 1e6;
  if (memsim::MigrationEngine *M = RT.migrationEngine()) {
    R.PagesToDram = M->stats().PagesToDram;
    R.Steps = M->stats().Steps;
  }
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("micro: hotness crossover",
         "static Panthera vs --policy=dynamic threshold sweep on the "
         "shifting-working-set workload",
         Scale);

  DynResult Static =
      runSw(gc::PolicyKind::Panthera, Scale, /*SampleEvery=*/64, 2.0);
  DynResult Off = runSw(gc::PolicyKind::PantheraDynamic, Scale,
                        /*SampleEvery=*/0, 2.0);

  const std::vector<double> Thresholds = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
  std::vector<DynResult> Sweep;
  for (double T : Thresholds)
    Sweep.push_back(
        runSw(gc::PolicyKind::PantheraDynamic, Scale, /*SampleEvery=*/64, T));

  std::printf("\n%-22s %10s %10s %10s %12s %8s\n", "configuration",
              "total ms", "mutator", "gc", "pages->DRAM", "steps");
  std::printf("%-22s %10.3f %10.3f %10.3f %12s %8s\n", "static Panthera",
              Static.TotalMs, Static.MutatorMs, Static.GcMs, "-", "-");
  std::printf("%-22s %10.3f %10.3f %10.3f %12s %8s\n",
              "dynamic, sample=0", Off.TotalMs, Off.MutatorMs, Off.GcMs, "-",
              "-");
  for (const DynResult &R : Sweep)
    std::printf("dynamic, thresh=%-6.1f %10.3f %10.3f %10.3f %12llu %8llu\n",
                R.Threshold, R.TotalMs, R.MutatorMs, R.GcMs,
                static_cast<unsigned long long>(R.PagesToDram),
                static_cast<unsigned long long>(R.Steps));

  bool ChecksumsOk = Off.Checksum == Static.Checksum;
  const DynResult *Best = nullptr;
  for (const DynResult &R : Sweep) {
    ChecksumsOk = ChecksumsOk && R.Checksum == Static.Checksum;
    if (!Best || R.TotalMs < Best->TotalMs)
      Best = &R;
  }
  bool OffMatchesStatic = Off.TotalMs == Static.TotalMs;
  bool DynamicWins = Best && Best->TotalMs < Static.TotalMs;
  double SpeedupPct =
      Best ? 100.0 * (Static.TotalMs - Best->TotalMs) / Static.TotalMs : 0.0;

  std::printf("\nshape checks:\n");
  std::printf("  all checksums match static placement:        %s\n",
              ChecksumsOk ? "yes" : "NO");
  std::printf("  sample=0 reproduces static time exactly:     %s\n",
              OffMatchesStatic ? "yes" : "NO");
  std::printf("  dynamic beats static at some threshold:      %s "
              "(best %.1f: %+.2f%%)\n",
              DynamicWins ? "yes" : "NO", Best ? Best->Threshold : 0.0,
              SpeedupPct);

  std::FILE *Out = std::fopen("BENCH_hotness.json", "w");
  if (!Out) {
    std::perror("BENCH_hotness.json");
    return 1;
  }
  std::fprintf(Out, "{\n  \"scale\": %.3f,\n  \"workload\": \"SW\",\n", Scale);
  std::fprintf(Out,
               "  \"static\": {\"total_ms\": %.3f, \"mutator_ms\": %.3f, "
               "\"gc_ms\": %.3f},\n",
               Static.TotalMs, Static.MutatorMs, Static.GcMs);
  std::fprintf(Out,
               "  \"dynamic_sample0\": {\"total_ms\": %.3f, "
               "\"identical_to_static\": %s},\n",
               Off.TotalMs, OffMatchesStatic ? "true" : "false");
  std::fprintf(Out, "  \"sweep\": [\n");
  for (size_t I = 0; I != Sweep.size(); ++I) {
    const DynResult &R = Sweep[I];
    std::fprintf(Out,
                 "    {\"threshold\": %.1f, \"total_ms\": %.3f, "
                 "\"mutator_ms\": %.3f, \"gc_ms\": %.3f, "
                 "\"pages_to_dram\": %llu, \"steps\": %llu}%s\n",
                 R.Threshold, R.TotalMs, R.MutatorMs, R.GcMs,
                 static_cast<unsigned long long>(R.PagesToDram),
                 static_cast<unsigned long long>(R.Steps),
                 I + 1 == Sweep.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out,
               "  \"crossover\": {\"best_threshold\": %.1f, "
               "\"speedup_pct\": %.2f, \"dynamic_wins\": %s},\n",
               Best ? Best->Threshold : 0.0, SpeedupPct,
               DynamicWins ? "true" : "false");
  std::fprintf(Out, "  \"floors\": {\"checksums_match\": %s, "
                    "\"sample0_identical\": %s, \"enforced\": true}\n}\n",
               ChecksumsOk ? "true" : "false",
               OffMatchesStatic ? "true" : "false");
  std::fclose(Out);
  std::printf("\nwrote BENCH_hotness.json\n");

  if (!ChecksumsOk) {
    std::fprintf(stderr, "FATAL: a dynamic configuration changed the "
                         "workload checksum\n");
    return 1;
  }
  if (!OffMatchesStatic) {
    std::fprintf(stderr, "FATAL: --hotness-sample=0 did not reproduce "
                         "static Panthera exactly\n");
    return 1;
  }
  if (!DynamicWins) {
    std::fprintf(stderr, "FATAL: no threshold beat static placement on the "
                         "shifting working set\n");
    return 1;
  }
  return 0;
}
