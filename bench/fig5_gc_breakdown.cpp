//===- bench/fig5_gc_breakdown.cpp - Fig 5 reproduction --------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fig 5: per-program computation (mutator) vs GC time under the 64 GB
/// heap for DRAM-only, Panthera, and Unmanaged.
///
/// Paper summary (§5.3): relative to DRAM-only, Unmanaged adds 60.4% GC
/// time and 6.9% computation time; Panthera adds 4.7% and 4.5%.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"

using namespace panthera;
using namespace panthera::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Fig 5", "Computation vs GC time (simulated ms), 64GB heap, "
                  "1/3 DRAM",
         Scale);

  std::printf("\n%-5s | %-26s | %-26s | %-26s\n", "",
              "DRAM-only  comp    gc", "Panthera   comp    gc",
              "Unmanaged  comp    gc");
  std::vector<double> GcOverheadP, GcOverheadU, MutOverheadP, MutOverheadU;
  for (const workloads::WorkloadSpec &Spec : workloads::allWorkloads()) {
    Experiment Base =
        runExperiment(Spec, gc::PolicyKind::DramOnly, 64, 1.0, Scale);
    Experiment P = runExperiment(Spec, gc::PolicyKind::Panthera, 64,
                                 1.0 / 3.0, Scale);
    Experiment U = runExperiment(Spec, gc::PolicyKind::Unmanaged, 64,
                                 1.0 / 3.0, Scale);
    // Read the split clocks from the metrics registry: the same numbers
    // panthera_sim --metrics-json exports (see docs/observability.md).
    auto Mut = [](const Experiment &E) {
      return E.Metrics.gaugeValue("time.mutator_ns");
    };
    auto Gc = [](const Experiment &E) {
      return E.Metrics.gaugeValue("time.gc_ns");
    };
    auto Ms = [](double Ns) { return Ns / 1e6; };
    std::printf("%-5s |        %7.2f %7.2f   |        %7.2f %7.2f   |  "
                "      %7.2f %7.2f\n",
                Spec.ShortName.c_str(), Ms(Mut(Base)), Ms(Gc(Base)),
                Ms(Mut(P)), Ms(Gc(P)), Ms(Mut(U)), Ms(Gc(U)));
    GcOverheadP.push_back(Gc(P) / Gc(Base));
    GcOverheadU.push_back(Gc(U) / Gc(Base));
    MutOverheadP.push_back(Mut(P) / Mut(Base));
    MutOverheadU.push_back(Mut(U) / Mut(Base));
  }

  std::printf("\noverheads vs DRAM-only (geomean):\n");
  std::printf("  Unmanaged: GC %+.1f%%  computation %+.1f%%   "
              "(paper: +60.4%% / +6.9%%)\n",
              100.0 * (geomean(GcOverheadU) - 1.0),
              100.0 * (geomean(MutOverheadU) - 1.0));
  std::printf("  Panthera:  GC %+.1f%%  computation %+.1f%%   "
              "(paper:  +4.7%% / +4.5%%)\n",
              100.0 * (geomean(GcOverheadP) - 1.0),
              100.0 * (geomean(MutOverheadP) - 1.0));
  std::printf("\nshape checks:\n");
  std::printf("  Unmanaged GC blowup >> Panthera GC overhead: %s\n",
              geomean(GcOverheadU) > geomean(GcOverheadP) ? "yes" : "NO");
  std::printf("  GC penalty exceeds computation penalty (Unmanaged): %s\n",
              geomean(GcOverheadU) > geomean(MutOverheadU) ? "yes" : "NO");
  return 0;
}
