//===- bench/micro_cluster.cpp - Multi-executor weak scaling --------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Weak-scaling sweep of the cluster simulation (docs/cluster.md) at
/// --executors = 1/2/4/8 for two shuffle-heavy programs:
///
///   * terasort -- random 48-bit keys through sortByKey, the purest
///     shuffle: every record crosses the partitioner;
///   * pagerank -- the paper's flagship workload, a join+reduce pipeline
///     with a persisted edge list that the locality scheduler can chase.
///
/// Two phases per program. The contract phase runs a fixed-size dataset at
/// every executor count and FATALs unless all checksums match the 1-executor
/// run: the cluster only adds accounting and placement, never results. The
/// weak-scaling phase then grows the dataset proportionally to the executor
/// count and records simulated time, PROCESS_LOCAL fraction, remote fetch
/// volume, and fabric time into BENCH_cluster.json.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Random.h"

#include <cstdio>

using namespace panthera;
using namespace panthera::bench;

namespace {

constexpr unsigned ExecutorCounts[] = {1, 2, 4, 8};

struct ClusterPoint {
  unsigned Executors = 0;
  double Checksum = 0.0;
  double SimMs = 0.0;
  double LocalFraction = 0.0; ///< PROCESS_LOCAL / placed tasks.
  uint64_t RemoteBlocks = 0;
  uint64_t RemoteKB = 0;
  double NetMs = 0.0; ///< Fabric time on the driver clock.
};

/// Fills the point's cluster columns from the runtime (zeros at N == 1,
/// where no cluster exists and nothing is remote).
void readClusterStats(core::Runtime &RT, ClusterPoint &P) {
  P.SimMs = RT.report().TotalNs / 1e6;
  if (const cluster::Cluster *CL = RT.clusterSim()) {
    const cluster::ClusterStats &CS = CL->stats();
    uint64_t Placed = CS.ProcessLocalTasks + CS.AnyTasks;
    P.LocalFraction =
        Placed ? static_cast<double>(CS.ProcessLocalTasks) / Placed : 0.0;
    P.RemoteBlocks = CS.RemoteBlocksFetched;
    P.RemoteKB = CS.RemoteBytesFetched / 1024;
    P.NetMs = CS.NetworkNs / 1e6;
  } else {
    P.LocalFraction = 1.0;
  }
}

/// Terasort: 48-bit random keys, fully shuffled by sortByKey. The checksum
/// is order-weighted so a mis-sorted or dropped record cannot cancel out.
ClusterPoint runTerasort(unsigned Executors, double Scale) {
  const auto N = static_cast<int64_t>(40000 * Scale);
  rdd::SourceData Data(16);
  SplitMix64 Rng(77);
  for (int64_t I = 0; I != N; ++I)
    Data[static_cast<size_t>(I) % Data.size()].push_back(
        {static_cast<int64_t>(Rng.next() >> 16),
         static_cast<double>(I % 1009)});

  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.Engine.NumPartitions = 16;
  Config.Cluster.NumExecutors = Executors;
  core::Runtime RT(Config);

  ClusterPoint P;
  P.Executors = Executors;
  rdd::Rdd Sorted = RT.ctx().source(&Data).sortByKey();
  int64_t Pos = 0;
  for (const rdd::SourceRecord &R : Sorted.collect())
    P.Checksum +=
        static_cast<double>(R.Key % 100003) * static_cast<double>(Pos++ % 97) +
        R.Val;
  readClusterStats(RT, P);
  return P;
}

/// PageRank through the stock workload harness.
ClusterPoint runPageRank(unsigned Executors, double Scale) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("PR");
  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.Cluster.NumExecutors = Executors;
  core::Runtime RT(Config);

  ClusterPoint P;
  P.Executors = Executors;
  P.Checksum = Spec->Run(RT, Scale);
  readClusterStats(RT, P);
  return P;
}

//===----------------------------------------------------------------------===
// Straggler sweep: one degraded executor, speculation on/off
//===----------------------------------------------------------------------===

struct StragglerPoint {
  double Factor = 1.0;
  bool Speculation = true;
  double Checksum = 0.0;
  double MakespanMs = 0.0; ///< Parallel stage time: sum of per-stage maxima.
  double Ratio = 1.0;      ///< Makespan vs this mode's fault-free run.
  uint64_t Launches = 0;
  uint64_t Wins = 0;
  uint64_t Flagged = 0;
  uint64_t Steered = 0;
};

/// Terasort at 4 executors with executor 0 degraded by \p Factor from the
/// first cluster stage on (slow-executor site, nth=1). The makespan --
/// the per-stage maximum of per-executor occupancy, summed over stages --
/// is the simulated parallel completion time a real cluster would see,
/// which is where a straggler hurts and where speculation pays.
StragglerPoint runTerasortStraggler(double Factor, bool Speculation,
                                    double Scale) {
  const auto N = static_cast<int64_t>(40000 * Scale);
  rdd::SourceData Data(16);
  SplitMix64 Rng(77);
  for (int64_t I = 0; I != N; ++I)
    Data[static_cast<size_t>(I) % Data.size()].push_back(
        {static_cast<int64_t>(Rng.next() >> 16),
         static_cast<double>(I % 1009)});

  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.Engine.NumPartitions = 16;
  Config.Cluster.NumExecutors = 4;
  Config.Cluster.SpeculationEnabled = Speculation;
  Config.Cluster.SlowExecutorFactor = Factor;
  if (Factor > 1.0)
    Config.Faults.site(FaultSite::SlowExecutor).FireOnNth = 1;
  core::Runtime RT(Config);

  StragglerPoint P;
  P.Factor = Factor;
  P.Speculation = Speculation;
  rdd::Rdd Sorted = RT.ctx().source(&Data).sortByKey();
  int64_t Pos = 0;
  for (const rdd::SourceRecord &R : Sorted.collect())
    P.Checksum +=
        static_cast<double>(R.Key % 100003) * static_cast<double>(Pos++ % 97) +
        R.Val;
  const cluster::Cluster *CL = RT.clusterSim();
  P.MakespanMs = CL->makespanNs() / 1e6;
  P.Launches = CL->stats().SpeculativeLaunches;
  P.Wins = CL->stats().SpeculativeWins;
  P.Flagged = CL->stats().StragglersFlagged;
  P.Steered = CL->stats().StragglerAvoidedPlacements;
  return P;
}

using RunFn = ClusterPoint (*)(unsigned, double);

struct ProgramSweep {
  const char *Name;
  RunFn Run;
  ClusterPoint Fixed[4]; ///< Contract phase: same dataset at every N.
  ClusterPoint Weak[4];  ///< Weak phase: dataset scaled by N.
};

void printTable(const ProgramSweep &S) {
  std::printf("\n%s, weak scaling (dataset x executors):\n", S.Name);
  std::printf("%6s %12s %10s %14s %12s\n", "execs", "sim(ms)", "local%",
              "remote blocks", "net(ms)");
  for (const ClusterPoint &P : S.Weak)
    std::printf("%6u %12.3f %9.1f%% %14llu %12.3f\n", P.Executors, P.SimMs,
                100.0 * P.LocalFraction,
                static_cast<unsigned long long>(P.RemoteBlocks), P.NetMs);
}

void writePoints(std::FILE *Out, const char *Key, const ClusterPoint *Pts) {
  std::fprintf(Out, "    \"%s\": [\n", Key);
  for (int I = 0; I != 4; ++I)
    std::fprintf(Out,
                 "      {\"executors\": %u, \"sim_ms\": %.3f, "
                 "\"checksum\": %.6f, \"local_fraction\": %.4f, "
                 "\"remote_blocks\": %llu, \"remote_kb\": %llu, "
                 "\"net_ms\": %.3f}%s\n",
                 Pts[I].Executors, Pts[I].SimMs, Pts[I].Checksum,
                 Pts[I].LocalFraction,
                 static_cast<unsigned long long>(Pts[I].RemoteBlocks),
                 static_cast<unsigned long long>(Pts[I].RemoteKB),
                 Pts[I].NetMs, I == 3 ? "" : ",");
  std::fprintf(Out, "    ]");
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("micro_cluster",
         "Multi-executor cluster simulation: result invariance across "
         "executor counts, then weak scaling at 1/2/4/8 executors",
         Scale);

  ProgramSweep Sweeps[2] = {{"terasort", &runTerasort, {}, {}},
                            {"pagerank", &runPageRank, {}, {}}};

  for (ProgramSweep &S : Sweeps) {
    for (int I = 0; I != 4; ++I) {
      S.Fixed[I] = S.Run(ExecutorCounts[I], Scale);
      // The contract: sharding the heap and placing tasks must not change
      // a single record. A weak-scaled dataset can't check this, so the
      // fixed-size phase does.
      if (S.Fixed[I].Checksum != S.Fixed[0].Checksum) {
        std::fprintf(stderr,
                     "FATAL: %s checksum diverged at %u executors "
                     "(%.6f vs %.6f)\n",
                     S.Name, S.Fixed[I].Executors, S.Fixed[I].Checksum,
                     S.Fixed[0].Checksum);
        return 1;
      }
      S.Weak[I] = ExecutorCounts[I] == 1
                      ? S.Fixed[I]
                      : S.Run(ExecutorCounts[I], Scale * ExecutorCounts[I]);
    }
    std::printf("%s: checksums identical at 1/2/4/8 executors (%.6f)\n",
                S.Name, S.Fixed[0].Checksum);
    printTable(S);
  }

  // Straggler sweep (docs/robustness.md "degraded executors"): terasort at
  // 4 executors, executor 0 slowed 1x/4x/16x, speculation on and off. The
  // contract: checksums never move, a speculating driver keeps the 16x
  // straggler's makespan under 2x the fault-free run, and a
  // non-speculating one pays at least 10x.
  constexpr double Factors[] = {1.0, 4.0, 16.0};
  StragglerPoint Straggler[2][3];
  for (int Mode = 0; Mode != 2; ++Mode) {
    bool Spec = Mode == 0;
    for (int F = 0; F != 3; ++F) {
      StragglerPoint &P = Straggler[Mode][F];
      P = runTerasortStraggler(Factors[F], Spec, Scale);
      if (P.Checksum != Sweeps[0].Fixed[0].Checksum) {
        std::fprintf(stderr,
                     "FATAL: terasort checksum diverged under a %.0fx "
                     "straggler (speculation %s): %.6f vs %.6f\n",
                     P.Factor, Spec ? "on" : "off", P.Checksum,
                     Sweeps[0].Fixed[0].Checksum);
        return 1;
      }
      P.Ratio = P.MakespanMs / Straggler[Mode][0].MakespanMs;
    }
  }
  std::printf("\nterasort straggler sweep (4 executors, executor 0 "
              "degraded):\n");
  std::printf("%8s %12s %13s %8s %18s\n", "slowdown", "speculation",
              "makespan(ms)", "ratio", "copies (won)");
  for (int Mode = 0; Mode != 2; ++Mode)
    for (int F = 0; F != 3; ++F) {
      const StragglerPoint &P = Straggler[Mode][F];
      std::printf("%7.0fx %12s %13.3f %7.2fx %10llu (%llu)\n", P.Factor,
                  P.Speculation ? "on" : "off", P.MakespanMs, P.Ratio,
                  static_cast<unsigned long long>(P.Launches),
                  static_cast<unsigned long long>(P.Wins));
    }
  const StragglerPoint &SpecOn16 = Straggler[0][2];
  const StragglerPoint &SpecOff16 = Straggler[1][2];
  // The ratio bounds are scale-dependent: below half scale the dataset is
  // small enough that fixed stage costs dilute the straggler's share of
  // the makespan and the speculation-off ratio dips under 10x. Checksum
  // identity was already enforced above at every scale.
  if (Scale >= 0.5) {
    if (SpecOn16.Ratio >= 2.0 || SpecOff16.Ratio < 10.0) {
      std::fprintf(stderr,
                   "FATAL: straggler contract broken: 16x with speculation "
                   "%.2fx (want < 2x), without %.2fx (want >= 10x)\n",
                   SpecOn16.Ratio, SpecOff16.Ratio);
      return 1;
    }
    std::printf("contract holds: 16x straggler costs %.2fx with speculation, "
                "%.2fx without\n",
                SpecOn16.Ratio, SpecOff16.Ratio);
  } else {
    std::printf("straggler ratio contract skipped at scale %.3f (< 0.5)\n",
                Scale);
  }

  std::FILE *StragglerOut = std::fopen("BENCH_straggler.json", "w");
  if (!StragglerOut) {
    std::perror("BENCH_straggler.json");
    return 1;
  }
  std::fprintf(StragglerOut, "{\n  \"scale\": %.3f,\n", Scale);
  std::fprintf(StragglerOut, "  \"checksums_identical\": true,\n");
  std::fprintf(StragglerOut,
               "  \"spec_on_16x_ratio\": %.4f,\n"
               "  \"spec_off_16x_ratio\": %.4f,\n"
               "  \"points\": [\n",
               SpecOn16.Ratio, SpecOff16.Ratio);
  for (int Mode = 0; Mode != 2; ++Mode)
    for (int F = 0; F != 3; ++F) {
      const StragglerPoint &P = Straggler[Mode][F];
      std::fprintf(StragglerOut,
                   "    {\"slowdown\": %.0f, \"speculation\": %s, "
                   "\"makespan_ms\": %.3f, \"ratio\": %.4f, "
                   "\"checksum\": %.6f, \"copies\": %llu, \"wins\": %llu, "
                   "\"flagged\": %llu, \"steered\": %llu}%s\n",
                   P.Factor, P.Speculation ? "true" : "false", P.MakespanMs,
                   P.Ratio, P.Checksum,
                   static_cast<unsigned long long>(P.Launches),
                   static_cast<unsigned long long>(P.Wins),
                   static_cast<unsigned long long>(P.Flagged),
                   static_cast<unsigned long long>(P.Steered),
                   Mode == 1 && F == 2 ? "" : ",");
    }
  std::fprintf(StragglerOut, "  ]\n}\n");
  std::fclose(StragglerOut);
  std::printf("wrote BENCH_straggler.json\n");

  std::FILE *Out = std::fopen("BENCH_cluster.json", "w");
  if (!Out) {
    std::perror("BENCH_cluster.json");
    return 1;
  }
  std::fprintf(Out, "{\n  \"scale\": %.3f,\n", Scale);
  std::fprintf(Out, "  \"checksums_identical_across_executors\": true,\n");
  for (int S = 0; S != 2; ++S) {
    std::fprintf(Out, "  \"%s\": {\n", Sweeps[S].Name);
    writePoints(Out, "fixed", Sweeps[S].Fixed);
    std::fprintf(Out, ",\n");
    writePoints(Out, "weak", Sweeps[S].Weak);
    std::fprintf(Out, "\n  }%s\n", S == 1 ? "" : ",");
  }
  std::fprintf(Out, "}\n");
  std::fclose(Out);
  std::printf("\nwrote BENCH_cluster.json\n");
  return 0;
}
