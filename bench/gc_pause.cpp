//===- bench/gc_pause.cpp - Incremental-marking pause sweep ----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Pause-distribution sweep for the incremental old-generation marker
/// (docs/gc_pause.md). Runs the same workload twice on a heap small
/// enough to force major GCs -- once stop-the-world (--max-pause-us=0)
/// and once with a pause budget -- and compares pause distributions,
/// end-to-end simulated time, and the workload checksum.
///
/// Two distributions are reported:
///   * old-gen pauses: the pauses this feature changes -- under
///     stop-the-world every full major GC, under a budget every mark
///     step, SATB drain, and the finishing remark+compaction major;
///   * all pauses: the above plus minor GCs, which are byte-identical in
///     both modes (same count, same durations) and bound how far any
///     all-pause percentile can move.
///
/// The contract the sweep checks (ISSUE acceptance criteria):
///   * checksums identical: incremental marking never changes results;
///   * old-gen p99 pause drops by at least 10x under the budget (the
///     few stop-the-world remark+compaction majors land beyond the
///     99th percentile of the many bounded steps);
///   * total simulated time grows by at most 2%.
///
/// --json=FILE additionally writes the distributions as flat JSON; CI
/// diffs the pass/fail verdict and keeps a committed snapshot in
/// BENCH_pause.json.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gc/Collector.h"

#include <algorithm>
#include <cinttypes>
#include <vector>

using namespace panthera;
using namespace panthera::bench;

namespace {

struct Dist {
  uint64_t Count = 0;
  double P50 = 0.0, P90 = 0.0, P99 = 0.0, Max = 0.0;
};

struct PauseRun {
  double Checksum = 0.0;
  double TotalNs = 0.0;
  double GcNs = 0.0;
  uint64_t MinorGcs = 0;
  uint64_t MajorGcs = 0;
  uint64_t IncSteps = 0;
  uint64_t IncCycles = 0;
  Dist OldGen; ///< Major + incremental-step pauses.
  Dist All;    ///< Every pause including minor GCs.
};

double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  double Rank = P * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

Dist distOf(std::vector<double> &Pauses) {
  std::sort(Pauses.begin(), Pauses.end());
  Dist D;
  D.Count = Pauses.size();
  D.P50 = percentile(Pauses, 0.50);
  D.P90 = percentile(Pauses, 0.90);
  D.P99 = percentile(Pauses, 0.99);
  D.Max = Pauses.empty() ? 0.0 : Pauses.back();
  return D;
}

PauseRun runOnce(const workloads::WorkloadSpec &Spec, double Scale,
                 unsigned HeapGB, uint32_t MaxPauseUs, uint32_t Pacing) {
  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = HeapGB;
  Config.DramRatio = 1.0 / 3.0;
  Config.MaxPauseUs = MaxPauseUs;
  Config.IncStepAllocs = Pacing;
  core::Runtime RT(Config);

  PauseRun R;
  R.Checksum = Spec.Run(RT, Scale);
  core::RunReport Report = RT.report();
  R.TotalNs = Report.TotalNs;
  R.GcNs = Report.GcNs;
  R.MinorGcs = Report.Gc.MinorGcs;
  R.MajorGcs = Report.Gc.MajorGcs;
  R.IncSteps = Report.Gc.IncMarkSteps;
  R.IncCycles = Report.Gc.IncCycles;

  std::vector<double> OldGen, All;
  for (const gc::GcEvent &E : RT.collector().eventLog()) {
    All.push_back(E.DurationNs);
    if (E.Major || E.IncStep)
      OldGen.push_back(E.DurationNs);
  }
  R.OldGen = distOf(OldGen);
  R.All = distOf(All);
  return R;
}

void printRun(const char *Label, const PauseRun &R) {
  std::printf("%-14s %8.3f %8.0f %6" PRIu64 " %6" PRIu64 " %6" PRIu64
              " %6" PRIu64 " %9.2f %9.2f %9.1f %9.1f\n",
              Label, R.TotalNs / 1e6, R.GcNs / 1e3, R.MinorGcs, R.MajorGcs,
              R.IncCycles, R.IncSteps, R.OldGen.P50 / 1e3, R.OldGen.P99 / 1e3,
              R.OldGen.Max / 1e3, R.All.P99 / 1e3);
}

void jsonDist(std::FILE *F, const char *Name, const Dist &D) {
  std::fprintf(F,
               "\"%s\": {\"count\": %" PRIu64 ", \"p50_ns\": %.1f, "
               "\"p90_ns\": %.1f, \"p99_ns\": %.1f, \"max_ns\": %.1f}",
               Name, D.Count, D.P50, D.P90, D.P99, D.Max);
}

void writeJson(std::FILE *F, const PauseRun &Stw, const PauseRun &Inc,
               uint32_t BudgetUs, uint32_t Pacing, bool Pass) {
  auto Run = [&](const char *Name, const PauseRun &R) {
    std::fprintf(F,
                 "  \"%s\": {\"total_ns\": %.1f, \"gc_ns\": %.1f, "
                 "\"minor\": %" PRIu64 ", \"major\": %" PRIu64
                 ", \"inc_cycles\": %" PRIu64 ", \"inc_steps\": %" PRIu64
                 ", ",
                 Name, R.TotalNs, R.GcNs, R.MinorGcs, R.MajorGcs, R.IncCycles,
                 R.IncSteps);
    jsonDist(F, "old_gen", R.OldGen);
    std::fprintf(F, ", ");
    jsonDist(F, "all", R.All);
    std::fprintf(F, "}");
  };
  std::fprintf(F, "{\n  \"budget_us\": %u,\n  \"pacing_allocs\": %u,\n",
               BudgetUs, Pacing);
  Run("stw", Stw);
  std::fprintf(F, ",\n");
  Run("incremental", Inc);
  std::fprintf(F,
               ",\n  \"old_gen_p99_ratio\": %.4f,\n  \"all_p99_ratio\": "
               "%.4f,\n  \"time_ratio\": %.4f,\n",
               Stw.OldGen.P99 > 0 ? Inc.OldGen.P99 / Stw.OldGen.P99 : 0.0,
               Stw.All.P99 > 0 ? Inc.All.P99 / Stw.All.P99 : 0.0,
               Stw.TotalNs > 0 ? Inc.TotalNs / Stw.TotalNs : 0.0);
  std::fprintf(F, "  \"checksums_equal\": %s,\n  \"pass\": %s\n}\n",
               Stw.Checksum == Inc.Checksum ? "true" : "false",
               Pass ? "true" : "false");
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  const char *JsonPath = nullptr;
  uint32_t BudgetUs = 2;
  uint32_t Pacing = 1;
  for (int I = 1; I < Argc; ++I) {
    uint64_t U = 0;
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
    else if (std::strncmp(Argv[I], "--budget-us=", 12) == 0) {
      if (!support::parseUnsigned(Argv[I] + 12, 1, 1u << 20, U)) {
        std::fprintf(stderr, "gc_pause: bad --budget-us '%s'\n", Argv[I] + 12);
        return 2;
      }
      BudgetUs = static_cast<uint32_t>(U);
    } else if (std::strncmp(Argv[I], "--pacing=", 9) == 0) {
      if (!support::parseUnsigned(Argv[I] + 9, 1, 1u << 20, U)) {
        std::fprintf(stderr, "gc_pause: bad --pacing '%s'\n", Argv[I] + 9);
        return 2;
      }
      Pacing = static_cast<uint32_t>(U);
    }
  }

  banner("GC pause sweep",
         "Stop-the-world vs incremental marking (--max-pause-us), "
         "PageRank on a major-forcing heap",
         Scale);

  // A heap small enough that the old generation crosses the occupancy
  // trigger and major GCs actually run. Scaled with the dataset like
  // runExperiment: the sweep is defined by its dataset:heap ratio.
  const unsigned HeapGB = std::max(1u, static_cast<unsigned>(20.0 * Scale + 0.5));
  const workloads::WorkloadSpec *PR = workloads::findWorkload("PR");

  PauseRun Stw = runOnce(*PR, Scale, HeapGB, 0, Pacing);
  PauseRun Inc = runOnce(*PR, Scale, HeapGB, BudgetUs, Pacing);

  std::printf("\n%-14s %8s %8s %6s %6s %6s %6s %9s %9s %9s %9s\n", "mode",
              "tot(ms)", "gc(us)", "minor", "major", "cycles", "steps",
              "og-p50", "og-p99", "og-max", "all-p99");
  printRun("stop-world", Stw);
  char Label[32];
  std::snprintf(Label, sizeof(Label), "budget=%uus", BudgetUs);
  printRun(Label, Inc);

  double P99Ratio = Stw.OldGen.P99 > 0 ? Inc.OldGen.P99 / Stw.OldGen.P99 : 0.0;
  double TimeRatio = Stw.TotalNs > 0 ? Inc.TotalNs / Stw.TotalNs : 0.0;
  bool ChecksumOk = Stw.Checksum == Inc.Checksum;
  bool MajorsRan = Stw.MajorGcs > 0;
  bool CyclesRan = Inc.IncCycles > 0;
  bool MinorsIdentical = Stw.MinorGcs == Inc.MinorGcs;
  bool Pass = ChecksumOk && MajorsRan && CyclesRan && P99Ratio <= 0.1 &&
              TimeRatio <= 1.02;

  std::printf("\nchecksum: %s (%.6g vs %.6g); minor GC count %s\n",
              ChecksumOk ? "identical" : "DIVERGED", Stw.Checksum,
              Inc.Checksum, MinorsIdentical ? "unchanged" : "CHANGED");
  std::printf("old-gen p99 pause ratio: %.4f (need <= 0.1); time ratio: "
              "%.4f (need <= 1.02)\n",
              P99Ratio, TimeRatio);
  std::printf("majors under stop-world: %" PRIu64
              "; incremental cycles: %" PRIu64 "; steps: %" PRIu64 "\n",
              Stw.MajorGcs, Inc.IncCycles, Inc.IncSteps);
  std::printf("verdict: %s\n", Pass ? "PASS" : "FAIL");

  if (JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "gc_pause: cannot open '%s'\n", JsonPath);
      return 2;
    }
    writeJson(F, Stw, Inc, BudgetUs, Pacing, Pass);
    std::fclose(F);
  } else {
    writeJson(stdout, Stw, Inc, BudgetUs, Pacing, Pass);
  }
  return Pass ? 0 : 1;
}
