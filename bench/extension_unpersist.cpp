//===- bench/extension_unpersist.cpp - §5.5 future-work extension ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// §5.5 observes that Panthera's analysis has no unpersist support, so
/// GraphX's per-iteration graph RDDs are all tagged DRAM and stale
/// generations must be *dynamically* demoted at major GCs (the Table 5
/// migrations). This harness evaluates the unpersist-aware analysis
/// extension this repository adds: the per-iteration vertex RDDs become
/// statically NVM, trading cheaper placement (no demotion work, less DRAM
/// pressure) against NVM reads of the current generation.
///
//===//----------------------------------------------------------------------===

#include "BenchCommon.h"

#include "graphx/Pregel.h"
#include "workloads/DataGen.h"

using namespace panthera;
using namespace panthera::bench;
using rdd::Rdd;

namespace {

static const char *CcDsl = R"(
program cc {
  raw = textFile("graph");
  edges = raw.flatMap().groupByKey().persist(MEMORY_ONLY);
  vertices = edges.mapValues().persist(MEMORY_ONLY);
  for (i in 1..iters) {
    msgs = edges.join(vertices).flatMap();
    vertices = msgs.union(vertices).reduceByKey().persist(MEMORY_ONLY);
    for (j in 1..supersteps) {
      probe = edges.join(vertices).map();
      probe.count();
    }
    vertices.unpersist();
  }
  vertices.count();
}
)";

struct Result {
  double TotalMs, GcMs, Checksum;
  uint64_t MigratedToNvm, Majors;
  MemTag VertexTag;
};

Result runCc(bool UnpersistAware, double Scale) {
  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = 32; // DRAM-pressured, like the Table 5 setting
  Config.DramRatio = 1.0 / 3.0;
  core::Runtime RT(Config);
  analysis::AnalysisOptions Options;
  Options.UnpersistAware = UnpersistAware;
  RT.analyzeAndInstall(CcDsl, Options);

  Result R;
  R.VertexTag = RT.analysis().tagFor("vertices");
  rdd::SparkContext &Ctx = RT.ctx();
  workloads::GraphData G = workloads::genPowerLawGraph(
      Ctx.config().NumPartitions, static_cast<int64_t>(12000 * Scale),
      static_cast<int64_t>(44000 * Scale), 1.0, 11);
  Rdd EdgeList = Ctx.source(&G.Edges);
  Rdd Adjacency =
      graphx::buildAdjacency(Ctx, EdgeList, "edges", /*Symmetrize=*/true);
  graphx::PregelConfig PC;
  PC.MaxIterations = 10;
  Rdd Labels = graphx::connectedComponents(Ctx, Adjacency, PC);
  R.Checksum =
      Labels.mapValues([](double V) { return V + 1.0; })
          .reduce([](double A, double B) { return A + B; });

  core::RunReport Report = RT.report();
  R.TotalMs = Report.TotalNs / 1e6;
  R.GcMs = Report.GcNs / 1e6;
  R.MigratedToNvm = Report.Gc.MigratedRddArraysToNvm;
  R.Majors = Report.Gc.MajorGcs;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("extension: unpersist-aware analysis",
         "GraphX-CC, Panthera, 32GB heap, 1/3 DRAM: the paper's analysis "
         "(DRAM + dynamic demotion)\nvs the unpersist-aware extension "
         "(static NVM)",
         Scale);

  Result Paper = runCc(/*UnpersistAware=*/false, Scale);
  Result Ext = runCc(/*UnpersistAware=*/true, Scale);

  std::printf("\n%-28s %14s %14s\n", "", "paper analysis", "extension");
  std::printf("%-28s %14s %14s\n", "vertices tag",
              memTagName(Paper.VertexTag), memTagName(Ext.VertexTag));
  std::printf("%-28s %14.2f %14.2f\n", "total time (ms)", Paper.TotalMs,
              Ext.TotalMs);
  std::printf("%-28s %14.2f %14.2f\n", "GC time (ms)", Paper.GcMs,
              Ext.GcMs);
  std::printf("%-28s %14llu %14llu\n", "major GCs",
              static_cast<unsigned long long>(Paper.Majors),
              static_cast<unsigned long long>(Ext.Majors));
  std::printf("%-28s %14llu %14llu\n", "arrays demoted to NVM",
              static_cast<unsigned long long>(Paper.MigratedToNvm),
              static_cast<unsigned long long>(Ext.MigratedToNvm));

  std::printf("\nshape checks:\n");
  std::printf("  tags flip DRAM -> NVM under the extension: %s\n",
              Paper.VertexTag == MemTag::Dram &&
                      Ext.VertexTag == MemTag::Nvm
                  ? "yes"
                  : "NO");
  std::printf("  static placement needs fewer dynamic demotions: %s\n",
              Ext.MigratedToNvm <= Paper.MigratedToNvm ? "yes" : "NO");
  std::printf("  results identical: %s\n",
              Paper.Checksum == Ext.Checksum ? "yes" : "NO");
  return 0;
}
