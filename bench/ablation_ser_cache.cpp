//===- bench/ablation_ser_cache.cpp - Serialized-cache ablation ------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Design-choice ablation (DESIGN.md §4): the paper's fault-tolerance
/// caches use the _SER storage levels (PageRank persists contribs
/// MEMORY_AND_DISK_SER). This harness quantifies why that matters on
/// hybrid memory, three ways:
///
///   deserialized  MEMORY_AND_DISK      per-tuple object graphs the
///                                      collector traces and promotes
///   serialized    MEMORY_AND_DISK_SER  one on-heap byte buffer per
///                                      partition (the paper's choice)
///   off-heap      OFF_HEAP             native region tier outside the
///                                      heap entirely (docs/offheap.md)
///
/// The three levels are swept across cache:heap ratios (shrinking heaps
/// under the same dataset) and the results land in BENCH_sercache.json
/// with two enforced floors: the off-heap tier must strictly reduce
/// old-gen trace time (old->young card scans + major marks) against the
/// deserialized cache at every ratio, and must beat the on-heap
/// serialized cache's total time at >= 1 swept ratio, where heap relief
/// outweighs the region-read toll.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gc/Collector.h"
#include "graphx/Pregel.h"
#include "workloads/DataGen.h"

using namespace panthera;
using namespace panthera::bench;
using heap::GcRoot;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::TupleSink;

namespace {

/// PageRank with a configurable contribs storage level.
double runPr(core::Runtime &RT, rdd::StorageLevel ContribsLevel,
             double Scale) {
  RT.analyzeAndInstall(R"(
program pagerank {
  lines = textFile("graph");
  links = lines.map().distinct().groupByKey().persist(MEMORY_ONLY);
  ranks = links.mapValues();
  for (i in 1..iters) {
    contribs = links.join(ranks).flatMap().persist(MEMORY_AND_DISK_SER);
    ranks = contribs.reduceByKey().mapValues();
  }
  ranks.count();
}
)");
  rdd::SparkContext &Ctx = RT.ctx();
  workloads::GraphData G = workloads::genPowerLawGraph(
      Ctx.config().NumPartitions, static_cast<int64_t>(10000 * Scale),
      static_cast<int64_t>(50000 * Scale), 1.0, 42);
  Rdd Links = Ctx.source(&G.Edges).distinct().groupByKey().persistAs(
      "links", rdd::StorageLevel::MemoryOnly);
  Rdd Ranks = Links.mapValuesWithKey([](int64_t, double) { return 1.0; });
  for (unsigned I = 0; I != 8; ++I) {
    Rdd Contribs =
        Links
            .join(Ranks,
                  [](RddContext &C, ObjRef Left, double Rank) {
                    return C.makeTupleWithRef(C.key(Left), Rank,
                                              C.payload(Left));
                  })
            .flatMap([](RddContext &C, ObjRef T, const TupleSink &S) {
              GcRoot Buf(C.heap(), C.payload(T));
              if (Buf.get().isNull())
                return;
              uint32_t N = C.heap().arrayLength(Buf.get());
              double Share = C.value(T) / N;
              for (uint32_t J = 0; J != N; ++J)
                S(C.makeTuple(
                    static_cast<int64_t>(C.bufferValue(Buf.get(), J)),
                    Share));
            })
            .persistAs("contribs", ContribsLevel);
    Ranks = Contribs.reduceByKey([](double A, double B) { return A + B; })
                .mapValues([](double S) { return 0.15 + 0.85 * S; });
  }
  return Ranks.reduce([](double A, double B) { return A + B; });
}

struct Row {
  double TotalMs, GcMs, OldGenMs, Checksum;
};

/// One configuration. OldGenMs is the time the collector spent looking at
/// the old generation on the cache's behalf: old->young dirty-card scans
/// (DRAM + NVM) in minor GCs plus the mark phase of major GCs -- the cost
/// the off-heap tier exists to delete.
Row measure(gc::PolicyKind Policy, rdd::StorageLevel Level, double Scale,
            unsigned HeapGB, unsigned OffHeapMB) {
  core::RuntimeConfig Config;
  Config.Policy = Policy;
  Config.HeapPaperGB = HeapGB;
  Config.DramRatio = 1.0 / 3.0;
  Config.OffHeapMB = OffHeapMB;
  core::Runtime RT(Config);
  Row R;
  R.Checksum = runPr(RT, Level, Scale);
  core::RunReport Report = RT.report();
  R.TotalMs = Report.TotalNs / 1e6;
  R.GcMs = Report.GcNs / 1e6;
  double OldGenNs = 0.0;
  for (const gc::GcEvent &E : RT.collector().eventLog())
    OldGenNs += E.DramToYoungTaskNs + E.NvmToYoungTaskNs + E.MarkNs;
  R.OldGenMs = OldGenNs / 1e6;
  return R;
}

/// One swept cache:heap ratio: same dataset, shrinking heap. The off-heap
/// budget stays constant -- it is carved from the native region, not the
/// heap, which is exactly the point.
struct RatioPoint {
  unsigned HeapGB;
  Row Deser, Ser, Off;
};

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("ablation: serialized caches",
         "PageRank contribs cached deserialized vs serialized vs off-heap "
         "region, swept over cache:heap ratios",
         Scale);
  auto ScaledGB = [Scale](unsigned GB) {
    return std::max(
        1u, static_cast<unsigned>(static_cast<double>(GB) * Scale + 0.5));
  };
  // 8 paper-GB of native region budget holds the contribs working set at
  // scale 1 with room to spare; undersize runs spill to disk, not crash.
  const unsigned OffHeapMB = ScaledGB(8) * 1024;

  // Part 1 (the original ablation shape): every policy at the paper's
  // 64 GB heap, serialized vs deserialized.
  std::printf("\n%-12s | %-24s | %-24s\n", "",
              "SER (paper)  total    gc", "deserialized total    gc  [ms]");
  bool ChecksumsAgree = true;
  double SerPantheraGc = 0, DeserPantheraGc = 0;
  for (gc::PolicyKind Policy :
       {gc::PolicyKind::DramOnly, gc::PolicyKind::Unmanaged,
        gc::PolicyKind::Panthera}) {
    Row Ser = measure(Policy, rdd::StorageLevel::MemoryAndDiskSer, Scale,
                      ScaledGB(64), 0);
    Row Deser = measure(Policy, rdd::StorageLevel::MemoryAndDisk, Scale,
                        ScaledGB(64), 0);
    ChecksumsAgree &= Ser.Checksum == Deser.Checksum;
    if (Policy == gc::PolicyKind::Panthera) {
      SerPantheraGc = Ser.GcMs;
      DeserPantheraGc = Deser.GcMs;
    }
    std::printf("%-12s |      %8.2f %8.2f    |      %8.2f %8.2f\n",
                gc::policyName(Policy), Ser.TotalMs, Ser.GcMs, Deser.TotalMs,
                Deser.GcMs);
  }

  // Part 2: the three-way sweep under Panthera. Heap shrinks while the
  // dataset (and so the cache) stays fixed, raising the cache:heap ratio.
  const unsigned HeapSweepGB[] = {64, 32, 16, 8};
  std::vector<RatioPoint> Points;
  std::printf("\n%-8s | %-21s | %-21s | %-21s\n", "heap",
              "deser total  oldgen", "ser   total  oldgen",
              "offheap total oldgen  [ms]");
  for (unsigned GB : HeapSweepGB) {
    RatioPoint P;
    P.HeapGB = GB;
    P.Deser = measure(gc::PolicyKind::Panthera,
                      rdd::StorageLevel::MemoryAndDisk, Scale, ScaledGB(GB),
                      0);
    P.Ser = measure(gc::PolicyKind::Panthera,
                    rdd::StorageLevel::MemoryAndDiskSer, Scale, ScaledGB(GB),
                    0);
    P.Off = measure(gc::PolicyKind::Panthera, rdd::StorageLevel::OffHeapSer,
                    Scale, ScaledGB(GB), OffHeapMB);
    ChecksumsAgree &= P.Deser.Checksum == P.Ser.Checksum &&
                      P.Ser.Checksum == P.Off.Checksum;
    std::printf("%4u GB  |  %8.2f %8.2f  |  %8.2f %8.2f  |  %8.2f %8.2f\n",
                GB, P.Deser.TotalMs, P.Deser.OldGenMs, P.Ser.TotalMs,
                P.Ser.OldGenMs, P.Off.TotalMs, P.Off.OldGenMs);
    Points.push_back(P);
  }

  // Floors (enforced by tools/ci.sh via the JSON "pass" flag).
  bool OffCutsOldGenEverywhere = true;
  bool OffBeatsSerSomewhere = false;
  for (const RatioPoint &P : Points) {
    OffCutsOldGenEverywhere &= P.Off.OldGenMs < P.Deser.OldGenMs;
    OffBeatsSerSomewhere |= P.Off.TotalMs < P.Ser.TotalMs;
  }
  bool Pass =
      ChecksumsAgree && OffCutsOldGenEverywhere && OffBeatsSerSomewhere;

  std::printf("\nshape checks:\n");
  std::printf("  serialized caching cuts Panthera's GC time:  %s "
              "(%.2f -> %.2f ms)\n",
              SerPantheraGc < DeserPantheraGc ? "yes" : "NO",
              DeserPantheraGc, SerPantheraGc);
  std::printf("  off-heap cuts old-gen trace at every ratio:  %s\n",
              OffCutsOldGenEverywhere ? "yes" : "NO");
  std::printf("  off-heap beats on-heap SER at some ratio:    %s\n",
              OffBeatsSerSomewhere ? "yes" : "NO");
  std::printf("  results identical across cache formats:      %s\n",
              ChecksumsAgree ? "yes" : "NO");

  std::FILE *Out = std::fopen("BENCH_sercache.json", "w");
  if (!Out) {
    std::perror("BENCH_sercache.json");
    return 1;
  }
  std::fprintf(Out, "{\n  \"scale\": %.3f,\n  \"workload\": \"PR\",\n",
               Scale);
  std::fprintf(Out, "  \"offheap_budget_paper_mb\": %u,\n", OffHeapMB);
  std::fprintf(Out, "  \"sweep\": [\n");
  for (size_t I = 0; I != Points.size(); ++I) {
    const RatioPoint &P = Points[I];
    auto Emit = [Out](const char *Name, const Row &R, const char *Tail) {
      std::fprintf(Out,
                   "     \"%s\": {\"total_ms\": %.3f, \"gc_ms\": %.3f, "
                   "\"oldgen_trace_ms\": %.3f}%s\n",
                   Name, R.TotalMs, R.GcMs, R.OldGenMs, Tail);
    };
    std::fprintf(Out, "    {\"heap_paper_gb\": %u,\n", P.HeapGB);
    Emit("deserialized", P.Deser, ",");
    Emit("serialized", P.Ser, ",");
    Emit("offheap", P.Off, "");
    std::fprintf(Out, "    }%s\n", I + 1 == Points.size() ? "" : ",");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out,
               "  \"floors\": {\"checksums_match\": %s, "
               "\"offheap_cuts_oldgen_trace_at_every_ratio\": %s, "
               "\"offheap_beats_ser_total_at_some_ratio\": %s},\n",
               ChecksumsAgree ? "true" : "false",
               OffCutsOldGenEverywhere ? "true" : "false",
               OffBeatsSerSomewhere ? "true" : "false");
  std::fprintf(Out, "  \"pass\": %s\n}\n", Pass ? "true" : "false");
  std::fclose(Out);
  std::printf("\nwrote BENCH_sercache.json\n");

  if (!ChecksumsAgree) {
    std::fprintf(stderr,
                 "FATAL: a cache format changed the workload checksum\n");
    return 1;
  }
  return 0;
}
