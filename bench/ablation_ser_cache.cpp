//===- bench/ablation_ser_cache.cpp - Serialized-cache ablation ------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Design-choice ablation (DESIGN.md §4): the paper's fault-tolerance
/// caches use the _SER storage levels (PageRank persists contribs
/// MEMORY_AND_DISK_SER). This harness quantifies why that matters on
/// hybrid memory: a PageRank variant whose contribs are cached
/// *deserialized* leaves per-tuple object graphs for the collector to
/// trace and promote into NVM, inflating GC time under every policy --
/// and hurting Panthera most, since its contribs land fully in NVM.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "graphx/Pregel.h"
#include "workloads/DataGen.h"

using namespace panthera;
using namespace panthera::bench;
using heap::GcRoot;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::TupleSink;

namespace {

/// PageRank with a configurable contribs storage level.
double runPr(core::Runtime &RT, rdd::StorageLevel ContribsLevel,
             double Scale) {
  RT.analyzeAndInstall(R"(
program pagerank {
  lines = textFile("graph");
  links = lines.map().distinct().groupByKey().persist(MEMORY_ONLY);
  ranks = links.mapValues();
  for (i in 1..iters) {
    contribs = links.join(ranks).flatMap().persist(MEMORY_AND_DISK_SER);
    ranks = contribs.reduceByKey().mapValues();
  }
  ranks.count();
}
)");
  rdd::SparkContext &Ctx = RT.ctx();
  workloads::GraphData G = workloads::genPowerLawGraph(
      Ctx.config().NumPartitions, static_cast<int64_t>(10000 * Scale),
      static_cast<int64_t>(50000 * Scale), 1.0, 42);
  Rdd Links = Ctx.source(&G.Edges).distinct().groupByKey().persistAs(
      "links", rdd::StorageLevel::MemoryOnly);
  Rdd Ranks = Links.mapValuesWithKey([](int64_t, double) { return 1.0; });
  for (unsigned I = 0; I != 8; ++I) {
    Rdd Contribs =
        Links
            .join(Ranks,
                  [](RddContext &C, ObjRef Left, double Rank) {
                    return C.makeTupleWithRef(C.key(Left), Rank,
                                              C.payload(Left));
                  })
            .flatMap([](RddContext &C, ObjRef T, const TupleSink &S) {
              GcRoot Buf(C.heap(), C.payload(T));
              if (Buf.get().isNull())
                return;
              uint32_t N = C.heap().arrayLength(Buf.get());
              double Share = C.value(T) / N;
              for (uint32_t J = 0; J != N; ++J)
                S(C.makeTuple(
                    static_cast<int64_t>(C.bufferValue(Buf.get(), J)),
                    Share));
            })
            .persistAs("contribs", ContribsLevel);
    Ranks = Contribs.reduceByKey([](double A, double B) { return A + B; })
                .mapValues([](double S) { return 0.15 + 0.85 * S; });
  }
  return Ranks.reduce([](double A, double B) { return A + B; });
}

struct Row {
  double TotalMs, GcMs, Checksum;
};

Row measure(gc::PolicyKind Policy, rdd::StorageLevel Level, double Scale) {
  core::RuntimeConfig Config;
  Config.Policy = Policy;
  Config.HeapPaperGB = 64;
  Config.DramRatio = 1.0 / 3.0;
  core::Runtime RT(Config);
  Row R;
  R.Checksum = runPr(RT, Level, Scale);
  core::RunReport Report = RT.report();
  R.TotalMs = Report.TotalNs / 1e6;
  R.GcMs = Report.GcNs / 1e6;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("ablation: serialized caches",
         "PageRank with contribs cached serialized (paper) vs "
         "deserialized, 64GB heap, 1/3 DRAM",
         Scale);

  std::printf("\n%-12s | %-24s | %-24s\n", "",
              "SER (paper)  total    gc", "deserialized total    gc  [ms]");
  bool ChecksumsAgree = true;
  double SerPantheraGc = 0, DeserPantheraGc = 0;
  for (gc::PolicyKind Policy :
       {gc::PolicyKind::DramOnly, gc::PolicyKind::Unmanaged,
        gc::PolicyKind::Panthera}) {
    Row Ser = measure(Policy, rdd::StorageLevel::MemoryAndDiskSer, Scale);
    Row Deser = measure(Policy, rdd::StorageLevel::MemoryAndDisk, Scale);
    ChecksumsAgree &= Ser.Checksum == Deser.Checksum;
    if (Policy == gc::PolicyKind::Panthera) {
      SerPantheraGc = Ser.GcMs;
      DeserPantheraGc = Deser.GcMs;
    }
    std::printf("%-12s |      %8.2f %8.2f    |      %8.2f %8.2f\n",
                gc::policyName(Policy), Ser.TotalMs, Ser.GcMs, Deser.TotalMs,
                Deser.GcMs);
  }

  std::printf("\nshape checks:\n");
  std::printf("  serialized caching cuts Panthera's GC time:  %s "
              "(%.2f -> %.2f ms)\n",
              SerPantheraGc < DeserPantheraGc ? "yes" : "NO",
              DeserPantheraGc, SerPantheraGc);
  std::printf("  results identical across cache formats:      %s\n",
              ChecksumsAgree ? "yes" : "NO");
  return 0;
}
