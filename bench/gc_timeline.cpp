//===- bench/gc_timeline.cpp - Per-collection task breakdown ---------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A GC-log-style timeline for PageRank under Panthera and Unmanaged,
/// with each minor collection broken into the §4.2.2 tasks (root task,
/// DRAM-to-young, NVM-to-young, copy/drain). The aggregate view shows
/// where the Unmanaged baseline's extra GC time is spent: old-to-young
/// scanning and copying against NVM.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gc/Collector.h"

using namespace panthera;
using namespace panthera::bench;

namespace {

void timelineFor(gc::PolicyKind Policy, double Scale) {
  const workloads::WorkloadSpec *PR = workloads::findWorkload("PR");
  core::RuntimeConfig Config;
  Config.Policy = Policy;
  Config.HeapPaperGB = 64;
  Config.DramRatio = 1.0 / 3.0;
  core::Runtime RT(Config);
  PR->Run(RT, Scale);

  std::printf("\n-- %s --\n", gc::policyName(Policy));
  std::printf("%4s %-6s %9s %9s %8s %8s %8s %8s %10s\n", "#", "kind",
              "t(ms)", "dur(us)", "root", "d2y", "n2y", "drain",
              "promotedKB");
  double Root = 0, D2y = 0, N2y = 0, Drain = 0, Total = 0;
  unsigned Index = 0;
  for (const gc::GcEvent &E : RT.collector().eventLog()) {
    std::printf("%4u %-6s %9.2f %9.1f %8.1f %8.1f %8.1f %8.1f %10.1f\n",
                Index++, E.Major ? "major" : "minor", E.StartNs / 1e6,
                E.DurationNs / 1e3, E.RootTaskNs / 1e3,
                E.DramToYoungTaskNs / 1e3, E.NvmToYoungTaskNs / 1e3,
                E.DrainNs / 1e3,
                static_cast<double>(E.BytesPromoted) / 1024.0);
    Root += E.RootTaskNs;
    D2y += E.DramToYoungTaskNs;
    N2y += E.NvmToYoungTaskNs;
    Drain += E.DrainNs;
    Total += E.DurationNs;
  }
  if (Total > 0)
    std::printf("task shares: root %.1f%%, DRAM-to-young %.1f%%, "
                "NVM-to-young %.1f%%, copy/drain %.1f%%\n",
                100 * Root / Total, 100 * D2y / Total, 100 * N2y / Total,
                100 * Drain / Total);
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("GC timeline", "Per-collection task breakdown (§4.2.2 task "
                        "names), PageRank, 64GB heap, 1/3 DRAM",
         Scale);
  timelineFor(gc::PolicyKind::DramOnly, Scale);
  timelineFor(gc::PolicyKind::Panthera, Scale);
  timelineFor(gc::PolicyKind::Unmanaged, Scale);
  std::printf("\nreading: under Unmanaged the single unified old space "
              "reports its card scans in the\nNVM-to-young column (its "
              "chunks are mostly NVM); Panthera splits the work across\n"
              "both device-specific tasks and keeps the NVM side small.\n");
  return 0;
}
