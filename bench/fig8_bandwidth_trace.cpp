//===- bench/fig8_bandwidth_trace.cpp - Fig 8 reproduction -----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Fig 8: GraphX-CC's DRAM and NVM read/write bandwidth over time, for
/// the Unmanaged baseline and Panthera (both 1/3 DRAM). The paper's
/// observation: Panthera migrates most traffic from NVM to DRAM and
/// flattens the tall NVM bandwidth peaks.
///
/// Output: a bucketed time series (simulated time, GB/s per device and
/// direction) plus aggregate traffic shares.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>

using namespace panthera;
using namespace panthera::bench;
using memsim::EpochSample;

namespace {

struct TraceResult {
  std::vector<EpochSample> Trace;
  double EpochNs = 1.0;
  double DramBytes = 0.0;
  double NvmBytes = 0.0;
  double PeakNvmGBs = 0.0;
};

TraceResult traceOf(gc::PolicyKind Policy, double Scale) {
  const workloads::WorkloadSpec *CC = workloads::findWorkload("CC");
  TraceResult R;
  R.EpochNs = 250.0e3; // 0.25 simulated ms per bucket
  core::RuntimeConfig Config;
  Config.Policy = Policy;
  Config.HeapPaperGB = 64;
  Config.DramRatio = 1.0 / 3.0;
  Config.EpochNs = R.EpochNs;
  core::Runtime RT(Config);
  CC->Run(RT, Scale);
  // Rebuild the per-epoch trace from the registry's bandwidth series --
  // the same data panthera_sim --metrics-json exports. The four series
  // can have different lengths (a device may be idle at the tail), so
  // pad to the longest; TimeSeries::at() reads past-the-end as 0.
  RT.publishMetrics();
  const support::MetricsRegistry &M = RT.metrics();
  const support::TimeSeries *DramRd =
      M.findSeries("memsim.bandwidth.dram_read_bytes");
  const support::TimeSeries *DramWr =
      M.findSeries("memsim.bandwidth.dram_write_bytes");
  const support::TimeSeries *NvmRd =
      M.findSeries("memsim.bandwidth.nvm_read_bytes");
  const support::TimeSeries *NvmWr =
      M.findSeries("memsim.bandwidth.nvm_write_bytes");
  auto Len = [](const support::TimeSeries *S) { return S ? S->size() : 0; };
  size_t Epochs = std::max(std::max(Len(DramRd), Len(DramWr)),
                           std::max(Len(NvmRd), Len(NvmWr)));
  auto At = [](const support::TimeSeries *S, size_t I) {
    return S ? S->at(I) : 0.0;
  };
  R.Trace.resize(Epochs);
  for (size_t I = 0; I != Epochs; ++I) {
    R.Trace[I].DramReadBytes = At(DramRd, I);
    R.Trace[I].DramWriteBytes = At(DramWr, I);
    R.Trace[I].NvmReadBytes = At(NvmRd, I);
    R.Trace[I].NvmWriteBytes = At(NvmWr, I);
  }
  for (const EpochSample &S : R.Trace) {
    R.DramBytes += S.DramReadBytes + S.DramWriteBytes;
    double Nvm = S.NvmReadBytes + S.NvmWriteBytes;
    R.NvmBytes += Nvm;
    double GBs = Nvm / R.EpochNs; // bytes per ns == GB/s
    if (GBs > R.PeakNvmGBs)
      R.PeakNvmGBs = GBs;
  }
  return R;
}

void printSeries(const char *Name, const TraceResult &R) {
  std::printf("\n-- %s: bandwidth trace (one row per %.2f simulated ms) "
              "--\n",
              Name, R.EpochNs / 1e6);
  std::printf("%10s %12s %12s %12s %12s\n", "t(ms)", "DRAM-rd", "DRAM-wr",
              "NVM-rd", "NVM-wr  [GB/s]");
  // Cap the printout at 48 rows by merging buckets if needed.
  size_t Stride = (R.Trace.size() + 47) / 48;
  if (Stride == 0)
    Stride = 1;
  for (size_t I = 0; I < R.Trace.size(); I += Stride) {
    EpochSample Sum;
    size_t End = std::min(R.Trace.size(), I + Stride);
    for (size_t J = I; J != End; ++J) {
      Sum.DramReadBytes += R.Trace[J].DramReadBytes;
      Sum.DramWriteBytes += R.Trace[J].DramWriteBytes;
      Sum.NvmReadBytes += R.Trace[J].NvmReadBytes;
      Sum.NvmWriteBytes += R.Trace[J].NvmWriteBytes;
    }
    double Window = static_cast<double>(End - I) * R.EpochNs;
    std::printf("%10.2f %12.2f %12.2f %12.2f %12.2f\n",
                static_cast<double>(I) * R.EpochNs / 1e6,
                Sum.DramReadBytes / Window, Sum.DramWriteBytes / Window,
                Sum.NvmReadBytes / Window, Sum.NvmWriteBytes / Window);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Fig 8", "GraphX-CC memory bandwidth over time, Unmanaged vs "
                  "Panthera (1/3 DRAM)",
         Scale);
  TraceResult U = traceOf(gc::PolicyKind::Unmanaged, Scale);
  TraceResult P = traceOf(gc::PolicyKind::Panthera, Scale);
  printSeries("Unmanaged", U);
  printSeries("Panthera", P);

  double UNvmShare = U.NvmBytes / (U.NvmBytes + U.DramBytes);
  double PNvmShare = P.NvmBytes / (P.NvmBytes + P.DramBytes);
  std::printf("\naggregates:\n");
  std::printf("  NVM share of device traffic: Unmanaged %.1f%%, Panthera "
              "%.1f%%\n",
              100.0 * UNvmShare, 100.0 * PNvmShare);
  std::printf("  total NVM bytes: Unmanaged %.1f MB, Panthera %.1f MB\n",
              U.NvmBytes / 1e6, P.NvmBytes / 1e6);
  std::printf("  peak NVM bandwidth: Unmanaged %.2f GB/s, Panthera %.2f "
              "GB/s\n",
              U.PeakNvmGBs, P.PeakNvmGBs);
  std::printf("\nshape checks (paper: Panthera migrates most read/write "
              "traffic from NVM to DRAM):\n");
  std::printf("  Panthera NVM traffic share below Unmanaged: %s\n",
              PNvmShare < UNvmShare ? "yes" : "NO");
  std::printf("  Panthera moves NVM traffic to DRAM overall: %s\n",
              P.NvmBytes < U.NvmBytes ? "yes" : "NO");
  std::printf("  (peaks: Panthera's pretenured-array writes burst briefly "
              "to NVM at materialization;\n   the paper's peak-flattening "
              "shows up here as the lower NVM share/total instead)\n");
  return 0;
}
