//===- bench/micro_scaling.cpp - Work-stealing pool scaling ---------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Host wall-clock scaling of the two pool clients (docs/parallelism.md):
///
///   * stage execution -- a compute-heavy map over 16 partitions, measured
///     as records per wall-second through a full map+reduceByKey action;
///   * the parallel scavenge -- minor-GC pause wall time over a live young
///     graph built directly on the heap, collector driven standalone.
///
/// Both are run at 1/2/4/8 workers. Simulated time, energy, and results
/// are bit-identical at every point (that is the pool's contract and the
/// checksums are cross-checked here); the ONLY thing that moves is host
/// wall-clock, which is what this harness records into BENCH_scaling.json.
///
/// Expectation on a host with >= 8 hardware threads: >= 3x stage
/// throughput and >= 2x faster minor-GC pause at 8 workers vs 1. On
/// smaller hosts the oversubscribed points are reported as measured and
/// flagged in the JSON (`hardware_concurrency`).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "gc/Collector.h"
#include "support/ThreadPool.h"
#include "support/Units.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

using namespace panthera;
using namespace panthera::bench;
using heap::ObjRef;

namespace {

constexpr unsigned Threadings[] = {1, 2, 4, 8};

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

//===----------------------------------------------------------------------===
// Stage throughput: compute-heavy map, 16 partitions.
//===----------------------------------------------------------------------===

struct StagePoint {
  unsigned Threads = 0;
  double WallMs = 0.0;
  double RecordsPerSec = 0.0;
  double Checksum = 0.0;
};

/// ~1500 fused ops per record so the (parallel) capture phase dominates
/// the (serial) replay of its heap effects.
double heavyKernel(double V) {
  for (int I = 0; I != 1500; ++I)
    V = V * 1.0000001 + 1.0 / (1.0 + V * V);
  return V;
}

StagePoint runStage(unsigned Threads, double Scale) {
  const auto N = static_cast<int64_t>(120000 * Scale);
  rdd::SourceData Data(16);
  for (int64_t I = 0; I != N; ++I)
    Data[static_cast<size_t>(I) % Data.size()].push_back(
        {I, static_cast<double>(I % 997) * 0.5});

  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = 64;
  Config.Engine.NumPartitions = 16;
  Config.NumThreads = Threads;
  core::Runtime RT(Config);

  StagePoint P;
  P.Threads = Threads;
  double Start = nowMs();
  rdd::Rdd Sums =
      RT.ctx()
          .source(&Data)
          .map([](rdd::RddContext &C, ObjRef T) {
            return C.makeTuple(C.key(T) % 64, heavyKernel(C.value(T)));
          })
          .reduceByKey([](double A, double B) { return A + B; });
  for (const rdd::SourceRecord &R : Sums.collect())
    P.Checksum += static_cast<double>(R.Key) + R.Val;
  P.WallMs = nowMs() - Start;
  P.RecordsPerSec = static_cast<double>(N) / (P.WallMs / 1e3);
  return P;
}

//===----------------------------------------------------------------------===
// Minor-GC pause: standalone heap + collector, live young graph.
//===----------------------------------------------------------------------===

struct GcPoint {
  unsigned Threads = 0;
  double PauseUsMin = 0.0;
  double PauseUsMean = 0.0;
  uint64_t BytesPromoted = 0;
};

GcPoint runGcPause(unsigned Threads, double Scale) {
  using namespace panthera::heap;
  heap::HeapConfig HC =
      gc::makeHeapConfig(gc::PolicyKind::Panthera, 64, 1.0 / 3.0);
  HC.NativeBytes = PaperGB;
  auto Mem = std::make_unique<memsim::HybridMemory>(
      HeapConfig::alignPage(4096 + HC.HeapBytes + HC.NativeBytes),
      memsim::MemoryTechnology{}, memsim::CacheConfig{});
  auto H = std::make_unique<Heap>(HC, *Mem);
  gc::AccessMonitor Monitor;
  gc::Collector C(*H, gc::PolicyKind::Panthera, &Monitor);
  support::WorkStealingPool Pool(Threads);
  C.setThreadPool(&Pool);

  const auto Live = static_cast<uint32_t>(8192 * Scale);
  constexpr int Rounds = 8;
  GcPoint P;
  P.Threads = Threads;
  P.PauseUsMin = 1e18;
  for (int Round = 0; Round != Rounds; ++Round) {
    // A fresh live graph each round: one rooted spine of 256-byte
    // survivors, plus an equal volume of garbage for the sweep to skip.
    GcRoot Spine(*H, H->allocRefArray(Live));
    for (uint32_t I = 0; I != Live; ++I) {
      H->storeRef(Spine.get(), I, H->allocPlain(0, 224));
      H->allocPlain(0, 224); // garbage
    }
    double Start = nowMs();
    C.collectMinor("bench");
    double Us = (nowMs() - Start) * 1e3;
    if (Round == 0)
      continue; // warm-up: first round pays pool thread start-up
    P.PauseUsMin = std::min(P.PauseUsMin, Us);
    P.PauseUsMean += Us / (Rounds - 1);
  }
  P.BytesPromoted = C.stats().BytesPromoted;
  return P;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  unsigned Hw = std::thread::hardware_concurrency();
  banner("micro_scaling",
         "Host wall-clock scaling of the shared work-stealing pool: stage "
         "throughput and minor-GC pause at 1/2/4/8 workers",
         Scale);
  std::printf("host hardware threads: %u (speedup floors assume >= 8)\n\n",
              Hw);

  StagePoint Stage[4];
  GcPoint Gc[4];
  for (int I = 0; I != 4; ++I) {
    Stage[I] = runStage(Threadings[I], Scale);
    Gc[I] = runGcPause(Threadings[I], Scale);
  }

  // The contract first: results must not depend on the worker count.
  for (int I = 1; I != 4; ++I) {
    if (Stage[I].Checksum != Stage[0].Checksum) {
      std::fprintf(stderr, "FATAL: checksum diverged at %u threads\n",
                   Stage[I].Threads);
      return 1;
    }
    if (Gc[I].BytesPromoted != Gc[0].BytesPromoted) {
      std::fprintf(stderr, "FATAL: GC effects diverged at %u threads\n",
                   Gc[I].Threads);
      return 1;
    }
  }

  std::printf("%8s %12s %14s %8s %14s %8s\n", "threads", "stage(ms)",
              "records/s", "speedup", "gc pause(us)", "speedup");
  for (int I = 0; I != 4; ++I)
    std::printf("%8u %12.1f %14.0f %7.2fx %14.1f %7.2fx\n",
                Stage[I].Threads, Stage[I].WallMs, Stage[I].RecordsPerSec,
                Stage[0].WallMs / Stage[I].WallMs, Gc[I].PauseUsMin,
                Gc[0].PauseUsMin / Gc[I].PauseUsMin);

  double StageSpeedup = Stage[0].WallMs / Stage[3].WallMs;
  double GcSpeedup = Gc[0].PauseUsMin / Gc[3].PauseUsMin;
  std::printf("\nat 8 workers: stage %.2fx (floor 3x), minor-GC pause "
              "%.2fx (floor 2x)%s\n",
              StageSpeedup, GcSpeedup,
              Hw >= 8 ? "" : " -- floors not applicable, host has too few "
                             "hardware threads");

  std::FILE *Out = std::fopen("BENCH_scaling.json", "w");
  if (!Out) {
    std::perror("BENCH_scaling.json");
    return 1;
  }
  std::fprintf(Out, "{\n  \"hardware_concurrency\": %u,\n", Hw);
  std::fprintf(Out, "  \"scale\": %.3f,\n", Scale);
  std::fprintf(Out, "  \"stage\": [\n");
  for (int I = 0; I != 4; ++I)
    std::fprintf(Out,
                 "    {\"threads\": %u, \"wall_ms\": %.3f, "
                 "\"records_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
                 Stage[I].Threads, Stage[I].WallMs, Stage[I].RecordsPerSec,
                 Stage[0].WallMs / Stage[I].WallMs, I == 3 ? "" : ",");
  std::fprintf(Out, "  ],\n  \"minor_gc\": [\n");
  for (int I = 0; I != 4; ++I)
    std::fprintf(Out,
                 "    {\"threads\": %u, \"pause_us_min\": %.2f, "
                 "\"pause_us_mean\": %.2f, \"speedup\": %.3f}%s\n",
                 Gc[I].Threads, Gc[I].PauseUsMin, Gc[I].PauseUsMean,
                 Gc[0].PauseUsMin / Gc[I].PauseUsMin, I == 3 ? "" : ",");
  std::fprintf(Out,
               "  ],\n  \"stage_speedup_at_8\": %.3f,\n"
               "  \"gc_pause_speedup_at_8\": %.3f,\n"
               "  \"floors\": {\"stage\": 3.0, \"minor_gc\": 2.0, "
               "\"apply_when_hw_ge\": 8}\n}\n",
               StageSpeedup, GcSpeedup);
  std::fclose(Out);
  std::printf("wrote BENCH_scaling.json\n");
  return 0;
}
