//===- bench/ablation_gc_opts.cpp - §5.3 GC-optimization ablation ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// §5.3's ablation of Panthera's two GC optimizations:
///  * eager promotion alone contributes ~9% of the GC improvement;
///  * disabling card padding increases GC time by ~60% (shared dirty
///    cards force full large-array rescans in NVM on every minor GC).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"

using namespace panthera;
using namespace panthera::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("§5.3 ablation", "Panthera GC optimizations on/off, 64GB heap, "
                          "1/3 DRAM",
         Scale);

  std::printf("\nGC time (simulated ms) under Panthera variants:\n");
  std::printf("%-5s %10s %14s %14s %16s\n", "", "full", "no eager",
              "no padding", "shared-card scans");
  std::vector<double> NoEagerRatio, NoPadRatio;
  uint64_t FullSharedScans = 0, NoPadSharedScans = 0;
  for (const char *Name : {"PR", "KM", "TC", "CC", "BC"}) {
    const workloads::WorkloadSpec *Spec = workloads::findWorkload(Name);
    Overrides Full;
    Experiment F = runExperiment(*Spec, gc::PolicyKind::Panthera, 64,
                                 1.0 / 3.0, Scale, Full);
    Overrides NoEager;
    NoEager.EagerPromotion = false;
    Experiment NE = runExperiment(*Spec, gc::PolicyKind::Panthera, 64,
                                  1.0 / 3.0, Scale, NoEager);
    Overrides NoPad;
    NoPad.CardPadding = false;
    Experiment NP = runExperiment(*Spec, gc::PolicyKind::Panthera, 64,
                                  1.0 / 3.0, Scale, NoPad);
    NoEagerRatio.push_back(NE.Report.GcNs / F.Report.GcNs);
    NoPadRatio.push_back(NP.Report.GcNs / F.Report.GcNs);
    FullSharedScans += F.Report.Gc.SharedArrayCardScans;
    NoPadSharedScans += NP.Report.Gc.SharedArrayCardScans;
    std::printf("%-5s %10.2f %14.2f %14.2f %16llu\n", Name,
                F.Report.GcNs / 1e6, NE.Report.GcNs / 1e6,
                NP.Report.GcNs / 1e6,
                static_cast<unsigned long long>(
                    NP.Report.Gc.SharedArrayCardScans));
  }

  double EagerContribution = 100.0 * (geomean(NoEagerRatio) - 1.0);
  double PaddingContribution = 100.0 * (geomean(NoPadRatio) - 1.0);
  std::printf("\nGC time increase when disabling (geomean):\n");
  std::printf("  eager promotion: %+5.1f%%   (paper: ~9%% of the GC "
              "improvement)\n",
              EagerContribution);
  std::printf("  card padding:    %+5.1f%%   (paper: ~60%% GC time "
              "increase)\n",
              PaddingContribution);
  std::printf("\nshape checks:\n");
  std::printf("  both optimizations reduce GC time:                  %s\n",
              EagerContribution > 0 && PaddingContribution > 0 ? "yes"
                                                               : "NO");
  std::printf("  padding eliminates shared-card rescans entirely "
              "(%llu -> %llu): %s\n",
              static_cast<unsigned long long>(NoPadSharedScans),
              static_cast<unsigned long long>(FullSharedScans),
              FullSharedScans == 0 && NoPadSharedScans > 0 ? "yes" : "NO");
  std::printf("\nnote: the paper's +60%% padding effect accumulates over "
              "hundreds of minor GCs per\nrun; at this scale each "
              "uncleanable shared card is rescanned only a handful of\n"
              "times, so the absolute magnitude is smaller (the mechanism "
              "is identical -- see the\nshared-card-scan counts).\n");
  return 0;
}
