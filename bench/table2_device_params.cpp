//===- bench/table2_device_params.cpp - Table 2 dump -----------------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Table 2: the DRAM/NVM device parameters the simulator runs with, next
/// to the paper's figures, plus the derived per-access costs of the model.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "memsim/EnergyModel.h"
#include "memsim/MemoryTechnology.h"

using namespace panthera;
using namespace panthera::bench;
using namespace panthera::memsim;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("Table 2", "DRAM vs NVM device parameters (model defaults vs "
                    "paper)",
         Scale);
  MemoryTechnology T;
  EnergyParams E;

  std::printf("\n%-32s %16s %16s %s\n", "parameter", "DRAM", "NVM",
              "paper (DRAM / NVM)");
  std::printf("%-32s %16.0f %16.0f %s\n", "read latency (ns)",
              T.DramReadLatencyNs, T.NvmReadLatencyNs,
              "120 / 300 (one-hop)");
  std::printf("%-32s %16.0f %16.0f %s\n", "bandwidth (GB/s)",
              T.DramBandwidthGBs, T.NvmBandwidthGBs,
              "30 / 10 (thermally limited)");
  std::printf("%-32s %16s %16s %s\n", "capacity per CPU", "100s of GBs",
              "terabytes", "same");
  std::printf("%-32s %16s %16s %s\n", "estimated price", "5x", "1x", "same");
  std::printf("%-32s %16.2f %16.2f %s\n", "static power (W/GB)",
              E.DramStaticWattsPerGB, E.NvmStaticWattsPerGB,
              "DDR4 spec / negligible [30,31]");
  std::printf("%-32s %16.1f %16.1f %s\n", "read energy (nJ/line)",
              E.DramReadNanojoulesPerLine, E.NvmReadNanojoulesPerLine,
              "NVM reads cheaper (non-destructive)");
  std::printf("%-32s %16.1f %16.1f %s\n", "write energy (nJ/line)",
              E.DramWriteNanojoulesPerLine, E.NvmWriteNanojoulesPerLine,
              "31200 pJ per NVM line write (S5.1)");

  std::printf("\nderived per-cache-line miss costs (ns):\n");
  std::printf("%-32s %16.2f %16.2f\n", "mutator (MLP 4), random access",
              T.missCostNs(Device::DRAM, Actor::Mutator, false),
              T.missCostNs(Device::NVM, Actor::Mutator, false));
  std::printf("%-32s %16.2f %16.2f\n", "mutator, sequential (prefetch)",
              T.missCostNs(Device::DRAM, Actor::Mutator, false, true),
              T.missCostNs(Device::NVM, Actor::Mutator, false, true));
  std::printf("%-32s %16.2f %16.2f\n", "GC (16 threads, MLP 64)",
              T.missCostNs(Device::DRAM, Actor::Gc, false),
              T.missCostNs(Device::NVM, Actor::Gc, false));
  std::printf("\nGC tracing NVM:DRAM cost ratio: %.2fx (the paper's "
              "bandwidth-bound Parallel Scavenge effect)\n",
              T.missCostNs(Device::NVM, Actor::Gc, false) /
                  T.missCostNs(Device::DRAM, Actor::Gc, false));
  return 0;
}
