//===- bench/ablation_baselines.cpp - §5.2 baseline comparison -------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// §5.2's baseline discussion: the Kingsguard-Writes implementation (write
/// monitoring + read-mostly objects in NVM) incurs ~41% overhead on Big
/// Data workloads, and Kingsguard-Nursery also loses to the interleaved
/// Unmanaged configuration -- which is why the paper adopts Unmanaged as
/// its baseline.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"

using namespace panthera;
using namespace panthera::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  banner("§5.2 baselines", "KN and KW vs Unmanaged vs Panthera, 64GB heap, "
                           "1/3 DRAM, time normalized to DRAM-only",
         Scale);

  std::printf("\n%-5s %12s %12s %12s %12s\n", "", "Unmanaged", "KN", "KW",
              "Panthera");
  std::vector<double> U, KN, KW, P;
  for (const workloads::WorkloadSpec &Spec : workloads::allWorkloads()) {
    Experiment Base =
        runExperiment(Spec, gc::PolicyKind::DramOnly, 64, 1.0, Scale);
    auto Norm = [&](gc::PolicyKind Kind) {
      Experiment E = runExperiment(Spec, Kind, 64, 1.0 / 3.0, Scale);
      return E.Report.TotalNs / Base.Report.TotalNs;
    };
    double Un = Norm(gc::PolicyKind::Unmanaged);
    double Kn = Norm(gc::PolicyKind::KingsguardNursery);
    double Kw = Norm(gc::PolicyKind::KingsguardWrites);
    double Pa = Norm(gc::PolicyKind::Panthera);
    U.push_back(Un);
    KN.push_back(Kn);
    KW.push_back(Kw);
    P.push_back(Pa);
    std::printf("%-5s %12.3f %12.3f %12.3f %12.3f\n",
                Spec.ShortName.c_str(), Un, Kn, Kw, Pa);
  }
  std::printf("%-5s %12.3f %12.3f %12.3f %12.3f\n", "mean", geomean(U),
              geomean(KN), geomean(KW), geomean(P));
  std::printf("\npaper: KW ~1.41 average; Unmanaged outperforms both KN "
              "and KW; Panthera 1.04\n");
  std::printf("\nshape checks:\n");
  std::printf("  Unmanaged beats KN:        %s\n",
              geomean(U) < geomean(KN) ? "yes" : "NO");
  std::printf("  Unmanaged beats KW:        %s\n",
              geomean(U) < geomean(KW) ? "yes" : "NO");
  std::printf("  KW is the worst baseline:  %s\n",
              geomean(KW) >= geomean(KN) ? "yes" : "NO");
  std::printf("  Panthera beats everything: %s\n",
              geomean(P) < geomean(U) ? "yes" : "NO");
  return 0;
}
