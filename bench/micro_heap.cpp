//===- bench/micro_heap.cpp - google-benchmark micro costs -----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Micro-benchmarks (google-benchmark) of the runtime's building blocks:
/// allocation, reference stores (write barrier + card marking), minor GC
/// with and without eager promotion, pretenured array allocation, and the
/// cache/memory model itself. These measure *host* throughput of the
/// simulator, complementing the figure harnesses that report simulated
/// time.
///
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"
#include "support/Units.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace panthera;
using namespace panthera::heap;

namespace {

struct Fixture {
  explicit Fixture(gc::PolicyKind Policy = gc::PolicyKind::Panthera) {
    HeapConfig HC = gc::makeHeapConfig(Policy, 16, 1.0 / 3.0);
    Mem = std::make_unique<memsim::HybridMemory>(
        HeapConfig::alignPage(4096 + HC.HeapBytes + HC.NativeBytes),
        memsim::MemoryTechnology{}, memsim::CacheConfig{});
    H = std::make_unique<Heap>(HC, *Mem);
    C = std::make_unique<gc::Collector>(*H, Policy, nullptr);
  }
  std::unique_ptr<memsim::HybridMemory> Mem;
  std::unique_ptr<Heap> H;
  std::unique_ptr<gc::Collector> C;
};

void BM_AllocPlain(benchmark::State &State) {
  Fixture F;
  for (auto _ : State)
    benchmark::DoNotOptimize(F.H->allocPlain(1, 16));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_AllocPlain);

void BM_RefStoreWithBarrier(benchmark::State &State) {
  Fixture F;
  GcRoot Arr(*F.H, F.H->allocRefArray(512));
  GcRoot T(*F.H, F.H->allocPlain(0, 8));
  uint32_t I = 0;
  for (auto _ : State) {
    F.H->storeRef(Arr.get(), I & 511, T.get());
    ++I;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RefStoreWithBarrier);

void BM_PrimFieldLoad(benchmark::State &State) {
  Fixture F;
  GcRoot T(*F.H, F.H->allocPlain(0, 16));
  F.H->storeF64(T.get(), 0, 1.5);
  for (auto _ : State)
    benchmark::DoNotOptimize(F.H->loadF64(T.get(), 0));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_PrimFieldLoad);

void BM_PretenuredArrayAlloc(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    Fixture F; // fresh heap: old space never fills
    State.ResumeTiming();
    for (int I = 0; I != 64; ++I) {
      F.H->setPendingArrayTag(MemTag::Nvm, 1);
      benchmark::DoNotOptimize(F.H->allocRefArray(2048));
    }
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_PretenuredArrayAlloc);

void BM_MinorGcEmptyYoung(benchmark::State &State) {
  Fixture F;
  for (auto _ : State)
    F.C->collectMinor("bench");
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MinorGcEmptyYoung);

void BM_MinorGcWithSurvivors(benchmark::State &State) {
  Fixture F;
  GcRoot Arr(*F.H, F.H->allocRefArray(1024));
  for (auto _ : State) {
    State.PauseTiming();
    // Re-populate: survivors move every collection.
    for (uint32_t I = 0; I != 1024; ++I) {
      ObjRef T = F.H->allocPlain(0, 16);
      F.H->storeRef(Arr.get(), I, T);
    }
    State.ResumeTiming();
    F.C->collectMinor("bench");
  }
  State.SetItemsProcessed(State.iterations() * 1024);
}
BENCHMARK(BM_MinorGcWithSurvivors);

void BM_CacheModelAccess(benchmark::State &State) {
  memsim::CacheModel Cache((memsim::CacheConfig()));
  uint64_t Addr = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.access(Addr, false));
    Addr += 64;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CacheModelAccess);

void BM_HybridMemoryAccess(benchmark::State &State) {
  memsim::HybridMemory Mem(64 * PaperGB, memsim::MemoryTechnology{},
                           memsim::CacheConfig{});
  uint64_t Addr = 0;
  for (auto _ : State) {
    Mem.onAccess(Addr % (32 * PaperGB), 8, false);
    Addr += 4096;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_HybridMemoryAccess);

} // namespace

BENCHMARK_MAIN();
