//===- examples/graph_analytics.cpp - GraphX-layer example ----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Graph analytics on the GraphX-like layer: builds a power-law graph,
/// runs Connected Components and Single-Source Shortest Paths through the
/// Pregel engine, and shows the §5.5 dynamic-migration story: stale
/// vertex-RDD generations (tagged DRAM by the analysis) are demoted to
/// NVM by the major GC once their call counts go cold.
///
/// Usage: graph_analytics [vertices] [edges]
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "graphx/Pregel.h"
#include "workloads/DataGen.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace panthera;
using rdd::Rdd;

int main(int Argc, char **Argv) {
  int64_t V = Argc > 1 ? std::atoll(Argv[1]) : 12000;
  int64_t E = Argc > 2 ? std::atoll(Argv[2]) : 44000;

  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = 32; // small enough that stale generations matter
  Config.DramRatio = 1.0 / 3.0;
  core::Runtime RT(Config);
  RT.analyzeAndInstall(R"(
program cc {
  raw = textFile("graph");
  edges = raw.flatMap().groupByKey().persist(MEMORY_ONLY);
  vertices = edges.mapValues().persist(MEMORY_ONLY);
  for (i in 1..iters) {
    msgs = edges.join(vertices).flatMap();
    vertices = msgs.union(vertices).reduceByKey().persist(MEMORY_ONLY);
    for (j in 1..supersteps) {
      probe = edges.join(vertices).map();
      probe.count();
    }
  }
  vertices.count();
}
)");

  workloads::GraphData G = workloads::genPowerLawGraph(
      RT.ctx().config().NumPartitions, V, E, /*Skew=*/1.0, /*Seed=*/11);
  Rdd EdgeList = RT.ctx().source(&G.Edges);
  Rdd Adjacency = graphx::buildAdjacency(RT.ctx(), EdgeList, "edges",
                                         /*Symmetrize=*/true);

  graphx::PregelConfig PC;
  PC.MaxIterations = 10;
  Rdd Labels = graphx::connectedComponents(RT.ctx(), Adjacency, PC);

  // Count components: how many distinct labels remain.
  std::map<int64_t, int64_t> Components;
  for (const rdd::SourceRecord &Rec : Labels.collect())
    ++Components[static_cast<int64_t>(Rec.Val)];
  std::printf("connected components: %zu (largest %lld vertices)\n",
              Components.size(), [&] {
                int64_t Max = 0;
                for (auto &[L, N] : Components)
                  Max = N > Max ? N : Max;
                return static_cast<long long>(Max);
              }());

  graphx::PregelConfig SP;
  SP.MaxIterations = 10;
  SP.VertexVar = "vertices";
  Rdd Dist = graphx::shortestPaths(RT.ctx(), Adjacency, /*SourceVertex=*/0,
                                   SP);
  int64_t Reachable = Dist.filter([](rdd::RddContext &C, heap::ObjRef T) {
                            return C.value(T) < graphx::Unreachable;
                          }).count();
  std::printf("vertices reachable from 0: %lld\n",
              static_cast<long long>(Reachable));

  core::RunReport R = RT.report();
  std::printf("\nruntime summary: %.2f simulated ms, %llu minor / %llu "
              "major GCs\n",
              R.TotalNs / 1e6,
              static_cast<unsigned long long>(R.Gc.MinorGcs),
              static_cast<unsigned long long>(R.Gc.MajorGcs));
  std::printf("dynamic migration (§5.5): %llu stale vertex-RDD arrays "
              "demoted to NVM,\n%llu hot arrays promoted to DRAM; %llu "
              "monitored calls drove the decisions\n",
              static_cast<unsigned long long>(
                  R.Gc.MigratedRddArraysToNvm),
              static_cast<unsigned long long>(
                  R.Gc.MigratedRddArraysToDram),
              static_cast<unsigned long long>(R.MonitoredCalls));
  return 0;
}
