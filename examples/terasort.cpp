//===- examples/terasort.cpp - Range-partitioned sort on hybrid memory ----===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A TeraSort-style benchmark on the engine's sortByKey (sampled range
/// partitioner + per-partition sort, like Spark's): generates scrambled
/// records, sorts them globally, validates the total order, and compares
/// the memory policies. Sorting is shuffle-dominated, so it leans on the
/// shuffle buffers and the young generation harder than the iterative
/// workloads do.
///
/// Usage: terasort [records]
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "support/Random.h"

#include <cstdio>
#include <cstdlib>

using namespace panthera;
using rdd::Rdd;
using rdd::SourceData;
using rdd::SourceRecord;

int main(int Argc, char **Argv) {
  int64_t Records = Argc > 1 ? std::atoll(Argv[1]) : 200000;
  std::printf("TeraSort: %lld records, 4 partitions\n",
              static_cast<long long>(Records));
  std::printf("%-14s %10s %9s %10s %8s\n", "policy", "time(ms)", "gc(ms)",
              "spills", "sorted?");

  for (gc::PolicyKind Policy :
       {gc::PolicyKind::DramOnly, gc::PolicyKind::Unmanaged,
        gc::PolicyKind::Panthera}) {
    core::RuntimeConfig Config;
    Config.Policy = Policy;
    Config.HeapPaperGB = 64;
    Config.DramRatio = 1.0 / 3.0;
    core::Runtime RT(Config);

    SourceData Data(RT.ctx().config().NumPartitions);
    SplitMix64 Rng(77);
    for (int64_t I = 0; I != Records; ++I)
      Data[static_cast<size_t>(I) % Data.size()].push_back(
          {static_cast<int64_t>(Rng.next() >> 16),
           static_cast<double>(I)});

    Rdd Sorted = RT.ctx().source(&Data).sortByKey();
    std::vector<SourceRecord> Out = Sorted.collect();
    bool Ordered = Out.size() == static_cast<size_t>(Records);
    for (size_t I = 1; I < Out.size() && Ordered; ++I)
      Ordered = Out[I - 1].Key <= Out[I].Key;

    core::RunReport R = RT.report();
    std::printf("%-14s %10.2f %9.2f %10llu %8s\n", gc::policyName(Policy),
                R.TotalNs / 1e6, R.GcNs / 1e6,
                static_cast<unsigned long long>(R.Engine.ShuffleSpills),
                Ordered ? "yes" : "NO");
  }
  return 0;
}
