//===- examples/quickstart.cpp - Minimal end-to-end example ---------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: stand up a Panthera runtime over a simulated 16 GB hybrid
/// memory, run a small aggregation pipeline, and print what the runtime
/// observed -- simulated time, GC activity, per-device traffic and energy.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include <cstdio>

using namespace panthera;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::SourceData;

int main() {
  // 1. Configure the system: Panthera policy, 16 (paper-)GB heap, a third
  //    of the memory DRAM. One paper-GB is simulated as one MB.
  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = 16;
  Config.DramRatio = 1.0 / 3.0;
  core::Runtime RT(Config);

  // 2. Give the runtime the driver program. The §3 static analysis infers
  //    a DRAM tag for `totals` here (no loops -> all-NVM -> flipped).
  const analysis::AnalysisResult &Tags = RT.analyzeAndInstall(R"(
program quickstart {
  events = textFile("events");
  totals = events.map().reduceByKey().persist(MEMORY_ONLY);
  totals.count();
}
)");
  for (const auto &[Var, Info] : Tags.Vars)
    std::printf("analysis: %-8s -> %-4s (%s)\n", Var.c_str(),
                memTagName(Info.Tag), Info.ExpandedLevel.c_str());

  // 3. Build data and a pipeline against the RDD API.
  SourceData Events(RT.ctx().config().NumPartitions);
  for (int64_t I = 0; I != 20000; ++I)
    Events[I % Events.size()].push_back({I % 5000, 1.0});

  Rdd Totals = RT.ctx()
                   .source(&Events)
                   .map([](RddContext &C, ObjRef T) {
                     return C.makeTuple(C.key(T), C.value(T) * 2.0);
                   })
                   .reduceByKey([](double A, double B) { return A + B; })
                   .persistAs("totals", rdd::StorageLevel::MemoryOnly);

  std::printf("\ndistinct keys: %lld\n",
              static_cast<long long>(Totals.count()));
  std::printf("grand total:   %.0f\n",
              Totals.reduce([](double A, double B) { return A + B; }));

  // 4. Inspect what the memory system saw.
  core::RunReport R = RT.report();
  std::printf("\nsimulated time: %.3f ms (mutator %.3f, gc %.3f)\n",
              R.TotalNs / 1e6, R.MutatorNs / 1e6, R.GcNs / 1e6);
  std::printf("collections:    %llu minor, %llu major\n",
              static_cast<unsigned long long>(R.Gc.MinorGcs),
              static_cast<unsigned long long>(R.Gc.MajorGcs));
  std::printf("DRAM traffic:   %llu line reads, %llu line writes\n",
              static_cast<unsigned long long>(R.DramTraffic.LineReads),
              static_cast<unsigned long long>(R.DramTraffic.LineWrites));
  std::printf("NVM traffic:    %llu line reads, %llu line writes\n",
              static_cast<unsigned long long>(R.NvmTraffic.LineReads),
              static_cast<unsigned long long>(R.NvmTraffic.LineWrites));
  std::printf("memory energy:  %.3f J (%.0f%% static DRAM)\n",
              R.TotalJoules,
              100.0 * R.Energy.DramStaticJoules / R.TotalJoules);
  std::printf("pretenured RDD arrays: %llu\n",
              static_cast<unsigned long long>(
                  RT.heap().stats().ArraysPretenured));
  return 0;
}
