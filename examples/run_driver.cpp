//===- examples/run_driver.cpp - Execute a DSL driver program -------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end driver execution: parse a DSL program, run the §3 analysis,
/// and *execute* it on the Panthera runtime over synthetic data — printing
/// the inferred placement, every action's result, and the memory-system
/// report. The full front-end-to-heap path in one command.
///
/// Usage:
///   run_driver file.spark [iters]
///   run_driver --demo [iters]          # built-in PageRank-shaped demo
///
//===----------------------------------------------------------------------===//

#include "core/DslDriver.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace panthera;

static const char *Demo = R"(program pagerank {
  links = textFile("graph").map().distinct().groupByKey()
          .persist(MEMORY_ONLY);
  ranks = links.mapValues(one);
  for (i in 1..iters) {
    contribs = links.join(ranks).mapValues()
               .persist(MEMORY_AND_DISK_SER);
    ranks = contribs.reduceByKey(sum).mapValues();
  }
  ranks.count();
}
)";

int main(int Argc, char **Argv) {
  std::string Source;
  int64_t Iters = 3;
  const char *File = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--demo") == 0)
      Source = Demo;
    else if (Argv[I][0] >= '0' && Argv[I][0] <= '9')
      Iters = std::atoll(Argv[I]);
    else
      File = Argv[I];
  }
  if (Source.empty() && File) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File);
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }
  if (Source.empty()) {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Source = Buffer.str();
  }

  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = 64;
  Config.DramRatio = 1.0 / 3.0;
  core::Runtime RT(Config);
  core::DslDriver Driver(RT);
  Driver.setLoopBound("iters", Iters);
  Driver.setLoopBound("n", Iters);

  core::DriverResult Result = Driver.run(Source);

  std::printf("inferred placement:\n");
  for (const auto &[Var, Tag] : Result.Tags)
    std::printf("  %-12s -> %s\n", Var.c_str(), memTagName(Tag));
  std::printf("\nactions:\n");
  for (const core::ActionOutcome &A : Result.Actions)
    std::printf("  %-20s = %g\n", A.Description.c_str(), A.Value);

  core::RunReport R = RT.report();
  std::printf("\nruntime: %.2f simulated ms (gc %.2f), %llu minor / %llu "
              "major GCs, %.2f J\n",
              R.TotalNs / 1e6, R.GcNs / 1e6,
              static_cast<unsigned long long>(R.Gc.MinorGcs),
              static_cast<unsigned long long>(R.Gc.MajorGcs),
              R.TotalJoules);
  std::printf("old-gen residency: DRAM %llu KB, NVM %llu KB, pretenured "
              "arrays %llu\n",
              static_cast<unsigned long long>(
                  RT.heap().oldDram().usedBytes() / 1024),
              static_cast<unsigned long long>(
                  RT.heap().oldNvm().usedBytes() / 1024),
              static_cast<unsigned long long>(
                  RT.heap().stats().ArraysPretenured));
  return 0;
}
