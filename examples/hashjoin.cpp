//===- examples/hashjoin.cpp - §4.3's HashJoin on the raw APIs ------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's §4.3 applicability example, built directly on the two
/// Panthera APIs (no Spark engine involved): a SQL-style HashJoin where
/// the first table is loaded entirely in memory (long-lived, probed by
/// every map worker -> pre-tenured to DRAM) while the second table is
/// streamed in partitions that die young. A third, rarely-touched "audit
/// log" structure is registered with the dynamic-monitoring API instead
/// and ends up demoted to NVM by the major GC.
///
//===----------------------------------------------------------------------===//

#include "core/PantheraApi.h"
#include "core/Runtime.h"
#include "support/Random.h"

#include <cstdio>
#include <unordered_map>

using namespace panthera;
using heap::GcRoot;
using heap::ObjRef;

int main() {
  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = 32;
  core::Runtime RT(Config);
  heap::Heap &H = RT.heap();

  constexpr uint32_t BuildRows = 20000;
  constexpr uint32_t ProbeRows = 120000;
  constexpr uint32_t BuildTableId = 1;
  constexpr uint32_t AuditLogId = 2;

  // --- API #1: the build table is long-lived and frequently accessed ---
  // Pre-tenure its backbone array straight into old-gen DRAM.
  core::pretenureNextArray(H, MemTag::Dram, BuildTableId);
  GcRoot BuildTable(H, H.allocRefArray(BuildRows));
  size_t BuildRoot = H.addPersistentRoot(BuildTable.get());
  SplitMix64 Rng(2024);
  for (uint32_t I = 0; I != BuildRows; ++I) {
    ObjRef Row = H.allocPlain(0, 16);
    H.storeI64(Row, 0, I);                       // join key
    H.storeF64(Row, 8, Rng.nextDouble() * 100);  // payload
    H.storeRef(BuildTable.get(), I, Row);
  }
  std::printf("build table: %u rows, backbone array in %s\n", BuildRows,
              H.oldDram().contains(BuildTable.get().addr()) ? "old-gen DRAM"
                                                            : "elsewhere");

  // --- API #2: the audit log is kept around but rarely touched ---------
  core::pretenureNextArray(H, MemTag::Dram, AuditLogId); // annotated hot...
  GcRoot AuditLog(H, H.allocRefArray(4096));
  size_t AuditRoot = H.addPersistentRoot(AuditLog.get());
  core::trackDataStructure(H, AuditLog.get(), AuditLogId); // ...but tracked

  // --- the join: probe partitions stream through the young generation --
  // A native index of array positions (stable across GCs) for the probe.
  std::unordered_map<int64_t, uint32_t> Index;
  Index.reserve(BuildRows);
  for (uint32_t I = 0; I != BuildRows; ++I)
    Index.emplace(I, I);

  double JoinSum = 0.0;
  int64_t Matches = 0;
  for (uint32_t P = 0; P != 8; ++P) {
    core::recordStructureUse(RT.monitor(), BuildTableId); // probed again
    for (uint32_t R = 0; R != ProbeRows / 8; ++R) {
      int64_t Key = static_cast<int64_t>(Rng.nextBelow(BuildRows * 2));
      // Probe-side tuples are ordinary young allocations that die here.
      ObjRef Probe = H.allocPlain(0, 16);
      H.storeI64(Probe, 0, Key);
      H.storeF64(Probe, 8, 1.0);
      auto It = Index.find(Key);
      if (It == Index.end())
        continue;
      ObjRef Row = H.loadRef(BuildTable.get(), It->second);
      JoinSum += H.loadF64(Row, 8) * H.loadF64(Probe, 8);
      ++Matches;
    }
  }
  std::printf("join: %lld matches, sum %.2f\n",
              static_cast<long long>(Matches), JoinSum);

  // Force a full collection so dynamic migration runs: the audit log had
  // zero recorded uses this window, so it demotes to NVM; the build table
  // stayed hot and stays in DRAM.
  RT.heap().requestMajorGc("example");
  ObjRef Table = H.persistentRoot(BuildRoot);
  ObjRef Audit = H.persistentRoot(AuditRoot);
  std::printf("after major GC: build table in %s, audit log in %s\n",
              H.oldDram().contains(Table.addr()) ? "DRAM" : "NVM",
              H.oldNvm().contains(Audit.addr()) ? "NVM" : "DRAM");
  std::printf("dynamic migrations to NVM: %llu\n",
              static_cast<unsigned long long>(
                  RT.collector().stats().MigratedRddArraysToNvm));

  core::RunReport Report = RT.report();
  std::printf("simulated time %.2f ms, %llu minor / %llu major GCs\n",
              Report.TotalNs / 1e6,
              static_cast<unsigned long long>(Report.Gc.MinorGcs),
              static_cast<unsigned long long>(Report.Gc.MajorGcs));
  H.removePersistentRoot(BuildRoot);
  H.removePersistentRoot(AuditRoot);
  return 0;
}
