//===- examples/fault_tolerance.cpp - Lineage vs persisted caches ---------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Why Spark programs persist the paper's "fault-tolerance" RDDs at all:
/// when cached data disappears, an un-persisted RDD must be *recomputed
/// from its lineage* (re-running the expensive upstream transformations),
/// while a MEMORY_AND_DISK RDD evicted from the heap restores from its
/// disk copy. This example measures both paths -- and shows why such
/// rarely-read caches belong in NVM (the Panthera placement for
/// contribs-like RDDs).
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include <cstdio>

using namespace panthera;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::SourceData;

int main() {
  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = 32;
  core::Runtime RT(Config);
  RT.analyzeAndInstall(R"(
program ft {
  hot = textFile("h").map().persist(MEMORY_ONLY);
  for (i in 1..n) {
    checkpoint = hot.map().persist(MEMORY_AND_DISK_SER);
    checkpoint.count();
  }
}
)");

  SourceData Data(RT.ctx().config().NumPartitions);
  for (int64_t I = 0; I != 50000; ++I)
    Data[I % Data.size()].push_back({I, 1.0});

  int ExpensiveApplications = 0;
  Rdd Checkpoint =
      RT.ctx()
          .source(&Data)
          .map([&ExpensiveApplications](RddContext &C, ObjRef T) {
            ++ExpensiveApplications; // stands in for costly parsing/compute
            return C.makeTuple(C.key(T), C.value(T) * 2.0);
          })
          .persistAs("checkpoint", rdd::StorageLevel::MemoryAndDiskSer);

  Checkpoint.count();
  std::printf("materialized: expensive map ran %d times\n",
              ExpensiveApplications);

  // Scenario A: the heap copy is evicted to disk (BlockManager path).
  RT.ctx().evictToDisk(Checkpoint.node());
  Checkpoint.count();
  std::printf("after disk eviction + re-read: expensive map ran %d times "
              "(no recompute: restored from disk)\n",
              ExpensiveApplications);

  // Scenario B: the cache is lost entirely (executor failure), so the
  // next action recomputes the whole lineage.
  Checkpoint.unpersist();
  Checkpoint.count();
  std::printf("after cache loss + action:     expensive map ran %d times "
              "(lineage recomputation)\n",
              ExpensiveApplications);

  std::printf("\nthe cache was read %s -- exactly the access pattern that "
              "makes the paper place\nfault-tolerance caches in NVM: "
              "written once, read only on failure.\n",
              "twice in this whole program");
  bool ManualOk = ExpensiveApplications == 100000;

  // Scenario C: the same failure, but injected by the fault harness and
  // recovered by the engine itself -- the consuming task fails, its retry
  // finds the cache rebuilt from lineage, and the action's result matches
  // the fault-free run above.
  core::RuntimeConfig FaultyConfig = Config;
  FaultyConfig.Faults.site(FaultSite::CacheRead).FireOnNth = 1;
  FaultyConfig.Faults.site(FaultSite::CacheRead).MaxFires = 1;
  core::Runtime FaultyRT(FaultyConfig);
  int InjectedApplications = 0;
  Rdd Injected =
      FaultyRT.ctx()
          .source(&Data)
          .map([&InjectedApplications](RddContext &C, ObjRef T) {
            ++InjectedApplications;
            return C.makeTuple(C.key(T), C.value(T) * 2.0);
          })
          .persistAs("checkpoint", rdd::StorageLevel::MemoryAndDiskSer);
  int64_t InjectedCount = Injected.count();
  const rdd::EngineStats &S = FaultyRT.ctx().stats();
  const TaskLedger &L = FaultyRT.ctx().taskLedger();
  std::printf("\ninjected cache loss:           expensive map ran %d times "
              "(%llu retries, %llu lineage recomputations,\n"
              "                               %llu/%llu task attempts; "
              "count=%lld as in the fault-free run)\n",
              InjectedApplications,
              static_cast<unsigned long long>(S.TaskRetries),
              static_cast<unsigned long long>(S.LineageRecomputations),
              static_cast<unsigned long long>(L.totalAttempts()),
              static_cast<unsigned long long>(L.totalTasks()),
              static_cast<long long>(InjectedCount));

  bool InjectedOk = InjectedCount == 50000 &&
                    InjectedApplications == 100000 &&
                    S.LineageRecomputations == 1;
  return ManualOk && InjectedOk ? 0 : 1;
}
