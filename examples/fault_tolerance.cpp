//===- examples/fault_tolerance.cpp - Lineage vs persisted caches ---------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Why Spark programs persist the paper's "fault-tolerance" RDDs at all:
/// when cached data disappears, an un-persisted RDD must be *recomputed
/// from its lineage* (re-running the expensive upstream transformations),
/// while a MEMORY_AND_DISK RDD evicted from the heap restores from its
/// disk copy. This example measures both paths -- and shows why such
/// rarely-read caches belong in NVM (the Panthera placement for
/// contribs-like RDDs).
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"

#include <cstdio>

using namespace panthera;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::SourceData;

int main() {
  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = 32;
  core::Runtime RT(Config);
  RT.analyzeAndInstall(R"(
program ft {
  hot = textFile("h").map().persist(MEMORY_ONLY);
  for (i in 1..n) {
    checkpoint = hot.map().persist(MEMORY_AND_DISK_SER);
    checkpoint.count();
  }
}
)");

  SourceData Data(RT.ctx().config().NumPartitions);
  for (int64_t I = 0; I != 50000; ++I)
    Data[I % Data.size()].push_back({I, 1.0});

  int ExpensiveApplications = 0;
  Rdd Checkpoint =
      RT.ctx()
          .source(&Data)
          .map([&ExpensiveApplications](RddContext &C, ObjRef T) {
            ++ExpensiveApplications; // stands in for costly parsing/compute
            return C.makeTuple(C.key(T), C.value(T) * 2.0);
          })
          .persistAs("checkpoint", rdd::StorageLevel::MemoryAndDiskSer);

  Checkpoint.count();
  std::printf("materialized: expensive map ran %d times\n",
              ExpensiveApplications);

  // Scenario A: the heap copy is evicted to disk (BlockManager path).
  RT.ctx().evictToDisk(Checkpoint.node());
  Checkpoint.count();
  std::printf("after disk eviction + re-read: expensive map ran %d times "
              "(no recompute: restored from disk)\n",
              ExpensiveApplications);

  // Scenario B: the cache is lost entirely (executor failure), so the
  // next action recomputes the whole lineage.
  Checkpoint.unpersist();
  Checkpoint.count();
  std::printf("after cache loss + action:     expensive map ran %d times "
              "(lineage recomputation)\n",
              ExpensiveApplications);

  std::printf("\nthe cache was read %s -- exactly the access pattern that "
              "makes the paper place\nfault-tolerance caches in NVM: "
              "written once, read only on failure.\n",
              "twice in this whole program");
  return ExpensiveApplications == 100000 ? 0 : 1;
}
