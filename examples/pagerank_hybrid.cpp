//===- examples/pagerank_hybrid.cpp - PageRank across policies ------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's running example as a standalone program: PageRank over a
/// synthetic power-law web graph, executed under each memory-management
/// policy on the same hybrid memory, with the per-policy placement and
/// cost summary printed side by side. This is a compact version of what
/// bench/fig2c_motivation and bench/fig4_overall measure.
///
/// Usage: pagerank_hybrid [vertices] [edges] [iterations]
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "workloads/DataGen.h"

#include <cstdio>
#include <cstdlib>

using namespace panthera;
using heap::GcRoot;
using heap::ObjRef;
using rdd::Rdd;
using rdd::RddContext;
using rdd::TupleSink;

static double runPageRank(core::Runtime &RT, int64_t V, int64_t E,
                          unsigned Iters) {
  RT.analyzeAndInstall(R"(
program pagerank {
  lines = textFile("graph");
  links = lines.map().distinct().groupByKey().persist(MEMORY_ONLY);
  ranks = links.mapValues();
  for (i in 1..iters) {
    contribs = links.join(ranks).flatMap().persist(MEMORY_AND_DISK_SER);
    ranks = contribs.reduceByKey().mapValues();
  }
  ranks.count();
}
)");
  rdd::SparkContext &Ctx = RT.ctx();
  workloads::GraphData G = workloads::genPowerLawGraph(
      Ctx.config().NumPartitions, V, E, /*Skew=*/1.0, /*Seed=*/42);

  Rdd Links = Ctx.source(&G.Edges).distinct().groupByKey().persistAs(
      "links", rdd::StorageLevel::MemoryOnly);
  Rdd Ranks = Links.mapValuesWithKey([](int64_t, double) { return 1.0; });
  for (unsigned I = 0; I != Iters; ++I) {
    Rdd Contribs =
        Links
            .join(Ranks,
                  [](RddContext &C, ObjRef Left, double Rank) {
                    return C.makeTupleWithRef(C.key(Left), Rank,
                                              C.payload(Left));
                  })
            .flatMap([](RddContext &C, ObjRef T, const TupleSink &S) {
              GcRoot Buf(C.heap(), C.payload(T));
              if (Buf.get().isNull())
                return;
              uint32_t N = C.heap().arrayLength(Buf.get());
              double Share = C.value(T) / N;
              for (uint32_t J = 0; J != N; ++J)
                S(C.makeTuple(
                    static_cast<int64_t>(C.bufferValue(Buf.get(), J)),
                    Share));
            })
            .persistAs("contribs", rdd::StorageLevel::MemoryAndDiskSer);
    Ranks = Contribs.reduceByKey([](double A, double B) { return A + B; })
                .mapValues([](double S) { return 0.15 + 0.85 * S; });
  }
  return Ranks.reduce([](double A, double B) { return A + B; });
}

int main(int Argc, char **Argv) {
  int64_t V = Argc > 1 ? std::atoll(Argv[1]) : 10000;
  int64_t E = Argc > 2 ? std::atoll(Argv[2]) : 50000;
  unsigned Iters = Argc > 3 ? static_cast<unsigned>(std::atoi(Argv[3])) : 8;
  std::printf("PageRank: %lld vertices, %lld edges, %u iterations\n",
              static_cast<long long>(V), static_cast<long long>(E), Iters);
  std::printf("%-14s %10s %9s %9s %12s %10s %8s\n", "policy", "time(ms)",
              "gc(ms)", "energy(J)", "oldDRAM(KB)", "oldNVM(KB)", "sum");

  double PantheraSum = 0.0;
  for (gc::PolicyKind Policy :
       {gc::PolicyKind::DramOnly, gc::PolicyKind::Unmanaged,
        gc::PolicyKind::KingsguardNursery, gc::PolicyKind::KingsguardWrites,
        gc::PolicyKind::Panthera}) {
    core::RuntimeConfig Config;
    Config.Policy = Policy;
    Config.HeapPaperGB = 64;
    Config.DramRatio = 1.0 / 3.0;
    core::Runtime RT(Config);
    double Sum = runPageRank(RT, V, E, Iters);
    if (Policy == gc::PolicyKind::Panthera)
      PantheraSum = Sum;
    core::RunReport R = RT.report();
    std::printf("%-14s %10.2f %9.2f %9.2f %12llu %10llu %8.1f\n",
                gc::policyName(Policy), R.TotalNs / 1e6, R.GcNs / 1e6,
                R.TotalJoules,
                static_cast<unsigned long long>(
                    RT.heap().oldDram().usedBytes() / 1024),
                static_cast<unsigned long long>(
                    RT.heap().oldNvm().usedBytes() / 1024),
                Sum);
  }
  std::printf("\nNote: identical 'sum' across policies shows placement "
              "never changes results;\nPanthera keeps the hot links RDD "
              "in old-gen DRAM and the per-iteration contribs\ncaches in "
              "NVM (compare the oldDRAM/oldNVM columns).\n");

  // The same Panthera run, now with seeded task failures and cache losses
  // injected: retries and lineage recomputation must reproduce the
  // fault-free checksum exactly.
  core::RuntimeConfig Faulty;
  Faulty.Policy = gc::PolicyKind::Panthera;
  Faulty.HeapPaperGB = 64;
  Faulty.DramRatio = 1.0 / 3.0;
  Faulty.Faults.site(FaultSite::TaskExecution).FireOnNth = 5;
  Faulty.Faults.site(FaultSite::TaskExecution).MaxFires = 1;
  Faulty.Faults.site(FaultSite::CacheRead).FireOnNth = 9;
  Faulty.Faults.site(FaultSite::CacheRead).MaxFires = 1;
  core::Runtime FaultyRT(Faulty);
  double FaultySum = runPageRank(FaultyRT, V, E, Iters);
  core::RunReport FR = FaultyRT.report();
  std::printf("\nwith injected faults: sum %.1f (%s), %llu retries, "
              "%llu lineage recomputations\n",
              FaultySum,
              FaultySum == PantheraSum ? "matches fault-free Panthera"
                                       : "MISMATCH",
              static_cast<unsigned long long>(FR.Engine.TaskRetries),
              static_cast<unsigned long long>(
                  FR.Engine.LineageRecomputations));
  return FaultySum == PantheraSum ? 0 : 1;
}
