//===- examples/wordcount_mapreduce.cpp - Hadoop-style WordCount ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The canonical MapReduce program on the Hadoop-like layer (§4.3's
/// applicability story): WordCount over a Zipf-distributed token stream.
/// The output table -- the hot key-value array a downstream job would
/// probe -- is pre-tenured to DRAM through the Panthera API, while the
/// map side's intermediate pairs churn through the young generation.
///
/// Usage: wordcount_mapreduce [tokens] [vocabulary]
///
//===----------------------------------------------------------------------===//

#include "mapreduce/MapReduce.h"
#include "support/Random.h"

#include <cstdio>
#include <cstdlib>

using namespace panthera;
using namespace panthera::mapreduce;

int main(int Argc, char **Argv) {
  int64_t Tokens = Argc > 1 ? std::atoll(Argv[1]) : 200000;
  int64_t Vocabulary = Argc > 2 ? std::atoll(Argv[2]) : 5000;

  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = 32;
  core::Runtime RT(Config);

  // A Zipf token stream split across 8 input files.
  std::vector<std::vector<KeyValue>> Splits(8);
  SplitMix64 Rng(404);
  ZipfSampler Words(static_cast<uint64_t>(Vocabulary), 1.05);
  for (int64_t I = 0; I != Tokens; ++I)
    Splits[static_cast<size_t>(I) % 8].push_back(
        {static_cast<int64_t>(Words.sample(Rng)), 1.0});

  JobConfig Job;
  Job.OutputTag = MemTag::Dram; // the counts table is hot
  Job.OutputStructureId = 77;
  OutputTable Counts = runJob(
      RT, Job, Splits,
      [](const KeyValue &Token, const Emitter &Emit) {
        Emit(Token.Key, 1.0);
      },
      [](double A, double B) { return A + B; });

  uint32_t Distinct = 0;
  for (uint32_t P = 0; P != Counts.numPartitions(); ++P)
    Distinct += Counts.rows(P);
  double Top = 0;
  Counts.lookup(0, Top); // Zipf rank 0 = the most frequent word
  std::printf("wordcount: %lld tokens, %u distinct words\n",
              static_cast<long long>(Tokens), Distinct);
  std::printf("most frequent word appears %.0f times (%.1f%% of the "
              "stream)\n",
              Top, 100.0 * Top / static_cast<double>(Tokens));
  std::printf("total of all counts: %.0f\n", Counts.total());

  core::RunReport R = RT.report();
  std::printf("\nruntime: %.2f simulated ms, %llu minor GCs; counts table "
              "in old-gen DRAM (%llu KB used)\n",
              R.TotalNs / 1e6,
              static_cast<unsigned long long>(R.Gc.MinorGcs),
              static_cast<unsigned long long>(
                  RT.heap().oldDram().usedBytes() / 1024));
  Counts.release();
  return 0;
}
