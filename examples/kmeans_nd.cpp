//===- examples/kmeans_nd.cpp - Multi-dimensional K-Means -----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Multi-dimensional K-Means over heap-resident coordinate buffers: the
/// point RDD carries a CompactBuffer per point (the Fig 1 nested shape),
/// centers ship as DRAM-tagged broadcast blocks, and assignment statistics
/// flow through flatMap + reduceByKey -- structurally Spark MLlib's
/// implementation. Shows the persisted point set living in old-gen DRAM
/// while per-iteration statistics churn through the young generation.
///
/// Usage: kmeans_nd [points] [dims] [clusters] [iterations]
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "mllib/MLlib.h"
#include "workloads/DataGen.h"

#include <cstdio>
#include <cstdlib>

using namespace panthera;
using rdd::Rdd;

int main(int Argc, char **Argv) {
  int64_t Points = Argc > 1 ? std::atoll(Argv[1]) : 20000;
  uint32_t Dims = Argc > 2 ? static_cast<uint32_t>(std::atoi(Argv[2])) : 4;
  uint32_t K = Argc > 3 ? static_cast<uint32_t>(std::atoi(Argv[3])) : 2;
  uint32_t Iters = Argc > 4 ? static_cast<uint32_t>(std::atoi(Argv[4])) : 10;

  core::RuntimeConfig Config;
  Config.Policy = gc::PolicyKind::Panthera;
  Config.HeapPaperGB = 64;
  core::Runtime RT(Config);
  RT.analyzeAndInstall(R"(
program kmeansnd {
  points = textFile("pts").groupByKey().persist(MEMORY_ONLY);
  for (i in 1..iters) {
    stats = points.flatMap().reduceByKey();
    stats.collect();
  }
}
)");

  rdd::SourceData Data = workloads::genClusteredPointsND(
      RT.ctx().config().NumPartitions, Points, Dims, K, /*Seed=*/99);
  Rdd PointSet = RT.ctx()
                     .source(&Data)
                     .groupByKey()
                     .persistAs("points", rdd::StorageLevel::MemoryOnly);

  mllib::KMeansNDModel Model =
      mllib::trainKMeansND(PointSet, K, Dims, Iters);

  std::printf("k-means: %lld points x %u dims, k=%u, %u iterations\n",
              static_cast<long long>(Points), Dims, K, Iters);
  std::printf("final cost: %.1f (%.2f per point)\n", Model.Cost,
              Model.Cost / static_cast<double>(Points));
  for (uint32_t C = 0; C != K; ++C) {
    std::printf("center %u: (", C);
    for (uint32_t D = 0; D != Dims; ++D)
      std::printf("%s%.1f", D ? ", " : "", Model.Centers[C * Dims + D]);
    std::printf(")   [a true center: (");
    for (uint32_t D = 0; D != Dims; ++D)
      std::printf("%s%.1f", D ? ", " : "",
                  workloads::clusterCenterND(C, D, K));
    std::printf(")]\n");
  }
  std::printf("(k-means with diagonal initialization can settle in a "
              "local optimum for k > 2)\n");

  core::RunReport R = RT.report();
  std::printf("\nruntime: %.2f simulated ms, gc %.2f ms; point set in "
              "old-gen DRAM (%llu KB)\n",
              R.TotalNs / 1e6, R.GcNs / 1e6,
              static_cast<unsigned long long>(
                  RT.heap().oldDram().usedBytes() / 1024));
  return 0;
}
