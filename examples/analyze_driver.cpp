//===- examples/analyze_driver.cpp - Standalone tag-inference tool --------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A compiler-style driver for the §3 static analysis: reads a driver
/// program in the DSL (from a file argument or stdin), parses it, runs
/// memory-tag inference, and prints the per-variable placement report
/// with reasons -- the "instrumentation plan" Panthera would pass to the
/// runtime.
///
/// Usage:
///   analyze_driver file.spark      # analyze a file
///   analyze_driver                 # ... or read the program from stdin
///   analyze_driver --demo          # analyze the built-in PageRank demo
///
/// Flags (combinable, before or after the file argument):
///   --instrument   also print the §4.2.1-instrumented program
///                  (rddAlloc calls inserted at materialization points)
///   --stages       also print the §2 lineage-to-stage plan
///   --unpersist-aware  enable the §5.5 analysis extension
///
//===----------------------------------------------------------------------===//

#include "analysis/Instrumenter.h"
#include "analysis/StagePlanner.h"
#include "analysis/TagInference.h"
#include "dsl/Parser.h"
#include "dsl/Printer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>

using namespace panthera;

static const char *DemoProgram = R"(program pagerank {
  lines = textFile("input");
  links = lines.map().distinct().groupByKey().persist(MEMORY_ONLY);
  ranks = links.mapValues();
  for (i in 1..iters) {
    contribs = links.join(ranks).flatMap().persist(MEMORY_AND_DISK_SER);
    ranks = contribs.reduceByKey().mapValues();
  }
  ranks.count();
}
)";

int main(int Argc, char **Argv) {
  bool Demo = false, Instrument = false, Stages = false;
  analysis::AnalysisOptions Options;
  const char *File = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--demo") == 0)
      Demo = true;
    else if (std::strcmp(Argv[I], "--instrument") == 0)
      Instrument = true;
    else if (std::strcmp(Argv[I], "--stages") == 0)
      Stages = true;
    else if (std::strcmp(Argv[I], "--unpersist-aware") == 0)
      Options.UnpersistAware = true;
    else
      File = Argv[I];
  }

  std::string Source;
  if (Demo) {
    Source = DemoProgram;
    std::printf("(analyzing the built-in PageRank demo)\n\n%s\n",
                DemoProgram);
  } else if (File) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File);
      return 1;
    }
    Source.assign(std::istreambuf_iterator<char>(In),
                  std::istreambuf_iterator<char>());
  } else {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Source = Buffer.str();
  }

  std::vector<dsl::Diagnostic> Diags;
  dsl::Program Program = dsl::parseDriverProgram(Source, Diags);
  if (!Diags.empty()) {
    for (const dsl::Diagnostic &D : Diags)
      std::fprintf(stderr, "%u:%u: error: %s\n", D.Loc.Line, D.Loc.Column,
                   D.Message.c_str());
    return 1;
  }

  analysis::AnalysisResult Result =
      analysis::inferMemoryTags(Program, Options);
  std::printf("program '%s': %zu materialized RDD variable(s)\n",
              Program.Name.c_str(), Result.Vars.size());
  std::printf("%-12s %-6s %-26s %s\n", "variable", "tag", "storage level",
              "reason");
  for (const auto &[Var, Info] : Result.Vars)
    std::printf("%-12s %-6s %-26s %s\n", Var.c_str(), memTagName(Info.Tag),
                Info.ExpandedLevel.c_str(),
                analysis::tagReasonName(Info.Reason));
  for (const std::string &Note : Result.Notes)
    std::printf("note: %s\n", Note.c_str());

  if (Stages) {
    analysis::StagePlan Plan = analysis::planStages(Program);
    std::printf("\nstage plan (one representative iteration):\n%s",
                analysis::printStagePlan(Plan).c_str());
  }
  if (Instrument) {
    analysis::InstrumentationStats Stats;
    dsl::Program Out =
        analysis::instrumentProgram(Program, Result, &Stats);
    std::printf("\ninstrumented program (%u rddAlloc call%s inserted):\n%s",
                Stats.CallsInserted, Stats.CallsInserted == 1 ? "" : "s",
                dsl::printProgram(Out).c_str());
  }
  return 0;
}
