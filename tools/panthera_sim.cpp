//===- tools/panthera_sim.cpp - The all-in-one simulation driver ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Command-line driver over the whole system: pick a workload, a memory
/// policy, and a configuration; get the complete report -- timing split,
/// GC log, energy breakdown, device traffic, and heap residency.
///
/// Usage:
///   panthera_sim [--workload=PR|KM|LR|TC|CC|SSSP|BC]
///                [--policy=panthera|unmanaged|dram|kn|kw]
///                [--heap=64] [--ratio=0.333] [--scale=1.0]
///                [--nursery=0.1667] [--no-eager] [--no-padding]
///                [--gclog] [--verify] [--list]
///
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace panthera;

static gc::PolicyKind parsePolicy(const std::string &Name) {
  if (Name == "unmanaged")
    return gc::PolicyKind::Unmanaged;
  if (Name == "dram" || Name == "dram-only")
    return gc::PolicyKind::DramOnly;
  if (Name == "kn")
    return gc::PolicyKind::KingsguardNursery;
  if (Name == "kw")
    return gc::PolicyKind::KingsguardWrites;
  return gc::PolicyKind::Panthera;
}

int main(int Argc, char **Argv) {
  std::string Workload = "PR";
  std::string Policy = "panthera";
  core::RuntimeConfig Config;
  double Scale = 1.0;
  bool GcLog = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Val = [&](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return std::strncmp(A, Prefix, N) == 0 ? A + N : nullptr;
    };
    if (const char *V = Val("--workload="))
      Workload = V;
    else if (const char *V = Val("--policy="))
      Policy = V;
    else if (const char *V = Val("--heap="))
      Config.HeapPaperGB = static_cast<unsigned>(std::atoi(V));
    else if (const char *V = Val("--ratio="))
      Config.DramRatio = std::atof(V);
    else if (const char *V = Val("--nursery="))
      Config.NurseryFraction = std::atof(V);
    else if (const char *V = Val("--scale="))
      Scale = std::atof(V);
    else if (std::strcmp(A, "--no-eager") == 0)
      Config.EagerPromotion = false;
    else if (std::strcmp(A, "--no-padding") == 0)
      Config.CardPadding = false;
    else if (std::strcmp(A, "--gclog") == 0)
      GcLog = true;
    else if (std::strcmp(A, "--verify") == 0)
      Config.VerifyHeap = true;
    else if (std::strcmp(A, "--list") == 0) {
      for (const workloads::WorkloadSpec &Spec : workloads::allWorkloads())
        std::printf("%-5s %-36s %s\n", Spec.ShortName.c_str(),
                    Spec.FullName.c_str(), Spec.Dataset.c_str());
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see the file header)\n", A);
      return 1;
    }
  }

  const workloads::WorkloadSpec *Spec = workloads::findWorkload(Workload);
  if (!Spec) {
    std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                 Workload.c_str());
    return 1;
  }
  Config.Policy = parsePolicy(Policy);

  std::printf("%s under %s | heap %u GB, DRAM ratio %.3f, nursery %.3f, "
              "scale %.2f\n",
              Spec->FullName.c_str(), gc::policyName(Config.Policy),
              Config.HeapPaperGB, Config.DramRatio, Config.NurseryFraction,
              Scale);

  core::Runtime RT(Config);
  double Checksum = Spec->Run(RT, Scale);
  core::RunReport R = RT.report();

  std::printf("\nresult checksum: %g\n", Checksum);
  std::printf("\ntime:   %10.3f simulated ms total\n", R.TotalNs / 1e6);
  std::printf("        %10.3f ms mutator (%.1f%%)\n", R.MutatorNs / 1e6,
              100.0 * R.MutatorNs / R.TotalNs);
  std::printf("        %10.3f ms GC (%.1f%%), %llu minor + %llu major\n",
              R.GcNs / 1e6, 100.0 * R.GcNs / R.TotalNs,
              static_cast<unsigned long long>(R.Gc.MinorGcs),
              static_cast<unsigned long long>(R.Gc.MajorGcs));
  std::printf("\ntraffic: DRAM %llu reads / %llu writes, NVM %llu reads / "
              "%llu writes (lines)\n",
              static_cast<unsigned long long>(R.DramTraffic.LineReads),
              static_cast<unsigned long long>(R.DramTraffic.LineWrites),
              static_cast<unsigned long long>(R.NvmTraffic.LineReads),
              static_cast<unsigned long long>(R.NvmTraffic.LineWrites));
  std::printf("\nenergy: %8.3f J total = %.3f DRAM static + %.3f NVM "
              "static + %.3f DRAM dyn + %.3f NVM dyn\n",
              R.TotalJoules, R.Energy.DramStaticJoules,
              R.Energy.NvmStaticJoules, R.Energy.DramDynamicJoules,
              R.Energy.NvmDynamicJoules);
  std::printf("\nheap:   old DRAM %llu / %llu KB, old NVM %llu / %llu KB\n",
              static_cast<unsigned long long>(
                  RT.heap().oldDram().usedBytes() / 1024),
              static_cast<unsigned long long>(
                  RT.heap().oldDram().sizeBytes() / 1024),
              static_cast<unsigned long long>(
                  RT.heap().oldNvm().usedBytes() / 1024),
              static_cast<unsigned long long>(
                  RT.heap().oldNvm().sizeBytes() / 1024));
  std::printf("        %llu arrays pretenured, %llu eager promotions, "
              "%llu/%llu RDD arrays migrated to DRAM/NVM\n",
              static_cast<unsigned long long>(
                  RT.heap().stats().ArraysPretenured),
              static_cast<unsigned long long>(R.Gc.EagerPromotions),
              static_cast<unsigned long long>(R.Gc.MigratedRddArraysToDram),
              static_cast<unsigned long long>(R.Gc.MigratedRddArraysToNvm));
  std::printf("engine: %llu stages, %llu shuffle records (%llu spills), "
              "%llu RDDs materialized, %llu evicted, %llu monitored calls\n",
              static_cast<unsigned long long>(R.Engine.StagesRun),
              static_cast<unsigned long long>(R.Engine.ShuffleRecords),
              static_cast<unsigned long long>(R.Engine.ShuffleSpills),
              static_cast<unsigned long long>(R.Engine.RddsMaterialized),
              static_cast<unsigned long long>(R.Engine.RddsEvictedToDisk),
              static_cast<unsigned long long>(R.MonitoredCalls));

  if (GcLog) {
    std::printf("\ngc log:\n%4s %-6s %9s %9s %8s %8s %8s %8s\n", "#",
                "kind", "t(ms)", "dur(us)", "root", "d2y", "n2y",
                "drain");
    unsigned Index = 0;
    for (const gc::GcEvent &E : RT.collector().eventLog())
      std::printf("%4u %-6s %9.2f %9.1f %8.1f %8.1f %8.1f %8.1f  %s\n",
                  Index++, E.Major ? "major" : "minor", E.StartNs / 1e6,
                  E.DurationNs / 1e3, E.RootTaskNs / 1e3,
                  E.DramToYoungTaskNs / 1e3, E.NvmToYoungTaskNs / 1e3,
                  E.DrainNs / 1e3, E.Reason);
  }
  return 0;
}
