//===- tools/panthera_sim.cpp - The all-in-one simulation driver ----------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Command-line driver over the whole system: pick a workload, a memory
/// policy, and a configuration; get the complete report -- timing split,
/// GC log, energy breakdown, device traffic, and heap residency.
///
/// Usage:
///   panthera_sim [--workload=PR|KM|LR|TC|CC|SSSP|BC|SW]
///                [--policy=panthera|dynamic|unmanaged|dram|kn|kw]
///                [--hotness-sample=N] [--migrate-threshold=F]
///                [--migrate-max-pages=N]
///                [--max-pause-us=N] [--pretenure-calls=N]
///                [--inc-step-allocs=N] [--offheap-mb=N]
///                [--heap=64] [--ratio=0.333] [--scale=1.0]
///                [--nursery=0.1667] [--no-eager] [--no-padding]
///                [--threads=N] [--gclog] [--verify] [--list] [--help]
///                [--metrics-json=FILE] [--trace-json=FILE]
///                [--fault=SITE:p=0.01] [--fault=SITE:nth=5]
///                [--fault-seed=N] [--task-retries=4] [--verify-recovery]
///                [--executors=N] [--net-bw=GBps] [--net-lat-us=US]
///                [--no-speculation] [--speculation-mult=F]
///                [--slow-factor=F] [--fetch-retries=N]
///                [--decommission=E@K] [--join-at=K]
///
/// SITE is one of task, cache, alloc, shuffle, executor, slow-executor,
/// fetch. Fault runs exit 2 if the workload still fails after the staged
/// fallback and retries.
///
/// --threads=N sets the worker-thread count shared by stage execution and
/// the parallel collector (docs/parallelism.md). 0 (the default) means
/// auto: $PANTHERA_THREADS if set, otherwise the hardware thread count.
/// Results and simulated time/energy are identical at every N; only
/// wall-clock time changes.
///
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"
#include "support/CliParse.h"
#include "support/Errors.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

using namespace panthera;

static gc::PolicyKind parsePolicy(const std::string &Name) {
  if (Name == "dynamic")
    return gc::PolicyKind::PantheraDynamic;
  if (Name == "unmanaged")
    return gc::PolicyKind::Unmanaged;
  if (Name == "dram" || Name == "dram-only")
    return gc::PolicyKind::DramOnly;
  if (Name == "kn")
    return gc::PolicyKind::KingsguardNursery;
  if (Name == "kw")
    return gc::PolicyKind::KingsguardWrites;
  return gc::PolicyKind::Panthera;
}

/// Parses "SITE:p=0.01" or "SITE:nth=5" into \p Plan through the library
/// parser, so out-of-range probabilities get the typed FaultConfigError
/// diagnostic. Returns false (and prints it) on malformed input.
static bool parseFaultFlag(const char *Spec, FaultPlan &Plan) {
  try {
    parseFaultSpec(Spec, Plan);
    return true;
  } catch (const FaultConfigError &E) {
    std::fprintf(stderr, "bad --fault: %s\n", E.what());
    return false;
  }
}

/// Parses "EXEC@STAGE" for --decommission (an executor index and the
/// 1-based cluster stage at whose start it leaves).
static bool parseDecommission(const char *Spec, cluster::ElasticEvent &Ev) {
  const char *At = std::strchr(Spec, '@');
  if (!At)
    return false;
  uint64_t Exec = 0, Stage = 0;
  if (!support::parseUnsigned(std::string(Spec, At - Spec).c_str(), 0, 255,
                              Exec) ||
      !support::parseUnsigned(At + 1, 1, 1u << 20, Stage))
    return false;
  Ev.Join = false;
  Ev.Exec = static_cast<unsigned>(Exec);
  Ev.AtStage = Stage;
  return true;
}

int main(int Argc, char **Argv) {
  std::string Workload = "PR";
  std::string Policy = "panthera";
  core::RuntimeConfig Config;
  double Scale = 1.0;
  bool GcLog = false;
  std::string MetricsPath;
  std::string TracePath;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Val = [&](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return std::strncmp(A, Prefix, N) == 0 ? A + N : nullptr;
    };
    // Strict numeric parsing: silent atoi/atof zeros ("--heap=x" becoming
    // a 0-GB heap) are rejected with a diagnostic naming the range.
    auto BadFlag = [&](const char *Flag, const char *Want) {
      std::fprintf(stderr, "bad value in '%s' (want %s)\n", Flag, Want);
      return 1;
    };
    uint64_t U = 0;
    double F = 0.0;
    if (const char *V = Val("--workload="))
      Workload = V;
    else if (const char *V = Val("--policy="))
      Policy = V;
    else if (const char *V = Val("--heap=")) {
      if (!support::parseUnsigned(V, 1, 1u << 20, U))
        return BadFlag(A, "an integer GB count >= 1");
      Config.HeapPaperGB = static_cast<unsigned>(U);
    } else if (const char *V = Val("--ratio=")) {
      if (!support::parseF64(V, 0.0, 1.0, F))
        return BadFlag(A, "a number in [0, 1]");
      Config.DramRatio = F;
    } else if (const char *V = Val("--nursery=")) {
      if (!support::parseF64(V, 1e-6, 0.9, F))
        return BadFlag(A, "a fraction in (0, 0.9]");
      Config.NurseryFraction = F;
    } else if (const char *V = Val("--scale=")) {
      if (!support::parseF64(V, 1e-9, 1e9, F) || F <= 0.0)
        return BadFlag(A, "a positive number");
      Scale = F;
    } else if (std::strcmp(A, "--no-eager") == 0)
      Config.EagerPromotion = false;
    else if (std::strcmp(A, "--no-padding") == 0)
      Config.CardPadding = false;
    else if (const char *V = Val("--threads=")) {
      if (!support::parseUnsigned(V, 0, 4096, U))
        return BadFlag(A, "an integer in [0, 4096]");
      Config.NumThreads = static_cast<unsigned>(U);
    } else if (std::strcmp(A, "--gclog") == 0)
      GcLog = true;
    else if (std::strcmp(A, "--verify") == 0)
      Config.VerifyHeap = true;
    else if (const char *V = Val("--metrics-json="))
      MetricsPath = V;
    else if (const char *V = Val("--trace-json="))
      TracePath = V;
    else if (const char *V = Val("--fault-seed=")) {
      if (!support::parseUnsigned(V, 0, ~0ull, U))
        return BadFlag(A, "an unsigned integer");
      Config.Faults.Seed = U;
    } else if (const char *V = Val("--fault=")) {
      if (!parseFaultFlag(V, Config.Faults))
        return 1;
    } else if (const char *V = Val("--task-retries=")) {
      if (!support::parseUnsigned(V, 1, 1u << 20, U))
        return BadFlag(A, "an integer attempt budget >= 1");
      Config.Engine.MaxTaskAttempts = static_cast<uint32_t>(U);
    } else if (std::strcmp(A, "--verify-recovery") == 0)
      Config.VerifyHeapAfterRecovery = true;
    else if (const char *V = Val("--executors=")) {
      if (!support::parseUnsigned(V, 1, 256, U))
        return BadFlag(A, "an executor count in [1, 256]");
      Config.Cluster.NumExecutors = static_cast<unsigned>(U);
    } else if (const char *V = Val("--net-bw=")) {
      if (!support::parseF64(V, 1e-6, 1e6, F))
        return BadFlag(A, "a bandwidth in GB/s > 0");
      Config.Cluster.NetBandwidthGBps = F;
    } else if (const char *V = Val("--net-lat-us=")) {
      if (!support::parseF64(V, 0.0, 1e9, F))
        return BadFlag(A, "a latency in microseconds >= 0");
      Config.Cluster.NetLatencyUs = F;
    } else if (std::strcmp(A, "--no-speculation") == 0)
      Config.Cluster.SpeculationEnabled = false;
    else if (const char *V = Val("--speculation-mult=")) {
      if (!support::parseF64(V, 1.0, 1e6, F))
        return BadFlag(A, "a straggler threshold multiplier >= 1");
      Config.Cluster.SpeculationMultiplier = F;
    } else if (const char *V = Val("--slow-factor=")) {
      if (!support::parseF64(V, 1.0, 1e6, F))
        return BadFlag(A, "a slowdown factor >= 1");
      Config.Cluster.SlowExecutorFactor = F;
    } else if (const char *V = Val("--fetch-retries=")) {
      if (!support::parseUnsigned(V, 1, 1u << 20, U))
        return BadFlag(A, "a fetch attempt budget >= 1");
      Config.Cluster.FetchRetryLimit = static_cast<uint32_t>(U);
    } else if (const char *V = Val("--decommission=")) {
      cluster::ElasticEvent Ev;
      if (!parseDecommission(V, Ev))
        return BadFlag(A, "EXEC@STAGE, e.g. --decommission=2@3");
      Config.Cluster.Elastic.push_back(Ev);
    } else if (const char *V = Val("--join-at=")) {
      if (!support::parseUnsigned(V, 1, 1u << 20, U))
        return BadFlag(A, "a 1-based cluster stage index >= 1");
      cluster::ElasticEvent Ev;
      Ev.Join = true;
      Ev.AtStage = U;
      Config.Cluster.Elastic.push_back(Ev);
    } else if (const char *V = Val("--hosts=")) {
      if (!support::parseUnsigned(V, 0, 256, U))
        return BadFlag(A, "a host count in [0, 256] (0 = one per executor)");
      Config.Cluster.NumHosts = static_cast<unsigned>(U);
    } else if (const char *V = Val("--zero-copy-shuffle=")) {
      if (std::strcmp(V, "on") == 0)
        Config.Cluster.ZeroCopyShuffle = true;
      else if (std::strcmp(V, "off") == 0)
        Config.Cluster.ZeroCopyShuffle = false;
      else
        return BadFlag(A, "on or off");
    } else if (std::strcmp(A, "--no-zero-copy-shuffle") == 0)
      Config.Cluster.ZeroCopyShuffle = false;
    else if (const char *V = Val("--memsim-path=")) {
      if (std::strcmp(V, "batched") == 0)
        Config.AccessPath = memsim::AccessPathMode::Batched;
      else if (std::strcmp(V, "per-line") == 0)
        Config.AccessPath = memsim::AccessPathMode::PerLine;
      else
        return BadFlag(A, "batched or per-line");
    } else if (const char *V = Val("--epoch-ns=")) {
      if (!support::parseF64(V, 1.0, 1e15, F))
        return BadFlag(A, "an epoch length in simulated ns >= 1");
      Config.EpochNs = F;
    } else if (const char *V = Val("--hotness-sample=")) {
      if (!support::parseUnsigned(V, 0, 1u << 30, U))
        return BadFlag(A, "a line stride >= 0 (0 disables profiling)");
      Config.HotnessSampleEvery = U;
    } else if (const char *V = Val("--migrate-threshold=")) {
      if (!support::parseF64(V, 1e-3, 1e9, F))
        return BadFlag(A, "a samples-per-page density > 0");
      Config.MigrateHotThreshold = F;
    } else if (const char *V = Val("--migrate-max-pages=")) {
      if (!support::parseUnsigned(V, 1, 1u << 20, U))
        return BadFlag(A, "a page budget >= 1");
      Config.MigrateMaxPagesPerStep = U;
    } else if (const char *V = Val("--max-pause-us=")) {
      if (!support::parseUnsigned(V, 0, 1u << 30, U))
        return BadFlag(A, "a pause budget in microseconds >= 0");
      Config.MaxPauseUs = static_cast<uint32_t>(U);
    } else if (const char *V = Val("--pretenure-calls=")) {
      if (!support::parseUnsigned(V, 0, 1u << 30, U))
        return BadFlag(A, "a call count >= 0 (0 disables the oracle)");
      Config.PretenureMinCalls = static_cast<uint32_t>(U);
    } else if (const char *V = Val("--inc-step-allocs=")) {
      if (!support::parseUnsigned(V, 1, 1u << 30, U))
        return BadFlag(A, "an allocation count >= 1");
      Config.IncStepAllocs = static_cast<uint32_t>(U);
    } else if (const char *V = Val("--offheap-mb=")) {
      if (!support::parseUnsigned(V, 0, 1u << 30, U))
        return BadFlag(A, "a budget in paper MB >= 0 (0 = no tier)");
      Config.OffHeapMB = static_cast<unsigned>(U);
    }
    else if (std::strcmp(A, "--list") == 0) {
      for (const workloads::WorkloadSpec &Spec : workloads::allWorkloads())
        std::printf("%-5s %-36s %s\n", Spec.ShortName.c_str(),
                    Spec.FullName.c_str(), Spec.Dataset.c_str());
      for (const workloads::WorkloadSpec &Spec :
           workloads::extensionWorkloads())
        std::printf("%-5s %-36s %s\n", Spec.ShortName.c_str(),
                    Spec.FullName.c_str(), Spec.Dataset.c_str());
      return 0;
    } else if (std::strcmp(A, "--help") == 0 || std::strcmp(A, "-h") == 0) {
      std::printf(
          "usage: panthera_sim [flags]\n"
          "  --workload=NAME    PR|KM|LR|TC|CC|SSSP|BC|SW (--list for all)\n"
          "  --policy=NAME      panthera|dynamic|unmanaged|dram|kn|kw\n"
          "                     (dynamic = Panthera + online hotness\n"
          "                     profiling with between-GC page migration)\n"
          "  --hotness-sample=N sample the access stream every N cache\n"
          "                     lines under --policy=dynamic (default 64;\n"
          "                     0 turns profiling off, byte-identical to\n"
          "                     --policy=panthera)\n"
          "  --migrate-threshold=F  samples-per-page density at which a\n"
          "                     region migrates to DRAM (default 2.0)\n"
          "  --migrate-max-pages=N  page-swap budget per migration step\n"
          "                     (default 256)\n"
          "  --max-pause-us=N   incremental old-gen marking with an N us\n"
          "                     pause budget per mark step (default 0 =\n"
          "                     stop-the-world, byte-identical to builds\n"
          "                     without the feature; docs/gc_pause.md)\n"
          "  --pretenure-calls=N  pretenure tagged arrays whose RDD has\n"
          "                     seen >= N monitored calls in the current\n"
          "                     window (default 0 = oracle off)\n"
          "  --inc-step-allocs=N  allocations between incremental mark\n"
          "                     steps (default 64; ignored at\n"
          "                     --max-pause-us=0)\n"
          "  --offheap-mb=N     off-heap serialized cache tier budget in\n"
          "                     paper MB (docs/offheap.md); OFF_HEAP\n"
          "                     persists serialize into untraced native\n"
          "                     regions behind GC leaf stubs. Default 0 =\n"
          "                     no tier, byte-identical output\n"
          "  --heap=GB          heap size in paper GB (default 64)\n"
          "  --ratio=F          DRAM : total memory (default 0.333)\n"
          "  --nursery=F        nursery fraction of the heap\n"
          "  --scale=F          dataset scale factor (default 1.0)\n"
          "  --threads=N        worker threads shared by stage execution\n"
          "                     and the parallel GC; 0 = auto from\n"
          "                     $PANTHERA_THREADS or the hardware thread\n"
          "                     count. Output is identical at every N;\n"
          "                     only wall-clock time changes.\n"
          "  --no-eager         disable eager promotion (ablation)\n"
          "  --no-padding       disable card padding (ablation)\n"
          "  --gclog            print the per-collection GC log\n"
          "  --verify           verify the heap after every collection\n"
          "  --metrics-json=F   write the flat metrics registry to F\n"
          "  --trace-json=F     write the chrome://tracing span/event\n"
          "                     trace (simulated clock) to F; load it at\n"
          "                     chrome://tracing or ui.perfetto.dev\n"
          "  --fault=SITE:p=X   Bernoulli fault at one of the sites\n"
          "                     task|cache|alloc|shuffle|executor|\n"
          "                     slow-executor|fetch\n"
          "  --fault=SITE:nth=N fire on the Nth occurrence instead\n"
          "  --fault-seed=N     fault-plan seed\n"
          "  --task-retries=N   per-task attempt budget\n"
          "  --verify-recovery  verify the heap after every recovery path\n"
          "  --executors=N      simulated executors (docs/cluster.md);\n"
          "                     1 (default) runs the single-heap engine\n"
          "                     byte-identically, N > 1 shards the heap\n"
          "                     and runs the distributed shuffle\n"
          "  --net-bw=GBps      fabric bandwidth for remote shuffle\n"
          "                     fetches (default 10)\n"
          "  --net-lat-us=US    fabric per-transfer latency (default 200)\n"
          "  --no-speculation   disable speculative execution of straggler\n"
          "                     tasks (docs/robustness.md)\n"
          "  --speculation-mult=F  straggler threshold: speculate when a\n"
          "                     task runs F x the stage median (default 1.5)\n"
          "  --slow-factor=F    slowdown applied by a slow-executor fault\n"
          "                     fire (default 4)\n"
          "  --fetch-retries=N  transient-fetch attempt budget before the\n"
          "                     block is declared lost (default 3)\n"
          "  --decommission=E@K drain executor E at the start of cluster\n"
          "                     stage K (1-based); repeatable\n"
          "  --join-at=K        add a fresh executor at the start of\n"
          "                     cluster stage K; repeatable\n"
          "  --hosts=N          pack the executors onto N physical hosts\n"
          "                     (executor E lives on host E %% N); 0\n"
          "                     (default) gives every executor its own\n"
          "                     host, so nothing is co-located\n"
          "  --zero-copy-shuffle=on|off\n"
          "                     shared-memory shuffle between co-located\n"
          "                     executors: same-host fetches skip the\n"
          "                     serialization + fabric charges (default\n"
          "                     on; inert until --hosts co-locates)\n"
          "  --no-zero-copy-shuffle  same as --zero-copy-shuffle=off\n"
          "  --memsim-path=P    memory-simulator implementation: batched\n"
          "                     (default fast path) or per-line (the\n"
          "                     reference loop; bit-identical output)\n"
          "  --epoch-ns=NS      bandwidth-trace bucket length in simulated\n"
          "                     ns (default 100000)\n"
          "  --list             list workloads and exit\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", A);
      return 1;
    }
  }

  const workloads::WorkloadSpec *Spec = workloads::findWorkload(Workload);
  if (!Spec) {
    std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                 Workload.c_str());
    return 1;
  }
  Config.Policy = parsePolicy(Policy);

  // Note: the banner deliberately omits the resolved worker count -- the
  // whole report is byte-identical at every --threads value, and keeping
  // it that way makes the invariance trivially checkable with diff(1).
  std::printf("%s under %s | heap %u GB, DRAM ratio %.3f, nursery %.3f, "
              "scale %.2f\n",
              Spec->FullName.c_str(), gc::policyName(Config.Policy),
              Config.HeapPaperGB, Config.DramRatio, Config.NurseryFraction,
              Scale);

  std::unique_ptr<core::Runtime> Owner;
  double Checksum = 0.0;
  // Telemetry is written on failure paths too -- a run that dies on OOM
  // is precisely the one whose trace is worth inspecting.
  auto DumpTelemetry = [&]() -> bool {
    if (!Owner)
      return true;
    bool Ok = true;
    auto WriteFile = [&](const std::string &Path, const char *What,
                         const std::function<void(std::FILE *)> &Write) {
      if (Path.empty())
        return;
      std::FILE *F = std::fopen(Path.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "cannot open %s file '%s'\n", What,
                     Path.c_str());
        Ok = false;
        return;
      }
      Write(F);
      std::fclose(F);
    };
    WriteFile(MetricsPath, "--metrics-json",
              [&](std::FILE *F) { Owner->writeMetricsJson(F); });
    WriteFile(TracePath, "--trace-json",
              [&](std::FILE *F) { Owner->writeTraceJson(F); });
    return Ok;
  };
  try {
    Owner = std::make_unique<core::Runtime>(Config);
    Checksum = Spec->Run(*Owner, Scale);
  } catch (const OutOfMemoryError &E) {
    std::fprintf(stderr,
                 "out of memory after staged fallback (emergency GC, "
                 "NVM overflow, cache eviction): %s\n",
                 E.what());
    DumpTelemetry();
    return 2;
  } catch (const EngineError &E) {
    std::fprintf(stderr, "engine failure: %s\n", E.what());
    DumpTelemetry();
    return 2;
  }
  core::Runtime &RT = *Owner;
  core::RunReport R = RT.report();

  std::printf("\nresult checksum: %g\n", Checksum);
  std::printf("\ntime:   %10.3f simulated ms total\n", R.TotalNs / 1e6);
  std::printf("        %10.3f ms mutator (%.1f%%)\n", R.MutatorNs / 1e6,
              100.0 * R.MutatorNs / R.TotalNs);
  std::printf("        %10.3f ms GC (%.1f%%), %llu minor + %llu major\n",
              R.GcNs / 1e6, 100.0 * R.GcNs / R.TotalNs,
              static_cast<unsigned long long>(R.Gc.MinorGcs),
              static_cast<unsigned long long>(R.Gc.MajorGcs));
  std::printf("\ntraffic: DRAM %llu reads / %llu writes, NVM %llu reads / "
              "%llu writes (lines)\n",
              static_cast<unsigned long long>(R.DramTraffic.LineReads),
              static_cast<unsigned long long>(R.DramTraffic.LineWrites),
              static_cast<unsigned long long>(R.NvmTraffic.LineReads),
              static_cast<unsigned long long>(R.NvmTraffic.LineWrites));
  std::printf("\nenergy: %8.3f J total = %.3f DRAM static + %.3f NVM "
              "static + %.3f DRAM dyn + %.3f NVM dyn\n",
              R.TotalJoules, R.Energy.DramStaticJoules,
              R.Energy.NvmStaticJoules, R.Energy.DramDynamicJoules,
              R.Energy.NvmDynamicJoules);
  std::printf("\nheap:   old DRAM %llu / %llu KB, old NVM %llu / %llu KB\n",
              static_cast<unsigned long long>(
                  RT.heap().oldDram().usedBytes() / 1024),
              static_cast<unsigned long long>(
                  RT.heap().oldDram().sizeBytes() / 1024),
              static_cast<unsigned long long>(
                  RT.heap().oldNvm().usedBytes() / 1024),
              static_cast<unsigned long long>(
                  RT.heap().oldNvm().sizeBytes() / 1024));
  std::printf("        %llu arrays pretenured, %llu eager promotions, "
              "%llu/%llu RDD arrays migrated to DRAM/NVM\n",
              static_cast<unsigned long long>(
                  RT.heap().stats().ArraysPretenured),
              static_cast<unsigned long long>(R.Gc.EagerPromotions),
              static_cast<unsigned long long>(R.Gc.MigratedRddArraysToDram),
              static_cast<unsigned long long>(R.Gc.MigratedRddArraysToNvm));
  std::printf("engine: %llu stages, %llu shuffle records (%llu spills), "
              "%llu RDDs materialized, %llu evicted, %llu monitored calls\n",
              static_cast<unsigned long long>(R.Engine.StagesRun),
              static_cast<unsigned long long>(R.Engine.ShuffleRecords),
              static_cast<unsigned long long>(R.Engine.ShuffleSpills),
              static_cast<unsigned long long>(R.Engine.RddsMaterialized),
              static_cast<unsigned long long>(R.Engine.RddsEvictedToDisk),
              static_cast<unsigned long long>(R.MonitoredCalls));

  if (offheap::OffHeapCache *OC = RT.offHeapCache()) {
    const offheap::OffHeapCacheStats &OS = OC->stats();
    const offheap::RegionAllocatorStats &RS = OC->allocator().stats();
    std::printf("\noffheap: %llu partitions cached (%llu KB), %llu evicted, "
                "%llu unpersisted\n",
                static_cast<unsigned long long>(OS.PartitionsCached),
                static_cast<unsigned long long>(OS.BytesCached / 1024),
                static_cast<unsigned long long>(OS.PartitionsEvicted),
                static_cast<unsigned long long>(OS.PartitionsUnpersisted));
    std::printf("         %llu stub reads (%llu KB), regions: %llu carved + "
                "%llu recycled, %llu freed, %llu live of %llu KB claimed\n",
                static_cast<unsigned long long>(OS.StubReads),
                static_cast<unsigned long long>(OS.BytesRead / 1024),
                static_cast<unsigned long long>(RS.RegionsCarved),
                static_cast<unsigned long long>(RS.RegionsRecycled),
                static_cast<unsigned long long>(OS.RegionsFreed),
                static_cast<unsigned long long>(OC->allocator().liveRegions()),
                static_cast<unsigned long long>(
                    OC->allocator().claimBytes() / 1024));
  }

  if (const cluster::Cluster *CL = RT.clusterSim()) {
    const cluster::ClusterStats &CS = CL->stats();
    std::printf("\ncluster: %u executors (%u alive), net %.1f GB/s + %.0f us"
                " latency\n",
                CL->numExecutors(), CL->numAlive(),
                CL->config().Options.NetBandwidthGBps,
                CL->config().Options.NetLatencyUs);
    std::printf("         %llu PROCESS_LOCAL / %llu ANY tasks "
                "(%llu delayed fallbacks)\n",
                static_cast<unsigned long long>(CS.ProcessLocalTasks),
                static_cast<unsigned long long>(CS.AnyTasks),
                static_cast<unsigned long long>(CS.DelayedFallbacks));
    std::printf("         fetches: %llu local (%llu KB), %llu remote "
                "(%llu KB), %.3f ms on the wire\n",
                static_cast<unsigned long long>(CS.LocalBlocksFetched),
                static_cast<unsigned long long>(CS.LocalBytesFetched / 1024),
                static_cast<unsigned long long>(CS.RemoteBlocksFetched),
                static_cast<unsigned long long>(CS.RemoteBytesFetched / 1024),
                CS.NetworkNs / 1e6);
    if (CS.ZeroCopyBlocksFetched != 0)
      std::printf("         zero-copy (same host): %llu blocks (%llu KB) "
                  "via shared memory, no fabric charge\n",
                  static_cast<unsigned long long>(CS.ZeroCopyBlocksFetched),
                  static_cast<unsigned long long>(CS.ZeroCopyBytesFetched /
                                                  1024));
    if (CS.ExecutorsLost != 0)
      std::printf("         %llu executors lost, %llu map outputs lost, "
                  "%llu recomputed via lineage\n",
                  static_cast<unsigned long long>(CS.ExecutorsLost),
                  static_cast<unsigned long long>(CS.MapOutputsLost),
                  static_cast<unsigned long long>(CS.MapOutputsRecomputed));
    if (CS.SpeculativeLaunches != 0 || CS.StragglersFlagged != 0)
      std::printf("         speculation: %llu stragglers flagged, %llu "
                  "copies launched (%llu won), %.3f ms wasted, %llu "
                  "placements steered\n",
                  static_cast<unsigned long long>(CS.StragglersFlagged),
                  static_cast<unsigned long long>(CS.SpeculativeLaunches),
                  static_cast<unsigned long long>(CS.SpeculativeWins),
                  CS.SpeculativeWastedNs / 1e6,
                  static_cast<unsigned long long>(
                      CS.StragglerAvoidedPlacements));
    if (CS.FetchRetries != 0 || CS.FetchEscalations != 0)
      std::printf("         fetch faults: %llu drops + %llu corruptions, "
                  "%llu retries (%.3f ms backoff), %llu escalations\n",
                  static_cast<unsigned long long>(CS.FetchDrops),
                  static_cast<unsigned long long>(CS.FetchCorruptions),
                  static_cast<unsigned long long>(CS.FetchRetries),
                  CS.FetchBackoffNs / 1e6,
                  static_cast<unsigned long long>(CS.FetchEscalations));
    if (CS.ExecutorsDecommissioned != 0 || CS.ExecutorsJoined != 0)
      std::printf("         elastic: %llu decommissioned (%llu blocks / "
                  "%llu KB migrated), %llu joined\n",
                  static_cast<unsigned long long>(CS.ExecutorsDecommissioned),
                  static_cast<unsigned long long>(CS.BlocksMigrated),
                  static_cast<unsigned long long>(CS.BytesMigrated / 1024),
                  static_cast<unsigned long long>(CS.ExecutorsJoined));
  }

  if (Config.Faults.enabled()) {
    const heap::HeapStats &HS = RT.heap().stats();
    std::printf("\nfaults: seed %llu | %llu task / %llu cache-loss / "
                "%llu alloc / %llu shuffle / %llu executor / "
                "%llu slow-executor / %llu fetch injections fired\n",
                static_cast<unsigned long long>(Config.Faults.Seed),
                static_cast<unsigned long long>(
                    RT.faults()->fired(FaultSite::TaskExecution)),
                static_cast<unsigned long long>(
                    RT.faults()->fired(FaultSite::CacheRead)),
                static_cast<unsigned long long>(
                    RT.faults()->fired(FaultSite::Allocation)),
                static_cast<unsigned long long>(
                    RT.faults()->fired(FaultSite::ShuffleFetch)),
                static_cast<unsigned long long>(
                    RT.faults()->fired(FaultSite::ExecutorLoss)),
                static_cast<unsigned long long>(
                    RT.faults()->fired(FaultSite::SlowExecutor)),
                static_cast<unsigned long long>(
                    RT.faults()->fired(FaultSite::FetchTransient)));
    std::printf("        %llu tasks, %llu attempts (%llu retries), "
                "%llu lineage recomputations\n",
                static_cast<unsigned long long>(R.Tasks.totalTasks()),
                static_cast<unsigned long long>(R.Tasks.totalAttempts()),
                static_cast<unsigned long long>(R.Engine.TaskRetries),
                static_cast<unsigned long long>(
                    R.Engine.LineageRecomputations));
    std::printf("        %llu emergency GCs, %llu pressure evictions, "
                "%llu OOM errors thrown\n",
                static_cast<unsigned long long>(HS.EmergencyGcs),
                static_cast<unsigned long long>(HS.PressureEvictions),
                static_cast<unsigned long long>(HS.OomErrorsThrown));
  }

  if (GcLog) {
    std::printf("\ngc log:\n%4s %-6s %9s %9s %8s %8s %8s %8s\n", "#",
                "kind", "t(ms)", "dur(us)", "root", "d2y", "n2y",
                "drain");
    unsigned Index = 0;
    for (const gc::GcEvent &E : RT.collector().eventLog())
      std::printf("%4u %-6s %9.2f %9.1f %8.1f %8.1f %8.1f %8.1f  %s\n",
                  Index++,
                  E.IncStep ? "step" : E.Major ? "major" : "minor",
                  E.StartNs / 1e6,
                  E.DurationNs / 1e3, E.RootTaskNs / 1e3,
                  E.DramToYoungTaskNs / 1e3, E.NvmToYoungTaskNs / 1e3,
                  E.DrainNs / 1e3, E.Reason);
  }
  return DumpTelemetry() ? 0 : 1;
}
