//===- tools/gc_fuzz.cpp - Differential GC torture harness ----------------===//
//
// Part of the Panthera reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Seed-driven differential fuzzer for the generational hybrid collector
// (docs/fuzzing.md). Every iteration generates a deterministic schedule of
// heap actions from a SplitMix64 seed, replays it against the real heap and
// the shadow-graph oracle, and diffs the two after every collection. On
// divergence the harness binary-shrinks the schedule and prints a
// replayable --seed/--ops pair.
//
// Exit codes: 0 = all iterations clean, 1 = divergence, 2 = usage error.
//
//===----------------------------------------------------------------------===//

#include "fuzz/DifferentialRunner.h"
#include "support/CliParse.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

using namespace panthera;
using namespace panthera::fuzz;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed=N         first schedule seed (default 1)\n"
      "  --ops=N          actions per schedule (default 512)\n"
      "  --iterations=N   schedules to run, seeds seed..seed+N-1 "
      "(default 1)\n"
      "  --config=NAME    dram | split | pressure | incremental | offheap "
      "(default split)\n"
      "  --threads=N      GC workers; 0 = serial collector (default 1)\n"
      "  --executors=N    replay each schedule on N independent executor\n"
      "                   heaps and require bit-identical heap digests;\n"
      "                   also interleaves seeded slow-executor (forced\n"
      "                   minor GC) and transient-fetch draws per action\n"
      "                   (default 1; 1..4)\n"
      "  --print-schedule dump the generated actions before running\n"
      "  --print-digest   print the heap-image digest per iteration\n"
      "  --no-shrink      skip shrinking on divergence\n",
      Argv0);
}

struct CliOptions {
  FuzzOptions Fuzz;
  uint64_t Iterations = 1;
  bool PrintSchedule = false;
  bool PrintDigest = false;
  bool Shrink = true;
};

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    uint64_t V = 0;
    auto Val = [&](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return std::strncmp(Arg, Prefix, N) == 0 ? Arg + N : nullptr;
    };
    if (const char *S = Val("--seed=")) {
      if (!support::parseUnsigned(S, 0, UINT64_MAX, O.Fuzz.Seed)) {
        std::fprintf(stderr, "gc_fuzz: bad --seed '%s'\n", S);
        return false;
      }
    } else if (const char *S = Val("--ops=")) {
      if (!support::parseUnsigned(S, 1, 1u << 24, V)) {
        std::fprintf(stderr, "gc_fuzz: bad --ops '%s' (1..16M)\n", S);
        return false;
      }
      O.Fuzz.NumOps = static_cast<size_t>(V);
    } else if (const char *S = Val("--iterations=")) {
      if (!support::parseUnsigned(S, 1, 1u << 24, O.Iterations)) {
        std::fprintf(stderr, "gc_fuzz: bad --iterations '%s'\n", S);
        return false;
      }
    } else if (const char *S = Val("--config=")) {
      if (!parseFuzzConfig(S, O.Fuzz.Config)) {
        std::fprintf(stderr,
                     "gc_fuzz: bad --config '%s' "
                     "(dram|split|pressure|incremental|offheap)\n",
                     S);
        return false;
      }
    } else if (const char *S = Val("--threads=")) {
      if (!support::parseUnsigned(S, 0, 64, V)) {
        std::fprintf(stderr, "gc_fuzz: bad --threads '%s' (0..64)\n", S);
        return false;
      }
      O.Fuzz.Threads = static_cast<unsigned>(V);
    } else if (const char *S = Val("--executors=")) {
      if (!support::parseUnsigned(S, 1, 4, V)) {
        std::fprintf(stderr, "gc_fuzz: bad --executors '%s' (1..4)\n", S);
        return false;
      }
      O.Fuzz.Executors = static_cast<unsigned>(V);
    } else if (std::strcmp(Arg, "--print-schedule") == 0) {
      O.PrintSchedule = true;
    } else if (std::strcmp(Arg, "--print-digest") == 0) {
      O.PrintDigest = true;
    } else if (std::strcmp(Arg, "--no-shrink") == 0) {
      O.Shrink = false;
    } else {
      std::fprintf(stderr, "gc_fuzz: unknown option '%s'\n", Arg);
      return false;
    }
  }
  return true;
}

void printSchedule(const std::vector<FuzzAction> &S) {
  for (size_t I = 0; I != S.size(); ++I)
    std::printf("  [%4zu] %-16s A=%" PRIu64 " B=%" PRIu64 " C=%" PRIu64
                "\n",
                I, fuzzOpName(S[I].Op), S[I].A, S[I].B, S[I].C);
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions O;
  if (!parseArgs(Argc, Argv, O)) {
    usage(Argv[0]);
    return 2;
  }

  uint64_t Failures = 0;
  for (uint64_t It = 0; It != O.Iterations; ++It) {
    FuzzOptions Opts = O.Fuzz;
    Opts.Seed = O.Fuzz.Seed + It;
    if (O.PrintSchedule) {
      std::printf("schedule seed=%" PRIu64 " ops=%zu config=%s:\n",
                  Opts.Seed, Opts.NumOps, fuzzConfigName(Opts.Config));
      printSchedule(generateSchedule(Opts.Seed, Opts.NumOps,
                                     makeFuzzSetup(Opts.Config).Profile));
    }
    FuzzResult R = runDifferential(Opts);
    if (R.Ok) {
      if (O.PrintDigest)
        std::printf("seed=%" PRIu64 " ok digest=%016" PRIx64
                    " minor=%" PRIu64 " major=%" PRIu64 " oom=%" PRIu64
                    " live=%" PRIu64 "\n",
                    Opts.Seed, R.Digest, R.MinorGcs, R.MajorGcs,
                    R.OomErrorsThrown, R.LiveObjectsAtEnd);
      continue;
    }

    ++Failures;
    std::printf("DIVERGENCE seed=%" PRIu64 " ops=%zu config=%s "
                "threads=%u\n  at %s\n",
                Opts.Seed, Opts.NumOps, fuzzConfigName(Opts.Config),
                Opts.Threads, R.Problem.c_str());
    if (O.Shrink) {
      size_t Minimal = shrinkToMinimalOps(Opts);
      std::printf("  shrunk to %zu actions\n", Minimal);
      Opts.NumOps = Minimal;
      FuzzResult Small = runSchedule(
          Opts, generateSchedule(Opts.Seed, Minimal,
                                 makeFuzzSetup(Opts.Config).Profile));
      std::printf("  minimal repro: %s\n",
                  Small.Ok ? "(did not refail -- flaky?)"
                           : Small.Problem.c_str());
    }
    std::printf("  replay: gc_fuzz --seed=%" PRIu64 " --ops=%zu "
                "--config=%s --threads=%u",
                Opts.Seed, Opts.NumOps, fuzzConfigName(Opts.Config),
                Opts.Threads);
    if (Opts.Executors > 1)
      std::printf(" --executors=%u", Opts.Executors);
    std::printf("\n");
  }

  if (O.Iterations > 1)
    std::printf("gc_fuzz: %" PRIu64 "/%" PRIu64 " iterations diverged\n",
                Failures, O.Iterations);
  return Failures ? 1 : 0;
}
