#!/usr/bin/env bash
# Tier-1 CI: configure, build, and run the full test suite in the plain
# configuration, then again under AddressSanitizer + UBSan
# (-DPANTHERA_SANITIZE=address,undefined). Run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== test ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_config build
run_config build-san -DPANTHERA_SANITIZE=address,undefined

echo "ci: all configurations passed"
